package crncompose

// The benchmark harness: one benchmark per figure of the paper (the paper
// has no numeric tables; Figures 1–8 and the theorems are its evaluation
// artifacts), plus pipeline benchmarks for the main theorems and ablations
// called out in DESIGN.md. Run with:
//
//	go test -bench . -benchmem
import (
	"fmt"
	"testing"

	"crncompose/internal/classify"
	"crncompose/internal/compose"
	"crncompose/internal/crn"
	"crncompose/internal/figures"
	"crncompose/internal/geometry"
	"crncompose/internal/quilt"
	"crncompose/internal/rat"
	"crncompose/internal/reach"
	"crncompose/internal/scaling"
	"crncompose/internal/semilinear"
	"crncompose/internal/sim"
	"crncompose/internal/synth"
	"crncompose/internal/vec"
	"crncompose/internal/witness"
)

// --- Figure 1: the 2x / min / max CRNs under simulation at scale. ---

func BenchmarkFig1_MinGillespie(b *testing.B) {
	for _, n := range []int64{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			c := synth.MinCRN(2)
			start := c.MustInitialConfig(vec.New(n, n/2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := sim.Gillespie(start, sim.WithSeed(uint64(i)))
				if r.Final.Output() != n/2 {
					b.Fatalf("min wrong: %d", r.Final.Output())
				}
			}
		})
	}
}

func BenchmarkFig1_MaxFairRandom(b *testing.B) {
	for _, n := range []int64{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			c := synth.MaxCRN()
			start := c.MustInitialConfig(vec.New(n, n/2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := sim.FairRandom(start, sim.WithSeed(uint64(i)))
				if r.Final.Output() != n {
					b.Fatalf("max wrong: %d", r.Final.Output())
				}
			}
		})
	}
}

func BenchmarkFig1_DoubleGillespie(b *testing.B) {
	c := synth.DoubleCRN()
	start := c.MustInitialConfig(vec.New(50_000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := sim.Gillespie(start, sim.WithSeed(uint64(i)))
		if r.Final.Output() != 100_000 {
			b.Fatalf("double wrong")
		}
	}
}

// --- Figure 2: min(1, x) leadered vs leaderless, model-checked. ---

func BenchmarkFig2_Min1X(b *testing.B) {
	f := func(x []int64) int64 { return min(1, x[0]) }
	for i := 0; i < b.N; i++ {
		r1, err := reach.CheckGrid(synth.MinConst1Leadered(), f, []int64{0}, []int64{20})
		if err != nil || !r1.OK() {
			b.Fatal(err, r1)
		}
		r2, err := reach.CheckGrid(synth.MinConst1Leaderless(), f, []int64{0}, []int64{20})
		if err != nil || !r2.OK() {
			b.Fatal(err, r2)
		}
	}
}

// --- Figure 3: quilt-affine CRNs (Lemma 6.1). ---

func BenchmarkFig3_QuiltAffine1D(b *testing.B) {
	g := quilt.MustNew(rat.NewVec(rat.New(3, 2)), 2, []rat.R{rat.Zero(), rat.New(-1, 2)})
	c, err := synth.FromQuilt(g)
	if err != nil {
		b.Fatal(err)
	}
	start := c.MustInitialConfig(vec.New(10_000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := sim.FairRandom(start, sim.WithSeed(uint64(i)))
		if r.Final.Output() != 15_000 {
			b.Fatalf("⌊3x/2⌋ wrong: %d", r.Final.Output())
		}
	}
}

func BenchmarkFig3_QuiltAffine2DSynthesis(b *testing.B) {
	f := semilinear.Fig3b()
	for i := 0; i < b.N; i++ {
		res, err := classify.Analyze(f, classify.Options{})
		if err != nil || !res.Computable {
			b.Fatal(err)
		}
		if _, err := synth.FromQuilt(res.EventualMin.Terms[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 4a: the general construction (Lemma 6.2). ---

func BenchmarkFig4a_GeneralConstruction(b *testing.B) {
	f := semilinear.Fig4a()
	for i := 0; i < b.N; i++ {
		c, _, err := synth.General(f, synth.GeneralOptions{
			Classify: classify.Options{Bound: 8},
			N:        2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !c.IsOutputOblivious() {
			b.Fatal("not oblivious")
		}
	}
}

func BenchmarkFig4a_GeneralSimulation(b *testing.B) {
	c, _, err := synth.General(semilinear.Fig4a(), synth.GeneralOptions{
		Classify: classify.Options{Bound: 8}, N: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	start := c.MustInitialConfig(vec.New(50, 30))
	want := semilinear.Fig4a().Eval(vec.New(50, 30))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := sim.FairRandom(start, sim.WithSeed(uint64(i)))
		if r.Final.Output() != want {
			b.Fatalf("got %d want %d", r.Final.Output(), want)
		}
	}
}

// --- Figure 4b / Theorem 8.2: the ∞-scaling. ---

func BenchmarkFig4b_Scaling(b *testing.B) {
	f := semilinear.Fig4a()
	res, err := classify.Analyze(f, classify.Options{})
	if err != nil {
		b.Fatal(err)
	}
	eval := func(x vec.V) int64 { return f.Eval(x) }
	z := rat.NewVec(rat.New(3, 2), rat.New(5, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := scaling.Compare(eval, res.EventualMin, z, 4096)
		if err != nil || rep.AbsErr > 0.01 {
			b.Fatalf("scaling mismatch: %+v (%v)", rep, err)
		}
	}
}

// --- Figure 5 / Theorem 3.1: the 1D pipeline. ---

func BenchmarkFig5_OneDim(b *testing.B) {
	f := func(x int64) int64 {
		table := []int64{0, 2, 3, 7}
		if x < int64(len(table)) {
			return table[x]
		}
		return 7 + 2*(x-3) + (x-3)/3
	}
	for i := 0; i < b.N; i++ {
		spec, err := synth.FitOneDim(f, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := synth.OneDim(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 6 / Lemma 4.1: witness search and overproduction trace. ---

func BenchmarkFig6_MaxWitnessSearch(b *testing.B) {
	fmax := func(x vec.V) int64 { return max(x[0], x[1]) }
	for i := 0; i < b.N; i++ {
		if witness.Search(fmax, 2, witness.SearchOptions{}) == nil {
			b.Fatal("no contradiction")
		}
	}
}

func BenchmarkFig6_OverproductionTrace(b *testing.B) {
	t, err := figures.Fig6()
	if err != nil {
		b.Fatal(err)
	}
	_ = t
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := figures.Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 7: classification with under-determined strips (Lemma 7.16). ---

func BenchmarkFig7_Extensions(b *testing.B) {
	f := semilinear.Fig7()
	for i := 0; i < b.N; i++ {
		res, err := classify.Analyze(f, classify.Options{})
		if err != nil || !res.Computable || len(res.EventualMin.Terms) != 3 {
			b.Fatalf("fig7 classification broken: %v", err)
		}
	}
}

// --- Figure 8: geometric decomposition. ---

func BenchmarkFig8_Decomposition2D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		arr := geometry.NewArrangement(2,
			[]vec.V{vec.New(1, -1), vec.New(1, -1), vec.New(1, 1)},
			[]int64{1, -3, 4})
		regions := arr.Census(14)
		if len(regions) != 5 {
			b.Fatalf("%d regions", len(regions))
		}
		for _, r := range regions {
			_ = r.ReccDim()
			_ = r.IsEventual()
		}
	}
}

func BenchmarkFig8_Decomposition3D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		arr := geometry.NewArrangement(3,
			[]vec.V{vec.New(1, -1, 0), vec.New(1, -1, 0), vec.New(1, 0, -1), vec.New(1, 0, -1)},
			[]int64{3, -2, 3, -2})
		regions := arr.Census(10)
		if len(regions) != 9 {
			b.Fatalf("%d regions", len(regions))
		}
		for _, r := range regions {
			_ = r.ReccDim()
		}
	}
}

// --- Theorem pipelines. ---

func BenchmarkThm31_Pipeline(b *testing.B) {
	f := func(x int64) int64 { return 5*x/3 + min(x, 4) }
	for i := 0; i < b.N; i++ {
		spec, err := synth.FitOneDim(f, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		c, err := synth.OneDim(spec)
		if err != nil {
			b.Fatal(err)
		}
		res, err := reach.CheckGrid(c, func(x []int64) int64 { return f(x[0]) }, []int64{0}, []int64{12})
		if err != nil || !res.OK() {
			b.Fatal(err, res)
		}
	}
}

func BenchmarkThm92_Leaderless(b *testing.B) {
	f := func(x int64) int64 { return 3 * x / 2 }
	for i := 0; i < b.N; i++ {
		spec, err := synth.FitOneDim(f, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		c, err := synth.LeaderlessOneDim(spec)
		if err != nil {
			b.Fatal(err)
		}
		res, err := reach.CheckGrid(c, func(x []int64) int64 { return f(x[0]) }, []int64{0}, []int64{10})
		if err != nil || !res.OK() {
			b.Fatal(err, res)
		}
	}
}

func BenchmarkComposition(b *testing.B) {
	b.Run("2min-verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			comp, err := compose.Concat(synth.MinCRN(2), synth.DoubleCRN())
			if err != nil {
				b.Fatal(err)
			}
			res, err := reach.CheckGrid(comp, func(x []int64) int64 { return 2 * min(x[0], x[1]) },
				[]int64{0, 0}, []int64{3, 3})
			if err != nil || !res.OK() {
				b.Fatal(err, res)
			}
		}
	})
	b.Run("2max-refute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			comp, err := compose.Concat(synth.MaxCRN(), synth.DoubleCRN())
			if err != nil {
				b.Fatal(err)
			}
			res, err := reach.CheckGrid(comp, func(x []int64) int64 { return 2 * max(x[0], x[1]) },
				[]int64{1, 1}, []int64{2, 2})
			if err != nil {
				b.Fatal(err)
			}
			if res.OK() {
				b.Fatal("2max verified; must refute")
			}
		}
	})
}

func BenchmarkObs24_Transform(b *testing.B) {
	cat := mustCatalytic(b)
	for i := 0; i < b.N; i++ {
		obl, err := synth.MonotonicToOblivious(cat)
		if err != nil || !obl.IsOutputOblivious() {
			b.Fatal(err)
		}
	}
}

func BenchmarkThm82_Correspondence(b *testing.B) {
	f := semilinear.Fig7()
	res, err := classify.Analyze(f, classify.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bad, err := scaling.CheckSuperadditive(res.EventualMin, 3)
		if err != nil || bad != nil {
			b.Fatal("superadditivity violated")
		}
	}
}

// --- Classification of every library function (the decision procedure). ---

func BenchmarkClassifyLibrary(b *testing.B) {
	fns := []*semilinear.Func{
		semilinear.Min2(), semilinear.Max2(), semilinear.Fig7(),
		semilinear.Equation2(), semilinear.Fig4a(), semilinear.Fig3b(),
	}
	for _, f := range fns {
		b.Run(f.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := classify.Analyze(f, classify.Options{WitnessSearch: false}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Model checker throughput. ---

func BenchmarkReachExplore(b *testing.B) {
	c := synth.MaxCRN()
	start := c.MustInitialConfig(vec.New(12, 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := reach.Explore(start)
		if !g.Complete {
			b.Fatal("incomplete")
		}
	}
}

func mustCatalytic(b *testing.B) *crn.CRN {
	b.Helper()
	return crn.MustNew([]crn.Species{"X", "A"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "Y"}, {Coeff: 1, Sp: "A"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}, {Coeff: 1, Sp: "B"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "B"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
}
