// Command bench runs the reachability, simulation, distributed-checking,
// and serve benchmark suites and writes machine-readable results to
// BENCH_reach.json, BENCH_sim.json, BENCH_dist.json, and BENCH_serve.json,
// so the performance trajectory of the hot paths (configs/sec explored,
// ns per simulated reaction, served requests/sec cold vs cached,
// allocations) is tracked in-repo from PR 2 forward.
//
// Usage:
//
//	go run ./cmd/bench             # full suites, writes BENCH_*.json in .
//	go run ./cmd/bench -quick      # small workloads (CI smoke), same files
//	go run ./cmd/bench -outdir /tmp -suite reach
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"crncompose/internal/benchcrn"
	"crncompose/internal/classify"
	"crncompose/internal/crn"
	"crncompose/internal/dist"
	"crncompose/internal/httpx"
	"crncompose/internal/reach"
	"crncompose/internal/semilinear"
	"crncompose/internal/serve"
	"crncompose/internal/sim"
	"crncompose/internal/synth"
	"crncompose/internal/trace"
	"crncompose/internal/vec"
)

type record struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

type suiteReport struct {
	Suite       string   `json:"suite"`
	GeneratedBy string   `json:"generated_by"`
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	NumCPU      int      `json:"num_cpu"`
	Quick       bool     `json:"quick"`
	Benchmarks  []record `json:"benchmarks"`
}

func main() {
	quick := flag.Bool("quick", false, "small workloads for CI smoke runs")
	outdir := flag.String("outdir", ".", "directory for BENCH_*.json")
	suite := flag.String("suite", "all", "which suite to run: reach, sim, dist, serve, or all")
	flag.Parse()

	if *suite == "reach" || *suite == "all" {
		if err := writeReport(*outdir, "BENCH_reach.json", reachSuite(*quick)); err != nil {
			fatal(err)
		}
	}
	if *suite == "sim" || *suite == "all" {
		if err := writeReport(*outdir, "BENCH_sim.json", simSuite(*quick)); err != nil {
			fatal(err)
		}
	}
	if *suite == "dist" || *suite == "all" {
		if err := writeReport(*outdir, "BENCH_dist.json", distSuite(*quick)); err != nil {
			fatal(err)
		}
	}
	if *suite == "serve" || *suite == "all" {
		if err := writeReport(*outdir, "BENCH_serve.json", serveSuite(*quick)); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}

func newReport(name string, quick bool) suiteReport {
	return suiteReport{
		Suite:       name,
		GeneratedBy: "go run ./cmd/bench",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Quick:       quick,
	}
}

func writeReport(dir, file string, rep suiteReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, file)
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(rep.Benchmarks))
	return nil
}

func toRecord(name string, r testing.BenchmarkResult) record {
	rec := record{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if len(r.Extra) > 0 {
		rec.Extra = make(map[string]float64, len(r.Extra))
		for k, v := range r.Extra {
			rec.Extra[k] = v
		}
	}
	return rec
}

// reachSuite measures the state-space explorer on the paper's Fig 4a
// general construction at x=(1,1) — the canonical single-input workload —
// across worker counts, plus the two-level grid verifier.
func reachSuite(quick bool) suiteReport {
	rep := newReport("reach", quick)
	f := semilinear.Fig4a()
	c, _, err := synth.General(f, synth.GeneralOptions{
		Classify: classify.Options{Bound: 8},
		N:        2,
	})
	if err != nil {
		fatal(err)
	}
	root := c.MustInitialConfig(vec.New(1, 1))
	budget := 1 << 23
	if quick {
		budget = 1 << 14 // explore a 16k-config prefix only
	}
	for _, workers := range []int{1, 2, 4, 8} {
		name := fmt.Sprintf("explore_fig4a_workers%d", workers)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			var configs int
			for i := 0; i < b.N; i++ {
				g := reach.Explore(root, reach.WithMaxConfigs(budget), reach.WithWorkers(workers))
				if g.Complete == quick {
					b.Fatalf("Complete = %v with budget %d", g.Complete, budget)
				}
				configs = g.NumConfigs()
			}
			b.ReportMetric(float64(configs), "configs")
			b.ReportMetric(float64(configs)/(b.Elapsed().Seconds()/float64(b.N)), "configs/s")
		})
		rep.Benchmarks = append(rep.Benchmarks, toRecord(name, r))
	}
	// The fig4a 2×2 grid is itself the paper-shaped skewed workload: x=(1,1)
	// explores ~87k configurations while the axis inputs are trivial, so the
	// pool's tail-latency behavior shows up as the grid's wall-clock ratio
	// to the large input checked alone at the same total worker budget.
	aloneFig := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v := reach.CheckInput(root, f.Eval(vec.New(1, 1)), reach.WithMaxConfigs(budget), reach.WithWorkers(0))
			if v.Explored == 0 {
				b.Fatal("explored nothing")
			}
		}
	})
	rep.Benchmarks = append(rep.Benchmarks, toRecord("checkinput_fig4a_x11_alone_workers0", aloneFig))
	hi := int64(1)
	for _, workers := range []int{1, 0} {
		name := fmt.Sprintf("checkgrid_fig4a_2x2_workers%d", workers)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := reach.CheckGrid(c,
					func(x []int64) int64 { return f.Eval(vec.New(x...)) },
					[]int64{0, 0}, []int64{hi, hi},
					reach.WithMaxConfigs(budget), reach.WithWorkers(workers))
				if err != nil {
					b.Fatal(err)
				}
				if !quick && !res.OK() {
					b.Fatal(res)
				}
			}
		})
		rec := toRecord(name, r)
		if workers == 0 {
			rec.Extra = withExtra(rec.Extra, "vs_large_alone", rec.NsPerOp/float64(aloneFig.NsPerOp()))
		}
		rep.Benchmarks = append(rep.Benchmarks, rec)
	}
	rep.Benchmarks = append(rep.Benchmarks, skewGridBenchmarks(quick)...)
	return rep
}

// skewGridBenchmarks measures the synthetic 1-large-among-N-small grid
// (benchcrn.SkewGrid): N trivial inputs plus one input whose state space is
// 2^m configurations. With the shared work-stealing pool the grid's
// wall-clock should stay within 1.5× of checking the large input alone at
// the same total worker budget — workers that finish the trivial inputs
// migrate into the straggler instead of idling.
func skewGridBenchmarks(quick bool) []record {
	thr, m := int64(20), 16
	if quick {
		thr, m = 12, 10
	}
	skew := benchcrn.SkewGrid(thr, m)
	skewRoot := skew.MustInitialConfig(vec.New(thr))
	zero := func(x []int64) int64 { return 0 }
	alone := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v := reach.CheckInput(skewRoot, 0, reach.WithWorkers(0))
			if !v.OK {
				b.Fatalf("skew large input refuted: %+v", v)
			}
		}
	})
	out := []record{toRecord(fmt.Sprintf("checkinput_skewgrid_m%d_large_alone_workers0", m), alone)}
	for _, workers := range []int{1, 0} {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := reach.CheckGrid(skew, zero, []int64{0}, []int64{thr}, reach.WithWorkers(workers))
				if err != nil || !res.OK() {
					b.Fatalf("%v %v", err, res)
				}
			}
		})
		rec := toRecord(fmt.Sprintf("checkgrid_skewgrid_1large_%dsmall_workers%d", thr, workers), r)
		if workers == 0 {
			rec.Extra = withExtra(rec.Extra, "vs_large_alone", rec.NsPerOp/float64(alone.NsPerOp()))
		}
		out = append(out, rec)
	}
	return out
}

// distSuite measures the distributed checker against local CheckGrid on the
// same grid: a coordinator plus two workers, all on localhost HTTP, so the
// reported vs_local ratio is pure coordination overhead (lease round-trips,
// JSON encoding, merge) — the floor a real multi-machine deployment pays
// before network latency. The distributed result is also asserted
// byte-identical to the local one, the subsystem's core invariant.
func distSuite(quick bool) suiteReport {
	rep := newReport("dist", quick)
	c := benchcrn.Branchy()
	h := int64(7)
	if quick {
		h = 4
	}
	lo, hi := []int64{0, 0}, []int64{h, h}
	f := func(x []int64) int64 { return max(x[0], x[1]) }

	var localJSON []byte
	local := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := reach.CheckGrid(c, f, lo, hi, reach.WithWorkers(0))
			if err != nil || !res.OK() {
				b.Fatalf("%v %v", err, res)
			}
			localJSON, _ = json.Marshal(res)
		}
	})
	rep.Benchmarks = append(rep.Benchmarks, toRecord(fmt.Sprintf("checkgrid_branchy_%dx%d_local_workers0", h+1, h+1), local))

	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := runDistOnce(b, c, lo, hi)
			got, _ := json.Marshal(res)
			if !bytes.Equal(got, localJSON) {
				b.Fatalf("distributed result differs from local:\n%s\n%s", got, localJSON)
			}
		}
	})
	rec := toRecord(fmt.Sprintf("checkgrid_branchy_%dx%d_dist_coordinator_2workers", h+1, h+1), r)
	rec.Extra = withExtra(rec.Extra, "vs_local", rec.NsPerOp/float64(local.NsPerOp()))
	rep.Benchmarks = append(rep.Benchmarks, rec)
	return rep
}

// runDistOnce runs one full coordinator + 2 workers job over localhost.
func runDistOnce(b *testing.B, c *crn.CRN, lo, hi []int64) reach.GridResult {
	co, err := dist.NewCoordinator(dist.CoordinatorConfig{
		CRN: c, Func: "max", Lo: lo, Hi: hi, Shards: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := co.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer co.Shutdown(context.Background())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wk := &dist.Worker{
			Coordinator: co.Addr().String(),
			Name:        fmt.Sprintf("bench-%d", w),
			Resolve: func(name string) (reach.Func, error) {
				if name != "max" {
					return nil, fmt.Errorf("unknown function %q", name)
				}
				return func(x []int64) int64 { return max(x[0], x[1]) }, nil
			},
			Poll: 2 * time.Millisecond,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := wk.Run(ctx); err != nil && ctx.Err() == nil {
				b.Errorf("worker: %v", err)
			}
		}()
	}
	res, err := co.Wait(ctx)
	cancel()
	wg.Wait()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// serveSuite measures the verification service end to end over real
// localhost HTTP on the branchy 8×8 grid: cold /v1/check (the cache is
// flushed every iteration, so each request runs the engine) versus cached
// (content-addressed replay of the stored bytes). Every iteration's body is
// asserted byte-identical to the local engine's crncheck -json encoding —
// the serve layer's core contract stays under measurement, and the
// cold/cached ratio is the factor a repeated identical request gets back
// from the cache.
func serveSuite(quick bool) suiteReport {
	rep := newReport("serve", quick)
	c := benchcrn.Branchy()
	h := int64(7)
	if quick {
		h = 4
	}
	lo, hi := []int64{0, 0}, []int64{h, h}
	f := func(x []int64) int64 { return max(x[0], x[1]) }
	res, err := reach.CheckGrid(c, f, lo, hi, reach.WithWorkers(0), reach.WithMaxConfigs(1<<20))
	if err != nil || !res.OK() {
		fatal(fmt.Errorf("branchy reference grid: %v %v", err, res))
	}
	want, err := reach.MarshalGridResultIndent(res)
	if err != nil {
		fatal(err)
	}

	s := serve.New(serve.Config{CacheMax: 64, SyncGridLimit: 1 << 30})
	if err := s.Start("127.0.0.1:0"); err != nil {
		fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	url := "http://" + s.Addr().String() + "/v1/check"
	reqBody, err := json.Marshal(map[string]any{"crn": c.String(), "func": "max", "hi": h})
	if err != nil {
		fatal(err)
	}
	client := &httpx.Client{
		HTTP:        &http.Client{Timeout: 5 * time.Minute},
		MaxAttempts: 1, // a benchmark must not retry inside the timer
	}
	tryCheck := func() error {
		raw, err := client.PostRaw(context.Background(), url, json.RawMessage(reqBody))
		if err != nil {
			return err
		}
		if !bytes.Equal(raw.Body, want) {
			return fmt.Errorf("served body differs from crncheck -json:\n%s\nwant:\n%s", raw.Body, want)
		}
		return nil
	}
	doCheck := func(b *testing.B) {
		if err := tryCheck(); err != nil {
			b.Fatal(err)
		}
	}

	name := fmt.Sprintf("serve_check_branchy_%dx%d", h+1, h+1)
	cold := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.FlushCache()
			doCheck(b)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	})
	rep.Benchmarks = append(rep.Benchmarks, toRecord(name+"_cold", cold))

	if err := tryCheck(); err != nil { // prime the cache outside the timer
		fatal(err)
	}
	cached := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			doCheck(b)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	})
	rec := toRecord(name+"_cached", cached)
	rec.Extra = withExtra(rec.Extra, "cold_vs_cached", float64(cold.NsPerOp())/float64(cached.NsPerOp()))
	rep.Benchmarks = append(rep.Benchmarks, rec)

	// The same cached-hit path with span recording on: every request now
	// opens a serve.request root span and a serve.cache.lookup child.
	// trace_overhead is the fractional cost over the untraced server
	// (0.03 = 3% slower) — the tracing layer's budget on the hottest path.
	// The two servers are measured interleaved in one loop so both see the
	// same heap, GC, and scheduler conditions: a sequential traced-after-
	// untraced measurement inherits the cold benchmark's heap growth and
	// reads tens of percent of phantom overhead on a ~70µs request.
	st := serve.New(serve.Config{
		CacheMax:      64,
		SyncGridLimit: 1 << 30,
		Tracer:        trace.New(trace.Options{Proc: "bench"}),
	})
	if err := st.Start("127.0.0.1:0"); err != nil {
		fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = st.Shutdown(ctx)
	}()
	tracedURL := "http://" + st.Addr().String() + "/v1/check"
	tryTraced := func() error {
		raw, err := client.PostRaw(context.Background(), tracedURL, json.RawMessage(reqBody))
		if err != nil {
			return err
		}
		if !bytes.Equal(raw.Body, want) {
			return fmt.Errorf("traced served body differs from crncheck -json:\n%s\nwant:\n%s", raw.Body, want)
		}
		return nil
	}
	if err := tryTraced(); err != nil { // prime the cache outside the timer
		fatal(err)
	}
	traced := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var plainNs, tracedNs time.Duration
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			doCheck(b)
			t1 := time.Now()
			if err := tryTraced(); err != nil {
				b.Fatal(err)
			}
			tracedNs += time.Since(t1)
			plainNs += t1.Sub(t0)
		}
		b.ReportMetric(float64(plainNs.Nanoseconds())/float64(b.N), "plain_ns/op")
		b.ReportMetric(float64(tracedNs.Nanoseconds())/float64(b.N), "traced_ns/op")
	})
	trec := toRecord(name+"_cached_traced", traced)
	// Each benchmark op above is one untraced + one traced request; report
	// the traced request alone as this record's headline numbers.
	trec.NsPerOp = trec.Extra["traced_ns/op"]
	trec.Extra = withExtra(trec.Extra, "req/s", 1e9/trec.NsPerOp)
	trec.Extra = withExtra(trec.Extra, "trace_overhead",
		trec.Extra["traced_ns/op"]/trec.Extra["plain_ns/op"]-1)
	rep.Benchmarks = append(rep.Benchmarks, trec)
	return rep
}

// withExtra sets key in the (possibly nil) extra-metric map.
func withExtra(extra map[string]float64, key string, v float64) map[string]float64 {
	if extra == nil {
		extra = make(map[string]float64)
	}
	extra[key] = v
	return extra
}

func simSuite(quick bool) suiteReport {
	rep := newReport("sim", quick)
	steps := int64(100_000)
	n := int64(10_000)
	if quick {
		steps, n = 10_000, 1_000
	}

	ring := benchcrn.Ring(128)
	ringStart := ring.MustInitialConfig(vec.New(64))
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var fired int64
		for i := 0; i < b.N; i++ {
			res := sim.Gillespie(ringStart, sim.WithSeed(uint64(i)+1), sim.WithMaxSteps(steps))
			fired += res.Steps
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(fired), "ns/step")
	})
	rep.Benchmarks = append(rep.Benchmarks, toRecord("gillespie_ring128_incremental", r))

	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var fired int64
		for i := 0; i < b.N; i++ {
			fired += benchcrn.GillespieFullRecompute(ringStart, steps, uint64(i)+1)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(fired), "ns/step")
	})
	rep.Benchmarks = append(rep.Benchmarks, toRecord("gillespie_ring128_full_recompute_baseline", r))

	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var fired int64
		for i := 0; i < b.N; i++ {
			res := sim.FairRandom(ringStart, sim.WithSeed(uint64(i)+1), sim.WithMaxSteps(steps))
			fired += res.Steps
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(fired), "ns/step")
	})
	rep.Benchmarks = append(rep.Benchmarks, toRecord("fairrandom_ring128_incremental", r))

	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var fired int64
		for i := 0; i < b.N; i++ {
			fired += benchcrn.FairRandomFullWalk(ringStart, steps, uint64(i)+1)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(fired), "ns/step")
	})
	rep.Benchmarks = append(rep.Benchmarks, toRecord("fairrandom_ring128_full_walk_baseline", r))

	start := benchcrn.Max().MustInitialConfig(vec.New(n, n))
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var fired int64
		for i := 0; i < b.N; i++ {
			res := sim.Gillespie(start, sim.WithSeed(uint64(i)))
			fired += res.Steps
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(fired), "ns/step")
		b.ReportMetric(float64(fired)/b.Elapsed().Seconds(), "reactions/s")
	})
	rep.Benchmarks = append(rep.Benchmarks, toRecord(fmt.Sprintf("gillespie_max_n%d", n), r))

	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var fired int64
		for i := 0; i < b.N; i++ {
			res := sim.FairRandom(start, sim.WithSeed(uint64(i)))
			fired += res.Steps
		}
		b.ReportMetric(float64(fired)/b.Elapsed().Seconds(), "reactions/s")
	})
	rep.Benchmarks = append(rep.Benchmarks, toRecord(fmt.Sprintf("fairrandom_max_n%d", n), r))
	return rep
}
