// Command crncheck model-checks stable computation: it verifies, by
// exhaustive reachability analysis (the literal Section 2.2 definition),
// that a CRN stably computes a library function on a grid of inputs, and
// reports output-obliviousness and output-monotonicity.
//
// It runs in three modes. Local (the default) checks the whole grid
// in-process. -coordinator turns the process into the coordinator of a
// distributed run: it splits the grid into rectangles, leases them to
// workers over HTTP+JSON (internal/dist), reassigns rectangles whose
// workers die, and merges the results into the exact GridResult a local
// run would print. -join turns the process into a worker: it fetches the
// job from the coordinator, checks leased rectangles on the local
// steal-pool engine, and reports results until the job is done. A worker
// rides out coordinator outages (crashes, checkpoint restarts) for
// -join-grace before exiting 2 with a coordinator-lost error; a 4xx from
// the join endpoint fails immediately instead of retrying. With
// -abort-on-lease-loss a fenced-out worker cancels its in-flight
// rectangle rather than finishing work it no longer owns.
//
// -workers sizes one shared work-stealing pool spanning both parallelism
// levels: workers check independent grid inputs while any remain, then
// migrate into the still-running explorations (stealing frontier slices),
// so skewed grids keep every core busy through the tail. Results — counts,
// the first failing input, its witness schedule — are byte-identical at
// every worker count and steal schedule, and (for distributed runs) at any
// worker-process count, join order, or crash schedule.
//
// -json emits the machine-readable GridResult — the same encoding the
// distributed protocol uses — instead of the human-readable report.
//
// SIGINT/SIGTERM (and -timeout) cancel the run cleanly: the engine stops
// at its next deterministic cancellation point and the command reports the
// cancellation instead of a partial verdict. -progress prints throttled
// checked-inputs counts to stderr without affecting the result.
//
// A coordinator serves GET /metrics (lease-table gauges, lease churn,
// per-rectangle completion latency) and GET /debug/traces (the span
// recorder) on its protocol listener, and -debug-addr adds net/http/pprof
// plus a second /debug/traces on a separate operator-only listener —
// profiles never share the port workers connect to.
//
// Every mode records spans: local runs open a root span over the grid with
// engine stage events as children; a coordinator parents lease and merge
// spans under its job span (continuing the submitter's trace when one is
// handed over, as crnserve does); a worker parents each rectangle under
// the lease's traceparent and ships the finished spans back with the
// result, so one trace id spans submitter, coordinator, and workers.
// -trace file writes whatever this process recorded as Chrome trace-event
// JSON at exit — load it in Perfetto or chrome://tracing.
//
// Usage:
//
//	crncheck -crn min.crn -f min -lo 0 -hi 5
//	crnsynth -f fig4a -n 2 -bound 8 | crncheck -crn - -f fig4a -hi 2
//	crncheck -crn min.crn -f min -hi 9 -coordinator :7421   # terminal 1
//	crncheck -join localhost:7421                           # terminal 2..N
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crncompose/internal/core"
	"crncompose/internal/dist"
	"crncompose/internal/parse"
	"crncompose/internal/progress"
	"crncompose/internal/reach"
	"crncompose/internal/trace"
	"crncompose/internal/vec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crncheck:", err)
		if errors.Is(err, dist.ErrCoordinatorLost) {
			// Distinct exit code: the worker gave up after -join-grace, but
			// the job itself may still complete under other workers once the
			// coordinator returns — "lost my coordinator" is operationally
			// different from "the check failed".
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("crncheck", flag.ContinueOnError)
	var (
		crnPath    = fs.String("crn", "", "CRN file (or - for stdin)")
		fname      = fs.String("f", "", "library function the CRN should compute (see crnsynth -list)")
		lo         = fs.Int64("lo", 0, "grid lower bound per coordinate")
		hi         = fs.Int64("hi", 3, "grid upper bound per coordinate")
		maxConfigs = fs.Int("maxconfigs", 1<<20, "reachability budget per input")
		workers    = fs.Int("workers", 0, "size of the shared work-stealing pool: workers check grid inputs concurrently and migrate into still-running explorations as inputs finish (0 = all CPUs, 1 = sequential)")
		jsonOut    = fs.Bool("json", false, "emit the machine-readable GridResult (the distributed protocol's encoding) instead of the human report")
		timeout    = fs.Duration("timeout", 0, "abort the check after this long (0 = none); a timed-out or interrupted run reports the cancellation, never a partial verdict")
		progFlag   = fs.Bool("progress", false, "print throttled progress lines (checked inputs) to stderr")

		coordAddr  = fs.String("coordinator", "", "run as distributed coordinator listening on this host:port; workers join with -join")
		joinAddr   = fs.String("join", "", "run as distributed worker against the coordinator at this host:port")
		joinGrace  = fs.Duration("join-grace", 15*time.Second, "worker: keep retrying an unreachable coordinator this long (surviving restarts) before exiting with a coordinator-lost error")
		abortLease = fs.Bool("abort-on-lease-loss", false, "worker: cancel the in-flight rectangle when the coordinator reports the lease lost (fenced out) instead of finishing and posting a duplicate")
		shards     = fs.Int("shards", 0, "coordinator: number of grid rectangles to lease out (0 = 16; more shards than workers keeps the tail balanced)")
		lease      = fs.Duration("lease", dist.DefaultLeaseTTL, "coordinator: lease TTL before a silent worker's rectangle is reassigned")
		checkpoint = fs.String("checkpoint", "", "coordinator: checkpoint file; completed rectangles are saved after each result and resumed on restart")
		debugAddr  = fs.String("debug-addr", "", "coordinator: serve net/http/pprof and /debug/traces on a separate listener (host:port); empty disables")
		traceFile  = fs.String("trace", "", "write the run's spans to this file as Chrome trace-event JSON (load in Perfetto / chrome://tracing)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// One span recorder for whichever mode runs; the process name keys the
	// Perfetto track and the Proc field on spans a worker ships to its
	// coordinator.
	proc := "crncheck"
	switch {
	case *joinAddr != "":
		proc = "crncheck-worker"
	case *coordAddr != "":
		proc = "crncheck-coordinator"
	}
	tr := trace.New(trace.Options{Proc: proc})
	if *traceFile != "" {
		defer func() {
			if werr := writeTraceFile(*traceFile, tr); werr != nil {
				fmt.Fprintf(os.Stderr, "crncheck: writing -trace: %v\n", werr)
			}
		}()
	}
	if *debugAddr != "" {
		if *coordAddr == "" {
			return fmt.Errorf("-debug-addr only applies to coordinator mode (-coordinator)")
		}
		da, derr := startDebugServer(*debugAddr, tr)
		if derr != nil {
			return fmt.Errorf("debug listener: %w", derr)
		}
		fmt.Fprintf(os.Stderr, "crncheck: pprof on %s/debug/pprof/, traces on %s/debug/traces\n", da, da)
	}
	// SIGINT/SIGTERM cancel the run: engines unwind at their next
	// deterministic cancellation point (level barrier / grid chunk) and
	// return a wrapped context error instead of a partial verdict.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *joinAddr != "" {
		return runWorker(ctx, *joinAddr, *workers, *joinGrace, *abortLease, tr)
	}
	if *crnPath == "" || *fname == "" {
		return fmt.Errorf("need both -crn and -f (or -join addr)")
	}
	src, err := readAll(*crnPath)
	if err != nil {
		return err
	}
	c, err := parse.Parse(src)
	if err != nil {
		return err
	}
	f, ok := core.Library()[*fname]
	if !ok {
		return fmt.Errorf("unknown function %q", *fname)
	}
	if c.Dim() != f.Dim() {
		return fmt.Errorf("CRN takes %d inputs but %s takes %d", c.Dim(), f.Name, f.Dim())
	}
	if !*jsonOut {
		fmt.Fprintf(out, "structure: output-oblivious=%v output-monotonic=%v leader=%q species=%d reactions=%d\n",
			c.IsOutputOblivious(), c.IsOutputMonotonic(), c.Leader, c.NumSpecies(), len(c.Reactions))
	}
	d := f.Dim()
	los, his := make([]int64, d), make([]int64, d)
	for i := range los {
		los[i], his[i] = *lo, *hi
	}

	var res reach.GridResult
	if *coordAddr != "" {
		if *maxConfigs < 1 {
			// Local mode gives a nonpositive budget a defined (if useless)
			// meaning — everything inconclusive. The distributed job spec
			// reserves nonpositive for "default", so refuse loudly rather
			// than silently diverge from local mode.
			return fmt.Errorf("-maxconfigs must be >= 1 in coordinator mode")
		}
		co, cerr := dist.NewCoordinator(dist.CoordinatorConfig{
			CRN:        c,
			Func:       *fname,
			Lo:         los,
			Hi:         his,
			MaxConfigs: *maxConfigs,
			Shards:     *shards,
			LeaseTTL:   *lease,
			Checkpoint: *checkpoint,
			Tracer:     tr,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "crncheck: "+format+"\n", args...)
			},
		})
		if cerr != nil {
			return cerr
		}
		res, err = co.Run(ctx, *coordAddr)
	} else {
		checkOpts := []reach.Option{reach.WithMaxConfigs(*maxConfigs), reach.WithWorkers(*workers)}
		// Local runs trace too: a root span over the whole grid with engine
		// stage events as children, so -trace on a plain check yields a
		// useful Perfetto timeline.
		root := tr.StartSpan(time.Now(), "crncheck.check", trace.SpanContext{},
			trace.String("func", *fname))
		var rep progress.Reporter
		if *progFlag {
			rep = stderrProgress()
		}
		tp := trace.NewProgressReporter(tr, time.Now, root.Context())
		if multi := progress.Multi(rep, tp); multi != nil {
			checkOpts = append(checkOpts, reach.WithProgress(multi))
		}
		res, err = reach.CheckGridCtx(ctx, c, func(x []int64) int64 { return f.Eval(vec.New(x...)) },
			los, his, checkOpts...)
		tp.Finish(time.Now())
		outcome := "ok"
		switch {
		case err != nil:
			outcome = "error"
		case !res.OK():
			outcome = "failure"
		}
		root.End(time.Now(), trace.String("outcome", outcome))
	}
	if err != nil {
		return err
	}
	if *jsonOut {
		if err := writeJSONResult(out, res); err != nil {
			return err
		}
	} else {
		fmt.Fprintln(out, res)
		if !res.OK() && res.Failure.Verdict.Witness != nil {
			fmt.Fprintf(out, "witness schedule:\n%s", res.Failure.Verdict.Witness)
		}
	}
	if !res.OK() {
		return fmt.Errorf("verification failed")
	}
	return nil
}

// startDebugServer serves net/http/pprof and the span recorder on its own
// listener so profiles and traces come from a separate, operator-only port
// — never the protocol listener workers connect to. (The coordinator's
// protocol listener also serves /debug/traces for parity with crnserve.)
func startDebugServer(addr string, tr *trace.Tracer) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if tr != nil {
		mux.Handle("GET /debug/traces", tr.Handler())
	}
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr(), nil
}

// writeTraceFile dumps every finished span in the ring as Chrome
// trace-event JSON, loadable in Perfetto or chrome://tracing.
func writeTraceFile(path string, tr *trace.Tracer) error {
	b, err := trace.ExportChromeTrace(tr.Snapshot())
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// stderrProgress returns a reporter printing throttled "checked m/n"
// lines. Grid progress is posted from the aggregating goroutine only, so
// the unsynchronized lastPrint is safe.
func stderrProgress() progress.Reporter {
	var lastPrint time.Time
	return progress.Func(func(e progress.Event) {
		if now := time.Now(); now.Sub(lastPrint) >= 500*time.Millisecond {
			lastPrint = now
			fmt.Fprintf(os.Stderr, "crncheck: %s %d/%d\n", e.Stage, e.Done, e.Total)
		}
	})
}

// runWorker joins a coordinator and serves until the job is done or ctx is
// canceled (a canceled worker abandons its lease without reporting). The
// function library is resolved locally (core.Library), so worker and
// coordinator binaries must agree on it.
func runWorker(ctx context.Context, addr string, workers int, grace time.Duration, abortOnLeaseLoss bool, tr *trace.Tracer) error {
	w := &dist.Worker{
		Coordinator:      addr,
		Workers:          workers,
		Grace:            grace,
		AbortOnLeaseLoss: abortOnLeaseLoss,
		Tracer:           tr,
		Resolve: func(name string) (reach.Func, error) {
			f, ok := core.Library()[name]
			if !ok {
				return nil, fmt.Errorf("unknown function %q", name)
			}
			return func(x []int64) int64 { return f.Eval(vec.New(x...)) }, nil
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "crncheck: "+format+"\n", args...)
		},
	}
	return w.Run(ctx)
}

func writeJSONResult(out io.Writer, res reach.GridResult) error {
	b, err := reach.MarshalGridResultIndent(res)
	if err != nil {
		return err
	}
	_, err = out.Write(b)
	return err
}

func readAll(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
