// Command crncheck model-checks stable computation: it verifies, by
// exhaustive reachability analysis (the literal Section 2.2 definition),
// that a CRN stably computes a library function on a grid of inputs, and
// reports output-obliviousness and output-monotonicity.
//
// -workers sizes one shared work-stealing pool spanning both parallelism
// levels: workers check independent grid inputs while any remain, then
// migrate into the still-running explorations (stealing frontier slices),
// so skewed grids keep every core busy through the tail. Results — counts,
// the first failing input, its witness schedule — are byte-identical at
// every worker count and steal schedule.
//
// Usage:
//
//	crncheck -crn min.crn -f min -lo 0 -hi 5
//	crnsynth -f fig4a -n 2 -bound 8 | crncheck -crn - -f fig4a -hi 2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"crncompose/internal/core"
	"crncompose/internal/parse"
	"crncompose/internal/reach"
	"crncompose/internal/vec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crncheck:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("crncheck", flag.ContinueOnError)
	var (
		crnPath    = fs.String("crn", "", "CRN file (or - for stdin)")
		fname      = fs.String("f", "", "library function the CRN should compute (see crnsynth -list)")
		lo         = fs.Int64("lo", 0, "grid lower bound per coordinate")
		hi         = fs.Int64("hi", 3, "grid upper bound per coordinate")
		maxConfigs = fs.Int("maxconfigs", 1<<20, "reachability budget per input")
		workers    = fs.Int("workers", 0, "size of the shared work-stealing pool: workers check grid inputs concurrently and migrate into still-running explorations as inputs finish (0 = all CPUs, 1 = sequential)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *crnPath == "" || *fname == "" {
		return fmt.Errorf("need both -crn and -f")
	}
	src, err := readAll(*crnPath)
	if err != nil {
		return err
	}
	c, err := parse.Parse(src)
	if err != nil {
		return err
	}
	f, ok := core.Library()[*fname]
	if !ok {
		return fmt.Errorf("unknown function %q", *fname)
	}
	if c.Dim() != f.Dim() {
		return fmt.Errorf("CRN takes %d inputs but %s takes %d", c.Dim(), f.Name, f.Dim())
	}
	fmt.Fprintf(out, "structure: output-oblivious=%v output-monotonic=%v leader=%q species=%d reactions=%d\n",
		c.IsOutputOblivious(), c.IsOutputMonotonic(), c.Leader, c.NumSpecies(), len(c.Reactions))
	d := f.Dim()
	los, his := make([]int64, d), make([]int64, d)
	for i := range los {
		los[i], his[i] = *lo, *hi
	}
	res, err := reach.CheckGrid(c, func(x []int64) int64 { return f.Eval(vec.New(x...)) },
		los, his, reach.WithMaxConfigs(*maxConfigs), reach.WithWorkers(*workers))
	if err != nil {
		return err
	}
	fmt.Fprintln(out, res)
	if !res.OK() {
		if res.Failure.Verdict.Witness != nil {
			fmt.Fprintf(out, "witness schedule:\n%s", res.Failure.Verdict.Witness)
		}
		return fmt.Errorf("verification failed")
	}
	return nil
}

func readAll(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
