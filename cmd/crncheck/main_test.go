package main

import (
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func writeTempCRN(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.crn")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckMinOK(t *testing.T) {
	path := writeTempCRN(t, "#input X1 X2\n#output Y\nX1 + X2 -> Y\n")
	var sb strings.Builder
	if err := run([]string{"-crn", path, "-f", "min", "-hi", "4"}, &sb); err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "output-oblivious=true") || !strings.Contains(out, "ok:") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestCheckWrongCRNRefuted(t *testing.T) {
	// A sum CRN claimed to compute min.
	path := writeTempCRN(t, "#input X1 X2\n#output Y\nX1 -> Y\nX2 -> Y\n")
	var sb strings.Builder
	err := run([]string{"-crn", path, "-f", "min", "-hi", "2"}, &sb)
	if err == nil {
		t.Fatalf("wrong CRN verified:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "FAIL") {
		t.Errorf("no failure report:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "witness schedule") {
		t.Errorf("no witness schedule printed:\n%s", sb.String())
	}
}

func TestCheckArityMismatch(t *testing.T) {
	path := writeTempCRN(t, "#input X\n#output Y\nX -> Y\n")
	var sb strings.Builder
	if err := run([]string{"-crn", path, "-f", "min"}, &sb); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestCheckMissingFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{}, &sb); err == nil {
		t.Fatal("missing flags accepted")
	}
}

func TestCheckUnknownFunction(t *testing.T) {
	path := writeTempCRN(t, "#input X\n#output Y\nX -> Y\n")
	var sb strings.Builder
	if err := run([]string{"-crn", path, "-f", "bogus"}, &sb); err == nil {
		t.Fatal("unknown function accepted")
	}
}

func TestCheckJSONOutput(t *testing.T) {
	path := writeTempCRN(t, "#input X1 X2\n#output Y\nX1 + X2 -> Y\n")
	var sb strings.Builder
	if err := run([]string{"-crn", path, "-f", "min", "-hi", "2", "-json"}, &sb); err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	var res struct {
		Checked      int `json:"checked"`
		Inconclusive int `json:"inconclusive"`
		Explored     int `json:"explored"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &res); err != nil {
		t.Fatalf("output is not the GridResult encoding: %v\n%s", err, sb.String())
	}
	if res.Checked != 9 {
		t.Fatalf("checked = %d, want 9", res.Checked)
	}
	if strings.Contains(sb.String(), "structure:") {
		t.Fatalf("-json output mixes in human lines:\n%s", sb.String())
	}
}

// freePort reserves a localhost port for the coordinator.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestCheckDistributedModes runs the real CLI wiring end to end: a
// coordinator via run(..., -coordinator) and two workers via
// run(..., -join), all in-process, and requires the coordinator's -json
// output to be byte-identical to the local mode's.
func TestCheckDistributedModes(t *testing.T) {
	crnText := "#input X1 X2\n#output Y\nX1 + X2 -> Y\n"
	path := writeTempCRN(t, crnText)

	var local strings.Builder
	if err := run([]string{"-crn", path, "-f", "min", "-hi", "3", "-json"}, &local); err != nil {
		t.Fatalf("local: %v", err)
	}

	addr := freePort(t)
	var coord strings.Builder
	var wg sync.WaitGroup
	errc := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		errc <- run([]string{"-crn", path, "-f", "min", "-hi", "3", "-json",
			"-coordinator", addr, "-shards", "5"}, &coord)
	}()
	var workerWG sync.WaitGroup
	for i := 0; i < 2; i++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			if err := run([]string{"-join", addr}, new(strings.Builder)); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := <-errc; err != nil {
		t.Fatalf("coordinator: %v\n%s", err, coord.String())
	}
	workerWG.Wait()
	if coord.String() != local.String() {
		t.Fatalf("distributed output differs from local:\n%s\nvs\n%s", coord.String(), local.String())
	}
}

func TestCheckCoordinatorRefutedExitsNonzero(t *testing.T) {
	// A sum CRN claimed to compute min, checked distributed: the coordinator
	// must report the failure (witness schedule included) and return an
	// error, exactly like local mode.
	path := writeTempCRN(t, "#input X1 X2\n#output Y\nX1 -> Y\nX2 -> Y\n")
	addr := freePort(t)
	var coord strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-crn", path, "-f", "min", "-hi", "2", "-coordinator", addr, "-shards", "3"}, &coord)
	}()
	go func() {
		_ = run([]string{"-join", addr}, new(strings.Builder))
	}()
	err := <-done
	if err == nil {
		t.Fatalf("refuted grid verified:\n%s", coord.String())
	}
	if !strings.Contains(coord.String(), "FAIL") || !strings.Contains(coord.String(), "witness schedule") {
		t.Fatalf("missing failure report:\n%s", coord.String())
	}

	// Both modes print the structure line, the FAIL line, and the witness
	// schedule — and they must agree byte for byte.
	var localOut strings.Builder
	if lerr := run([]string{"-crn", path, "-f", "min", "-hi", "2"}, &localOut); lerr == nil {
		t.Fatal("local mode verified the refuted grid")
	}
	if coord.String() != localOut.String() {
		t.Fatalf("distributed failure report differs from local:\n%q\nvs\n%q", coord.String(), localOut.String())
	}
}
