package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTempCRN(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.crn")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckMinOK(t *testing.T) {
	path := writeTempCRN(t, "#input X1 X2\n#output Y\nX1 + X2 -> Y\n")
	var sb strings.Builder
	if err := run([]string{"-crn", path, "-f", "min", "-hi", "4"}, &sb); err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "output-oblivious=true") || !strings.Contains(out, "ok:") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestCheckWrongCRNRefuted(t *testing.T) {
	// A sum CRN claimed to compute min.
	path := writeTempCRN(t, "#input X1 X2\n#output Y\nX1 -> Y\nX2 -> Y\n")
	var sb strings.Builder
	err := run([]string{"-crn", path, "-f", "min", "-hi", "2"}, &sb)
	if err == nil {
		t.Fatalf("wrong CRN verified:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "FAIL") {
		t.Errorf("no failure report:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "witness schedule") {
		t.Errorf("no witness schedule printed:\n%s", sb.String())
	}
}

func TestCheckArityMismatch(t *testing.T) {
	path := writeTempCRN(t, "#input X\n#output Y\nX -> Y\n")
	var sb strings.Builder
	if err := run([]string{"-crn", path, "-f", "min"}, &sb); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestCheckMissingFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{}, &sb); err == nil {
		t.Fatal("missing flags accepted")
	}
}

func TestCheckUnknownFunction(t *testing.T) {
	path := writeTempCRN(t, "#input X\n#output Y\nX -> Y\n")
	var sb strings.Builder
	if err := run([]string{"-crn", path, "-f", "bogus"}, &sb); err == nil {
		t.Fatal("unknown function accepted")
	}
}
