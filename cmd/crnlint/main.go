// Command crnlint runs the repository's static-analysis suite: the
// determinism, httpx, mapiter, and errwrap analyzers that machine-check
// the invariants behind the byte-identity guarantees (see internal/lint).
//
// Usage:
//
//	go run ./cmd/crnlint ./...
//
// Exit status is 0 when the tree is clean, 1 on findings, 2 on usage or
// load errors. CI runs this alongside gofmt and go vet.
package main

import (
	"os"

	"crncompose/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
