package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crncompose/internal/lint"
)

// writeModule materializes a throwaway module to point crnlint at.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const goMod = "module example.com/tmp\n\ngo 1.24\n"

// TestSeededViolationsExitNonzero seeds one violation of each analyzer
// into a temp module and requires crnlint to exit 1, reporting each one —
// the self-test that the suite actually bites.
func TestSeededViolationsExitNonzero(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		analyzer string
		file     string
		src      string
	}{
		{"determinism", "internal/reach/r.go", `package reach

import "time"

func Clock() int64 { return time.Now().UnixNano() }
`},
		{"httpx", "web/web.go", `package web

import "net/http"

func Fetch(url string) (*http.Response, error) { return http.Get(url) }
`},
		{"mapiter", "internal/core/c.go", `package core

func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
`},
		{"errwrap", "internal/sim/s.go", `package sim

import "errors"

func Run() error { return errors.New("no prefix") }
`},
	} {
		t.Run(tc.analyzer, func(t *testing.T) {
			t.Parallel()
			dir := writeModule(t, map[string]string{"go.mod": goMod, tc.file: tc.src})
			var out, errOut strings.Builder
			code := lint.Main([]string{"-C", dir, "./..."}, &out, &errOut)
			if code != 1 {
				t.Fatalf("exit code %d, want 1 (stdout: %s stderr: %s)", code, out.String(), errOut.String())
			}
			if !strings.Contains(out.String(), "["+tc.analyzer+"]") {
				t.Errorf("stdout lacks a [%s] finding:\n%s", tc.analyzer, out.String())
			}
		})
	}
}

// TestCleanModuleExitsZero is the other half of the exit-code contract.
func TestCleanModuleExitsZero(t *testing.T) {
	t.Parallel()
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"internal/reach/r.go": `package reach

func Pure(x int) int { return x + 1 }
`,
	})
	var out, errOut strings.Builder
	if code := lint.Main([]string{"-C", dir, "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, want 0 (stdout: %s stderr: %s)", code, out.String(), errOut.String())
	}
}

// TestLoadErrorExitsTwo distinguishes "findings" from "could not lint".
func TestLoadErrorExitsTwo(t *testing.T) {
	t.Parallel()
	dir := t.TempDir() // no go.mod anywhere under a temp root
	var out, errOut strings.Builder
	if code := lint.Main([]string{"-C", dir}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2 (stderr: %s)", code, errOut.String())
	}
	dir = writeModule(t, map[string]string{
		"go.mod":   goMod,
		"bad/b.go": "package bad\n\nfunc broken() { undefined() }\n",
	})
	out.Reset()
	errOut.Reset()
	if code := lint.Main([]string{"-C", dir, "./..."}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d on type error, want 2 (stderr: %s)", code, errOut.String())
	}
}
