// Command crnserve runs the verification service (internal/serve): a
// long-running HTTP+JSON server exposing classification, synthesis, model
// checking, and simulation over the same engines the one-shot CLIs use,
// with a content-addressed result cache and in-flight deduplication so
// repeated or concurrent identical requests cost one computation, and
// asynchronous jobs for large grid checks.
//
// Flags:
//
//	-addr addr          listen address (default :7542)
//	-workers n          reach worker budget for synchronous checks and local
//	                    jobs (0 = all CPUs)
//	-cache-max n        result-cache capacity in entries, LRU-evicted beyond
//	                    it (default 1024; -1 disables caching)
//	-sync-grid n        largest grid (input points) checked synchronously on
//	                    the request path; larger checks become async jobs
//	                    (default 512)
//	-dist-coordinator addr
//	                    run async jobs through an internal/dist coordinator
//	                    on this host:port — external workers join with
//	                    `crncheck -join addr` and compute the rectangles
//	-shards n           rectangles per job: progress (and, in dist mode,
//	                    lease) granularity (0 = 16)
//	-lease d            dist-mode lease TTL before a silent worker's
//	                    rectangle is reassigned (default 30s)
//	-coordinator-grace d
//	                    dist-mode degradation watchdog: if the handoff cannot
//	                    start (address taken) or no rectangle completes for
//	                    this long (all workers lost), the job is re-run
//	                    locally and marked "degraded" — same bytes, one
//	                    process (default 10s; negative fails the job instead)
//	-max-jobs n         admission budget: async jobs executing concurrently,
//	                    each under its own cancellable context (default 2)
//	-job-ttl d          how long terminal jobs stay in the job table before
//	                    the janitor removes them; done results remain
//	                    reachable via the response cache (default 15m,
//	                    negative disables expiry)
//	-drain-timeout d    graceful-shutdown budget: on SIGINT/SIGTERM the
//	                    server stops admitting (readyz flips to 503), lets
//	                    in-flight jobs finish within this budget, cancels
//	                    the rest, and exits 0 (default 30s)
//	-debug-addr addr    serve net/http/pprof profiles and the span recorder
//	                    (GET /debug/traces; ?format=chrome for a
//	                    Perfetto-loadable trace) on a separate listener
//	                    (host:port); empty disables. Profiles and traces
//	                    never share the public listener, so an exposed
//	                    API port cannot leak heap profiles or request
//	                    attributes
//	-trace-cap n        finished spans kept in the trace ring buffer,
//	                    oldest evicted beyond it (default 4096)
//
// GET /metrics on the public listener renders every operational
// counter (cache, jobs, per-endpoint latency, engine progress, httpx
// retries, span counts) in the Prometheus text exposition format; see
// README.md ("Observability").
//
// Quickstart:
//
//	crnserve -addr :7542 &
//	curl -s :7542/v1/synthesize -d '{"func":"min"}'
//	curl -s :7542/v1/check -d '{"crn":"...","func":"min","hi":5}'
//
// A /v1/check response is byte-identical to `crncheck -json` for the same
// CRN, function, and bounds; see README.md ("Serving") for the full tour.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crncompose/internal/dist"
	"crncompose/internal/serve"
	"crncompose/internal/trace"
)

// startDebugServer serves net/http/pprof — and, when tr is non-nil, the
// span recorder at /debug/traces — on its own listener so profiles and
// traces come from a separate, operator-only port — never the public API
// one. Returns the bound address (port 0 picks a free one).
func startDebugServer(addr string, tr *trace.Tracer) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if tr != nil {
		mux.Handle("GET /debug/traces", tr.Handler())
	}
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr(), nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "crnserve:", err)
		os.Exit(1)
	}
}

// run starts the server and blocks until ctx is done (nil ctx = interrupt).
// The listening address is printed to out once the server is up.
func run(args []string, out io.Writer, ctx context.Context) error {
	fs := flag.NewFlagSet("crnserve", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":7542", "listen address")
		workers   = fs.Int("workers", 0, "reach worker budget for synchronous checks and local jobs (0 = all CPUs)")
		cacheMax  = fs.Int("cache-max", serve.DefaultCacheMax, "result-cache capacity in entries, LRU-evicted beyond it (-1 disables caching)")
		syncGrid  = fs.Int64("sync-grid", serve.DefaultSyncGridLimit, "largest grid (input points) checked synchronously; larger checks become async jobs")
		distCoord = fs.String("dist-coordinator", "", "run async jobs through a dist coordinator on this host:port (workers join with `crncheck -join`)")
		shards    = fs.Int("shards", 0, "rectangles per async job: progress and lease granularity (0 = 16)")
		lease     = fs.Duration("lease", dist.DefaultLeaseTTL, "dist-mode lease TTL before a silent worker's rectangle is reassigned")
		coGrace   = fs.Duration("coordinator-grace", serve.DefaultCoordinatorGrace, "dist-mode degradation watchdog: if a handoff cannot start, or no rectangle completes for this long, the job falls back to local execution marked degraded (negative disables the fallback)")
		maxJobs   = fs.Int("max-jobs", serve.DefaultMaxJobs, "async jobs executing concurrently (admission budget)")
		jobTTL    = fs.Duration("job-ttl", serve.DefaultJobTTL, "terminal-job lifetime in the job table (negative disables expiry; done results stay cached)")
		drainTO   = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget: in-flight jobs get this long to finish on SIGINT/SIGTERM before being canceled")
		debugAddr = fs.String("debug-addr", "", "serve net/http/pprof and /debug/traces on a separate listener (host:port); empty disables")
		traceCap  = fs.Int("trace-cap", trace.DefaultCap, "finished spans kept in the trace ring buffer (oldest evicted beyond it); 0 = default")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr := trace.New(trace.Options{Proc: "crnserve", Cap: *traceCap})
	if *debugAddr != "" {
		da, err := startDebugServer(*debugAddr, tr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		fmt.Fprintf(os.Stderr, "crnserve: pprof on %s/debug/pprof/, traces on %s/debug/traces\n", da, da)
	}
	s := serve.New(serve.Config{
		Workers:          *workers,
		CacheMax:         *cacheMax,
		SyncGridLimit:    *syncGrid,
		DistCoordinator:  *distCoord,
		Shards:           *shards,
		LeaseTTL:         *lease,
		CoordinatorGrace: *coGrace,
		MaxJobs:          *maxJobs,
		JobTTL:           *jobTTL,
		Tracer:           tr,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "crnserve: "+format+"\n", args...)
		},
	})
	if err := s.Start(*addr); err != nil {
		return err
	}
	fmt.Fprintf(out, "crnserve: listening on %s\n", s.Addr())
	if ctx == nil {
		var stop context.CancelFunc
		ctx, stop = signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
	}
	<-ctx.Done()
	// Graceful drain: stop admitting, let in-flight jobs finish within the
	// budget, cancel the rest, exit 0.
	dctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	return s.Drain(dctx)
}
