package main

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRunServesAndShutsDown boots the real command path on an ephemeral
// port, checks liveness and one round trip, then shuts down via context.
func TestRunServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncWriter{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1"}, out, ctx)
	}()

	base := ""
	for deadline := time.Now().Add(10 * time.Second); ; {
		s := out.String()
		if i := strings.Index(s, "listening on "); i >= 0 && strings.Contains(s[i:], "\n") {
			addr := s[i+len("listening on "):]
			base = "http://" + strings.TrimSpace(addr[:strings.Index(addr, "\n")])
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address: %q", s)
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	body := `{"crn":"#input X1 X2\n#output Y\nX1 + X2 -> Y\n","func":"min","hi":1}`
	resp, err = http.Post(base+"/v1/check", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(buf.Bytes(), []byte(`"checked": 4`)) {
		t.Fatalf("check: %d %s", resp.StatusCode, buf.String())
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after context cancel")
	}
}

func TestRunBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bogus"}, &out, context.Background()); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-addr", "256.0.0.1:99999"}, &out, context.Background()); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}

// syncWriter serializes writes so the polling reader above is race-free.
type syncWriter struct {
	mu sync.Mutex
	sb strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.String()
}
