// Command crnsim simulates a CRN read from a file (or stdin) in the text
// format of internal/parse, using either the exact Gillespie algorithm or
// the fair uniform-random scheduler.
//
// Usage:
//
//	crnsim -crn min.crn -x 100,80 [-method gillespie|fair] [-trials 10]
//	       [-seed 1] [-maxsteps 50000000] [-v]
//
// With -crn - the CRN is read from stdin. The tool prints per-trial final
// outputs and an ensemble summary. SIGINT/SIGTERM cancel the ensemble: each
// trial stops at its next step-window boundary and the command reports the
// interruption instead of partial trials.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"crncompose/internal/parse"
	"crncompose/internal/sim"
	"crncompose/internal/trace"
	"crncompose/internal/vec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crnsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("crnsim", flag.ContinueOnError)
	var (
		crnPath   = fs.String("crn", "", "CRN file (or - for stdin)")
		inputStr  = fs.String("x", "", "comma-separated input counts, e.g. 100,80")
		method    = fs.String("method", "fair", "scheduler: gillespie or fair")
		trials    = fs.Int("trials", 1, "number of independent trials")
		seed      = fs.Uint64("seed", 1, "base RNG seed")
		maxSteps  = fs.Int64("maxsteps", 50_000_000, "step budget per trial")
		silent    = fs.Int64("silent", 0, "convergence after this many output-silent steps (0 = terminal only)")
		verbose   = fs.Bool("v", false, "print the parsed CRN and per-trial details")
		traceFile = fs.String("trace", "", "write the run's spans to this file as Chrome trace-event JSON (load in Perfetto / chrome://tracing)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr := trace.New(trace.Options{Proc: "crnsim"})
	if *traceFile != "" {
		defer func() {
			if werr := writeTraceFile(*traceFile, tr); werr != nil {
				fmt.Fprintf(os.Stderr, "crnsim: writing -trace: %v\n", werr)
			}
		}()
	}
	if *crnPath == "" {
		return fmt.Errorf("missing -crn (use - for stdin)")
	}
	src, err := readAll(*crnPath)
	if err != nil {
		return err
	}
	c, err := parse.Parse(src)
	if err != nil {
		return err
	}
	x, err := parseInputs(*inputStr, c.Dim())
	if err != nil {
		return err
	}
	if *verbose {
		fmt.Fprintf(out, "parsed CRN (%d species, %d reactions, output-oblivious=%v):\n%s\n",
			c.NumSpecies(), len(c.Reactions), c.IsOutputOblivious(), c)
	}
	start, err := c.InitialConfig(x)
	if err != nil {
		return err
	}
	var runner sim.RunnerCtx
	switch *method {
	case "gillespie":
		runner = sim.GillespieCtx
	case "fair":
		runner = sim.FairRandomCtx
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	opts := []sim.Option{sim.WithMaxSteps(*maxSteps)}
	if *silent > 0 {
		opts = append(opts, sim.WithSilentSteps(*silent))
	}
	// SIGINT/SIGTERM cancel the ensemble (results are trial-for-trial
	// identical to the plain Ensemble when uninterrupted).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	sp := tr.StartSpan(time.Now(), "crnsim.ensemble", trace.SpanContext{},
		trace.String("method", *method), trace.Int("trials", int64(*trials)))
	results, err := sim.EnsembleCtx(ctx, runner, start, *trials, *seed, opts...)
	outcome := "ok"
	if err != nil {
		outcome = "error"
	}
	sp.End(time.Now(), trace.String("outcome", outcome))
	if err != nil {
		return err
	}
	for i, r := range results {
		if *verbose {
			fmt.Fprintf(out, "trial %d: output=%d steps=%d converged=%v final=%s\n",
				i, r.Final.Output(), r.Steps, r.Converged, r.Final)
		} else {
			fmt.Fprintf(out, "trial %d: output=%d steps=%d converged=%v\n",
				i, r.Final.Output(), r.Steps, r.Converged)
		}
	}
	st := sim.Summarize(results)
	fmt.Fprintf(out, "summary: trials=%d converged=%d output[min=%d max=%d mean=%.2f] allEqual=%v medianSteps=%d\n",
		st.Trials, st.Converged, st.MinOutput, st.MaxOutput, st.MeanOutput, st.AllEqual, st.MedianSteps)
	return nil
}

// writeTraceFile dumps every finished span in the ring as Chrome
// trace-event JSON, loadable in Perfetto or chrome://tracing.
func writeTraceFile(path string, tr *trace.Tracer) error {
	b, err := trace.ExportChromeTrace(tr.Snapshot())
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

func readAll(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func parseInputs(s string, d int) (vec.V, error) {
	if s == "" {
		if d == 0 {
			return vec.V{}, nil
		}
		return nil, fmt.Errorf("missing -x (CRN takes %d inputs)", d)
	}
	parts := strings.Split(s, ",")
	if len(parts) != d {
		return nil, fmt.Errorf("-x has %d values, CRN takes %d inputs", len(parts), d)
	}
	x := make(vec.V, d)
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad input %q: %w", p, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("negative input %d", v)
		}
		x[i] = v
	}
	return x, nil
}
