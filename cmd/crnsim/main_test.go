package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTempCRN(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.crn")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const minSrc = "#input X1 X2\n#output Y\nX1 + X2 -> Y\n"

func TestRunFair(t *testing.T) {
	path := writeTempCRN(t, minSrc)
	var sb strings.Builder
	err := run([]string{"-crn", path, "-x", "30,18", "-trials", "3"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "output=18") {
		t.Errorf("missing correct output:\n%s", out)
	}
	if !strings.Contains(out, "allEqual=true") {
		t.Errorf("trials disagree:\n%s", out)
	}
}

func TestRunGillespie(t *testing.T) {
	path := writeTempCRN(t, minSrc)
	var sb strings.Builder
	if err := run([]string{"-crn", path, "-x", "10,4", "-method", "gillespie"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "output=4") {
		t.Errorf("gillespie output wrong:\n%s", sb.String())
	}
}

func TestRunVerbose(t *testing.T) {
	path := writeTempCRN(t, minSrc)
	var sb strings.Builder
	if err := run([]string{"-crn", path, "-x", "1,1", "-v"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "output-oblivious=true") {
		t.Errorf("verbose header missing:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTempCRN(t, minSrc)
	tests := []struct {
		name string
		args []string
	}{
		{"missing crn", []string{"-x", "1,1"}},
		{"arity mismatch", []string{"-crn", path, "-x", "1"}},
		{"negative input", []string{"-crn", path, "-x", "-1,1"}},
		{"bad method", []string{"-crn", path, "-x", "1,1", "-method", "warp"}},
		{"missing inputs", []string{"-crn", path}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			if err := run(tc.args, &sb); err == nil {
				t.Errorf("expected error, got output:\n%s", sb.String())
			}
		})
	}
}
