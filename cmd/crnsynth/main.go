// Command crnsynth synthesizes an output-oblivious CRN for a function from
// the paper's library and emits it in the text format understood by crnsim
// and crncheck.
//
// Usage:
//
//	crnsynth -f min                    # general construction (Lemma 6.2)
//	crnsynth -f floor3x2 -leaderless   # Theorem 9.2 (1D superadditive only)
//	crnsynth -list                     # list available functions
//	crnsynth -f max                    # fails with the Lemma 4.1 witness
//	crnsynth -f min -verify 3          # synthesize, then model-check on [0,3]^d
//
// Flags -bound and -n tune the classifier census bound and the eventual
// threshold (smaller n ⇒ smaller CRN, when valid). -verify model-checks the
// synthesized CRN before emitting it on a shared work-stealing pool of
// -workers goroutines spanning grid inputs and per-input exploration.
//
// SIGINT/SIGTERM cancel the pipeline cleanly: classification, synthesis,
// and verification all stop at their next deterministic cancellation point
// and the command reports the interruption instead of emitting anything.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"crncompose/internal/core"
	"crncompose/internal/reach"
	"crncompose/internal/semilinear"
	"crncompose/internal/synth"
	"crncompose/internal/trace"
	"crncompose/internal/vec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crnsynth:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("crnsynth", flag.ContinueOnError)
	var (
		name       = fs.String("f", "", "function name (see -list)")
		list       = fs.Bool("list", false, "list available functions")
		leaderless = fs.Bool("leaderless", false, "use the leaderless Theorem 9.2 construction (1D superadditive only)")
		bound      = fs.Int64("bound", 0, "classifier census bound (0 = default)")
		n          = fs.Int64("n", 0, "eventual threshold override (0 = classifier's)")
		stats      = fs.Bool("stats", false, "print size statistics instead of the CRN")
		verify     = fs.Int64("verify", -1, "model-check the synthesized CRN on the grid [0,N]^d before emitting it (-1 = off)")
		workers    = fs.Int("workers", 0, "verification worker pool size; the shared work-stealing pool spans grid inputs and per-input exploration (0 = all CPUs)")
		maxConfigs = fs.Int("maxconfigs", 1<<20, "verification reachability budget per input")
		traceFile  = fs.String("trace", "", "write the run's spans to this file as Chrome trace-event JSON (load in Perfetto / chrome://tracing)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr := trace.New(trace.Options{Proc: "crnsynth"})
	if *traceFile != "" {
		defer func() {
			if werr := writeTraceFile(*traceFile, tr); werr != nil {
				fmt.Fprintf(os.Stderr, "crnsynth: writing -trace: %v\n", werr)
			}
		}()
	}
	if *list {
		fmt.Fprintln(out, strings.Join(core.LibraryNames(), "\n"))
		return nil
	}
	f, ok := core.Library()[*name]
	if !ok {
		return fmt.Errorf("unknown function %q (try -list)", *name)
	}
	if *leaderless {
		return synthLeaderless(f, out, *stats)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	root := tr.StartSpan(time.Now(), "crnsynth.compile", trace.SpanContext{}, trace.String("func", *name))
	sys, err := core.Compile(f, core.CompileOptions{Bound: *bound, N: *n, Ctx: ctx})
	if err != nil {
		root.End(time.Now(), trace.String("outcome", "error"))
		var nce *synth.NotComputableError
		if errors.As(err, &nce) && nce.Result.Contradiction != nil {
			return fmt.Errorf("%w\n%s", err, nce.Result.Contradiction)
		}
		return err
	}
	root.End(time.Now(), trace.String("outcome", "ok"))
	if *verify >= 0 {
		vsp := tr.StartSpan(time.Now(), "crnsynth.verify", trace.SpanContext{},
			trace.String("func", *name), trace.Int("hi", *verify))
		res, verr := sys.VerifyCtx(ctx, 0, *verify, reach.WithWorkers(*workers), reach.WithMaxConfigs(*maxConfigs))
		outcome := "ok"
		switch {
		case verr != nil:
			outcome = "error"
		case !res.OK():
			outcome = "failure"
		}
		vsp.End(time.Now(), trace.String("outcome", outcome))
		if verr != nil {
			return verr
		}
		if !res.OK() {
			return fmt.Errorf("synthesized CRN failed verification: %s", res)
		}
		fmt.Fprintf(os.Stderr, "verified: %s\n", res)
	}
	if *stats {
		fmt.Fprintf(out, "function=%s species=%d reactions=%d terms=%d n=%s oblivious=%v\n",
			f.Name, sys.Net.NumSpecies(), len(sys.Net.Reactions),
			len(sys.Analysis.EventualMin.Terms), sys.Analysis.N, sys.Net.IsOutputOblivious())
		return nil
	}
	fmt.Fprint(out, sys.Net)
	return nil
}

// writeTraceFile dumps every finished span in the ring as Chrome
// trace-event JSON, loadable in Perfetto or chrome://tracing.
func writeTraceFile(path string, tr *trace.Tracer) error {
	b, err := trace.ExportChromeTrace(tr.Snapshot())
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

func synthLeaderless(f *semilinear.Func, out io.Writer, stats bool) error {
	if f.Dim() != 1 {
		return fmt.Errorf("leaderless construction is 1D only (Theorem 9.2); %s takes %d inputs", f.Name, f.Dim())
	}
	spec, err := synth.FitOneDim(func(x int64) int64 { return f.Eval(vec.New(x)) }, 0, 0)
	if err != nil {
		return err
	}
	c, err := synth.LeaderlessOneDim(spec)
	if err != nil {
		return err
	}
	if stats {
		fmt.Fprintf(out, "function=%s species=%d reactions=%d leaderless=true\n",
			f.Name, c.NumSpecies(), len(c.Reactions))
		return nil
	}
	fmt.Fprint(out, c)
	return nil
}
