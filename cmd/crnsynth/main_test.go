package main

import (
	"strings"
	"testing"

	"crncompose/internal/parse"
)

func TestList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"min", "max", "fig7", "floor3x2"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestSynthFloor3x2ParsesBack(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-f", "floor3x2"}, &sb); err != nil {
		t.Fatal(err)
	}
	c, err := parse.Parse(sb.String())
	if err != nil {
		t.Fatalf("emitted CRN does not reparse: %v\n%s", err, sb.String())
	}
	if !c.IsOutputOblivious() {
		t.Error("synthesized CRN not output-oblivious")
	}
	if c.Leader == "" {
		t.Error("Theorem 3.1 CRN should have a leader")
	}
}

func TestSynthLeaderless(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-f", "floor3x2", "-leaderless"}, &sb); err != nil {
		t.Fatal(err)
	}
	c, err := parse.Parse(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if c.Leader != "" {
		t.Error("leaderless synthesis produced a leader")
	}
}

func TestSynthLeaderlessRejectsNonSuperadditive(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-f", "min1", "-leaderless"}, &sb); err == nil {
		t.Fatal("min(1,x) accepted by leaderless synthesis (Observation 9.1)")
	}
}

func TestSynthLeaderlessRejects2D(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-f", "min", "-leaderless"}, &sb); err == nil {
		t.Fatal("2D function accepted by 1D-only leaderless path")
	}
}

func TestSynthStats2D(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-f", "fig4a", "-bound", "8", "-n", "2", "-stats"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "oblivious=true") {
		t.Errorf("stats output wrong:\n%s", sb.String())
	}
}

func TestSynthMaxFailsWithWitness(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-f", "max"}, &sb)
	if err == nil {
		t.Fatal("max synthesized")
	}
	if !strings.Contains(err.Error(), "Lemma 4.1") {
		t.Errorf("error lacks the contradiction: %v", err)
	}
}

func TestUnknownFunction(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-f", "nonsense"}, &sb); err == nil {
		t.Fatal("unknown function accepted")
	}
}

func TestSynthVerify(t *testing.T) {
	// Small grid so the general-construction state spaces stay tractable.
	var sb strings.Builder
	if err := run([]string{"-f", "min1", "-verify", "1", "-workers", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if _, err := parse.Parse(sb.String()); err != nil {
		t.Fatalf("verified CRN does not reparse: %v", err)
	}
}
