// Command figures regenerates the data behind every figure of the paper
// (Figures 1–8) as CSV files, one per figure, in the output directory.
//
// Usage:
//
//	figures [-out out] [-only fig7]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"crncompose/internal/figures"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	outDir := fs.String("out", "out", "output directory for CSV files")
	only := fs.String("only", "", "generate only the named figure (fig1..fig8)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tables, err := figures.All()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	for _, t := range tables {
		if *only != "" && t.Name != *only {
			continue
		}
		path := filepath.Join(*outDir, t.Name+".csv")
		if err := writeCSV(path, t); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d rows)\n", path, len(t.Rows))
	}
	return nil
}

func writeCSV(path string, t *figures.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
