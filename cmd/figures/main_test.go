package main

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"testing"
)

func TestRunWritesAllFigures(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir}); err != nil {
		t.Fatal(err)
	}
	want := []string{"fig1", "fig2", "fig3a", "fig3b", "fig4a", "fig4b", "fig5", "fig6", "fig7", "fig8"}
	for _, name := range want {
		path := filepath.Join(dir, name+".csv")
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		rows, err := csv.NewReader(f).ReadAll()
		f.Close()
		if err != nil {
			t.Fatalf("%s: invalid CSV: %v", name, err)
		}
		if len(rows) < 2 {
			t.Errorf("%s: only %d rows", name, len(rows))
		}
	}
}

func TestRunOnlyFilter(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-only", "fig8"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "fig8.csv" {
		t.Errorf("entries = %v", entries)
	}
}
