package crncompose

// Property tests for the composition semantics of Section 2.3 at the
// whole-pipeline level: concatenations of synthesized output-oblivious
// modules compute the composed functions.

import (
	"math/rand/v2"
	"testing"

	"crncompose/internal/compose"
	"crncompose/internal/quilt"
	"crncompose/internal/rat"
	"crncompose/internal/reach"
	"crncompose/internal/sim"
	"crncompose/internal/synth"
	"crncompose/internal/vec"
)

// TestCompositionClosureProperty: for random quilt-affine g (1D) and the
// min CRN as upstream f, the concatenation computes g(min(x1, x2))
// (Observation 2.2), and the concatenation of two output-oblivious CRNs is
// output-oblivious.
func TestCompositionClosureProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 2))
	for trial := 0; trial < 12; trial++ {
		// Random 1D quilt-affine g with period p and nonnegative deltas.
		p := 1 + rng.Int64N(3)
		deltas := make([]int64, p)
		var sum int64
		for i := range deltas {
			deltas[i] = rng.Int64N(3)
			sum += deltas[i]
		}
		if sum == 0 {
			deltas[0] = 1
			sum = 1
		}
		g0 := rng.Int64N(3)
		geval := func(x int64) int64 {
			v := g0
			for k := int64(0); k < x; k++ {
				v += deltas[k%p]
			}
			return v
		}
		grad := rat.New(sum, p)
		offsets := make([]rat.R, p)
		for a := int64(0); a < p; a++ {
			offsets[a] = rat.FromInt(geval(a)).Sub(grad.MulInt(a))
		}
		gq, err := quilt.New(rat.NewVec(grad), p, offsets)
		if err != nil {
			t.Fatalf("trial %d: %v (deltas=%v)", trial, err, deltas)
		}
		gcrn, err := synth.FromQuilt(gq)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		comp, err := compose.Concat(synth.MinCRN(2), gcrn)
		if err != nil {
			t.Fatal(err)
		}
		if !comp.IsOutputOblivious() {
			t.Fatal("composition of oblivious CRNs not oblivious")
		}
		want := func(x []int64) int64 { return geval(min(x[0], x[1])) }
		res, err := reach.CheckGrid(comp, want, []int64{0, 0}, []int64{3, 3})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK() {
			t.Fatalf("trial %d (deltas=%v g0=%d): %v", trial, deltas, g0, res)
		}
		// And a larger input via simulation.
		x := vec.New(5+rng.Int64N(20), 5+rng.Int64N(20))
		r := sim.FairRandom(comp.MustInitialConfig(x), sim.WithSeed(uint64(trial)))
		if !r.Converged || r.Final.Output() != want(x) {
			t.Fatalf("trial %d: sim %v -> %d, want %d", trial, x, r.Final.Output(), want(x))
		}
	}
}

// TestThreeStagePipeline chains three modules: clamp → double → quilt,
// i.e. h(x) = g(2·(x−2)+) for a quilt-affine g, all by concatenation.
func TestThreeStagePipeline(t *testing.T) {
	g := quilt.MustNew(rat.NewVec(rat.New(3, 2)), 2, []rat.R{rat.Zero(), rat.New(-1, 2)})
	gcrn, err := synth.FromQuilt(g)
	if err != nil {
		t.Fatal(err)
	}
	stage1, err := compose.Concat(synth.ClampCRN(2), synth.DoubleCRN())
	if err != nil {
		t.Fatal(err)
	}
	full, err := compose.Concat(stage1, gcrn)
	if err != nil {
		t.Fatal(err)
	}
	if !full.IsOutputOblivious() {
		t.Fatal("pipeline not output-oblivious")
	}
	want := func(x []int64) int64 {
		v := max(x[0]-2, 0) * 2
		return 3 * v / 2
	}
	res, err := reach.CheckGrid(full, want, []int64{0}, []int64{8})
	if err != nil || !res.OK() {
		t.Fatalf("%v %v", err, res)
	}
}
