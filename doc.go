// Package crncompose is a from-scratch Go reproduction of
//
//	Severson, Haley, Doty. "Composable computation in discrete chemical
//	reaction networks." PODC 2019 (arXiv:1903.02637).
//
// The paper characterizes the functions f : N^d → N stably computable by
// output-oblivious CRNs — those whose output species is never a reactant —
// which is exactly the class composable by concatenation. This module
// implements the full constructive content of the paper:
//
//   - internal/vec: exact integer vector arithmetic, the pointwise order,
//     congruences, and the 64-bit count-vector hash used for interning;
//   - internal/crn, internal/parse: the discrete CRN model (with
//     allocation-free dense-row applicability/apply accessors for the
//     explorer) and a text format;
//   - internal/reach: an exhaustive stable-computation model checker
//     (the literal Section 2.2 definition) built on a configuration arena
//     with sharded hash interning and CSR edge storage; one shared
//     work-stealing pool serves both parallelism levels — workers check
//     grid inputs while any remain, then migrate into still-running
//     explorations — with graphs byte-identical to the sequential
//     engine's at any worker count and steal schedule; every engine
//     entry point has a ...Ctx variant that cancels at deterministic
//     points (level barriers, grid-chunk boundaries) and returns a
//     wrapped context error, never a partial verdict;
//   - internal/dist: the distributed grid checker — a coordinator that
//     shards CheckGrid into grid-order rectangles leased to workers over
//     HTTP+JSON, with expired leases reassigned (a killed worker never
//     loses the run), completed rectangles checkpointed for coordinator
//     restart, and a deterministic merge making the final GridResult
//     byte-identical to a single-process run at any worker count, join
//     order, or crash schedule;
//   - internal/serve: verification as a service — a long-running HTTP+JSON
//     server (cmd/crnserve) over the classify/synthesize/check/simulate
//     pipeline with a content-addressed result cache (SHA-256 of the
//     canonical request; the engines' determinism makes replayed bytes
//     indistinguishable from recomputation), in-flight deduplication of
//     identical concurrent requests, and asynchronous grid jobs — executed
//     concurrently under an admission budget on the local steal pool or
//     handed to an internal/dist coordinator, cancellable via DELETE, and
//     drained gracefully on SIGTERM; /v1/check bodies are byte-identical
//     to crncheck -json; a dist handoff that cannot start or stalls past
//     a grace window degrades to local execution — same bytes, marked
//     "degraded" in the job status;
//   - internal/httpx: the one retrying HTTP client every cross-process
//     call in dist and serve goes through — full-jitter exponential
//     backoff, per-attempt timeouts, a wall-clock retry budget, and the
//     4xx/5xx retryability split (server errors and transport failures
//     retry; rejections fail fast);
//   - internal/metrics: a stdlib-only metrics registry — atomic
//     counters, gauges, and fixed-bucket histograms with bounded label
//     vectors — rendering the Prometheus text exposition format 0.0.4
//     deterministically (sorted families and label sets); every timing
//     primitive takes its instants from the caller, so the package
//     never reads a clock and the determinism analyzer still catches
//     engines laundering time.Now through a metrics timer; surfaced at
//     GET /metrics on crnserve and on the dist coordinator;
//   - internal/trace: a stdlib-only distributed-tracing recorder — W3C
//     traceparent ids from an injectable generator, spans in a bounded
//     ring buffer, deterministic byte-stable JSON export and Chrome
//     trace-event (Perfetto-loadable) export, GET /debug/traces on the
//     operator listeners; every span instant comes from the caller
//     (StartSpan(now)/End(now)), so the package never reads a clock and
//     sits in the crnlint engine set itself; one trace id follows a
//     request from the serve root span through the coordinator's lease
//     spans to worker rectangle spans shipped back with each result;
//   - internal/faultnet: deterministic seeded fault injection for chaos
//     tests — RoundTripper and Listener wrappers that refuse, time out,
//     inject 5xx, slow, or drop-after-commit requests on a pure
//     function of (seed, request index), so every failure schedule is
//     reproducible from its seed;
//   - internal/lint: the repository's own static-analysis suite
//     (cmd/crnlint), stdlib-only go/parser + go/types passes that
//     machine-check the invariants behind the byte-identity guarantees:
//     no wall clocks or package-global randomness in engine packages
//     (determinism), no HTTP outside internal/httpx (httpx), no
//     map-iteration order leaking into output (mapiter), and
//     package-prefixed %w-wrapped errors at engine entry points
//     (errwrap); findings are suppressible only by an inline
//     //crnlint:ignore directive with a reason, and CI requires the
//     tree to lint clean;
//   - internal/progress: the progress.Reporter seam every long-running
//     engine reports through (checked grid inputs, explored levels,
//     simulation steps, synthesized modules) — the hook the CLI progress
//     printers and the internal/metrics per-stage families attach to;
//     the stage strings and their Done/Total semantics are pinned by
//     a cross-engine contract test;
//   - internal/sim: Gillespie and fair-random stochastic simulation, both
//     maintaining their hot state (propensities, the applicable set)
//     incrementally over the CRN's memoized reaction dependency graph,
//     with a sound silence criterion (convergence additionally requires
//     every applicable reaction to be output-neutral), adversarial
//     schedulers, parallel ensembles;
//   - internal/semilinear, internal/quilt: semilinear functions
//     (Definition 2.6) and quilt-affine functions (Definition 5.1);
//   - internal/geometry: hyperplane arrangements, regions, recession
//     cones, strips (Section 7), decided exactly with rational
//     Fourier–Motzkin elimination;
//   - internal/classify: the Theorem 5.2 decision procedure producing
//     eventually-min-of-quilt-affine normal forms or Lemma 4.1
//     contradictions;
//   - internal/witness: contradiction-sequence search and the Figure 6
//     overproduction-trace construction;
//   - internal/synth: every CRN construction in the paper (Lemma 6.1,
//     Theorem 3.1, Theorem 9.2, Observation 2.4, and the recursive
//     Lemma 6.2 general construction);
//   - internal/compose: concatenation and feed-forward module wiring
//     (Section 2.3);
//   - internal/pp: the population-protocol substrate (footnote 5);
//   - internal/scaling: the ∞-scaling bridge to continuous CRNs
//     (Theorem 8.2);
//   - internal/core: the end-to-end facade;
//   - internal/figures: regeneration of the data behind Figures 1–8.
//
// See README.md for build/usage instructions and benchmark numbers; the
// BENCH_*.json files (regenerated by cmd/bench) track the hot-path
// performance trajectory.
package crncompose
