// Package crncompose is a from-scratch Go reproduction of
//
//	Severson, Haley, Doty. "Composable computation in discrete chemical
//	reaction networks." PODC 2019 (arXiv:1903.02637).
//
// The paper characterizes the functions f : N^d → N stably computable by
// output-oblivious CRNs — those whose output species is never a reactant —
// which is exactly the class composable by concatenation. This module
// implements the full constructive content of the paper:
//
//   - internal/vec: exact integer vector arithmetic, the pointwise order,
//     congruences, and the 64-bit count-vector hash used for interning;
//   - internal/crn, internal/parse: the discrete CRN model (with
//     allocation-free dense-row applicability/apply accessors for the
//     explorer) and a text format;
//   - internal/reach: an exhaustive stable-computation model checker
//     (the literal Section 2.2 definition) built on a flat configuration
//     arena with hash interning, CSR edge storage, and a parallel grid
//     verifier;
//   - internal/sim: Gillespie and fair-random stochastic simulation,
//     adversarial schedulers, parallel ensembles;
//   - internal/semilinear, internal/quilt: semilinear functions
//     (Definition 2.6) and quilt-affine functions (Definition 5.1);
//   - internal/geometry: hyperplane arrangements, regions, recession
//     cones, strips (Section 7), decided exactly with rational
//     Fourier–Motzkin elimination;
//   - internal/classify: the Theorem 5.2 decision procedure producing
//     eventually-min-of-quilt-affine normal forms or Lemma 4.1
//     contradictions;
//   - internal/witness: contradiction-sequence search and the Figure 6
//     overproduction-trace construction;
//   - internal/synth: every CRN construction in the paper (Lemma 6.1,
//     Theorem 3.1, Theorem 9.2, Observation 2.4, and the recursive
//     Lemma 6.2 general construction);
//   - internal/compose: concatenation and feed-forward module wiring
//     (Section 2.3);
//   - internal/pp: the population-protocol substrate (footnote 5);
//   - internal/scaling: the ∞-scaling bridge to continuous CRNs
//     (Theorem 8.2);
//   - internal/core: the end-to-end facade;
//   - internal/figures: regeneration of the data behind Figures 1–8.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package crncompose
