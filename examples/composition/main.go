// Composition: the Section 1.2 motivating experiment. Output-oblivious
// CRNs compose by concatenation (Observation 2.2): 2·min(x1,x2) works by
// renaming min's output into the doubler's input. The same wiring applied
// to the non-output-oblivious max CRN races the downstream doubler against
// the upstream correction reaction K + W → ∅ and overshoots.
//
//	go run ./examples/composition
package main

import (
	"fmt"
	"log"

	"crncompose/internal/compose"
	"crncompose/internal/reach"
	"crncompose/internal/sim"
	"crncompose/internal/synth"
	"crncompose/internal/vec"
)

func main() {
	minCRN := synth.MinCRN(2)
	maxCRN := synth.MaxCRN()
	double := synth.DoubleCRN()

	// --- good: 2·min via concatenation of output-oblivious min ---
	twoMin, err := compose.Concat(minCRN, double)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("2·min CRN (upstream output-oblivious):")
	fmt.Print(twoMin)
	res, err := reach.CheckGrid(twoMin,
		func(x []int64) int64 { return 2 * min(x[0], x[1]) },
		[]int64{0, 0}, []int64{4, 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("model check 2·min:", res)

	// --- bad: 2·max via concatenation of the Y-consuming max CRN ---
	twoMax, err := compose.Concat(maxCRN, double)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n2·max CRN (upstream consumes its output):")
	fmt.Print(twoMax)
	res, err = reach.CheckGrid(twoMax,
		func(x []int64) int64 { return 2 * max(x[0], x[1]) },
		[]int64{1, 1}, []int64{2, 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("model check 2·max:", res)
	if res.OK() {
		log.Fatal("unexpected: the naive 2·max composition verified")
	}

	// Exhibit the overshoot with an adversarial schedule: prefer the
	// upstream producers and the downstream doubler over the corrector.
	x := vec.New(5, 5)
	sched := sim.PreferScheduler([]int{0, 1, 4})
	r := sim.RunScheduled(twoMax.MustInitialConfig(x), sched)
	fmt.Printf("\nadversarial schedule on x=%v: produced %d copies of Y, correct answer is %d\n",
		x, r.Final.Output(), 2*max(x[0], x[1]))
	fmt.Println("(the paper predicts up to 2(x1+x2) =", 2*(x[0]+x[1]), "under this race)")
}
