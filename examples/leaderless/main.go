// Leaderless computation (Section 9): the Theorem 9.2 construction builds
// a leaderless output-oblivious CRN for any semilinear superadditive
// f : N → N. The example builds CRNs for x, 2x and ⌊3x/2⌋, shows the
// pairwise corrective-difference reactions, and verifies them; it then
// demonstrates Observation 9.1 — min(1, x) is NOT superadditive and is
// rejected.
//
//	go run ./examples/leaderless
package main

import (
	"fmt"
	"log"

	"crncompose/internal/reach"
	"crncompose/internal/synth"
)

func main() {
	cases := []struct {
		name string
		f    func(int64) int64
		hi   int64
	}{
		{"identity x", func(x int64) int64 { return x }, 12},
		{"double 2x", func(x int64) int64 { return 2 * x }, 10},
		{"floor ⌊3x/2⌋", func(x int64) int64 { return 3 * x / 2 }, 12},
	}
	for _, tc := range cases {
		spec, err := synth.FitOneDim(tc.f, 0, 0)
		if err != nil {
			log.Fatal(err)
		}
		c, err := synth.LeaderlessOneDim(spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s: leaderless CRN with %d species, %d reactions ===\n",
			tc.name, c.NumSpecies(), len(c.Reactions))
		if tc.name == "floor ⌊3x/2⌋" {
			fmt.Print(c) // show one full reaction set
		}
		res, err := reach.CheckGrid(c, func(x []int64) int64 { return tc.f(x[0]) },
			[]int64{0}, []int64{tc.hi})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("model check:", res)
		fmt.Println()
	}

	// Observation 9.1: leaderless oblivious computation requires
	// superadditivity. min(1, x) fails it: f(1) + f(1) = 2 > f(2) = 1.
	spec, err := synth.FitOneDim(func(x int64) int64 { return min(1, x) }, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := synth.LeaderlessOneDim(spec); err != nil {
		fmt.Println("min(1,x) rejected by the leaderless construction (Observation 9.1):")
		fmt.Println("   ", err)
	} else {
		log.Fatal("min(1,x) unexpectedly accepted")
	}
	// With a leader it is a single reaction (Fig 2).
	fmt.Println("\nwith a leader, min(1,x) is just:")
	fmt.Print(synth.MinConst1Leadered())
}
