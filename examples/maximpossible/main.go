// Impossibility (Section 4, Figure 6): max(x1, x2) is semilinear and
// nondecreasing yet NOT obliviously-computable. This example runs the
// whole negative pipeline:
//
//  1. the classifier rejects max (its determined-region extensions fail to
//     eventually dominate, Lemma 7.9);
//
//  2. a Lemma 4.1 contradiction sequence a_i = (i, 0), Δ_ij = (0, j) is
//     found and machine-verified;
//
//  3. against a concrete output-oblivious attempt at max, the Lemma 4.1
//     proof is executed literally: Dickson pair O_i ≤ O_j, extra inputs D,
//     spliced reaction sequence α — yielding an explicit schedule that
//     overproduces Y (Figure 6);
//
//  4. the same treatment rejects equation (2) of Section 7.4, whose failure
//     is in the under-determined diagonal strip (Lemma 7.20).
//
//     go run ./examples/maximpossible
package main

import (
	"fmt"
	"log"

	"crncompose/internal/core"
	"crncompose/internal/crn"
	"crncompose/internal/semilinear"
	"crncompose/internal/vec"
	"crncompose/internal/witness"
)

func main() {
	// 1. Classifier verdict for max.
	res, err := core.Reject(semilinear.Max2())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("classifier verdict for max:")
	fmt.Println("   ", res.Reason)

	// 2. The Lemma 4.1 contradiction.
	fmt.Println("\nmachine-verified contradiction sequence:")
	fmt.Print(res.Contradiction)
	fmax := func(x vec.V) int64 { return max(x[0], x[1]) }
	if err := res.Contradiction.Verify(fmax); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified against f = max ✓")

	// 3. Fig 6: explicit overproduction against an output-oblivious
	// attempt (produce on every input, pair when possible).
	attempt := crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}, {Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}, Name: "pair"},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}, Name: "solo1"},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}, Name: "solo2"},
	})
	con := witness.Search(fmax, 2, witness.SearchOptions{})
	over, err := core.Demonstrate(attempt, fmax, con)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFig 6 overproduction against the oblivious attempt:\n%s\n", over)

	// 4. Equation (2): the depressed-diagonal counterexample.
	res2, err := core.Reject(semilinear.Equation2())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("classifier verdict for equation (2):")
	fmt.Println("   ", res2.Reason)
	feq2 := func(x vec.V) int64 {
		if x[0] == x[1] {
			return x[0] + x[1]
		}
		return x[0] + x[1] + 1
	}
	if err := res2.Contradiction.Verify(feq2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("equation (2) contradiction verified ✓")
}
