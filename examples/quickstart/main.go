// Quickstart: describe a function, compile it to an output-oblivious CRN,
// model-check it, and simulate it — the full pipeline in one page.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"crncompose/internal/core"
	"crncompose/internal/semilinear"
	"crncompose/internal/vec"
)

func main() {
	// min(x1, x2) — Figure 1 of the paper. The library describes it as a
	// semilinear function (Definition 2.6): affine pieces on threshold
	// domains.
	f := semilinear.Min2()
	fmt.Println("function:")
	fmt.Print(f)

	// Compile: classify per Theorem 5.2, then synthesize an
	// output-oblivious CRN via the Lemma 6.2 general construction.
	sys, err := core.Compile(f, core.CompileOptions{Bound: 8, N: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\neventually-min normal form (%d terms), n = %s\n",
		len(sys.Analysis.EventualMin.Terms), sys.Analysis.N)
	fmt.Printf("synthesized CRN: %d species, %d reactions, output-oblivious = %v\n",
		sys.Net.NumSpecies(), len(sys.Net.Reactions), sys.Net.IsOutputOblivious())

	// Verify stable computation exhaustively on small inputs (the literal
	// Section 2.2 definition via model checking).
	res, err := sys.Verify(0, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("model check:", res)

	// Simulate larger inputs with the fair random scheduler.
	for _, x := range []vec.V{vec.New(30, 40), vec.New(100, 64), vec.New(7, 7)} {
		st, err := sys.Simulate(x, 4, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("simulate f%v: output=%d (want %d), median steps=%d\n",
			x, st.MinOutput, f.Eval(x), st.MedianSteps)
	}
}
