// Quilt-affine functions (Definition 5.1, Figure 3): build ⌊3x/2⌋ and the
// 2D "bumpy quilt" g(x) = (1,2)·x + B(x mod 3), synthesize their Lemma 6.1
// CRNs, and verify the CRNs reproduce the functions exactly.
//
//	go run ./examples/quiltaffine
package main

import (
	"fmt"
	"log"

	"crncompose/internal/quilt"
	"crncompose/internal/rat"
	"crncompose/internal/reach"
	"crncompose/internal/sim"
	"crncompose/internal/synth"
	"crncompose/internal/vec"
)

func main() {
	// --- Fig 3a: ⌊3x/2⌋ = (3/2)x + B(x mod 2), B(0) = 0, B(1) = −1/2 ---
	g1 := quilt.MustNew(rat.NewVec(rat.New(3, 2)), 2, []rat.R{rat.Zero(), rat.New(-1, 2)})
	c1, err := synth.FromQuilt(g1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("CRN for ⌊3x/2⌋ (Lemma 6.1):")
	fmt.Print(c1)
	res, err := reach.CheckGrid(c1, func(x []int64) int64 { return 3 * x[0] / 2 },
		[]int64{0}, []int64{30})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("model check:", res)

	// --- Fig 3b: 2D quilt with period 3 and bumps on three classes ---
	offsets := make([]rat.R, 9)
	for i := range offsets {
		offsets[i] = rat.Zero()
	}
	for _, a := range []vec.V{vec.New(1, 2), vec.New(2, 2), vec.New(2, 1)} {
		offsets[vec.CongruenceIndex(a, 3)] = rat.FromInt(-1)
	}
	g2 := quilt.MustNew(rat.NewVec(rat.One(), rat.FromInt(2)), 3, offsets)
	c2, err := synth.FromQuilt(g2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCRN for the 2D quilt: %d species, %d reactions\n",
		c2.NumSpecies(), len(c2.Reactions))

	// Render the surface the way Fig 3b draws it, comparing the CRN's
	// stabilized output at every grid point.
	fmt.Println("surface g (rows x2 = 6..0, cols x1 = 0..6); * marks a bump class:")
	for x2 := int64(6); x2 >= 0; x2-- {
		for x1 := int64(0); x1 <= 6; x1++ {
			x := vec.New(x1, x2)
			r := sim.FairRandom(c2.MustInitialConfig(x), sim.WithSeed(5))
			mark := " "
			if g2.Offset(x).Sign() < 0 {
				mark = "*"
			}
			if r.Final.Output() != g2.Eval(x) {
				log.Fatalf("CRN output %d ≠ g%v = %d", r.Final.Output(), x, g2.Eval(x))
			}
			fmt.Printf("%3d%s", g2.Eval(x), mark)
		}
		fmt.Println()
	}
	fmt.Println("\nall grid points: CRN output == g(x) ✓")

	// Finite differences are periodic and nonnegative — the structural
	// reason quilt-affine functions are obliviously-computable.
	fmt.Println("\nfinite differences δ_{i,a} of the 2D quilt:")
	for i := 0; i < 2; i++ {
		vec.Grid(vec.Zero(2), vec.Const(2, 2), func(a vec.V) bool {
			d, err := g2.FiniteDifference(i, a)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  δ_{%d,%v} = %d\n", i+1, a, d)
			return true
		})
	}
}
