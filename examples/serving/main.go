// Serving: the verification service in one page — start an in-process
// crnserve, synthesize a CRN over HTTP, model-check it (byte-identical to
// crncheck -json), and watch the content-addressed cache turn a repeated
// check into a replay.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"time"

	"crncompose/internal/httpx"
	"crncompose/internal/serve"
)

func main() {
	s := serve.New(serve.Config{Workers: 0})
	if err := s.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	base := "http://" + s.Addr().String()

	// Synthesize min(x1, x2) — the service answer carries the CRN text in
	// the same format crncheck and crnsim read.
	var synth serve.SynthesizeResponse
	mustPost(base+"/v1/synthesize", map[string]any{"func": "min", "n": 1}, &synth)
	fmt.Printf("synthesized %s: %d species, %d reactions, output-oblivious=%v\n",
		synth.Func, synth.Species, synth.Reactions, synth.OutputOblivious)

	// Model-check it on [0,1]^2. The body is byte-identical to what
	// `crncheck -json` prints for the same CRN/function/bounds.
	check := map[string]any{"crn": synth.CRN, "func": "min", "hi": 1}
	body1, src1 := postRaw(base+"/v1/check", check)
	fmt.Printf("check (X-Cache: %s):\n%s", src1, body1)

	// The identical request again: a content-addressed replay of the same
	// bytes — no engine run.
	body2, src2 := postRaw(base+"/v1/check", check)
	fmt.Printf("repeat check: X-Cache: %s, byte-identical: %v\n",
		src2, bytes.Equal(body1, body2))

	// Simulate the synthesized CRN at x = (5, 3): seeded, so the whole
	// response document is deterministic (and itself cached).
	var sim serve.SimulateResponse
	mustPost(base+"/v1/simulate", map[string]any{
		"crn": synth.CRN, "x": []int64{5, 3}, "trials": 4, "seed": 1, "silent": 2000,
	}, &sim)
	fmt.Printf("simulate min(5,3): converged %d/%d trials, output min=%d max=%d\n",
		sim.Summary.Converged, sim.Summary.Trials, sim.Summary.MinOutput, sim.Summary.MaxOutput)
}

// postRaw goes through internal/httpx like every other cross-process
// call in this module — httpx.Raw keeps the body verbatim so the
// byte-identity comparison below stays honest.
func postRaw(url string, req any) ([]byte, string) {
	var client httpx.Client
	raw, err := client.PostRaw(context.Background(), url, req)
	if err != nil {
		log.Fatal(err)
	}
	return raw.Body, raw.Header.Get("X-Cache")
}

func mustPost(url string, req, out any) {
	body, _ := postRaw(url, req)
	if err := json.Unmarshal(body, out); err != nil {
		log.Fatal(err)
	}
}
