package crncompose

// Randomized pipeline fuzzing: Theorems 3.1 and 9.2 are exercised on
// randomly generated functions with the prescribed structural properties,
// each synthesized CRN model-checked exhaustively. This goes well beyond
// the paper's worked examples.

import (
	"math/rand/v2"
	"testing"

	"crncompose/internal/randfunc"
	"crncompose/internal/reach"
	"crncompose/internal/synth"
)

func TestFuzzTheorem31(t *testing.T) {
	rng := rand.New(rand.NewPCG(2024, 6))
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		f := randfunc.Nondecreasing(rng, 5, 3, 3)
		spec, err := synth.FitOneDim(f.Eval, 16, 8)
		if err != nil {
			t.Fatalf("trial %d: fit: %v", trial, err)
		}
		c, err := synth.OneDim(spec)
		if err != nil {
			t.Fatalf("trial %d: construct: %v", trial, err)
		}
		if !c.IsOutputOblivious() {
			t.Fatalf("trial %d: not output-oblivious", trial)
		}
		res, err := reach.CheckGrid(c, func(x []int64) int64 { return f.Eval(x[0]) },
			[]int64{0}, []int64{14})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.OK() {
			t.Fatalf("trial %d: table=%v deltas=%v: %v", trial, f.Table, f.Deltas, res)
		}
	}
}

func TestFuzzTheorem92(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	trials := 15
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		f := randfunc.Superadditive(rng, 4, 3, 3, 40)
		spec, err := synth.FitOneDim(f.Eval, 16, 8)
		if err != nil {
			t.Fatalf("trial %d: fit: %v", trial, err)
		}
		c, err := synth.LeaderlessOneDim(spec)
		if err != nil {
			t.Fatalf("trial %d: construct (table=%v deltas=%v): %v", trial, f.Table, f.Deltas, err)
		}
		if c.Leader != "" || !c.IsOutputOblivious() {
			t.Fatalf("trial %d: structure wrong", trial)
		}
		res, err := reach.CheckGrid(c, func(x []int64) int64 { return f.Eval(x[0]) },
			[]int64{0}, []int64{9}, reach.WithMaxConfigs(1<<21))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.OK() {
			t.Fatalf("trial %d: table=%v deltas=%v: %v", trial, f.Table, f.Deltas, res)
		}
	}
}

// TestFuzzObservation91 checks the negative direction on random
// NON-superadditive functions: the leaderless construction must refuse
// them (they violate its precondition).
func TestFuzzObservation91(t *testing.T) {
	rng := rand.New(rand.NewPCG(99, 1))
	rejected := 0
	for trial := 0; trial < 60; trial++ {
		f := randfunc.Nondecreasing(rng, 5, 3, 3)
		if randfunc.IsSuperadditive(f.Eval, 40) {
			continue // only test genuine violators
		}
		spec, err := synth.FitOneDim(f.Eval, 16, 8)
		if err != nil {
			t.Fatalf("trial %d: fit: %v", trial, err)
		}
		if _, err := synth.LeaderlessOneDim(spec); err == nil {
			t.Fatalf("trial %d: non-superadditive function accepted (table=%v deltas=%v)",
				trial, f.Table, f.Deltas)
		}
		rejected++
	}
	if rejected == 0 {
		t.Fatal("no non-superadditive candidates generated; widen the sampler")
	}
}
