module crncompose

go 1.24
