package crncompose

// End-to-end integration tests: full describe → classify → synthesize →
// model-check pipelines over the function library, mutation-based failure
// injection against the verifier, 3D classification, and cross-validation
// between the model checker and the stochastic simulator.

import (
	"errors"
	"testing"

	"crncompose/internal/classify"
	"crncompose/internal/core"
	"crncompose/internal/crn"
	"crncompose/internal/figures"
	"crncompose/internal/parse"
	"crncompose/internal/rat"
	"crncompose/internal/reach"
	"crncompose/internal/semilinear"
	"crncompose/internal/sim"
	"crncompose/internal/synth"
	"crncompose/internal/vec"
)

// TestPipelineLibrary compiles and verifies every computable library
// function end to end.
func TestPipelineLibrary(t *testing.T) {
	tests := []struct {
		name   string
		bound  int64
		n      int64
		hi     int64
		skip1D bool
	}{
		{name: "identity", hi: 12},
		{name: "double", hi: 10},
		{name: "min1", hi: 10},
		{name: "floor3x2", hi: 12},
		{name: "min", bound: 8, n: 1, hi: 2},
		{name: "fig7", bound: 8, n: 2, hi: 1},
		{name: "sumplusmin", bound: 8, n: 1, hi: 1},
	}
	lib := core.Library()
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			f := lib[tc.name]
			if f == nil {
				t.Fatalf("missing library function %q", tc.name)
			}
			sys, err := core.Compile(f, core.CompileOptions{Bound: tc.bound, N: tc.n})
			if err != nil {
				t.Fatal(err)
			}
			if !sys.Net.IsOutputOblivious() {
				t.Fatal("not output-oblivious")
			}
			res, err := sys.Verify(0, tc.hi, reach.WithMaxConfigs(1<<22))
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK() {
				t.Fatal(res)
			}
		})
	}
}

// TestPipelineRejections checks the negative side of Theorem 5.2 for the
// paper's counterexamples.
func TestPipelineRejections(t *testing.T) {
	for _, name := range []string{"max", "eq2"} {
		t.Run(name, func(t *testing.T) {
			_, err := core.Compile(core.Library()[name], core.CompileOptions{})
			var nce *synth.NotComputableError
			if !errors.As(err, &nce) {
				t.Fatalf("err = %v", err)
			}
			if nce.Result.Contradiction == nil {
				t.Fatal("no contradiction")
			}
		})
	}
}

// TestMutationInjection verifies the model checker catches seeded bugs:
// each mutant perturbs one coefficient or product of a correct CRN and must
// be refuted on some small input.
func TestMutationInjection(t *testing.T) {
	spec, err := synth.FitOneDim(func(x int64) int64 { return 3 * x / 2 }, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	good, err := synth.OneDim(spec)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x []int64) int64 { return 3 * x[0] / 2 }

	res, err := reach.CheckGrid(good, f, []int64{0}, []int64{10})
	if err != nil || !res.OK() {
		t.Fatalf("baseline CRN wrong: %v %v", err, res)
	}

	mutants := 0
	caught := 0
	for ri := range good.Reactions {
		for _, mutate := range []func(r crn.Reaction) (crn.Reaction, bool){
			dropOneOutput, addSpuriousOutput,
		} {
			m, ok := mutate(cloneReaction(good.Reactions[ri]))
			if !ok {
				continue
			}
			mutated := cloneCRNWithReaction(t, good, ri, m)
			mutants++
			res, err := reach.CheckGrid(mutated, f, []int64{0}, []int64{10})
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK() {
				caught++
			}
		}
	}
	if mutants == 0 {
		t.Fatal("no mutants generated")
	}
	if caught != mutants {
		t.Errorf("verifier caught %d of %d seeded mutants", caught, mutants)
	}
}

func cloneReaction(r crn.Reaction) crn.Reaction {
	return crn.Reaction{
		Reactants: append([]crn.Term(nil), r.Reactants...),
		Products:  append([]crn.Term(nil), r.Products...),
		Name:      r.Name,
	}
}

// dropOneOutput removes one Y from the products (if present).
func dropOneOutput(r crn.Reaction) (crn.Reaction, bool) {
	for i, p := range r.Products {
		if p.Sp == "Y" {
			if p.Coeff == 1 {
				r.Products = append(r.Products[:i], r.Products[i+1:]...)
			} else {
				r.Products[i].Coeff--
			}
			return r, true
		}
	}
	return r, false
}

// addSpuriousOutput adds one extra Y to the products.
func addSpuriousOutput(r crn.Reaction) (crn.Reaction, bool) {
	r.Products = append(r.Products, crn.Term{Coeff: 1, Sp: "Y"})
	return r, true
}

func cloneCRNWithReaction(t *testing.T, c *crn.CRN, ri int, m crn.Reaction) *crn.CRN {
	t.Helper()
	rs := make([]crn.Reaction, len(c.Reactions))
	copy(rs, c.Reactions)
	rs[ri] = m
	out, err := crn.New(c.Inputs, c.Output, c.Leader, rs)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestClassify3D exercises the Section 7 machinery in three dimensions,
// beyond the paper's 2D examples.
func TestClassify3D(t *testing.T) {
	// min(x1, x2, x3): nondecreasing, eventually min of 3 affine terms,
	// with under-determined regions of recession-cone dimensions 1 and 2.
	le12 := semilinear.Threshold{A: vec.New(-1, 1, 0), B: 0} // x1 ≤ x2
	le13 := semilinear.Threshold{A: vec.New(-1, 0, 1), B: 0} // x1 ≤ x3
	le23 := semilinear.Threshold{A: vec.New(0, -1, 1), B: 0} // x2 ≤ x3
	g1 := rat.NewVec(rat.One(), rat.Zero(), rat.Zero())
	g2 := rat.NewVec(rat.Zero(), rat.One(), rat.Zero())
	g3 := rat.NewVec(rat.Zero(), rat.Zero(), rat.One())
	f := semilinear.MustNew(3, "min3",
		semilinear.Piece{Domain: semilinear.And{Ops: []semilinear.Formula{le12, le13}}, Grad: g1, Off: rat.Zero()},
		semilinear.Piece{Domain: semilinear.And{Ops: []semilinear.Formula{semilinear.Not{Op: le12}, le23}}, Grad: g2, Off: rat.Zero()},
		semilinear.Piece{Domain: semilinear.Or{Ops: []semilinear.Formula{
			semilinear.And{Ops: []semilinear.Formula{le12, semilinear.Not{Op: le13}}},
			semilinear.And{Ops: []semilinear.Formula{semilinear.Not{Op: le12}, semilinear.Not{Op: le23}}},
		}}, Grad: g3, Off: rat.Zero()},
	)
	if err := f.ValidateOn(vec.Zero(3), vec.Const(3, 6)); err != nil {
		t.Fatal(err)
	}
	res, err := classify.Analyze(f, classify.Options{Bound: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Computable {
		t.Fatalf("min3 rejected: %s", res.Reason)
	}
	hi := res.N.Add(vec.Const(3, 6))
	vec.Grid(res.N, hi, func(x vec.V) bool {
		want := min(x[0], min(x[1], x[2]))
		if got := res.EventualMin.Eval(x); got != want {
			t.Fatalf("min3 normal form wrong at %v: %d ≠ %d", x, got, want)
		}
		return true
	})
	// max in 3D is rejected just like in 2D.
	fmax := semilinear.MustNew(3, "max3",
		semilinear.Piece{Domain: semilinear.Or{Ops: []semilinear.Formula{
			semilinear.And{Ops: []semilinear.Formula{le12, le23}},
			semilinear.And{Ops: []semilinear.Formula{semilinear.Not{Op: le12}, le13}},
		}}, Grad: g3, Off: rat.Zero()},
		semilinear.Piece{Domain: semilinear.And{Ops: []semilinear.Formula{le12, semilinear.Not{Op: le23}}}, Grad: g2, Off: rat.Zero()},
		semilinear.Piece{Domain: semilinear.And{Ops: []semilinear.Formula{semilinear.Not{Op: le12}, semilinear.Not{Op: le13}}}, Grad: g1, Off: rat.Zero()},
	)
	if err := fmax.ValidateOn(vec.Zero(3), vec.Const(3, 6)); err != nil {
		t.Fatal(err)
	}
	resMax, err := classify.Analyze(fmax, classify.Options{Bound: 8})
	if err != nil {
		t.Fatal(err)
	}
	if resMax.Computable {
		t.Fatal("max3 accepted")
	}
}

// TestCheckerSimulatorAgreement cross-validates the model checker against
// the stochastic simulator on the Theorem 3.1 construction.
func TestCheckerSimulatorAgreement(t *testing.T) {
	f := func(x int64) int64 { return x/2 + min(x, 3) }
	spec, err := synth.FitOneDim(f, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := synth.OneDim(spec)
	if err != nil {
		t.Fatal(err)
	}
	for x := int64(0); x <= 20; x++ {
		v := reach.CheckInput(c.MustInitialConfig(vec.New(x)), f(x))
		if !v.OK {
			t.Fatalf("model checker refutes x=%d: %v", x, v.Err)
		}
		r := sim.Gillespie(c.MustInitialConfig(vec.New(x)), sim.WithSeed(uint64(x)))
		if !r.Converged || r.Final.Output() != f(x) {
			t.Fatalf("simulator disagrees at x=%d: %d", x, r.Final.Output())
		}
	}
}

// TestSynthesizedCRNsRoundTripThroughParser ensures every synthesized CRN
// can be serialized and reparsed without loss.
func TestSynthesizedCRNsRoundTripThroughParser(t *testing.T) {
	sys, err := core.Compile(semilinear.Fig4a(), core.CompileOptions{Bound: 8, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	text := parse.Format(sys.Net)
	back, err := parse.Parse(text)
	if err != nil {
		t.Fatalf("reparse failed: %v", err)
	}
	if parse.Format(back) != text {
		t.Fatal("round trip drift")
	}
	if back.NumSpecies() != sys.Net.NumSpecies() || len(back.Reactions) != len(sys.Net.Reactions) {
		t.Fatal("structure changed in round trip")
	}
}

// TestFiguresAll regenerates every figure and sanity-checks invariants on
// the emitted data.
func TestFiguresAll(t *testing.T) {
	tables, err := figures.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 10 {
		t.Fatalf("%d tables, want 10 (Figs 1,2,3a,3b,4a,4b,5,6,7,8)", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Errorf("%s: empty table", tb.Name)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Errorf("%s: ragged row", tb.Name)
			}
		}
	}
	// Spot invariants: fig3a CRN output equals g everywhere.
	for _, tb := range tables {
		switch tb.Name {
		case "fig3a":
			for _, row := range tb.Rows {
				if row[1] != row[2] {
					t.Errorf("fig3a: CRN output %s ≠ g %s at x=%s", row[2], row[1], row[0])
				}
			}
		case "fig4a":
			for _, row := range tb.Rows {
				if row[2] != row[3] {
					t.Errorf("fig4a: min-of-terms %s ≠ f %s at (%s,%s)", row[3], row[2], row[0], row[1])
				}
			}
		case "fig7":
			for _, row := range tb.Rows {
				if row[2] != row[6] {
					t.Errorf("fig7: min %s ≠ f %s at (%s,%s)", row[6], row[2], row[0], row[1])
				}
			}
		}
	}
}

// TestAdditivityAcrossPipeline is the paper's key reachability property
// (A →* B ⇒ A+C →* B+C) exercised on a synthesized CRN.
func TestAdditivityAcrossPipeline(t *testing.T) {
	spec, err := synth.FitOneDim(func(x int64) int64 { return 2 * x }, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := synth.OneDim(spec)
	if err != nil {
		t.Fatal(err)
	}
	start := c.MustInitialConfig(vec.New(3))
	g := reach.Explore(start)
	for id := 0; id < g.NumConfigs(); id++ {
		tr := g.TraceTo(int32(id))
		// Adding 2 extra inputs keeps the trace applicable.
		bigger := c.MustInitialConfig(vec.New(5))
		if _, err := tr.ReplayFrom(bigger); err != nil {
			t.Fatalf("additivity violated: %v", err)
		}
	}
}
