// Package benchcrn provides the shared benchmark workloads used by both the
// in-tree `go test -bench` suites and cmd/bench, so the committed
// BENCH_*.json numbers always measure exactly the same networks and
// baseline algorithm as the benchmarks they mirror.
package benchcrn

import (
	"fmt"
	"math/rand/v2"

	"crncompose/internal/crn"
)

// Ring synthesizes a token-ring CRN with m reactions S_i → S_{i+1 mod m},
// every 8th station also emitting an output Y. Firing any reaction perturbs
// the propensities of only ~2 others, so it is the sparse-dependency
// workload the incremental Gillespie engine targets: a full-recompute
// simulator pays O(m) per step, the dependency-graph engine O(1).
func Ring(m int) *crn.CRN {
	sp := func(i int) crn.Species { return crn.Species(fmt.Sprintf("S%03d", i%m)) }
	reactions := make([]crn.Reaction, 0, m)
	for i := 0; i < m; i++ {
		products := []crn.Term{{Coeff: 1, Sp: sp(i + 1)}}
		if i%8 == 0 {
			products = append(products, crn.Term{Coeff: 1, Sp: "Y"})
		}
		reactions = append(reactions, crn.Reaction{
			Reactants: []crn.Term{{Coeff: 1, Sp: sp(i)}},
			Products:  products,
		})
	}
	return crn.MustNew([]crn.Species{"S000"}, "Y", "", reactions)
}

// Branchy has interleaving independent reactions, so reachability BFS
// levels get wide and the configuration count grows combinatorially in both
// inputs. It stably computes max(x1, x2), making any rectangular grid a
// valid all-OK CheckGrid workload with strongly non-uniform per-input cost
// (the corner dominates the axes by orders of magnitude).
func Branchy() *crn.CRN {
	return crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "L", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}}, Products: []crn.Term{{Coeff: 1, Sp: "A"}, {Coeff: 1, Sp: "Y"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "B"}, {Coeff: 1, Sp: "Y"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "A"}, {Coeff: 1, Sp: "B"}}, Products: []crn.Term{{Coeff: 1, Sp: "K"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "K"}, {Coeff: 1, Sp: "Y"}}, Products: nil},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "L"}, {Coeff: 1, Sp: "A"}}, Products: []crn.Term{{Coeff: 1, Sp: "L"}, {Coeff: 1, Sp: "C"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "C"}}, Products: []crn.Term{{Coeff: 1, Sp: "A"}}},
	})
}

// SkewGrid returns the skewed-grid reachability workload: on the 1-D grid
// [0, threshold] every input below the threshold is a one-configuration
// dead end, while x = threshold fires the unlock reaction and releases m
// independent two-state toggles — a 2^m-configuration state space with
// binomially wide BFS levels. No reaction touches the output species, so
// every configuration is trivially stable with output 0 and the CRN stably
// computes f ≡ 0 on the whole grid; CheckGrid still explores each input's
// full state space. The result is exactly one straggler among trivial
// inputs — the tail-latency shape the shared work-stealing pool closes
// (workers that finish the trivial inputs migrate into the straggler's
// exploration instead of idling at the chunk barrier).
func SkewGrid(threshold int64, m int) *crn.CRN {
	reactions := make([]crn.Reaction, 0, 2*m+1)
	unlock := make([]crn.Term, 0, m)
	for i := 0; i < m; i++ {
		a := crn.Species(fmt.Sprintf("A%02d", i))
		b := crn.Species(fmt.Sprintf("B%02d", i))
		unlock = append(unlock, crn.Term{Coeff: 1, Sp: a})
		reactions = append(reactions,
			crn.Reaction{Reactants: []crn.Term{{Coeff: 1, Sp: a}}, Products: []crn.Term{{Coeff: 1, Sp: b}}},
			crn.Reaction{Reactants: []crn.Term{{Coeff: 1, Sp: b}}, Products: []crn.Term{{Coeff: 1, Sp: a}}},
		)
	}
	reactions = append(reactions, crn.Reaction{
		Reactants: []crn.Term{{Coeff: threshold, Sp: "X"}},
		Products:  unlock,
	})
	return crn.MustNew([]crn.Species{"X"}, "Y", "", reactions)
}

// Max is the paper's Fig 1 max CRN — the standard small simulation target
// with transient output overshoot.
func Max() *crn.CRN {
	return crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}}, Products: []crn.Term{{Coeff: 1, Sp: "Z1"}, {Coeff: 1, Sp: "Y"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Z2"}, {Coeff: 1, Sp: "Y"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "Z1"}, {Coeff: 1, Sp: "Z2"}}, Products: []crn.Term{{Coeff: 1, Sp: "K"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "K"}, {Coeff: 1, Sp: "Y"}}, Products: nil},
	})
}

// FairRandomFullWalk is the pre-incremental FairRandom step loop — a full
// ApplicableReactions walk over every reaction each step — kept as the
// shared baseline for the incremental applicable-set engine (which re-probes
// only the fired reaction's dependents). Returns the number of reactions
// fired; the step sequence is identical to sim.FairRandom's for the same
// seed, since both draw the same uniform choices from the same sorted
// applicable list.
func FairRandomFullWalk(start crn.Config, maxSteps int64, seed uint64) (steps int64) {
	rng := rand.New(rand.NewPCG(seed, 0xDA942042E4DD58B5))
	cur := start.Clone()
	var applicable []int
	for steps < maxSteps {
		applicable = cur.ApplicableReactions(applicable)
		if len(applicable) == 0 {
			return steps
		}
		cur.ApplyInPlace(applicable[rng.IntN(len(applicable))])
		steps++
	}
	return steps
}

// GillespieFullRecompute is the pre-PR2 Gillespie step loop — every
// propensity recomputed from scratch each step, with per-term species map
// lookups — kept as the shared baseline so the incremental engine's win
// stays measurable in both benchmark suites. Returns the number of
// reactions fired.
func GillespieFullRecompute(start crn.Config, maxSteps int64, seed uint64) (steps int64) {
	rng := rand.New(rand.NewPCG(seed, 0x9E3779B97F4A7C15))
	cur := start.Clone()
	c := cur.CRN()
	nR := len(c.Reactions)
	props := make([]float64, nR)
	for steps < maxSteps {
		total := 0.0
		for ri := 0; ri < nR; ri++ {
			p := 1.0
			for _, term := range c.Reactions[ri].Reactants {
				n := cur.Count(term.Sp)
				if n < term.Coeff {
					p = 0
					break
				}
				for j := int64(0); j < term.Coeff; j++ {
					p *= float64(n - j)
				}
				for j := int64(2); j <= term.Coeff; j++ {
					p /= float64(j)
				}
			}
			props[ri] = p
			total += p
		}
		if total == 0 {
			return steps
		}
		rng.ExpFloat64()
		u := rng.Float64() * total
		ri := 0
		for ; ri < nR-1; ri++ {
			u -= props[ri]
			if u < 0 {
				break
			}
		}
		cur.ApplyInPlace(ri)
		steps++
	}
	return steps
}
