// Package benchcrn provides the shared benchmark workloads used by both the
// in-tree `go test -bench` suites and cmd/bench, so the committed
// BENCH_*.json numbers always measure exactly the same networks and
// baseline algorithm as the benchmarks they mirror.
package benchcrn

import (
	"fmt"
	"math/rand/v2"

	"crncompose/internal/crn"
)

// Ring synthesizes a token-ring CRN with m reactions S_i → S_{i+1 mod m},
// every 8th station also emitting an output Y. Firing any reaction perturbs
// the propensities of only ~2 others, so it is the sparse-dependency
// workload the incremental Gillespie engine targets: a full-recompute
// simulator pays O(m) per step, the dependency-graph engine O(1).
func Ring(m int) *crn.CRN {
	sp := func(i int) crn.Species { return crn.Species(fmt.Sprintf("S%03d", i%m)) }
	reactions := make([]crn.Reaction, 0, m)
	for i := 0; i < m; i++ {
		products := []crn.Term{{Coeff: 1, Sp: sp(i + 1)}}
		if i%8 == 0 {
			products = append(products, crn.Term{Coeff: 1, Sp: "Y"})
		}
		reactions = append(reactions, crn.Reaction{
			Reactants: []crn.Term{{Coeff: 1, Sp: sp(i)}},
			Products:  products,
		})
	}
	return crn.MustNew([]crn.Species{"S000"}, "Y", "", reactions)
}

// Max is the paper's Fig 1 max CRN — the standard small simulation target
// with transient output overshoot.
func Max() *crn.CRN {
	return crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}}, Products: []crn.Term{{Coeff: 1, Sp: "Z1"}, {Coeff: 1, Sp: "Y"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Z2"}, {Coeff: 1, Sp: "Y"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "Z1"}, {Coeff: 1, Sp: "Z2"}}, Products: []crn.Term{{Coeff: 1, Sp: "K"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "K"}, {Coeff: 1, Sp: "Y"}}, Products: nil},
	})
}

// GillespieFullRecompute is the pre-PR2 Gillespie step loop — every
// propensity recomputed from scratch each step, with per-term species map
// lookups — kept as the shared baseline so the incremental engine's win
// stays measurable in both benchmark suites. Returns the number of
// reactions fired.
func GillespieFullRecompute(start crn.Config, maxSteps int64, seed uint64) (steps int64) {
	rng := rand.New(rand.NewPCG(seed, 0x9E3779B97F4A7C15))
	cur := start.Clone()
	c := cur.CRN()
	nR := len(c.Reactions)
	props := make([]float64, nR)
	for steps < maxSteps {
		total := 0.0
		for ri := 0; ri < nR; ri++ {
			p := 1.0
			for _, term := range c.Reactions[ri].Reactants {
				n := cur.Count(term.Sp)
				if n < term.Coeff {
					p = 0
					break
				}
				for j := int64(0); j < term.Coeff; j++ {
					p *= float64(n - j)
				}
				for j := int64(2); j <= term.Coeff; j++ {
					p /= float64(j)
				}
			}
			props[ri] = p
			total += p
		}
		if total == 0 {
			return steps
		}
		rng.ExpFloat64()
		u := rng.Float64() * total
		ri := 0
		for ; ri < nR-1; ri++ {
			u -= props[ri]
			if u < 0 {
				break
			}
		}
		cur.ApplyInPlace(ri)
		steps++
	}
	return steps
}
