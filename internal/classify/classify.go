// Package classify decides oblivious computability of semilinear functions
// and produces the eventually-min-of-quilt-affine normal form of
// Theorem 5.2, mechanizing Section 7 of the paper:
//
//  1. decompose the domain into regions induced by the threshold
//     hyperplanes (Lemma 7.3), with the global period p from the mod sets;
//  2. from every determined eventual region extract the unique quilt-affine
//     extension (Lemma 7.7) and check that it eventually dominates f
//     (Lemma 7.9) — a violation yields a Lemma 4.1 contradiction;
//  3. for every strip of every under-determined eventual region construct
//     an extension either by gradient averaging with an enlarged period
//     (Lemma 7.16) or by adopting the extension of the neighbor region in
//     a degenerate direction (Lemma 7.20) — the latter case detects the
//     non-computable "depressed diagonal" behavior of equation (2);
//  4. verify f = min_k g_k on the eventual grid and return the normal form.
//
// All verification is exact on bounded grids; bounds are configurable. The
// classifier is sound in both directions on its budget: "not computable"
// verdicts come with a machine-checked Lemma 4.1 contradiction, and
// "computable" verdicts come with a normal form that is re-verified
// pointwise against f.
package classify

import (
	"context"
	"fmt"
	"sort"

	"crncompose/internal/geometry"
	"crncompose/internal/progress"
	"crncompose/internal/quilt"
	"crncompose/internal/rat"
	"crncompose/internal/semilinear"
	"crncompose/internal/vec"
	"crncompose/internal/witness"
)

// Options bound the analysis.
type Options struct {
	// Bound is the census grid bound per coordinate; 0 picks a default
	// based on the global period.
	Bound int64
	// WitnessSearch controls whether a Lemma 4.1 contradiction is searched
	// for when f is found not computable (default true).
	WitnessSearch bool
	// MaxPeriodScale bounds the period enlargement factor k in p* = k·p for
	// Lemma 7.16 extensions (default 8).
	MaxPeriodScale int64
	// Ctx, when non-nil, makes the analysis cancellable. It is polled at
	// the classifier's deterministic step boundaries (census, per-region
	// extension, final grid verification); a canceled analysis returns a
	// wrapped ctx.Err() and no Result. Unlike the engine packages the
	// context rides in Options: classification is plumbed through synthesis
	// recursion as an Options value, so a field keeps every signature
	// additive.
	Ctx context.Context
	// Progress, when non-nil, receives a "classify.regions" event as each
	// eventual region's extension is built (Done = regions processed,
	// Total = regions in the census). Reported from the calling goroutine
	// only; never changes the verdict.
	Progress progress.Reporter
}

// ctxErr polls the analysis context; nil means "keep going". The returned
// error wraps ctx.Err(), so errors.Is(err, context.Canceled) holds.
func (o *Options) ctxErr() error {
	if o.Ctx == nil {
		return nil
	}
	select {
	case <-o.Ctx.Done():
		return fmt.Errorf("classify: analysis canceled: %w", o.Ctx.Err())
	default:
		return nil
	}
}

func (o *Options) defaults(p int64) {
	if o.Bound == 0 {
		o.Bound = 6*p + 12
	}
	if o.MaxPeriodScale == 0 {
		o.MaxPeriodScale = 8
	}
}

// Result is the outcome of classification.
type Result struct {
	// Computable reports the Theorem 5.2 verdict (for the eventual
	// condition (ii); condition (iii) is checked recursively by callers on
	// restrictions).
	Computable bool
	// Reason explains a negative verdict.
	Reason string
	// Contradiction is the Lemma 4.1 certificate for a negative verdict,
	// when one was found within search bounds.
	Contradiction *witness.Contradiction
	// EventualMin is the normal form min_k g_k valid for x ≥ N.
	EventualMin *quilt.Min
	// N is the eventual bound of condition (ii).
	N vec.V
	// Regions is the census (diagnostic).
	Regions []*geometry.Region
	// Period is the global period p of Lemma 7.3.
	Period int64
}

// Analyze classifies f per Theorem 5.2 condition (ii). The function must be
// given in the explicit piecewise representation of Definition 2.6.
func Analyze(f *semilinear.Func, opts Options) (*Result, error) {
	d := f.Dim()
	if d == 0 {
		return nil, fmt.Errorf("classify: zero-dimensional function")
	}
	p := f.GlobalPeriod()
	opts.defaults(p)
	bound := opts.Bound
	lo, hi := vec.Zero(d), vec.Const(d, bound)

	if err := f.ValidateOn(lo, hi); err != nil {
		return nil, err
	}
	if err := opts.ctxErr(); err != nil {
		return nil, err
	}

	// Condition (i): nondecreasing (Observation 2.1).
	if ok, a, b := f.IsNondecreasingOn(lo, hi); !ok {
		return negative(f, opts, fmt.Sprintf("f is decreasing: f(%v)=%d > f(%v)=%d (Observation 2.1)",
			a, f.Eval(a), b, f.Eval(b))), nil
	}

	// Domain decomposition (Section 7.2).
	ts, _ := f.Atoms()
	normals := make([]vec.V, len(ts))
	offsets := make([]int64, len(ts))
	for i, t := range ts {
		normals[i] = t.A
		offsets[i] = t.B
	}
	arr := geometry.NewArrangement(d, normals, offsets)
	regions := arr.Census(bound)

	res := &Result{Computable: true, Regions: regions, Period: p}

	// Eventual check grid: the upper quadrant of the census.
	nEv := vec.Const(d, bound/2)
	res.N = nEv

	// Step 1: unique extensions from determined eventual regions
	// (Lemma 7.7) and their domination (Lemma 7.9).
	var terms []*quilt.Func
	var determined []detExt
	nRegions := int64(len(regions))
	var regionsDone int64
	for _, r := range regions {
		regionsDone++
		if !r.IsEventual() || !r.IsDetermined() {
			continue
		}
		// Region boundaries are the classifier's cancellation points: each
		// extension build plus domination scan is one bounded unit of work.
		progress.Post(opts.Progress, "classify.regions", regionsDone, nRegions)
		if err := opts.ctxErr(); err != nil {
			return nil, err
		}
		g, err := determinedExtension(f, r, p)
		if err != nil {
			return nil, fmt.Errorf("classify: region %s: %w", r.Key(), err)
		}
		if bad := dominationFailure(f, g, nEv, hi); bad != nil {
			return negative(f, opts, fmt.Sprintf(
				"extension from determined region %s does not eventually dominate f: g(%v)=%d < f(%v)=%d (Lemma 7.9 ⇒ Lemma 4.1)",
				r.Key(), bad, g.Eval(bad), bad, f.Eval(bad))), nil
		}
		determined = append(determined, detExt{region: r, ext: g})
		terms = append(terms, g)
	}
	if len(determined) == 0 {
		return nil, fmt.Errorf("classify: no determined eventual region found within bound %d; increase Options.Bound", bound)
	}

	// Step 2: extensions from strips of under-determined eventual regions
	// (Lemmas 7.16 and 7.20).
	for _, u := range regions {
		if !u.IsEventual() || u.IsDetermined() {
			continue
		}
		if err := opts.ctxErr(); err != nil {
			return nil, err
		}
		// Determined neighbors (Definition 7.11, Corollary 7.19).
		var nbrs []detExt
		for _, de := range determined {
			if de.region.IsNeighborOf(u) {
				nbrs = append(nbrs, de)
			}
		}
		if len(nbrs) == 0 {
			return nil, fmt.Errorf("classify: under-determined region %s has no determined neighbor within bound", u.Key())
		}
		stripTerms, neg, err := underDeterminedExtensions(f, u, nbrs, p, nEv, hi, opts)
		if err != nil {
			return nil, err
		}
		if neg != "" {
			return negative(f, opts, neg), nil
		}
		terms = append(terms, stripTerms...)
	}

	// Deduplicate extensionally equal terms.
	terms = dedupe(terms)

	// Step 3: verify f(x) = min_k g_k(x) on the eventual grid.
	if err := opts.ctxErr(); err != nil {
		return nil, err
	}
	m, err := quilt.NewMin(terms...)
	if err != nil {
		return nil, err
	}
	var mismatch vec.V
	vec.Grid(nEv, hi, func(x vec.V) bool {
		if m.Eval(x) != f.Eval(x) {
			mismatch = x.Clone()
			return false
		}
		return true
	})
	if mismatch != nil {
		return nil, fmt.Errorf("classify: internal: min of %d extensions disagrees with f at %v (min=%d, f=%d)",
			len(terms), mismatch, m.Eval(mismatch), f.Eval(mismatch))
	}
	res.EventualMin = m
	return res, nil
}

func negative(f *semilinear.Func, opts Options, reason string) *Result {
	res := &Result{Computable: false, Reason: reason}
	if opts.WitnessSearch {
		res.Contradiction = witness.Search(func(x vec.V) int64 { return f.Eval(x) }, f.Dim(), witness.SearchOptions{})
	}
	return res
}

// determinedExtension computes the unique quilt-affine extension from a
// determined region (Lemma 7.7): one gradient shared by all congruence
// classes, and the per-class offsets of the affine pieces of f.
func determinedExtension(f *semilinear.Func, r *geometry.Region, p int64) (*quilt.Func, error) {
	d := f.Dim()
	classes := vec.NumClasses(p, d)
	offsets := make([]rat.R, classes)
	haveClass := make([]bool, classes)
	var grad rat.Vec
	var gradClass vec.V
	for _, x := range r.Points {
		idx := vec.CongruenceIndex(x, p)
		k := f.PieceAt(x)
		if k < 0 {
			return nil, fmt.Errorf("no piece at %v", x)
		}
		piece := f.Pieces[k]
		if !haveClass[idx] {
			haveClass[idx] = true
			offsets[idx] = piece.Off
			if grad == nil {
				grad = piece.Grad
				gradClass = x.Clone()
			} else if !grad.Eq(piece.Grad) {
				// Lemma 7.7: all gradients on a determined region must
				// agree, else f is not nondecreasing.
				return nil, fmt.Errorf(
					"gradients differ across congruence classes (%s at %v vs %s at %v); f cannot be nondecreasing on a determined region",
					grad, gradClass, piece.Grad, x)
			}
		} else if !offsets[idx].Eq(piece.Off) || !grad.Eq(piece.Grad) {
			return nil, fmt.Errorf("inconsistent affine pieces within region %s class %v", r.Key(), x.Mod(p))
		}
	}
	// Classes never witnessed in the census: a determined region contains
	// arbitrarily large balls (Lemma 7.5), so with an adequate bound every
	// class appears; report if not.
	for idx := int64(0); idx < classes; idx++ {
		if !haveClass[idx] {
			return nil, fmt.Errorf("congruence class %v not witnessed in region %s; increase Options.Bound",
				vec.CongruenceClass(idx, p, d), r.Key())
		}
	}
	return quilt.New(grad, p, offsets)
}

// dominationFailure returns a grid point x ∈ [n, hi] with g(x) < f(x), or
// nil if g dominates f there (Definition 7.8 checked on the grid).
func dominationFailure(f *semilinear.Func, g *quilt.Func, n, hi vec.V) vec.V {
	var bad vec.V
	vec.Grid(n, hi, func(x vec.V) bool {
		if g.Eval(x) < f.Eval(x) {
			bad = x.Clone()
			return false
		}
		return true
	})
	return bad
}

// underDeterminedExtensions builds one extension per strip of the
// under-determined eventual region u. It returns (terms, negativeReason,
// err): a nonempty negativeReason means f is not obliviously-computable.
// detExt pairs a determined eventual region with its unique extension.
type detExt struct {
	region *geometry.Region
	ext    *quilt.Func
}

func underDeterminedExtensions(
	f *semilinear.Func,
	u *geometry.Region,
	nbrs []detExt,
	p int64,
	nEv, hi vec.V,
	opts Options,
) ([]*quilt.Func, string, error) {
	d := f.Dim()
	wBasis := u.WBasis()

	// Gradient spread test: Lemma 7.16 applies iff for every nonzero
	// z ∈ W⊥ some pair of neighbor gradients differs along z, i.e. iff
	// span(W ∪ {∇g_i − ∇g_1}) is all of R^d.
	spanRows := append([]rat.Vec(nil), wBasis...)
	g0 := nbrs[0].ext.Gradient()
	for _, nb := range nbrs[1:] {
		spanRows = append(spanRows, nb.ext.Gradient().Sub(g0))
	}
	fullSpread := rat.Mat(spanRows).Rank() == d

	strips := u.Strips()
	keys := make([]string, 0, len(strips))
	for k := range strips {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var terms []*quilt.Func
	if fullSpread {
		// Lemma 7.16: average the neighbor gradients, enlarge the period
		// until the extension is integral and dominates f on the grid.
		avg := rat.ZeroVec(d)
		for _, nb := range nbrs {
			avg = avg.Add(nb.ext.Gradient())
		}
		avg = avg.Scale(rat.New(1, int64(len(nbrs))))
		for _, key := range keys {
			pts := strips[key]
			g, reason, err := averagedStripExtension(f, avg, pts, p, nEv, hi, opts)
			if err != nil {
				return nil, "", fmt.Errorf("classify: strip %q of region %s: %w", key, u.Key(), err)
			}
			if reason != "" {
				return nil, reason, nil
			}
			terms = append(terms, g)
		}
		return terms, "", nil
	}

	// Lemma 7.20: all neighbor gradients agree along some z ∈ W⊥. Adopt a
	// neighbor's extension; it must agree with f on every strip, else f is
	// not obliviously-computable (the equation (2) situation).
	for _, key := range keys {
		pts := strips[key]
		adopted := false
		for _, nb := range nbrs {
			ok := true
			for _, x := range pts {
				if nb.ext.Eval(x) != f.Eval(x) {
					ok = false
					break
				}
			}
			if ok {
				terms = append(terms, nb.ext)
				adopted = true
				break
			}
		}
		if !adopted {
			x := pts[len(pts)-1]
			return nil, fmt.Sprintf(
				"no quilt-affine extension from strip of region %s eventually dominates f: neighbor gradients agree along W⊥ but f(%v)=%d differs from every neighbor extension (Lemma 7.20 ⇒ Lemma 4.1; cf. equation (2))",
				u.Key(), x, f.Eval(x)), nil
		}
	}
	return terms, "", nil
}

// averagedStripExtension implements the Lemma 7.16 construction for one
// strip: gradient ∇avg, period p* = k·p with p*∇avg ∈ Z^d, offsets pinned
// to f on the strip's congruence classes and maximized subject to
// nondecreasingness elsewhere.
func averagedStripExtension(
	f *semilinear.Func,
	avg rat.Vec,
	strip []vec.V,
	p int64,
	nEv, hi vec.V,
	opts Options,
) (*quilt.Func, string, error) {
	for k := int64(1); k <= opts.MaxPeriodScale; k++ {
		pStar := k * p
		if !integralScale(avg, pStar) {
			continue
		}
		g, err := buildStripQuilt(f, avg, strip, pStar)
		if err != nil {
			// Inconsistent offsets at this period: try a larger one.
			continue
		}
		if bad := dominationFailure(f, g, nEv, hi); bad != nil {
			// Try a larger period (Lemma 7.16 may need p* large); if we
			// exhaust the budget this becomes a negative verdict below.
			continue
		}
		return g, "", nil
	}
	// No period within budget produced a dominating extension.
	return nil, fmt.Sprintf(
		"no quilt-affine extension with gradient %s and period ≤ %d·%d from the strip dominates f (Lemma 7.16 budget)",
		avg, opts.MaxPeriodScale, p), nil
}

func integralScale(v rat.Vec, m int64) bool {
	for _, r := range v {
		if !r.MulInt(m).IsInt() {
			return false
		}
	}
	return true
}

// buildStripQuilt constructs the quilt-affine function with gradient avg
// and period pStar whose offsets agree with f on the strip's congruence
// classes and are otherwise maximal subject to being nondecreasing:
// g(x) = min{ g(y) : y ≥ x, y ≡ some strip class (mod p*) }.
func buildStripQuilt(f *semilinear.Func, avg rat.Vec, strip []vec.V, pStar int64) (*quilt.Func, error) {
	d := f.Dim()
	classes := vec.NumClasses(pStar, d)
	offsets := make([]rat.R, classes)
	pinned := make([]bool, classes)
	for _, x := range strip {
		idx := vec.CongruenceIndex(x, pStar)
		off := rat.FromInt(f.Eval(x)).Sub(avg.DotInt(x))
		if pinned[idx] && !offsets[idx].Eq(off) {
			return nil, fmt.Errorf("offset for class %v inconsistent within strip (period %d too small)", x.Mod(pStar), pStar)
		}
		offsets[idx] = off
		pinned[idx] = true
	}
	var pinnedClasses []vec.V
	for idx := int64(0); idx < classes; idx++ {
		if pinned[idx] {
			pinnedClasses = append(pinnedClasses, vec.CongruenceClass(idx, pStar, d))
		}
	}
	if len(pinnedClasses) == 0 {
		return nil, fmt.Errorf("empty strip")
	}
	// Unpinned classes: B*(a) = min over pinned classes c of
	// avg·((c − a) mod p*) + B*(c); the displacement to the least point
	// ≥ any representative of a congruent to c.
	for idx := int64(0); idx < classes; idx++ {
		if pinned[idx] {
			continue
		}
		a := vec.CongruenceClass(idx, pStar, d)
		var best rat.R
		haveBest := false
		for _, c := range pinnedClasses {
			disp := c.Sub(a).Mod(pStar) // least nonnegative displacement per coord
			cand := avg.DotInt(disp).Add(offsets[vec.CongruenceIndex(c, pStar)])
			if !haveBest || cand.Cmp(best) < 0 {
				best, haveBest = cand, true
			}
		}
		offsets[idx] = best
	}
	return quilt.New(avg, pStar, offsets)
}

func dedupe(terms []*quilt.Func) []*quilt.Func {
	var out []*quilt.Func
	for _, t := range terms {
		dup := false
		for _, o := range out {
			if o.Equal(t) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, t)
		}
	}
	return out
}
