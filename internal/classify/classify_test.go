package classify

import (
	"strings"
	"testing"

	"crncompose/internal/rat"
	"crncompose/internal/semilinear"
	"crncompose/internal/vec"
)

func analyze(t *testing.T, f *semilinear.Func) *Result {
	t.Helper()
	res, err := Analyze(f, Options{WitnessSearch: true})
	if err != nil {
		t.Fatalf("Analyze(%s): %v", f.Name, err)
	}
	return res
}

func requireComputable(t *testing.T, f *semilinear.Func) *Result {
	t.Helper()
	res := analyze(t, f)
	if !res.Computable {
		t.Fatalf("%s should be obliviously-computable; got: %s", f.Name, res.Reason)
	}
	return res
}

func requireNotComputable(t *testing.T, f *semilinear.Func) *Result {
	t.Helper()
	res := analyze(t, f)
	if res.Computable {
		t.Fatalf("%s should NOT be obliviously-computable", f.Name)
	}
	if res.Contradiction == nil {
		t.Fatalf("%s: negative verdict without Lemma 4.1 contradiction", f.Name)
	}
	if err := res.Contradiction.Verify(func(x vec.V) int64 { return f.Eval(x) }); err != nil {
		t.Fatalf("%s: contradiction does not verify: %v", f.Name, err)
	}
	return res
}

// checkNormalForm verifies f(x) = min_k g_k(x) for all x in [N, N+span]^d.
func checkNormalForm(t *testing.T, f *semilinear.Func, res *Result, span int64) {
	t.Helper()
	hi := res.N.Add(vec.Const(f.Dim(), span))
	vec.Grid(res.N, hi, func(x vec.V) bool {
		if got, want := res.EventualMin.Eval(x), f.Eval(x); got != want {
			t.Fatalf("%s: min(x)=%d ≠ f(x)=%d at %v", f.Name, got, want, x)
			return false
		}
		return true
	})
}

func TestMinComputable(t *testing.T) {
	f := semilinear.Min2()
	res := requireComputable(t, f)
	checkNormalForm(t, f, res, 20)
	if len(res.EventualMin.Terms) != 2 {
		t.Errorf("min should decompose into 2 quilt-affine terms, got %d", len(res.EventualMin.Terms))
	}
}

func TestMaxNotComputable(t *testing.T) {
	res := requireNotComputable(t, semilinear.Max2())
	if !strings.Contains(res.Reason, "dominate") {
		t.Errorf("expected a domination failure (Lemma 7.9), got: %s", res.Reason)
	}
	// The classic witness shape from Section 4: steps along one axis.
	if res.Contradiction.Step.IsZero() {
		t.Error("contradiction step is zero")
	}
}

func TestEquation2NotComputable(t *testing.T) {
	// Equation (2) of the paper: a single affine function depressed along
	// the diagonal. All determined extensions agree (and dominate), so the
	// failure is in the under-determined strip (Lemma 7.20).
	res := requireNotComputable(t, semilinear.Equation2())
	if !strings.Contains(res.Reason, "strip") {
		t.Errorf("expected a strip/Lemma 7.20 failure, got: %s", res.Reason)
	}
}

func TestFig7Computable(t *testing.T) {
	f := semilinear.Fig7()
	res := requireComputable(t, f)
	checkNormalForm(t, f, res, 20)
	// Paper Section 7.1: f = min(x1+1, x2+1, ⌈(x1+x2)/2⌉) — three
	// distinct quilt-affine terms.
	if len(res.EventualMin.Terms) != 3 {
		t.Fatalf("fig7 should decompose into 3 terms (g1, g2, gU), got %d: %s",
			len(res.EventualMin.Terms), res.EventualMin)
	}
	// One term must be the period-2 average gU = ⌈(x1+x2)/2⌉.
	foundAvg := false
	for _, term := range res.EventualMin.Terms {
		if term.Period() == 2 {
			foundAvg = true
			for _, x := range []vec.V{vec.New(4, 4), vec.New(5, 4), vec.New(7, 9)} {
				want := (x[0] + x[1] + 1) / 2 // ⌈(x1+x2)/2⌉
				if got := term.Eval(x); got != want {
					t.Errorf("gU(%v) = %d, want ⌈(x1+x2)/2⌉ = %d", x, got, want)
				}
			}
		}
	}
	if !foundAvg {
		t.Error("no period-2 averaged extension gU found (Lemma 7.16)")
	}
}

func TestFig4aComputable(t *testing.T) {
	f := semilinear.Fig4a()
	res := requireComputable(t, f)
	checkNormalForm(t, f, res, 15)
	// min(x1+x2, 2x1+1, 2x2+1): three affine terms.
	if len(res.EventualMin.Terms) != 3 {
		t.Errorf("fig4a should decompose into 3 terms, got %d", len(res.EventualMin.Terms))
	}
}

func TestSumPlusMinComputable(t *testing.T) {
	f := semilinear.SumPlusMin()
	res := requireComputable(t, f)
	checkNormalForm(t, f, res, 20)
}

func TestFloorThreeHalvesComputable(t *testing.T) {
	f := semilinear.FloorThreeHalves()
	res := requireComputable(t, f)
	checkNormalForm(t, f, res, 40)
	if len(res.EventualMin.Terms) != 1 {
		t.Fatalf("⌊3x/2⌋ is itself quilt-affine; got %d terms", len(res.EventualMin.Terms))
	}
	g := res.EventualMin.Terms[0]
	if g.Period() != 2 {
		t.Errorf("period = %d, want 2", g.Period())
	}
	for x := int64(0); x < 30; x++ {
		if got, want := g.Eval(vec.New(x)), 3*x/2; got != want {
			t.Errorf("g(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestFig3bComputable(t *testing.T) {
	f := semilinear.Fig3b()
	res := requireComputable(t, f)
	checkNormalForm(t, f, res, 12)
	if len(res.EventualMin.Terms) != 1 {
		t.Fatalf("fig3b is quilt-affine; got %d terms", len(res.EventualMin.Terms))
	}
	if p := res.EventualMin.Terms[0].Period(); p != 3 {
		t.Errorf("period = %d, want 3", p)
	}
}

func TestIdentityAndDouble(t *testing.T) {
	for _, f := range []*semilinear.Func{semilinear.Identity(), semilinear.Double()} {
		res := requireComputable(t, f)
		checkNormalForm(t, f, res, 50)
	}
}

func TestStepComputable(t *testing.T) {
	f := semilinear.Threshold1D(3, 2)
	res := requireComputable(t, f)
	checkNormalForm(t, f, res, 40)
	// Eventually constant 2.
	if got := res.EventualMin.Eval(res.N); got != 2 {
		t.Errorf("step value %d, want 2", got)
	}
}

func TestMinConst1(t *testing.T) {
	f := semilinear.MinConst1()
	res := requireComputable(t, f)
	checkNormalForm(t, f, res, 40)
}

func TestDecreasingRejected(t *testing.T) {
	// f(x) = max(0, 3-x) is decreasing: rejected by condition (i).
	ge3 := semilinear.Threshold{A: vec.New(1), B: 3}
	f := semilinear.MustNew(1, "decreasing",
		semilinear.Piece{Domain: ge3, Grad: ratVec0(1), Off: ratInt(0)},
		semilinear.Piece{Domain: semilinear.Not{Op: ge3}, Grad: ratVecNeg1(), Off: ratInt(3)},
	)
	res := analyze(t, f)
	if res.Computable {
		t.Fatal("decreasing function accepted")
	}
	if !strings.Contains(res.Reason, "decreasing") {
		t.Errorf("reason = %s", res.Reason)
	}
}

func TestRestrictionsOfFig4a(t *testing.T) {
	// Condition (iii): every fixed-input restriction of a computable f must
	// classify as computable. f[x(1)→j](x) = min(j+x, 2j+1, 2x+1).
	f := semilinear.Fig4a()
	for j := int64(0); j <= 3; j++ {
		r := f.Restrict(0, j)
		res, err := Analyze(r, Options{})
		if err != nil {
			t.Fatalf("restriction j=%d: %v", j, err)
		}
		if !res.Computable {
			t.Fatalf("restriction j=%d not computable: %s", j, res.Reason)
		}
		// Spot-check the normal form value.
		for x := res.N[0]; x < res.N[0]+10; x++ {
			want := r.Eval(vec.New(x))
			if got := res.EventualMin.Eval(vec.New(x)); got != want {
				t.Errorf("j=%d: min(%d)=%d, want %d", j, x, got, want)
			}
		}
	}
}

func TestRestrictionsOfMaxStillComputable1D(t *testing.T) {
	// max's restrictions max(j, x) ARE computable (they are 1D semilinear
	// nondecreasing, Theorem 3.1); the failure of max is purely condition
	// (ii).
	f := semilinear.Max2()
	for j := int64(0); j <= 2; j++ {
		r := f.Restrict(0, j)
		res, err := Analyze(r, Options{})
		if err != nil {
			t.Fatalf("restriction j=%d: %v", j, err)
		}
		if !res.Computable {
			t.Errorf("max(%d, x) should be computable: %s", j, res.Reason)
		}
	}
}

func TestEventualMinTermsAreValidQuilt(t *testing.T) {
	res := requireComputable(t, semilinear.Fig7())
	for _, g := range res.EventualMin.Terms {
		// Every term must have nonnegative finite differences everywhere
		// (validated by construction; re-check a window).
		for i := 0; i < g.Dim(); i++ {
			vec.Grid(vec.Zero(g.Dim()), vec.Const(g.Dim(), g.Period()-1), func(a vec.V) bool {
				d, err := g.FiniteDifference(i, a)
				if err != nil || d < 0 {
					t.Errorf("δ_{%d,%v} = %d, err=%v", i, a, d, err)
				}
				return true
			})
		}
	}
}

func TestDedupCollapsesEqualExtensions(t *testing.T) {
	// Equation-2's two determined regions share one extension, but the
	// verdict is negative. Use a computable function with duplicated
	// structure instead: f = x1 + x2 with a redundant threshold split.
	le := semilinear.Threshold{A: vec.New(-1, 1), B: 0}
	grad := ratVec11()
	f := semilinear.MustNew(2, "split-sum",
		semilinear.Piece{Domain: le, Grad: grad, Off: ratInt(0)},
		semilinear.Piece{Domain: semilinear.Not{Op: le}, Grad: grad, Off: ratInt(0)},
	)
	res := requireComputable(t, f)
	if len(res.EventualMin.Terms) != 1 {
		t.Errorf("duplicate extensions not deduped: %d terms", len(res.EventualMin.Terms))
	}
	checkNormalForm(t, f, res, 20)
}

func TestNormalFormMatchesQuiltMin(t *testing.T) {
	// Cross-validate: build min(⌊3x/2⌋-like, affine) by hand and compare
	// against the classifier output for fig4a restricted to 1D.
	f := semilinear.Fig4a().Restrict(1, 0) // min(x1, 1, 2x1+1) = min(x1, 1)
	res, err := Analyze(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Computable {
		t.Fatalf("not computable: %s", res.Reason)
	}
	for x := int64(0); x < 30; x++ {
		want := min(x, 1)
		if got := f.Eval(vec.New(x)); got != want {
			t.Fatalf("restriction eval wrong: f(%d)=%d want %d", x, got, want)
		}
	}
}

// Small rational helpers keep the test tables terse.

func ratInt(n int64) rat.R { return rat.FromInt(n) }

func ratVec0(d int) rat.Vec { return rat.ZeroVec(d) }

func ratVecNeg1() rat.Vec { return rat.NewVec(rat.FromInt(-1)) }

func ratVec11() rat.Vec { return rat.NewVec(rat.One(), rat.One()) }
