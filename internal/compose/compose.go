// Package compose implements composition of CRNs by concatenation
// (Section 2.3 of the paper): renaming the output species of an upstream
// CRN to match an input species of a downstream CRN, keeping all other
// species namespaces disjoint, and splitting the leader (L → Lf + Lg).
// By Observation 2.2 the concatenation stably computes the composition
// whenever the upstream CRN is output-oblivious.
//
// The Builder type supports general feed-forward wiring of many modules
// (fan-out, shared inputs, multi-stage pipelines) as used by the general
// construction of Lemma 6.2.
package compose

import (
	"fmt"

	"crncompose/internal/crn"
)

// Rename returns a copy of c with every species renamed through fn.
// fn must be injective on c's species; roles (inputs/output/leader) are
// renamed consistently.
func Rename(c *crn.CRN, fn func(crn.Species) crn.Species) (*crn.CRN, error) {
	seen := make(map[crn.Species]crn.Species)
	for _, sp := range c.SpeciesList() {
		to := fn(sp)
		for old, t := range seen {
			if t == to && old != sp {
				return nil, fmt.Errorf("compose: rename collision: %q and %q both map to %q", old, sp, to)
			}
		}
		seen[sp] = to
	}
	inputs := make([]crn.Species, len(c.Inputs))
	for i, in := range c.Inputs {
		inputs[i] = seen[in]
	}
	var leader crn.Species
	if c.Leader != "" {
		leader = seen[c.Leader]
	}
	reactions := make([]crn.Reaction, len(c.Reactions))
	for ri, r := range c.Reactions {
		reactions[ri] = crn.Reaction{
			Reactants: renameTerms(r.Reactants, seen),
			Products:  renameTerms(r.Products, seen),
			Name:      r.Name,
		}
	}
	return crn.New(inputs, seen[c.Output], leader, reactions)
}

func renameTerms(ts []crn.Term, m map[crn.Species]crn.Species) []crn.Term {
	out := make([]crn.Term, len(ts))
	for i, t := range ts {
		out[i] = crn.Term{Coeff: t.Coeff, Sp: m[t.Sp]}
	}
	return out
}

// Concat builds the concatenated CRN C_{g∘f} of Section 2.3 for
// f : N^d → N and g : N → N: species sets are made disjoint, f's output is
// renamed to g's (single) input, and a fresh leader splits into both
// modules' leaders. By Observation 2.2, if cf is output-oblivious the
// result stably computes g∘f; the result is itself output-oblivious iff cg
// is.
func Concat(cf, cg *crn.CRN) (*crn.CRN, error) {
	if cg.Dim() != 1 {
		return nil, fmt.Errorf("compose: downstream CRN must take exactly 1 input, has %d", cg.Dim())
	}
	b := NewBuilder()
	inputs := make([]crn.Species, cf.Dim())
	for i := range inputs {
		inputs[i] = crn.Species(fmt.Sprintf("X%d", i+1))
	}
	w := b.Fresh("W")
	lf, err := b.Instantiate(cf, "f.", inputs, w)
	if err != nil {
		return nil, err
	}
	y := crn.Species("Y")
	lg, err := b.Instantiate(cg, "g.", []crn.Species{w}, y)
	if err != nil {
		return nil, err
	}
	return b.Finish(inputs, y, lf, lg)
}

// Builder accumulates reactions for a composite CRN and instantiates
// modules into disjoint namespaces.
type Builder struct {
	reactions []crn.Reaction
	fresh     int
	used      map[crn.Species]bool
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{used: make(map[crn.Species]bool)}
}

// Fresh returns a new species name based on base, unique in this builder.
func (b *Builder) Fresh(base string) crn.Species {
	for {
		b.fresh++
		sp := crn.Species(fmt.Sprintf("%s_%d", base, b.fresh))
		if !b.used[sp] {
			b.used[sp] = true
			return sp
		}
	}
}

// Claim records externally chosen species names so Fresh avoids them.
func (b *Builder) Claim(sps ...crn.Species) {
	for _, sp := range sps {
		b.used[sp] = true
	}
}

// Add appends raw reactions.
func (b *Builder) Add(rs ...crn.Reaction) {
	b.reactions = append(b.reactions, rs...)
}

// AddFanOut emits the fan-out reaction src → dst1 + dst2 + ... used by the
// Lemma 6.2 construction to feed one input stream to many modules.
func (b *Builder) AddFanOut(src crn.Species, dsts ...crn.Species) {
	products := make([]crn.Term, len(dsts))
	for i, d := range dsts {
		products[i] = crn.Term{Coeff: 1, Sp: d}
	}
	b.Add(crn.Reaction{
		Reactants: []crn.Term{{Coeff: 1, Sp: src}},
		Products:  products,
		Name:      "fanout " + string(src),
	})
}

// Instantiate copies module's reactions into the builder with its species
// renamed: the module's inputs become the given input species, its output
// becomes the given output species, and every other species is prefixed to
// keep namespaces disjoint. It returns the renamed leader species ("" if
// the module is leaderless). The caller is responsible for producing one
// copy of the returned leader (e.g. via a leader-split reaction).
func (b *Builder) Instantiate(module *crn.CRN, prefix string, inputs []crn.Species, output crn.Species) (crn.Species, error) {
	if len(inputs) != module.Dim() {
		return "", fmt.Errorf("compose: module takes %d inputs, given %d", module.Dim(), len(inputs))
	}
	mapping := make(map[crn.Species]crn.Species)
	for i, in := range module.Inputs {
		mapping[in] = inputs[i]
	}
	if prev, ok := mapping[module.Output]; ok && prev != output {
		return "", fmt.Errorf("compose: module output %q is also an input", module.Output)
	}
	mapping[module.Output] = output
	for _, sp := range module.SpeciesList() {
		if _, ok := mapping[sp]; !ok {
			to := crn.Species(prefix + string(sp))
			if b.used[to] {
				to = b.Fresh(prefix + string(sp))
			}
			b.used[to] = true
			mapping[sp] = to
		}
	}
	for _, r := range module.Reactions {
		b.Add(crn.Reaction{
			Reactants: renameTerms(r.Reactants, mapping),
			Products:  renameTerms(r.Products, mapping),
			Name:      r.Name,
		})
	}
	if module.Leader == "" {
		return "", nil
	}
	return mapping[module.Leader], nil
}

// Finish assembles the accumulated reactions into a CRN with the given
// interface. Non-empty leader names among leaders are produced by a single
// split reaction L → l1 + l2 + ...; if no module needs a leader the result
// is leaderless.
func (b *Builder) Finish(inputs []crn.Species, output crn.Species, leaders ...crn.Species) (*crn.CRN, error) {
	var needed []crn.Term
	for _, l := range leaders {
		if l != "" {
			needed = append(needed, crn.Term{Coeff: 1, Sp: l})
		}
	}
	var leader crn.Species
	reactions := b.reactions
	if len(needed) > 0 {
		leader = "L"
		if b.used[leader] {
			leader = b.Fresh("L")
		}
		split := crn.Reaction{
			Reactants: []crn.Term{{Coeff: 1, Sp: leader}},
			Products:  needed,
			Name:      "leader split",
		}
		reactions = append([]crn.Reaction{split}, reactions...)
	}
	return crn.New(inputs, output, leader, reactions)
}
