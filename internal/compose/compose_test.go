package compose

import (
	"strings"
	"testing"

	"crncompose/internal/crn"
	"crncompose/internal/reach"
	"crncompose/internal/sim"
	"crncompose/internal/vec"
)

func minCRN() *crn.CRN {
	return crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}, {Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
}

func maxCRN() *crn.CRN {
	return crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}}, Products: []crn.Term{{Coeff: 1, Sp: "Z1"}, {Coeff: 1, Sp: "Y"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Z2"}, {Coeff: 1, Sp: "Y"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "Z1"}, {Coeff: 1, Sp: "Z2"}}, Products: []crn.Term{{Coeff: 1, Sp: "K"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "K"}, {Coeff: 1, Sp: "Y"}}, Products: nil},
	})
}

func doubleCRN() *crn.CRN {
	return crn.MustNew([]crn.Species{"X"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X"}}, Products: []crn.Term{{Coeff: 2, Sp: "Y"}}},
	})
}

func TestRename(t *testing.T) {
	c, err := Rename(minCRN(), func(s crn.Species) crn.Species { return "p." + s })
	if err != nil {
		t.Fatal(err)
	}
	if c.Output != "p.Y" || c.Inputs[0] != "p.X1" {
		t.Errorf("rename wrong: %v / %v", c.Output, c.Inputs)
	}
	// Collision detection.
	if _, err := Rename(minCRN(), func(s crn.Species) crn.Species { return "same" }); err == nil {
		t.Fatal("colliding rename accepted")
	}
}

// TestComposable2Min reproduces the Section 1.2 positive example: the
// concatenation of min (output-oblivious) with double stably computes
// 2·min(x1, x2) (Observation 2.2).
func TestComposable2Min(t *testing.T) {
	comp, err := Concat(minCRN(), doubleCRN())
	if err != nil {
		t.Fatal(err)
	}
	if !comp.IsOutputOblivious() {
		t.Error("composition of output-oblivious CRNs must be output-oblivious")
	}
	res, err := reach.CheckGrid(comp, func(x []int64) int64 { return 2 * min(x[0], x[1]) },
		[]int64{0, 0}, []int64{4, 4})
	if err != nil || !res.OK() {
		t.Fatalf("%v %v", err, res)
	}
}

// TestNonComposable2Max reproduces the Section 1.2 negative example: the
// concatenation of the NON-output-oblivious max CRN with double does NOT
// stably compute 2·max — the downstream reaction W → 2Y races the upstream
// correction K + W → ∅ and overproduces up to 2(x1+x2).
func TestNonComposable2Max(t *testing.T) {
	comp, err := Concat(maxCRN(), doubleCRN())
	if err != nil {
		t.Fatal(err)
	}
	res, err := reach.CheckGrid(comp, func(x []int64) int64 { return 2 * max(x[0], x[1]) },
		[]int64{1, 1}, []int64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("naive 2·max composition verified — it must NOT stably compute 2·max")
	}
	// The refutation is an overproduction: the witness reaches a config
	// from which 2·max is unreachable because too many Y were minted.
	if res.Failure == nil || res.Failure.Verdict.Witness == nil {
		t.Fatal("no witness")
	}
	// An adversarial schedule exhibits the overshoot concretely: fire the
	// max CRN's producing reactions and the doubler before the corrector.
	// Reaction order in comp: leaderless, so indices follow construction:
	// f's 4 reactions then g's 1.
	sched := sim.PreferScheduler([]int{0, 1, 4})
	r := sim.RunScheduled(comp.MustInitialConfig(vec.New(3, 3)), sched)
	if !r.Converged {
		t.Fatal("adversarial run did not converge")
	}
	if got := r.Final.Output(); got <= 2*3 {
		t.Errorf("adversarial schedule produced %d ≤ 6; expected overshoot", got)
	}
}

func TestConcatRejectsMultiInputDownstream(t *testing.T) {
	if _, err := Concat(minCRN(), minCRN()); err == nil {
		t.Fatal("2-input downstream accepted")
	}
}

func TestConcatLeaderSplit(t *testing.T) {
	// Leadered upstream and downstream: the composition gets a fresh
	// leader with a split reaction.
	up := crn.MustNew([]crn.Species{"X"}, "Y", "L", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "L"}, {Coeff: 1, Sp: "X"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
	down := crn.MustNew([]crn.Species{"X"}, "Y", "M", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "M"}, {Coeff: 1, Sp: "X"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
	comp, err := Concat(up, down)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Leader == "" {
		t.Fatal("composition lost the leader")
	}
	// min(1, min(1, x)) = min(1, x).
	res, err := reach.CheckGrid(comp, func(x []int64) int64 { return min(1, x[0]) },
		[]int64{0}, []int64{5})
	if err != nil || !res.OK() {
		t.Fatalf("%v %v", err, res)
	}
}

func TestBuilderFanOut(t *testing.T) {
	b := NewBuilder()
	b.AddFanOut("X", "A", "B")
	c, err := b.Finish([]crn.Species{"X"}, "A")
	if err != nil {
		t.Fatal(err)
	}
	res, err := reach.CheckGrid(c, func(x []int64) int64 { return x[0] }, []int64{0}, []int64{6})
	if err != nil || !res.OK() {
		t.Fatalf("%v %v", err, res)
	}
}

func TestBuilderFreshAvoidsClaimed(t *testing.T) {
	b := NewBuilder()
	b.Claim("W_1")
	w := b.Fresh("W")
	if w == "W_1" {
		t.Error("Fresh returned a claimed name")
	}
	if b.Fresh("W") == w {
		t.Error("Fresh returned a duplicate")
	}
}

func TestInstantiateNamespacing(t *testing.T) {
	b := NewBuilder()
	l1, err := b.Instantiate(maxCRN(), "m1.", []crn.Species{"U1", "U2"}, "O1")
	if err != nil {
		t.Fatal(err)
	}
	l2, err := b.Instantiate(maxCRN(), "m2.", []crn.Species{"V1", "V2"}, "O2")
	if err != nil {
		t.Fatal(err)
	}
	if l1 != "" || l2 != "" {
		t.Error("leaderless module returned a leader")
	}
	c, err := b.Finish([]crn.Species{"U1", "U2", "V1", "V2"}, "O1")
	if err != nil {
		t.Fatal(err)
	}
	// The internal species Z1 of the two instances must be distinct.
	names := strings.Join(speciesStrings(c), " ")
	if !strings.Contains(names, "m1.Z1") || !strings.Contains(names, "m2.Z1") {
		t.Errorf("namespacing missing: %s", names)
	}
}

func speciesStrings(c *crn.CRN) []string {
	var out []string
	for _, sp := range c.SpeciesList() {
		out = append(out, string(sp))
	}
	return out
}

func TestInstantiateArityCheck(t *testing.T) {
	b := NewBuilder()
	if _, err := b.Instantiate(minCRN(), "x.", []crn.Species{"A"}, "O"); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}
