// Package core is the top-level facade of the library: the end-to-end
// pipeline
//
//	describe f (semilinear)  →  classify (Theorem 5.2)  →
//	synthesize an output-oblivious CRN (Lemma 6.2)  →
//	verify (model checking) / simulate (Gillespie or fair scheduler)
//
// tying together the substrate packages. Examples and command-line tools
// build on this package.
package core

import (
	"context"
	"fmt"
	"sort"

	"crncompose/internal/classify"
	"crncompose/internal/crn"
	"crncompose/internal/reach"
	"crncompose/internal/semilinear"
	"crncompose/internal/sim"
	"crncompose/internal/synth"
	"crncompose/internal/vec"
	"crncompose/internal/witness"
)

// System is a compiled function: the semilinear description, its
// Theorem 5.2 classification, and the synthesized output-oblivious CRN.
type System struct {
	F        *semilinear.Func
	Analysis *classify.Result
	Net      *crn.CRN
}

// CompileOptions tune the pipeline.
type CompileOptions struct {
	// Bound is the classifier's census bound (0 = default).
	Bound int64
	// N overrides the eventual threshold used by the construction
	// (0 = classifier's; smaller values give much smaller CRNs when valid).
	N int64
	// Ctx, when non-nil, cancels classification and synthesis: a canceled
	// Compile returns a wrapped ctx.Err() within one classifier step or
	// one restriction module of work.
	Ctx context.Context
}

// Compile runs classification and synthesis. When f is not
// obliviously-computable the returned error is a *synth.NotComputableError
// carrying the Lemma 4.1 contradiction.
func Compile(f *semilinear.Func, opts CompileOptions) (*System, error) {
	net, res, err := synth.General(f, synth.GeneralOptions{
		Classify: classify.Options{Bound: opts.Bound, WitnessSearch: true, Ctx: opts.Ctx},
		N:        opts.N,
	})
	if err != nil {
		return nil, err
	}
	return &System{F: f, Analysis: res, Net: net}, nil
}

// Verify model-checks that the compiled CRN stably computes f on the grid
// [lo, hi]^d (the literal Section 2.2 definition, checked exhaustively).
func (s *System) Verify(lo, hi int64, opts ...reach.Option) (reach.GridResult, error) {
	return s.VerifyCtx(context.Background(), lo, hi, opts...)
}

// VerifyCtx is Verify under a cancellation context (see reach.CheckGridCtx
// for the semantics: a canceled run returns a wrapped ctx.Err() and no
// partial counts; a completed run is identical to Verify's).
func (s *System) VerifyCtx(ctx context.Context, lo, hi int64, opts ...reach.Option) (reach.GridResult, error) {
	d := s.F.Dim()
	los := make([]int64, d)
	his := make([]int64, d)
	for i := range los {
		los[i], his[i] = lo, hi
	}
	return reach.CheckGridCtx(ctx, s.Net, func(x []int64) int64 { return s.F.Eval(vec.New(x...)) },
		los, his, opts...)
}

// Simulate runs trials fair-random simulations at input x and reports
// whether all converged to f(x).
func (s *System) Simulate(x vec.V, trials int, seed uint64) (sim.Stats, error) {
	start, err := s.Net.InitialConfig(x)
	if err != nil {
		return sim.Stats{}, err
	}
	results := sim.Ensemble(sim.FairRandom, start, trials, seed)
	st := sim.Summarize(results)
	want := s.F.Eval(x)
	if st.Converged != trials || !st.AllEqual || st.MinOutput != want {
		return st, fmt.Errorf("core: simulation disagrees with f(%v) = %d: %+v", x, want, st)
	}
	return st, nil
}

// Reject classifies f expecting non-computability and returns the
// classifier result with its Lemma 4.1 contradiction. Errors if f turns
// out to be computable.
func Reject(f *semilinear.Func) (*classify.Result, error) {
	res, err := classify.Analyze(f, classify.Options{WitnessSearch: true})
	if err != nil {
		return nil, err
	}
	if res.Computable {
		return nil, fmt.Errorf("core: %s IS obliviously-computable", f.Name)
	}
	return res, nil
}

// Demonstrate builds the Fig 6 style overproduction trace against an
// output-oblivious CRN claimed to compute f (see witness.BuildOverproduction).
func Demonstrate(c *crn.CRN, f witness.Func, con *witness.Contradiction) (*witness.Overproduction, error) {
	return witness.BuildOverproduction(c, f, con)
}

// Library returns the named functions from the paper available to the
// command-line tools, sorted by name.
func Library() map[string]*semilinear.Func {
	return map[string]*semilinear.Func{
		"identity":   semilinear.Identity(),
		"double":     semilinear.Double(),
		"min":        semilinear.Min2(),
		"max":        semilinear.Max2(),
		"min1":       semilinear.MinConst1(),
		"floor3x2":   semilinear.FloorThreeHalves(),
		"fig3b":      semilinear.Fig3b(),
		"fig7":       semilinear.Fig7(),
		"eq2":        semilinear.Equation2(),
		"fig4a":      semilinear.Fig4a(),
		"sumplusmin": semilinear.SumPlusMin(),
	}
}

// LibraryNames returns the sorted names of Library.
func LibraryNames() []string {
	lib := Library()
	names := make([]string, 0, len(lib))
	for name := range lib {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
