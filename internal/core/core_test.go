package core

import (
	"errors"
	"testing"

	"crncompose/internal/crn"
	"crncompose/internal/semilinear"
	"crncompose/internal/synth"
	"crncompose/internal/vec"
	"crncompose/internal/witness"
)

func TestCompileVerifySimulateFig4a(t *testing.T) {
	sys, err := Compile(semilinear.Fig4a(), CompileOptions{Bound: 8, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Net.IsOutputOblivious() {
		t.Fatal("compiled CRN not output-oblivious")
	}
	res, err := sys.Verify(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatal(res)
	}
	if _, err := sys.Simulate(vec.New(4, 3), 4, 77); err != nil {
		t.Fatal(err)
	}
}

func TestCompileOneDim(t *testing.T) {
	sys, err := Compile(semilinear.FloorThreeHalves(), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Verify(0, 15)
	if err != nil || !res.OK() {
		t.Fatalf("%v %v", err, res)
	}
	if _, err := sys.Simulate(vec.New(101), 4, 1); err != nil {
		t.Fatal(err)
	}
}

func TestCompileRejectsMax(t *testing.T) {
	_, err := Compile(semilinear.Max2(), CompileOptions{})
	var nce *synth.NotComputableError
	if !errors.As(err, &nce) {
		t.Fatalf("err = %v", err)
	}
	if nce.Result.Contradiction == nil {
		t.Fatal("no Lemma 4.1 contradiction attached")
	}
}

func TestRejectHelper(t *testing.T) {
	res, err := Reject(semilinear.Equation2())
	if err != nil {
		t.Fatal(err)
	}
	if res.Contradiction == nil {
		t.Fatal("missing contradiction")
	}
	if _, err := Reject(semilinear.Min2()); err == nil {
		t.Fatal("min rejected")
	}
}

func TestDemonstrateFig6(t *testing.T) {
	// End-to-end Fig 6 via the facade: honest oblivious attempt at max.
	attempt := mustAttempt(t)
	fmax := func(x vec.V) int64 { return max(x[0], x[1]) }
	con := witness.Search(fmax, 2, witness.SearchOptions{})
	if con == nil {
		t.Fatal("no contradiction")
	}
	over, err := Demonstrate(attempt, fmax, con)
	if err != nil {
		t.Fatal(err)
	}
	if over.Got <= over.Want {
		t.Fatal("no overproduction")
	}
}

func mustAttempt(t *testing.T) *crn.CRN {
	t.Helper()
	return crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}, {Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
}

func TestLibraryComplete(t *testing.T) {
	names := LibraryNames()
	if len(names) != len(Library()) {
		t.Fatal("name list size mismatch")
	}
	for _, want := range []string{"min", "max", "fig7", "eq2", "fig4a", "floor3x2"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("library missing %q", want)
		}
	}
	// Every library function must evaluate at the origin without panic.
	for name, f := range Library() {
		_ = f.Eval(vec.Zero(f.Dim()))
		_ = name
	}
}
