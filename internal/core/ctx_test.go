package core

import (
	"context"
	"errors"
	"testing"

	"crncompose/internal/classify"
	"crncompose/internal/semilinear"
	"crncompose/internal/synth"
)

// TestCompileCtxPreCanceled: a canceled context aborts the pipeline at the
// classifier's first cancellation point with a wrapped context error and no
// system.
func TestCompileCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sys, err := Compile(semilinear.Min2(), CompileOptions{Ctx: ctx})
	if sys != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("Compile = %v, %v; want nil system and wrapped context.Canceled", sys, err)
	}
	// The same context cancels classification directly.
	if _, err := classify.Analyze(semilinear.Min2(), classify.Options{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Analyze err = %v, want wrapped context.Canceled", err)
	}
	// And synthesis, before it builds any module.
	if _, _, err := synth.General(semilinear.Min2(), synth.GeneralOptions{
		Classify: classify.Options{Ctx: ctx},
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("General err = %v, want wrapped context.Canceled", err)
	}
}

// TestVerifyCtx: a canceled VerifyCtx surfaces the wrapped context error; an
// uncanceled one matches Verify exactly.
func TestVerifyCtx(t *testing.T) {
	sys, err := Compile(semilinear.Identity(), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.VerifyCtx(ctx, 0, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled VerifyCtx err = %v, want wrapped context.Canceled", err)
	}
	// Uncanceled VerifyCtx completes normally (byte-identity of the ctx and
	// plain grid engines is pinned in internal/reach's identity tests).
	got, err := sys.VerifyCtx(context.Background(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !got.OK() || got.Checked != 4 {
		t.Fatalf("VerifyCtx = %+v, want all 4 inputs checked OK", got)
	}
}
