package crn

import (
	"testing"

	"crncompose/internal/vec"
)

// Ablation (DESIGN.md): dense []int64 configurations with precompiled
// sparse reaction deltas (the implementation) versus a naive map-based
// configuration representation. The dense form is what makes the
// simulator and the model checker fast.

func benchCRN() *CRN {
	return MustNew([]Species{"X1", "X2"}, "Y", "", []Reaction{
		{Reactants: []Term{{Coeff: 1, Sp: "X1"}}, Products: []Term{{Coeff: 1, Sp: "Z1"}, {Coeff: 1, Sp: "Y"}}},
		{Reactants: []Term{{Coeff: 1, Sp: "X2"}}, Products: []Term{{Coeff: 1, Sp: "Z2"}, {Coeff: 1, Sp: "Y"}}},
		{Reactants: []Term{{Coeff: 1, Sp: "Z1"}, {Coeff: 1, Sp: "Z2"}}, Products: []Term{{Coeff: 1, Sp: "K"}}},
		{Reactants: []Term{{Coeff: 1, Sp: "K"}, {Coeff: 1, Sp: "Y"}}, Products: nil},
	})
}

func BenchmarkApplyDense(b *testing.B) {
	c := benchCRN()
	cfg := c.MustInitialConfig(vec.New(1<<30, 1<<30))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ri := i % 2
		if cfg.Applicable(ri) {
			cfg.ApplyInPlace(ri)
		}
	}
}

// mapConfig is the naive representation used only by this ablation.
type mapConfig map[Species]int64

func (m mapConfig) applicable(r Reaction) bool {
	for _, t := range r.Reactants {
		if m[t.Sp] < t.Coeff {
			return false
		}
	}
	return true
}

func (m mapConfig) apply(r Reaction) {
	for _, t := range r.Reactants {
		m[t.Sp] -= t.Coeff
	}
	for _, t := range r.Products {
		m[t.Sp] += t.Coeff
	}
}

func BenchmarkApplyMapAblation(b *testing.B) {
	c := benchCRN()
	m := mapConfig{"X1": 1 << 30, "X2": 1 << 30}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := c.Reactions[i%2]
		if m.applicable(r) {
			m.apply(r)
		}
	}
}

func BenchmarkApplicableScan(b *testing.B) {
	c := benchCRN()
	cfg := c.MustInitialConfig(vec.New(100, 100))
	var scratch []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = cfg.ApplicableReactions(scratch)
	}
	_ = scratch
}

func BenchmarkConfigKey(b *testing.B) {
	c := benchCRN()
	cfg := c.MustInitialConfig(vec.New(123456, 654321))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cfg.Key()
	}
}
