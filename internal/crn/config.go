package crn

import (
	"fmt"
	"sort"
	"strings"

	"crncompose/internal/vec"
)

// Config is a configuration: the molecular count of every species, densely
// indexed by the owning CRN's species table. A Config is only meaningful
// together with the CRN that produced it.
type Config struct {
	counts vec.V
	crn    *CRN
}

// InitialConfig returns the initial configuration I_x of Section 2.2:
// count x(i) of each input species X_i, count 1 of the leader (if any), and
// count 0 of everything else.
func (c *CRN) InitialConfig(x vec.V) (Config, error) {
	if len(x) != len(c.Inputs) {
		return Config{}, fmt.Errorf("crn: input arity mismatch: CRN takes %d inputs, got %d", len(c.Inputs), len(x))
	}
	if !x.Nonnegative() {
		return Config{}, fmt.Errorf("crn: negative input %v", x)
	}
	c.buildIndex()
	counts := make(vec.V, len(c.species))
	for i, in := range c.Inputs {
		counts[c.index[in]] += x[i]
	}
	if c.Leader != "" {
		counts[c.index[c.Leader]]++
	}
	return Config{counts: counts, crn: c}, nil
}

// MustInitialConfig is InitialConfig that panics on error.
func (c *CRN) MustInitialConfig(x vec.V) Config {
	cfg, err := c.InitialConfig(x)
	if err != nil {
		panic(err)
	}
	return cfg
}

// ConfigFromCounts builds a configuration from an explicit species→count
// map. Species not in the CRN's universe are rejected.
func (c *CRN) ConfigFromCounts(counts map[Species]int64) (Config, error) {
	c.buildIndex()
	v := make(vec.V, len(c.species))
	for sp, n := range counts {
		i, ok := c.index[sp]
		if !ok {
			return Config{}, fmt.Errorf("crn: unknown species %q", sp)
		}
		if n < 0 {
			return Config{}, fmt.Errorf("crn: negative count %d for %q", n, sp)
		}
		v[i] = n
	}
	return Config{counts: v, crn: c}, nil
}

// DenseConfig wraps a dense count vector as a Config without copying. The
// vector is indexed by the CRN's species table (see SpeciesList) and must
// have exactly NumSpecies components. The Config borrows the slice: callers
// must not mutate it afterwards. This is the arena accessor used by the
// reachability engine, which stores all configurations in one flat backing
// array.
func (c *CRN) DenseConfig(counts vec.V) Config {
	c.buildIndex()
	if len(counts) != len(c.species) {
		panic(fmt.Sprintf("crn: dense config has %d components, CRN has %d species", len(counts), len(c.species)))
	}
	return Config{counts: counts, crn: c}
}

// OutputIndex returns the dense index of the output species.
func (c *CRN) OutputIndex() int { return c.Index(c.Output) }

// NumReactions returns the number of reactions.
func (c *CRN) NumReactions() int { return len(c.Reactions) }

// ApplicableAt reports whether reaction ri can fire in the raw count row
// counts (indexed like a dense configuration). It is the allocation-free
// hot-path twin of Config.Applicable.
func (c *CRN) ApplicableAt(counts []int64, ri int) bool {
	for _, rc := range c.compiled[ri].reactants {
		if counts[rc.Idx] < rc.Coeff {
			return false
		}
	}
	return true
}

// ApplyInto writes src + delta(ri) into dst, where src is a raw count row in
// which reaction ri is applicable (not checked). dst and src must have equal
// length and may alias. No allocation.
func (c *CRN) ApplyInto(dst, src []int64, ri int) {
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	for _, d := range c.compiled[ri].delta {
		dst[d.Idx] += d.Coeff
	}
}

// CRN returns the owning network.
func (cf Config) CRN() *CRN { return cf.crn }

// Count returns the count of sp (0 for unknown species).
func (cf Config) Count(sp Species) int64 {
	i := cf.crn.Index(sp)
	if i < 0 {
		return 0
	}
	return cf.counts[i]
}

// Output returns the count of the output species Y.
func (cf Config) Output() int64 { return cf.Count(cf.crn.Output) }

// Counts returns a copy of the dense count vector.
func (cf Config) Counts() vec.V { return cf.counts.Clone() }

// CountsRef returns the underlying count vector without copying. Callers
// must not mutate it; this exists for hot paths in the simulator and
// reachability explorer.
func (cf Config) CountsRef() vec.V { return cf.counts }

// Clone returns an independent copy of the configuration.
func (cf Config) Clone() Config {
	return Config{counts: cf.counts.Clone(), crn: cf.crn}
}

// Total returns the total molecular count.
func (cf Config) Total() int64 { return cf.counts.Sum() }

// Key returns a canonical string key for the configuration, suitable for
// deduplication in reachability search.
func (cf Config) Key() string { return cf.counts.Key() }

// Leq reports pointwise cf ≤ other. Both must belong to the same CRN.
func (cf Config) Leq(other Config) bool {
	if cf.crn != other.crn {
		panic("crn: comparing configurations of different CRNs")
	}
	return cf.counts.Leq(other.counts)
}

// Add returns cf + other (additivity of configurations; used with the
// additive reachability property A→*B ⇒ A+C→*B+C).
func (cf Config) Add(other Config) Config {
	if cf.crn != other.crn {
		panic("crn: adding configurations of different CRNs")
	}
	return Config{counts: cf.counts.Add(other.counts), crn: cf.crn}
}

// Applicable reports whether reaction ri can fire in cf (R ≤ C).
func (cf Config) Applicable(ri int) bool {
	cr := cf.crn.compiled[ri]
	for _, rc := range cr.reactants {
		if cf.counts[rc.Idx] < rc.Coeff {
			return false
		}
	}
	return true
}

// Apply returns the configuration yielded by firing reaction ri
// (C' = C - R + P). It panics if the reaction is not applicable.
func (cf Config) Apply(ri int) Config {
	if !cf.Applicable(ri) {
		panic(fmt.Sprintf("crn: reaction %d (%s) not applicable in %s", ri, cf.crn.Reactions[ri], cf))
	}
	out := cf.counts.Clone()
	for _, d := range cf.crn.compiled[ri].delta {
		out[d.Idx] += d.Coeff
	}
	return Config{counts: out, crn: cf.crn}
}

// ApplyInPlace fires reaction ri, mutating cf's counts. The caller must own
// the configuration exclusively. It panics if the reaction is not applicable.
func (cf *Config) ApplyInPlace(ri int) {
	if !cf.Applicable(ri) {
		panic(fmt.Sprintf("crn: reaction %d (%s) not applicable in %s", ri, cf.crn.Reactions[ri], cf))
	}
	for _, d := range cf.crn.compiled[ri].delta {
		cf.counts[d.Idx] += d.Coeff
	}
}

// ApplicableReactions returns the indices of all reactions applicable in cf.
// The scratch slice, if non-nil, is reused to avoid allocation.
func (cf Config) ApplicableReactions(scratch []int) []int {
	out := scratch[:0]
	for ri := range cf.crn.compiled {
		if cf.Applicable(ri) {
			out = append(out, ri)
		}
	}
	return out
}

// IsTerminal reports whether no reaction is applicable in cf.
func (cf Config) IsTerminal() bool {
	for ri := range cf.crn.compiled {
		if cf.Applicable(ri) {
			return false
		}
	}
	return true
}

// String renders nonzero counts as "{2 X, 1 L}" sorted by species name.
func (cf Config) String() string {
	type entry struct {
		sp Species
		n  int64
	}
	var entries []entry
	for i, n := range cf.counts {
		if n != 0 {
			entries = append(entries, entry{cf.crn.species[i], n})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].sp < entries[j].sp })
	parts := make([]string, len(entries))
	for i, e := range entries {
		parts[i] = fmt.Sprintf("%d %s", e.n, e.sp)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Trace is a finite reaction sequence from a starting configuration,
// recording each fired reaction index. Traces witness reachability.
type Trace struct {
	Start     Config
	Reactions []int
}

// Replay applies the trace and returns the final configuration, or an error
// if some step is inapplicable.
func (t Trace) Replay() (Config, error) {
	cur := t.Start.Clone()
	for step, ri := range t.Reactions {
		if !cur.Applicable(ri) {
			return Config{}, fmt.Errorf("crn: trace step %d: reaction %d (%s) not applicable in %s",
				step, ri, cur.crn.Reactions[ri], cur)
		}
		cur.ApplyInPlace(ri)
	}
	return cur, nil
}

// ReplayFrom applies the trace's reaction sequence starting from an
// alternative configuration start ≥ t.Start; by additivity of reachability
// the sequence remains applicable. Returns an error otherwise.
func (t Trace) ReplayFrom(start Config) (Config, error) {
	shifted := Trace{Start: start, Reactions: t.Reactions}
	return shifted.Replay()
}

// String renders the trace as a sequence of reaction strings.
func (t Trace) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "from %s:\n", t.Start)
	for _, ri := range t.Reactions {
		fmt.Fprintf(&sb, "  %s\n", t.Start.crn.Reactions[ri])
	}
	return sb.String()
}
