// Package crn implements the discrete chemical reaction network model of
// Section 2.2 of the paper: finite species sets, reactions (R, P) ∈ N^S×N^S,
// integer-count configurations, applicability and the additive reachability
// step relation, plus the output-oblivious and output-monotonic structural
// predicates of Section 2.3.
package crn

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"
)

// Species is a species name. Names are case-sensitive identifiers.
type Species string

// Term is one species with a stoichiometric coefficient, as it appears on
// one side of a reaction.
type Term struct {
	Coeff int64
	Sp    Species
}

// Reaction consumes Reactants and produces Products. Coefficients are
// positive; a species may appear on both sides (a catalyst).
type Reaction struct {
	Reactants []Term
	Products  []Term
	// Name is an optional label used in traces and error messages.
	Name string
}

// R returns the total coefficient of sp among the reactants.
func (r Reaction) R(sp Species) int64 { return coeffOf(r.Reactants, sp) }

// P returns the total coefficient of sp among the products.
func (r Reaction) P(sp Species) int64 { return coeffOf(r.Products, sp) }

// Net returns P(sp) - R(sp): the net change in sp when the reaction fires.
func (r Reaction) Net(sp Species) int64 { return r.P(sp) - r.R(sp) }

// Order returns the total reactant coefficient (the molecularity).
func (r Reaction) Order() int64 {
	var n int64
	for _, t := range r.Reactants {
		n += t.Coeff
	}
	return n
}

func coeffOf(ts []Term, sp Species) int64 {
	var n int64
	for _, t := range ts {
		if t.Sp == sp {
			n += t.Coeff
		}
	}
	return n
}

// String renders the reaction in the standard arrow notation, e.g.
// "X1 + X2 -> Y" or "L -> 2Y + L0". An empty side renders as "0".
func (r Reaction) String() string {
	return sideString(r.Reactants) + " -> " + sideString(r.Products)
}

func sideString(ts []Term) string {
	if len(ts) == 0 {
		return "0"
	}
	parts := make([]string, 0, len(ts))
	for _, t := range ts {
		if t.Coeff == 1 {
			parts = append(parts, string(t.Sp))
		} else {
			parts = append(parts, fmt.Sprintf("%d%s", t.Coeff, t.Sp))
		}
	}
	return strings.Join(parts, " + ")
}

// CRN is a chemical reaction network together with the computational roles
// defined in Section 2.2: an ordered list of input species, an output
// species, and an optional leader species.
type CRN struct {
	// Inputs are the input species X1..Xd in order.
	Inputs []Species
	// Output is the output species Y.
	Output Species
	// Leader is the leader species L; empty for leaderless CRNs.
	Leader Species
	// Reactions is the reaction set.
	Reactions []Reaction

	indexOnce sync.Once          // guards the lazy build below
	species   []Species          // sorted species universe (lazily built)
	index     map[Species]int    // species -> dense index
	compiled  []compiledReaction // dense form for fast simulation

	depsOnce   sync.Once // guards the lazy dependency graph build
	dependents [][]int32 // reaction → reactions whose applicability it can change

	simOnce sync.Once // guards the sim-opaque slot below
	simSlot any       // whatever the simulator memoizes per CRN (see SimSlot)
}

type compiledReaction struct {
	reactants []IdxCoeff // consumed counts by species index
	delta     []IdxCoeff // net change by species index
}

// IdxCoeff pairs a dense species index with a coefficient; the compiled
// dense form of reaction sides (see ReactantsAt and DeltaAt).
type IdxCoeff struct {
	Idx   int
	Coeff int64
}

// New constructs a CRN with the given roles and reactions, and validates it.
func New(inputs []Species, output, leader Species, reactions []Reaction) (*CRN, error) {
	c := &CRN{
		Inputs:    append([]Species(nil), inputs...),
		Output:    output,
		Leader:    leader,
		Reactions: append([]Reaction(nil), reactions...),
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	c.buildIndex()
	return c, nil
}

// MustNew is New that panics on error, for statically known CRNs in tests
// and examples.
func MustNew(inputs []Species, output, leader Species, reactions []Reaction) *CRN {
	c, err := New(inputs, output, leader, reactions)
	if err != nil {
		panic(err)
	}
	return c
}

// Validate checks structural well-formedness: nonzero positive coefficients,
// distinct input species, an output species, and a nonempty species universe
// that includes the declared roles.
func (c *CRN) Validate() error {
	if c.Output == "" {
		return errors.New("crn: missing output species")
	}
	seen := make(map[Species]bool, len(c.Inputs))
	for _, in := range c.Inputs {
		if in == "" {
			return errors.New("crn: empty input species name")
		}
		if seen[in] {
			return fmt.Errorf("crn: duplicate input species %q", in)
		}
		seen[in] = true
	}
	for i, r := range c.Reactions {
		if len(r.Reactants) == 0 && len(r.Products) == 0 {
			return fmt.Errorf("crn: reaction %d is empty", i)
		}
		for _, t := range append(append([]Term(nil), r.Reactants...), r.Products...) {
			if t.Coeff <= 0 {
				return fmt.Errorf("crn: reaction %d has nonpositive coefficient %d for %q", i, t.Coeff, t.Sp)
			}
			if t.Sp == "" {
				return fmt.Errorf("crn: reaction %d names an empty species", i)
			}
		}
	}
	return nil
}

// SpeciesList returns the sorted universe of species: every species named in
// a reaction, plus the inputs, output, and leader.
func (c *CRN) SpeciesList() []Species {
	c.buildIndex()
	out := make([]Species, len(c.species))
	copy(out, c.species)
	return out
}

// Index returns the dense index of sp, or -1 if the species is unknown.
func (c *CRN) Index(sp Species) int {
	c.buildIndex()
	if i, ok := c.index[sp]; ok {
		return i
	}
	return -1
}

// NumSpecies returns the size of the species universe.
func (c *CRN) NumSpecies() int {
	c.buildIndex()
	return len(c.species)
}

// buildIndex lazily builds the species table and compiled reaction rows.
// It is safe for concurrent first call: the reachability engine's parallel
// workers and sim ensembles may race to trigger the build.
func (c *CRN) buildIndex() {
	c.indexOnce.Do(c.buildIndexNow)
}

func (c *CRN) buildIndexNow() {
	set := make(map[Species]bool)
	for _, in := range c.Inputs {
		set[in] = true
	}
	set[c.Output] = true
	if c.Leader != "" {
		set[c.Leader] = true
	}
	for _, r := range c.Reactions {
		for _, t := range r.Reactants {
			set[t.Sp] = true
		}
		for _, t := range r.Products {
			set[t.Sp] = true
		}
	}
	species := make([]Species, 0, len(set))
	for sp := range set {
		species = append(species, sp)
	}
	sort.Slice(species, func(i, j int) bool { return species[i] < species[j] })
	index := make(map[Species]int, len(species))
	for i, sp := range species {
		index[sp] = i
	}
	c.species = species
	c.index = index

	c.compiled = make([]compiledReaction, len(c.Reactions))
	for ri, r := range c.Reactions {
		need := make(map[int]int64)
		delta := make(map[int]int64)
		for _, t := range r.Reactants {
			need[index[t.Sp]] += t.Coeff
			delta[index[t.Sp]] -= t.Coeff
		}
		for _, t := range r.Products {
			delta[index[t.Sp]] += t.Coeff
		}
		cr := compiledReaction{}
		for idx, coeff := range need {
			cr.reactants = append(cr.reactants, IdxCoeff{idx, coeff})
		}
		for idx, d := range delta {
			if d != 0 {
				cr.delta = append(cr.delta, IdxCoeff{idx, d})
			}
		}
		sort.Slice(cr.reactants, func(i, j int) bool { return cr.reactants[i].Idx < cr.reactants[j].Idx })
		sort.Slice(cr.delta, func(i, j int) bool { return cr.delta[i].Idx < cr.delta[j].Idx })
		c.compiled[ri] = cr
	}
}

// ReactantsAt returns reaction ri's reactant requirements in compiled dense
// form: duplicate terms merged per species, sorted by species index. The
// slice is shared with the CRN — callers must not mutate it. This is the
// single source of truth for merged-reactant semantics (applicability and
// mass-action propensities must agree on it).
func (c *CRN) ReactantsAt(ri int) []IdxCoeff {
	c.buildIndex()
	return c.compiled[ri].reactants
}

// DeltaAt returns reaction ri's net count change in compiled dense form:
// only species with nonzero net change, sorted by species index. Shared;
// do not mutate.
func (c *CRN) DeltaAt(ri int) []IdxCoeff {
	c.buildIndex()
	return c.compiled[ri].delta
}

// DependentsAt returns the indices of the reactions whose applicability or
// mass-action propensity can change when reaction ri fires: those consuming
// a species in ri's net change. The list is sorted ascending and
// deduplicated, built lazily once per CRN (the same sync.Once discipline as
// the species index) and shared — callers must not mutate it. It is the
// single source of truth for incremental propensity and applicable-set
// maintenance in the simulator.
func (c *CRN) DependentsAt(ri int) []int32 {
	c.buildIndex()
	c.depsOnce.Do(c.buildDependents)
	return c.dependents[ri]
}

func (c *CRN) buildDependents() {
	nR := len(c.Reactions)
	consumers := make([][]int32, len(c.species))
	for ri := 0; ri < nR; ri++ {
		for _, t := range c.compiled[ri].reactants {
			consumers[t.Idx] = append(consumers[t.Idx], int32(ri))
		}
	}
	c.dependents = make([][]int32, nR)
	for ri := 0; ri < nR; ri++ {
		var deps []int32
		for _, d := range c.compiled[ri].delta {
			deps = append(deps, consumers[d.Idx]...)
		}
		slices.Sort(deps)
		c.dependents[ri] = slices.Compact(deps)
	}
}

// SimSlot returns the simulator-opaque value memoized on this CRN, building
// it with build on the first call (same sync.Once discipline as the species
// index and the dependency graph — safe for concurrent first call). The slot
// exists so internal/sim can cache its per-CRN compiled view without crn
// importing sim; the stored value must be immutable after build, since every
// simulation run on this CRN shares it. Exactly one caller (the simulator)
// owns the slot's type.
func (c *CRN) SimSlot(build func() any) any {
	c.simOnce.Do(func() { c.simSlot = build() })
	return c.simSlot
}

// IsOutputOblivious reports whether the output species never appears as a
// reactant (Section 2.3). This is the structural property equivalent to
// composability via concatenation.
func (c *CRN) IsOutputOblivious() bool {
	for _, r := range c.Reactions {
		if r.R(c.Output) > 0 {
			return false
		}
	}
	return true
}

// IsOutputMonotonic reports whether no reaction decreases the count of the
// output species (the weaker property of footnote 7 / Observation 2.4).
func (c *CRN) IsOutputMonotonic() bool {
	for _, r := range c.Reactions {
		if r.Net(c.Output) < 0 {
			return false
		}
	}
	return true
}

// Dim returns the input arity d.
func (c *CRN) Dim() int { return len(c.Inputs) }

// String renders the CRN with role directives followed by one reaction per
// line, in a format accepted by the parse package.
func (c *CRN) String() string {
	var sb strings.Builder
	names := make([]string, len(c.Inputs))
	for i, in := range c.Inputs {
		names[i] = string(in)
	}
	fmt.Fprintf(&sb, "#input %s\n", strings.Join(names, " "))
	fmt.Fprintf(&sb, "#output %s\n", c.Output)
	if c.Leader != "" {
		fmt.Fprintf(&sb, "#leader %s\n", c.Leader)
	}
	for _, r := range c.Reactions {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
