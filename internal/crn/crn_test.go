package crn

import (
	"slices"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"crncompose/internal/vec"
)

func minCRN() *CRN {
	return MustNew([]Species{"X1", "X2"}, "Y", "", []Reaction{
		{Reactants: []Term{{Coeff: 1, Sp: "X1"}, {Coeff: 1, Sp: "X2"}}, Products: []Term{{Coeff: 1, Sp: "Y"}}},
	})
}

func maxCRN() *CRN {
	return MustNew([]Species{"X1", "X2"}, "Y", "", []Reaction{
		{Reactants: []Term{{Coeff: 1, Sp: "X1"}}, Products: []Term{{Coeff: 1, Sp: "Z1"}, {Coeff: 1, Sp: "Y"}}},
		{Reactants: []Term{{Coeff: 1, Sp: "X2"}}, Products: []Term{{Coeff: 1, Sp: "Z2"}, {Coeff: 1, Sp: "Y"}}},
		{Reactants: []Term{{Coeff: 1, Sp: "Z1"}, {Coeff: 1, Sp: "Z2"}}, Products: []Term{{Coeff: 1, Sp: "K"}}},
		{Reactants: []Term{{Coeff: 1, Sp: "K"}, {Coeff: 1, Sp: "Y"}}, Products: nil},
	})
}

func TestValidation(t *testing.T) {
	tests := []struct {
		name    string
		build   func() (*CRN, error)
		wantErr string
	}{
		{"missing output", func() (*CRN, error) {
			return New([]Species{"X"}, "", "", nil)
		}, "missing output"},
		{"duplicate input", func() (*CRN, error) {
			return New([]Species{"X", "X"}, "Y", "", nil)
		}, "duplicate input"},
		{"zero coefficient", func() (*CRN, error) {
			return New([]Species{"X"}, "Y", "", []Reaction{
				{Reactants: []Term{{Coeff: 0, Sp: "X"}}, Products: []Term{{Coeff: 1, Sp: "Y"}}},
			})
		}, "nonpositive coefficient"},
		{"empty reaction", func() (*CRN, error) {
			return New([]Species{"X"}, "Y", "", []Reaction{{}})
		}, "empty"},
		{"ok", func() (*CRN, error) { return minCRN(), nil }, ""},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.build()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want contains %q", err, tc.wantErr)
			}
		})
	}
}

func TestObliviousPredicates(t *testing.T) {
	if !minCRN().IsOutputOblivious() {
		t.Error("min CRN should be output-oblivious")
	}
	if maxCRN().IsOutputOblivious() {
		t.Error("max CRN consumes Y")
	}
	if maxCRN().IsOutputMonotonic() {
		t.Error("max CRN decreases Y")
	}
	// Catalytic output: monotonic but not oblivious.
	cat := MustNew([]Species{"X"}, "Y", "", []Reaction{
		{Reactants: []Term{{Coeff: 1, Sp: "Y"}, {Coeff: 1, Sp: "X"}}, Products: []Term{{Coeff: 1, Sp: "Y"}, {Coeff: 1, Sp: "B"}}},
	})
	if cat.IsOutputOblivious() {
		t.Error("catalytic CRN should not be oblivious")
	}
	if !cat.IsOutputMonotonic() {
		t.Error("catalytic CRN should be monotonic")
	}
}

func TestInitialConfig(t *testing.T) {
	c := MustNew([]Species{"X1", "X2"}, "Y", "L", []Reaction{
		{Reactants: []Term{{Coeff: 1, Sp: "X1"}, {Coeff: 1, Sp: "X2"}}, Products: []Term{{Coeff: 1, Sp: "Y"}}},
	})
	cfg := c.MustInitialConfig(vec.New(3, 5))
	if cfg.Count("X1") != 3 || cfg.Count("X2") != 5 || cfg.Count("L") != 1 || cfg.Count("Y") != 0 {
		t.Errorf("initial config wrong: %s", cfg)
	}
	if _, err := c.InitialConfig(vec.New(1)); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := c.InitialConfig(vec.New(-1, 0)); err == nil {
		t.Error("negative input accepted")
	}
}

func TestApplyAndApplicability(t *testing.T) {
	c := minCRN()
	cfg := c.MustInitialConfig(vec.New(2, 1))
	if !cfg.Applicable(0) {
		t.Fatal("min reaction should be applicable")
	}
	next := cfg.Apply(0)
	if next.Count("X1") != 1 || next.Count("X2") != 0 || next.Output() != 1 {
		t.Errorf("after firing: %s", next)
	}
	// Original is unchanged (Apply is pure).
	if cfg.Count("X1") != 2 {
		t.Error("Apply mutated its receiver")
	}
	if next.Applicable(0) {
		t.Error("reaction applicable without X2")
	}
	if !next.IsTerminal() {
		t.Error("config should be terminal")
	}
}

func TestApplyPanicsWhenInapplicable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Apply on inapplicable reaction should panic")
		}
	}()
	c := minCRN()
	cfg := c.MustInitialConfig(vec.New(0, 0))
	cfg.Apply(0)
}

func TestTraceReplay(t *testing.T) {
	c := maxCRN()
	cfg := c.MustInitialConfig(vec.New(1, 1))
	tr := Trace{Start: cfg, Reactions: []int{0, 1, 2, 3}}
	final, err := tr.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if final.Output() != 1 {
		t.Errorf("max(1,1) trace gave %d outputs", final.Output())
	}
	// Inapplicable trace errors out.
	bad := Trace{Start: cfg, Reactions: []int{2}}
	if _, err := bad.Replay(); err == nil {
		t.Error("inapplicable trace replayed")
	}
}

func TestAdditiveReachability(t *testing.T) {
	// Property (Section 2.2): if A →* B via trace α then A+C →* B+C via
	// the same α.
	c := maxCRN()
	err := quick.Check(func(a1, a2, c1, c2 uint8) bool {
		x := vec.New(int64(a1%4), int64(a2%4))
		extra := vec.New(int64(c1%4), int64(c2%4))
		start := c.MustInitialConfig(x)
		tr := Trace{Start: start, Reactions: greedyTrace(start, 8)}
		end, err := tr.Replay()
		if err != nil {
			return false
		}
		// Shift by extra inputs.
		shifted, err := tr.ReplayFrom(c.MustInitialConfig(x.Add(extra)))
		if err != nil {
			return false
		}
		diff := shifted.Counts().Sub(end.Counts())
		want := c.MustInitialConfig(x.Add(extra)).Counts().Sub(start.Counts())
		return diff.Eq(want)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

// greedyTrace fires the first applicable reaction up to n times.
func greedyTrace(cfg Config, n int) []int {
	var seq []int
	cur := cfg.Clone()
	for i := 0; i < n; i++ {
		fired := false
		for ri := range cur.CRN().Reactions {
			if cur.Applicable(ri) {
				cur.ApplyInPlace(ri)
				seq = append(seq, ri)
				fired = true
				break
			}
		}
		if !fired {
			break
		}
	}
	return seq
}

func TestConfigKeyAndString(t *testing.T) {
	c := minCRN()
	a := c.MustInitialConfig(vec.New(1, 2))
	b := c.MustInitialConfig(vec.New(1, 2))
	if a.Key() != b.Key() {
		t.Error("equal configs have different keys")
	}
	if a.Key() == c.MustInitialConfig(vec.New(2, 1)).Key() {
		t.Error("distinct configs share a key")
	}
	if s := a.String(); !strings.Contains(s, "X1") || !strings.Contains(s, "X2") {
		t.Errorf("String = %q", s)
	}
}

func TestReactionAccessors(t *testing.T) {
	r := Reaction{
		Reactants: []Term{{Coeff: 2, Sp: "X"}, {Coeff: 1, Sp: "L"}},
		Products:  []Term{{Coeff: 3, Sp: "Y"}, {Coeff: 1, Sp: "L"}},
	}
	if r.R("X") != 2 || r.P("Y") != 3 || r.Net("L") != 0 || r.Net("X") != -2 {
		t.Errorf("accessors wrong: R(X)=%d P(Y)=%d Net(L)=%d", r.R("X"), r.P("Y"), r.Net("L"))
	}
	if r.Order() != 3 {
		t.Errorf("order = %d", r.Order())
	}
	if got := r.String(); got != "2X + L -> 3Y + L" {
		t.Errorf("String = %q", got)
	}
}

func TestSpeciesUniverse(t *testing.T) {
	c := maxCRN()
	list := c.SpeciesList()
	want := []Species{"K", "X1", "X2", "Y", "Z1", "Z2"}
	if len(list) != len(want) {
		t.Fatalf("species = %v", list)
	}
	for i := range want {
		if list[i] != want[i] {
			t.Fatalf("species = %v, want %v", list, want)
		}
	}
	if c.Index("K") < 0 || c.Index("missing") != -1 {
		t.Error("Index lookup wrong")
	}
}

func TestStringRoundtripFormat(t *testing.T) {
	c := MustNew([]Species{"X"}, "Y", "L", []Reaction{
		{Reactants: []Term{{Coeff: 1, Sp: "L"}, {Coeff: 1, Sp: "X"}}, Products: []Term{{Coeff: 1, Sp: "Y"}}},
	})
	s := c.String()
	for _, frag := range []string{"#input X", "#output Y", "#leader L", "L + X -> Y"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q:\n%s", frag, s)
		}
	}
}

func TestConcurrentLazyIndexBuild(t *testing.T) {
	// The species index and compiled reaction tables are built lazily; the
	// reachability engine's parallel workers may race to the first call.
	// Construct the CRN without New (which pre-builds) so the lazy path is
	// actually exercised, then hit it from many goroutines under -race.
	c := &CRN{
		Inputs: []Species{"X1", "X2"},
		Output: "Y",
		Reactions: []Reaction{
			{Reactants: []Term{{Coeff: 1, Sp: "X1"}, {Coeff: 1, Sp: "X2"}}, Products: []Term{{Coeff: 1, Sp: "Y"}}},
			{Reactants: []Term{{Coeff: 2, Sp: "Y"}}, Products: []Term{{Coeff: 1, Sp: "K"}}},
		},
	}
	var wg sync.WaitGroup
	got := make([]int, 16)
	for i := range got {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i] = c.NumSpecies() + c.Index("Y") + c.OutputIndex()
		}()
	}
	wg.Wait()
	for i := range got {
		if got[i] != got[0] {
			t.Fatalf("goroutine %d saw %d, goroutine 0 saw %d", i, got[i], got[0])
		}
	}
	if c.NumSpecies() != 4 {
		t.Fatalf("species universe = %d, want 4", c.NumSpecies())
	}
}

func TestDependentsAtSoundAndMemoized(t *testing.T) {
	// DependentsAt(ri) must list exactly the reactions whose applicability
	// can change when ri fires: those consuming a species ri's delta touches.
	c := MustNew([]Species{"X1", "X2"}, "Y", "", []Reaction{
		{Reactants: []Term{{Coeff: 1, Sp: "X1"}}, Products: []Term{{Coeff: 1, Sp: "Z1"}, {Coeff: 1, Sp: "Y"}}},
		{Reactants: []Term{{Coeff: 1, Sp: "X2"}}, Products: []Term{{Coeff: 1, Sp: "Z2"}, {Coeff: 1, Sp: "Y"}}},
		{Reactants: []Term{{Coeff: 1, Sp: "Z1"}, {Coeff: 1, Sp: "Z2"}}, Products: []Term{{Coeff: 1, Sp: "K"}}},
		{Reactants: []Term{{Coeff: 1, Sp: "K"}, {Coeff: 1, Sp: "Y"}}, Products: nil},
	})
	for ri := 0; ri < c.NumReactions(); ri++ {
		var want []int32
		for rj := 0; rj < c.NumReactions(); rj++ {
			overlaps := false
			for _, d := range c.DeltaAt(ri) {
				for _, rc := range c.ReactantsAt(rj) {
					if d.Idx == rc.Idx {
						overlaps = true
					}
				}
			}
			if overlaps {
				want = append(want, int32(rj))
			}
		}
		got := c.DependentsAt(ri)
		if !slices.Equal(got, want) {
			t.Errorf("DependentsAt(%d) = %v, want %v", ri, got, want)
		}
		if !slices.IsSorted(got) {
			t.Errorf("DependentsAt(%d) not sorted: %v", ri, got)
		}
	}
	// The graph is built once and shared: repeated calls return the same
	// backing array (sync.Once memoization, not a rebuild).
	a, b := c.DependentsAt(2), c.DependentsAt(2)
	if len(a) == 0 || &a[0] != &b[0] {
		t.Error("DependentsAt rebuilt its result instead of returning the memoized table")
	}
}
