package dist

import (
	"context"
	"fmt"
	"net/http"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"crncompose/internal/crn"
	"crncompose/internal/faultnet"
	"crncompose/internal/reach"
)

// Chaos suite: coordinator + 2 workers over real localhost HTTP with
// deterministic seeded fault injection on every worker→coordinator request
// (refused connections, timeouts, injected 5xx, slow responses, responses
// dropped after the coordinator committed). For every seeded schedule the
// merged GridResult must be byte-identical to the fault-free single-process
// run — the dist determinism contract holding under the failure modes it
// was designed for, not just under clean networks.
//
// Run the whole suite with: go test -race -run Chaos ./internal/dist
// (-short keeps a fixed 2-seed subset for PR gating; the full matrix runs
// on main).

// chaosSchedule builds the fault mix for one seed. MaxFaults caps total
// injections so the workers' bounded retry budgets always outlast the
// schedule — the suite asserts identity, never liveness races.
func chaosSchedule(seed uint64, shape string) faultnet.Schedule {
	s := faultnet.Schedule{
		Seed:      seed,
		Latency:   2 * time.Millisecond,
		MaxFaults: 150,
	}
	switch shape {
	case "mixed":
		s.PRefuse, s.PTimeout, s.PServerError, s.PSlow, s.PDrop = 0.08, 0.08, 0.08, 0.08, 0.08
	case "drops":
		// The nasty case: the coordinator commits, the worker never hears —
		// every retried POST exercises lease/result idempotence.
		s.PDrop = 0.3
	case "refuse-timeout":
		s.PRefuse, s.PTimeout = 0.15, 0.15
	default:
		panic("unknown chaos shape " + shape)
	}
	return s
}

// runChaos is runDistributed with each worker's HTTP client wrapped in a
// seeded faultnet.Transport (per-worker seeds derived from the case seed).
// It returns the merged result and the total number of injected faults.
func runChaos(t *testing.T, c *crn.CRN, lo, hi []int64, shape string, seed uint64) (reach.GridResult, error, int64) {
	t.Helper()
	co, err := NewCoordinator(CoordinatorConfig{
		CRN: c, Func: "min",
		Lo: lo, Hi: hi,
		Shards:   6,
		LeaseTTL: 400 * time.Millisecond,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := co.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer co.Shutdown(context.Background())
	addr := co.Addr().String()

	const workers = 2
	transports := make([]*faultnet.Transport, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		tr := faultnet.NewTransport(nil, chaosSchedule(seed+uint64(i)*1000, shape))
		transports[i] = tr
		w := &Worker{
			Coordinator: addr,
			Name:        fmt.Sprintf("chaos-%d", i),
			Workers:     2,
			Resolve:     testResolver,
			Poll:        5 * time.Millisecond,
			LongPoll:    200 * time.Millisecond,
			Grace:       30 * time.Second, // ride out every injected outage
			Client:      &http.Client{Transport: tr, Timeout: 10 * time.Second},
			Logf:        t.Logf,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil && ctx.Err() == nil {
				t.Errorf("worker %s: %v", w.Name, err)
			}
		}()
	}
	merged, mergedErr := co.Wait(ctx)
	cancel() // release any still-polling workers
	wg.Wait()
	var injected int64
	for _, tr := range transports {
		injected += tr.Injected()
	}
	return merged, mergedErr, injected
}

// settleChaosGoroutines polls until the goroutine count returns to the
// pre-test baseline — the leak check required of every chaos schedule.
func settleChaosGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosByteIdentity is the acceptance matrix: every (shape, seed) cell
// must merge to the exact bytes of the fault-free local run — for a grid
// that verifies and for one that refutes with a witness schedule — and leak
// no goroutines. -short pins a fixed 2-seed subset for PR gating.
func TestChaosByteIdentity(t *testing.T) {
	seeds := []uint64{11, 12, 13}
	if testing.Short() {
		seeds = []uint64{11, 12}
	}
	shapes := []string{"mixed", "drops", "refuse-timeout"}
	if testing.Short() {
		shapes = []string{"mixed", "drops"}
	}
	lo, hi := []int64{0, 0}, []int64{3, 3}
	for _, shape := range shapes {
		for _, seed := range seeds {
			// Alternate verified/refuted grids across seeds so both merge
			// paths (count-summing and stop-at-first-failure) run under
			// every shape.
			c, f := minCRN(), minFunc
			kind := "verified"
			if seed%2 == 0 {
				c, kind = sumCRN(), "refuted"
			}
			t.Run(fmt.Sprintf("%s/seed%d/%s", shape, seed, kind), func(t *testing.T) {
				before := runtime.NumGoroutine()
				merged, err, injected := runChaos(t, c, lo, hi, shape, seed)
				assertSameAsLocal(t, merged, err, c, f, lo, hi)
				if kind == "refuted" {
					if merged.OK() || merged.Failure.Verdict.Witness == nil {
						t.Fatalf("refuted merge lost its witness: %v", merged)
					}
				}
				if injected == 0 {
					t.Fatalf("schedule %s/seed %d injected nothing; the cell proves nothing", shape, seed)
				}
				t.Logf("injected %d faults", injected)
				settleChaosGoroutines(t, before)
			})
		}
	}
}

// TestChaosCoordinatorRestart: the coordinator is killed mid-job — after at
// least two rectangles completed and checkpointed — and restarted on the
// same address from the checkpoint, all while worker requests ride a seeded
// fault schedule. The workers' grace window carries them across the outage,
// the restarted coordinator resumes the completed set instead of
// recomputing it, and the final merge is byte-identical to the fault-free
// local run.
func TestChaosCoordinatorRestart(t *testing.T) {
	before := runtime.NumGoroutine()
	ckpt := filepath.Join(t.TempDir(), "chaos.ckpt")
	cfg := CoordinatorConfig{
		CRN: minCRN(), Func: "min",
		Lo: []int64{0, 0}, Hi: []int64{4, 4},
		Shards:     8,
		LeaseTTL:   400 * time.Millisecond,
		Checkpoint: ckpt,
		Logf:       t.Logf,
	}
	co1, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := co1.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := co1.Addr().String()

	const workers = 2
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		sched := faultnet.Schedule{
			Seed: 21 + uint64(i)*1000, PRefuse: 0.1, PDrop: 0.1,
			Latency: 2 * time.Millisecond, MaxFaults: 100,
		}
		w := &Worker{
			Coordinator: addr,
			Name:        fmt.Sprintf("restart-%d", i),
			Workers:     2,
			Resolve:     testResolver,
			Poll:        5 * time.Millisecond,
			LongPoll:    100 * time.Millisecond,
			Grace:       30 * time.Second, // must span the restart outage
			Client:      &http.Client{Transport: faultnet.NewTransport(nil, sched), Timeout: 10 * time.Second},
			Logf:        t.Logf,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil && ctx.Err() == nil {
				t.Errorf("worker %s: %v", w.Name, err)
			}
		}()
	}

	// Let the job make real progress, then kill the coordinator.
	for {
		if done, _ := co1.Progress(); done >= 2 {
			break
		}
		if ctx.Err() != nil {
			t.Fatal("no progress before restart deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
	_ = co1.Shutdown(sctx)
	scancel()

	// Restart from the checkpoint on the SAME address (retrying briefly in
	// case the kernel has not released the port yet) while the workers'
	// lease retries hammer it.
	co2, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; ; attempt++ {
		if err = co2.Start(addr); err == nil {
			break
		}
		if attempt > 100 {
			t.Fatalf("restarting coordinator on %s: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if resumed, _ := co2.Progress(); resumed < 2 {
		t.Fatalf("restarted coordinator resumed %d rects from the checkpoint, want >= 2", resumed)
	}

	merged, mergedErr := co2.Wait(ctx)
	cancel()
	wg.Wait()
	_ = co2.Shutdown(context.Background()) // before the leak check: its accept loop counts
	assertSameAsLocal(t, merged, mergedErr, minCRN(), minFunc, []int64{0, 0}, []int64{4, 4})
	if !merged.OK() || merged.Checked != 25 {
		t.Fatalf("merged = %v", merged)
	}
	settleChaosGoroutines(t, before)
}

// TestChaosDropOnlyResultPath pins the single nastiest interaction in
// isolation: a worker whose /result POST is dropped after the coordinator
// committed must converge through the retried (duplicate) report, not hang
// or double-count. errors.Is(err, faultnet.ErrDropped) inside httpx is what
// the worker's retry loop sees.
func TestChaosDropOnlyResultPath(t *testing.T) {
	before := runtime.NumGoroutine()
	merged, err, injected := runChaos(t, minCRN(), []int64{0, 0}, []int64{2, 2}, "drops", 5)
	assertSameAsLocal(t, merged, err, minCRN(), minFunc, []int64{0, 0}, []int64{2, 2})
	if merged.Checked != 9 {
		t.Fatalf("double-counted under duplicate reports: %v", merged)
	}
	if injected == 0 {
		t.Skip("seed 5 injected nothing on this run shape")
	}
	settleChaosGoroutines(t, before)
}
