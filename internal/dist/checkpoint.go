package dist

import (
	"encoding/json"
	"os"
	"path/filepath"

	"crncompose/internal/reach"
)

// Checkpoint file: the coordinator rewrites it atomically (write-temp,
// rename) after every completed rectangle, and loads it in NewCoordinator,
// so an interrupted coordinator resumes from the completed set instead of
// recomputing.
//
// What the format promises — and doesn't:
//
//   - A checkpoint resumes only the exact same job under the same
//     ProtocolVersion: the file carries a SHA-256 of the JobSpec JSON (CRN
//     text, function name, grid bounds, budgets, rectangle count), and any
//     mismatch makes the coordinator silently start fresh. That is the
//     safe behavior: a changed CRN, budget, or shard count changes rectangle
//     identities, and mixing results across jobs would break determinism.
//   - No cross-version compatibility: a ProtocolVersion bump invalidates
//     old checkpoints (they are ignored, never migrated).
//   - Rectangle results are stored in their wire (JSON) form, so the file
//     is inspectable and the rewrite is byte-stable for a given set of
//     completed rectangles.

// checkpointFile is the on-disk layout.
type checkpointFile struct {
	Version int               `json:"version"` // ProtocolVersion at write time
	Job     string            `json:"job"`     // sha256 hex of the JobSpec JSON
	Done    []checkpointEntry `json:"done"`    // completed rectangles, ascending id
}

// checkpointEntry records one completed rectangle: its wire-form GridResult
// and/or the deterministic enumeration error it reported.
type checkpointEntry struct {
	ID     int             `json:"id"`
	Result json.RawMessage `json:"result,omitempty"`
	Err    string          `json:"err,omitempty"`
}

// saveCheckpointLocked atomically rewrites the checkpoint with every
// completed rectangle. Caller holds co.mu.
func (co *Coordinator) saveCheckpointLocked() error {
	cp := checkpointFile{Version: ProtocolVersion, Job: co.jobSum}
	for id := range co.states {
		st := &co.states[id]
		if st.status != rectDone {
			continue
		}
		cp.Done = append(cp.Done, checkpointEntry{ID: id, Result: st.raw, Err: st.errMsg})
	}
	b, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return err
	}
	tmp := co.cfg.Checkpoint + ".tmp"
	if err := os.MkdirAll(filepath.Dir(co.cfg.Checkpoint), 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, co.cfg.Checkpoint)
}

// loadCheckpointLocked restores completed rectangles from the checkpoint
// file, ignoring a missing file and any version or job mismatch (the run
// then starts fresh). Caller holds co.mu.
func (co *Coordinator) loadCheckpointLocked() {
	b, err := os.ReadFile(co.cfg.Checkpoint)
	if err != nil {
		if !os.IsNotExist(err) {
			co.logf("checkpoint: %v (starting fresh)", err)
		}
		return
	}
	var cp checkpointFile
	if err := json.Unmarshal(b, &cp); err != nil {
		co.logf("checkpoint: %v (starting fresh)", err)
		return
	}
	if cp.Version != ProtocolVersion || cp.Job != co.jobSum {
		co.logf("checkpoint: version/job mismatch (starting fresh)")
		return
	}
	restored := 0
	for _, e := range cp.Done {
		if e.ID < 0 || e.ID >= len(co.states) {
			co.logf("checkpoint: rect %d out of range (skipped)", e.ID)
			continue
		}
		st := &co.states[e.ID]
		if st.status == rectDone {
			continue
		}
		var res reach.GridResult
		if len(e.Result) > 0 {
			res, err = reach.UnmarshalGridResult(e.Result, co.cfg.CRN)
			if err != nil {
				co.logf("checkpoint: rect %d: %v (skipped)", e.ID, err)
				continue
			}
		} else if e.Err == "" {
			co.logf("checkpoint: rect %d carries neither result nor error (skipped)", e.ID)
			continue
		}
		st.status = rectDone
		st.result = res
		st.raw = e.Result
		st.errMsg = e.Err
		restored++
	}
	if restored > 0 {
		co.logf("checkpoint: resumed %d of %d rects from %s", restored, len(co.states), co.cfg.Checkpoint)
	}
}
