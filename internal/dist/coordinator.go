package dist

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"crncompose/internal/crn"
	"crncompose/internal/metrics"
	"crncompose/internal/reach"
	"crncompose/internal/trace"
)

// Defaults for CoordinatorConfig zero values.
const (
	DefaultShards   = 16
	DefaultLeaseTTL = 30 * time.Second
)

// CoordinatorConfig describes a distributed CheckGrid job.
type CoordinatorConfig struct {
	// CRN is the network under verification; its text form is shipped to
	// workers and it rebinds decoded witness configurations.
	CRN *crn.CRN
	// Func names the function the CRN should compute. Workers resolve the
	// name themselves (cmd/crncheck uses core.Library on both sides).
	Func string
	// Lo, Hi bound the grid, per coordinate (lo ≤ x ≤ hi).
	Lo, Hi []int64
	// MaxConfigs and MaxCount are the per-input exploration budgets — part
	// of the job, since verdicts depend on them. Nonpositive values pick
	// reach's own defaults (1<<18 configs, 1<<40 max count), so an unset
	// config stays byte-identical to a reach.CheckGrid with unset options.
	MaxConfigs int
	MaxCount   int64
	// Shards is the number of grid rectangles to lease out (default
	// DefaultShards, clamped to the grid size). More shards than workers
	// keeps the tail balanced; rectangles are cheap.
	Shards int
	// LeaseTTL bounds how long a silent worker holds a rectangle before it
	// is reassigned (default DefaultLeaseTTL). Workers heartbeat at TTL/3.
	LeaseTTL time.Duration
	// Checkpoint, when nonempty, is a file the coordinator rewrites after
	// every completed rectangle and loads on startup, so an interrupted run
	// resumes from the completed set (see checkpoint.go for the format and
	// its cross-version promises).
	Checkpoint string
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
	// Metrics is the registry the coordinator's GET /metrics renders
	// (lease-table gauges, lease-churn counters, per-rectangle
	// completion histogram). Nil gets a private registry; inject one to
	// aggregate coordinator metrics with a host process's.
	Metrics *metrics.Registry
	// Tracer, when non-nil, records the coordinator's spans: a dist.job
	// root for the whole run, a dist.lease span per grant (ended when the
	// result lands or the lease expires), a dist.merge span for the final
	// fold, plus whatever finished spans workers ship with their results.
	// Inject the host process's tracer (serve does) to see one trace
	// across the request, the coordinator, and the workers.
	Tracer *trace.Tracer
	// TraceContext, when valid, parents the dist.job span — the serving
	// layer passes the span context of the request or async job that
	// started this run, stitching the job into that trace.
	TraceContext trace.SpanContext
}

type rectStatus int

const (
	rectPending rectStatus = iota
	rectLeased
	rectDone
)

// rectState is the lease-table entry of one rectangle.
type rectState struct {
	status   rectStatus
	worker   string      // current lease holder (status == rectLeased)
	deadline time.Time   // lease expiry (status == rectLeased)
	leasedAt time.Time   // when the current lease was granted (completion histogram)
	attempts int         // times leased (for /status observability)
	span     *trace.Span // open dist.lease span (status == rectLeased; nil untraced)
	result   reach.GridResult
	raw      json.RawMessage // wire form of result, for the checkpoint file
	errMsg   string          // deterministic enumeration error, if any
}

// Coordinator shards one CheckGrid call across workers and merges their
// rectangle results deterministically. Create with NewCoordinator, then
// either Run (serve + wait) or Start/Wait/Shutdown separately.
type Coordinator struct {
	cfg    CoordinatorConfig
	job    JobSpec
	jobSum string // sha256 of the JobSpec JSON; checkpoint compatibility key
	rects  []Rect
	ttl    time.Duration
	now    func() time.Time // injectable for lease tests
	met    *distMetrics
	tr     *trace.Tracer
	// jobSpan is the dist.job root span, open from construction until
	// checkFinishedLocked; nil when untraced.
	jobSpan *trace.Span

	mu        sync.Mutex
	states    []rectState
	finished  bool
	merged    reach.GridResult
	mergedErr error
	doneCh    chan struct{}

	closeOnce sync.Once
	closingCh chan struct{} // closed on Shutdown; wakes parked /lease long-polls

	srv *http.Server
	ln  net.Listener
}

// NewCoordinator validates the job, splits the grid, and (if configured)
// loads the checkpoint. It does not listen yet.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.CRN == nil {
		return nil, errors.New("dist: coordinator needs a CRN")
	}
	if cfg.Func == "" {
		return nil, errors.New("dist: coordinator needs a function name")
	}
	d := cfg.CRN.Dim()
	if len(cfg.Lo) != d || len(cfg.Hi) != d {
		return nil, fmt.Errorf("dist: grid arity %d/%d does not match CRN arity %d", len(cfg.Lo), len(cfg.Hi), d)
	}
	for i := range cfg.Lo {
		if cfg.Hi[i] < cfg.Lo[i] {
			return nil, fmt.Errorf("dist: empty grid axis %d: lo %d > hi %d", i, cfg.Lo[i], cfg.Hi[i])
		}
	}
	if cfg.MaxConfigs <= 0 {
		cfg.MaxConfigs = 1 << 18 // reach.buildOptions' default
	}
	if cfg.MaxCount <= 0 {
		cfg.MaxCount = 1 << 40 // reach.buildOptions' default
	}
	if cfg.Shards < 1 {
		cfg.Shards = DefaultShards
	}
	if n := gridSize(cfg.Lo, cfg.Hi); int64(cfg.Shards) > n {
		cfg.Shards = int(n)
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	rects := SplitGrid(cfg.Lo, cfg.Hi, cfg.Shards)
	job := JobSpec{
		Version:    ProtocolVersion,
		CRN:        cfg.CRN.String(),
		Func:       cfg.Func,
		Lo:         cfg.Lo,
		Hi:         cfg.Hi,
		MaxConfigs: cfg.MaxConfigs,
		MaxCount:   cfg.MaxCount,
		Rects:      len(rects),
	}
	jb, err := json.Marshal(job)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(jb)
	co := &Coordinator{
		cfg:       cfg,
		job:       job,
		jobSum:    hex.EncodeToString(sum[:]),
		rects:     rects,
		ttl:       cfg.LeaseTTL,
		now:       time.Now,
		states:    make([]rectState, len(rects)),
		doneCh:    make(chan struct{}),
		closingCh: make(chan struct{}),
		met:       newDistMetrics(cfg.Metrics),
		tr:        cfg.Tracer,
	}
	hookSpanCounters(co.met.reg, co.tr)
	// The job root span opens before the checkpoint load: a checkpoint that
	// already completes the run finishes inside checkFinishedLocked below,
	// which ends this span.
	co.jobSpan = co.tr.StartSpan(co.now(), "dist.job", cfg.TraceContext,
		trace.String("func", cfg.Func),
		trace.Int("rects", int64(len(rects))))
	co.mu.Lock()
	if cfg.Checkpoint != "" {
		co.loadCheckpointLocked()
		co.checkFinishedLocked()
	}
	co.syncRectsLocked()
	co.mu.Unlock()
	return co, nil
}

// Rects returns the grid partition, in canonical grid order.
func (co *Coordinator) Rects() []Rect { return co.rects }

func (co *Coordinator) logf(format string, args ...any) {
	if co.cfg.Logf != nil {
		co.cfg.Logf(format, args...)
	}
}

// lease hands out the lowest-indexed pending rectangle, after reclaiming
// expired leases. Rectangles past the first decided (failed or errored) one
// can no longer affect the merged result and are never handed out.
func (co *Coordinator) lease(worker string) LeaseResponse {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.sweepLocked()
	if co.finished {
		return LeaseResponse{Done: true}
	}
	bound := co.firstDecidedLocked()
	for id := 0; id < len(co.states) && id <= bound; id++ {
		st := &co.states[id]
		if st.status != rectPending {
			continue
		}
		st.status = rectLeased
		st.worker = worker
		st.leasedAt = co.now()
		st.deadline = st.leasedAt.Add(co.ttl)
		st.attempts++
		st.span = co.tr.StartSpan(st.leasedAt, "dist.lease", co.jobSpan.Context(),
			trace.Int("rect", int64(id)),
			trace.String("worker", worker),
			trace.Int("attempt", int64(st.attempts)))
		co.met.leasesGranted.Inc()
		co.syncRectsLocked()
		r := co.rects[id]
		trace.Logf(co.logf, st.span.Context())("lease: rect %d -> %s (attempt %d)", id, worker, st.attempts)
		return LeaseResponse{
			Rect:        &r,
			TTLMillis:   co.ttl.Milliseconds(),
			Traceparent: st.span.Context().Traceparent(),
		}
	}
	return LeaseResponse{Wait: true}
}

// leaseWait is lease with long-polling: when no rectangle is immediately
// available it parks the request for up to wait (clamped to the lease TTL,
// the protocol's bound on how long a single poll may hang) and answers as
// soon as one could be — the job finishing, the server shutting down, or an
// outstanding lease expiring, which is the only event that returns a
// rectangle to the pending set and is purely time-driven, so the park sleeps
// exactly until the earliest outstanding deadline rather than spinning. A
// Wait answer therefore means "the window closed empty; poll again", and
// replaces the old worker-side 50ms polling loop with one parked request per
// TTL-bounded window. The park also wakes when ctx — the HTTP request's
// context — is canceled, so a worker that hangs up (or is SIGTERMed) frees
// its handler goroutine immediately instead of holding it for the window.
func (co *Coordinator) leaseWait(ctx context.Context, worker string, wait time.Duration) LeaseResponse {
	if wait > co.ttl {
		wait = co.ttl
	}
	resp := co.lease(worker)
	if wait <= 0 || !resp.Wait {
		return resp
	}
	deadline := co.now().Add(wait)
	for {
		// Sleep until the earliest outstanding lease deadline (the soonest a
		// rectangle can free up) or the end of the window, whichever is first.
		wake := deadline
		co.mu.Lock()
		for id := range co.states {
			st := &co.states[id]
			if st.status == rectLeased && st.deadline.Before(wake) {
				wake = st.deadline
			}
		}
		co.mu.Unlock()
		d := max(wake.Sub(co.now()), time.Millisecond)
		t := time.NewTimer(d)
		select {
		case <-co.doneCh:
		case <-co.closingCh:
		case <-ctx.Done():
		case <-t.C:
		}
		t.Stop()
		resp = co.lease(worker)
		if !resp.Wait || !co.now().Before(deadline) {
			return resp
		}
		select {
		case <-co.closingCh:
			return resp // shutting down; don't re-park
		case <-ctx.Done():
			return resp // caller gone; the answer is discarded anyway
		default:
		}
	}
}

// Progress reports how many rectangles have completed out of the total —
// the unit async job progress is surfaced in (internal/serve reports it for
// jobs handed to a coordinator).
func (co *Coordinator) Progress() (done, total int) {
	co.mu.Lock()
	defer co.mu.Unlock()
	for id := range co.states {
		if co.states[id].status == rectDone {
			done++
		}
	}
	return done, len(co.states)
}

// renew extends worker's lease on rectID. A false response means the lease
// was lost (expired and possibly reassigned).
func (co *Coordinator) renew(worker string, rectID int) RenewResponse {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.sweepLocked()
	if rectID < 0 || rectID >= len(co.states) {
		return RenewResponse{}
	}
	st := &co.states[rectID]
	if st.status != rectLeased || st.worker != worker {
		co.met.renewFailures.Inc()
		return RenewResponse{}
	}
	st.deadline = co.now().Add(co.ttl)
	return RenewResponse{OK: true}
}

// result records one rectangle's result. Duplicate reports (a lease expired
// and both the old and the new holder finished) are identical by the
// engine's determinism; the first one recorded wins and the rest are
// acknowledged without effect. A decode failure is a protocol error.
func (co *Coordinator) result(req ResultRequest) (ResultResponse, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if req.RectID < 0 || req.RectID >= len(co.states) {
		return ResultResponse{}, fmt.Errorf("dist: result for unknown rect %d", req.RectID)
	}
	st := &co.states[req.RectID]
	if st.status == rectDone {
		return ResultResponse{OK: true}, nil
	}
	if len(req.Result) == 0 && req.Err == "" {
		return ResultResponse{}, fmt.Errorf("dist: result for rect %d carries neither result nor error", req.RectID)
	}
	var res reach.GridResult
	if len(req.Result) > 0 {
		var err error
		res, err = reach.UnmarshalGridResult(req.Result, co.cfg.CRN)
		if err != nil {
			return ResultResponse{}, fmt.Errorf("dist: rect %d: %w", req.RectID, err)
		}
	}
	if !st.leasedAt.IsZero() {
		// Lease grant to accepted result, on the coordinator's clock seam.
		co.met.rectSeconds.ObserveSince(st.leasedAt, co.now())
	}
	leaseSC := st.span.Context()
	st.span.End(co.now(), trace.String("outcome", "ok"))
	st.span = nil
	// The worker's finished spans for this rectangle join the coordinator's
	// ring, so /debug/traces here shows the cross-process trace.
	for i, d := range req.Spans {
		if i >= maxShippedSpans {
			break
		}
		co.tr.Record(d)
	}
	st.status = rectDone
	st.worker = req.Worker
	st.result = res
	st.raw = req.Result
	st.errMsg = req.Err
	co.syncRectsLocked()
	trace.Logf(co.logf, leaseSC)("result: rect %d from %s: %v", req.RectID, req.Worker, res)
	if co.cfg.Checkpoint != "" {
		if err := co.saveCheckpointLocked(); err != nil {
			co.logf("checkpoint: %v", err)
		}
	}
	co.checkFinishedLocked()
	return ResultResponse{OK: true}, nil
}

// sweepLocked reclaims expired leases so the rectangles can be reassigned.
func (co *Coordinator) sweepLocked() {
	now := co.now()
	for id := range co.states {
		st := &co.states[id]
		if st.status == rectLeased && st.deadline.Before(now) {
			trace.Logf(co.logf, st.span.Context())("lease: rect %d expired (held by %s); requeued", id, st.worker)
			st.status = rectPending
			st.worker = ""
			st.span.End(now, trace.String("outcome", "expired"))
			st.span = nil
			co.met.leaseExpired.Inc()
			co.syncRectsLocked()
		}
	}
}

// firstDecidedLocked returns the lowest id of a completed rectangle carrying
// a failure or an enumeration error — the point past which no rectangle can
// influence the merged result — or len(rects) if none.
func (co *Coordinator) firstDecidedLocked() int {
	for id := range co.states {
		st := &co.states[id]
		if st.status == rectDone && (st.errMsg != "" || st.result.Failure != nil) {
			return id
		}
	}
	return len(co.states)
}

// checkFinishedLocked finishes the run once every rectangle that can still
// influence the result is done: all of them, or — when some rectangle
// reported a failure or error — every rectangle up to and including the
// first such one.
func (co *Coordinator) checkFinishedLocked() {
	if co.finished {
		return
	}
	bound := co.firstDecidedLocked()
	for id := 0; id < len(co.states) && id <= bound; id++ {
		if co.states[id].status != rectDone {
			return
		}
	}
	mergeStart := co.now()
	co.merged, co.mergedErr = co.mergeLocked()
	mergeEnd := co.now()
	co.tr.StartSpan(mergeStart, "dist.merge", co.jobSpan.Context()).End(mergeEnd,
		trace.Int("checked", int64(co.merged.Checked)))
	outcome := "ok"
	switch {
	case co.mergedErr != nil:
		outcome = "error"
	case co.merged.Failure != nil:
		outcome = "failure"
	}
	co.jobSpan.End(mergeEnd, trace.String("outcome", outcome))
	co.finished = true
	close(co.doneCh)
}

// mergeLocked folds the rectangle results in canonical grid order with the
// deterministic rule: counts sum; the first rectangle with a failure (the
// smallest failing input in grid order) contributes its partial counts and
// its failure, and everything after it is dropped — exactly where a
// single-process CheckGrid stops. Enumeration errors cut the same way, with
// the error returned alongside the partial counts.
func (co *Coordinator) mergeLocked() (reach.GridResult, error) {
	out := reach.GridResult{}
	for id := range co.states {
		st := &co.states[id]
		if st.status != rectDone {
			break
		}
		out.Checked += st.result.Checked
		out.Inconclusive += st.result.Inconclusive
		out.Explored += st.result.Explored
		if st.result.Failure != nil {
			out.Failure = st.result.Failure
			return out, nil
		}
		if st.errMsg != "" {
			return out, errors.New(st.errMsg)
		}
	}
	return out, nil
}

// Handler returns the coordinator's HTTP API.
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /job", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, co.job)
	})
	mux.HandleFunc("POST /lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, co.leaseWait(r.Context(), req.Worker, time.Duration(req.WaitMillis)*time.Millisecond))
	})
	mux.HandleFunc("POST /renew", func(w http.ResponseWriter, r *http.Request) {
		var req RenewRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, co.renew(req.Worker, req.RectID))
	})
	mux.HandleFunc("POST /result", func(w http.ResponseWriter, r *http.Request) {
		var req ResultRequest
		if !readJSON(w, r, &req) {
			return
		}
		resp, err := co.result(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, co.status())
	})
	mux.Handle("GET /metrics", co.met.reg.Handler())
	if co.tr != nil {
		mux.Handle("GET /debug/traces", co.tr.Handler())
	}
	return mux
}

// status is a point-in-time observability snapshot for GET /status.
func (co *Coordinator) status() map[string]any {
	co.mu.Lock()
	defer co.mu.Unlock()
	var pending, leased, done int
	for id := range co.states {
		switch co.states[id].status {
		case rectPending:
			pending++
		case rectLeased:
			leased++
		case rectDone:
			done++
		}
	}
	return map[string]any{
		"rects":    len(co.states),
		"pending":  pending,
		"leased":   leased,
		"done":     done,
		"finished": co.finished,
	}
}

// Start listens on addr (host:port; port 0 picks a free one — see Addr) and
// serves the protocol in the background.
func (co *Coordinator) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	co.ln = ln
	co.srv = &http.Server{Handler: co.Handler()}
	go func() { _ = co.srv.Serve(ln) }()
	co.logf("coordinator: serving %d rects on %s", len(co.rects), ln.Addr())
	return nil
}

// Addr returns the listening address (nil before Start).
func (co *Coordinator) Addr() net.Addr {
	if co.ln == nil {
		return nil
	}
	return co.ln.Addr()
}

// Wait blocks until the merged result is available or ctx is canceled.
func (co *Coordinator) Wait(ctx context.Context) (reach.GridResult, error) {
	select {
	case <-co.doneCh:
		co.mu.Lock()
		defer co.mu.Unlock()
		return co.merged, co.mergedErr
	case <-ctx.Done():
		return reach.GridResult{}, ctx.Err()
	}
}

// Shutdown stops the HTTP server, first waking any parked /lease long-polls
// so graceful shutdown is not held up by the long-poll window.
func (co *Coordinator) Shutdown(ctx context.Context) error {
	co.closeOnce.Do(func() { close(co.closingCh) })
	if co.srv == nil {
		return nil
	}
	return co.srv.Shutdown(ctx)
}

// Run serves on addr until the grid is fully checked and returns the merged
// result — the exact GridResult a single-process reach.CheckGrid would
// return. It lingers briefly before shutdown so polling workers observe the
// Done response and exit cleanly.
func (co *Coordinator) Run(ctx context.Context, addr string) (reach.GridResult, error) {
	if err := co.Start(addr); err != nil {
		return reach.GridResult{}, err
	}
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = co.Shutdown(sctx)
	}()
	res, err := co.Wait(ctx)
	if err == nil || ctx.Err() == nil {
		// Give workers one poll cycle to see Done before the listener closes.
		time.Sleep(200 * time.Millisecond)
	}
	return res, err
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}
