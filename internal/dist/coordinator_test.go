package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"slices"
	"testing"
	"time"

	"crncompose/internal/crn"
	"crncompose/internal/reach"
)

func newTestCoordinator(t *testing.T, clock *fakeClock, shards int, checkpoint string) *Coordinator {
	t.Helper()
	co, err := NewCoordinator(CoordinatorConfig{
		CRN:        minCRN(),
		Func:       "min",
		Lo:         []int64{0, 0},
		Hi:         []int64{3, 3},
		Shards:     shards,
		LeaseTTL:   10 * time.Second,
		Checkpoint: checkpoint,
	})
	if err != nil {
		t.Fatal(err)
	}
	if clock != nil {
		co.now = clock.now
	}
	return co
}

// TestLeaseExpiryReassignment drives the lease table directly under a
// jittered fake clock: a silent worker's rectangle must be reassigned after
// the TTL, renewals must keep a lease alive past the TTL, and a stale
// late result must be accepted idempotently without changing the outcome.
func TestLeaseExpiryReassignment(t *testing.T) {
	clock := newFakeClock(1)
	co := newTestCoordinator(t, clock, 3, "")
	if len(co.Rects()) != 3 {
		t.Fatalf("%d rects, want 3", len(co.Rects()))
	}

	// A and B take the first two rectangles.
	la := co.lease("A")
	lb := co.lease("B")
	if la.Rect == nil || lb.Rect == nil || la.Rect.ID != 0 || lb.Rect.ID != 1 {
		t.Fatalf("initial leases: %+v %+v", la, lb)
	}
	// B heartbeats across several sub-TTL advances; A stays silent.
	for i := 0; i < 4; i++ {
		clock.advance(4 * time.Second) // cumulative > TTL, but each gap < TTL
		if !co.renew("B", 1).OK {
			t.Fatalf("heartbeat %d lost B's live lease", i)
		}
	}
	// A's lease has now expired: the next hungry worker gets rect 0 back.
	lc := co.lease("C")
	if lc.Rect == nil || lc.Rect.ID != 0 {
		t.Fatalf("expired rect 0 not reassigned: %+v", lc)
	}
	if co.renew("A", 0).OK {
		t.Fatal("A still renews rect 0 after losing it")
	}
	if !co.renew("C", 0).OK {
		t.Fatal("C cannot renew its fresh lease")
	}
	// Only rect 2 remains pending.
	if ld := co.lease("D"); ld.Rect == nil || ld.Rect.ID != 2 {
		t.Fatalf("rect 2 not leased: %+v", ld)
	}
	if lw := co.lease("E"); !lw.Wait {
		t.Fatalf("everything leased, expected wait: %+v", lw)
	}

	// C reports rect 0; A's stale duplicate must be a no-op.
	r0 := localRectResult(t, minCRN(), minFunc, co.Rects()[0], "C")
	if resp, err := co.result(r0); err != nil || !resp.OK {
		t.Fatalf("C's result rejected: %+v %v", resp, err)
	}
	stale := localRectResult(t, minCRN(), minFunc, co.Rects()[0], "A")
	if resp, err := co.result(stale); err != nil || !resp.OK {
		t.Fatalf("stale duplicate rejected: %+v %v", resp, err)
	}

	for _, id := range []int{1, 2} {
		r := localRectResult(t, minCRN(), minFunc, co.Rects()[id], "B")
		if resp, err := co.result(r); err != nil || !resp.OK {
			t.Fatalf("rect %d result rejected: %+v %v", id, resp, err)
		}
	}
	if lz := co.lease("Z"); !lz.Done {
		t.Fatalf("job not done after all rects: %+v", lz)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	merged, err := co.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAsLocal(t, merged, nil, minCRN(), minFunc, []int64{0, 0}, []int64{3, 3})
}

// TestLeaseLongPoll: a parked /lease request must be answered early — when
// an outstanding lease expires (the only event returning a rectangle to the
// pending set) and when the job finishes — instead of the worker polling
// every 50ms or the request hanging for the full window. Real clock: the
// park's wakeup timers are wall-time driven.
func TestLeaseLongPoll(t *testing.T) {
	ttl := 300 * time.Millisecond
	co, err := NewCoordinator(CoordinatorConfig{
		CRN: minCRN(), Func: "min",
		Lo: []int64{0, 0}, Hi: []int64{3, 3},
		Shards: 1, LeaseTTL: ttl,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A takes the only rectangle and goes silent.
	if la := co.lease("A"); la.Rect == nil || la.Rect.ID != 0 {
		t.Fatalf("initial lease: %+v", la)
	}
	// B long-polls with a window far beyond the TTL (the coordinator clamps
	// it): it must be handed A's expired rectangle from inside the park, not
	// told to go away and poll.
	start := time.Now()
	lb := co.leaseWait(context.Background(), "B", time.Hour)
	if lb.Rect == nil || lb.Rect.ID != 0 {
		t.Fatalf("parked request not granted the expired rectangle: %+v", lb)
	}
	if elapsed := time.Since(start); elapsed > 10*ttl {
		t.Fatalf("reassignment took %v, expected ~TTL (%v)", elapsed, ttl)
	}
	// C parks while B computes; B's result finishes the job, which must wake
	// C with Done well before C's window closes.
	woken := make(chan LeaseResponse, 1)
	go func() { woken <- co.leaseWait(context.Background(), "C", time.Hour) }()
	time.Sleep(20 * time.Millisecond) // let C park (racing is still correct, just weaker)
	r := localRectResult(t, minCRN(), minFunc, co.Rects()[0], "B")
	if resp, err := co.result(r); err != nil || !resp.OK {
		t.Fatalf("result rejected: %+v %v", resp, err)
	}
	select {
	case lc := <-woken:
		if !lc.Done {
			t.Fatalf("parked request answered %+v, want Done", lc)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("job completion did not wake the parked lease request")
	}
	// A closed coordinator answers parked requests instead of holding them.
	if err := co.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if lz := co.leaseWait(context.Background(), "Z", time.Hour); !lz.Done {
		t.Fatalf("post-shutdown long-poll: %+v, want Done", lz)
	}
}

// TestMergeStopsAtFirstFailingRect: a failure in an early rectangle must
// produce the single-process result even when later rectangles completed
// with their own (discarded) counts, and must not require rects past the
// failing one.
func TestMergeStopsAtFirstFailingRect(t *testing.T) {
	co, err := NewCoordinator(CoordinatorConfig{
		CRN: minCRN(), Func: "min",
		Lo: []int64{0, 0}, Hi: []int64{3, 3},
		Shards: 4, LeaseTTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A spec that diverges from min only on the x1 ≥ 2 slabs: rects 0 and 1
	// verify (their counts must all be in the merge), the grid's first
	// failure is (2,0) in rect 2, and rect 3 holds a later failure that the
	// merge must discard along with rect 3's counts.
	badHigh := func(x []int64) int64 {
		if x[0] >= 2 {
			return min(x[0], x[1]) + 1
		}
		return min(x[0], x[1])
	}
	rects := co.Rects()
	// Report out of order, later rects first.
	for _, id := range []int{3, 0, 1} {
		r := localRectResult(t, minCRN(), badHigh, rects[id], "w")
		if resp, err := co.result(r); err != nil || !resp.OK {
			t.Fatalf("rect %d: %+v %v", id, resp, err)
		}
	}
	// Rect 3 is decided but rect 2 is still missing, so the run must not be
	// finished yet: the true first failure could be (and is) in rect 2.
	if st := co.status(); st["finished"] != false {
		t.Fatalf("finished early: %v", st)
	}
	r := localRectResult(t, minCRN(), badHigh, rects[2], "w")
	if resp, err := co.result(r); err != nil || !resp.OK {
		t.Fatalf("rect 2: %+v %v", resp, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	merged, err := co.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAsLocal(t, merged, nil, minCRN(), badHigh, []int64{0, 0}, []int64{3, 3})
	if merged.OK() || !slices.Equal(merged.Failure.Input, []int64{2, 0}) {
		t.Fatalf("merged failure at %v, want [2 0]", merged.Failure)
	}
}

// TestCheckpointResume: a fresh coordinator with the same job and checkpoint
// file must resume from the completed rectangles, and a coordinator with a
// different job must ignore the file.
func TestCheckpointResume(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "ckpt.json")
	co1 := newTestCoordinator(t, nil, 4, cp)
	rects := co1.Rects()
	for _, id := range []int{0, 2} {
		r := localRectResult(t, minCRN(), minFunc, rects[id], "w")
		if resp, err := co1.result(r); err != nil || !resp.OK {
			t.Fatalf("rect %d: %+v %v", id, resp, err)
		}
	}

	// Same job: rects 0 and 2 restored, first lease hands out rect 1.
	co2 := newTestCoordinator(t, nil, 4, cp)
	if st := co2.status(); st["done"] != 2 {
		t.Fatalf("resumed status %v, want done=2", st)
	}
	if l := co2.lease("w"); l.Rect == nil || l.Rect.ID != 1 {
		t.Fatalf("first lease after resume: %+v", l)
	}
	for _, id := range []int{1, 3} {
		r := localRectResult(t, minCRN(), minFunc, rects[id], "w")
		if resp, err := co2.result(r); err != nil || !resp.OK {
			t.Fatalf("rect %d: %+v %v", id, resp, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	merged, err := co2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAsLocal(t, merged, nil, minCRN(), minFunc, []int64{0, 0}, []int64{3, 3})

	// Different job (different grid): checkpoint ignored, nothing done.
	co3, err := NewCoordinator(CoordinatorConfig{
		CRN: minCRN(), Func: "min",
		Lo: []int64{0, 0}, Hi: []int64{2, 2},
		Shards: 4, Checkpoint: cp,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := co3.status(); st["done"] != 0 {
		t.Fatalf("mismatched checkpoint not ignored: %v", st)
	}
}

// TestResultValidation: malformed reports are protocol errors, unknown rect
// ids are rejected, and empty reports are rejected.
func TestResultValidation(t *testing.T) {
	co := newTestCoordinator(t, nil, 2, "")
	if _, err := co.result(ResultRequest{Worker: "w", RectID: 99, Result: json.RawMessage(`{}`)}); err == nil {
		t.Fatal("unknown rect accepted")
	}
	if _, err := co.result(ResultRequest{Worker: "w", RectID: 0}); err == nil {
		t.Fatal("empty report accepted")
	}
	if _, err := co.result(ResultRequest{Worker: "w", RectID: 0, Result: json.RawMessage(`{"failure":{"verdict":{"witness":{"start":[1]}}}}`)}); err == nil {
		t.Fatal("undecodable result accepted")
	}
}

// assertSameAsLocal marshals merged and the local single-process CheckGrid
// result and requires byte identity (and identical String renderings).
func assertSameAsLocal(t *testing.T, merged reach.GridResult, mergedErr error, c *crn.CRN, f reach.Func, lo, hi []int64) {
	t.Helper()
	local, localErr := reach.CheckGrid(c, f, lo, hi)
	if (mergedErr == nil) != (localErr == nil) {
		t.Fatalf("error mismatch: merged %v, local %v", mergedErr, localErr)
	}
	if mergedErr != nil && mergedErr.Error() != localErr.Error() {
		t.Fatalf("error mismatch: merged %q, local %q", mergedErr, localErr)
	}
	mb, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := json.Marshal(local)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mb, lb) {
		t.Fatalf("merged result differs from local:\nmerged: %s\nlocal:  %s", mb, lb)
	}
	if merged.String() != local.String() {
		t.Fatalf("String differs: %q vs %q", merged, local)
	}
}
