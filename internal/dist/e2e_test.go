package dist

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"crncompose/internal/crn"
	"crncompose/internal/reach"
)

// runDistributed runs a full coordinator + workers job over real localhost
// HTTP and returns the merged result. killFirstLease, when set, makes the
// first worker die (without reporting) right after its first lease is
// granted — the crash-mid-rectangle schedule the lease table must absorb.
func runDistributed(t *testing.T, c *crn.CRN, lo, hi []int64, shards, workers int, killFirstLease bool) (reach.GridResult, error) {
	t.Helper()
	co, err := NewCoordinator(CoordinatorConfig{
		CRN: c, Func: "min",
		Lo: lo, Hi: hi,
		Shards:   shards,
		LeaseTTL: 300 * time.Millisecond, // short so the killed worker's rect reassigns quickly
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if err := co.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer co.Shutdown(context.Background())
	addr := co.Addr().String()

	var wg sync.WaitGroup
	killed := errors.New("worker killed mid-rectangle")
	for i := 0; i < workers; i++ {
		w := &Worker{
			Coordinator: addr,
			Name:        string(rune('A' + i)),
			Workers:     2,
			Resolve:     testResolver,
			Poll:        10 * time.Millisecond,
			Logf:        t.Logf,
		}
		if i == 0 && killFirstLease {
			w.LeaseHook = func(Rect) error { return killed }
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := w.Run(ctx)
			if err != nil && !errors.Is(err, killed) && ctx.Err() == nil {
				t.Errorf("worker %s: %v", w.Name, err)
			}
		}()
	}
	merged, mergedErr := co.Wait(ctx)
	cancel() // release any still-polling workers
	wg.Wait()
	return merged, mergedErr
}

// TestE2EDistributedByteIdenticalToLocal is the acceptance test of the
// subsystem: coordinator + 2 workers over localhost HTTP, one worker killed
// mid-rectangle, and the merged GridResult — witness schedule included —
// must be byte-identical to a single-process reach.CheckGrid on the same
// grid.
func TestE2EDistributedByteIdenticalToLocal(t *testing.T) {
	t.Run("all-ok", func(t *testing.T) {
		merged, err := runDistributed(t, minCRN(), []int64{0, 0}, []int64{3, 3}, 5, 2, true)
		assertSameAsLocal(t, merged, err, minCRN(), minFunc, []int64{0, 0}, []int64{3, 3})
		if !merged.OK() || merged.Checked != 16 {
			t.Fatalf("merged = %v", merged)
		}
	})
	t.Run("refuted-with-witness", func(t *testing.T) {
		merged, err := runDistributed(t, sumCRN(), []int64{0, 0}, []int64{3, 3}, 5, 2, true)
		assertSameAsLocal(t, merged, err, sumCRN(), minFunc, []int64{0, 0}, []int64{3, 3})
		if merged.OK() || merged.Failure.Verdict.Witness == nil {
			t.Fatalf("merged = %v", merged)
		}
		// The witness shipped over the wire must replay on the coordinator's
		// CRN.
		if _, err := merged.Failure.Verdict.Witness.Replay(); err != nil {
			t.Fatalf("merged witness does not replay: %v", err)
		}
	})
}

// TestE2ESingleWorker: a lone worker must finish a job whose rectangle count
// exceeds the worker count.
func TestE2ESingleWorker(t *testing.T) {
	merged, err := runDistributed(t, minCRN(), []int64{0, 0}, []int64{2, 2}, 7, 1, false)
	assertSameAsLocal(t, merged, err, minCRN(), minFunc, []int64{0, 0}, []int64{2, 2})
}

// TestWorkerRejectsWrongProtocol: a worker must refuse a coordinator
// speaking a different protocol version.
func TestWorkerRejectsWrongProtocol(t *testing.T) {
	co, err := NewCoordinator(CoordinatorConfig{
		CRN: minCRN(), Func: "min",
		Lo: []int64{0, 0}, Hi: []int64{1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	co.job.Version = ProtocolVersion + 1
	if err := co.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer co.Shutdown(context.Background())
	w := &Worker{Coordinator: co.Addr().String(), Resolve: testResolver, JoinTimeout: 2 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := w.Run(ctx); err == nil {
		t.Fatal("version mismatch accepted")
	}
}

// TestWorkerUnknownFunction: a worker that cannot resolve the job's function
// must fail its run rather than report garbage.
func TestWorkerUnknownFunction(t *testing.T) {
	co, err := NewCoordinator(CoordinatorConfig{
		CRN: minCRN(), Func: "nosuchfn",
		Lo: []int64{0, 0}, Hi: []int64{1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer co.Shutdown(context.Background())
	w := &Worker{Coordinator: co.Addr().String(), Resolve: testResolver, JoinTimeout: 2 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := w.Run(ctx); err == nil {
		t.Fatal("unknown function accepted")
	}
}
