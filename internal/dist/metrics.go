package dist

import (
	"crncompose/internal/metrics"
	"crncompose/internal/trace"
)

// distMetrics bundles the coordinator's observability families,
// rendered by GET /metrics on the coordinator's own listener:
//
//	crn_dist_rects{status}                   gauge     — lease table by
//	    status (pending | leased | done)
//	crn_dist_leases_granted_total            counter   — every grant,
//	    re-grants of reclaimed rectangles included
//	crn_dist_lease_expired_total             counter   — leases reclaimed
//	    after their holder went silent past the TTL
//	crn_dist_renew_failures_total            counter   — renew requests
//	    answered "lease lost" (the worker was fenced out)
//	crn_dist_rect_completion_seconds         histogram — lease grant to
//	    accepted result, per rectangle
//
// All durations come from the coordinator's injected clock (co.now),
// the same seam the lease table runs on, so lease tests with a fake
// clock observe deterministic histogram buckets.
type distMetrics struct {
	reg *metrics.Registry

	rectsPending *metrics.Gauge
	rectsLeased  *metrics.Gauge
	rectsDone    *metrics.Gauge

	leasesGranted *metrics.Counter
	leaseExpired  *metrics.Counter
	renewFailures *metrics.Counter

	rectSeconds *metrics.Histogram
}

// rectBuckets widens the default latency buckets to rectangle scale:
// a rectangle is a whole sub-grid exploration, so the tail runs to
// minutes, not milliseconds.
var rectBuckets = []float64{.01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60, 120, 300}

func newDistMetrics(reg *metrics.Registry) *distMetrics {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	m := &distMetrics{reg: reg}
	rects := reg.GaugeVec("crn_dist_rects",
		"Coordinator lease table by rectangle status.", "status")
	m.rectsPending = rects.With("pending")
	m.rectsLeased = rects.With("leased")
	m.rectsDone = rects.With("done")
	m.leasesGranted = reg.Counter("crn_dist_leases_granted_total",
		"Rectangle leases granted, re-grants after reclaim included.")
	m.leaseExpired = reg.Counter("crn_dist_lease_expired_total",
		"Leases reclaimed because the holder went silent past the TTL.")
	m.renewFailures = reg.Counter("crn_dist_renew_failures_total",
		"Renew requests answered with a lost lease (worker fenced out).")
	m.rectSeconds = reg.Histogram("crn_dist_rect_completion_seconds",
		"Time from lease grant to accepted result, per rectangle.", rectBuckets)
	return m
}

// hookSpanCounters surfaces the tracer's recording activity as metrics:
//
//	crn_trace_spans_total          counter — spans recorded into the ring
//	crn_trace_spans_dropped_total  counter — recordings that evicted an
//	    older span (the ring overflowed; old traces may be incomplete)
//
// Registering the same family names on a shared registry is idempotent,
// and SetOnSpan replaces any previous hook, so a coordinator sharing its
// tracer and registry with a host process (serve does both) counts each
// span exactly once. Nil-safe on both arguments.
func hookSpanCounters(reg *metrics.Registry, tr *trace.Tracer) {
	if reg == nil || tr == nil {
		return
	}
	spans := reg.Counter("crn_trace_spans_total",
		"Spans recorded into the trace ring buffer.")
	droppedC := reg.Counter("crn_trace_spans_dropped_total",
		"Span recordings that evicted an older span (ring overflow).")
	tr.SetOnSpan(func(dropped bool) {
		spans.Inc()
		if dropped {
			droppedC.Inc()
		}
	})
}

// syncRectsLocked recomputes the lease-table gauges from the states
// slice. Caller holds co.mu. O(shards) per transition, and shards is
// small by design (rectangles are the lease granularity, not the work
// granularity).
func (co *Coordinator) syncRectsLocked() {
	var pending, leased, done int64
	for id := range co.states {
		switch co.states[id].status {
		case rectPending:
			pending++
		case rectLeased:
			leased++
		case rectDone:
			done++
		}
	}
	co.met.rectsPending.Set(pending)
	co.met.rectsLeased.Set(leased)
	co.met.rectsDone.Set(done)
}
