package dist

import (
	"strings"
	"testing"
	"time"
)

// TestCoordinatorMetrics drives the lease table under the fake clock
// and checks every family the coordinator registers: the lease-table
// gauges track status transitions, expiry and fenced-out renewals hit
// their counters, and the completion histogram observes lease-grant →
// result durations on the injected clock.
func TestCoordinatorMetrics(t *testing.T) {
	clock := newFakeClock(7)
	co := newTestCoordinator(t, clock, 3, "")
	met := co.met

	wantRects := func(step string, pending, leased, done int64) {
		t.Helper()
		if p, l, d := met.rectsPending.Value(), met.rectsLeased.Value(), met.rectsDone.Value(); p != pending || l != leased || d != done {
			t.Fatalf("%s: rects gauges pending=%d leased=%d done=%d, want %d/%d/%d",
				step, p, l, d, pending, leased, done)
		}
	}
	wantRects("initial", 3, 0, 0)

	la := co.lease("A")
	lb := co.lease("B")
	if la.Rect == nil || lb.Rect == nil {
		t.Fatalf("initial leases: %+v %+v", la, lb)
	}
	wantRects("two leased", 1, 2, 0)
	if g := met.leasesGranted.Value(); g != 2 {
		t.Fatalf("leases granted = %d, want 2", g)
	}

	// Everyone goes silent past the TTL: the sweep reclaims both
	// rectangles and the holders' next renews are fenced-out failures.
	clock.advance(11 * time.Second)
	co.sweepAll()
	if e := met.leaseExpired.Value(); e != 2 {
		t.Fatalf("leases expired = %d, want 2", e)
	}
	wantRects("expired", 3, 0, 0)
	if co.renew("A", la.Rect.ID).OK {
		t.Fatal("A renewed an expired lease")
	}
	if rf := met.renewFailures.Value(); rf == 0 {
		t.Fatal("fenced-out renew not counted")
	}

	// C picks the reclaimed rectangle back up and finishes it 2s later:
	// the completion histogram sees one observation in the 2.5s bucket.
	lc := co.lease("C")
	if lc.Rect == nil {
		t.Fatalf("reclaimed rect not re-leased: %+v", lc)
	}
	clock.advance(2 * time.Second)
	r := localRectResult(t, minCRN(), minFunc, *lc.Rect, "C")
	if resp, err := co.result(r); err != nil || !resp.OK {
		t.Fatalf("result rejected: %+v %v", resp, err)
	}
	if n := met.rectSeconds.Count(); n != 1 {
		t.Fatalf("completion histogram count = %d, want 1", n)
	}
	if s := met.rectSeconds.Sum(); s < 1.9 || s > 2.1 {
		t.Fatalf("completion histogram sum = %v, want ~2s", s)
	}
	wantRects("one done", 2, 0, 1)

	// The scrape renders every dist family.
	var b strings.Builder
	if err := met.reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, fam := range []string{
		`crn_dist_rects{status="pending"}`,
		`crn_dist_rects{status="leased"}`,
		`crn_dist_rects{status="done"} 1`,
		"crn_dist_leases_granted_total",
		"crn_dist_lease_expired_total",
		"crn_dist_renew_failures_total",
		"crn_dist_rect_completion_seconds_bucket",
	} {
		if !strings.Contains(out, fam) {
			t.Errorf("scrape missing %q\n%s", fam, out)
		}
	}
}

// sweepAll forces a sweep outside a lease/renew call.
func (co *Coordinator) sweepAll() {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.sweepLocked()
}
