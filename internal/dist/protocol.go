// Package dist shards reach.CheckGrid across processes and machines.
//
// A Coordinator splits the [lo,hi]^d grid into axis-aligned rectangles that
// partition the grid into segments contiguous in canonical (lexicographic)
// grid order, and hands them to Workers over plain HTTP+JSON under
// time-bounded leases. A worker that crashes, hangs, or is killed simply
// loses its lease: the rectangle goes back to the pending set and is
// reassigned, so no failure schedule can lose the run. Completed rectangles
// are checkpointed to disk, so a restarted coordinator resumes instead of
// recomputing.
//
// # Determinism
//
// The merged result is byte-identical (in its JSON wire form and its
// String rendering) to a single-process reach.CheckGrid over the same grid,
// at any worker count, join order, or crash schedule:
//
//   - rectangles partition the grid into contiguous grid-order segments, and
//     within a rectangle reach.CheckRect already has CheckGrid's
//     deterministic first-failure-in-grid-order semantics;
//   - the merge walks rectangles in grid order, summing counts, and stops at
//     the first rectangle reporting a failure (including its partial counts)
//     — exactly where the single-process run stops checking;
//   - duplicate results for a rectangle (a lease expired, both the old and
//     new holder reported) are identical by the engine's own determinism, so
//     the coordinator keeps the first and drops the rest.
//
// # Protocol
//
// Four endpoints, all JSON:
//
//	GET  /job     → JobSpec    (the CRN text, function name, grid, budgets)
//	POST /lease   LeaseRequest → LeaseResponse (a Rect under a TTL, or wait/done)
//	POST /renew   RenewRequest → RenewResponse (heartbeat; false = lease lost)
//	POST /result  ResultRequest → ResultResponse (a rectangle's GridResult)
//
// Workers resolve the function name themselves (the coordinator never ships
// code), so coordinator and workers must agree on the function library —
// cmd/crncheck wires both sides to core.Library.
//
// # Fault model
//
// Every worker→coordinator request may be refused, time out, answer 5xx,
// stall, or be dropped after the coordinator committed its effect — the
// failure modes internal/faultnet injects deterministically in the chaos
// suite. The worker rides them out through internal/httpx retry budgets:
//
//   - transport errors, 5xx, and truncated bodies retry with full-jitter
//     exponential backoff; a 4xx is the coordinator rejecting the request
//     itself and fails fast (a misaddressed -join must not spin for the
//     whole JoinTimeout);
//   - a coordinator that stays unreachable after a successful join is
//     tolerated for Worker.Grace — long enough to span a checkpoint
//     restart — then surfaces as ErrCoordinatorLost, never a silent nil;
//   - every mutating endpoint is idempotent (duplicate lease, renew, and
//     result requests converge), so a response dropped after commit is
//     repaired by the retry, not double-applied;
//   - a renew answering OK=false means the lease was reassigned; with
//     Worker.AbortOnLeaseLoss the fenced-out worker cancels the in-flight
//     rectangle instead of finishing work it no longer owns.
package dist

import (
	"encoding/json"

	"crncompose/internal/trace"
)

// ProtocolVersion is bumped on any incompatible change to the wire types or
// the checkpoint format. Workers reject jobs with a different version.
const ProtocolVersion = 1

// JobSpec describes the grid-checking job to a joining worker. MaxConfigs
// and MaxCount are part of the job, not worker configuration: verdicts
// depend on them, so every rectangle must be checked under the same budgets.
type JobSpec struct {
	Version    int     `json:"version"`
	CRN        string  `json:"crn"`  // text format accepted by parse.Parse
	Func       string  `json:"func"` // function name, resolved by the worker
	Lo         []int64 `json:"lo"`
	Hi         []int64 `json:"hi"`
	MaxConfigs int     `json:"maxconfigs"`
	MaxCount   int64   `json:"maxcount"`
	Rects      int     `json:"rects"` // how many rectangles the grid was split into
}

// Rect is one axis-aligned shard of the grid: all inputs lo ≤ x ≤ hi.
// IDs number the rectangles in canonical grid order.
type Rect struct {
	ID int     `json:"id"`
	Lo []int64 `json:"lo"`
	Hi []int64 `json:"hi"`
}

// LeaseRequest asks for a rectangle to check. WaitMillis, when positive,
// asks the coordinator to park the request for up to that long instead of
// answering Wait immediately (long-poll): the coordinator responds as soon
// as a rectangle frees up or the job finishes, and only answers Wait when
// the window closes empty. The coordinator clamps the window to its lease
// TTL. Zero keeps the immediate answer, so a worker that prefers plain
// polling interoperates unchanged — the field is additive, not a protocol
// break.
type LeaseRequest struct {
	Worker     string `json:"worker"`
	WaitMillis int64  `json:"wait_ms,omitempty"`
}

// LeaseResponse grants a rectangle under a lease, asks the worker to poll
// again later (Wait), or tells it the job is finished (Done).
//
// Traceparent, when set on a grant, is the W3C trace context of the
// coordinator's per-lease span; a tracing worker parents its rectangle span
// under it, which is how one trace id spans submitter, coordinator, and
// worker. It rides the lease response — NOT JobSpec, whose JSON is hashed
// into the checkpoint compatibility key, so adding a per-run trace id there
// would orphan every existing checkpoint. Additive and omitempty: old
// workers ignore it, old coordinators never send it.
type LeaseResponse struct {
	Done        bool   `json:"done,omitempty"`
	Wait        bool   `json:"wait,omitempty"`
	Rect        *Rect  `json:"rect,omitempty"`
	TTLMillis   int64  `json:"ttl_ms,omitempty"`
	Traceparent string `json:"traceparent,omitempty"`
}

// RenewRequest extends a lease while a long rectangle is being checked.
type RenewRequest struct {
	Worker string `json:"worker"`
	RectID int    `json:"rect_id"`
}

// RenewResponse reports whether the lease is still held. OK=false means the
// lease expired and the rectangle may have been reassigned; the worker may
// keep computing (a duplicate result is accepted idempotently) or abandon.
type RenewResponse struct {
	OK bool `json:"ok"`
}

// ResultRequest reports one rectangle's result. Result is the JSON encoding
// of reach.GridResult and is always set by a well-behaved worker; Err is set
// alongside it when enumeration stopped on a deterministic job error (a
// negative f value, a bad initial configuration), in which case Result
// carries the partial counts up to the error — the coordinator's merge
// includes them, exactly as a local CheckGrid returns partial counts with
// its error. An Err-only report (no Result) is accepted but loses those
// partial counts; don't send one.
// Spans carries the worker's finished spans for the rectangle's trace
// (the rectangle-compute span and its children), so the coordinator's
// /debug/traces shows the whole cross-process trace. Additive and bounded:
// the coordinator records at most maxShippedSpans per report.
type ResultRequest struct {
	Worker string           `json:"worker"`
	RectID int              `json:"rect_id"`
	Result json.RawMessage  `json:"result,omitempty"`
	Err    string           `json:"err,omitempty"`
	Spans  []trace.SpanData `json:"spans,omitempty"`
}

// maxShippedSpans bounds how many spans one result report may carry (both
// sides enforce it: the worker truncates, the coordinator ignores the rest).
const maxShippedSpans = 64

// ResultResponse acknowledges a result report.
type ResultResponse struct {
	OK bool `json:"ok"`
}
