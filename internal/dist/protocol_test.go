package dist

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"crncompose/internal/reach"
)

var update = flag.Bool("update", false, "rewrite the protocol golden files")

// goldenJobSpec is a fixed wire message; changing its encoding is a protocol
// break and must bump ProtocolVersion.
func goldenJobSpec() JobSpec {
	return JobSpec{
		Version:    ProtocolVersion,
		CRN:        minCRN().String(),
		Func:       "min",
		Lo:         []int64{0, 0},
		Hi:         []int64{3, 3},
		MaxConfigs: 1 << 20,
		MaxCount:   1 << 40,
		Rects:      4,
	}
}

func goldenLease() LeaseResponse {
	return LeaseResponse{
		Rect:      &Rect{ID: 2, Lo: []int64{2, 0}, Hi: []int64{2, 3}},
		TTLMillis: 30000,
	}
}

// goldenResult carries a real refuted GridResult (sum CRN checked against
// min), witness schedule included — the hardest message to keep stable.
func goldenResult(t *testing.T) ResultRequest {
	t.Helper()
	res, err := reach.CheckRect(sumCRN(), minFunc, []int64{0, 0}, []int64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("sum CRN verified as min")
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return ResultRequest{Worker: "w1", RectID: 2, Result: raw}
}

func checkGolden(t *testing.T, name string, v any) []byte {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden file (protocol break? bump ProtocolVersion and regenerate with -update):\ngot:\n%s\nwant:\n%s", name, got, want)
	}
	return want
}

func TestProtocolGoldenFiles(t *testing.T) {
	// Marshal → golden bytes, and golden bytes → the original message.
	job := goldenJobSpec()
	b := checkGolden(t, "jobspec.golden.json", job)
	var job2 JobSpec
	if err := json.Unmarshal(b, &job2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(job, job2) {
		t.Fatalf("JobSpec round trip: %+v vs %+v", job2, job)
	}

	lease := goldenLease()
	b = checkGolden(t, "lease.golden.json", lease)
	var lease2 LeaseResponse
	if err := json.Unmarshal(b, &lease2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lease, lease2) {
		t.Fatalf("LeaseResponse round trip: %+v vs %+v", lease2, lease)
	}

	res := goldenResult(t)
	b = checkGolden(t, "result.golden.json", res)
	var res2 ResultRequest
	if err := json.Unmarshal(b, &res2); err != nil {
		t.Fatal(err)
	}
	if res2.Worker != res.Worker || res2.RectID != res.RectID {
		t.Fatalf("ResultRequest round trip: %+v vs %+v", res2, res)
	}
	// The embedded GridResult must decode and re-encode to identical bytes.
	dec, err := reach.UnmarshalGridResult(res2.Result, sumCRN())
	if err != nil {
		t.Fatal(err)
	}
	re, err := json.Marshal(dec)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := json.Compact(&want, res.Result); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, want.Bytes()) {
		t.Fatalf("GridResult payload round trip:\n%s\n%s", re, want.Bytes())
	}
}
