package dist

import "slices"

// SplitGrid partitions the grid lo ≤ x ≤ hi into at most target (and at
// least min(target, first-axis extent)) axis-aligned rectangles whose
// concatenation, in returned order, enumerates the grid in exactly canonical
// (lexicographic) grid order — the property the deterministic merge depends
// on. It splits along the first axis (the most significant coordinate in
// grid order) into contiguous intervals; when that axis has fewer values
// than target, it fixes each value and distributes the remaining target
// across the slabs recursively. Rectangle IDs number the result 0..n-1 in
// grid order.
func SplitGrid(lo, hi []int64, target int) []Rect {
	var out []Rect
	splitInto(lo, hi, target, &out)
	for i := range out {
		out[i].ID = i
	}
	return out
}

func splitInto(lo, hi []int64, target int, out *[]Rect) {
	if len(lo) == 0 || target <= 1 {
		*out = append(*out, Rect{Lo: slices.Clone(lo), Hi: slices.Clone(hi)})
		return
	}
	extent := hi[0] - lo[0] + 1
	if extent >= int64(target) {
		for k := 0; k < target; k++ {
			r := Rect{Lo: slices.Clone(lo), Hi: slices.Clone(hi)}
			r.Lo[0] = lo[0] + extent*int64(k)/int64(target)
			r.Hi[0] = lo[0] + extent*int64(k+1)/int64(target) - 1
			*out = append(*out, r)
		}
		return
	}
	// Fewer first-axis values than requested rectangles: one slab per value,
	// the target distributed across slabs (slab k gets its share of the
	// floor-division lattice, so the shares sum to exactly target and each
	// is ≥ 1 — the "at most target" contract holds inductively).
	for k, v := 0, lo[0]; v <= hi[0]; k, v = k+1, v+1 {
		share := target*(k+1)/int(extent) - target*k/int(extent)
		var tail []Rect
		splitInto(lo[1:], hi[1:], share, &tail)
		for _, t := range tail {
			*out = append(*out, Rect{
				Lo: append([]int64{v}, t.Lo...),
				Hi: append([]int64{v}, t.Hi...),
			})
		}
	}
}

// gridSize returns the number of inputs in lo ≤ x ≤ hi (0 if any axis is
// empty).
func gridSize(lo, hi []int64) int64 {
	n := int64(1)
	for i := range lo {
		if hi[i] < lo[i] {
			return 0
		}
		n *= hi[i] - lo[i] + 1
	}
	return n
}
