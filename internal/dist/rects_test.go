package dist

import (
	"slices"
	"testing"
)

// enumerate returns the grid's inputs in canonical (lexicographic) order.
func enumerate(lo, hi []int64) [][]int64 {
	if gridSize(lo, hi) == 0 {
		return nil
	}
	var out [][]int64
	x := slices.Clone(lo)
	for {
		out = append(out, slices.Clone(x))
		i := len(x) - 1
		for i >= 0 {
			x[i]++
			if x[i] <= hi[i] {
				break
			}
			x[i] = lo[i]
			i--
		}
		if i < 0 {
			return out
		}
	}
}

// TestSplitGridPreservesGridOrder is the property the deterministic merge
// rests on: concatenating the rectangles' enumerations, in rectangle order,
// must reproduce the whole grid's canonical enumeration exactly.
func TestSplitGridPreservesGridOrder(t *testing.T) {
	cases := []struct {
		lo, hi []int64
		target int
	}{
		{[]int64{0}, []int64{20}, 4},
		{[]int64{0}, []int64{20}, 21},
		{[]int64{0}, []int64{3}, 16}, // more shards than first-axis values
		{[]int64{0, 0}, []int64{3, 3}, 5},
		{[]int64{0, 0}, []int64{1, 7}, 6}, // short first axis, long second
		{[]int64{0, 0}, []int64{2, 9}, 4}, // 3 slabs sharing target 4: shares 1,2,1
		{[]int64{2, 1}, []int64{5, 4}, 3}, // nonzero lower bounds
		{[]int64{0, 0, 0}, []int64{2, 2, 2}, 10},
		{[]int64{0, 0}, []int64{0, 0}, 8}, // single-point grid
		{[]int64{0, 0}, []int64{4, 4}, 1}, // single shard
		{nil, nil, 4},                     // 0-arity grid: one empty input
	}
	for _, tc := range cases {
		rects := SplitGrid(tc.lo, tc.hi, tc.target)
		if len(rects) == 0 {
			t.Fatalf("SplitGrid(%v,%v,%d) returned no rects", tc.lo, tc.hi, tc.target)
		}
		var got [][]int64
		for i, r := range rects {
			if r.ID != i {
				t.Fatalf("rect %d has ID %d", i, r.ID)
			}
			got = append(got, enumerate(r.Lo, r.Hi)...)
		}
		want := enumerate(tc.lo, tc.hi)
		if len(tc.lo) == 0 {
			want = [][]int64{{}}
			got = nil
			for _, r := range rects {
				if len(r.Lo) != 0 || len(r.Hi) != 0 {
					t.Fatalf("0-arity rect %v", r)
				}
				got = append(got, []int64{})
			}
		}
		if len(got) != len(want) {
			t.Fatalf("SplitGrid(%v,%v,%d): %d inputs, want %d", tc.lo, tc.hi, tc.target, len(got), len(want))
		}
		for i := range want {
			if !slices.Equal(got[i], want[i]) {
				t.Fatalf("SplitGrid(%v,%v,%d): input %d is %v, want %v", tc.lo, tc.hi, tc.target, i, got[i], want[i])
			}
		}
		if tc.target >= 1 && len(rects) > tc.target {
			t.Fatalf("SplitGrid(%v,%v,%d) produced %d rects, contract is at most %d",
				tc.lo, tc.hi, tc.target, len(rects), tc.target)
		}
	}
}

func TestGridSize(t *testing.T) {
	if n := gridSize([]int64{0, 0}, []int64{3, 2}); n != 12 {
		t.Fatalf("gridSize = %d, want 12", n)
	}
	if n := gridSize([]int64{1}, []int64{0}); n != 0 {
		t.Fatalf("empty axis gridSize = %d, want 0", n)
	}
	if n := gridSize(nil, nil); n != 1 {
		t.Fatalf("0-arity gridSize = %d, want 1", n)
	}
}
