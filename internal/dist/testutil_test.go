package dist

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"crncompose/internal/crn"
	"crncompose/internal/reach"
)

// minCRN stably computes min(x1, x2).
func minCRN() *crn.CRN {
	return crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}, {Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
}

// sumCRN computes x1+x2, so checking it against min refutes with a witness.
func sumCRN() *crn.CRN {
	return crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
}

func minFunc(x []int64) int64 { return min(x[0], x[1]) }

// testResolver resolves the single function name used by the tests.
func testResolver(name string) (reach.Func, error) {
	if name != "min" {
		return nil, fmt.Errorf("unknown function %q", name)
	}
	return minFunc, nil
}

// fakeClock is a manually advanced clock whose every observation also
// drifts forward by a small random jitter, so lease-expiry tests cannot
// silently depend on reads happening "at the same instant".
type fakeClock struct {
	mu  sync.Mutex
	t   time.Time
	rng *rand.Rand
	// maxJitter bounds the per-observation drift.
	maxJitter time.Duration
}

func newFakeClock(seed uint64) *fakeClock {
	return &fakeClock{
		t:         time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC),
		rng:       rand.New(rand.NewPCG(seed, 17)),
		maxJitter: 3 * time.Millisecond,
	}
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(time.Duration(f.rng.Int64N(int64(f.maxJitter))))
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

// localRectResult checks one rectangle in-process and returns the wire-form
// ResultRequest a well-behaved worker would post.
func localRectResult(t *testing.T, c *crn.CRN, f reach.Func, r Rect, worker string, opts ...reach.Option) ResultRequest {
	t.Helper()
	res, err := reach.CheckRect(c, f, r.Lo, r.Hi, opts...)
	req := ResultRequest{Worker: worker, RectID: r.ID}
	raw, merr := json.Marshal(res)
	if merr != nil {
		t.Fatal(merr)
	}
	req.Result = raw
	if err != nil {
		req.Err = err.Error()
	}
	return req
}
