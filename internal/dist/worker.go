package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"crncompose/internal/crn"
	"crncompose/internal/httpx"
	"crncompose/internal/parse"
	"crncompose/internal/reach"
	"crncompose/internal/trace"
)

// ErrCoordinatorLost is returned by Worker.Run when a coordinator that the
// worker successfully joined stays unreachable past the worker's Grace
// window. It is distinct from a clean finish (nil, the coordinator answered
// Done) so callers like crncheck -join can exit non-zero and report which
// case happened. Test with errors.Is.
var ErrCoordinatorLost = errors.New("dist: coordinator lost")

// Worker joins a coordinator, leases rectangles, checks each one on the
// local steal-pool engine (reach.CheckRect — the exact engine a local
// CheckGrid uses), and reports results. Any number of workers may join and
// leave at any time; a worker that dies mid-rectangle just lets its lease
// expire.
//
// All coordinator traffic goes through httpx: transient failures (transport
// errors, 5xx, dropped responses) are retried with jittered exponential
// backoff, while HTTP-status rejections (4xx — wrong endpoint, protocol
// mismatch) fail fast.
type Worker struct {
	// Coordinator is the coordinator's base URL (host:port or http://...).
	Coordinator string
	// Name identifies the worker in leases and logs (default host-pid).
	Name string
	// Workers sizes the local work-stealing pool per rectangle
	// (reach.WithWorkers semantics: 0 = all CPUs, 1 = sequential).
	Workers int
	// Resolve maps the job's function name to an evaluator. Required: the
	// coordinator ships only the name, never code.
	Resolve func(name string) (reach.Func, error)
	// Poll is the base backoff delay for failed coordinator requests, and
	// the fallback sleep after a lease poll that came back empty without
	// being parked (default 50ms).
	Poll time.Duration
	// LongPoll is the lease long-poll window: /lease requests ask the
	// coordinator to park them up to this long when no rectangle is free
	// (answered early as soon as one frees up or the job finishes), instead
	// of the worker polling every Poll interval. Default 10s — comfortably
	// inside the HTTP client's 30s timeout; the coordinator additionally
	// clamps the window to its lease TTL. Negative disables long-polling.
	LongPoll time.Duration
	// JoinTimeout bounds the initial retry loop fetching the job, so a
	// worker started slightly before its coordinator still joins
	// (default 15s).
	JoinTimeout time.Duration
	// Grace bounds how long a joined worker keeps retrying an unreachable
	// coordinator — across lease polls and result posts — before giving up
	// with ErrCoordinatorLost (default 15s). Long enough to ride out a
	// coordinator checkpoint-restart.
	Grace time.Duration
	// AbortOnLeaseLoss makes the worker cancel the in-flight rectangle
	// check when a heartbeat renewal answers that the lease is gone, so a
	// fenced-out worker stops burning CPU on a rectangle another worker now
	// owns. Off by default: computing to completion and reporting a
	// duplicate is harmless (the coordinator is idempotent) and finishes
	// faster when the loss was a coordinator restart rather than a fence.
	AbortOnLeaseLoss bool
	// Client, when non-nil, overrides the HTTP client.
	Client *http.Client
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
	// Tracer, when non-nil, records a dist.rect span per leased rectangle
	// — parented under the coordinator's lease span via the traceparent
	// carried in the lease response, so the rectangle joins the submitting
	// request's trace — plus per-attempt httpx client spans for renew and
	// result calls. The rectangle trace's spans are shipped to the
	// coordinator with the result report.
	Tracer *trace.Tracer

	// LeaseHook, when non-nil, runs right after a lease is granted; a
	// non-nil error kills the worker mid-rectangle without reporting — how
	// tests (dist's and serve's) simulate a crashed worker.
	LeaseHook func(Rect) error
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// Run joins the coordinator and processes rectangles until the job is done
// (returns nil), ctx is canceled, or the job cannot be joined or understood.
// A coordinator that stays unreachable past Grace after a successful join
// ends the run with an error wrapping ErrCoordinatorLost.
func (w *Worker) Run(ctx context.Context) error {
	client := w.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	base := strings.TrimSuffix(w.Coordinator, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	longPoll := w.LongPoll
	switch {
	case longPoll == 0:
		longPoll = 10 * time.Second
	case longPoll < 0:
		longPoll = 0
	}
	joinTimeout := w.JoinTimeout
	if joinTimeout <= 0 {
		joinTimeout = 15 * time.Second
	}
	grace := w.Grace
	if grace <= 0 {
		grace = 15 * time.Second
	}
	name := w.Name
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	// Join: fetch the job, retrying transient failures for up to JoinTimeout
	// so worker/coordinator start order does not matter. A 4xx answer is the
	// coordinator (or whatever is listening there) rejecting the request
	// itself — retrying cannot help, so httpx fails it on the first attempt.
	joinC := &httpx.Client{
		HTTP:        client,
		MaxAttempts: -1,
		Budget:      joinTimeout,
		BaseDelay:   poll,
		MaxDelay:    time.Second,
		Tracer:      w.Tracer,
	}
	var job JobSpec
	if err := joinC.GetJSON(ctx, base+"/job", &job); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var se *httpx.StatusError
		if errors.As(err, &se) && !httpx.Retryable(err) {
			return fmt.Errorf("dist: joining %s: coordinator rejected the request (not retrying): %w", base, err)
		}
		return fmt.Errorf("dist: joining %s: %w", base, err)
	}
	if job.Version != ProtocolVersion {
		return fmt.Errorf("dist: coordinator speaks protocol %d, this worker %d", job.Version, ProtocolVersion)
	}
	c, err := parse.Parse(job.CRN)
	if err != nil {
		return fmt.Errorf("dist: parsing job CRN: %w", err)
	}
	f, err := w.Resolve(job.Func)
	if err != nil {
		return fmt.Errorf("dist: resolving %q: %w", job.Func, err)
	}
	opts := []reach.Option{
		reach.WithMaxConfigs(job.MaxConfigs),
		reach.WithMaxCount(job.MaxCount),
		reach.WithWorkers(w.Workers),
	}
	w.logf("worker %s: joined %s (%s on %d rects)", name, base, job.Func, job.Rects)

	// Each /lease call retries transient failures briefly on its own; the
	// loop below tracks how long the coordinator has been continuously
	// unreachable and gives up with ErrCoordinatorLost only past Grace, so
	// a coordinator checkpoint-restart shorter than Grace is survived.
	leaseC := &httpx.Client{
		HTTP:        client,
		MaxAttempts: 3,
		BaseDelay:   poll,
		MaxDelay:    time.Second,
		Tracer:      w.Tracer,
	}
	var downSince time.Time
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		polledAt := time.Now()
		var lr LeaseResponse
		if err := leaseC.PostJSON(ctx, base+"/lease", LeaseRequest{Worker: name, WaitMillis: longPoll.Milliseconds()}, &lr); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			var se *httpx.StatusError
			if errors.As(err, &se) && !httpx.Retryable(err) {
				return fmt.Errorf("dist: leasing from %s: %w", base, err)
			}
			if downSince.IsZero() {
				downSince = polledAt
				w.logf("worker %s: coordinator unreachable (%v); retrying for up to %s", name, err, grace)
			}
			if time.Since(downSince) >= grace {
				return fmt.Errorf("dist: worker %s: coordinator %s unreachable for %s (last error: %v): %w", name, base, grace, err, ErrCoordinatorLost)
			}
			sleepCtx(ctx, poll)
			continue
		}
		if !downSince.IsZero() {
			w.logf("worker %s: coordinator reachable again after %s", name, time.Since(downSince).Round(time.Millisecond))
			downSince = time.Time{}
		}
		switch {
		case lr.Done:
			w.logf("worker %s: job done", name)
			return nil
		case lr.Rect == nil:
			// An empty answer after a full long-poll window can be retried
			// immediately — the coordinator just parked us for the window.
			// One that came back early (long-poll off, or a coordinator that
			// ignored/clamped the window) falls back to interval polling so
			// the loop never runs hot.
			if time.Since(polledAt) < longPoll/2 || longPoll == 0 {
				sleepCtx(ctx, poll)
			}
			continue
		}
		rect := *lr.Rect
		if w.LeaseHook != nil {
			if err := w.LeaseHook(rect); err != nil {
				return err
			}
		}
		if err := w.checkRect(ctx, client, base, name, grace, c, f, rect, lr, opts); err != nil {
			return err
		}
	}
}

// checkRect runs one leased rectangle with a heartbeat renewing the lease,
// then reports the result. A result that cannot be delivered within Grace is
// dropped: the lease expires and the rectangle is recomputed elsewhere.
func (w *Worker) checkRect(ctx context.Context, client *http.Client, base, name string, grace time.Duration, c *crn.CRN, f reach.Func, rect Rect, lr LeaseResponse, opts []reach.Option) error {
	ttl := time.Duration(lr.TTLMillis) * time.Millisecond
	// The lease response's traceparent stitches this rectangle into the
	// trace that submitted the job: the rectangle-compute span is a child of
	// the coordinator's lease span. An absent/garbled traceparent (old
	// coordinator, tracing off there) just starts a local trace.
	var leaseSC trace.SpanContext
	if lr.Traceparent != "" {
		leaseSC, _ = trace.ParseTraceparent(lr.Traceparent)
	}
	rectSpan := w.Tracer.StartSpan(time.Now(), "dist.rect", leaseSC,
		trace.Int("rect", int64(rect.ID)),
		trace.String("worker", name))
	// Every rectangle-scoped log line carries the trace and span ids, so a
	// worker's interleaved output greps apart by rectangle and joins against
	// /debug/traces on the coordinator. With tracing off this is w.logf.
	logf := trace.Logf(w.logf, rectSpan.Context())
	// rctx is what the engine runs under; with AbortOnLeaseLoss the
	// heartbeat cancels it when the coordinator says the lease is gone. It
	// also carries the rectangle span so the heartbeat's renew attempts
	// trace as its children.
	rctx, rcancel := trace.ContextSpan(ctx, rectSpan), context.CancelFunc(func() {})
	if w.AbortOnLeaseLoss {
		rctx, rcancel = context.WithCancel(rctx)
	}
	defer rcancel()
	stop := make(chan struct{})
	var hb sync.WaitGroup
	if ttl > 0 {
		hb.Add(1)
		// hbctx parents the renew attempts under the rectangle span without
		// inheriting rctx's AbortOnLeaseLoss cancelation: the renew that
		// discovers the loss must itself complete.
		hbctx := trace.ContextSpan(ctx, rectSpan)
		go func() {
			defer hb.Done()
			renewC := &httpx.Client{
				HTTP:        client,
				MaxAttempts: 2,
				BaseDelay:   w.pollInterval(),
				MaxDelay:    max(ttl/3, time.Millisecond),
				Tracer:      w.Tracer,
			}
			// Renew failures are expected during a coordinator restart, so
			// they must not kill the worker — but they must not be silent
			// either. Log the 1st, 2nd, 4th, 8th... consecutive failure so a
			// flapping coordinator produces a bounded, visible trail.
			failures, nextLog := 0, 1
			t := time.NewTicker(max(ttl/3, time.Millisecond))
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ctx.Done():
					return
				case <-t.C:
					var rr RenewResponse
					err := renewC.PostJSON(hbctx, base+"/renew", RenewRequest{Worker: name, RectID: rect.ID}, &rr)
					switch {
					case err != nil:
						failures++
						if failures == nextLog {
							logf("worker %s: renewing lease on rect %d failing (%d consecutive): %v", name, rect.ID, failures, err)
							nextLog *= 2
						}
					case !rr.OK:
						if w.AbortOnLeaseLoss {
							logf("worker %s: lost lease on rect %d; aborting in-flight check", name, rect.ID)
							rcancel()
							return
						}
						logf("worker %s: lost lease on rect %d (still computing; duplicate result is harmless)", name, rect.ID)
						failures, nextLog = 0, 1
					default:
						if failures > 0 {
							logf("worker %s: lease renewal on rect %d recovered after %d failures", name, rect.ID, failures)
						}
						failures, nextLog = 0, 1
					}
				}
			}
		}()
	}
	logf("worker %s: checking rect %d %v..%v", name, rect.ID, rect.Lo, rect.Hi)
	res, rerr := reach.CheckRectCtx(rctx, c, f, rect.Lo, rect.Hi, opts...)
	close(stop)
	hb.Wait()

	// A canceled worker abandons the rectangle without reporting: the engine
	// returned no verdicts, the heartbeat above has stopped, and the lease
	// simply expires so the coordinator reassigns the rectangle elsewhere.
	if ctx.Err() != nil {
		rectSpan.End(time.Now(), trace.String("outcome", "canceled"))
		return ctx.Err()
	}
	if rctx.Err() != nil {
		// Fenced out with AbortOnLeaseLoss: the rectangle belongs to another
		// worker now, so abandon it and go lease the next one.
		rectSpan.End(time.Now(), trace.String("outcome", "fenced"))
		logf("worker %s: abandoned rect %d after lease loss", name, rect.ID)
		return nil
	}
	outcome := "ok"
	switch {
	case rerr != nil:
		outcome = "error"
	case res.Failure != nil:
		outcome = "failure"
	}
	rectSpan.End(time.Now(), trace.String("outcome", outcome),
		trace.Int("checked", int64(res.Checked)))

	req := ResultRequest{Worker: name, RectID: rect.ID}
	raw, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("dist: encoding rect %d result: %w", rect.ID, err)
	}
	req.Result = raw
	if rerr != nil {
		req.Err = rerr.Error()
	}
	// Ship this rectangle's finished spans (the dist.rect span and the renew
	// attempts under it) with the report — collected before the post, so the
	// result attempt spans themselves stay in the worker's own ring. Only the
	// rect span's own subtree ships: the trace also holds earlier rectangles'
	// spans (one job fans out many leases to one worker), and re-shipping
	// those would duplicate them in the coordinator's ring.
	if rectSpan != nil {
		spans := spanSubtree(
			w.Tracer.TraceSpans(rectSpan.Context().TraceID.String()),
			rectSpan.Context().SpanID.String())
		if len(spans) > maxShippedSpans {
			spans = spans[len(spans)-maxShippedSpans:]
		}
		req.Spans = spans
	}
	// The coordinator accepts duplicate and stale reports idempotently, so
	// the post may be retried freely — including after a dropped-response
	// fault where the coordinator committed the result but the worker never
	// saw the ack.
	resultC := &httpx.Client{
		HTTP:        client,
		MaxAttempts: -1,
		Budget:      grace,
		BaseDelay:   w.pollInterval(),
		MaxDelay:    time.Second,
		Tracer:      w.Tracer,
	}
	var ack ResultResponse
	if err := resultC.PostJSON(trace.ContextSpan(ctx, rectSpan), base+"/result", req, &ack); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		logf("worker %s: dropping result for rect %d (%v); lease will expire", name, rect.ID, err)
	}
	return nil
}

func (w *Worker) pollInterval() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 50 * time.Millisecond
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// spanSubtree filters spans down to root and its descendants (by
// parent-span-id links). Fixpoint iteration because a child span ends — and
// is recorded — before its parent, so record order is not topological.
func spanSubtree(spans []trace.SpanData, root string) []trace.SpanData {
	in := map[string]bool{root: true}
	for grew := true; grew; {
		grew = false
		for _, d := range spans {
			if !in[d.SpanID] && in[d.Parent] {
				in[d.SpanID] = true
				grew = true
			}
		}
	}
	var out []trace.SpanData
	for _, d := range spans {
		if in[d.SpanID] {
			out = append(out, d)
		}
	}
	return out
}
