package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"crncompose/internal/crn"
	"crncompose/internal/parse"
	"crncompose/internal/reach"
)

// Worker joins a coordinator, leases rectangles, checks each one on the
// local steal-pool engine (reach.CheckRect — the exact engine a local
// CheckGrid uses), and reports results. Any number of workers may join and
// leave at any time; a worker that dies mid-rectangle just lets its lease
// expire.
type Worker struct {
	// Coordinator is the coordinator's base URL (host:port or http://...).
	Coordinator string
	// Name identifies the worker in leases and logs (default host-pid).
	Name string
	// Workers sizes the local work-stealing pool per rectangle
	// (reach.WithWorkers semantics: 0 = all CPUs, 1 = sequential).
	Workers int
	// Resolve maps the job's function name to an evaluator. Required: the
	// coordinator ships only the name, never code.
	Resolve func(name string) (reach.Func, error)
	// Poll is the retry interval for failed coordinator requests, and the
	// fallback sleep after a lease poll that came back empty without being
	// parked (default 50ms).
	Poll time.Duration
	// LongPoll is the lease long-poll window: /lease requests ask the
	// coordinator to park them up to this long when no rectangle is free
	// (answered early as soon as one frees up or the job finishes), instead
	// of the worker polling every Poll interval. Default 10s — comfortably
	// inside the HTTP client's 30s timeout; the coordinator additionally
	// clamps the window to its lease TTL. Negative disables long-polling.
	LongPoll time.Duration
	// JoinTimeout bounds the initial retry loop fetching the job, so a
	// worker started slightly before its coordinator still joins
	// (default 15s).
	JoinTimeout time.Duration
	// Client, when non-nil, overrides the HTTP client.
	Client *http.Client
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)

	// testLeased, when non-nil, runs right after a lease is granted; a
	// non-nil error kills the worker mid-rectangle without reporting —
	// how tests simulate a crashed worker.
	testLeased func(Rect) error
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// Run joins the coordinator and processes rectangles until the job is done
// (returns nil), ctx is canceled, or the job cannot be joined or understood.
// A coordinator that disappears after a successful join also ends the run
// with nil: the job is over as far as this worker can tell.
func (w *Worker) Run(ctx context.Context) error {
	client := w.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	base := strings.TrimSuffix(w.Coordinator, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	longPoll := w.LongPoll
	switch {
	case longPoll == 0:
		longPoll = 10 * time.Second
	case longPoll < 0:
		longPoll = 0
	}
	joinTimeout := w.JoinTimeout
	if joinTimeout <= 0 {
		joinTimeout = 15 * time.Second
	}
	name := w.Name
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	// Join: fetch the job, retrying so worker/coordinator start order does
	// not matter.
	var job JobSpec
	deadline := time.Now().Add(joinTimeout)
	for {
		err := getJSON(ctx, client, base+"/job", &job)
		if err == nil {
			break
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("dist: joining %s: %w", base, err)
		}
		sleepCtx(ctx, poll)
	}
	if job.Version != ProtocolVersion {
		return fmt.Errorf("dist: coordinator speaks protocol %d, this worker %d", job.Version, ProtocolVersion)
	}
	c, err := parse.Parse(job.CRN)
	if err != nil {
		return fmt.Errorf("dist: parsing job CRN: %w", err)
	}
	f, err := w.Resolve(job.Func)
	if err != nil {
		return fmt.Errorf("dist: resolving %q: %w", job.Func, err)
	}
	opts := []reach.Option{
		reach.WithMaxConfigs(job.MaxConfigs),
		reach.WithMaxCount(job.MaxCount),
		reach.WithWorkers(w.Workers),
	}
	w.logf("worker %s: joined %s (%s on %d rects)", name, base, job.Func, job.Rects)

	misses := 0
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		polledAt := time.Now()
		var lr LeaseResponse
		if err := postJSON(ctx, client, base+"/lease", LeaseRequest{Worker: name, WaitMillis: longPoll.Milliseconds()}, &lr); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			misses++
			if misses > 3 {
				w.logf("worker %s: coordinator gone (%v); exiting", name, err)
				return nil
			}
			sleepCtx(ctx, poll)
			continue
		}
		misses = 0
		switch {
		case lr.Done:
			w.logf("worker %s: job done", name)
			return nil
		case lr.Rect == nil:
			// An empty answer after a full long-poll window can be retried
			// immediately — the coordinator just parked us for the window.
			// One that came back early (long-poll off, or a coordinator that
			// ignored/clamped the window) falls back to interval polling so
			// the loop never runs hot.
			if time.Since(polledAt) < longPoll/2 || longPoll == 0 {
				sleepCtx(ctx, poll)
			}
			continue
		}
		rect := *lr.Rect
		if w.testLeased != nil {
			if err := w.testLeased(rect); err != nil {
				return err
			}
		}
		if err := w.checkRect(ctx, client, base, name, c, f, rect, lr, opts); err != nil {
			return err
		}
	}
}

// checkRect runs one leased rectangle with a heartbeat renewing the lease,
// then reports the result. A result that cannot be delivered is dropped:
// the lease expires and the rectangle is recomputed elsewhere.
func (w *Worker) checkRect(ctx context.Context, client *http.Client, base, name string, c *crn.CRN, f reach.Func, rect Rect, lr LeaseResponse, opts []reach.Option) error {
	ttl := time.Duration(lr.TTLMillis) * time.Millisecond
	stop := make(chan struct{})
	var hb sync.WaitGroup
	if ttl > 0 {
		hb.Add(1)
		go func() {
			defer hb.Done()
			t := time.NewTicker(max(ttl/3, time.Millisecond))
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ctx.Done():
					return
				case <-t.C:
					var rr RenewResponse
					if err := postJSON(ctx, client, base+"/renew", RenewRequest{Worker: name, RectID: rect.ID}, &rr); err == nil && !rr.OK {
						w.logf("worker %s: lost lease on rect %d (still computing; duplicate result is harmless)", name, rect.ID)
					}
				}
			}
		}()
	}
	w.logf("worker %s: checking rect %d %v..%v", name, rect.ID, rect.Lo, rect.Hi)
	res, rerr := reach.CheckRectCtx(ctx, c, f, rect.Lo, rect.Hi, opts...)
	close(stop)
	hb.Wait()

	// A canceled worker abandons the rectangle without reporting: the engine
	// returned no verdicts, the heartbeat above has stopped, and the lease
	// simply expires so the coordinator reassigns the rectangle elsewhere.
	if ctx.Err() != nil {
		return ctx.Err()
	}

	req := ResultRequest{Worker: name, RectID: rect.ID}
	raw, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("dist: encoding rect %d result: %w", rect.ID, err)
	}
	req.Result = raw
	if rerr != nil {
		req.Err = rerr.Error()
	}
	var ack ResultResponse
	var perr error
	for attempt := 0; attempt < 5; attempt++ {
		if perr = postJSON(ctx, client, base+"/result", req, &ack); perr == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		sleepCtx(ctx, w.pollInterval())
	}
	w.logf("worker %s: dropping result for rect %d (%v); lease will expire", name, rect.ID, perr)
	return nil
}

func (w *Worker) pollInterval() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 50 * time.Millisecond
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// getJSON fetches url and decodes the JSON response into out.
func getJSON(ctx context.Context, client *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return doJSON(client, req, out)
}

// postJSON posts in as JSON to url and decodes the JSON response into out.
func postJSON(ctx context.Context, client *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return doJSON(client, req, out)
}

func doJSON(client *http.Client, req *http.Request, out any) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s %s: %s: %s", req.Method, req.URL.Path, resp.Status, strings.TrimSpace(string(msg)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
