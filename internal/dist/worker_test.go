package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"crncompose/internal/reach"
)

// fakeCoordinator is a scriptable coordinator endpoint for worker-side
// failure tests — the real Coordinator cannot be told to misbehave.
type fakeCoordinator struct {
	t        *testing.T
	job      JobSpec
	onLease  func(n int64) LeaseResponse
	onRenew  func() RenewResponse
	jobHits  atomic.Int64
	leases   atomic.Int64
	results  atomic.Int64
	jobErr   func(n int64) int // non-zero = respond with this status instead
	abortAll bool              // abort every /lease at the transport level
}

func (fc *fakeCoordinator) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/job", func(w http.ResponseWriter, r *http.Request) {
		n := fc.jobHits.Add(1)
		if fc.jobErr != nil {
			if code := fc.jobErr(n); code != 0 {
				http.Error(w, "scripted failure", code)
				return
			}
		}
		fakeWrite(fc.t, w, fc.job)
	})
	mux.HandleFunc("/lease", func(w http.ResponseWriter, r *http.Request) {
		n := fc.leases.Add(1)
		if fc.abortAll {
			panic(http.ErrAbortHandler) // client sees a transport error
		}
		fakeWrite(fc.t, w, fc.onLease(n))
	})
	mux.HandleFunc("/renew", func(w http.ResponseWriter, r *http.Request) {
		fakeWrite(fc.t, w, fc.onRenew())
	})
	mux.HandleFunc("/result", func(w http.ResponseWriter, r *http.Request) {
		fc.results.Add(1)
		fakeWrite(fc.t, w, ResultResponse{OK: true})
	})
	return mux
}

func fakeWrite(t *testing.T, w http.ResponseWriter, v any) {
	t.Helper()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		t.Errorf("encoding response: %v", err)
	}
}

func testJob() JobSpec {
	return JobSpec{
		Version:    ProtocolVersion,
		CRN:        minCRN().String(),
		Func:       "min",
		Lo:         []int64{0, 0},
		Hi:         []int64{3, 3},
		MaxConfigs: 1 << 20,
		MaxCount:   1 << 40,
		Rects:      1,
	}
}

// TestWorkerJoin4xxFailsFast: a 4xx on /job is the listener rejecting the
// request itself (wrong endpoint, future protocol served as an error) — the
// worker must fail on the first attempt, not retry for the full JoinTimeout.
func TestWorkerJoin4xxFailsFast(t *testing.T) {
	fc := &fakeCoordinator{t: t, jobErr: func(int64) int { return http.StatusNotFound }}
	ts := httptest.NewServer(fc.handler())
	defer ts.Close()

	w := &Worker{
		Coordinator: ts.URL,
		Resolve:     testResolver,
		Poll:        5 * time.Millisecond,
		JoinTimeout: 30 * time.Second, // must NOT be waited out
		Logf:        t.Logf,
	}
	start := time.Now()
	err := w.Run(context.Background())
	if err == nil {
		t.Fatal("join against a 404 endpoint succeeded")
	}
	if errors.Is(err, ErrCoordinatorLost) {
		t.Fatalf("4xx join misclassified as coordinator loss: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("4xx join retried for %s instead of failing fast", elapsed)
	}
	if hits := fc.jobHits.Load(); hits != 1 {
		t.Fatalf("4xx join attempted %d times, want 1", hits)
	}
}

// TestWorkerJoinRetriesTransient: 5xx answers during startup races are
// transient — the worker keeps retrying inside JoinTimeout and joins once
// the coordinator recovers.
func TestWorkerJoinRetriesTransient(t *testing.T) {
	fc := &fakeCoordinator{
		t:   t,
		job: testJob(),
		jobErr: func(n int64) int {
			if n <= 2 {
				return http.StatusServiceUnavailable
			}
			return 0
		},
		onLease: func(int64) LeaseResponse { return LeaseResponse{Done: true} },
	}
	ts := httptest.NewServer(fc.handler())
	defer ts.Close()

	w := &Worker{
		Coordinator: ts.URL,
		Resolve:     testResolver,
		Poll:        time.Millisecond,
		JoinTimeout: 30 * time.Second,
		LongPoll:    -1,
		Logf:        t.Logf,
	}
	if err := w.Run(context.Background()); err != nil {
		t.Fatalf("worker did not ride out transient join failures: %v", err)
	}
	if hits := fc.jobHits.Load(); hits != 3 {
		t.Fatalf("join took %d attempts, want 3", hits)
	}
}

// TestWorkerCoordinatorLost: a coordinator that vanishes after a successful
// join must surface as ErrCoordinatorLost once Grace elapses — not as the
// silent nil that used to make `crncheck -join` exit 0 on a dead job.
func TestWorkerCoordinatorLost(t *testing.T) {
	fc := &fakeCoordinator{t: t, job: testJob(), abortAll: true}
	ts := httptest.NewServer(fc.handler())
	defer ts.Close()

	const grace = 250 * time.Millisecond
	w := &Worker{
		Coordinator: ts.URL,
		Resolve:     testResolver,
		Poll:        5 * time.Millisecond,
		LongPoll:    -1,
		Grace:       grace,
		Logf:        t.Logf,
	}
	start := time.Now()
	err := w.Run(context.Background())
	if !errors.Is(err, ErrCoordinatorLost) {
		t.Fatalf("err = %v, want ErrCoordinatorLost", err)
	}
	if elapsed := time.Since(start); elapsed < grace {
		t.Fatalf("gave up after %s, before the %s grace window", elapsed, grace)
	}
}

// TestWorkerAbortOnLeaseLoss: with AbortOnLeaseLoss set, a renew answering
// OK=false cancels the in-flight rectangle — the fenced-out worker neither
// finishes the enumeration nor posts a result for a rectangle it no longer
// owns.
func TestWorkerAbortOnLeaseLoss(t *testing.T) {
	var evals atomic.Int64
	slowMin := func(x []int64) int64 {
		evals.Add(1)
		time.Sleep(5 * time.Millisecond)
		return min(x[0], x[1])
	}
	fc := &fakeCoordinator{
		t:   t,
		job: testJob(),
		onLease: func(n int64) LeaseResponse {
			if n == 1 {
				// 256 grid points = 4 engine chunks of 64: the engine polls
				// cancellation at chunk boundaries, so the abort can land
				// after chunk 1 instead of after the whole rectangle.
				return LeaseResponse{
					Rect:      &Rect{ID: 0, Lo: []int64{0, 0}, Hi: []int64{15, 15}},
					TTLMillis: 30,
				}
			}
			return LeaseResponse{Done: true}
		},
		onRenew: func() RenewResponse { return RenewResponse{OK: false} },
	}
	ts := httptest.NewServer(fc.handler())
	defer ts.Close()

	w := &Worker{
		Coordinator: ts.URL,
		Workers:     1,
		Resolve: func(name string) (reach.Func, error) {
			if name != "min" {
				return nil, fmt.Errorf("unknown function %q", name)
			}
			return slowMin, nil
		},
		Poll:             2 * time.Millisecond,
		LongPoll:         -1,
		AbortOnLeaseLoss: true,
		Logf:             t.Logf,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := w.Run(ctx); err != nil {
		t.Fatalf("aborted worker must keep serving, got %v", err)
	}
	// Chunk 1 alone takes 64 × ≥5ms ≫ the ~10ms heartbeat that learns of
	// the loss, so the cancellation check before chunk 2 must stop the
	// enumeration; a full 256-point run means the abort never happened.
	if n := evals.Load(); n >= 256 {
		t.Fatalf("worker evaluated all %d grid points despite lease loss", n)
	}
	if n := fc.results.Load(); n != 0 {
		t.Fatalf("fenced-out worker posted %d results, want 0", n)
	}
}
