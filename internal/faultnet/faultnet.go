// Package faultnet is deterministic, seeded network fault injection for the
// chaos test suites: an http.RoundTripper wrapper that makes a client's
// requests fail on a reproducible schedule, and a net.Listener wrapper that
// does the same to a server's accepted connections.
//
// # Determinism
//
// A Schedule is a pure function of (Seed, request index): request i gets
// fault At(i), always. Under concurrency the assignment of indices to
// requests can race, but the multiset of injected faults along any run is
// fixed by the seed, so a failing chaos seed replays the same fault mix —
// and the suites' assertion (the final merged result is byte-identical to
// the fault-free run) is schedule-independent by the dist subsystem's own
// determinism contract.
//
// # Fault model
//
//   - FaultRefuse: the connection is refused; the request never reaches
//     the server (a down or restarting peer).
//   - FaultTimeout: the request "hangs" and times out client-side without
//     reaching the server (a black-holed packet, a dead NAT entry).
//   - FaultServerError: an injected 502 without reaching the server (a
//     failing proxy or load balancer in front of a healthy peer).
//   - FaultSlow: the request succeeds but the response is delayed by
//     Latency (a congested or GC-pausing peer).
//   - FaultDrop: the request reaches the server and fully executes —
//     the server COMMITS — but the response is lost on the way back.
//     This is the nasty case: the client must retry an operation the
//     server already performed, so every mutating endpoint it exercises
//     is forced to prove its idempotence (the dist coordinator's
//     stale-duplicate result handling, lease renews).
//
// MaxFaults caps the total number of injected faults, after which the
// schedule passes everything through — the hard progress guarantee that
// lets chaos tests run bounded-probability schedules without any chance of
// starving a retry budget forever.
package faultnet

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"crncompose/internal/metrics"
)

// NewInjectionCounter registers the crn_faultnet_injections_total
// family (label "fault") on r — the CounterVec to hang on
// Transport.Metrics or Listener.Metrics. Both sides can share one
// counter: the label records the fault kind, not the injection point.
func NewInjectionCounter(r *metrics.Registry) *metrics.CounterVec {
	return r.CounterVec("crn_faultnet_injections_total",
		"Faults injected by the deterministic chaos layer, by kind.", "fault")
}

// Fault is one injected failure mode.
type Fault uint8

const (
	FaultNone Fault = iota
	FaultRefuse
	FaultTimeout
	FaultServerError
	FaultSlow
	FaultDrop

	numFaults
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultRefuse:
		return "refuse"
	case FaultTimeout:
		return "timeout"
	case FaultServerError:
		return "server-error"
	case FaultSlow:
		return "slow"
	case FaultDrop:
		return "drop-after-commit"
	}
	return fmt.Sprintf("fault(%d)", uint8(f))
}

// Schedule is a seeded fault plan: per-fault probabilities (the remainder
// is FaultNone), the latency used by slow/timeout faults, and an optional
// cap on total injected faults. The zero value injects nothing.
type Schedule struct {
	Seed uint64
	// Probabilities in [0,1]; their sum should be ≤ 1 (the remainder is the
	// pass-through probability).
	PRefuse, PTimeout, PServerError, PSlow, PDrop float64
	// Latency is the FaultSlow response delay and the FaultTimeout stall
	// before the client-side timeout error (default 20ms).
	Latency time.Duration
	// MaxFaults, when positive, caps the number of injected faults; past it
	// every request passes through — the progress guarantee bounded retry
	// budgets rely on. Zero means unlimited.
	MaxFaults int64
}

func (s Schedule) latency() time.Duration {
	if s.Latency <= 0 {
		return 20 * time.Millisecond
	}
	return s.Latency
}

// splitmix64 is the SplitMix64 finalizer: a high-quality 64-bit mix, so
// consecutive indices under one seed decorrelate completely.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// At returns the fault for the i-th request: a pure function of (Seed, i).
func (s Schedule) At(i int64) Fault {
	u := float64(splitmix64(s.Seed^uint64(i)*0x9e3779b97f4a7c15)>>11) / float64(1<<53)
	for _, c := range []struct {
		p float64
		f Fault
	}{
		{s.PRefuse, FaultRefuse},
		{s.PTimeout, FaultTimeout},
		{s.PServerError, FaultServerError},
		{s.PSlow, FaultSlow},
		{s.PDrop, FaultDrop},
	} {
		if u < c.p {
			return c.f
		}
		u -= c.p
	}
	return FaultNone
}

// timeoutError is the client-side error a FaultTimeout surfaces; it
// satisfies net.Error with Timeout() == true, like a real deadline miss.
type timeoutError struct{}

func (timeoutError) Error() string   { return "faultnet: injected request timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// ErrDropped is the error a FaultDrop surfaces after the server committed.
var ErrDropped = fmt.Errorf("faultnet: response dropped after server commit")

// Transport injects faults into a client's requests on the schedule. It is
// safe for concurrent use.
type Transport struct {
	inner http.RoundTripper
	sched Schedule
	// Logf, when non-nil, receives one line per injected fault.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, additionally counts injected faults by kind
	// on a shared metrics registry — label "fault" holding Fault.String()
	// (see NewInjectionCounter). The internal Counts() counters are kept
	// regardless, so chaos-suite assertions don't need a registry.
	Metrics *metrics.CounterVec

	next      atomic.Int64 // request index
	scheduled atomic.Int64 // faults the schedule asked for (cap accounting)
	byFault   [numFaults]atomic.Int64
}

// NewTransport wraps inner (nil = http.DefaultTransport) with the schedule.
func NewTransport(inner http.RoundTripper, s Schedule) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{inner: inner, sched: s}
}

// Requests returns how many requests the transport has seen; Injected how
// many were actually faulted (observability for chaos-suite logs).
func (t *Transport) Requests() int64 { return t.next.Load() }
func (t *Transport) Injected() int64 {
	var n int64
	for i := range t.byFault {
		n += t.byFault[i].Load()
	}
	return n
}

// Counts returns the per-fault injection counts, indexed by Fault.
func (t *Transport) Counts() [int(numFaults)]int64 {
	var out [int(numFaults)]int64
	for i := range out {
		out[i] = t.byFault[i].Load()
	}
	return out
}

// decide picks the fault for the next request, honoring MaxFaults.
func (t *Transport) decide() Fault {
	f := t.sched.At(t.next.Add(1) - 1)
	if f == FaultNone {
		return f
	}
	if t.sched.MaxFaults > 0 && t.scheduled.Add(1) > t.sched.MaxFaults {
		return FaultNone
	}
	t.byFault[f].Add(1)
	if t.Metrics != nil {
		t.Metrics.With(f.String()).Inc()
	}
	return f
}

// RoundTrip implements http.RoundTripper under the fault schedule.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	f := t.decide()
	if f != FaultNone && t.Logf != nil {
		t.Logf("faultnet: %s %s %s", f, req.Method, req.URL.Path)
	}
	switch f {
	case FaultRefuse:
		closeBody(req)
		return nil, &net.OpError{Op: "dial", Net: "tcp", Addr: nil, Err: syscall.ECONNREFUSED}
	case FaultTimeout:
		closeBody(req)
		// Stall like a real timeout would, bounded by the request context.
		select {
		case <-req.Context().Done():
		case <-time.After(t.sched.latency()):
		}
		return nil, timeoutError{}
	case FaultServerError:
		closeBody(req)
		return &http.Response{
			Status:        "502 Bad Gateway",
			StatusCode:    http.StatusBadGateway,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"text/plain"}},
			Body:          io.NopCloser(strings.NewReader("faultnet: injected server error\n")),
			ContentLength: -1,
			Request:       req,
		}, nil
	case FaultSlow:
		resp, err := t.inner.RoundTrip(req)
		select {
		case <-req.Context().Done():
			// The client gave up during the delay; surface that as the
			// timeout it is, releasing the response.
			if resp != nil {
				resp.Body.Close()
			}
			return nil, timeoutError{}
		case <-time.After(t.sched.latency()):
		}
		return resp, err
	case FaultDrop:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err // the real network failed first
		}
		// Fully execute the exchange so the server commits, then lose the
		// response.
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, ErrDropped
	}
	return t.inner.RoundTrip(req)
}

func closeBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}

// Listener injects server-side faults: per accepted connection the schedule
// decides to serve it normally, abort it (closed before the server reads a
// byte — the client sees a reset), or delay its hand-off by Latency. Only
// FaultRefuse and FaultSlow apply listener-side; other faults pass.
type Listener struct {
	net.Listener
	sched Schedule
	// Logf, when non-nil, receives one line per injected fault.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, counts injected connection faults by kind,
	// like Transport.Metrics.
	Metrics *metrics.CounterVec

	next      atomic.Int64
	scheduled atomic.Int64 // cap accounting
	injected  atomic.Int64
}

// NewListener wraps ln with the schedule.
func NewListener(ln net.Listener, s Schedule) *Listener {
	return &Listener{Listener: ln, sched: s}
}

// Injected returns how many connections were actually faulted.
func (l *Listener) Injected() int64 { return l.injected.Load() }

// Accept implements net.Listener under the fault schedule.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		f := l.sched.At(l.next.Add(1) - 1)
		if f != FaultNone {
			if l.sched.MaxFaults > 0 && l.scheduled.Add(1) > l.sched.MaxFaults {
				f = FaultNone
			} else if f == FaultRefuse || f == FaultSlow {
				l.injected.Add(1)
				if l.Metrics != nil {
					l.Metrics.With(f.String()).Inc()
				}
			}
		}
		switch f {
		case FaultRefuse:
			if l.Logf != nil {
				l.Logf("faultnet: aborting connection from %s", conn.RemoteAddr())
			}
			conn.Close()
			continue
		case FaultSlow:
			if l.Logf != nil {
				l.Logf("faultnet: delaying connection from %s", conn.RemoteAddr())
			}
			time.Sleep(l.sched.latency())
		}
		return conn, nil
	}
}
