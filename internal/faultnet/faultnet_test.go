package faultnet

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"crncompose/internal/httpx"
)

// TestScheduleDeterministic: At is a pure function of (Seed, i) — same seed
// same sequence, different seed a different one, and every configured fault
// kind shows up at the configured rough rate.
func TestScheduleDeterministic(t *testing.T) {
	s := Schedule{Seed: 42, PRefuse: 0.1, PTimeout: 0.1, PServerError: 0.1, PSlow: 0.1, PDrop: 0.1}
	const n = 20_000
	var counts [int(numFaults)]int
	for i := int64(0); i < n; i++ {
		f := s.At(i)
		counts[f]++
		if f != s.At(i) {
			t.Fatalf("At(%d) not deterministic", i)
		}
	}
	// ~10% each, half the requests pass. Loose bounds — this is a sanity
	// check on the mixer, not a statistics test.
	for f := FaultRefuse; f <= FaultDrop; f++ {
		if c := counts[f]; c < n/20 || c > n/5 {
			t.Errorf("fault %s: %d of %d draws (want ≈%d)", f, c, n, n/10)
		}
	}
	if counts[FaultNone] < n/3 {
		t.Errorf("pass-through %d of %d draws", counts[FaultNone], n)
	}
	diff := 0
	other := Schedule{Seed: 43, PRefuse: 0.1, PTimeout: 0.1, PServerError: 0.1, PSlow: 0.1, PDrop: 0.1}
	for i := int64(0); i < 1000; i++ {
		if s.At(i) != other.At(i) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}

// faultFor builds a schedule injecting exactly one fault kind with
// certainty on every request until the cap.
func faultFor(f Fault, maxFaults int64) Schedule {
	s := Schedule{Seed: 1, Latency: 30 * time.Millisecond, MaxFaults: maxFaults}
	switch f {
	case FaultRefuse:
		s.PRefuse = 1
	case FaultTimeout:
		s.PTimeout = 1
	case FaultServerError:
		s.PServerError = 1
	case FaultSlow:
		s.PSlow = 1
	case FaultDrop:
		s.PDrop = 1
	}
	return s
}

// TestTransportFaults pins each fault's client-visible behavior and — the
// part that matters for idempotence testing — whether the server committed.
func TestTransportFaults(t *testing.T) {
	var commits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		commits.Add(1)
		_, _ = w.Write([]byte("ok"))
	}))
	defer ts.Close()

	do := func(tr *Transport) (*http.Response, error) {
		client := &http.Client{Transport: tr, Timeout: 5 * time.Second}
		return client.Get(ts.URL)
	}

	t.Run("refuse", func(t *testing.T) {
		before := commits.Load()
		_, err := do(NewTransport(nil, faultFor(FaultRefuse, 1)))
		if !errors.Is(err, syscall.ECONNREFUSED) {
			t.Fatalf("err = %v, want connection refused", err)
		}
		if commits.Load() != before {
			t.Fatal("refused request reached the server")
		}
	})
	t.Run("timeout", func(t *testing.T) {
		before := commits.Load()
		_, err := do(NewTransport(nil, faultFor(FaultTimeout, 1)))
		var ne net.Error
		if err == nil || !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("err = %v, want net.Error with Timeout()", err)
		}
		if commits.Load() != before {
			t.Fatal("timed-out request reached the server")
		}
	})
	t.Run("server-error", func(t *testing.T) {
		before := commits.Load()
		resp, err := do(NewTransport(nil, faultFor(FaultServerError, 1)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadGateway {
			t.Fatalf("status = %d, want 502", resp.StatusCode)
		}
		if commits.Load() != before {
			t.Fatal("injected 5xx reached the server")
		}
	})
	t.Run("slow", func(t *testing.T) {
		before := commits.Load()
		start := time.Now()
		resp, err := do(NewTransport(nil, faultFor(FaultSlow, 1)))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != "ok" || commits.Load() != before+1 {
			t.Fatalf("slow response corrupted: %q (commits %d→%d)", body, before, commits.Load())
		}
		if d := time.Since(start); d < 30*time.Millisecond {
			t.Fatalf("slow response not delayed: %s", d)
		}
	})
	t.Run("drop-after-commit", func(t *testing.T) {
		before := commits.Load()
		_, err := do(NewTransport(nil, faultFor(FaultDrop, 1)))
		if !errors.Is(err, ErrDropped) {
			t.Fatalf("err = %v, want ErrDropped", err)
		}
		if commits.Load() != before+1 {
			t.Fatalf("dropped request did not commit: %d → %d", before, commits.Load())
		}
	})
}

// TestMaxFaultsCap: after the cap, everything passes — the progress
// guarantee bounded retry budgets rely on.
func TestMaxFaultsCap(t *testing.T) {
	var commits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		commits.Add(1)
		_, _ = w.Write([]byte(`{}`))
	}))
	defer ts.Close()
	tr := NewTransport(nil, faultFor(FaultRefuse, 3))
	client := &http.Client{Transport: tr}
	fails := 0
	for i := 0; i < 10; i++ {
		resp, err := client.Get(ts.URL)
		if err != nil {
			fails++
			continue
		}
		resp.Body.Close()
	}
	if fails != 3 || commits.Load() != 7 || tr.Injected() != 3 {
		t.Fatalf("fails=%d commits=%d injected=%d, want 3/7/3", fails, commits.Load(), tr.Injected())
	}
}

// TestTransportWithRetryClient: the intended pairing — an httpx retry
// client rides through a faulty transport and still lands the request,
// with every dropped response having committed server-side exactly once
// per delivery attempt.
func TestTransportWithRetryClient(t *testing.T) {
	var commits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		commits.Add(1)
		_, _ = w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()
	sched := Schedule{
		Seed:    7,
		PRefuse: 0.2, PTimeout: 0.1, PServerError: 0.2, PSlow: 0.1, PDrop: 0.2,
		Latency:   time.Millisecond,
		MaxFaults: 50,
	}
	tr := NewTransport(nil, sched)
	c := &httpx.Client{
		HTTP:        &http.Client{Transport: tr, Timeout: 5 * time.Second},
		MaxAttempts: -1,
		Budget:      30 * time.Second,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
	}
	for i := 0; i < 30; i++ {
		var out struct {
			OK bool `json:"ok"`
		}
		if err := c.GetJSON(context.Background(), ts.URL, &out); err != nil || !out.OK {
			t.Fatalf("call %d: %v (out=%+v)", i, err, out)
		}
	}
	if tr.Injected() == 0 {
		t.Fatal("schedule injected nothing; test proves nothing")
	}
	t.Logf("requests=%d injected=%d commits=%d", tr.Requests(), tr.Injected(), commits.Load())
}

// TestListenerFaults: an aborted connection surfaces as a client-side
// transport error and never reaches the handler; the retry client rides
// through.
func TestListenerFaults(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fln := NewListener(ln, Schedule{Seed: 3, PRefuse: 0.4, MaxFaults: 20, Latency: time.Millisecond})
	var commits atomic.Int64
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		commits.Add(1)
		_, _ = w.Write([]byte(`{"ok":true}`))
	})}
	go func() { _ = srv.Serve(fln) }()
	defer srv.Close()

	c := &httpx.Client{
		HTTP:        &http.Client{Timeout: 5 * time.Second},
		MaxAttempts: -1,
		Budget:      30 * time.Second,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
	}
	url := "http://" + ln.Addr().String()
	for i := 0; i < 20; i++ {
		var out struct {
			OK bool `json:"ok"`
		}
		if err := c.GetJSON(context.Background(), url, &out); err != nil || !out.OK {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if fln.Injected() == 0 {
		t.Fatal("listener injected nothing; test proves nothing")
	}
	if commits.Load() < 20 {
		t.Fatalf("only %d commits for 20 successful calls", commits.Load())
	}
}
