package faultnet

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"crncompose/internal/metrics"
)

// TestTransportMetrics checks that injected faults land on the shared
// registry with the fault kind as the label, matching Counts().
func TestTransportMetrics(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()

	reg := metrics.NewRegistry()
	tr := NewTransport(nil, Schedule{Seed: 7, PServerError: 1})
	tr.Metrics = NewInjectionCounter(reg)
	client := &http.Client{Transport: tr}

	for i := 0; i < 5; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `crn_faultnet_injections_total{fault="server-error"} 5`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("missing %q in:\n%s", want, b.String())
	}
	if got := tr.Counts()[FaultServerError]; got != 5 {
		t.Fatalf("Counts()[server-error] = %d, want 5", got)
	}
}
