// Package figures regenerates the data behind every figure in the paper's
// evaluation (Figures 1–8). Each generator returns a Table (header row plus
// data rows) that cmd/figures renders as CSV; the root bench_test.go
// benchmarks the same generators so `go test -bench .` exercises every
// figure. EXPERIMENTS.md records the paper-vs-measured comparison for each.
package figures

import (
	"fmt"

	"crncompose/internal/classify"
	"crncompose/internal/crn"
	"crncompose/internal/geometry"
	"crncompose/internal/quilt"
	"crncompose/internal/rat"
	"crncompose/internal/reach"
	"crncompose/internal/scaling"
	"crncompose/internal/semilinear"
	"crncompose/internal/sim"
	"crncompose/internal/synth"
	"crncompose/internal/vec"
	"crncompose/internal/witness"
)

// Table is a header row plus data rows, renderable as CSV.
type Table struct {
	Name   string
	Header []string
	Rows   [][]string
}

func (t *Table) add(cells ...string) { t.Rows = append(t.Rows, cells) }

func itoa(v int64) string   { return fmt.Sprintf("%d", v) }
func ftoa(v float64) string { return fmt.Sprintf("%.6f", v) }
func btoa(v bool) string    { return fmt.Sprintf("%v", v) }
func vtoa(v vec.V) string   { return v.Key() }

// Fig1 exercises the three CRNs of Figure 1 (2x, min, max): for a sweep of
// inputs it simulates each CRN with the fair scheduler and compares the
// stabilized output against the target function.
func Fig1(sizes []int64, seed uint64) (*Table, error) {
	t := &Table{Name: "fig1", Header: []string{"crn", "x1", "x2", "expected", "simulated", "steps", "converged"}}
	type entry struct {
		name string
		c    *crn.CRN
		f    func(x vec.V) int64
		oneD bool
	}
	entries := []entry{
		{"double", synth.DoubleCRN(), func(x vec.V) int64 { return 2 * x[0] }, true},
		{"min", synth.MinCRN(2), func(x vec.V) int64 { return min(x[0], x[1]) }, false},
		{"max", synth.MaxCRN(), func(x vec.V) int64 { return max(x[0], x[1]) }, false},
	}
	for _, e := range entries {
		for _, n := range sizes {
			var x vec.V
			if e.oneD {
				x = vec.New(n)
			} else {
				x = vec.New(n, n/2+1)
			}
			start, err := e.c.InitialConfig(x)
			if err != nil {
				return nil, err
			}
			r := sim.FairRandom(start, sim.WithSeed(seed))
			x2 := int64(0)
			if !e.oneD {
				x2 = x[1]
			}
			t.add(e.name, itoa(x[0]), itoa(x2), itoa(e.f(x)), itoa(r.Final.Output()), itoa(r.Steps), btoa(r.Converged))
		}
	}
	return t, nil
}

// Fig2 compares the two CRNs for min(1, x) of Figure 2: the leaderless
// non-output-oblivious one and the leadered output-oblivious one, verifying
// both by model checking and reporting the structural properties.
func Fig2(hi int64) (*Table, error) {
	t := &Table{Name: "fig2", Header: []string{"crn", "leader", "output_oblivious", "verified_range", "verified"}}
	f := func(x []int64) int64 { return min(1, x[0]) }
	for _, e := range []struct {
		name string
		c    *crn.CRN
	}{
		{"leaderless X->Y; 2Y->Y", synth.MinConst1Leaderless()},
		{"leadered L+X->Y", synth.MinConst1Leadered()},
	} {
		res, err := reach.CheckGrid(e.c, f, []int64{0}, []int64{hi})
		if err != nil {
			return nil, err
		}
		t.add(e.name, string(e.c.Leader), btoa(e.c.IsOutputOblivious()),
			fmt.Sprintf("0..%d", hi), btoa(res.OK()))
	}
	return t, nil
}

// Fig3a emits the series of the 1D quilt-affine function ⌊3x/2⌋ together
// with the output of the Lemma 6.1 CRN at each point.
func Fig3a(hi int64) (*Table, error) {
	g := quilt.MustNew(rat.NewVec(rat.New(3, 2)), 2, []rat.R{rat.Zero(), rat.New(-1, 2)})
	c, err := synth.FromQuilt(g)
	if err != nil {
		return nil, err
	}
	t := &Table{Name: "fig3a", Header: []string{"x", "g", "crn_output"}}
	for x := int64(0); x <= hi; x++ {
		r := sim.FairRandom(c.MustInitialConfig(vec.New(x)), sim.WithSeed(7))
		t.add(itoa(x), itoa(g.Eval(vec.New(x))), itoa(r.Final.Output()))
	}
	return t, nil
}

// Fig3b emits the 2D quilt-affine surface g(x) = (1,2)·x + B(x mod 3)
// together with the Lemma 6.1 CRN's stabilized output at each grid point.
func Fig3b(hi int64) (*Table, error) {
	f := semilinear.Fig3b()
	res, err := classify.Analyze(f, classify.Options{})
	if err != nil {
		return nil, err
	}
	if !res.Computable || len(res.EventualMin.Terms) != 1 {
		return nil, fmt.Errorf("fig3b should classify as a single quilt-affine term")
	}
	c, err := synth.FromQuilt(res.EventualMin.Terms[0])
	if err != nil {
		return nil, err
	}
	t := &Table{Name: "fig3b", Header: []string{"x1", "x2", "g", "crn_output"}}
	var firstErr error
	vec.Grid(vec.Zero(2), vec.Const(2, hi), func(x vec.V) bool {
		r := sim.FairRandom(c.MustInitialConfig(x), sim.WithSeed(11))
		t.add(itoa(x[0]), itoa(x[1]), itoa(f.Eval(x)), itoa(r.Final.Output()))
		return true
	})
	return t, firstErr
}

// Fig4a emits the surface of the Figure 4a style function together with its
// eventually-min decomposition term values.
func Fig4a(hi int64) (*Table, error) {
	f := semilinear.Fig4a()
	res, err := classify.Analyze(f, classify.Options{})
	if err != nil {
		return nil, err
	}
	if !res.Computable {
		return nil, fmt.Errorf("fig4a not computable: %s", res.Reason)
	}
	t := &Table{Name: "fig4a", Header: []string{"x1", "x2", "f", "min_of_terms", "num_terms"}}
	vec.Grid(vec.Zero(2), vec.Const(2, hi), func(x vec.V) bool {
		t.add(itoa(x[0]), itoa(x[1]), itoa(f.Eval(x)),
			itoa(res.EventualMin.Eval(x)), itoa(int64(len(res.EventualMin.Terms))))
		return true
	})
	return t, nil
}

// Fig4b emits the ∞-scaling f̂ of the Fig 4a function on a positive grid:
// the exact min-of-gradients value and the numeric estimate (Theorem 8.2 /
// the continuous class of Chalk et al.).
func Fig4b(gridMax, scale int64) (*Table, error) {
	f := semilinear.Fig4a()
	res, err := classify.Analyze(f, classify.Options{})
	if err != nil {
		return nil, err
	}
	eval := func(x vec.V) int64 { return f.Eval(x) }
	t := &Table{Name: "fig4b", Header: []string{"z1", "z2", "fhat_exact", "fhat_estimate", "abs_err"}}
	var firstErr error
	vec.Grid(vec.Const(2, 1), vec.Const(2, gridMax), func(z vec.V) bool {
		rep, err := scaling.Compare(eval, res.EventualMin, rat.VecFromInts(z), scale)
		if err != nil {
			firstErr = err
			return false
		}
		t.add(itoa(z[0]), itoa(z[1]), ftoa(rep.Exact), ftoa(rep.Estimate), ftoa(rep.AbsErr))
		return true
	})
	return t, firstErr
}

// Fig5 emits the eventually-quilt-affine structure of a 1D semilinear
// nondecreasing function: values, finite differences, and the fitted
// (n, p, δ) parameters, plus the Theorem 3.1 CRN's output at each point.
func Fig5(hi int64) (*Table, error) {
	f := func(x int64) int64 {
		// Finite irregularity then period-3 growth (the Fig 5 shape).
		table := []int64{0, 2, 3, 7}
		if x < int64(len(table)) {
			return table[x]
		}
		return 7 + 2*(x-3) + (x-3)/3
	}
	spec, err := synth.FitOneDim(f, 0, 0)
	if err != nil {
		return nil, err
	}
	c, err := synth.OneDim(spec)
	if err != nil {
		return nil, err
	}
	t := &Table{Name: "fig5", Header: []string{"x", "f", "delta", "fitted_n", "fitted_p", "crn_output"}}
	for x := int64(0); x <= hi; x++ {
		r := sim.FairRandom(c.MustInitialConfig(vec.New(x)), sim.WithSeed(3))
		t.add(itoa(x), itoa(f(x)), itoa(f(x+1)-f(x)), itoa(spec.N), itoa(spec.P), itoa(r.Final.Output()))
	}
	return t, nil
}

// Fig6 reproduces the Lemma 4.1 experiment: a contradiction sequence for
// max, and the explicit overproducing schedule against an output-oblivious
// CRN attempt.
func Fig6() (*Table, error) {
	fmax := func(x vec.V) int64 { return max(x[0], x[1]) }
	con := witness.Search(fmax, 2, witness.SearchOptions{})
	if con == nil {
		return nil, fmt.Errorf("no contradiction found for max")
	}
	attempt := crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}, {Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
	over, err := witness.BuildOverproduction(attempt, fmax, con)
	if err != nil {
		return nil, err
	}
	t := &Table{Name: "fig6", Header: []string{"quantity", "value"}}
	t.add("sequence_base", vtoa(con.Base))
	t.add("sequence_step", vtoa(con.Step))
	t.add("sequence_length", itoa(int64(con.K)))
	t.add("dickson_pair_i", itoa(int64(over.I)))
	t.add("dickson_pair_j", itoa(int64(over.J)))
	t.add("delta", vtoa(over.Delta))
	t.add("input", vtoa(over.AjPlusDelta))
	t.add("correct_max", itoa(over.Want))
	t.add("overproduced", itoa(over.Got))
	t.add("trace_length", itoa(int64(len(over.Trace.Reactions))))
	return t, nil
}

// Fig7 emits the Section 7.1 example: the function values and the three
// quilt-affine extensions g1, g2, gU recovered by the classifier, verifying
// f = min(g1, g2, gU).
func Fig7(hi int64) (*Table, error) {
	f := semilinear.Fig7()
	res, err := classify.Analyze(f, classify.Options{})
	if err != nil {
		return nil, err
	}
	if !res.Computable {
		return nil, fmt.Errorf("fig7 not computable: %s", res.Reason)
	}
	t := &Table{Name: "fig7", Header: []string{"x1", "x2", "f", "g1", "g2", "gU", "min"}}
	terms := res.EventualMin.Terms
	if len(terms) != 3 {
		return nil, fmt.Errorf("fig7 decomposed into %d terms, want 3", len(terms))
	}
	// Order: affine terms first, the period-2 averaged extension last.
	var affs []*quilt.Func
	var gu *quilt.Func
	for _, g := range terms {
		if g.Period() == 2 {
			gu = g
		} else {
			affs = append(affs, g)
		}
	}
	if gu == nil || len(affs) != 2 {
		return nil, fmt.Errorf("fig7 terms not in expected shape")
	}
	vec.Grid(vec.Zero(2), vec.Const(2, hi), func(x vec.V) bool {
		t.add(itoa(x[0]), itoa(x[1]), itoa(f.Eval(x)),
			itoa(affs[0].Eval(x)), itoa(affs[1].Eval(x)), itoa(gu.Eval(x)),
			itoa(res.EventualMin.Eval(x)))
		return true
	})
	return t, nil
}

// Fig8 emits the region census of the two arrangements of Figure 8: region
// sign key, recession cone dimension, eventual/determined flags, and strip
// count.
func Fig8() (*Table, error) {
	t := &Table{Name: "fig8", Header: []string{"arrangement", "region", "recc_dim", "eventual", "determined", "strips", "points"}}
	arr2 := geometry.NewArrangement(2,
		[]vec.V{vec.New(1, -1), vec.New(1, -1), vec.New(1, 1)},
		[]int64{1, -3, 4})
	for _, r := range arr2.Census(14) {
		t.add("fig8a(2D)", r.Key(), itoa(int64(r.ReccDim())), btoa(r.IsEventual()),
			btoa(r.IsDetermined()), itoa(int64(len(r.Strips()))), itoa(int64(len(r.Points))))
	}
	arr3 := geometry.NewArrangement(3,
		[]vec.V{vec.New(1, -1, 0), vec.New(1, -1, 0), vec.New(1, 0, -1), vec.New(1, 0, -1)},
		[]int64{3, -2, 3, -2})
	for _, r := range arr3.Census(10) {
		t.add("fig8c(3D)", r.Key(), itoa(int64(r.ReccDim())), btoa(r.IsEventual()),
			btoa(r.IsDetermined()), itoa(int64(len(r.Strips()))), itoa(int64(len(r.Points))))
	}
	return t, nil
}

// All runs every figure generator with default parameters.
func All() ([]*Table, error) {
	var out []*Table
	type gen func() (*Table, error)
	gens := []gen{
		func() (*Table, error) { return Fig1([]int64{10, 100, 1000}, 1) },
		func() (*Table, error) { return Fig2(12) },
		func() (*Table, error) { return Fig3a(20) },
		func() (*Table, error) { return Fig3b(8) },
		func() (*Table, error) { return Fig4a(10) },
		func() (*Table, error) { return Fig4b(4, 2048) },
		func() (*Table, error) { return Fig5(20) },
		Fig6,
		func() (*Table, error) { return Fig7(10) },
		Fig8,
	}
	for _, g := range gens {
		t, err := g()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
