// Package geometry implements the convex-geometric machinery of Section 7
// of the paper: threshold hyperplane arrangements, regions induced by sign
// matrices (Definition 7.2), recession cones and their dimensions
// (Definition 7.4), determined/under-determined classification, the
// eventual-region test (Definition 7.10), the neighbor relation
// (Definition 7.11), and strips (Definition 7.13).
//
// All feasibility questions about recession cones are decided exactly with
// Fourier–Motzkin elimination over rationals, which also produces witness
// points (used e.g. to find strictly positive recession directions).
package geometry

import (
	"fmt"

	"crncompose/internal/rat"
)

// Constraint is a linear inequality A·y ≥ B (or > when Strict).
type Constraint struct {
	A      rat.Vec
	B      rat.R
	Strict bool
}

// String renders the constraint.
func (c Constraint) String() string {
	op := "≥"
	if c.Strict {
		op = ">"
	}
	return fmt.Sprintf("%s·y %s %s", c.A, op, c.B)
}

// System is a conjunction of linear constraints over d variables.
type System struct {
	D           int
	Constraints []Constraint
}

// NewSystem returns an empty system over d variables.
func NewSystem(d int) *System { return &System{D: d} }

// Add appends the constraint a·y ≥ b (strict if strict).
func (s *System) Add(a rat.Vec, b rat.R, strict bool) *System {
	if len(a) != s.D {
		panic(fmt.Sprintf("geometry: constraint arity %d ≠ system arity %d", len(a), s.D))
	}
	s.Constraints = append(s.Constraints, Constraint{A: a.Clone(), B: b, Strict: strict})
	return s
}

// AddGeqZero appends a·y ≥ 0.
func (s *System) AddGeqZero(a rat.Vec) *System { return s.Add(a, rat.Zero(), false) }

// Clone deep-copies the system.
func (s *System) Clone() *System {
	out := &System{D: s.D, Constraints: make([]Constraint, len(s.Constraints))}
	copy(out.Constraints, s.Constraints)
	return out
}

// Feasible decides whether the system has a rational solution and, if so,
// returns one. The witness satisfies every constraint (including strict
// ones) exactly.
func (s *System) Feasible() (rat.Vec, bool) {
	// levels[k] holds the constraints over variables [0..k) before variable
	// k-1 is eliminated; levels[s.D] is the original system.
	levels := make([][]Constraint, s.D+1)
	levels[s.D] = append([]Constraint(nil), s.Constraints...)
	for k := s.D; k > 0; k-- {
		lower, upper, free := split(levels[k], k-1)
		var next []Constraint
		next = append(next, free...)
		// Combine each lower bound with each upper bound: L ≤ y_k ≤ U
		// requires L ≤ U, i.e. (U − L) ≥ 0 (strict if either side strict).
		for _, lo := range lower {
			for _, up := range upper {
				next = append(next, combine(lo, up, k-1))
			}
		}
		levels[k-1] = next
	}
	// Ground level: constraints over zero variables are "0 ≥ B" checks.
	for _, c := range levels[0] {
		sign := c.B.Sign()
		if sign > 0 || (sign == 0 && c.Strict) {
			return nil, false
		}
	}
	// Back-substitute to build a witness.
	y := rat.ZeroVec(s.D)
	for k := 1; k <= s.D; k++ {
		lower, upper, _ := split(levels[k], k-1)
		val, ok := pickValue(lower, upper, y, k-1)
		if !ok {
			return nil, false
		}
		y[k-1] = val
	}
	return y, true
}

// split partitions constraints by the sign of the coefficient on variable v:
// positive coefficients give lower bounds on y_v, negative give upper
// bounds, zero coefficients are independent of y_v.
func split(cs []Constraint, v int) (lower, upper, free []Constraint) {
	for _, c := range cs {
		switch c.A[v].Sign() {
		case 1:
			lower = append(lower, c)
		case -1:
			upper = append(upper, c)
		default:
			free = append(free, c)
		}
	}
	return lower, upper, free
}

// combine eliminates variable v from a lower-bound constraint lo
// (lo.A[v] > 0) and an upper-bound constraint up (up.A[v] < 0), producing a
// constraint not involving v: scale so the coefficients on v cancel.
func combine(lo, up Constraint, v int) Constraint {
	// lo: a·y ≥ b with a_v > 0  ⇒  y_v ≥ (b − a'·y')/a_v
	// up: c·y ≥ e with c_v < 0  ⇒  y_v ≤ (e − c'·y')/c_v (division flips)
	// Eliminate: (−c_v)·lo + a_v·up ≥ (−c_v)b + a_v e with coefficient on v
	// equal to (−c_v)a_v + a_v c_v = 0.
	av := lo.A[v]
	cv := up.A[v].Neg() // positive
	a := lo.A.Scale(cv).Add(up.A.Scale(av))
	b := lo.B.Mul(cv).Add(up.B.Mul(av))
	return Constraint{A: a, B: b, Strict: lo.Strict || up.Strict}
}

// pickValue chooses a value for variable v consistent with the lower and
// upper bound constraints, given the already-chosen values of variables
// [0, v) in y (variables above v have coefficient zero at this level).
func pickValue(lower, upper []Constraint, y rat.Vec, v int) (rat.R, bool) {
	if len(lower) == 0 && len(upper) == 0 {
		return rat.Zero(), true // unconstrained
	}
	var (
		haveLo, haveHi     bool
		bestLo, bestHi     rat.R
		strictLo, strictHi bool
	)
	for _, c := range lower {
		rest := partialDot(c.A, y, v)
		bound := c.B.Sub(rest).Div(c.A[v])
		switch {
		case !haveLo || bound.Cmp(bestLo) > 0:
			bestLo, strictLo, haveLo = bound, c.Strict, true
		case bound.Eq(bestLo):
			strictLo = strictLo || c.Strict
		}
	}
	for _, c := range upper {
		rest := partialDot(c.A, y, v)
		bound := c.B.Sub(rest).Div(c.A[v]) // division by negative flips to ≤
		switch {
		case !haveHi || bound.Cmp(bestHi) < 0:
			bestHi, strictHi, haveHi = bound, c.Strict, true
		case bound.Eq(bestHi):
			strictHi = strictHi || c.Strict
		}
	}
	switch {
	case !haveLo && !haveHi:
		return rat.Zero(), true
	case haveLo && !haveHi:
		if strictLo {
			return bestLo.Add(rat.One()), true
		}
		return bestLo, true
	case !haveLo && haveHi:
		if strictHi {
			return bestHi.Sub(rat.One()), true
		}
		return bestHi, true
	default:
		cmp := bestLo.Cmp(bestHi)
		if cmp > 0 {
			return rat.Zero(), false
		}
		if cmp == 0 {
			if strictLo || strictHi {
				return rat.Zero(), false
			}
			return bestLo, true
		}
		return bestLo.Add(bestHi).Div(rat.FromInt(2)), true
	}
}

func partialDot(a, y rat.Vec, v int) rat.R {
	s := rat.Zero()
	for i := 0; i < v; i++ {
		s = s.Add(a[i].Mul(y[i]))
	}
	return s
}
