package geometry

import (
	"math/rand/v2"
	"testing"

	"crncompose/internal/rat"
)

// TestFMAgainstBruteForce cross-validates Fourier–Motzkin feasibility
// against a dense rational grid search on random small systems. If FM says
// feasible, its witness is checked exactly; if FM says infeasible, no grid
// point may satisfy the system.
func TestFMAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		d := 2 + rng.IntN(2) // 2 or 3 variables
		sys := NewSystem(d)
		numC := 2 + rng.IntN(4)
		for i := 0; i < numC; i++ {
			a := make(rat.Vec, d)
			for j := range a {
				a[j] = rat.FromInt(rng.Int64N(5) - 2)
			}
			b := rat.FromInt(rng.Int64N(7) - 3)
			sys.Add(a, b, rng.IntN(3) == 0)
		}
		y, feasible := sys.Feasible()
		if feasible {
			// The witness must satisfy every constraint exactly.
			for _, c := range sys.Constraints {
				v := c.A.Dot(y).Sub(c.B)
				if (c.Strict && v.Sign() <= 0) || (!c.Strict && v.Sign() < 0) {
					t.Fatalf("trial %d: witness %v violates %s", trial, y, c)
				}
			}
			continue
		}
		// Brute force: scan a half-integer grid; any satisfying point
		// contradicts infeasibility. (The converse direction — FM feasible
		// but grid empty — is legitimate, so only this direction is
		// checked.)
		if p := bruteForcePoint(sys, 8); p != nil {
			t.Fatalf("trial %d: FM says infeasible but %v satisfies the system", trial, p)
		}
	}
}

// bruteForcePoint scans the grid {-lim..lim}/2 per coordinate for a point
// satisfying the system.
func bruteForcePoint(sys *System, lim int64) rat.Vec {
	d := sys.D
	pt := make(rat.Vec, d)
	var rec func(i int) rat.Vec
	rec = func(i int) rat.Vec {
		if i == d {
			for _, c := range sys.Constraints {
				v := c.A.Dot(pt).Sub(c.B)
				if (c.Strict && v.Sign() <= 0) || (!c.Strict && v.Sign() < 0) {
					return nil
				}
			}
			out := make(rat.Vec, d)
			copy(out, pt)
			return out
		}
		for n := -lim; n <= lim; n++ {
			pt[i] = rat.New(n, 2)
			if res := rec(i + 1); res != nil {
				return res
			}
		}
		return nil
	}
	return rec(0)
}

// TestConeDimensionMonotone checks dim recc(R) consistency: adding a
// constraint can only shrink the cone, never grow its dimension.
func TestConeDimensionMonotone(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 17))
	for trial := 0; trial < 100; trial++ {
		d := 2 + rng.IntN(2)
		var normals []rat.Vec
		for i := 0; i < 2+rng.IntN(3); i++ {
			a := make(rat.Vec, d)
			zero := true
			for j := range a {
				v := rng.Int64N(5) - 2
				a[j] = rat.FromInt(v)
				if v != 0 {
					zero = false
				}
			}
			if zero {
				continue
			}
			normals = append(normals, a)
		}
		dimOf := func(rows []rat.Vec) int {
			// Mimic Region.analyze on a raw cone {y ≥ 0, rows·y ≥ 0}.
			all := append([]rat.Vec(nil), rows...)
			for j := 0; j < d; j++ {
				e := rat.ZeroVec(d)
				e[j] = rat.One()
				all = append(all, e)
			}
			var impl []rat.Vec
			for _, m := range all {
				sys := NewSystem(d)
				for _, row := range all {
					sys.AddGeqZero(row)
				}
				sys.Add(m, rat.Zero(), true)
				if _, ok := sys.Feasible(); !ok {
					impl = append(impl, m)
				}
			}
			if len(impl) == 0 {
				return d
			}
			return d - rat.Mat(impl).Rank()
		}
		prev := d
		for k := 0; k <= len(normals); k++ {
			cur := dimOf(normals[:k])
			if cur > prev {
				t.Fatalf("trial %d: cone dimension grew from %d to %d after adding a constraint", trial, prev, cur)
			}
			prev = cur
		}
	}
}
