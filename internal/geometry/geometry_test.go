package geometry

import (
	"testing"

	"crncompose/internal/rat"
	"crncompose/internal/vec"
)

func rvec(xs ...int64) rat.Vec {
	v := make(rat.Vec, len(xs))
	for i, x := range xs {
		v[i] = rat.FromInt(x)
	}
	return v
}

func TestFMFeasibleSimple(t *testing.T) {
	// y1 ≥ 1, y2 ≥ 1, y1 + y2 ≤ 10.
	sys := NewSystem(2).
		Add(rvec(1, 0), rat.One(), false).
		Add(rvec(0, 1), rat.One(), false).
		Add(rvec(-1, -1), rat.FromInt(-10), false)
	y, ok := sys.Feasible()
	if !ok {
		t.Fatal("feasible system reported infeasible")
	}
	checkSatisfies(t, sys, y)
}

func TestFMInfeasible(t *testing.T) {
	// y ≥ 2 and y ≤ 1.
	sys := NewSystem(1).
		Add(rvec(1), rat.FromInt(2), false).
		Add(rvec(-1), rat.FromInt(-1), false)
	if _, ok := sys.Feasible(); ok {
		t.Error("infeasible system reported feasible")
	}
}

func TestFMStrict(t *testing.T) {
	// y > 0 and y ≤ 0 is infeasible; y ≥ 0 and y ≤ 0 is feasible (y = 0).
	strict := NewSystem(1).
		Add(rvec(1), rat.Zero(), true).
		Add(rvec(-1), rat.Zero(), false)
	if _, ok := strict.Feasible(); ok {
		t.Error("y>0 ∧ y≤0 reported feasible")
	}
	weak := NewSystem(1).
		Add(rvec(1), rat.Zero(), false).
		Add(rvec(-1), rat.Zero(), false)
	y, ok := weak.Feasible()
	if !ok || !y[0].IsZero() {
		t.Errorf("y≥0 ∧ y≤0: got %v ok=%v", y, ok)
	}
}

func TestFMWitnessStrictness(t *testing.T) {
	// The witness must satisfy strict constraints strictly:
	// y1 > 0, y2 > 0, y1 + y2 < 1.
	sys := NewSystem(2).
		Add(rvec(1, 0), rat.Zero(), true).
		Add(rvec(0, 1), rat.Zero(), true).
		Add(rvec(-1, -1), rat.FromInt(-1), true)
	y, ok := sys.Feasible()
	if !ok {
		t.Fatal("open triangle reported infeasible")
	}
	checkSatisfies(t, sys, y)
}

func TestFMEqualityViaTwoInequalities(t *testing.T) {
	// y1 = y2 (two inequalities), y1 ≥ 3: witness on the diagonal.
	sys := NewSystem(2).
		Add(rvec(1, -1), rat.Zero(), false).
		Add(rvec(-1, 1), rat.Zero(), false).
		Add(rvec(1, 0), rat.FromInt(3), false)
	y, ok := sys.Feasible()
	if !ok {
		t.Fatal("diagonal system infeasible")
	}
	checkSatisfies(t, sys, y)
	if !y[0].Eq(y[1]) {
		t.Errorf("witness %v not on diagonal", y)
	}
}

func TestFMThreeVariables(t *testing.T) {
	// Cone: y1 ≥ y2 ≥ y3 ≥ 0 with y3 ≥ 1. Feasible; and adding y1 < y3
	// makes it infeasible.
	sys := NewSystem(3).
		Add(rvec(1, -1, 0), rat.Zero(), false).
		Add(rvec(0, 1, -1), rat.Zero(), false).
		Add(rvec(0, 0, 1), rat.One(), false)
	y, ok := sys.Feasible()
	if !ok {
		t.Fatal("chain cone infeasible")
	}
	checkSatisfies(t, sys, y)
	sys.Add(rvec(-1, 0, 1), rat.Zero(), true)
	if _, ok := sys.Feasible(); ok {
		t.Error("contradictory chain reported feasible")
	}
}

func checkSatisfies(t *testing.T, sys *System, y rat.Vec) {
	t.Helper()
	for _, c := range sys.Constraints {
		v := c.A.Dot(y).Sub(c.B)
		if c.Strict && v.Sign() <= 0 {
			t.Errorf("witness %v violates strict %s (value %s)", y, c, v)
		}
		if !c.Strict && v.Sign() < 0 {
			t.Errorf("witness %v violates %s (value %s)", y, c, v)
		}
	}
}

// fig8a builds the 2D arrangement of Fig 8a: two parallel diagonal
// hyperplanes (x1 − x2 ≥ 1 and x1 − x2 ≥ −3) and one "sum" hyperplane
// (x1 + x2 ≥ 4), creating exactly five realized regions: two finite, two
// determined eventual, and one under-determined eventual diagonal band.
func fig8a() *Arrangement {
	return NewArrangement(2,
		[]vec.V{vec.New(1, -1), vec.New(1, -1), vec.New(1, 1)},
		[]int64{1, -3, 4},
	)
}

func TestFig8aCensus(t *testing.T) {
	arr := fig8a()
	regions := arr.Census(14)
	if len(regions) != 5 {
		for _, r := range regions {
			t.Logf("%v", r)
		}
		t.Fatalf("census found %d regions, want 5 (Fig 8a)", len(regions))
	}
	var determined, underdet, eventual, finite int
	for _, r := range regions {
		if r.IsEventual() {
			eventual++
			if r.IsDetermined() {
				determined++
			} else {
				underdet++
			}
		} else {
			finite++
		}
	}
	if determined != 2 || underdet != 1 || finite != 2 {
		t.Errorf("determined=%d underdet=%d finite=%d; want 2/1/2", determined, underdet, finite)
	}
}

func TestFig8aReccDims(t *testing.T) {
	arr := fig8a()
	regions := arr.Census(14)
	for _, r := range regions {
		switch {
		case !r.IsEventual():
			if r.ReccDim() == 2 {
				t.Errorf("finite region %s has full-dimensional cone", r.Key())
			}
		case r.IsDetermined():
			if r.ReccDim() != 2 {
				t.Errorf("determined region %s has cone dim %d", r.Key(), r.ReccDim())
			}
		default:
			// The diagonal band: 1D recession cone along (1,1).
			if r.ReccDim() != 1 {
				t.Errorf("band region %s has cone dim %d, want 1", r.Key(), r.ReccDim())
			}
			dir, ok := r.PositiveDirection()
			if !ok {
				t.Fatal("eventual band has no positive direction")
			}
			if dir[0] != dir[1] || dir[0] < 1 {
				t.Errorf("band direction %v not on the positive diagonal", dir)
			}
		}
	}
}

func TestFig8aNeighbors(t *testing.T) {
	arr := fig8a()
	regions := arr.Census(14)
	var band *Region
	var determined []*Region
	for _, r := range regions {
		if r.IsEventual() && !r.IsDetermined() {
			band = r
		} else if r.IsDetermined() {
			determined = append(determined, r)
		}
	}
	if band == nil {
		t.Fatal("no under-determined eventual region")
	}
	// Corollary 7.19: at least 2 determined neighbors.
	var neighbors int
	for _, d := range determined {
		if d.IsNeighborOf(band) {
			neighbors++
		}
	}
	if neighbors < 2 {
		t.Errorf("band has %d determined neighbors, want ≥ 2 (Cor 7.19)", neighbors)
	}
	// A region is always a neighbor of itself (recc(U) ⊆ recc(U)).
	if !band.IsNeighborOf(band) {
		t.Error("region not neighbor of itself")
	}
	// The determined regions are not neighbors of each other (their cones
	// are full-dimensional and distinct).
	if determined[0].IsNeighborOf(determined[1]) {
		t.Error("distinct determined regions reported as neighbors")
	}
}

func TestFig8aStrips(t *testing.T) {
	arr := fig8a()
	regions := arr.Census(14)
	for _, r := range regions {
		if !r.IsEventual() || r.IsDetermined() {
			continue
		}
		strips := r.Strips()
		// The band x1 − x2 ∈ {−3..0}: strips are the diagonals
		// x1 − x2 = const (4 of them), per Lemma 7.15 finitely many.
		if len(strips) != 4 {
			t.Errorf("band has %d strips, want 4", len(strips))
		}
		for _, pts := range strips {
			base := pts[0]
			for _, p := range pts[1:] {
				d := p.Sub(base)
				if d[0] != d[1] {
					t.Errorf("strip contains non-diagonal displacement %v", d)
				}
			}
		}
	}
}

// fig8c builds a 3D arrangement structurally matching Fig 8c: two pairs of
// parallel hyperplanes creating nine eventual regions with recession cones
// of dimensions 1, 2 and 3.
func fig8c() *Arrangement {
	return NewArrangement(3,
		[]vec.V{
			vec.New(1, -1, 0), vec.New(1, -1, 0),
			vec.New(1, 0, -1), vec.New(1, 0, -1),
		},
		[]int64{3, -2, 3, -2},
	)
}

func TestFig8cCensus(t *testing.T) {
	arr := fig8c()
	regions := arr.Census(12)
	if len(regions) != 9 {
		t.Fatalf("census found %d regions, want 9 (Fig 8c)", len(regions))
	}
	dims := map[int]int{}
	for _, r := range regions {
		if !r.IsEventual() {
			t.Errorf("region %s not eventual", r.Key())
		}
		dims[r.ReccDim()]++
	}
	// Center region: 1D cone; four edge regions: 2D; four corners: 3D.
	if dims[1] != 1 || dims[2] != 4 || dims[3] != 4 {
		t.Errorf("cone dimension census = %v, want map[1:1 2:4 3:4]", dims)
	}
}

func TestFig8cNeighborHierarchy(t *testing.T) {
	arr := fig8c()
	regions := arr.Census(12)
	var center *Region
	for _, r := range regions {
		if r.ReccDim() == 1 {
			center = r
		}
	}
	if center == nil {
		t.Fatal("no 1D-cone region")
	}
	// Lemma 7.18 flavor: the center's cone is included in cones of higher
	// dimension; every region of this arrangement is a neighbor of the
	// center (its cone is the shared diagonal ray).
	for _, r := range regions {
		if !r.IsNeighborOf(center) {
			t.Errorf("region %s (dim %d) is not a neighbor of the center", r.Key(), r.ReccDim())
		}
	}
	// Determined neighbors exist (Corollary 7.19).
	var det int
	for _, r := range regions {
		if r.IsDetermined() && r.IsNeighborOf(center) {
			det++
		}
	}
	if det < 2 {
		t.Errorf("center has %d determined neighbors, want ≥ 2", det)
	}
}

func TestArrangementDedup(t *testing.T) {
	// a·x ≥ b and its negation define the same hyperplane and must dedup;
	// so must scaled copies.
	arr := NewArrangement(2,
		[]vec.V{vec.New(1, -1), vec.New(-1, 1), vec.New(2, -2)},
		[]int64{1, 0, 2},
	)
	// x1-x2 ≥ 1 → hyperplane 2x1-2x2 = 1; -(x1-x2) ≥ 0 → -2x1+2x2 = -1,
	// i.e. the same hyperplane; 2x1-2x2 ≥ 2 → 4x-4y = 3, distinct.
	if arr.Len() != 2 {
		t.Errorf("dedup kept %d hyperplanes, want 2", arr.Len())
	}
}

func TestSignatureNeverZero(t *testing.T) {
	arr := fig8a()
	vec.Grid(vec.Zero(2), vec.Const(2, 9), func(x vec.V) bool {
		s := arr.SignatureAt(x) // panics on zero
		if len(s) != arr.Len() {
			t.Fatalf("signature length %d", len(s))
		}
		return true
	})
}

func TestRegionOfConsistency(t *testing.T) {
	arr := fig8a()
	regions := arr.Census(10)
	vec.Grid(vec.Zero(2), vec.Const(2, 10), func(x vec.V) bool {
		r := RegionOf(regions, x)
		if r == nil {
			t.Fatalf("no region contains %v", x)
			return false
		}
		if signKey(arr.SignatureAt(x)) != r.Key() {
			t.Fatalf("region key mismatch at %v", x)
		}
		return true
	})
}

func TestWBasisSpansCone(t *testing.T) {
	arr := fig8a()
	for _, r := range arr.Census(14) {
		if !r.IsEventual() || r.IsDetermined() {
			continue
		}
		basis := r.WBasis()
		if len(basis) != r.ReccDim() {
			t.Errorf("W basis size %d ≠ cone dim %d", len(basis), r.ReccDim())
		}
		// The positive direction must lie in W.
		dir, _ := r.PositiveDirection()
		proj := ProjectInt(dir, basis)
		if !proj.Eq(rat.VecFromInts(dir)) {
			t.Errorf("cone direction %v not in its own span", dir)
		}
	}
}

// ProjectInt projects an integer vector onto the span of basis.
func ProjectInt(x vec.V, basis []rat.Vec) rat.Vec {
	return rat.ProjectOnto(rat.VecFromInts(x), basis)
}
