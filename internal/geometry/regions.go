package geometry

import (
	"fmt"
	"sort"
	"strings"

	"crncompose/internal/rat"
	"crncompose/internal/vec"
)

// Arrangement is a set of threshold hyperplanes H_i = {x : T_i·x = H_i} in
// R^d, normalized so that no hyperplane contains an integer point (Section
// 7.2: the threshold t·x ≥ h is rewritten 2t·x > 2h−1, and 2t·x is even
// while 2h−1 is odd). The hyperplanes partition N^d into regions indexed by
// sign vectors.
type Arrangement struct {
	D int
	T []vec.V // T[i] is the (doubled) normal of hyperplane i
	H []int64 // H[i] is the (doubled, odd) offset
}

// NewArrangement builds an arrangement from raw threshold atoms (a·x ≥ b),
// applying the integer-point-free normalization and deduplicating
// hyperplanes that define the same partition (±(t, h) pairs and exact
// duplicates).
func NewArrangement(d int, normals []vec.V, offsets []int64) *Arrangement {
	if len(normals) != len(offsets) {
		panic("geometry: normals/offsets length mismatch")
	}
	arr := &Arrangement{D: d}
	seen := make(map[string]bool)
	for i, a := range normals {
		if len(a) != d {
			panic(fmt.Sprintf("geometry: normal %d has arity %d, want %d", i, len(a), d))
		}
		t := a.Scale(2)
		h := 2*offsets[i] - 1
		if t.IsZero() {
			continue // trivial (always true or always false); no hyperplane
		}
		key := canonicalHyperplane(t, h)
		if seen[key] {
			continue
		}
		seen[key] = true
		arr.T = append(arr.T, t)
		arr.H = append(arr.H, h)
	}
	return arr
}

func canonicalHyperplane(t vec.V, h int64) string {
	// Normalize by gcd of all coefficients and h, and by leading sign, so
	// (t,h) and (−t,−h) collide.
	g := int64(0)
	for _, x := range t {
		g = rat.GCD(g, x)
	}
	g = rat.GCD(g, h)
	if g == 0 {
		g = 1
	}
	tt := make(vec.V, len(t))
	for i := range t {
		tt[i] = t[i] / g
	}
	hh := h / g
	// Leading sign: first nonzero coefficient positive.
	for _, x := range tt {
		if x != 0 {
			if x < 0 {
				tt = tt.Scale(-1)
				hh = -hh
			}
			break
		}
	}
	return tt.Key() + "|" + fmt.Sprint(hh)
}

// Len returns the number of hyperplanes.
func (arr *Arrangement) Len() int { return len(arr.T) }

// SignatureAt returns the sign vector of x: s_i = sign(T_i·x − H_i), which
// is never zero for integer x by the normalization.
func (arr *Arrangement) SignatureAt(x vec.V) []int {
	s := make([]int, len(arr.T))
	for i := range arr.T {
		v := arr.T[i].Dot(x) - arr.H[i]
		if v > 0 {
			s[i] = 1
		} else if v < 0 {
			s[i] = -1
		} else {
			panic(fmt.Sprintf("geometry: integer point %v lies on hyperplane %d", x, i))
		}
	}
	return s
}

// Region is the set {x ∈ R^d≥0 : S(Tx − h) ≥ 0} induced by a sign matrix
// (Definition 7.2), together with the integer sample points that realized
// it during the census.
type Region struct {
	Arr    *Arrangement
	Signs  []int
	Points []vec.V // integer witnesses found by the census, ascending lex

	// cached analysis
	reccDim    int
	eventual   bool
	implicit   []int // indices into cone rows that are implicit equalities
	coneRows   []rat.Vec
	analyzed   bool
	wBasis     []rat.Vec
	positiveIn rat.Vec // a witness y ∈ recc with y ≥ 1, nil if not eventual
}

// Key returns a canonical string for the sign vector.
func (r *Region) Key() string { return signKey(r.Signs) }

func signKey(s []int) string {
	var sb strings.Builder
	for _, v := range s {
		if v > 0 {
			sb.WriteByte('+')
		} else {
			sb.WriteByte('-')
		}
	}
	return sb.String()
}

// Contains reports whether the integer point x lies in this region.
func (r *Region) Contains(x vec.V) bool {
	for i := range r.Arr.T {
		v := r.Arr.T[i].Dot(x) - r.Arr.H[i]
		if (v > 0) != (r.Signs[i] > 0) {
			return false
		}
	}
	return x.Nonnegative()
}

// Census enumerates the regions realized by integer points in [0, bound]^d,
// returning them keyed and sorted by sign vector for determinism.
func (arr *Arrangement) Census(bound int64) []*Region {
	byKey := make(map[string]*Region)
	vec.Grid(vec.Zero(arr.D), vec.Const(arr.D, bound), func(x vec.V) bool {
		s := arr.SignatureAt(x)
		k := signKey(s)
		reg, ok := byKey[k]
		if !ok {
			reg = &Region{Arr: arr, Signs: s}
			byKey[k] = reg
		}
		reg.Points = append(reg.Points, x.Clone())
		return true
	})
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Region, len(keys))
	for i, k := range keys {
		out[i] = byKey[k]
	}
	return out
}

// RegionOf returns the region (from a prior census) containing x, or nil.
func RegionOf(regions []*Region, x vec.V) *Region {
	for _, r := range regions {
		if r.Contains(x) {
			return r
		}
	}
	return nil
}

// coneConstraintRows returns the rows m of the recession cone description
// recc(R) = {y : m·y ≥ 0 for all rows}, consisting of s_i·T_i for each
// hyperplane plus the nonnegativity rows e_j.
func (r *Region) coneConstraintRows() []rat.Vec {
	if r.coneRows != nil {
		return r.coneRows
	}
	rows := make([]rat.Vec, 0, len(r.Arr.T)+r.Arr.D)
	for i, t := range r.Arr.T {
		row := rat.VecFromInts(t)
		if r.Signs[i] < 0 {
			row = row.Scale(rat.FromInt(-1))
		}
		rows = append(rows, row)
	}
	for j := 0; j < r.Arr.D; j++ {
		e := rat.ZeroVec(r.Arr.D)
		e[j] = rat.One()
		rows = append(rows, e)
	}
	r.coneRows = rows
	return rows
}

// analyze computes the recession cone dimension, the implicit equality
// rows, a basis for W = span(recc(R)), and the eventual-region witness.
func (r *Region) analyze() {
	if r.analyzed {
		return
	}
	rows := r.coneConstraintRows()
	d := r.Arr.D

	// A row m is an implicit equality iff the system
	// {all rows ≥ 0, m > 0} is infeasible.
	for i, m := range rows {
		sys := NewSystem(d)
		for _, row := range rows {
			sys.AddGeqZero(row)
		}
		sys.Add(m, rat.Zero(), true)
		if _, ok := sys.Feasible(); !ok {
			r.implicit = append(r.implicit, i)
		}
	}
	// dim recc(R) = d − rank(implicit rows); W = nullspace(implicit rows).
	var implRows []rat.Vec
	for _, i := range r.implicit {
		implRows = append(implRows, rows[i])
	}
	if len(implRows) == 0 {
		r.reccDim = d
		r.wBasis = identityBasis(d)
	} else {
		m := rat.Mat(implRows)
		r.reccDim = d - m.Rank()
		r.wBasis = m.NullspaceBasis()
	}
	// Eventual iff recc(R) contains y ≥ 1 componentwise.
	sys := NewSystem(d)
	for _, row := range rows {
		sys.AddGeqZero(row)
	}
	for j := 0; j < d; j++ {
		e := rat.ZeroVec(d)
		e[j] = rat.One()
		sys.Add(e, rat.One(), false)
	}
	if y, ok := sys.Feasible(); ok {
		r.eventual = true
		r.positiveIn = y
	}
	r.analyzed = true
}

// ReccDim returns dim recc(R).
func (r *Region) ReccDim() int {
	r.analyze()
	return r.reccDim
}

// IsDetermined reports dim recc(R) = d (Section 7.3).
func (r *Region) IsDetermined() bool { return r.ReccDim() == r.Arr.D }

// IsEventual reports whether the region is unbounded in all inputs
// (Definition 7.10), decided as recc(R) ∩ {y ≥ 1} ≠ ∅.
func (r *Region) IsEventual() bool {
	r.analyze()
	return r.eventual
}

// PositiveDirection returns a rational vector y ∈ recc(R) with y ≥ 1
// componentwise, scaled to integers. Only valid for eventual regions.
func (r *Region) PositiveDirection() (vec.V, bool) {
	r.analyze()
	if !r.eventual {
		return nil, false
	}
	iv, _ := r.positiveIn.ScaleToInt()
	return iv, true
}

// WBasis returns a basis of the determined subspace W = span(recc(R)).
func (r *Region) WBasis() []rat.Vec {
	r.analyze()
	return r.wBasis
}

// ImplicitRows returns the cone constraint rows that hold with equality on
// all of recc(R). W is their common nullspace.
func (r *Region) ImplicitRows() []rat.Vec {
	r.analyze()
	rows := r.coneConstraintRows()
	out := make([]rat.Vec, len(r.implicit))
	for k, i := range r.implicit {
		out[k] = rows[i]
	}
	return out
}

// IsNeighborOf reports whether r is a neighbor of u: recc(u) ⊆ recc(r)
// (Definition 7.11). Decided exactly: for every cone row m of r, the system
// {y ∈ recc(u), m·y < 0} must be infeasible.
func (r *Region) IsNeighborOf(u *Region) bool {
	uRows := u.coneConstraintRows()
	for _, m := range r.coneConstraintRows() {
		sys := NewSystem(r.Arr.D)
		for _, row := range uRows {
			sys.AddGeqZero(row)
		}
		sys.Add(m.Scale(rat.FromInt(-1)), rat.Zero(), true) // m·y < 0
		if _, ok := sys.Feasible(); ok {
			return false
		}
	}
	return true
}

// StripKey returns the key identifying the strip of x within region u
// (Definition 7.13): x ≡_W y iff x − y ∈ W iff the implicit rows agree on x
// and y. Points of u in the same strip share this key.
func (u *Region) StripKey(x vec.V) string {
	var sb strings.Builder
	for _, m := range u.ImplicitRows() {
		sb.WriteString(m.DotInt(x).String())
		sb.WriteByte('|')
	}
	return sb.String()
}

// Strips partitions the region's census points into strips, keyed
// deterministically, each with its points in census order.
func (u *Region) Strips() map[string][]vec.V {
	out := make(map[string][]vec.V)
	for _, x := range u.Points {
		k := u.StripKey(x)
		out[k] = append(out[k], x)
	}
	return out
}

func identityBasis(d int) []rat.Vec {
	basis := make([]rat.Vec, d)
	for i := 0; i < d; i++ {
		v := rat.ZeroVec(d)
		v[i] = rat.One()
		basis[i] = v
	}
	return basis
}

// String summarizes the region.
func (r *Region) String() string {
	return fmt.Sprintf("region[%s] dim recc=%d eventual=%v points=%d",
		r.Key(), r.ReccDim(), r.IsEventual(), len(r.Points))
}
