// Package httpx is the retry client every cross-process HTTP call in this
// module goes through (the dist worker's join/lease/renew/result calls, the
// serve plane's distributed handoff). It exists so failure handling is in
// one place with one policy instead of per-call-site ad hoc loops:
//
//   - exponential backoff with full jitter between attempts (each delay is
//     drawn uniformly from [0, min(MaxDelay, BaseDelay·2^attempt)) — the
//     AWS "full jitter" scheme, which decorrelates retry storms from many
//     clients hitting one recovering server);
//   - a retry budget: MaxAttempts bounds the attempt count, Budget bounds
//     the total wall-clock time spent retrying, and the context bounds
//     everything — whichever trips first ends the call;
//   - per-attempt timeouts (AttemptTimeout), so one hung connection costs
//     one attempt, not the whole budget;
//   - non-retryable classification: a 4xx response is the server saying
//     the request itself is wrong (unknown endpoint, protocol mismatch,
//     malformed body) — retrying it can only burn the budget, so the call
//     fails immediately with a *StatusError the caller can inspect. 5xx,
//     408, 429, transport errors, and truncated/undecodable response
//     bodies are transient by assumption and retried.
//
// The zero value of Client is usable: it retries DefaultMaxAttempts times
// against a shared default http.Client.
package httpx

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strings"
	"time"

	"crncompose/internal/trace"
)

// Defaults for Client zero values.
const (
	DefaultMaxAttempts = 4
	DefaultBaseDelay   = 50 * time.Millisecond
	DefaultMaxDelay    = 2 * time.Second
)

// defaultHTTP is the shared transport used when Client.HTTP is nil. The
// 30-second timeout is a last-resort cap per attempt; callers who care set
// AttemptTimeout themselves.
var defaultHTTP = &http.Client{Timeout: 30 * time.Second}

// Client is a retrying JSON-over-HTTP client. The zero value works; fields
// tune the retry policy. Clients are cheap value types — copy one and tweak
// the copy to vary the policy per call site.
type Client struct {
	// HTTP performs each individual attempt (nil = a shared default client
	// with a 30s timeout).
	HTTP *http.Client
	// MaxAttempts bounds how many times the request is tried in total.
	// 0 means DefaultMaxAttempts; negative means unlimited — bounded only
	// by Budget and the context, one of which should then be finite.
	MaxAttempts int
	// BaseDelay and MaxDelay bound the backoff: the delay before retry n is
	// uniform in [0, min(MaxDelay, BaseDelay·2^n)). Zero values pick
	// DefaultBaseDelay/DefaultMaxDelay.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// AttemptTimeout, when positive, caps each attempt (a per-attempt
	// context deadline); a timed-out attempt is retryable. Zero relies on
	// HTTP's own Timeout.
	AttemptTimeout time.Duration
	// Budget, when positive, caps the total wall-clock time the call may
	// spend across attempts and backoff sleeps, measured from the first
	// attempt. The call never starts a sleep it cannot finish inside the
	// budget; the last transient error is returned wrapped.
	Budget time.Duration
	// Rand draws jitter: a uniform int64 in [0, n). Nil uses math/rand/v2.
	// Injectable so tests can pin backoff schedules.
	Rand func(n int64) int64
	// Logf, when non-nil, receives one line per retried failure and one
	// line when the call gives up (attempts or budget exhausted).
	Logf func(format string, args ...any)
	// Metrics, when non-nil, records per-attempt counters and latency
	// histograms plus a give-up counter on a shared metrics registry.
	// Nil-safe like Logf: the zero Client records nothing.
	Metrics *Metrics
	// Tracer, when non-nil, opens one client span per attempt (named
	// "httpx.attempt", with method/url/attempt/outcome attributes),
	// parented under the span context carried by the call's ctx. Whether
	// or not a tracer is set, an active context is propagated to the
	// server as a W3C traceparent header on every attempt — the link that
	// stitches one trace across processes.
	Tracer *trace.Tracer
}

// StatusError is a non-2xx HTTP response, carrying enough of the reply to
// classify and report it. Retryable responses (5xx, 408, 429) are retried
// by Client before one of these escapes; a StatusError returned to the
// caller therefore almost always means a client-side error the server
// rejected deliberately.
type StatusError struct {
	Method     string
	URL        string
	StatusCode int
	Status     string // e.g. "404 Not Found"
	Body       string // first bytes of the response body
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("%s %s: %s: %s", e.Method, e.URL, e.Status, e.Body)
}

// StatusCode returns the HTTP status carried by err (through any
// wrapping), or 0 when err holds no *StatusError — i.e. the failure
// never got a response: transport error, timeout, truncated body.
func StatusCode(err error) int {
	var se *StatusError
	if errors.As(err, &se) {
		return se.StatusCode
	}
	return 0
}

// Retryable reports whether err is worth retrying: transport errors,
// truncated bodies, and 5xx/408/429 responses are; any other HTTP status
// (the server understood the request and rejected it) is not. Context
// errors are handled by the retry loop itself, not classified here.
func Retryable(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return se.StatusCode >= 500 ||
			se.StatusCode == http.StatusRequestTimeout ||
			se.StatusCode == http.StatusTooManyRequests
	}
	return true
}

// GetJSON fetches url and decodes the JSON response into out, retrying
// under the client's policy.
func (c *Client) GetJSON(ctx context.Context, url string, out any) error {
	return c.doJSON(ctx, http.MethodGet, url, nil, out)
}

// PostJSON posts in as JSON to url and decodes the JSON response into out,
// retrying under the client's policy. Note the request is re-sent on every
// retry: the server may have committed an attempt whose response was lost,
// so POSTed operations must be idempotent (the dist protocol's /result and
// /renew are by design).
func (c *Client) PostJSON(ctx context.Context, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.doJSON(ctx, http.MethodPost, url, body, out)
}

// Raw captures a response verbatim when passed as the out argument of
// GetJSON/PostJSON (or via the GetRaw/PostRaw helpers): the exact body
// bytes and the response headers, with no JSON decoding. It exists for
// the byte-identity consumers — callers that diff a served body against
// a locally computed one, or read cache markers like X-Cache — so that
// they too go through the retry/fault model instead of a bare
// *http.Client (the crnlint httpx analyzer enforces this).
type Raw struct {
	Body   []byte
	Header http.Header
}

// GetRaw fetches url and returns the verbatim response, retrying under
// the client's policy.
func (c *Client) GetRaw(ctx context.Context, url string) (Raw, error) {
	var r Raw
	err := c.doJSON(ctx, http.MethodGet, url, nil, &r)
	return r, err
}

// PostRaw posts in as JSON to url and returns the verbatim response,
// retrying under the client's policy (the PostJSON idempotency caveat
// applies).
func (c *Client) PostRaw(ctx context.Context, url string, in any) (Raw, error) {
	var r Raw
	err := c.PostJSON(ctx, url, in, &r)
	return r, err
}

// doJSON is the retry loop shared by GetJSON/PostJSON.
func (c *Client) doJSON(ctx context.Context, method, url string, body []byte, out any) error {
	httpc := c.HTTP
	if httpc == nil {
		httpc = defaultHTTP
	}
	maxAttempts := c.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = DefaultMaxAttempts
	}
	var deadline time.Time
	if c.Budget > 0 {
		deadline = time.Now().Add(c.Budget)
	}
	// parent is the span context carried by the caller's ctx; it parents
	// the per-attempt client spans and is the traceparent sent when no
	// tracer is configured. traceTag lands in every retry/give-up log line
	// so a trace ID in the logs can be looked up in /debug/traces.
	parent := trace.FromContext(ctx)
	var traceTag string
	if parent.Valid() {
		traceTag = " trace=" + parent.TraceID.String()
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		attemptStart := time.Now()
		sp := c.Tracer.StartSpan(attemptStart, "httpx.attempt", parent,
			trace.String("method", method),
			trace.String("url", url),
			trace.Int("attempt", int64(attempt+1)))
		hdr := parent
		if sp != nil {
			hdr = sp.Context()
		}
		err := c.attempt(ctx, httpc, method, url, body, out, hdr)
		elapsed := time.Since(attemptStart)
		endAttemptSpan(sp, attemptStart.Add(elapsed), err)
		c.Metrics.recordAttempt(method, elapsed, err)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			// The caller's context ended (possibly mid-attempt); that ends
			// the call regardless of classification or remaining budget.
			return fmt.Errorf("httpx: %s %s: %w", method, url, ctx.Err())
		}
		if !Retryable(err) {
			return err
		}
		lastErr = err
		if maxAttempts > 0 && attempt+1 >= maxAttempts {
			c.Metrics.recordGiveUp(method)
			if c.Logf != nil {
				c.Logf("httpx: %s %s giving up after %d attempts (last attempt took %s, status %d)%s: %v",
					method, url, attempt+1, elapsed, StatusCode(lastErr), traceTag, lastErr)
			}
			return fmt.Errorf("httpx: %s %s failed after %d attempts: %w", method, url, attempt+1, lastErr)
		}
		d := c.backoff(attempt)
		if !deadline.IsZero() && time.Now().Add(d).After(deadline) {
			c.Metrics.recordGiveUp(method)
			if c.Logf != nil {
				c.Logf("httpx: %s %s giving up, retry budget %s exhausted after %d attempts (last attempt took %s, status %d)%s: %v",
					method, url, c.Budget, attempt+1, elapsed, StatusCode(lastErr), traceTag, lastErr)
			}
			return fmt.Errorf("httpx: %s %s: retry budget %s exhausted after %d attempts: %w", method, url, c.Budget, attempt+1, lastErr)
		}
		if c.Logf != nil {
			c.Logf("httpx: %s %s attempt %d failed in %s: %v (retrying in %s)%s", method, url, attempt+1, elapsed, err, d, traceTag)
		}
		if !sleepCtx(ctx, d) {
			return fmt.Errorf("httpx: %s %s: %w", method, url, ctx.Err())
		}
	}
}

// endAttemptSpan closes a per-attempt client span with its classified
// outcome: "ok", "retryable" (the loop will back off and try again unless
// the budget trips), or "fatal" (a non-retryable rejection). Nil-safe.
func endAttemptSpan(sp *trace.Span, end time.Time, err error) {
	if sp == nil {
		return
	}
	outcome := "ok"
	switch {
	case err == nil:
	case Retryable(err):
		outcome = "retryable"
	default:
		outcome = "fatal"
	}
	if code := StatusCode(err); code != 0 {
		sp.SetAttr("status", fmt.Sprintf("%d", code))
	}
	sp.End(end, trace.String("outcome", outcome))
}

// attempt performs one request/response cycle. A valid sc is sent as the
// W3C traceparent header so the server joins the caller's trace.
func (c *Client) attempt(ctx context.Context, httpc *http.Client, method, url string, body []byte, out any, sc trace.SpanContext) error {
	actx := ctx
	if c.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.AttemptTimeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if sc.Valid() {
		req.Header.Set("traceparent", sc.Traceparent())
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &StatusError{
			Method:     method,
			URL:        url,
			StatusCode: resp.StatusCode,
			Status:     resp.Status,
			Body:       strings.TrimSpace(string(msg)),
		}
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if r, ok := out.(*Raw); ok {
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			// Same classification as a garbled JSON body below: a 2xx whose
			// body cannot be read is a transport failure; retryable.
			return fmt.Errorf("reading %s %s response: %w", method, url, err)
		}
		r.Body = b
		r.Header = resp.Header.Clone()
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		// A truncated or garbled body on a 2xx response is a transport-layer
		// failure (the fault-injection layer's dropped-mid-body case lands
		// here); retryable.
		return fmt.Errorf("decoding %s %s response: %w", method, url, err)
	}
	return nil
}

// backoff returns the full-jitter delay before retry number attempt.
func (c *Client) backoff(attempt int) time.Duration {
	base := c.BaseDelay
	if base <= 0 {
		base = DefaultBaseDelay
	}
	maxD := c.MaxDelay
	if maxD <= 0 {
		maxD = DefaultMaxDelay
	}
	cap := maxD
	if attempt < 30 { // past 2^30·base everything clamps to maxD anyway
		if d := base << attempt; d < maxD {
			cap = d
		}
	}
	if cap <= 0 {
		return 0
	}
	draw := c.Rand
	if draw == nil {
		draw = rand.Int64N
	}
	return time.Duration(draw(int64(cap)))
}

// sleepCtx sleeps for d, reporting false if ctx ended first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
