package httpx

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// noDelay removes real sleeps from retry tests.
func noDelay(int64) int64 { return 0 }

// TestSuccessFirstAttempt: a healthy server costs exactly one request.
func TestSuccessFirstAttempt(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		_, _ = w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()
	c := &Client{Rand: noDelay}
	var out struct {
		OK bool `json:"ok"`
	}
	if err := c.GetJSON(context.Background(), ts.URL, &out); err != nil {
		t.Fatal(err)
	}
	if !out.OK || hits.Load() != 1 {
		t.Fatalf("out=%+v hits=%d", out, hits.Load())
	}
}

// TestRetriesTransient5xx: 5xx responses are retried until the server
// recovers, and the eventual success decodes normally.
func TestRetriesTransient5xx(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		_, _ = w.Write([]byte(`{"n":7}`))
	}))
	defer ts.Close()
	c := &Client{MaxAttempts: 5, Rand: noDelay}
	var out struct {
		N int `json:"n"`
	}
	if err := c.PostJSON(context.Background(), ts.URL, map[string]int{"x": 1}, &out); err != nil {
		t.Fatal(err)
	}
	if out.N != 7 || hits.Load() != 3 {
		t.Fatalf("out=%+v hits=%d", out, hits.Load())
	}
}

// Test4xxFailsFast: a 4xx is the server rejecting the request itself —
// exactly one attempt, and the error carries the status and body for the
// caller to classify.
func Test4xxFailsFast(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "no such endpoint", http.StatusNotFound)
	}))
	defer ts.Close()
	c := &Client{MaxAttempts: 10, Rand: noDelay}
	err := c.GetJSON(context.Background(), ts.URL+"/nope", new(struct{}))
	if err == nil {
		t.Fatal("404 succeeded")
	}
	var se *StatusError
	if !errors.As(err, &se) || se.StatusCode != http.StatusNotFound {
		t.Fatalf("err = %v, want *StatusError 404", err)
	}
	if Retryable(err) {
		t.Fatal("404 classified retryable")
	}
	if hits.Load() != 1 {
		t.Fatalf("4xx was retried: %d attempts", hits.Load())
	}
}

// TestAttemptsExhausted: a dead address fails after exactly MaxAttempts,
// wrapping the last transport error.
func TestAttemptsExhausted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close() // nothing listens here anymore
	c := &Client{MaxAttempts: 3, Rand: noDelay}
	err := c.GetJSON(context.Background(), url, new(struct{}))
	if err == nil {
		t.Fatal("dead server succeeded")
	}
	if !Retryable(err) {
		// The wrapper must not hide the transient classification.
		t.Fatalf("exhausted-attempts error classified non-retryable: %v", err)
	}
}

// TestBudgetExhausted: with unlimited attempts, the wall-clock budget ends
// the call; the error names the budget.
func TestBudgetExhausted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "always down", http.StatusBadGateway)
	}))
	defer ts.Close()
	c := &Client{
		MaxAttempts: -1,
		Budget:      100 * time.Millisecond,
		BaseDelay:   20 * time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
		Rand:        func(n int64) int64 { return n - 1 }, // full delay every time
	}
	start := time.Now()
	err := c.GetJSON(context.Background(), ts.URL, new(struct{}))
	if err == nil {
		t.Fatal("always-down server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("budget did not bound the call: %s", elapsed)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.StatusCode != http.StatusBadGateway {
		t.Fatalf("budget error does not wrap the last failure: %v", err)
	}
}

// TestContextCancelDuringRetries: canceling the context ends the loop
// immediately with a context error.
func TestContextCancelDuringRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	c := &Client{MaxAttempts: -1, BaseDelay: 10 * time.Millisecond, MaxDelay: 10 * time.Millisecond}
	err := c.GetJSON(ctx, ts.URL, new(struct{}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestAttemptTimeoutIsRetryable: a hung attempt costs one attempt, not the
// call — the per-attempt deadline fires, the next attempt succeeds.
func TestAttemptTimeoutIsRetryable(t *testing.T) {
	var hits atomic.Int64
	release := make(chan struct{})
	defer close(release)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			select { // hang the first attempt until the test ends
			case <-release:
			case <-r.Context().Done():
			}
			return
		}
		_, _ = w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()
	c := &Client{MaxAttempts: 3, AttemptTimeout: 50 * time.Millisecond, Rand: noDelay}
	var out struct {
		OK bool `json:"ok"`
	}
	if err := c.GetJSON(context.Background(), ts.URL, &out); err != nil {
		t.Fatal(err)
	}
	if !out.OK || hits.Load() != 2 {
		t.Fatalf("out=%+v hits=%d", out, hits.Load())
	}
}

// TestTruncatedBodyRetryable: a 2xx whose body does not decode is treated
// as a transport failure and retried.
func TestTruncatedBodyRetryable(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			_, _ = w.Write([]byte(`{"ok": tr`)) // cut mid-token
			return
		}
		_, _ = w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()
	c := &Client{MaxAttempts: 3, Rand: noDelay}
	var out struct {
		OK bool `json:"ok"`
	}
	if err := c.GetJSON(context.Background(), ts.URL, &out); err != nil {
		t.Fatal(err)
	}
	if !out.OK || hits.Load() != 2 {
		t.Fatalf("out=%+v hits=%d", out, hits.Load())
	}
}

// TestBackoffFullJitter: delays are uniform in [0, min(MaxDelay,
// Base·2^n)) — pin the cap sequence with a max-drawing Rand.
func TestBackoffFullJitter(t *testing.T) {
	c := &Client{
		BaseDelay: 10 * time.Millisecond,
		MaxDelay:  80 * time.Millisecond,
		Rand:      func(n int64) int64 { return n - 1 },
	}
	want := []time.Duration{
		10*time.Millisecond - 1, // attempt 0: cap = base
		20*time.Millisecond - 1,
		40*time.Millisecond - 1,
		80*time.Millisecond - 1, // clamped to MaxDelay
		80*time.Millisecond - 1, // stays clamped
	}
	for i, w := range want {
		if got := c.backoff(i); got != w {
			t.Fatalf("backoff(%d) = %s, want %s", i, got, w)
		}
	}
	// Huge attempt numbers must not overflow the shift.
	if got := c.backoff(500); got != 80*time.Millisecond-1 {
		t.Fatalf("backoff(500) = %s", got)
	}
}

// TestRawCapturesVerbatim: the Raw sink returns the exact body bytes and
// headers — no JSON decoding — and still rides the retry loop (first
// attempt 500, second succeeds).
func TestRawCapturesVerbatim(t *testing.T) {
	body := "{\n  \"pretty\": true\n}\n" // whitespace must survive untouched
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			http.Error(w, "warming up", http.StatusInternalServerError)
			return
		}
		w.Header().Set("X-Cache", "hit")
		_, _ = w.Write([]byte(body))
	}))
	defer ts.Close()
	c := &Client{Rand: noDelay}
	raw, err := c.PostRaw(context.Background(), ts.URL, map[string]int{"x": 1})
	if err != nil {
		t.Fatal(err)
	}
	if string(raw.Body) != body {
		t.Fatalf("body %q, want %q", raw.Body, body)
	}
	if got := raw.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("X-Cache %q, want %q", got, "hit")
	}
	if hits.Load() != 2 {
		t.Fatalf("hits = %d, want 2 (one retried 500)", hits.Load())
	}
}

// TestRawStatusError: a non-2xx still surfaces as a StatusError, not a
// Raw capture.
func TestRawStatusError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	}))
	defer ts.Close()
	c := &Client{Rand: noDelay}
	_, err := c.GetRaw(context.Background(), ts.URL)
	var se *StatusError
	if !errors.As(err, &se) || se.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400 StatusError", err)
	}
}
