package httpx

import (
	"time"

	"crncompose/internal/metrics"
)

// Metrics is the client's optional observability seam, registering
// three families on a shared registry:
//
//	crn_httpx_attempts_total{method,outcome}  counter   — every attempt,
//	    outcome ok | retryable | fatal (fatal = the server rejected the
//	    request; Retryable is false and the call fails fast)
//	crn_httpx_attempt_seconds                 histogram — per-attempt latency
//	crn_httpx_giveups_total{method}           counter   — calls that
//	    exhausted MaxAttempts or the retry Budget
//
// All methods are nil-receiver safe, so Client.Metrics can stay nil
// (the zero Client) with no checks at call sites.
type Metrics struct {
	attempts *metrics.CounterVec
	seconds  *metrics.Histogram
	giveups  *metrics.CounterVec
}

// NewMetrics registers the httpx families on r. Registration is
// idempotent on the registry, so several clients can share one
// registry (and one Metrics).
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		attempts: r.CounterVec("crn_httpx_attempts_total",
			"HTTP attempts through the retry client, by method and outcome (ok, retryable, fatal).",
			"method", "outcome"),
		seconds: r.Histogram("crn_httpx_attempt_seconds",
			"Per-attempt latency through the retry client.", metrics.DefBuckets),
		giveups: r.CounterVec("crn_httpx_giveups_total",
			"Calls that exhausted their attempts or retry budget.", "method"),
	}
}

func (m *Metrics) recordAttempt(method string, d time.Duration, err error) {
	if m == nil {
		return
	}
	outcome := "ok"
	if err != nil {
		if Retryable(err) {
			outcome = "retryable"
		} else {
			outcome = "fatal"
		}
	}
	m.attempts.With(method, outcome).Inc()
	m.seconds.Observe(d.Seconds())
}

func (m *Metrics) recordGiveUp(method string) {
	if m == nil {
		return
	}
	m.giveups.With(method).Inc()
}
