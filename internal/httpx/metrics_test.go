package httpx

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"crncompose/internal/metrics"
)

func TestMetricsAndGiveUpLog(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()

	reg := metrics.NewRegistry()
	var logs []string
	c := &Client{
		MaxAttempts: 3,
		BaseDelay:   1,
		MaxDelay:    1,
		Rand:        func(n int64) int64 { return 0 },
		Logf:        func(format string, args ...any) { logs = append(logs, fmt.Sprintf(format, args...)) },
		Metrics:     NewMetrics(reg),
	}
	err := c.GetJSON(context.Background(), srv.URL, nil)
	if err == nil {
		t.Fatalf("expected failure")
	}
	if got := StatusCode(err); got != http.StatusInternalServerError {
		t.Fatalf("StatusCode(err) = %d, want 500", got)
	}

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	exposition := b.String()
	for _, want := range []string{
		`crn_httpx_attempts_total{method="GET",outcome="retryable"} 3`,
		`crn_httpx_giveups_total{method="GET"} 1`,
		`crn_httpx_attempt_seconds_count 3`,
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("missing %q in exposition:\n%s", want, exposition)
		}
	}

	// Two retry lines (attempts 1 and 2) and one give-up line, each
	// carrying the attempt's elapsed duration; the give-up line also
	// carries the final status code.
	if len(logs) != 3 {
		t.Fatalf("got %d log lines, want 3: %q", len(logs), logs)
	}
	for _, l := range logs[:2] {
		if !strings.Contains(l, "failed in ") || !strings.Contains(l, "retrying in") {
			t.Errorf("retry line missing elapsed duration: %q", l)
		}
	}
	giveUp := logs[2]
	if !strings.Contains(giveUp, "giving up after 3 attempts") ||
		!strings.Contains(giveUp, "status 500") ||
		!strings.Contains(giveUp, "last attempt took ") {
		t.Errorf("give-up line missing status/elapsed: %q", giveUp)
	}
}

func TestMetricsOutcomes(t *testing.T) {
	var n int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n++
		switch {
		case strings.HasSuffix(r.URL.Path, "/bad"):
			http.Error(w, "no", http.StatusBadRequest)
		default:
			fmt.Fprint(w, "{}")
		}
	}))
	defer srv.Close()

	reg := metrics.NewRegistry()
	c := &Client{MaxAttempts: 1, Metrics: NewMetrics(reg)}
	if err := c.GetJSON(context.Background(), srv.URL+"/ok", nil); err != nil {
		t.Fatal(err)
	}
	if err := c.GetJSON(context.Background(), srv.URL+"/bad", nil); err == nil {
		t.Fatal("expected 400 to fail")
	}

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`crn_httpx_attempts_total{method="GET",outcome="ok"} 1`,
		`crn_httpx_attempts_total{method="GET",outcome="fatal"} 1`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q in:\n%s", want, b.String())
		}
	}
	// A fatal (4xx) rejection is not a give-up: the family header
	// renders but no GET sample exists.
	if strings.Contains(b.String(), `crn_httpx_giveups_total{`) {
		t.Errorf("unexpected give-up sample:\n%s", b.String())
	}
}
