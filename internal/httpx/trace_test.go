package httpx

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"crncompose/internal/trace"
)

// counterRand gives the tracer deterministic, distinct IDs.
func counterRand() func() uint64 {
	var n uint64
	return func() uint64 { n++; return n }
}

// at is a fixed instant for span timestamps in these tests.
func at(ms int64) time.Time {
	return time.Unix(0, ms*int64(time.Millisecond))
}

func sprintfFor(t *testing.T, format string, args ...any) string {
	t.Helper()
	return fmt.Sprintf(format, args...)
}

func TestTraceparentPropagationAndAttemptSpans(t *testing.T) {
	var calls atomic.Int64
	var gotParents []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotParents = append(gotParents, r.Header.Get("traceparent"))
		if calls.Add(1) < 3 {
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	tr := trace.New(trace.Options{Proc: "test", Rand: counterRand()})
	root := tr.StartSpan(at(0), "root", trace.SpanContext{})

	var logs []string
	c := &Client{
		MaxAttempts: 5,
		BaseDelay:   1,
		MaxDelay:    1,
		Tracer:      tr,
		Logf:        func(format string, args ...any) { logs = append(logs, sprintfFor(t, format, args...)) },
	}
	ctx := trace.ContextSpan(context.Background(), root)
	var out struct{}
	if err := c.PostJSON(ctx, srv.URL, struct{}{}, &out); err != nil {
		t.Fatalf("PostJSON: %v", err)
	}
	root.End(at(10))

	if len(gotParents) != 3 {
		t.Fatalf("server saw %d attempts, want 3", len(gotParents))
	}
	rootID := root.Context().TraceID.String()
	seen := map[string]bool{}
	for i, tp := range gotParents {
		sc, err := trace.ParseTraceparent(tp)
		if err != nil {
			t.Fatalf("attempt %d sent bad traceparent %q: %v", i, tp, err)
		}
		if got := sc.TraceID.String(); got != rootID {
			t.Errorf("attempt %d traceparent trace id = %s, want %s", i, got, rootID)
		}
		if seen[sc.SpanID.String()] {
			t.Errorf("attempt %d reused span id %s", i, sc.SpanID)
		}
		seen[sc.SpanID.String()] = true
	}

	spans := tr.TraceSpans(rootID)
	var attempts []trace.SpanData
	for _, d := range spans {
		if d.Name == "httpx.attempt" {
			attempts = append(attempts, d)
		}
	}
	if len(attempts) != 3 {
		t.Fatalf("recorded %d httpx.attempt spans, want 3: %+v", len(attempts), spans)
	}
	rootSpanID := root.Context().SpanID.String()
	wantOutcome := []string{"retryable", "retryable", "ok"}
	for i, d := range attempts {
		if d.Parent != rootSpanID {
			t.Errorf("attempt span %d parent = %s, want root %s", i, d.Parent, rootSpanID)
		}
		if got := d.Attrs["outcome"]; got != wantOutcome[i] {
			t.Errorf("attempt span %d outcome = %q, want %q", i, got, wantOutcome[i])
		}
	}
	if got := attempts[0].Attrs["status"]; got != "503" {
		t.Errorf("failed attempt status attr = %q, want 503", got)
	}

	// Satellite: the retry log lines carry the active trace id.
	if len(logs) != 2 {
		t.Fatalf("got %d log lines, want 2 retries: %v", len(logs), logs)
	}
	for _, line := range logs {
		if !strings.Contains(line, "trace="+rootID) {
			t.Errorf("retry log line missing trace tag: %q", line)
		}
	}
}

func TestGiveUpLogCarriesTraceID(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	tr := trace.New(trace.Options{Proc: "test", Rand: counterRand()})
	root := tr.StartSpan(at(0), "root", trace.SpanContext{})
	var logs []string
	c := &Client{
		MaxAttempts: 2,
		BaseDelay:   1,
		MaxDelay:    1,
		Tracer:      tr,
		Logf:        func(format string, args ...any) { logs = append(logs, sprintfFor(t, format, args...)) },
	}
	err := c.GetJSON(trace.ContextSpan(context.Background(), root), srv.URL, nil)
	if err == nil {
		t.Fatal("want give-up error")
	}
	var giveUp string
	for _, line := range logs {
		if strings.Contains(line, "giving up") {
			giveUp = line
		}
	}
	if giveUp == "" {
		t.Fatalf("no give-up line in %v", logs)
	}
	if want := "trace=" + root.Context().TraceID.String(); !strings.Contains(giveUp, want) {
		t.Errorf("give-up line %q missing %q", giveUp, want)
	}
}

// TestNoTracerStillPropagates pins the header contract for untraced
// clients: a context span still reaches the server verbatim.
func TestNoTracerStillPropagates(t *testing.T) {
	var got string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get("traceparent")
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	tr := trace.New(trace.Options{Proc: "test", Rand: counterRand()})
	root := tr.StartSpan(at(0), "root", trace.SpanContext{})
	c := &Client{MaxAttempts: 1}
	var out struct{}
	if err := c.GetJSON(trace.ContextSpan(context.Background(), root), srv.URL, &out); err != nil {
		t.Fatalf("GetJSON: %v", err)
	}
	if want := root.Context().Traceparent(); got != want {
		t.Errorf("server saw traceparent %q, want %q", got, want)
	}
}
