package lint

import (
	"fmt"
	"go/ast"
)

// determinismAnalyzer forbids wall clocks and unseeded randomness in the
// engine packages. Every engine verdict must be a pure function of its
// inputs: reading time.Now (or any clock-derived value) or the
// package-global math/rand generators would make replayed runs diverge,
// breaking the byte-identity contract and the content-addressed cache.
//
// Methods on an injected seeded *rand.Rand stay legal — that is the
// sanctioned randomness pattern (sim's Gillespie and randfunc both take
// explicit seeds) — as do clock seams owned by the non-engine layers
// (serve.jobs.now, dist.Coordinator.now), which this analyzer never sees
// because serve and dist are outside the engine set.
var determinismAnalyzer = &Analyzer{
	Name:    "determinism",
	Doc:     "engine packages must not read wall clocks or package-global randomness",
	Applies: isEnginePackage,
	Run:     runDeterminism,
}

// forbiddenTimeFuncs are the clock and timer entry points of package
// time. Referencing any of them — calling or capturing as a value —
// introduces wall-clock dependence.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"Sleep": true,
}

// allowedRandFuncs are the constructors of math/rand and math/rand/v2:
// building an explicitly seeded generator is the sanctioned pattern, and
// everything package-global (rand.IntN, rand.Float64, rand.Shuffle, ...)
// draws from a process-wide implicitly seeded source.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewPCG": true, "NewChaCha8": true,
	"NewSource": true, "NewZipf": true,
}

func runDeterminism(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn := pkgFunc(p.Info, id)
			if fn == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if forbiddenTimeFuncs[fn.Name()] {
					out = append(out, Finding{
						Pos:      p.Fset.Position(id.Pos()),
						Analyzer: "determinism",
						Message:  fmt.Sprintf("time.%s in engine package %s: engine results must not depend on the wall clock (inject a clock seam from the caller, like dist.Coordinator.now)", fn.Name(), p.Types.Name()),
					})
				}
			case "math/rand", "math/rand/v2":
				if !allowedRandFuncs[fn.Name()] {
					out = append(out, Finding{
						Pos:      p.Fset.Position(id.Pos()),
						Analyzer: "determinism",
						Message:  fmt.Sprintf("package-global rand.%s in engine package %s: use methods on an explicitly seeded *rand.Rand instead", fn.Name(), p.Types.Name()),
					})
				}
			}
			return true
		})
	}
	return out
}
