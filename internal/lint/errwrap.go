package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// errwrapAnalyzer enforces the repo's error idiom at engine entry points:
// errors constructed and returned by an exported function of an engine
// package carry the package prefix ("reach: run canceled: %w" is the
// shape PR 6 standardized on), and an error wrapped into a new message
// uses %w — never %v/%s — so errors.Is/As keep working through the wrap
// (callers match context.Canceled and sentinel errors through engine
// boundaries).
//
// Scope is deliberately the directly-constructed case: a `return err`
// that propagates an already-wrapped error is fine, and unexported
// helpers may build unprefixed fragments for an exported caller to wrap.
// Package-level exported error sentinels must carry the prefix too.
var errwrapAnalyzer = &Analyzer{
	Name:    "errwrap",
	Doc:     "engine entry points must return %w-wrapped, package-prefixed errors",
	Applies: isEnginePackage,
	Run:     runErrwrap,
}

func runErrwrap(p *Package) []Finding {
	var out []Finding
	prefix := p.Types.Name() + ": "
	flag := func(n ast.Node, format string, args ...any) {
		out = append(out, Finding{
			Pos:      p.Fset.Position(n.Pos()),
			Analyzer: "errwrap",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	checkCall := func(call *ast.CallExpr, where string) {
		switch {
		case isStdFunc(p.Info, call, "errors", "New"):
			if len(call.Args) != 1 {
				return
			}
			if s, ok := lit(call.Args[0]); ok && !strings.HasPrefix(s, prefix) {
				flag(call, "error %s lacks the %q prefix (%s)", where, prefix, s)
			}
		case isStdFunc(p.Info, call, "fmt", "Errorf"):
			if len(call.Args) == 0 {
				return
			}
			format, ok := lit(call.Args[0])
			if !ok {
				return
			}
			if !strings.HasPrefix(format, prefix) {
				flag(call, "error %s lacks the %q prefix (%q)", where, prefix, format)
			}
			if !strings.Contains(format, "%w") && hasErrorArg(p.Info, call.Args[1:]) {
				flag(call, "error %s formats a wrapped error without %%w (%q): errors.Is/As cannot see through it", where, format)
			}
		}
	}

	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				// Package-level exported sentinels: var ErrFoo = errors.New("...").
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if !name.IsExported() || i >= len(vs.Values) {
							continue
						}
						if call, ok := ast.Unparen(vs.Values[i]).(*ast.CallExpr); ok {
							checkCall(call, fmt.Sprintf("sentinel %s", name.Name))
						}
					}
				}
			case *ast.FuncDecl:
				if d.Body == nil || !exportedEntryPoint(d) {
					continue
				}
				where := fmt.Sprintf("returned by %s", d.Name.Name)
				walkSkippingFuncLits(d.Body, func(n ast.Node) {
					ret, ok := n.(*ast.ReturnStmt)
					if !ok {
						return
					}
					for _, res := range ret.Results {
						if call, ok := ast.Unparen(res).(*ast.CallExpr); ok {
							checkCall(call, where)
						}
					}
				})
			}
		}
	}
	return out
}

// exportedEntryPoint reports whether fd is callable from outside the
// package: an exported function, or an exported method on an exported
// receiver type.
func exportedEntryPoint(fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	id := rootIdentOfType(fd.Recv.List[0].Type)
	return id != nil && id.IsExported()
}

// rootIdentOfType digs through pointers and generic instantiations to a
// receiver type's name.
func rootIdentOfType(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.StarExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.IndexListExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// walkSkippingFuncLits visits every node in body except the bodies of
// nested function literals: a return inside a closure does not return
// from the entry point.
func walkSkippingFuncLits(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// hasErrorArg reports whether any arg's static type implements error.
func hasErrorArg(info *types.Info, args []ast.Expr) bool {
	errorType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, a := range args {
		tv, ok := info.Types[a]
		if !ok || tv.Type == nil {
			continue
		}
		if types.Implements(tv.Type, errorType) {
			return true
		}
	}
	return false
}
