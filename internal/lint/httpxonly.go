package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// httpxAnalyzer forbids bypassing internal/httpx for cross-process HTTP.
// httpx is the single place where retries, jittered backoff, retry
// budgets, and the 4xx-fails-fast split live (PR 7); a direct http.Get or
// (*http.Client).Do silently opts out of that fault model and breaks the
// chaos suite's assumptions.
//
// Holding or constructing an *http.Client is fine — dist.Worker.Client is
// the injection seam tests use to splice in faultnet transports — but the
// only code allowed to *use* one (call Do/Get/Post/... on it) is
// internal/httpx itself and internal/faultnet's fault-injection wrappers.
// Test files are exempt (the loader never parses _test.go), since tests
// legitimately talk to their own httptest servers directly.
var httpxAnalyzer = &Analyzer{
	Name: "httpx",
	Doc:  "cross-process HTTP must go through internal/httpx",
	Applies: func(path string) bool {
		return !hasInternalSuffix(path, "httpx") && !hasInternalSuffix(path, "faultnet")
	},
	Run: runHTTPX,
}

// forbiddenHTTPFuncs are net/http's package-level request helpers; each
// is sugar over http.DefaultClient.
var forbiddenHTTPFuncs = map[string]bool{
	"Get": true, "Post": true, "PostForm": true, "Head": true,
}

// clientMethods are the request-issuing methods of *http.Client.
var clientMethods = map[string]bool{
	"Do": true, "Get": true, "Post": true, "PostForm": true, "Head": true,
}

func runHTTPX(p *Package) []Finding {
	var out []Finding
	flag := func(n ast.Node, format string, args ...any) {
		out = append(out, Finding{
			Pos:      p.Fset.Position(n.Pos()),
			Analyzer: "httpx",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				switch obj := p.Info.Uses[n].(type) {
				case *types.Func:
					if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() == nil &&
						obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && forbiddenHTTPFuncs[obj.Name()] {
						flag(n, "http.%s uses http.DefaultClient and bypasses the retry/fault model: route the call through internal/httpx", obj.Name())
					}
				case *types.Var:
					if obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "DefaultClient" {
						flag(n, "http.DefaultClient bypasses the retry/fault model: route the call through internal/httpx")
					}
				}
			case *ast.SelectorExpr:
				sel := p.Info.Selections[n]
				if sel == nil || sel.Kind() != types.MethodVal {
					return true
				}
				m, ok := sel.Obj().(*types.Func)
				if !ok || m.Pkg() == nil || m.Pkg().Path() != "net/http" || !clientMethods[m.Name()] {
					return true
				}
				if named := namedRecv(sel.Recv()); named != nil && named.Obj().Name() == "Client" {
					flag(n, "(*http.Client).%s bypasses the retry/fault model: wrap the client in an httpx.Client and call it there", m.Name())
				}
			}
			return true
		})
	}
	return out
}

// namedRecv unwraps pointers and aliases to the receiver's named type.
func namedRecv(t types.Type) *types.Named {
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := types.Unalias(t).(*types.Named)
	return named
}
