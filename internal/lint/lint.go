// Package lint implements crnlint, the repository's own static-analysis
// suite. Every guarantee this reproduction makes — byte-identical
// GridResults at any worker count, crash schedule, or cache state — rests
// on invariants that no general-purpose linter knows about: engine code
// must not read wall clocks or unseeded randomness, map-iteration order
// must not leak into output, and every cross-process HTTP call must go
// through internal/httpx. crnlint machine-checks those invariants so
// aggressive refactors cannot silently break determinism.
//
// The suite is stdlib-only (go/parser + go/types, with go/importer's
// source importer for standard-library dependencies); go.mod stays
// dependency-free. Each analyzer reports findings as
//
//	file:line: [analyzer] message
//
// and crnlint exits non-zero on any finding. A finding is suppressible
// only by a
//
//	//crnlint:ignore <analyzer> <reason>
//
// comment on the offending line (or the line directly above it); the
// reason is mandatory, and malformed or unknown directives are themselves
// findings that cannot be suppressed.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Finding is one analyzer report, anchored to a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical file:line: [analyzer] form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Package is one type-checked package handed to analyzers.
type Package struct {
	Path  string // import path within the module (label for package main)
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files, in lexical filename order
	Types *types.Package
	Info  *types.Info
}

// Analyzer is one pass of the suite.
type Analyzer struct {
	Name string
	Doc  string
	// Applies filters packages by import path; nil means every package.
	Applies func(pkgPath string) bool
	Run     func(p *Package) []Finding
}

// Analyzers is the full suite, in the order findings are attributed.
var Analyzers = []*Analyzer{
	determinismAnalyzer,
	httpxAnalyzer,
	mapiterAnalyzer,
	errwrapAnalyzer,
}

// enginePackages are the deterministic compute packages: every verdict
// they produce must be a pure function of their inputs. The determinism
// and errwrap analyzers apply to exactly this set; mapiter additionally
// covers internal/dist, whose merged results carry the same byte-identity
// promise. internal/trace is in the set even though it is not an engine:
// its whole API takes caller-owned instants (StartSpan(now)/End(now)), and
// keeping it here guarantees the package itself never grows a clock read —
// so an engine can never launder time.Now through a span.
var enginePackages = []string{
	"reach", "sim", "classify", "synth", "core", "crn",
	"vec", "compose", "semilinear", "parse", "randfunc", "trace",
}

// hasInternalSuffix reports whether path ends in "internal/<name>", the
// module-relative shape shared by the real tree and test fixtures.
func hasInternalSuffix(path, name string) bool {
	suffix := "internal/" + name
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// isEnginePackage reports whether path is one of the deterministic engine
// packages.
func isEnginePackage(path string) bool {
	for _, name := range enginePackages {
		if hasInternalSuffix(path, name) {
			return true
		}
	}
	return false
}

// ignoreDirective is one parsed //crnlint:ignore comment.
type ignoreDirective struct {
	pos      token.Position
	analyzer string
	reason   string
	bad      string // non-empty when the directive is malformed
}

var ignoreRE = regexp.MustCompile(`^//crnlint:ignore(.*)$`)

// directives extracts every //crnlint:ignore comment in the package,
// keyed by filename then line.
func directives(p *Package) map[string]map[int][]ignoreDirective {
	out := make(map[string]map[int][]ignoreDirective)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				d := ignoreDirective{pos: pos}
				fields := strings.Fields(m[1])
				switch {
				case len(fields) == 0:
					d.bad = "missing analyzer and reason"
				case len(fields) == 1:
					d.analyzer = fields[0]
					d.bad = "missing reason"
				default:
					d.analyzer = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				if d.bad == "" && !knownAnalyzer(d.analyzer) {
					d.bad = fmt.Sprintf("unknown analyzer %q", d.analyzer)
				}
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]ignoreDirective)
					out[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], d)
			}
		}
	}
	return out
}

func knownAnalyzer(name string) bool {
	for _, a := range Analyzers {
		if a.Name == name {
			return true
		}
	}
	return false
}

// suppressed reports whether a directive on the finding's line (or the
// line directly above, for findings whose lines are too long to carry a
// trailing comment) names the finding's analyzer.
func suppressed(dirs map[string]map[int][]ignoreDirective, f Finding) bool {
	byLine := dirs[f.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, d := range byLine[line] {
			if d.bad == "" && d.analyzer == f.Analyzer {
				return true
			}
		}
	}
	return false
}

// directiveFindings reports malformed directives. These are never
// suppressible: a broken suppression must not silently suppress.
func directiveFindings(dirs map[string]map[int][]ignoreDirective) []Finding {
	var out []Finding
	for _, byLine := range dirs {
		for _, ds := range byLine {
			for _, d := range ds {
				if d.bad != "" {
					out = append(out, Finding{
						Pos:      d.pos,
						Analyzer: "ignore",
						Message:  fmt.Sprintf("malformed //crnlint:ignore directive: %s (want //crnlint:ignore <analyzer> <reason>)", d.bad),
					})
				}
			}
		}
	}
	return out
}

// Run loads the module rooted at moduleDir, runs the full suite over the
// packages selected by patterns (empty or "./..." selects everything),
// and returns the surviving findings sorted by position.
func Run(moduleDir string, patterns []string) ([]Finding, error) {
	mod, err := LoadModule(moduleDir)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, p := range mod.Pkgs {
		if !selectPackage(mod, p, patterns) {
			continue
		}
		dirs := directives(p)
		findings = append(findings, directiveFindings(dirs)...)
		for _, a := range Analyzers {
			if a.Applies != nil && !a.Applies(p.Path) {
				continue
			}
			for _, f := range a.Run(p) {
				if !suppressed(dirs, f) {
					findings = append(findings, f)
				}
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings, nil
}

// selectPackage implements "./..."-style pattern filtering relative to
// the module root. No patterns (or any "./..." among them) selects every
// package; "./internal/reach" selects that one package; a trailing
// "/..." selects the subtree.
func selectPackage(mod *Module, p *Package, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(p.Dir, mod.Dir), "/")
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." || pat == "" {
			return true
		}
		if sub, ok := strings.CutSuffix(pat, "/..."); ok {
			if rel == sub || strings.HasPrefix(rel, sub+"/") {
				return true
			}
			continue
		}
		if rel == pat {
			return true
		}
	}
	return false
}

// --- shared type-level helpers used by the analyzers ---

// pkgFunc resolves id to a package-level function (no receiver) and
// returns it, or nil.
func pkgFunc(info *types.Info, id *ast.Ident) *types.Func {
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}

// calleeIdent returns the rightmost identifier of a call's callee
// (handles f(...) and pkg.f(...)).
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun
	case *ast.SelectorExpr:
		return fun.Sel
	}
	return nil
}

// isStdFunc reports whether call invokes the package-level function
// pkgPath.name.
func isStdFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	id := calleeIdent(call)
	if id == nil {
		return false
	}
	fn := pkgFunc(info, id)
	return fn != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// rootIdent digs through selectors, indexes, and parens to the leftmost
// identifier of an expression (x in x.a[i].b), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// lit returns the unquoted value of a string literal expression, and
// whether e is one.
func lit(e ast.Expr) (string, bool) {
	bl, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(bl.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
