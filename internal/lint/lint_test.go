package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestFixtures runs the full suite over each testdata module and checks
// the findings against the fixtures' `// want "regexp"` comments: every
// finding must be expected by a want on its line, and every want must be
// matched by a finding.
func TestFixtures(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			t.Parallel()
			runFixture(t, filepath.Join("testdata", e.Name()))
		})
	}
}

func runFixture(t *testing.T, dir string) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(abs, nil)
	if err != nil {
		t.Fatalf("Run(%s): %v", dir, err)
	}
	wants := collectWants(t, abs)
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no finding matched want %q", key, w.re)
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// wantRE matches `// want` comments; patterns follow as backquoted or
// double-quoted strings.
var (
	wantRE    = regexp.MustCompile(`//\s*want\s+(.+)$`)
	patternRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

// collectWants scans every fixture .go file for want comments, keyed by
// file:line.
func collectWants(t *testing.T, root string) map[string][]*want {
	out := make(map[string][]*want)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRE.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", path, line)
			for _, q := range patternRE.FindAllString(m[1], -1) {
				var pat string
				if strings.HasPrefix(q, "`") {
					pat = strings.Trim(q, "`")
				} else {
					pat, err = strconv.Unquote(q)
					if err != nil {
						return fmt.Errorf("%s: bad want pattern %s: %w", key, q, err)
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return fmt.Errorf("%s: bad want regexp %q: %w", key, pat, err)
				}
				out[key] = append(out[key], &want{re: re})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// writeModule materializes a throwaway module for directive and CLI
// tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const fixtureGoMod = "module example.com/tmp\n\ngo 1.24\n"

// TestMalformedDirectives checks that broken //crnlint:ignore comments
// are findings themselves and do not suppress anything.
func TestMalformedDirectives(t *testing.T) {
	t.Parallel()
	dir := writeModule(t, map[string]string{
		"go.mod": fixtureGoMod,
		"internal/reach/r.go": `package reach

import "time"

func A() int64 {
	//crnlint:ignore determinism
	return time.Now().UnixNano()
}

func B() int64 {
	//crnlint:ignore typofail some reason
	return time.Now().UnixNano()
}

func C() int64 {
	//crnlint:ignore
	return time.Now().UnixNano()
}
`,
	})
	findings, err := Run(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ignoreFindings, determinismFindings int
	for _, f := range findings {
		switch f.Analyzer {
		case "ignore":
			ignoreFindings++
		case "determinism":
			determinismFindings++
		}
	}
	// Three malformed directives (missing reason, unknown analyzer,
	// missing everything), and none of them suppresses its time.Now.
	if ignoreFindings != 3 || determinismFindings != 3 {
		t.Errorf("got %d ignore + %d determinism findings, want 3 + 3:\n%v",
			ignoreFindings, determinismFindings, findings)
	}
}

// TestPatternSelection checks ./...-style package filtering.
func TestPatternSelection(t *testing.T) {
	t.Parallel()
	dir := writeModule(t, map[string]string{
		"go.mod": fixtureGoMod,
		"internal/reach/r.go": `package reach

import "time"

func Clock() int64 { return time.Now().UnixNano() }
`,
		"internal/sim/s.go": "package sim\n",
	})
	for _, tc := range []struct {
		patterns []string
		findings int
	}{
		{nil, 1},
		{[]string{"./..."}, 1},
		{[]string{"./internal/..."}, 1},
		{[]string{"./internal/reach"}, 1},
		{[]string{"./internal/reach/..."}, 1},
		{[]string{"./internal/sim/..."}, 0},
		{[]string{"./internal/sim", "./internal/reach"}, 1},
	} {
		findings, err := Run(dir, tc.patterns)
		if err != nil {
			t.Fatal(err)
		}
		if len(findings) != tc.findings {
			t.Errorf("Run(%v): %d findings, want %d", tc.patterns, len(findings), tc.findings)
		}
	}
}

// TestRepoIsClean lints the real module: the tree must stay finding-free
// (the crnlint CI step enforces the same thing process-externally).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; run without -short")
	}
	t.Parallel()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("repo finding: %s", f)
	}
}
