package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Module is a fully parsed and type-checked Go module.
type Module struct {
	Path string // module path from go.mod
	Dir  string // absolute module root
	Fset *token.FileSet
	Pkgs []*Package // every package with non-test files, by import path
}

var moduleLineRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// LoadModule discovers every package under dir (skipping testdata, hidden
// directories, and _test.go files), parses it, and type-checks it.
// Standard-library imports are resolved by go/importer's source importer —
// the module must be dependency-free, which go.mod's emptiness guarantees
// here — and intra-module imports are resolved by loading the imported
// directory recursively.
func LoadModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	gomod, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	m := moduleLineRE.FindSubmatch(gomod)
	if m == nil {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	l := &loader{
		fset:       fset,
		modulePath: string(m[1]),
		moduleDir:  abs,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}
	dirs, err := l.packageDirs()
	if err != nil {
		return nil, err
	}
	mod := &Module{Path: l.modulePath, Dir: abs, Fset: fset}
	for _, d := range dirs {
		p, err := l.loadDir(d)
		if err != nil {
			return nil, err
		}
		if p != nil {
			mod.Pkgs = append(mod.Pkgs, p)
		}
	}
	sort.Slice(mod.Pkgs, func(i, j int) bool { return mod.Pkgs[i].Path < mod.Pkgs[j].Path })
	return mod, nil
}

type loader struct {
	fset       *token.FileSet
	modulePath string
	moduleDir  string
	std        types.Importer
	pkgs       map[string]*Package // by absolute dir
	loading    map[string]bool     // import-cycle guard, by absolute dir
}

// packageDirs walks the module for directories holding non-test .go
// files, in sorted order for deterministic loading and output.
func (l *loader) packageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.moduleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.moduleDir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if fs, err := sourceFiles(path); err == nil && len(fs) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// sourceFiles lists dir's non-test .go files in sorted order.
func sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	return out, nil
}

// Import implements types.Importer: module-internal paths load from
// source, everything else is delegated to the stdlib source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		p, err := l.loadDir(filepath.Join(l.moduleDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", path)
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// loadDir parses and type-checks the package in dir (memoized). A dir
// with no non-test Go files yields (nil, nil).
func (l *loader) loadDir(dir string) (*Package, error) {
	if p, ok := l.pkgs[dir]; ok {
		return p, nil
	}
	if l.loading[dir] {
		return nil, fmt.Errorf("lint: import cycle through %s", dir)
	}
	l.loading[dir] = true
	defer delete(l.loading, dir)

	files, err := sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		l.pkgs[dir] = nil
		return nil, nil
	}
	var asts []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(l.fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		asts = append(asts, af)
	}
	rel, err := filepath.Rel(l.moduleDir, dir)
	if err != nil {
		return nil, err
	}
	importPath := l.modulePath
	if rel != "." {
		importPath += "/" + filepath.ToSlash(rel)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.fset, asts, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for _, e := range typeErrs {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("lint: type-checking %s:\n\t%s", importPath, strings.Join(msgs, "\n\t"))
	}
	p := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Files: asts,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[dir] = p
	return p, nil
}
