package lint

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Main is the crnlint command: it resolves the enclosing module from dir
// (or -C), runs the suite over the packages matching the ./...-style
// pattern arguments (default: everything), prints findings, and returns
// the process exit code — 0 clean, 1 findings, 2 usage or load failure.
// cmd/crnlint is a thin wrapper; keeping the logic here lets tests drive
// the real exit-code contract without spawning a process.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("crnlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "directory inside the module to lint")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: crnlint [-C dir] [packages]\n\nAnalyzers:\n")
		for _, a := range Analyzers {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nSuppress a finding with //crnlint:ignore <analyzer> <reason> on the offending line.\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "crnlint: %v\n", err)
		return 2
	}
	findings, err := Run(root, fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "crnlint: %v\n", err)
		return 2
	}
	for _, f := range findings {
		f.Pos.Filename = relToRoot(root, f.Pos.Filename)
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "crnlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		d = parent
	}
}

// relToRoot renders filename relative to the module root for stable,
// clickable output.
func relToRoot(root, filename string) string {
	if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return filename
}
