package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// mapiterAnalyzer flags map iteration whose order can leak into output.
// Go randomizes map-range order per run, so a loop over a map that
// appends to a slice, writes through a strings.Builder/bytes.Buffer, or
// sends on a channel produces run-dependent results — unless the
// collected result is provably sorted afterwards (the repo idiom: collect
// keys, sort.Strings, iterate the sorted slice — see classify's strip
// handling and core.LibraryNames).
//
// The analyzer needs go/types to be sound here: ranging over a slice is
// always ordered (dist's `range co.states` loops iterate a []rectState
// lease table and are fine), and only real map types are suspect. Loops
// that merely aggregate order-insensitively (counting, summing, writing
// into another map) are not flagged.
var mapiterAnalyzer = &Analyzer{
	Name: "mapiter",
	Doc:  "map-iteration order must not leak into output in deterministic packages",
	Applies: func(path string) bool {
		return isEnginePackage(path) || hasInternalSuffix(path, "dist")
	},
	Run: runMapiter,
}

// sortCalls are the recognized "provably sorted afterwards" calls, by
// package path and function name.
var sortCalls = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

func runMapiter(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if tv, ok := p.Info.Types[rs.X]; !ok || !isMap(tv.Type) {
					return true
				}
				out = append(out, checkMapRange(p, fd, rs)...)
				return true
			})
		}
	}
	return out
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := types.Unalias(t).Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects one map-range body for order-sensitive sinks.
func checkMapRange(p *Package, fd *ast.FuncDecl, rs *ast.RangeStmt) []Finding {
	var out []Finding
	flag := func(n ast.Node, format string, args ...any) {
		out = append(out, Finding{
			Pos:      p.Fset.Position(n.Pos()),
			Analyzer: "mapiter",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	outside := func(e ast.Expr) (types.Object, *ast.Ident) {
		id := rootIdent(e)
		if id == nil {
			return nil, nil
		}
		obj := p.Info.ObjectOf(id)
		if obj == nil || (obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End()) {
			return nil, nil
		}
		return obj, id
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			flag(n, "send on a channel inside a map-range loop: receive order depends on map iteration order")
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p.Info, call) || i >= len(n.Lhs) {
					continue
				}
				obj, id := outside(n.Lhs[i])
				if obj == nil {
					continue
				}
				if sortedAfter(p, fd, rs, obj) {
					continue
				}
				flag(n, "append to %s inside a map-range loop: element order depends on map iteration order (sort %s afterwards, or iterate sorted keys)", id.Name, id.Name)
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := p.Info.Selections[sel]
			if s == nil || s.Kind() != types.MethodVal {
				return true
			}
			m, ok := s.Obj().(*types.Func)
			if !ok || m.Pkg() == nil || !strings.HasPrefix(m.Name(), "Write") {
				return true
			}
			named := namedRecv(s.Recv())
			if named == nil {
				return true
			}
			npkg := named.Obj().Pkg()
			if npkg == nil {
				return true
			}
			builder := (npkg.Path() == "strings" && named.Obj().Name() == "Builder") ||
				(npkg.Path() == "bytes" && named.Obj().Name() == "Buffer")
			if !builder {
				return true
			}
			if obj, id := outside(sel.X); obj != nil {
				flag(n, "%s.%s inside a map-range loop: output order depends on map iteration order (iterate sorted keys instead)", id.Name, m.Name())
			}
		}
		return true
	})
	return out
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether obj is passed to a recognized sort call
// after the range loop, within the same function — the "provably sorted
// afterwards" exemption.
func sortedAfter(p *Package, fd *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		id := calleeIdent(call)
		if id == nil {
			return true
		}
		fn := pkgFunc(p.Info, id)
		if fn == nil || !sortCalls[fn.Pkg().Path()][fn.Name()] {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if aid, ok := an.(*ast.Ident); ok && p.Info.ObjectOf(aid) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
