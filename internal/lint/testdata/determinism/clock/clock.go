// Package clock is outside the engine set: wall clocks are fine here.
// This is where injected seams like dist.Coordinator.now live.
package clock

import "time"

// Stamp may read the wall clock — it never feeds an engine verdict.
func Stamp() int64 {
	return time.Now().UnixNano()
}
