// Package metrics mirrors the real internal/metrics caller-owned-clock
// API. It is outside the engine set, so the clock-typed parameters are
// legal here — the analyzer's job is to catch engine callers passing
// time.Now into them (see internal/reach/timer.go).
package metrics

import "time"

// Histogram is a minimal stand-in for the real fixed-bucket histogram.
type Histogram struct {
	count uint64
	sum   float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.count++
	h.sum += v
}

// ObserveSince records now−start in seconds. Both instants come from the
// caller: this package never reads a clock.
func (h *Histogram) ObserveSince(start, now time.Time) {
	h.Observe(now.Sub(start).Seconds())
}

// Timer carries a caller-supplied clock from StartTimer to ObserveDuration.
type Timer struct {
	clock func() time.Time
	start time.Time
	h     *Histogram
}

// StartTimer captures clock() as the start instant. The clock parameter is
// the determinism seam: engine packages cannot supply time.Now without the
// analyzer flagging the reference at the call site.
func StartTimer(clock func() time.Time, h *Histogram) *Timer {
	return &Timer{clock: clock, start: clock(), h: h}
}

// ObserveDuration records the elapsed time on the captured clock.
func (t *Timer) ObserveDuration() {
	t.h.ObserveSince(t.start, t.clock())
}
