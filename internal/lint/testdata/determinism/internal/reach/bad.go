// Package reach is a determinism-analyzer fixture: an engine package
// reaching for wall clocks and package-global randomness.
package reach

import (
	"math/rand/v2"
	"time"
)

// Explore leaks the wall clock and the process-global generator into an
// engine result.
func Explore(budget int) int {
	start := time.Now()                  // want `time\.Now in engine package reach`
	n := rand.IntN(budget)               // want `package-global rand\.IntN`
	time.Sleep(time.Millisecond)         // want `time\.Sleep in engine package`
	if time.Since(start) > time.Second { // want `time\.Since in engine package`
		return 0
	}
	return n + int(rand.Int64()%3) // want `package-global rand\.Int64`
}

// Deadline captures a clock function as a value — just as forbidden as
// calling it.
func Deadline() func() time.Time {
	return time.Now // want `time\.Now in engine package reach`
}
