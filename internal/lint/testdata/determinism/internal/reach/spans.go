// Wall-clock laundering through the tracing layer: trace.StartSpan and
// Span.End take caller-owned instants (the trace package never reads a
// clock), so the only way an engine stamps spans with wall time is by
// passing time.Now at the call site — where the analyzer still sees the
// reference.
package reach

import (
	"time"

	"example.com/fix/internal/trace"
)

// TracedExplore tries to smuggle the wall clock into an engine through the
// span seam. Both references are flagged even though the engine never
// reads the clock value itself.
func TracedExplore(budget int) int {
	sp := trace.StartSpan(time.Now(), "reach.explore") // want `time\.Now in engine package reach`
	defer func() { sp.End(time.Now()) }()              // want `time\.Now in engine package reach`
	return Explore(budget)
}
