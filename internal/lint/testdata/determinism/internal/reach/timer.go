// Wall-clock laundering through the metrics layer: the metrics package
// never calls time.Now itself (caller-owned clock), so the only way an
// engine gets timed on the wall clock is by passing time.Now at the call
// site — where the analyzer still sees the reference.
package reach

import (
	"time"

	"example.com/fix/internal/metrics"
)

var exploreSeconds metrics.Histogram

// TimedExplore tries to smuggle the wall clock into an engine through the
// Timer seam. The reference is flagged even though the engine never calls
// time.Now directly.
func TimedExplore(budget int) int {
	t := metrics.StartTimer(time.Now, &exploreSeconds) // want `time\.Now in engine package reach`
	defer t.ObserveDuration()
	return Explore(budget)
}
