// Package sim is the clean half of the determinism fixture: explicitly
// seeded generators and methods on them are the sanctioned pattern.
package sim

import "math/rand/v2"

// Trial draws from a caller-seeded generator: reproducible, legal.
func Trial(seed uint64, n int) int {
	r := rand.New(rand.NewPCG(seed, 0))
	return r.IntN(n)
}

// Step takes the injected generator itself.
func Step(r *rand.Rand, n int) int {
	return r.IntN(n)
}
