// Package trace mirrors the real internal/trace caller-owned-clock API.
// It sits inside the engine set itself (so the analyzer checks that the
// package never reads a clock — this stand-in is clean), and its
// span-instant parameters are the seam the analyzer guards at engine call
// sites: see internal/reach/spans.go for an engine caught passing time.Now
// into StartSpan and End.
package trace

import "time"

// Span is a minimal stand-in for the real in-flight span.
type Span struct {
	name  string
	start time.Time
	end   time.Time
}

// StartSpan opens a span at the caller-supplied instant. The now parameter
// is the determinism seam: this package never calls time.Now, so the only
// way an engine result picks up the wall clock is an engine passing it
// here — where the analyzer still sees the reference.
func StartSpan(now time.Time, name string) *Span {
	return &Span{name: name, start: now}
}

// End closes the span at the caller-supplied instant.
func (s *Span) End(now time.Time) {
	if s == nil {
		return
	}
	s.end = now
}
