// Package reach is the errwrap-analyzer fixture: the PR 6
// "reach: run canceled: %w" idiom at exported entry points.
package reach

import (
	"errors"
	"fmt"
)

// ErrBudget carries the package prefix — clean.
var ErrBudget = errors.New("reach: exploration budget exhausted")

// ErrBare is a package-level sentinel without the prefix.
var ErrBare = errors.New("budget exhausted") // want `sentinel ErrBare lacks the "reach: " prefix`

// Check is an exported entry point; its directly constructed errors must
// be prefixed, and wrapped errors must use %w.
func Check(x int) error {
	if x < 0 {
		return errors.New("negative input") // want `returned by Check lacks the "reach: " prefix`
	}
	if err := helper(x); err != nil {
		return fmt.Errorf("reach: checking %d: %w", x, err)
	}
	if err := helper(x + 1); err != nil {
		return fmt.Errorf("reach: checking %d: %v", x, err) // want `wrapped error without %w`
	}
	if x > 10 {
		return fmt.Errorf("out of range: %d", x) // want `returned by Check lacks the "reach: " prefix`
	}
	return nil
}

// Run shows the closure exemption: a return inside a function literal is
// not a return of the entry point.
func Run(xs []int) error {
	check := func(x int) error {
		return fmt.Errorf("x = %d", x)
	}
	for _, x := range xs {
		if err := check(x); err != nil {
			return fmt.Errorf("reach: running: %w", err)
		}
	}
	return nil
}

// helper is unexported: it builds unprefixed fragments for exported
// callers to wrap — exempt.
func helper(x int) error {
	if x == 3 {
		return fmt.Errorf("unlucky %d", x)
	}
	return nil
}
