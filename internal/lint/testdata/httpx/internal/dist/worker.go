// Package dist is the clean half of the httpx fixture: constructing an
// *http.Client and handing it to the httpx seam is the sanctioned
// pattern (the real dist.Worker.Client injection point).
package dist

import (
	"net/http"
	"time"

	"example.com/fix/internal/httpx"
)

// Worker holds an injectable client but never calls it directly.
type Worker struct {
	Client *http.Client
}

// Run routes every request through the httpx seam.
func (w *Worker) Run(req *http.Request) error {
	client := w.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	c := &httpx.Client{HTTP: client}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}
