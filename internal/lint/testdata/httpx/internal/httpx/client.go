// Package httpx mirrors the real retry client: the one place allowed to
// issue requests on an *http.Client.
package httpx

import "net/http"

// Client wraps an injectable *http.Client, like the real httpx.Client.
type Client struct {
	HTTP *http.Client
}

// Do is exempt from the httpx analyzer — this package IS the seam.
func (c *Client) Do(req *http.Request) (*http.Response, error) {
	return c.HTTP.Do(req)
}
