// Package serve is the httpx-analyzer fixture: every way of bypassing
// the retry client.
package serve

import "net/http"

// Fetch uses the package-level helpers and the default client.
func Fetch(url string) error {
	resp, err := http.Get(url) // want `http\.Get uses http\.DefaultClient`
	if err != nil {
		return err
	}
	resp.Body.Close()
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	resp2, err := http.DefaultClient.Do(req) // want `http\.DefaultClient bypasses` `\(\*http\.Client\)\.Do bypasses`
	if err != nil {
		return err
	}
	resp2.Body.Close()
	return nil
}

// Direct builds its own client and calls it — the method-call bypass.
func Direct(url string) error {
	c := &http.Client{}
	resp, err := c.Get(url) // want `\(\*http\.Client\)\.Get bypasses`
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}
