// Package sim exercises //crnlint:ignore: every violation here carries a
// well-formed directive, so the fixture expects zero findings.
package sim

import "time"

// Telemetry reads the wall clock for a log line that never reaches a
// verdict — suppressed with a trailing directive.
func Telemetry() int64 {
	return time.Now().UnixNano() //crnlint:ignore determinism telemetry only, never feeds a verdict
}

// Above suppresses from the line directly above the finding.
func Above() int64 {
	//crnlint:ignore determinism measured outside the verdict path
	return time.Now().UnixNano()
}
