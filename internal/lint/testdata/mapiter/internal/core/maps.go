// Package core is the mapiter-analyzer fixture: map-range loops whose
// order does and does not leak into output.
package core

import (
	"sort"
	"strings"
)

// SortedKeys collects then sorts — the repo idiom, exempt.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SortedValues uses sort.Slice on the collected result — also exempt.
func SortedValues(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// UnsortedKeys leaks iteration order into the returned slice.
func UnsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside a map-range loop`
	}
	return keys
}

// SendKeys leaks iteration order into channel receive order.
func SendKeys(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want `send on a channel inside a map-range loop`
	}
}

// JoinKeys leaks iteration order into the built string.
func JoinKeys(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `b\.WriteString inside a map-range loop`
	}
	return b.String()
}

// Count aggregates order-insensitively — not flagged.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Invert writes into another map — order-insensitive, not flagged.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
