// Package dist mirrors the coordinator's lease table: ranging over a
// slice is ordered, so these loops are clean — telling this apart from a
// map range is exactly why the analyzer needs go/types.
package dist

type rectState struct {
	done  bool
	count int
}

// Progress iterates a []rectState, like the real coordinator's
// `for id := range co.states` loops.
func Progress(states []rectState) (done, total int) {
	for id := range states {
		if states[id].done {
			done++
		}
	}
	return done, len(states)
}

// Merge appends from a slice range — ordered, clean.
func Merge(states []rectState) []int {
	var counts []int
	for _, st := range states {
		counts = append(counts, st.count)
	}
	return counts
}
