// Package web sits outside the deterministic set: mapiter does not
// apply, so this order-leaking loop is legal here.
package web

// Names may leak map order — this package makes no determinism promise.
func Names(m map[string]int) []string {
	var names []string
	for k := range m {
		names = append(names, k)
	}
	return names
}
