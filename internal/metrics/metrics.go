// Package metrics is a dependency-free metrics registry: counters,
// gauges, and fixed-bucket histograms with atomic hot paths and label
// support, rendered in the Prometheus text exposition format
// (version 0.0.4).
//
// Rendering is deterministic: families are emitted in sorted name
// order, children in sorted label-value order, and floats with the
// shortest round-trip representation — so two scrapes of identical
// state produce identical bytes, matching the repo-wide byte-identity
// discipline.
//
// The package never reads the wall clock. Timer and
// Histogram.ObserveSince take the clock (or both endpoints) from the
// caller, so engine packages — where crnlint's determinism analyzer
// forbids time.Now — cannot launder a wall-clock read through a
// metrics helper: the time.Now reference itself would appear at the
// call site and be flagged. Wall-clock reads belong in cmd/, serve,
// and dist, which already own them.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default histogram upper bounds, in seconds —
// the conventional Prometheus latency buckets.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Observer is anything observations can be fed to; *Histogram
// implements it, and Timer records through it.
type Observer interface {
	Observe(v float64)
}

// Registry holds metric families and renders them. The zero value is
// not usable; call NewRegistry. Registration is idempotent: asking
// for a family that already exists with the same type and label names
// returns the existing one, so independently initialized components
// (serve cache, httpx seam, progress adapter) can share one registry
// without coordination. Re-registering a name with a different type
// or label set panics — that is a programming error, caught at init.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	buckets []float64 // histogram upper bounds, sorted, excluding +Inf

	mu       sync.Mutex
	children map[string]child // key: joined label values ("" when unlabeled)
}

type child interface {
	labelValues() []string
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func (r *Registry) family(name, help, typ string, labels []string, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) || strings.Contains(l, ":") {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("metrics: %q re-registered as %s%v, was %s%v",
				name, typ, labels, f.typ, f.labels))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   append([]string(nil), labels...),
		buckets:  buckets,
		children: make(map[string]child),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// childKey joins label values unambiguously (values may contain any
// bytes, so a plain join would collide).
func childKey(values []string) string {
	var b strings.Builder
	for _, v := range values {
		b.WriteString(strconv.Quote(v))
	}
	return b.String()
}

func (f *family) child(values []string, make func() child) child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %q expects %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := childKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := make()
	f.children[key] = c
	return c
}

// Counter is a monotonically increasing counter.
type Counter struct {
	labels []string
	v      atomic.Uint64
}

func (c *Counter) labelValues() []string { return c.labels }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	labels []string
	v      atomic.Int64
}

func (g *Gauge) labelValues() []string { return g.labels }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed cumulative buckets. All
// methods are safe for concurrent use; Observe is lock-free.
type Histogram struct {
	labels []string
	upper  []float64       // sorted upper bounds, excluding +Inf
	counts []atomic.Uint64 // len(upper)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func (h *Histogram) labelValues() []string { return h.labels }

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bound >= v (le semantics)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the duration from start to now, in seconds.
// Both endpoints come from the caller's clock; the metrics package
// itself never reads the wall clock.
func (h *Histogram) ObserveSince(start, now time.Time) {
	h.Observe(now.Sub(start).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Timer measures one span against a caller-owned clock and reports
// the elapsed seconds to an Observer.
type Timer struct {
	clock func() time.Time
	start time.Time
	obs   Observer
}

// StartTimer starts a span on the given clock. The clock is passed in
// precisely so that deterministic packages cannot create timers: the
// time.Now reference would appear at their call site.
func StartTimer(clock func() time.Time, obs Observer) *Timer {
	return &Timer{clock: clock, start: clock(), obs: obs}
}

// ObserveDuration reports the elapsed time to the Observer and
// returns it.
func (t *Timer) ObserveDuration() time.Duration {
	d := t.clock().Sub(t.start)
	if t.obs != nil {
		t.obs.Observe(d.Seconds())
	}
	return d
}

// Counter returns the unlabeled counter with the given name,
// registering the family on first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, typeCounter, nil, nil)
	return f.child(nil, func() child { return &Counter{} }).(*Counter)
}

// Gauge returns the unlabeled gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, typeGauge, nil, nil)
	return f.child(nil, func() child { return &Gauge{} }).(*Gauge)
}

// Histogram returns the unlabeled histogram with the given name and
// upper bounds (which must be sorted ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.family(name, help, typeHistogram, nil, checkBuckets(name, buckets))
	return f.child(nil, func() child { return newHistogram(nil, f.buckets) }).(*Histogram)
}

func newHistogram(labels []string, upper []float64) *Histogram {
	h := &Histogram{labels: labels, upper: upper}
	h.counts = make([]atomic.Uint64, len(upper)+1)
	return h
}

func checkBuckets(name string, buckets []float64) []float64 {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q needs at least one bucket", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q buckets not strictly ascending", name))
		}
	}
	if math.IsInf(buckets[len(buckets)-1], +1) {
		buckets = buckets[:len(buckets)-1] // +Inf is implicit
	}
	return append([]float64(nil), buckets...)
}

// CounterVec is a family of counters partitioned by label values.
type CounterVec struct{ f *family }

// CounterVec returns the counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: CounterVec %q needs labels (use Counter)", name))
	}
	return &CounterVec{f: r.family(name, help, typeCounter, labels, nil)}
}

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() child {
		return &Counter{labels: append([]string(nil), values...)}
	}).(*Counter)
}

// GaugeVec is a family of gauges partitioned by label values.
type GaugeVec struct{ f *family }

// GaugeVec returns the gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: GaugeVec %q needs labels (use Gauge)", name))
	}
	return &GaugeVec{f: r.family(name, help, typeGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() child {
		return &Gauge{labels: append([]string(nil), values...)}
	}).(*Gauge)
}

// HistogramVec is a family of histograms partitioned by label values.
type HistogramVec struct{ f *family }

// HistogramVec returns the histogram family with the given buckets
// and label names.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: HistogramVec %q needs labels (use Histogram)", name))
	}
	return &HistogramVec{f: r.family(name, help, typeHistogram, labels, checkBuckets(name, buckets))}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() child {
		return newHistogram(append([]string(nil), values...), v.f.buckets)
	}).(*Histogram)
}

// WriteText renders every family in the Prometheus text exposition
// format, version 0.0.4. Output is deterministic: families sorted by
// name, children sorted by label values. Families with no children
// yet still emit their HELP and TYPE header lines, so a scrape
// advertises every registered family even before the first sample.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make([]*family, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.writeText(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) writeText(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)

	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kids := make([]child, 0, len(keys))
	for _, k := range keys {
		kids = append(kids, f.children[k])
	}
	f.mu.Unlock()

	for _, c := range kids {
		switch m := c.(type) {
		case *Counter:
			b.WriteString(f.name)
			writeLabels(b, f.labels, m.labels, "", 0)
			fmt.Fprintf(b, " %d\n", m.Value())
		case *Gauge:
			b.WriteString(f.name)
			writeLabels(b, f.labels, m.labels, "", 0)
			fmt.Fprintf(b, " %d\n", m.Value())
		case *Histogram:
			var cum uint64
			for i := range m.counts {
				cum += m.counts[i].Load()
				b.WriteString(f.name)
				b.WriteString("_bucket")
				le := "+Inf"
				if i < len(m.upper) {
					le = formatFloat(m.upper[i])
				}
				writeLabels(b, f.labels, m.labels, le, 1)
				fmt.Fprintf(b, " %d\n", cum)
			}
			b.WriteString(f.name)
			b.WriteString("_sum")
			writeLabels(b, f.labels, m.labels, "", 0)
			b.WriteByte(' ')
			b.WriteString(formatFloat(m.Sum()))
			b.WriteByte('\n')
			b.WriteString(f.name)
			b.WriteString("_count")
			writeLabels(b, f.labels, m.labels, "", 0)
			fmt.Fprintf(b, " %d\n", m.Count())
		}
	}
}

// writeLabels renders {k="v",...}; mode 1 appends le=<le> for
// histogram bucket lines. Nothing is written when there are no labels
// to emit.
func writeLabels(b *strings.Builder, names, values []string, le string, mode int) {
	if len(names) == 0 && mode == 0 {
		return
	}
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if mode == 1 {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// Handler returns an http.Handler serving the text exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
