package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"crncompose/internal/progress"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return b.String()
}

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Ops done.")
	c.Inc()
	c.Add(2)
	g := r.Gauge("test_depth", "Queue depth.")
	g.Set(5)
	g.Dec()

	got := render(t, r)
	want := "# HELP test_depth Queue depth.\n" +
		"# TYPE test_depth gauge\n" +
		"test_depth 4\n" +
		"# HELP test_ops_total Ops done.\n" +
		"# TYPE test_ops_total counter\n" +
		"test_ops_total 3\n"
	if got != want {
		t.Fatalf("render mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestVecSortedDeterministic(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_reqs_total", "Requests.", "endpoint", "code")
	// Touch children in non-sorted order; rendering must sort.
	v.With("/v1/check", "500").Inc()
	v.With("/healthz", "200").Add(2)
	v.With("/v1/check", "200").Add(7)

	got := render(t, r)
	want := "# HELP test_reqs_total Requests.\n" +
		"# TYPE test_reqs_total counter\n" +
		`test_reqs_total{endpoint="/healthz",code="200"} 2` + "\n" +
		`test_reqs_total{endpoint="/v1/check",code="200"} 7` + "\n" +
		`test_reqs_total{endpoint="/v1/check",code="500"} 1` + "\n"
	if got != want {
		t.Fatalf("render mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if again := render(t, r); again != got {
		t.Fatalf("rendering is not deterministic")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	got := render(t, r)
	want := "# HELP test_latency_seconds Latency.\n" +
		"# TYPE test_latency_seconds histogram\n" +
		`test_latency_seconds_bucket{le="0.1"} 2` + "\n" +
		`test_latency_seconds_bucket{le="1"} 3` + "\n" +
		`test_latency_seconds_bucket{le="10"} 4` + "\n" +
		`test_latency_seconds_bucket{le="+Inf"} 5` + "\n" +
		"test_latency_seconds_sum 102.65\n" +
		"test_latency_seconds_count 5\n"
	if got != want {
		t.Fatalf("render mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestHistogramVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("test_dur_seconds", "Durations.", []float64{1}, "op")
	v.With("b").Observe(0.5)
	v.With("a").Observe(2)

	got := render(t, r)
	want := "# HELP test_dur_seconds Durations.\n" +
		"# TYPE test_dur_seconds histogram\n" +
		`test_dur_seconds_bucket{op="a",le="1"} 0` + "\n" +
		`test_dur_seconds_bucket{op="a",le="+Inf"} 1` + "\n" +
		`test_dur_seconds_sum{op="a"} 2` + "\n" +
		`test_dur_seconds_count{op="a"} 1` + "\n" +
		`test_dur_seconds_bucket{op="b",le="1"} 1` + "\n" +
		`test_dur_seconds_bucket{op="b",le="+Inf"} 1` + "\n" +
		`test_dur_seconds_sum{op="b"} 0.5` + "\n" +
		`test_dur_seconds_count{op="b"} 1` + "\n"
	if got != want {
		t.Fatalf("render mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "x")
	b := r.Counter("test_total", "x")
	if a != b {
		t.Fatalf("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("type-mismatched re-registration did not panic")
		}
	}()
	r.Gauge("test_total", "x")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("test_esc_total", "Esc.", "v").With("a\"b\\c\nd").Inc()
	got := render(t, r)
	if !strings.Contains(got, `test_esc_total{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", got)
	}
}

func TestEmptyFamilyEmitsHeader(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("test_unused_total", "Never sampled.", "k")
	got := render(t, r)
	want := "# HELP test_unused_total Never sampled.\n# TYPE test_unused_total counter\n"
	if got != want {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestTimerUsesCallerClock(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_span_seconds", "Spans.", DefBuckets)
	now := time.Unix(100, 0)
	clock := func() time.Time { return now }
	tm := StartTimer(clock, h)
	now = now.Add(250 * time.Millisecond)
	if d := tm.ObserveDuration(); d != 250*time.Millisecond {
		t.Fatalf("ObserveDuration = %v", d)
	}
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
	if got := h.Sum(); got != 0.25 {
		t.Fatalf("Sum = %v, want 0.25", got)
	}
}

func TestObserveSince(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_since_seconds", "Spans.", []float64{1})
	start := time.Unix(0, 0)
	h.ObserveSince(start, start.Add(2*time.Second))
	if got := h.Sum(); got != 2 {
		t.Fatalf("Sum = %v, want 2", got)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "test_total 1") {
		t.Fatalf("body missing sample:\n%s", rec.Body.String())
	}
}

func TestProgressReporter(t *testing.T) {
	r := NewRegistry()
	p := NewProgressReporter(r)
	p.Report(progress.Event{Stage: "reach.grid", Done: 4, Total: 16})
	p.Report(progress.Event{Stage: "reach.grid", Done: 16, Total: 16})
	p.Report(progress.Event{Stage: "sim", Done: 4096, Total: 0})

	got := render(t, r)
	for _, want := range []string{
		`crn_progress_events_total{stage="reach.grid"} 2`,
		`crn_progress_events_total{stage="sim"} 1`,
		`crn_progress_done{stage="reach.grid"} 16`,
		`crn_progress_total{stage="reach.grid"} 16`,
		`crn_progress_total{stage="sim"} 0`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in:\n%s", want, got)
		}
	}
}

// TestConcurrentHotPath exercises the atomic paths under the race
// detector (CI runs this package with -race).
func TestConcurrentHotPath(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_hot_total", "x")
	g := r.Gauge("test_hot_depth", "x")
	h := r.HistogramVec("test_hot_seconds", "x", DefBuckets, "op")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			op := []string{"a", "b"}[i%2]
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.With(op).Observe(float64(j) / 1000)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = render(t, r)
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %d, want 8000", g.Value())
	}
	if n := h.With("a").Count() + h.With("b").Count(); n != 8000 {
		t.Fatalf("histogram count = %d, want 8000", n)
	}
}
