package metrics

import "crncompose/internal/progress"

// ProgressReporter adapts a progress.Event stream into per-stage
// metric families, so every engine's throughput shows up on /metrics
// without touching engine code:
//
//	crn_progress_events_total{stage}  counter — events posted
//	crn_progress_done{stage}          gauge   — latest Done
//	crn_progress_total{stage}         gauge   — latest Total (0 = unknown)
//
// The stage label is the engine's documented stage string
// ("reach.grid", "reach.explore", "sim", "classify.regions",
// "synth.modules"). Safe for concurrent use; engines post at coarse
// deterministic strides, so the per-event map lookup is cheap
// relative to the work between events.
type ProgressReporter struct {
	events *CounterVec
	done   *GaugeVec
	total  *GaugeVec
}

// NewProgressReporter registers the progress families on r and
// returns the adapter.
func NewProgressReporter(r *Registry) *ProgressReporter {
	return &ProgressReporter{
		events: r.CounterVec("crn_progress_events_total",
			"Progress events posted, by engine stage.", "stage"),
		done: r.GaugeVec("crn_progress_done",
			"Latest per-stage progress count (units are stage-specific: grid inputs, frontier heads, sim steps, regions, modules).", "stage"),
		total: r.GaugeVec("crn_progress_total",
			"Latest known per-stage unit total (0 when the total is unknown up front).", "stage"),
	}
}

// Report implements progress.Reporter.
func (p *ProgressReporter) Report(e progress.Event) {
	p.events.With(e.Stage).Inc()
	p.done.With(e.Stage).Set(e.Done)
	p.total.With(e.Stage).Set(e.Total)
}
