// Package parse reads and writes the textual CRN format used by the command
// line tools and examples:
//
//	# comment
//	#input X1 X2
//	#output Y
//	#leader L
//	X1 + X2 -> Y
//	L -> 2Y + L0
//	2X -> 0          (annihilation: empty product side is written "0")
//
// Coefficients are optional (default 1) and may be separated from the
// species name by whitespace ("2 X" and "2X" are both accepted). The arrow
// may be "->" or "→".
package parse

import (
	"fmt"
	"strings"
	"unicode"

	"crncompose/internal/crn"
)

// Parse parses a full CRN document.
func Parse(input string) (*crn.CRN, error) {
	var (
		inputs    []crn.Species
		output    crn.Species
		leader    crn.Species
		reactions []crn.Reaction
	)
	for lineNo, raw := range strings.Split(input, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			directive, rest, _ := strings.Cut(strings.TrimPrefix(line, "#"), " ")
			rest = strings.TrimSpace(rest)
			switch strings.ToLower(directive) {
			case "input":
				for _, name := range strings.Fields(rest) {
					inputs = append(inputs, crn.Species(name))
				}
			case "output":
				if rest == "" {
					return nil, fmt.Errorf("parse: line %d: #output needs a species", lineNo+1)
				}
				output = crn.Species(rest)
			case "leader":
				if rest == "" {
					return nil, fmt.Errorf("parse: line %d: #leader needs a species", lineNo+1)
				}
				leader = crn.Species(rest)
			default:
				// Plain comment.
			}
			continue
		}
		r, err := parseReaction(line)
		if err != nil {
			return nil, fmt.Errorf("parse: line %d: %w", lineNo+1, err)
		}
		reactions = append(reactions, r)
	}
	if output == "" {
		return nil, fmt.Errorf("parse: missing #output directive")
	}
	return crn.New(inputs, output, leader, reactions)
}

// ParseReaction parses a single reaction such as "2X + L -> 3Y".
func ParseReaction(line string) (crn.Reaction, error) {
	r, err := parseReaction(line)
	if err != nil {
		return crn.Reaction{}, fmt.Errorf("parse: %w", err)
	}
	return r, nil
}

// parseReaction is the unprefixed inner parser: Parse wraps its errors
// with the line number, ParseReaction with the bare package prefix.
func parseReaction(line string) (crn.Reaction, error) {
	line = strings.ReplaceAll(line, "→", "->")
	lhs, rhs, ok := strings.Cut(line, "->")
	if !ok {
		return crn.Reaction{}, fmt.Errorf("missing arrow in %q", line)
	}
	reactants, err := parseSide(lhs)
	if err != nil {
		return crn.Reaction{}, fmt.Errorf("reactants of %q: %w", line, err)
	}
	products, err := parseSide(rhs)
	if err != nil {
		return crn.Reaction{}, fmt.Errorf("products of %q: %w", line, err)
	}
	if len(reactants) == 0 && len(products) == 0 {
		return crn.Reaction{}, fmt.Errorf("empty reaction %q", line)
	}
	return crn.Reaction{Reactants: reactants, Products: products}, nil
}

func parseSide(s string) ([]crn.Term, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "0" || s == "∅" {
		return nil, nil
	}
	var terms []crn.Term
	for _, part := range strings.Split(s, "+") {
		t, err := parseTerm(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	return terms, nil
}

func parseTerm(s string) (crn.Term, error) {
	if s == "" {
		return crn.Term{}, fmt.Errorf("empty term")
	}
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	coeff := int64(1)
	if i > 0 {
		var n int64
		for _, c := range s[:i] {
			n = n*10 + int64(c-'0')
			if n > 1<<40 {
				return crn.Term{}, fmt.Errorf("coefficient too large in %q", s)
			}
		}
		coeff = n
	}
	name := strings.TrimSpace(s[i:])
	if name == "" {
		return crn.Term{}, fmt.Errorf("missing species name in %q", s)
	}
	if !validSpeciesName(name) {
		return crn.Term{}, fmt.Errorf("invalid species name %q", name)
	}
	if coeff == 0 {
		return crn.Term{}, fmt.Errorf("zero coefficient in %q", s)
	}
	return crn.Term{Coeff: coeff, Sp: crn.Species(name)}, nil
}

func validSpeciesName(name string) bool {
	for i, r := range name {
		switch {
		case unicode.IsLetter(r) || r == '_':
		case (unicode.IsDigit(r) || r == '\'' || r == '.' || r == '[' || r == ']' || r == ',' || r == '-') && i > 0:
		default:
			return false
		}
	}
	return true
}

// Format renders a CRN in the canonical format accepted by Parse.
// It is the inverse of Parse up to whitespace and comments.
func Format(c *crn.CRN) string { return c.String() }
