package parse

import (
	"strings"
	"testing"

	"crncompose/internal/crn"
)

func TestParseMinCRN(t *testing.T) {
	src := `
# min of two inputs (Fig 1)
#input X1 X2
#output Y
X1 + X2 -> Y
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Dim() != 2 || c.Output != "Y" || c.Leader != "" {
		t.Fatalf("roles wrong: %+v", c)
	}
	if len(c.Reactions) != 1 || c.Reactions[0].String() != "X1 + X2 -> Y" {
		t.Fatalf("reactions wrong: %v", c.Reactions)
	}
	if !c.IsOutputOblivious() {
		t.Error("parsed min CRN should be output-oblivious")
	}
}

func TestParseCoefficientsAndLeader(t *testing.T) {
	src := `#input X
#output Y
#leader L
L -> 3Y + P0
P0 + 2 X -> P1
2Y -> Y
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Leader != "L" {
		t.Errorf("leader = %q", c.Leader)
	}
	r := c.Reactions[1]
	if r.R("X") != 2 {
		t.Errorf("coefficient of X = %d, want 2", r.R("X"))
	}
	if c.IsOutputOblivious() {
		t.Error("2Y -> Y consumes output")
	}
}

func TestParseEmptySides(t *testing.T) {
	for _, arrowRHS := range []string{"0", "∅"} {
		src := "#input X\n#output Y\nK + Y -> " + arrowRHS + "\nX -> Y\n"
		c, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", arrowRHS, err)
		}
		if len(c.Reactions[0].Products) != 0 {
			t.Errorf("%q: products = %v", arrowRHS, c.Reactions[0].Products)
		}
	}
}

func TestParseUnicodeArrow(t *testing.T) {
	c, err := Parse("#input X\n#output Y\nX → 2Y\n")
	if err != nil {
		t.Fatal(err)
	}
	if c.Reactions[0].P("Y") != 2 {
		t.Error("unicode arrow parse failed")
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name, src, frag string
	}{
		{"no output", "#input X\nX -> Y\n", "missing #output"},
		{"no arrow", "#output Y\nX Y\n", "missing arrow"},
		{"bad species", "#output Y\n2 -> Y\n", "name"},
		{"empty term", "#output Y\nX + -> Y\n", "empty term"},
		{"bare output directive", "#output\nX -> Y\n", "#output needs"},
		{"bare leader directive", "#output Y\n#leader\nX -> Y\n", "#leader needs"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error = %v, want contains %q", err, tc.frag)
			}
		})
	}
}

func TestRoundTrip(t *testing.T) {
	// Format(Parse(s)) must reparse to the same CRN.
	srcs := []string{
		"#input X1 X2\n#output Y\nX1 + X2 -> Y\n",
		"#input X\n#output Y\n#leader L\nL -> 2Y + S0\nS0 + X -> Y + S1\n",
		"#input X\n#output Y\n3X -> 0\nX -> Y\n",
	}
	for _, src := range srcs {
		c1, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := Parse(Format(c1))
		if err != nil {
			t.Fatalf("reparse: %v\n%s", err, Format(c1))
		}
		if Format(c1) != Format(c2) {
			t.Fatalf("round trip drift:\n%s\nvs\n%s", Format(c1), Format(c2))
		}
	}
}

func TestParseReactionNames(t *testing.T) {
	// Species with subscripts/primes used by the synthesizer must parse.
	r, err := ParseReaction("C12 + X1 -> 2Y + C13")
	if err != nil {
		t.Fatal(err)
	}
	if r.R("C12") != 1 || r.P("C13") != 1 {
		t.Errorf("parsed: %v", r)
	}
	if _, err := ParseReaction("L -> L0"); err != nil {
		t.Error(err)
	}
}

func TestFormatSynthesizedCRN(t *testing.T) {
	c := crn.MustNew([]crn.Species{"X"}, "Y", "L", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "L"}}, Products: []crn.Term{{Coeff: 2, Sp: "Y"}, {Coeff: 1, Sp: "S0"}}},
	})
	got, err := Parse(Format(c))
	if err != nil {
		t.Fatal(err)
	}
	if got.Reactions[0].P("Y") != 2 {
		t.Error("format/parse mismatch")
	}
}
