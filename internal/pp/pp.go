// Package pp provides the population-protocol substrate referenced in the
// paper's introduction: population protocols are the subclass of CRNs whose
// reactions have exactly two reactants and two products.
//
// Two pieces are implemented:
//
//   - Decompose (footnote 5 of the paper): any higher-order reaction such
//     as 3X → Y is converted to reactions with at most two reactants via
//     reversible complexation (2X ↔ X2, X + X2 → Y), preserving stable
//     computation;
//   - a pair-interaction simulator for CRNs in strict population-protocol
//     form, scheduling uniformly random agent pairs.
package pp

import (
	"fmt"
	"math/rand/v2"

	"crncompose/internal/crn"
)

// Decompose rewrites every reaction with more than two total reactants into
// an equivalent chain using reversible complex-formation reactions, exactly
// as in footnote 5 of the paper. Reactions with ≤ 2 reactants pass through
// unchanged. The output CRN computes the same function: complexes can
// always dissociate, so no partial complex is ever stuck.
func Decompose(c *crn.CRN) (*crn.CRN, error) {
	var out []crn.Reaction
	complexes := make(map[string]crn.Species)
	fresh := 0

	// complexOf returns a species representing the bound pair (a, b),
	// adding the reversible binding reactions on first use.
	complexOf := func(a, b crn.Species) crn.Species {
		key := string(a) + "+" + string(b)
		if b < a {
			key = string(b) + "+" + string(a)
		}
		if sp, ok := complexes[key]; ok {
			return sp
		}
		fresh++
		sp := crn.Species(fmt.Sprintf("cplx%d", fresh))
		complexes[key] = sp
		var reactants []crn.Term
		if a == b {
			reactants = []crn.Term{{Coeff: 2, Sp: a}}
		} else {
			reactants = []crn.Term{{Coeff: 1, Sp: a}, {Coeff: 1, Sp: b}}
		}
		out = append(out,
			crn.Reaction{Reactants: reactants, Products: []crn.Term{{Coeff: 1, Sp: sp}}, Name: "bind " + key},
			crn.Reaction{Reactants: []crn.Term{{Coeff: 1, Sp: sp}}, Products: reactants, Name: "unbind " + key},
		)
		return sp
	}

	for _, r := range c.Reactions {
		if r.Order() <= 2 {
			out = append(out, r)
			continue
		}
		// Flatten the reactant multiset and fold it into a single complex.
		var flat []crn.Species
		for _, t := range r.Reactants {
			for k := int64(0); k < t.Coeff; k++ {
				flat = append(flat, t.Sp)
			}
		}
		cur := flat[0]
		for i := 1; i < len(flat)-1; i++ {
			cur = complexOf(cur, flat[i])
		}
		// Final step: cur + last reactant → products.
		last := flat[len(flat)-1]
		var reactants []crn.Term
		if cur == last {
			reactants = []crn.Term{{Coeff: 2, Sp: cur}}
		} else {
			reactants = []crn.Term{{Coeff: 1, Sp: cur}, {Coeff: 1, Sp: last}}
		}
		out = append(out, crn.Reaction{Reactants: reactants, Products: r.Products, Name: r.Name})
	}
	return crn.New(c.Inputs, c.Output, c.Leader, out)
}

// IsPopulationProtocol reports whether every reaction has exactly two
// reactants and exactly two products (counting multiplicity), the strict
// population-protocol form.
func IsPopulationProtocol(c *crn.CRN) bool {
	for _, r := range c.Reactions {
		var products int64
		for _, t := range r.Products {
			products += t.Coeff
		}
		if r.Order() != 2 || products != 2 {
			return false
		}
	}
	return true
}

// PadToProtocol converts a CRN with at-most-2-reactant/at-most-2-product
// reactions into strict population-protocol form by padding both sides
// with an inert "blank" species F. Reactions that change the total
// molecular count cannot be padded (population protocols conserve agent
// count) and cause an error unless the deficit is on the product side only
// — a product deficit is filled with F, and a reactant deficit consumes F
// (so initial configurations must include enough blanks).
func PadToProtocol(c *crn.CRN, blank crn.Species) (*crn.CRN, error) {
	var out []crn.Reaction
	for _, r := range c.Reactions {
		var nr, np int64
		for _, t := range r.Reactants {
			nr += t.Coeff
		}
		for _, t := range r.Products {
			np += t.Coeff
		}
		if nr > 2 || np > 2 {
			return nil, fmt.Errorf("pp: reaction %s has order > 2; run Decompose first", r)
		}
		reactants := append([]crn.Term(nil), r.Reactants...)
		products := append([]crn.Term(nil), r.Products...)
		if nr < 2 {
			reactants = append(reactants, crn.Term{Coeff: 2 - nr, Sp: blank})
		}
		if np < 2 {
			products = append(products, crn.Term{Coeff: 2 - np, Sp: blank})
		}
		out = append(out, crn.Reaction{Reactants: reactants, Products: products, Name: r.Name})
	}
	return crn.New(c.Inputs, c.Output, c.Leader, out)
}

// SimulatePairs runs the population-protocol scheduler: repeatedly pick an
// ordered pair of distinct molecules uniformly at random; if some reaction
// matches the pair's species, apply it. The run stops after maxSteps
// interactions or when no reaction is applicable at all (then converged).
// The CRN must be in strict population-protocol form.
func SimulatePairs(start crn.Config, seed uint64, maxSteps int64) (crn.Config, int64, bool) {
	c := start.CRN()
	if !IsPopulationProtocol(c) {
		panic("pp: CRN is not in population-protocol form")
	}
	rng := rand.New(rand.NewPCG(seed, 0xA5A5A5A5DEADBEEF))
	cur := start.Clone()
	species := c.SpeciesList()

	var interactions int64
	failStreak := 0
	for interactions < maxSteps {
		if cur.IsTerminal() {
			return cur, interactions, true
		}
		total := cur.Total()
		if total < 2 {
			return cur, interactions, true
		}
		// Sample two distinct molecules uniformly.
		i := rng.Int64N(total)
		j := rng.Int64N(total - 1)
		if j >= i {
			j++
		}
		a := speciesAt(cur, species, i)
		b := speciesAt(cur, species, j)
		fired := false
		for ri, r := range c.Reactions {
			if pairMatches(r, a, b) && cur.Applicable(ri) {
				cur.ApplyInPlace(ri)
				fired = true
				interactions++
				failStreak = 0
				break
			}
		}
		if !fired {
			failStreak++
			interactions++
			// A long streak of null interactions on a terminal-for-pairs
			// configuration means convergence in practice.
			if failStreak > int(16*total*total) {
				return cur, interactions, cur.IsTerminal()
			}
		}
	}
	return cur, interactions, false
}

func speciesAt(cf crn.Config, species []crn.Species, idx int64) crn.Species {
	for _, sp := range species {
		n := cf.Count(sp)
		if idx < n {
			return sp
		}
		idx -= n
	}
	panic("pp: molecule index out of range")
}

func pairMatches(r crn.Reaction, a, b crn.Species) bool {
	// The reaction's reactant multiset must be exactly {a, b}.
	switch len(r.Reactants) {
	case 1:
		return r.Reactants[0].Coeff == 2 && a == b && a == r.Reactants[0].Sp
	case 2:
		x, y := r.Reactants[0].Sp, r.Reactants[1].Sp
		return (x == a && y == b) || (x == b && y == a)
	default:
		return false
	}
}
