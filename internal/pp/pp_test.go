package pp

import (
	"testing"

	"crncompose/internal/crn"
	"crncompose/internal/reach"
	"crncompose/internal/vec"
)

func TestDecomposeTriple(t *testing.T) {
	// Footnote 5: 3X → Y becomes 2X ↔ X2 and X + X2 → Y.
	c := crn.MustNew([]crn.Species{"X"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 3, Sp: "X"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
	dec, err := Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Reactions) != 3 {
		t.Fatalf("decomposed into %d reactions, want 3:\n%s", len(dec.Reactions), dec)
	}
	for _, r := range dec.Reactions {
		if r.Order() > 2 {
			t.Fatalf("reaction %s still has order > 2", r)
		}
	}
	// Same function: ⌊x/3⌋.
	res, err := reach.CheckGrid(dec, func(x []int64) int64 { return x[0] / 3 },
		[]int64{0}, []int64{12})
	if err != nil || !res.OK() {
		t.Fatalf("%v %v", err, res)
	}
}

func TestDecomposePreservesOblivious(t *testing.T) {
	// (n+1)X → nX + Y clamp with n = 2 has order 3.
	c := crn.MustNew([]crn.Species{"X"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 3, Sp: "X"}}, Products: []crn.Term{{Coeff: 2, Sp: "X"}, {Coeff: 1, Sp: "Y"}}},
	})
	dec, err := Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.IsOutputOblivious() {
		t.Error("decomposition broke output-obliviousness")
	}
	res, err := reach.CheckGrid(dec, func(x []int64) int64 { return max(x[0]-2, 0) },
		[]int64{0}, []int64{10})
	if err != nil || !res.OK() {
		t.Fatalf("%v %v", err, res)
	}
}

func TestDecomposeMixedReactants(t *testing.T) {
	// 2A + B → Y: complex of (A,A) then + B.
	c := crn.MustNew([]crn.Species{"A", "B"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 2, Sp: "A"}, {Coeff: 1, Sp: "B"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
	dec, err := Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x []int64) int64 { return min(x[0]/2, x[1]) }
	res, err := reach.CheckGrid(dec, f, []int64{0, 0}, []int64{6, 4})
	if err != nil || !res.OK() {
		t.Fatalf("%v %v", err, res)
	}
}

func TestDecomposePassThrough(t *testing.T) {
	c := crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}, {Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
	dec, err := Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Reactions) != 1 {
		t.Error("bimolecular reaction should pass through unchanged")
	}
}

func TestIsPopulationProtocol(t *testing.T) {
	pp := crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}, {Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}, {Coeff: 1, Sp: "F"}}},
	})
	if !IsPopulationProtocol(pp) {
		t.Error("2/2 reaction not recognized")
	}
	notPP := crn.MustNew([]crn.Species{"X"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X"}}, Products: []crn.Term{{Coeff: 2, Sp: "Y"}}},
	})
	if IsPopulationProtocol(notPP) {
		t.Error("1-reactant reaction recognized as PP")
	}
}

func TestPadToProtocol(t *testing.T) {
	// min CRN: X1 + X2 → Y has one product; pad with F.
	c := crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}, {Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
	padded, err := PadToProtocol(c, "F")
	if err != nil {
		t.Fatal(err)
	}
	if !IsPopulationProtocol(padded) {
		t.Fatalf("padding did not reach PP form:\n%s", padded)
	}
	// Order > 2 rejected.
	big := crn.MustNew([]crn.Species{"X"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 3, Sp: "X"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
	if _, err := PadToProtocol(big, "F"); err == nil {
		t.Error("order-3 reaction padded")
	}
}

func TestSimulatePairsComputesMin(t *testing.T) {
	c := crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}, {Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}, {Coeff: 1, Sp: "F"}}},
	})
	if !IsPopulationProtocol(c) {
		t.Fatal("not in PP form")
	}
	final, steps, converged := SimulatePairs(c.MustInitialConfig(vec.New(30, 18)), 5, 1_000_000)
	if !converged {
		t.Fatalf("did not converge after %d interactions", steps)
	}
	if got := final.Output(); got != 18 {
		t.Errorf("min(30,18) = %d", got)
	}
}

func TestSimulatePairsLeaderProtocol(t *testing.T) {
	// Leader-based min(1, x) in PP form: L + X → Y + F.
	c := crn.MustNew([]crn.Species{"X"}, "Y", "L", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "L"}, {Coeff: 1, Sp: "X"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}, {Coeff: 1, Sp: "F"}}},
	})
	final, _, converged := SimulatePairs(c.MustInitialConfig(vec.New(10)), 9, 1_000_000)
	if !converged || final.Output() != 1 {
		t.Fatalf("converged=%v output=%d", converged, final.Output())
	}
}

func TestDecomposeThenPadPipeline(t *testing.T) {
	// Full pipeline on 3X → Y: decompose (footnote 5), then pad to strict
	// PP form, then simulate with the pair scheduler. Padding adds
	// blank-consuming unbind reactions, so the configuration seeds blanks.
	c := crn.MustNew([]crn.Species{"X"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 3, Sp: "X"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
	dec, err := Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	padded, err := PadToProtocol(dec, "F")
	if err != nil {
		t.Fatal(err)
	}
	if !IsPopulationProtocol(padded) {
		t.Fatal("pipeline did not reach PP form")
	}
	// Simulate with enough blanks for the padded unbind reactions.
	cfg, err := padded.ConfigFromCounts(map[crn.Species]int64{"X": 9, "F": 20})
	if err != nil {
		t.Fatal(err)
	}
	final, _, converged := SimulatePairs(cfg, 11, 2_000_000)
	if !converged {
		t.Fatal("did not converge")
	}
	if got := final.Output(); got != 3 {
		t.Errorf("⌊9/3⌋ = %d, want 3", got)
	}
}
