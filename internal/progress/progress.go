// Package progress defines the lightweight progress-reporting seam shared
// by the long-running engines (reach, sim, classify, synth). Engines post
// Events only at the same deterministic points where they poll their
// context — level barriers, grid-chunk boundaries, simulation step windows
// — so attaching a Reporter never perturbs the computed result, only
// observes it. A nil Reporter is always legal and means "don't report";
// call sites go through Post so they never have to nil-check.
package progress

// Event is one progress sample from an engine.
type Event struct {
	// Stage names the engine loop posting the sample, e.g. "reach.grid",
	// "reach.explore", "sim", "classify.regions", "synth.modules".
	Stage string
	// Done is the monotonically nondecreasing unit count for the stage
	// (grid inputs checked, configurations interned, steps simulated).
	Done int64
	// Total is the known unit total, or 0 when the total is unknown or
	// would overflow (open-ended exploration, huge grids).
	Total int64
}

// Reporter receives Events. Implementations must be cheap — they run on
// the engine's own goroutine at barrier points — and, when a single
// Reporter is shared across concurrent runs (an ensemble, a multi-rect
// job), safe for concurrent use.
type Reporter interface {
	Report(e Event)
}

// Func adapts an ordinary function to the Reporter interface.
type Func func(e Event)

// Report implements Reporter.
func (f Func) Report(e Event) { f(e) }

// Post sends e to r if r is non-nil; the nil-safety lets engines hold an
// optional Reporter without guarding every call site.
func Post(r Reporter, stage string, done, total int64) {
	if r != nil {
		r.Report(Event{Stage: stage, Done: done, Total: total})
	}
}

// multi fans every event out to a fixed set of reporters, in order.
type multi []Reporter

// Report implements Reporter.
func (m multi) Report(e Event) {
	for _, r := range m {
		r.Report(e)
	}
}

// Multi combines reporters into one that fans each event out to all of
// them — how the serve layer feeds a single engine run into both the
// metrics adapter and the tracing span adapter. Nil entries are dropped
// (interface-nil only: passing a non-nil interface holding a nil pointer
// is the caller's bug, same as with Post); zero live reporters yields nil,
// and a single one is returned unwrapped.
func Multi(rs ...Reporter) Reporter {
	live := make(multi, 0, len(rs))
	for _, r := range rs {
		if r != nil {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}
