package progress

import "testing"

func TestPostNilReporterIsNoop(t *testing.T) {
	Post(nil, "x", 1, 2) // must not panic
}

func TestFuncAdapterDelivers(t *testing.T) {
	var got []Event
	r := Func(func(e Event) { got = append(got, e) })
	Post(r, "reach.grid", 3, 9)
	Post(r, "sim", 4096, 0)
	if len(got) != 2 {
		t.Fatalf("got %d events, want 2", len(got))
	}
	if got[0] != (Event{Stage: "reach.grid", Done: 3, Total: 9}) {
		t.Fatalf("event 0 = %+v", got[0])
	}
	if got[1] != (Event{Stage: "sim", Done: 4096, Total: 0}) {
		t.Fatalf("event 1 = %+v", got[1])
	}
}
