package progress_test

import (
	"sync"
	"testing"

	"crncompose/internal/benchcrn"
	"crncompose/internal/classify"
	"crncompose/internal/core"
	"crncompose/internal/progress"
	"crncompose/internal/reach"
	"crncompose/internal/sim"
	"crncompose/internal/synth"
	"crncompose/internal/vec"
)

// recorder captures every posted event, grouped by stage. Posts may come
// from engine worker goroutines, so it is mutex-guarded.
type recorder struct {
	mu     sync.Mutex
	events map[string][]progress.Event
}

func (r *recorder) Report(e progress.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.events == nil {
		r.events = make(map[string][]progress.Event)
	}
	r.events[e.Stage] = append(r.events[e.Stage], e)
}

func (r *recorder) stage(s string) []progress.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.events[s]
}

// TestEngineStages pins the progress contract every consumer (serve's
// metrics adapter, the CLI -progress printers) relies on: each engine
// posts its documented stage string, Done never decreases, and Total is
// the documented constant for the whole run. A renamed stage or a
// regressing Done breaks dashboards silently, so it is asserted here.
func TestEngineStages(t *testing.T) {
	const simSteps = 3 * 4096 // three cancel windows => at least two posts

	cases := []struct {
		stage string
		// wantTotal is the documented constant Total for the stage;
		// -1 means "unknown in advance" (only constancy is checked).
		wantTotal int64
		run       func(t *testing.T, rep progress.Reporter)
	}{
		{
			// CheckGrid posts once per grid chunk with Done = inputs
			// checked so far and Total = grid points.
			stage:     "reach.grid",
			wantTotal: 6,
			run: func(t *testing.T, rep progress.Reporter) {
				c := benchcrn.SkewGrid(1, 3) // stably computes f ≡ 0
				res, err := reach.CheckGrid(c, func([]int64) int64 { return 0 },
					[]int64{0}, []int64{5}, reach.WithWorkers(1), reach.WithProgress(rep))
				if err != nil || !res.OK() {
					t.Fatalf("CheckGrid: %v %v", res, err)
				}
			},
		},
		{
			// Explore posts every 1024 expanded heads with Done = configs
			// discovered; the frontier size is unknowable, so Total = 0.
			stage:     "reach.explore",
			wantTotal: 0,
			run: func(t *testing.T, rep progress.Reporter) {
				// 2^11 configurations at x = 1 — past the 1024-head stride.
				c := benchcrn.SkewGrid(1, 11)
				g := reach.Explore(c.MustInitialConfig(vec.New(1)),
					reach.WithWorkers(1), reach.WithProgress(rep))
				if g.NumConfigs() <= 1024 {
					t.Fatalf("graph too small to cross the post stride: %d", g.NumConfigs())
				}
			},
		},
		{
			// Simulators post every cancel window with Done = steps fired
			// and Total = the step budget.
			stage:     "sim",
			wantTotal: simSteps,
			run: func(t *testing.T, rep progress.Reporter) {
				// A ring token cycles forever, so the run exhausts MaxSteps.
				start := benchcrn.Ring(16).MustInitialConfig(vec.New(1))
				r := sim.FairRandom(start, sim.WithSeed(1),
					sim.WithMaxSteps(simSteps), sim.WithProgress(rep))
				if r.Converged {
					t.Fatal("ring workload converged; sim posts not exercised")
				}
			},
		},
		{
			// The classifier posts per eventual determined region with
			// Total = regions in the census (unknown here in advance).
			stage:     "classify.regions",
			wantTotal: -1,
			run: func(t *testing.T, rep progress.Reporter) {
				res, err := classify.Analyze(core.Library()["min"],
					classify.Options{Progress: rep})
				if err != nil || !res.Computable {
					t.Fatalf("Analyze(min): %+v %v", res, err)
				}
			},
		},
		{
			// General posts per top-level restriction module with
			// Total = d·n; N = 1 forces d·1 = 2 modules for min.
			stage:     "synth.modules",
			wantTotal: 2,
			run: func(t *testing.T, rep progress.Reporter) {
				_, _, err := synth.General(core.Library()["min"],
					synth.GeneralOptions{N: 1, Progress: rep})
				if err != nil {
					t.Fatalf("General(min): %v", err)
				}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.stage, func(t *testing.T) {
			rec := &recorder{}
			tc.run(t, rec)
			evs := rec.stage(tc.stage)
			if len(evs) == 0 {
				got := make([]string, 0, len(rec.events))
				for s := range rec.events {
					got = append(got, s)
				}
				t.Fatalf("no %q events posted (saw stages %q)", tc.stage, got)
			}
			for i, e := range evs {
				if e.Done < 0 {
					t.Errorf("event %d: negative Done %d", i, e.Done)
				}
				if i > 0 && e.Done < evs[i-1].Done {
					t.Errorf("Done regressed at event %d: %d after %d",
						i, e.Done, evs[i-1].Done)
				}
				if e.Total != evs[0].Total {
					t.Errorf("Total changed mid-run at event %d: %d then %d",
						i, evs[0].Total, e.Total)
				}
			}
			if tc.wantTotal >= 0 && evs[0].Total != tc.wantTotal {
				t.Errorf("Total = %d, want %d", evs[0].Total, tc.wantTotal)
			}
		})
	}
}
