package quilt

import (
	"fmt"

	"crncompose/internal/rat"
	"crncompose/internal/vec"
)

// Eval1D is a one-dimensional integer function.
type Eval1D func(x int64) int64

// FitEventually1D finds the eventually quilt-affine structure of a
// semilinear nondecreasing f : N -> N as used by Theorem 3.1 and Fig 5:
// an index n, a period p, and finite differences δ_0..δ_{p-1} such that
// f(x+1)-f(x) = δ_{x mod p} for all x ≥ n. It searches n ≤ maxN and
// p ≤ maxP and verifies the candidate on [n, horizon]. The returned
// structure is exact for genuinely eventually-quilt-affine f whose
// parameters fall within the search bounds and whose pattern is visible
// within the horizon.
func FitEventually1D(f Eval1D, maxN, maxP, horizon int64) (n, p int64, deltas []int64, err error) {
	if horizon < maxN+3*maxP {
		horizon = maxN + 3*maxP
	}
	diffs := make([]int64, horizon)
	for x := int64(0); x < horizon; x++ {
		d := f(x+1) - f(x)
		if d < 0 {
			return 0, 0, nil, fmt.Errorf("quilt: f is decreasing at x=%d (Δ=%d)", x, d)
		}
		diffs[x] = d
	}
	for n = 0; n <= maxN; n++ {
		for p = 1; p <= maxP; p++ {
			ok := true
			for x := n; x+p < horizon; x++ {
				if diffs[x] != diffs[x+p] {
					ok = false
					break
				}
			}
			if ok {
				deltas = make([]int64, p)
				for a := int64(0); a < p; a++ {
					// δ_a is the difference at any x ≥ n with x ≡ a (mod p).
					x := n + ((a-n)%p+p)%p
					deltas[a] = diffs[x]
				}
				return n, p, deltas, nil
			}
		}
	}
	return 0, 0, nil, fmt.Errorf("quilt: no eventually-quilt-affine structure found with n ≤ %d, p ≤ %d", maxN, maxP)
}

// FromEventually1D converts the (n, p, δ) structure plus the concrete values
// f(n..n+p-1) into a quilt-affine Func valid for all x ≥ n. The gradient is
// the mean of the deltas; offsets are fitted per congruence class.
func FromEventually1D(f Eval1D, n, p int64, deltas []int64) (*Func, error) {
	if int64(len(deltas)) != p {
		return nil, fmt.Errorf("quilt: %d deltas for period %d", len(deltas), p)
	}
	var sum int64
	for _, d := range deltas {
		sum += d
	}
	grad := rat.New(sum, p) // slope = (Σδ)/p
	// B(a) = f(x) - grad·x for any x ≥ n with x ≡ a (mod p).
	offsets := make([]rat.R, p)
	for a := int64(0); a < p; a++ {
		x := n + ((a-n)%p+p)%p
		offsets[a] = rat.FromInt(f(x)).Sub(grad.MulInt(x))
	}
	return New(rat.NewVec(grad), p, offsets)
}

// FitOnRegion fits a quilt-affine function with the given period to samples
// of f on the set of integer points produced by points, requiring exact
// agreement. It solves for a single gradient shared by all congruence
// classes (Lemma 7.7: on a determined region the gradients must agree) and
// per-class offsets. Returns an error if the samples are not consistent
// with any quilt-affine function of that period, or if some congruence class
// has too few points to pin down the gradient component-wise.
//
// points must contain, for each congruence class present, at least d+1
// points in "general position" along each axis: the fitter uses pairs of
// same-class points differing in a single coordinate direction scaled by p.
func FitOnRegion(f func(vec.V) int64, points []vec.V, period int64, dim int) (*Func, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("quilt: no sample points")
	}
	byClass := make(map[int64][]vec.V)
	for _, x := range points {
		idx := vec.CongruenceIndex(x, period)
		byClass[idx] = append(byClass[idx], x.Clone())
	}
	// Build a least-structure linear system for the gradient: for any two
	// points x, y in the same class, f(y)-f(x) = ∇g·(y-x).
	var rows []rat.Vec
	var rhs []rat.R
	for _, pts := range byClass {
		base := pts[0]
		fb := f(base)
		for _, y := range pts[1:] {
			rows = append(rows, rat.VecFromInts(y.Sub(base)))
			rhs = append(rhs, rat.FromInt(f(y)-fb))
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("quilt: need at least two points in some congruence class")
	}
	grad, okSolve := rat.Mat(rows).Solve(rat.Vec(rhs))
	if !okSolve {
		return nil, fmt.Errorf("quilt: samples are not affine within congruence classes")
	}
	// The system may be under-determined; verify residuals exactly anyway.
	for i, row := range rows {
		if !row.Dot(grad).Eq(rhs[i]) {
			return nil, fmt.Errorf("quilt: inconsistent samples (row %d)", i)
		}
	}
	// Offsets per class present in the samples; classes not witnessed get
	// offset consistent with integrality by rounding the gradient part,
	// which keeps New's validation meaningful while remaining conservative.
	classes := vec.NumClasses(period, dim)
	offsets := make([]rat.R, classes)
	seen := make([]bool, classes)
	for idx, pts := range byClass {
		x := pts[0]
		offsets[idx] = rat.FromInt(f(x)).Sub(grad.DotInt(x))
		seen[idx] = true
	}
	// Fill unseen classes by nearest seen class offset (keeps the function
	// total; callers that need exactness restrict to witnessed classes).
	var fallback rat.R
	haveFallback := false
	for idx := int64(0); idx < classes; idx++ {
		if seen[idx] {
			fallback = offsets[idx]
			haveFallback = true
			break
		}
	}
	if !haveFallback {
		return nil, fmt.Errorf("quilt: no congruence class witnessed")
	}
	for idx := int64(0); idx < classes; idx++ {
		if !seen[idx] {
			offsets[idx] = fallback
		}
	}
	// Adjust unseen-class offsets so every value is integral: snap
	// grad·a + B(a) to the nearest integer from below.
	for idx := int64(0); idx < classes; idx++ {
		if seen[idx] {
			continue
		}
		a := vec.CongruenceClass(idx, period, dim)
		v := grad.DotInt(a).Add(offsets[idx])
		if !v.IsInt() {
			offsets[idx] = rat.FromInt(v.Floor()).Sub(grad.DotInt(a))
		}
	}
	g, err := New(grad, period, offsets)
	if err != nil {
		return nil, fmt.Errorf("quilt: fitted parameters invalid: %w", err)
	}
	// Final exactness check on all provided samples.
	for _, pts := range byClass {
		for _, x := range pts {
			if g.Eval(x) != f(x) {
				return nil, fmt.Errorf("quilt: fit does not reproduce f at %v", x)
			}
		}
	}
	return g, nil
}
