// Package quilt implements quilt-affine functions (Definition 5.1 of the
// paper): nondecreasing functions g : N^d -> Z of the form
//
//	g(x) = ∇g · x + B(x mod p)
//
// where ∇g ∈ Q^d is the gradient and B : Z^d/pZ^d -> Q the periodic offset,
// with the constraint that g(x) is always an integer. Quilt-affine functions
// have nonnegative periodic finite differences
//
//	δ_{i,a} = ∇g·e_i + B(a+e_i mod p) - B(a mod p) ∈ N,
//
// the structural property that makes them obliviously-computable (Lemma 6.1)
// and that the synth package consumes to emit CRNs.
package quilt

import (
	"fmt"
	"strings"

	"crncompose/internal/rat"
	"crncompose/internal/vec"
)

// Func is a quilt-affine function. Construct with New; the zero value is not
// usable.
type Func struct {
	grad   rat.Vec // ∇g, length d
	period int64   // p ≥ 1
	// offsets[CongruenceIndex(a,p)] = B(a); length p^d.
	offsets []rat.R
	dim     int
}

// New builds a quilt-affine function from its gradient, period, and offset
// table indexed by vec.CongruenceIndex. It validates that g is
// integer-valued on one full period and that the finite differences are all
// nonnegative integers (i.e. g is nondecreasing as Definition 5.1 requires).
func New(grad rat.Vec, period int64, offsets []rat.R) (*Func, error) {
	d := len(grad)
	if period < 1 {
		return nil, fmt.Errorf("quilt: period %d < 1", period)
	}
	want := vec.NumClasses(period, d)
	if int64(len(offsets)) != want {
		return nil, fmt.Errorf("quilt: offset table has %d entries, want p^d = %d", len(offsets), want)
	}
	g := &Func{grad: grad.Clone(), period: period, offsets: append([]rat.R(nil), offsets...), dim: d}
	if err := g.validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustNew is New that panics on error.
func MustNew(grad rat.Vec, period int64, offsets []rat.R) *Func {
	g, err := New(grad, period, offsets)
	if err != nil {
		panic(err)
	}
	return g
}

// Affine builds the special case of a quilt-affine function with period 1:
// g(x) = grad·x + off. grad entries and off may be rational as long as the
// combination is integer on N^d, which for period 1 forces them integral.
func Affine(grad rat.Vec, off rat.R) (*Func, error) {
	return New(grad, 1, []rat.R{off})
}

// Constant returns the constant quilt-affine function on N^d.
func Constant(d int, c int64) *Func {
	return MustNew(rat.ZeroVec(d), 1, []rat.R{rat.FromInt(c)})
}

func (g *Func) validate() error {
	// Integrality: for every congruence class representative a ∈ [0,p)^d,
	// g(a) = ∇g·a + B(a) must be an integer. Then periodicity plus
	// p·∇g ∈ Z^d (checked below) gives integrality everywhere.
	for i := range g.grad {
		if !g.grad[i].MulInt(g.period).IsInt() {
			return fmt.Errorf("quilt: p·∇g not integral in component %d: p=%d, ∇g[%d]=%s", i, g.period, i, g.grad[i])
		}
		if g.grad[i].Sign() < 0 {
			return fmt.Errorf("quilt: gradient component %d is negative (%s); quilt-affine functions are nondecreasing", i, g.grad[i])
		}
	}
	classes := vec.NumClasses(g.period, g.dim)
	for idx := int64(0); idx < classes; idx++ {
		a := vec.CongruenceClass(idx, g.period, g.dim)
		val := g.grad.DotInt(a).Add(g.offsets[idx])
		if !val.IsInt() {
			return fmt.Errorf("quilt: g(%v) = %s is not an integer", a, val)
		}
	}
	// Nondecreasing: every finite difference δ_{i,a} must be a nonnegative
	// integer.
	for i := 0; i < g.dim; i++ {
		for idx := int64(0); idx < classes; idx++ {
			a := vec.CongruenceClass(idx, g.period, g.dim)
			d, err := g.FiniteDifference(i, a)
			if err != nil {
				return err
			}
			if d < 0 {
				return fmt.Errorf("quilt: finite difference δ_{%d,%v} = %d is negative; not nondecreasing", i, a, d)
			}
		}
	}
	return nil
}

// Dim returns the input arity d.
func (g *Func) Dim() int { return g.dim }

// Period returns the period p.
func (g *Func) Period() int64 { return g.period }

// Gradient returns a copy of ∇g.
func (g *Func) Gradient() rat.Vec { return g.grad.Clone() }

// Offset returns B(x mod p).
func (g *Func) Offset(x vec.V) rat.R {
	return g.offsets[vec.CongruenceIndex(x, g.period)]
}

// Eval evaluates g(x) = ∇g·x + B(x mod p). x may have negative components
// (g extends to Z^d); the result is always an integer.
func (g *Func) Eval(x vec.V) int64 {
	if len(x) != g.dim {
		panic(fmt.Sprintf("quilt: arity mismatch: g takes %d inputs, got %d", g.dim, len(x)))
	}
	v := g.grad.DotInt(x).Add(g.Offset(x))
	return v.Int()
}

// FiniteDifference returns δ_{i,a} = g(x+e_i) - g(x) for any x ≡ a (mod p).
// The value depends only on the congruence class of a. It errors if the
// difference is not an integer (impossible for validated functions).
func (g *Func) FiniteDifference(i int, a vec.V) (int64, error) {
	ei := vec.Unit(g.dim, i)
	d := g.grad[i].Add(g.Offset(a.Add(ei))).Sub(g.Offset(a))
	if !d.IsInt() {
		return 0, fmt.Errorf("quilt: non-integer finite difference δ_{%d,%v} = %s", i, a, d)
	}
	return d.Int(), nil
}

// Translate returns the quilt-affine function h(x) = g(x + n). Quilt-affinity
// is preserved by translation (used in Lemma 6.2 to obtain gk(x+n) with
// nonnegative outputs).
func (g *Func) Translate(n vec.V) *Func {
	if len(n) != g.dim {
		panic("quilt: translate arity mismatch")
	}
	classes := vec.NumClasses(g.period, g.dim)
	offsets := make([]rat.R, classes)
	for idx := int64(0); idx < classes; idx++ {
		a := vec.CongruenceClass(idx, g.period, g.dim)
		// h(a) = g(a+n) = ∇g·(a+n) + B(a+n) so
		// B_h(a) = ∇g·n + B(a+n mod p).
		offsets[idx] = g.grad.DotInt(n).Add(g.Offset(a.Add(n)))
	}
	return MustNew(g.grad, g.period, offsets)
}

// WithPeriod re-expresses g with a larger period q (a multiple of p). The
// function values are unchanged; the offset table is expanded.
func (g *Func) WithPeriod(q int64) (*Func, error) {
	if q < g.period || q%g.period != 0 {
		return nil, fmt.Errorf("quilt: new period %d is not a multiple of %d", q, g.period)
	}
	classes := vec.NumClasses(q, g.dim)
	offsets := make([]rat.R, classes)
	for idx := int64(0); idx < classes; idx++ {
		a := vec.CongruenceClass(idx, q, g.dim)
		offsets[idx] = g.Offset(a)
	}
	return New(g.grad, q, offsets)
}

// NonnegativeOn reports whether g(x) ≥ 0 for all x ≥ lo, which by
// nondecreasingness reduces to checking one period's worth of points at lo.
func (g *Func) NonnegativeOn(lo vec.V) bool {
	ok := true
	hi := lo.Add(vec.Const(g.dim, g.period-1))
	vec.Grid(lo, hi, func(x vec.V) bool {
		if g.Eval(x) < 0 {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// ScalingGradient returns ∇g, which is the ∞-scaling limit ĝ(z) = ∇g·z of g
// (Theorem 8.2: the periodic offset vanishes in the limit).
func (g *Func) ScalingGradient() rat.Vec { return g.Gradient() }

// Equal reports extensional equality of g and h on all of N^d, decided
// symbolically: equal gradients and equal values over one common period.
func (g *Func) Equal(h *Func) bool {
	if g.dim != h.dim || !g.grad.Eq(h.grad) {
		return false
	}
	p := rat.LCM(g.period, h.period)
	eq := true
	vec.Grid(vec.Zero(g.dim), vec.Const(g.dim, p-1), func(x vec.V) bool {
		if g.Eval(x) != h.Eval(x) {
			eq = false
			return false
		}
		return true
	})
	return eq
}

// String renders the function as "∇g·x + B" with the offset table.
func (g *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "quilt{grad=%s, p=%d, B=[", g.grad, g.period)
	for i, off := range g.offsets {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(off.String())
	}
	sb.WriteString("]}")
	return sb.String()
}

// Min is a pointwise minimum of finitely many quilt-affine functions, the
// "eventually-min" normal form of Theorem 5.2 condition (ii).
type Min struct {
	Terms []*Func
}

// NewMin builds the minimum of the given terms (at least one, all same
// arity).
func NewMin(terms ...*Func) (*Min, error) {
	if len(terms) == 0 {
		return nil, fmt.Errorf("quilt: empty min")
	}
	d := terms[0].Dim()
	for _, t := range terms[1:] {
		if t.Dim() != d {
			return nil, fmt.Errorf("quilt: min over mixed arities %d and %d", d, t.Dim())
		}
	}
	return &Min{Terms: append([]*Func(nil), terms...)}, nil
}

// Dim returns the arity.
func (m *Min) Dim() int { return m.Terms[0].Dim() }

// Eval returns min_k g_k(x).
func (m *Min) Eval(x vec.V) int64 {
	best := m.Terms[0].Eval(x)
	for _, t := range m.Terms[1:] {
		if v := t.Eval(x); v < best {
			best = v
		}
	}
	return best
}

// String lists the terms.
func (m *Min) String() string {
	parts := make([]string, len(m.Terms))
	for i, t := range m.Terms {
		parts[i] = t.String()
	}
	return "min[" + strings.Join(parts, ", ") + "]"
}
