package quilt

import (
	"testing"
	"testing/quick"

	"crncompose/internal/rat"
	"crncompose/internal/vec"
)

// floor3x2 is ⌊3x/2⌋ = (3/2)x + B(x mod 2) with B(0)=0, B(1)=−1/2 (Fig 3a).
func floor3x2(t *testing.T) *Func {
	t.Helper()
	g, err := New(rat.NewVec(rat.New(3, 2)), 2, []rat.R{rat.Zero(), rat.New(-1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// fig3b is g(x) = (1,2)·x + B(x mod 3), B = −1 on {(1,2),(2,2),(2,1)}.
func fig3b(t *testing.T) *Func {
	t.Helper()
	offsets := make([]rat.R, 9)
	for i := range offsets {
		offsets[i] = rat.Zero()
	}
	for _, a := range []vec.V{vec.New(1, 2), vec.New(2, 2), vec.New(2, 1)} {
		offsets[vec.CongruenceIndex(a, 3)] = rat.FromInt(-1)
	}
	g, err := New(rat.NewVec(rat.One(), rat.FromInt(2)), 3, offsets)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEvalFloor3x2(t *testing.T) {
	g := floor3x2(t)
	for x := int64(0); x < 50; x++ {
		if got, want := g.Eval(vec.New(x)), 3*x/2; got != want {
			t.Errorf("g(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestFiniteDifferences(t *testing.T) {
	g := floor3x2(t)
	// δ_0 = g(1)−g(0) = 1; δ_1 = g(2)−g(1) = 2.
	d0, err := g.FiniteDifference(0, vec.New(0))
	if err != nil || d0 != 1 {
		t.Errorf("δ_0 = %d (%v)", d0, err)
	}
	d1, err := g.FiniteDifference(0, vec.New(1))
	if err != nil || d1 != 2 {
		t.Errorf("δ_1 = %d (%v)", d1, err)
	}
}

func TestFiniteDifferenceReconstructionProperty(t *testing.T) {
	// Property: g(x) = g(0) + Σ walk of finite differences, any path.
	g := fig3b(t)
	err := quick.Check(func(a, b uint8) bool {
		x := vec.New(int64(a%12), int64(b%12))
		// Walk x1 steps right then x2 steps up, summing differences.
		sum := g.Eval(vec.Zero(2))
		cur := vec.Zero(2)
		for i := int64(0); i < x[0]; i++ {
			d, err := g.FiniteDifference(0, cur)
			if err != nil {
				return false
			}
			sum += d
			cur = cur.Add(vec.Unit(2, 0))
		}
		for i := int64(0); i < x[1]; i++ {
			d, err := g.FiniteDifference(1, cur)
			if err != nil {
				return false
			}
			sum += d
			cur = cur.Add(vec.Unit(2, 1))
		}
		return sum == g.Eval(x)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestValidationRejectsDecreasing(t *testing.T) {
	// Gradient 0 with offsets making g decrease: B(0)=1, B(1)=0 under
	// period 2 gives g(0)=1 > g(1)=0.
	if _, err := New(rat.ZeroVec(1), 2, []rat.R{rat.One(), rat.Zero()}); err == nil {
		t.Fatal("decreasing offsets accepted")
	}
	// Negative gradient rejected outright.
	if _, err := New(rat.NewVec(rat.FromInt(-1)), 1, []rat.R{rat.Zero()}); err == nil {
		t.Fatal("negative gradient accepted")
	}
}

func TestValidationRejectsNonInteger(t *testing.T) {
	// (1/2)x with zero offsets is not integer-valued at odd x.
	if _, err := New(rat.NewVec(rat.New(1, 2)), 2, []rat.R{rat.Zero(), rat.Zero()}); err == nil {
		t.Fatal("non-integer function accepted")
	}
	// p·∇g not integral.
	if _, err := New(rat.NewVec(rat.New(1, 3)), 2, []rat.R{rat.Zero(), rat.Zero()}); err == nil {
		t.Fatal("p∇g ∉ Z accepted")
	}
}

func TestTranslate(t *testing.T) {
	g := floor3x2(t)
	h := g.Translate(vec.New(5))
	for x := int64(0); x < 20; x++ {
		if h.Eval(vec.New(x)) != g.Eval(vec.New(x+5)) {
			t.Fatalf("translate wrong at %d", x)
		}
	}
	// Translation of fig3b in 2D.
	g2 := fig3b(t)
	h2 := g2.Translate(vec.New(2, 1))
	vec.Grid(vec.Zero(2), vec.Const(2, 7), func(x vec.V) bool {
		if h2.Eval(x) != g2.Eval(x.Add(vec.New(2, 1))) {
			t.Fatalf("2D translate wrong at %v", x)
		}
		return true
	})
}

func TestWithPeriod(t *testing.T) {
	g := floor3x2(t)
	h, err := g.WithPeriod(6)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatal("period expansion changed the function")
	}
	if _, err := g.WithPeriod(3); err == nil {
		t.Fatal("non-multiple period accepted")
	}
}

func TestEqual(t *testing.T) {
	g := floor3x2(t)
	h := floor3x2(t)
	if !g.Equal(h) {
		t.Error("identical functions not equal")
	}
	k, _ := Affine(rat.NewVec(rat.FromInt(2)), rat.Zero())
	if g.Equal(k) {
		t.Error("distinct functions equal")
	}
}

func TestConstantAndAffine(t *testing.T) {
	c := Constant(2, 7)
	if c.Eval(vec.New(100, 3)) != 7 {
		t.Error("constant wrong")
	}
	a, err := Affine(rat.NewVec(rat.FromInt(2), rat.FromInt(3)), rat.One())
	if err != nil {
		t.Fatal(err)
	}
	if a.Eval(vec.New(2, 3)) != 14 {
		t.Error("affine wrong")
	}
}

func TestNonnegativeOn(t *testing.T) {
	// g(x) = x − 2 is negative near 0, nonnegative from 2.
	g := MustNew(rat.NewVec(rat.One()), 1, []rat.R{rat.FromInt(-2)})
	if g.NonnegativeOn(vec.New(0)) {
		t.Error("negative at origin not detected")
	}
	if !g.NonnegativeOn(vec.New(2)) {
		t.Error("nonnegative from 2 not detected")
	}
}

func TestMinEval(t *testing.T) {
	g1, _ := Affine(rat.NewVec(rat.One(), rat.Zero()), rat.One()) // x1+1
	g2, _ := Affine(rat.NewVec(rat.Zero(), rat.One()), rat.One()) // x2+1
	m, err := NewMin(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Eval(vec.New(3, 7)); got != 4 {
		t.Errorf("min = %d", got)
	}
	if _, err := NewMin(); err == nil {
		t.Error("empty min accepted")
	}
}

func TestFitEventually1D(t *testing.T) {
	tests := []struct {
		name         string
		f            Eval1D
		wantN, wantP int64
	}{
		{"affine", func(x int64) int64 { return 3*x + 1 }, 0, 1},
		{"floor3x2", func(x int64) int64 { return 3 * x / 2 }, 0, 2},
		{"step at 3", func(x int64) int64 {
			if x >= 3 {
				return 5
			}
			return 0
		}, 3, 1},
		{"period 3", func(x int64) int64 { return x / 3 }, 0, 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			n, p, deltas, err := FitEventually1D(tc.f, 16, 8, 120)
			if err != nil {
				t.Fatal(err)
			}
			if n > tc.wantN || p != tc.wantP {
				t.Errorf("fit (n=%d, p=%d), want (≤%d, %d)", n, p, tc.wantN, tc.wantP)
			}
			// Differences must reconstruct f beyond n.
			for x := n; x < 100; x++ {
				if tc.f(x+1)-tc.f(x) != deltas[x%p] {
					t.Fatalf("delta mismatch at %d", x)
				}
			}
		})
	}
}

func TestFitEventually1DRejectsDecreasing(t *testing.T) {
	if _, _, _, err := FitEventually1D(func(x int64) int64 { return 10 - min(x, 10) }, 8, 4, 0); err == nil {
		t.Fatal("decreasing function fit")
	}
}

func TestFromEventually1D(t *testing.T) {
	f := func(x int64) int64 { return 5 * x / 3 }
	n, p, deltas, err := FitEventually1D(f, 8, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromEventually1D(f, n, p, deltas)
	if err != nil {
		t.Fatal(err)
	}
	for x := n; x < 60; x++ {
		if g.Eval(vec.New(x)) != f(x) {
			t.Fatalf("g(%d) = %d ≠ %d", x, g.Eval(vec.New(x)), f(x))
		}
	}
}

func TestFitOnRegion(t *testing.T) {
	// Fit fig3b from samples and verify round trip.
	orig := fig3b(t)
	f := func(x vec.V) int64 { return orig.Eval(x) }
	pts := vec.GridAll(vec.Zero(2), vec.Const(2, 8))
	g, err := FitOnRegion(f, pts, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(orig) {
		t.Fatalf("fit drift:\n%s\nvs\n%s", g, orig)
	}
	// Inconsistent samples are rejected.
	bad := func(x vec.V) int64 { return x[0] * x[0] }
	if _, err := FitOnRegion(bad, pts, 1, 2); err == nil {
		t.Fatal("quadratic fit accepted")
	}
}

func TestScalingGradient(t *testing.T) {
	g := floor3x2(t)
	if !g.ScalingGradient().Eq(rat.NewVec(rat.New(3, 2))) {
		t.Error("scaling gradient wrong")
	}
}
