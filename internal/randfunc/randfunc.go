// Package randfunc generates random semilinear functions with prescribed
// structural properties (nondecreasing, superadditive, eventually
// quilt-affine), used to fuzz the Theorem 3.1 / Theorem 9.2 pipelines and
// the classifier far beyond the paper's worked examples.
package randfunc

import (
	"math/rand/v2"
)

// OneDim is a randomly generated eventually-quilt-affine f : N → N in
// explicit tabular + periodic form: values Table[0..n], then
// f(x+1) − f(x) = Deltas[(x−n) mod p] for x ≥ n.
type OneDim struct {
	Table  []int64 // f(0), ..., f(n); len ≥ 1
	Deltas []int64 // periodic differences beyond n; len = p ≥ 1
}

// Eval evaluates the function.
func (f *OneDim) Eval(x int64) int64 {
	n := int64(len(f.Table)) - 1
	if x <= n {
		return f.Table[x]
	}
	v := f.Table[n]
	p := int64(len(f.Deltas))
	full := (x - n) / p
	for _, d := range f.Deltas {
		v += full * d
	}
	for k := int64(0); k < (x-n)%p; k++ {
		v += f.Deltas[k]
	}
	return v
}

// Nondecreasing samples a random semilinear nondecreasing function:
// a random nondecreasing prefix table followed by random nonnegative
// periodic differences.
func Nondecreasing(rng *rand.Rand, maxN, maxP, maxDelta int64) *OneDim {
	n := rng.Int64N(maxN + 1)
	p := 1 + rng.Int64N(maxP)
	table := make([]int64, n+1)
	var v int64
	for i := range table {
		if i > 0 {
			v += rng.Int64N(maxDelta + 1)
		}
		table[i] = v
	}
	deltas := make([]int64, p)
	for i := range deltas {
		deltas[i] = rng.Int64N(maxDelta + 1)
	}
	return &OneDim{Table: table, Deltas: deltas}
}

// Superadditive samples a random semilinear superadditive function with
// f(0) = 0 by rejection: it draws nondecreasing candidates anchored at 0
// and keeps the first that passes an exact superadditivity check on the
// relevant range. The construction biases candidates toward superadditivity
// by making the periodic slope at least the largest early increment.
func Superadditive(rng *rand.Rand, maxN, maxP, maxDelta int64, checkLimit int64) *OneDim {
	for {
		f := Nondecreasing(rng, maxN, maxP, maxDelta)
		f.Table[0] = 0
		// Re-anchor: rebuild table increments from index 0.
		for i := 1; i < len(f.Table); i++ {
			if f.Table[i] < f.Table[i-1] {
				f.Table[i] = f.Table[i-1]
			}
		}
		if IsSuperadditive(f.Eval, checkLimit) {
			return f
		}
	}
}

// IsSuperadditive checks f(a) + f(b) ≤ f(a+b) exactly for all
// 0 ≤ a, b with a+b ≤ limit.
func IsSuperadditive(f func(int64) int64, limit int64) bool {
	for a := int64(0); a <= limit; a++ {
		fa := f(a)
		for b := a; a+b <= limit; b++ {
			if fa+f(b) > f(a+b) {
				return false
			}
		}
	}
	return true
}

// SuperadditivityViolation returns a pair (a, b) with f(a)+f(b) > f(a+b)
// within the limit, or (-1, -1) if none exists (Observation 9.1 witness).
func SuperadditivityViolation(f func(int64) int64, limit int64) (int64, int64) {
	for a := int64(0); a <= limit; a++ {
		for b := a; a+b <= limit; b++ {
			if f(a)+f(b) > f(a+b) {
				return a, b
			}
		}
	}
	return -1, -1
}
