package randfunc

import (
	"math/rand/v2"
	"testing"
)

func TestEvalMatchesTableAndPeriod(t *testing.T) {
	f := &OneDim{Table: []int64{0, 2, 3}, Deltas: []int64{1, 4}}
	want := []int64{0, 2, 3, 4, 8, 9, 13, 14}
	for x, w := range want {
		if got := f.Eval(int64(x)); got != w {
			t.Errorf("f(%d) = %d, want %d", x, got, w)
		}
	}
}

func TestNondecreasingSamples(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 100; trial++ {
		f := Nondecreasing(rng, 6, 4, 3)
		for x := int64(0); x < 40; x++ {
			if f.Eval(x+1) < f.Eval(x) {
				t.Fatalf("trial %d: decreasing at %d", trial, x)
			}
		}
	}
}

func TestSuperadditiveSamples(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 30; trial++ {
		f := Superadditive(rng, 4, 3, 3, 30)
		if f.Eval(0) != 0 {
			t.Fatalf("trial %d: f(0) = %d", trial, f.Eval(0))
		}
		if !IsSuperadditive(f.Eval, 30) {
			a, b := SuperadditivityViolation(f.Eval, 30)
			t.Fatalf("trial %d: violation at (%d, %d)", trial, a, b)
		}
	}
}

func TestViolationFinder(t *testing.T) {
	// min(1, x) violates superadditivity at (1, 1).
	f := func(x int64) int64 { return min(1, x) }
	a, b := SuperadditivityViolation(f, 10)
	if a != 1 || b != 1 {
		t.Errorf("violation = (%d, %d), want (1, 1)", a, b)
	}
	// identity has none.
	if a, b := SuperadditivityViolation(func(x int64) int64 { return x }, 10); a != -1 || b != -1 {
		t.Errorf("spurious violation (%d, %d)", a, b)
	}
}
