package rat

import (
	"math/big"
	"testing"
)

// Ablation (DESIGN.md): the int64-backed exact rationals used throughout
// the geometry/classification path versus math/big.Rat. The coefficient
// magnitudes in the paper's constructions are tiny, so the int64
// representation avoids heap allocation entirely.

func BenchmarkAddInt64Rat(b *testing.B) {
	x, y := New(3, 7), New(5, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = x.Add(y)
		if i%64 == 0 {
			x = New(3, 7) // keep magnitudes bounded
		}
	}
}

func BenchmarkAddBigRatAblation(b *testing.B) {
	x := big.NewRat(3, 7)
	y := big.NewRat(5, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Add(x, y)
		if i%64 == 0 {
			x.SetFrac64(3, 7)
		}
	}
}

func BenchmarkMulInt64Rat(b *testing.B) {
	x, y := New(3, 7), New(5, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Mul(y)
	}
}

func BenchmarkMulBigRatAblation(b *testing.B) {
	x := big.NewRat(3, 7)
	y := big.NewRat(5, 11)
	z := new(big.Rat)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Mul(x, y)
	}
}

func BenchmarkGaussianElimination(b *testing.B) {
	m := NewMat(
		NewVec(New(2, 1), New(1, 3), New(0, 1), New(1, 2)),
		NewVec(New(1, 1), New(4, 1), New(1, 5), New(0, 1)),
		NewVec(New(0, 1), New(2, 7), New(3, 1), New(1, 1)),
		NewVec(New(1, 2), New(1, 1), New(1, 1), New(2, 3)),
	)
	rhs := NewVec(One(), FromInt(2), FromInt(3), New(1, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.Solve(rhs); !ok {
			b.Fatal("unsolvable")
		}
	}
}

func BenchmarkRank(b *testing.B) {
	m := NewMat(
		NewVec(FromInt(1), FromInt(2), FromInt(3)),
		NewVec(FromInt(2), FromInt(4), FromInt(7)),
		NewVec(FromInt(1), FromInt(1), FromInt(1)),
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Rank() != 3 {
			b.Fatal("rank wrong")
		}
	}
}
