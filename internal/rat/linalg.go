package rat

import (
	"fmt"
	"strings"

	"crncompose/internal/vec"
)

// Vec is a vector of rationals.
type Vec []R

// NewVec copies rs into a fresh rational vector.
func NewVec(rs ...R) Vec {
	v := make(Vec, len(rs))
	copy(v, rs)
	return v
}

// VecFromInts converts an integer vector to a rational vector.
func VecFromInts(v vec.V) Vec {
	out := make(Vec, len(v))
	for i, x := range v {
		out[i] = FromInt(x)
	}
	return out
}

// ZeroVec returns the d-dimensional zero vector.
func ZeroVec(d int) Vec {
	v := make(Vec, d)
	for i := range v {
		v[i] = Zero()
	}
	return v
}

// Dim returns the dimension of v.
func (v Vec) Dim() int { return len(v) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	w := make(Vec, len(v))
	copy(w, v)
	return w
}

// Add returns v + w.
func (v Vec) Add(w Vec) Vec {
	mustDim(v, w)
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i].Add(w[i])
	}
	return out
}

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec {
	mustDim(v, w)
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i].Sub(w[i])
	}
	return out
}

// Scale returns c*v.
func (v Vec) Scale(c R) Vec {
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i].Mul(c)
	}
	return out
}

// Dot returns the inner product v · w.
func (v Vec) Dot(w Vec) R {
	mustDim(v, w)
	s := Zero()
	for i := range v {
		s = s.Add(v[i].Mul(w[i]))
	}
	return s
}

// DotInt returns v · x for an integer vector x.
func (v Vec) DotInt(x vec.V) R {
	if len(v) != len(x) {
		panic(fmt.Sprintf("rat: dimension mismatch %d vs %d", len(v), len(x)))
	}
	s := Zero()
	for i := range v {
		s = s.Add(v[i].MulInt(x[i]))
	}
	return s
}

// Eq reports componentwise equality.
func (v Vec) Eq(w Vec) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if !v[i].Eq(w[i]) {
			return false
		}
	}
	return true
}

// IsZero reports whether every component is 0.
func (v Vec) IsZero() bool {
	for _, r := range v {
		if !r.IsZero() {
			return false
		}
	}
	return true
}

// Nonnegative reports whether every component is ≥ 0.
func (v Vec) Nonnegative() bool {
	for _, r := range v {
		if r.Sign() < 0 {
			return false
		}
	}
	return true
}

// String renders v as "(a, b, ...)".
func (v Vec) String() string {
	parts := make([]string, len(v))
	for i, r := range v {
		parts[i] = r.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// CommonDenominator returns the least common multiple of all component
// denominators (1 for the empty vector).
func (v Vec) CommonDenominator() int64 {
	l := int64(1)
	for _, r := range v {
		l = LCM(l, r.Den())
	}
	return l
}

// ScaleToInt multiplies v by the common denominator and returns the
// resulting integer vector along with the multiplier used.
func (v Vec) ScaleToInt() (vec.V, int64) {
	l := v.CommonDenominator()
	out := make(vec.V, len(v))
	for i, r := range v {
		out[i] = r.MulInt(l).Int()
	}
	return out, l
}

func mustDim(v, w Vec) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("rat: dimension mismatch %d vs %d", len(v), len(w)))
	}
}

// Mat is a dense rational matrix (rows × cols), stored row-major as rows.
type Mat []Vec

// NewMat builds a matrix from rows, cloning each.
func NewMat(rows ...Vec) Mat {
	m := make(Mat, len(rows))
	for i, r := range rows {
		m[i] = r.Clone()
	}
	return m
}

// Rows and Cols return the dimensions; a 0-row matrix has 0 columns.
func (m Mat) Rows() int { return len(m) }
func (m Mat) Cols() int {
	if len(m) == 0 {
		return 0
	}
	return len(m[0])
}

// Clone deep-copies the matrix.
func (m Mat) Clone() Mat {
	out := make(Mat, len(m))
	for i, r := range m {
		out[i] = r.Clone()
	}
	return out
}

// MulVec returns m·v.
func (m Mat) MulVec(v Vec) Vec {
	out := make(Vec, len(m))
	for i, row := range m {
		out[i] = row.Dot(v)
	}
	return out
}

// Rank returns the rank of m using exact Gaussian elimination.
func (m Mat) Rank() int {
	a := m.Clone()
	rows, cols := a.Rows(), a.Cols()
	rank := 0
	for col := 0; col < cols && rank < rows; col++ {
		// Find pivot.
		pivot := -1
		for r := rank; r < rows; r++ {
			if !a[r][col].IsZero() {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		a[rank], a[pivot] = a[pivot], a[rank]
		// Eliminate below.
		for r := rank + 1; r < rows; r++ {
			if a[r][col].IsZero() {
				continue
			}
			factor := a[r][col].Div(a[rank][col])
			for c := col; c < cols; c++ {
				a[r][c] = a[r][c].Sub(factor.Mul(a[rank][c]))
			}
		}
		rank++
	}
	return rank
}

// Solve finds one solution x to the linear system m·x = b, returning
// (x, true) if the system is consistent and (nil, false) otherwise. When the
// system is under-determined, free variables are set to zero.
func (m Mat) Solve(b Vec) (Vec, bool) {
	rows, cols := m.Rows(), m.Cols()
	if len(b) != rows {
		panic("rat: Solve dimension mismatch")
	}
	// Augmented matrix.
	a := make(Mat, rows)
	for i := range a {
		a[i] = make(Vec, cols+1)
		copy(a[i], m[i])
		a[i][cols] = b[i]
	}
	pivotCol := make([]int, 0, rows)
	rank := 0
	for col := 0; col < cols && rank < rows; col++ {
		pivot := -1
		for r := rank; r < rows; r++ {
			if !a[r][col].IsZero() {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		a[rank], a[pivot] = a[pivot], a[rank]
		inv := One().Div(a[rank][col])
		for c := col; c <= cols; c++ {
			a[rank][c] = a[rank][c].Mul(inv)
		}
		for r := 0; r < rows; r++ {
			if r == rank || a[r][col].IsZero() {
				continue
			}
			factor := a[r][col]
			for c := col; c <= cols; c++ {
				a[r][c] = a[r][c].Sub(factor.Mul(a[rank][c]))
			}
		}
		pivotCol = append(pivotCol, col)
		rank++
	}
	// Inconsistency: a zero row with nonzero rhs.
	for r := rank; r < rows; r++ {
		if !a[r][cols].IsZero() {
			return nil, false
		}
	}
	x := ZeroVec(cols)
	for r, col := range pivotCol {
		x[col] = a[r][cols]
	}
	return x, true
}

// NullspaceBasis returns a basis of the nullspace {x : m·x = 0}.
func (m Mat) NullspaceBasis() []Vec {
	rows, cols := m.Rows(), m.Cols()
	a := m.Clone()
	pivotCol := make([]int, 0, rows)
	rank := 0
	for col := 0; col < cols && rank < rows; col++ {
		pivot := -1
		for r := rank; r < rows; r++ {
			if !a[r][col].IsZero() {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		a[rank], a[pivot] = a[pivot], a[rank]
		inv := One().Div(a[rank][col])
		for c := col; c < cols; c++ {
			a[rank][c] = a[rank][c].Mul(inv)
		}
		for r := 0; r < rows; r++ {
			if r == rank || a[r][col].IsZero() {
				continue
			}
			factor := a[r][col]
			for c := col; c < cols; c++ {
				a[r][c] = a[r][c].Sub(factor.Mul(a[rank][c]))
			}
		}
		pivotCol = append(pivotCol, col)
		rank++
	}
	isPivot := make([]bool, cols)
	for _, c := range pivotCol {
		isPivot[c] = true
	}
	var basis []Vec
	for free := 0; free < cols; free++ {
		if isPivot[free] {
			continue
		}
		x := ZeroVec(cols)
		x[free] = One()
		for r, col := range pivotCol {
			x[col] = a[r][free].Neg()
		}
		basis = append(basis, x)
	}
	return basis
}

// ProjectOnto projects v orthogonally onto the subspace spanned by basis,
// using exact Gram–Schmidt. An empty basis yields the zero vector.
func ProjectOnto(v Vec, basis []Vec) Vec {
	ortho := orthogonalize(basis)
	out := ZeroVec(len(v))
	for _, u := range ortho {
		uu := u.Dot(u)
		if uu.IsZero() {
			continue
		}
		coef := v.Dot(u).Div(uu)
		out = out.Add(u.Scale(coef))
	}
	return out
}

func orthogonalize(basis []Vec) []Vec {
	var ortho []Vec
	for _, b := range basis {
		u := b.Clone()
		for _, o := range ortho {
			oo := o.Dot(o)
			if oo.IsZero() {
				continue
			}
			u = u.Sub(o.Scale(u.Dot(o).Div(oo)))
		}
		if !u.IsZero() {
			ortho = append(ortho, u)
		}
	}
	return ortho
}

// SpanDim returns the dimension of the span of the given vectors.
func SpanDim(vs []Vec) int {
	if len(vs) == 0 {
		return 0
	}
	return Mat(vs).Rank()
}
