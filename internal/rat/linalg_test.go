package rat

import (
	"testing"

	"crncompose/internal/vec"
)

func rv(xs ...int64) Vec {
	v := make(Vec, len(xs))
	for i, x := range xs {
		v[i] = FromInt(x)
	}
	return v
}

func TestVecOps(t *testing.T) {
	a, b := rv(1, 2), rv(3, 4)
	if got := a.Add(b); !got.Eq(rv(4, 6)) {
		t.Errorf("add = %s", got)
	}
	if got := a.Dot(b); !got.Eq(FromInt(11)) {
		t.Errorf("dot = %s", got)
	}
	if got := a.DotInt(vec.New(3, 4)); !got.Eq(FromInt(11)) {
		t.Errorf("dotint = %s", got)
	}
	if got := a.Scale(New(1, 2)); !got.Eq(NewVec(New(1, 2), One())) {
		t.Errorf("scale = %s", got)
	}
}

func TestScaleToInt(t *testing.T) {
	v := NewVec(New(1, 2), New(2, 3))
	iv, mul := v.ScaleToInt()
	if mul != 6 || !iv.Eq(vec.New(3, 4)) {
		t.Errorf("ScaleToInt = %v ×%d", iv, mul)
	}
}

func TestRank(t *testing.T) {
	tests := []struct {
		name string
		m    Mat
		want int
	}{
		{"identity", NewMat(rv(1, 0), rv(0, 1)), 2},
		{"dependent rows", NewMat(rv(1, 2), rv(2, 4)), 1},
		{"zero", NewMat(rv(0, 0), rv(0, 0)), 0},
		{"wide", NewMat(rv(1, 0, 1), rv(0, 1, 1)), 2},
		{"tall", NewMat(rv(1, 1), rv(1, 2), rv(1, 3)), 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.m.Rank(); got != tc.want {
				t.Errorf("rank = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestSolve(t *testing.T) {
	// x + y = 3, x - y = 1 -> x=2, y=1.
	m := NewMat(rv(1, 1), rv(1, -1))
	x, ok := m.Solve(rv(3, 1))
	if !ok || !x.Eq(rv(2, 1)) {
		t.Fatalf("solve = %s, ok=%v", x, ok)
	}
	// Inconsistent: x + y = 1, x + y = 2.
	if _, ok := NewMat(rv(1, 1), rv(1, 1)).Solve(rv(1, 2)); ok {
		t.Error("inconsistent system reported solvable")
	}
	// Under-determined: one equation, two unknowns; residual must vanish.
	m2 := NewMat(rv(2, 4))
	x2, ok := m2.Solve(rv(6))
	if !ok {
		t.Fatal("under-determined system reported unsolvable")
	}
	if !m2.MulVec(x2)[0].Eq(FromInt(6)) {
		t.Errorf("residual nonzero: %s", m2.MulVec(x2))
	}
}

func TestNullspace(t *testing.T) {
	// Nullspace of (1, 1, 0; 0, 0, 1) is span{(1,-1,0)}.
	m := NewMat(rv(1, 1, 0), rv(0, 0, 1))
	basis := m.NullspaceBasis()
	if len(basis) != 1 {
		t.Fatalf("nullspace dim = %d, want 1", len(basis))
	}
	for _, b := range basis {
		if !m.MulVec(b).IsZero() {
			t.Errorf("basis vector %s not in nullspace", b)
		}
	}
	// Full-rank square matrix has trivial nullspace.
	if basis := NewMat(rv(1, 0), rv(0, 1)).NullspaceBasis(); len(basis) != 0 {
		t.Errorf("identity nullspace dim = %d", len(basis))
	}
}

func TestProjection(t *testing.T) {
	// Project (1,1) onto span{(1,0)} = (1,0).
	got := ProjectOnto(rv(1, 1), []Vec{rv(1, 0)})
	if !got.Eq(rv(1, 0)) {
		t.Errorf("projection = %s", got)
	}
	// Projection onto the diagonal span{(1,1)}: (2,0) -> (1,1).
	got = ProjectOnto(rv(2, 0), []Vec{rv(1, 1)})
	if !got.Eq(rv(1, 1)) {
		t.Errorf("projection = %s", got)
	}
	// Projection onto a 2D span with redundant basis vectors.
	got = ProjectOnto(rv(5, 7), []Vec{rv(1, 0), rv(2, 0), rv(0, 1)})
	if !got.Eq(rv(5, 7)) {
		t.Errorf("projection onto full space = %s", got)
	}
	// Empty basis -> zero.
	if got := ProjectOnto(rv(3, 4), nil); !got.IsZero() {
		t.Errorf("projection onto empty basis = %s", got)
	}
}

func TestProjectionIdempotent(t *testing.T) {
	basis := []Vec{rv(1, 2, 0), rv(0, 1, 1)}
	v := NewVec(New(3, 2), New(-1, 3), FromInt(2))
	p1 := ProjectOnto(v, basis)
	p2 := ProjectOnto(p1, basis)
	if !p1.Eq(p2) {
		t.Errorf("projection not idempotent: %s vs %s", p1, p2)
	}
	// Residual is orthogonal to the basis.
	res := v.Sub(p1)
	for _, b := range basis {
		if !res.Dot(b).IsZero() {
			t.Errorf("residual %s not orthogonal to %s", res, b)
		}
	}
}

func TestSpanDim(t *testing.T) {
	if got := SpanDim([]Vec{rv(1, 0), rv(0, 1), rv(1, 1)}); got != 2 {
		t.Errorf("span dim = %d", got)
	}
	if got := SpanDim(nil); got != 0 {
		t.Errorf("empty span dim = %d", got)
	}
}
