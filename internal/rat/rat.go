// Package rat provides exact rational arithmetic and small-scale exact
// linear algebra used by the geometric decomposition of Section 7 of the
// paper (regions, recession cones, quilt-affine gradients).
//
// Rationals are kept in lowest terms with a positive denominator, stored as
// int64 pairs. Operations check for overflow and panic if an intermediate
// value cannot be represented; the magnitudes arising from the paper's
// constructions (small coefficient hyperplanes, small periods) are far below
// this limit, so a panic here always indicates a programming error rather
// than a data-dependent failure.
package rat

import (
	"fmt"
	"math"
)

// R is a rational number. The zero value is 0/1... callers should construct
// values via New/FromInt so the denominator invariant (den > 0, gcd=1)
// holds; the zero value R{} has den 0 and is normalized on first use.
type R struct {
	num, den int64
}

// New returns the rational num/den in lowest terms. It panics if den == 0.
func New(num, den int64) R {
	if den == 0 {
		panic("rat: zero denominator")
	}
	if den < 0 {
		num, den = -num, -den
	}
	g := gcd(abs64(num), den)
	if g > 1 {
		num /= g
		den /= g
	}
	return R{num, den}
}

// FromInt returns the rational n/1.
func FromInt(n int64) R { return R{n, 1} }

// Zero and One are convenience constructors.
func Zero() R { return R{0, 1} }
func One() R  { return R{1, 1} }

func (r R) norm() R {
	if r.den == 0 {
		return R{0, 1}
	}
	return r
}

// Num returns the numerator (in lowest terms, sign-carrying).
func (r R) Num() int64 { return r.norm().num }

// Den returns the denominator (always positive).
func (r R) Den() int64 { return r.norm().den }

// IsZero reports r == 0.
func (r R) IsZero() bool { return r.norm().num == 0 }

// IsInt reports whether r is an integer.
func (r R) IsInt() bool { return r.norm().den == 1 }

// Int returns the integer value of r. It panics if r is not an integer.
func (r R) Int() int64 {
	r = r.norm()
	if r.den != 1 {
		panic(fmt.Sprintf("rat: %s is not an integer", r))
	}
	return r.num
}

// Floor returns ⌊r⌋ as an int64.
func (r R) Floor() int64 {
	r = r.norm()
	q := r.num / r.den
	if r.num%r.den != 0 && r.num < 0 {
		q--
	}
	return q
}

// Ceil returns ⌈r⌉ as an int64.
func (r R) Ceil() int64 {
	r = r.norm()
	q := r.num / r.den
	if r.num%r.den != 0 && r.num > 0 {
		q++
	}
	return q
}

// Sign returns -1, 0, or +1.
func (r R) Sign() int {
	switch n := r.norm().num; {
	case n < 0:
		return -1
	case n > 0:
		return 1
	default:
		return 0
	}
}

// Neg returns -r.
func (r R) Neg() R {
	r = r.norm()
	return R{-r.num, r.den}
}

// Add returns r + s.
func (r R) Add(s R) R {
	r, s = r.norm(), s.norm()
	// a/b + c/d = (a*d + c*b) / (b*d); reduce via g = gcd(b, d) first.
	g := gcd(r.den, s.den)
	db := r.den / g
	dd := s.den / g
	num := addChecked(mulChecked(r.num, dd), mulChecked(s.num, db))
	den := mulChecked(mulChecked(db, s.den), 1)
	return New(num, den)
}

// Sub returns r - s.
func (r R) Sub(s R) R { return r.Add(s.Neg()) }

// Mul returns r * s.
func (r R) Mul(s R) R {
	r, s = r.norm(), s.norm()
	g1 := gcd(abs64(r.num), s.den)
	g2 := gcd(abs64(s.num), r.den)
	num := mulChecked(r.num/g1, s.num/g2)
	den := mulChecked(r.den/g2, s.den/g1)
	return New(num, den)
}

// Div returns r / s. It panics if s == 0.
func (r R) Div(s R) R {
	s = s.norm()
	if s.num == 0 {
		panic("rat: division by zero")
	}
	return r.Mul(R{s.den, s.num}.canon())
}

func (r R) canon() R {
	if r.den < 0 {
		r.num, r.den = -r.num, -r.den
	}
	return r
}

// Cmp compares r and s: -1 if r < s, 0 if equal, +1 if r > s.
func (r R) Cmp(s R) int { return r.Sub(s).Sign() }

// Eq reports r == s.
func (r R) Eq(s R) bool { return r.Cmp(s) == 0 }

// Abs returns |r|.
func (r R) Abs() R {
	r = r.norm()
	if r.num < 0 {
		return R{-r.num, r.den}
	}
	return r
}

// MulInt returns r * n.
func (r R) MulInt(n int64) R { return r.Mul(FromInt(n)) }

// Float returns the float64 approximation of r (for reporting only; all
// decisions are made with exact arithmetic).
func (r R) Float() float64 {
	r = r.norm()
	return float64(r.num) / float64(r.den)
}

// String renders r as "n" for integers or "n/d" otherwise.
func (r R) String() string {
	r = r.norm()
	if r.den == 1 {
		return fmt.Sprintf("%d", r.num)
	}
	return fmt.Sprintf("%d/%d", r.num, r.den)
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}

func abs64(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

func mulChecked(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	c := a * b
	if c/b != a || (a == math.MinInt64 && b == -1) {
		panic("rat: int64 overflow in multiplication")
	}
	return c
}

func addChecked(a, b int64) int64 {
	c := a + b
	if (b > 0 && c < a) || (b < 0 && c > a) {
		panic("rat: int64 overflow in addition")
	}
	return c
}

// LCM returns the least common multiple of a and b (both must be positive).
func LCM(a, b int64) int64 {
	if a <= 0 || b <= 0 {
		panic("rat: LCM of nonpositive values")
	}
	return mulChecked(a/gcd(a, b), b)
}

// GCD returns the greatest common divisor of |a| and |b| (0 if both zero).
func GCD(a, b int64) int64 { return gcd(a, b) }
