package rat

import (
	"testing"
	"testing/quick"
)

func TestConstruction(t *testing.T) {
	tests := []struct {
		name     string
		r        R
		num, den int64
	}{
		{"reduced", New(2, 4), 1, 2},
		{"negative denominator", New(1, -2), -1, 2},
		{"double negative", New(-3, -6), 1, 2},
		{"integer", FromInt(7), 7, 1},
		{"zero", Zero(), 0, 1},
		{"zero value normalizes", R{}, 0, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.r.Num() != tc.num || tc.r.Den() != tc.den {
				t.Errorf("got %d/%d, want %d/%d", tc.r.Num(), tc.r.Den(), tc.num, tc.den)
			}
		})
	}
}

func TestArithmetic(t *testing.T) {
	half := New(1, 2)
	third := New(1, 3)
	if got := half.Add(third); !got.Eq(New(5, 6)) {
		t.Errorf("1/2+1/3 = %s", got)
	}
	if got := half.Sub(third); !got.Eq(New(1, 6)) {
		t.Errorf("1/2-1/3 = %s", got)
	}
	if got := half.Mul(third); !got.Eq(New(1, 6)) {
		t.Errorf("1/2*1/3 = %s", got)
	}
	if got := half.Div(third); !got.Eq(New(3, 2)) {
		t.Errorf("(1/2)/(1/3) = %s", got)
	}
	if got := New(-7, 3).Abs(); !got.Eq(New(7, 3)) {
		t.Errorf("abs = %s", got)
	}
}

func TestFloorCeil(t *testing.T) {
	tests := []struct {
		r           R
		floor, ceil int64
	}{
		{New(7, 2), 3, 4},
		{New(-7, 2), -4, -3},
		{New(6, 2), 3, 3},
		{New(-6, 2), -3, -3},
		{Zero(), 0, 0},
	}
	for _, tc := range tests {
		if got := tc.r.Floor(); got != tc.floor {
			t.Errorf("floor(%s) = %d, want %d", tc.r, got, tc.floor)
		}
		if got := tc.r.Ceil(); got != tc.ceil {
			t.Errorf("ceil(%s) = %d, want %d", tc.r, got, tc.ceil)
		}
	}
}

func TestFieldAxiomsProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	mk := func(a, b int16) R {
		den := int64(b)
		if den == 0 {
			den = 1
		}
		return New(int64(a), den)
	}
	if err := quick.Check(func(a1, b1, a2, b2, a3, b3 int16) bool {
		x, y, z := mk(a1, b1), mk(a2, b2), mk(a3, b3)
		// Associativity and commutativity of + and *; distributivity.
		if !x.Add(y).Eq(y.Add(x)) || !x.Mul(y).Eq(y.Mul(x)) {
			return false
		}
		if !x.Add(y).Add(z).Eq(x.Add(y.Add(z))) {
			return false
		}
		if !x.Mul(y).Mul(z).Eq(x.Mul(y.Mul(z))) {
			return false
		}
		return x.Mul(y.Add(z)).Eq(x.Mul(y).Add(x.Mul(z)))
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestCmp(t *testing.T) {
	if New(1, 3).Cmp(New(1, 2)) != -1 {
		t.Error("1/3 < 1/2 expected")
	}
	if New(2, 4).Cmp(New(1, 2)) != 0 {
		t.Error("2/4 == 1/2 expected")
	}
	if FromInt(1).Cmp(New(99, 100)) != 1 {
		t.Error("1 > 99/100 expected")
	}
}

func TestIntPanicsOnFraction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Int() on 1/2 should panic")
		}
	}()
	_ = New(1, 2).Int()
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Div by zero should panic")
		}
	}()
	_ = One().Div(Zero())
}

func TestLCMGCD(t *testing.T) {
	if got := LCM(4, 6); got != 12 {
		t.Errorf("LCM(4,6) = %d", got)
	}
	if got := GCD(12, 18); got != 6 {
		t.Errorf("GCD(12,18) = %d", got)
	}
	if got := GCD(0, 5); got != 5 {
		t.Errorf("GCD(0,5) = %d", got)
	}
}

func TestStringRendering(t *testing.T) {
	if got := New(3, 2).String(); got != "3/2" {
		t.Errorf("String = %q", got)
	}
	if got := FromInt(-4).String(); got != "-4" {
		t.Errorf("String = %q", got)
	}
}
