// Benchmarks for the reachability engine, measured on the paper's Fig 4a
// general construction — the hottest workload in the module. The baseline
// benchmarks reimplement the original string-keyed explorer (fmt-built map
// keys, per-config Clone, slice-of-slice edges) so the win of the arena +
// hash-interning + CSR engine stays measurable in-tree.
//
// This lives in package reach_test because building the Fig 4a CRN needs
// internal/synth, which depends on reach via classify/witness.
package reach_test

import (
	"runtime"
	"slices"
	"sync"
	"testing"

	"crncompose/internal/benchcrn"
	"crncompose/internal/classify"
	"crncompose/internal/crn"
	"crncompose/internal/reach"
	"crncompose/internal/semilinear"
	"crncompose/internal/synth"
	"crncompose/internal/vec"
)

var fig4aOnce = sync.OnceValues(func() (*crn.CRN, error) {
	f := semilinear.Fig4a()
	c, _, err := synth.General(f, synth.GeneralOptions{
		Classify: classify.Options{Bound: 8},
		N:        2,
	})
	return c, err
})

func fig4aCRN(tb testing.TB) *crn.CRN {
	c, err := fig4aOnce()
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

// exploreStringKeyed is the pre-rewrite engine: map[string]int32 keyed by
// Config.Key(), a cloned Config per explored node, and append-built
// [][]int32 edge lists. Kept verbatim-in-spirit as the benchmark baseline.
func exploreStringKeyed(root crn.Config, maxConfigs int, maxCount int64) (configs []crn.Config, complete bool) {
	ids := make(map[string]int32, 1024)
	var succ, via, pred [][]int32
	complete = true

	add := func(c crn.Config) int32 {
		key := c.Key()
		if id, ok := ids[key]; ok {
			return id
		}
		id := int32(len(configs))
		ids[key] = id
		configs = append(configs, c)
		succ = append(succ, nil)
		via = append(via, nil)
		pred = append(pred, nil)
		return id
	}

	add(root.Clone())
	numReactions := len(root.CRN().Reactions)
	for head := 0; head < len(configs); head++ {
		if len(configs) > maxConfigs {
			complete = false
			break
		}
		cur := configs[head]
		for ri := 0; ri < numReactions; ri++ {
			if !cur.Applicable(ri) {
				continue
			}
			next := cur.Apply(ri)
			if next.CountsRef().MaxComponent() > maxCount {
				complete = false
				continue
			}
			nid := add(next)
			succ[head] = append(succ[head], nid)
			via[head] = append(via[head], int32(ri))
		}
	}
	for u := range succ {
		for _, v := range succ[u] {
			pred[v] = append(pred[v], int32(u))
		}
	}
	return configs, complete
}

// benchExplore runs fn (an explorer returning the number of configurations
// it visited) and reports both ns/op and heap allocations per explored
// configuration — the metric the engine rewrite targets.
func benchExplore(b *testing.B, fn func() int) {
	b.ReportAllocs()
	var m0, m1 runtime.MemStats
	var configs int
	runtime.ReadMemStats(&m0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		configs = fn()
	}
	b.StopTimer()
	runtime.ReadMemStats(&m1)
	if configs == 0 {
		b.Fatal("explored nothing")
	}
	b.ReportMetric(float64(configs), "configs")
	b.ReportMetric(float64(m1.Mallocs-m0.Mallocs)/float64(b.N)/float64(configs), "allocs/config")
}

func BenchmarkExploreFig4a(b *testing.B) {
	c := fig4aCRN(b)
	root := c.MustInitialConfig(vec.New(1, 1))
	benchExplore(b, func() int {
		g := reach.Explore(root, reach.WithMaxConfigs(1<<23), reach.WithWorkers(1))
		if !g.Complete {
			b.Fatal("incomplete")
		}
		return g.NumConfigs()
	})
}

func benchExploreFig4aWorkers(b *testing.B, workers int) {
	c := fig4aCRN(b)
	root := c.MustInitialConfig(vec.New(1, 1))
	benchExplore(b, func() int {
		g := reach.Explore(root, reach.WithMaxConfigs(1<<23), reach.WithWorkers(workers))
		if !g.Complete {
			b.Fatal("incomplete")
		}
		return g.NumConfigs()
	})
}

func BenchmarkExploreFig4aParallel2(b *testing.B) { benchExploreFig4aWorkers(b, 2) }
func BenchmarkExploreFig4aParallel4(b *testing.B) { benchExploreFig4aWorkers(b, 4) }
func BenchmarkExploreFig4aParallel8(b *testing.B) { benchExploreFig4aWorkers(b, 8) }

// TestExploreFig4aParallelIdentical pins the tentpole contract on the real
// workload: the parallel engine's graph on the Fig 4a general construction
// at x=(1,1) (86,780 configurations) is indistinguishable from the
// sequential engine's through every accessor.
func TestExploreFig4aParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fig4a exploration skipped in -short")
	}
	c := fig4aCRN(t)
	root := c.MustInitialConfig(vec.New(1, 1))
	seq := reach.Explore(root, reach.WithMaxConfigs(1<<23), reach.WithWorkers(1))
	par := reach.Explore(root, reach.WithMaxConfigs(1<<23), reach.WithWorkers(8))
	if !seq.Complete || !par.Complete {
		t.Fatal("exploration incomplete")
	}
	if seq.NumConfigs() != par.NumConfigs() {
		t.Fatalf("configs: sequential %d, parallel %d", seq.NumConfigs(), par.NumConfigs())
	}
	for id := int32(0); id < int32(seq.NumConfigs()); id++ {
		if !slices.Equal(seq.Counts(id), par.Counts(id)) {
			t.Fatalf("config %d: counts %v vs %v", id, seq.Counts(id), par.Counts(id))
		}
		if !slices.Equal(seq.Succ(id), par.Succ(id)) || !slices.Equal(seq.Via(id), par.Via(id)) {
			t.Fatalf("config %d: CSR out-edges differ", id)
		}
		if !slices.Equal(seq.Pred(id), par.Pred(id)) {
			t.Fatalf("config %d: CSR in-edges differ", id)
		}
		if seq.Parent(id) != par.Parent(id) || seq.ParentVia(id) != par.ParentVia(id) {
			t.Fatalf("config %d: BFS tree differs", id)
		}
	}
}

func BenchmarkExploreFig4aStringKeyed(b *testing.B) {
	c := fig4aCRN(b)
	root := c.MustInitialConfig(vec.New(1, 1))
	benchExplore(b, func() int {
		configs, complete := exploreStringKeyed(root, 1<<23, 1<<40)
		if !complete {
			b.Fatal("incomplete")
		}
		return len(configs)
	})
}

func BenchmarkCheckInputFig4a(b *testing.B) {
	c := fig4aCRN(b)
	f := semilinear.Fig4a()
	root := c.MustInitialConfig(vec.New(1, 1))
	want := f.Eval(vec.New(1, 1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := reach.CheckInput(root, want, reach.WithMaxConfigs(1<<23))
		if !v.OK {
			b.Fatal(v.Err)
		}
	}
}

func benchCheckGrid(b *testing.B, workers int) {
	c := fig4aCRN(b)
	f := semilinear.Fig4a()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := reach.CheckGrid(c,
			func(x []int64) int64 { return f.Eval(vec.New(x...)) },
			[]int64{0, 0}, []int64{1, 1},
			reach.WithMaxConfigs(1<<23), reach.WithWorkers(workers))
		if err != nil || !res.OK() {
			b.Fatalf("%v %v", err, res)
		}
	}
}

func BenchmarkCheckGridFig4aSequential(b *testing.B) { benchCheckGrid(b, 1) }

func BenchmarkCheckGridFig4aParallel(b *testing.B) { benchCheckGrid(b, 0) }

// BenchmarkCheckGridSkew measures the tail-latency shape the shared
// work-stealing pool targets: a grid of one 2^14-configuration straggler
// among 20 trivial inputs (benchcrn.SkewGrid), against checking the
// straggler alone at the same total worker budget. With the pool, grid and
// alone should be within ~1.5× of each other on multi-core hardware;
// the old static outer × inner split left the tail on a single worker.
func BenchmarkCheckGridSkew(b *testing.B) {
	const thr, m = 20, 14
	skew := benchcrn.SkewGrid(thr, m)
	zero := func(x []int64) int64 { return 0 }
	root := skew.MustInitialConfig(vec.New(thr))
	b.Run("grid-seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := reach.CheckGrid(skew, zero, []int64{0}, []int64{thr}, reach.WithWorkers(1))
			if err != nil || !res.OK() {
				b.Fatalf("%v %v", err, res)
			}
		}
	})
	b.Run("grid-pool", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := reach.CheckGrid(skew, zero, []int64{0}, []int64{thr}, reach.WithWorkers(runtime.NumCPU()))
			if err != nil || !res.OK() {
				b.Fatalf("%v %v", err, res)
			}
		}
	})
	b.Run("large-alone", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if v := reach.CheckInput(root, 0, reach.WithWorkers(runtime.NumCPU())); !v.OK {
				b.Fatalf("%+v", v)
			}
		}
	})
}
