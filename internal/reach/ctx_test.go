package reach

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"crncompose/internal/progress"
	"crncompose/internal/vec"
)

// settleGoroutines polls until the goroutine count returns to at most the
// before snapshot (plus the runtime's own background slack) or the deadline
// passes. The engines must leave zero workers behind on every path,
// including cancellation.
func settleGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestExploreCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	root := branchyCRN().MustInitialConfig(vec.New(3, 3))
	g, err := ExploreCtx(ctx, root, WithWorkers(4))
	if g != nil {
		t.Fatalf("canceled exploration returned a graph (%d configs)", g.NumConfigs())
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

func TestExploreCtxCancelMidRun(t *testing.T) {
	// The reporter fires at level barriers on the calling goroutine; the
	// cancel it triggers is observed at the next barrier, so the run always
	// stops mid-exploration, deterministically, with no timing involved.
	for _, workers := range []int{1, 4} {
		before := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		var events int
		rep := progress.Func(func(progress.Event) {
			events++
			cancel()
		})
		// ~15k configs: comfortably past the sequential engine's 1024-head
		// poll stride and the parallel engines' small-state probe.
		root := branchyCRN().MustInitialConfig(vec.New(12, 12))
		g, err := ExploreCtx(ctx, root, WithWorkers(workers), WithMaxConfigs(1<<20), WithProgress(rep))
		if g != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: g=%v err=%v, want nil graph and wrapped context.Canceled", workers, g, err)
		}
		if events == 0 {
			t.Fatalf("workers=%d: no progress events before cancellation", workers)
		}
		cancel()
		settleGoroutines(t, before)
	}
}

func TestCheckGridCtxCancelMidRun(t *testing.T) {
	// Cancel at the first chunk boundary; the grid is large enough to need
	// several chunks at any worker count, so the run can never finish first.
	for _, workers := range []int{1, 4} {
		before := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		rep := progress.Func(func(progress.Event) { cancel() })
		res, err := CheckGridCtx(ctx, branchyCRN(), func(x []int64) int64 { return max(x[0], x[1]) },
			[]int64{0, 0}, []int64{70, 70}, WithWorkers(workers), WithProgress(rep))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want wrapped context.Canceled", workers, err)
		}
		if !reflect.DeepEqual(res, GridResult{}) {
			t.Fatalf("workers=%d: canceled grid returned partial counts: %+v", workers, res)
		}
		cancel()
		settleGoroutines(t, before)
	}
}

func TestCheckGridCtxUncanceledByteIdentical(t *testing.T) {
	// The ctx-aware path with a live context must produce exactly the
	// engine's usual result, at any worker count.
	f := func(x []int64) int64 { return max(x[0], x[1]) }
	lo, hi := []int64{0, 0}, []int64{5, 5}
	want, err := CheckGrid(branchyCRN(), f, lo, hi, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got, err := CheckGridCtx(context.Background(), branchyCRN(), f, lo, hi, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		wb, _ := MarshalGridResultIndent(want)
		gb, _ := MarshalGridResultIndent(got)
		if string(wb) != string(gb) {
			t.Fatalf("workers=%d: ctx path diverged:\n got %s\nwant %s", workers, gb, wb)
		}
	}
}

func TestCheckInputCtxCancelAndComplete(t *testing.T) {
	root := branchyCRN().MustInitialConfig(vec.New(4, 4))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CheckInputCtx(ctx, root, 4, WithWorkers(2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	v, err := CheckInputCtx(context.Background(), root, 4, WithWorkers(2))
	if err != nil || !v.OK {
		t.Fatalf("live-context check: v=%+v err=%v", v, err)
	}
	if w := CheckInput(root, 4, WithWorkers(2)); !reflect.DeepEqual(v, w) {
		t.Fatalf("ctx path verdict %+v != plain verdict %+v", v, w)
	}
}
