package reach

import (
	"slices"
	"sync"
	"sync/atomic"

	"crncompose/internal/vec"
)

// interner deduplicates configuration count rows for the sequential engine.
// Rows live contiguously in arena; slots is an open-addressing hash table
// mapping row hash to id+1 (0 = empty). Load factor is kept below 3/4.
type interner struct {
	d      int
	arena  []int64
	hashes []uint64
	slots  []int32
	mask   uint64
}

func newInterner(d int) *interner {
	const initialSlots = 1 << 10
	return &interner{d: d, slots: make([]int32, initialSlots), mask: initialSlots - 1}
}

func (t *interner) n() int { return len(t.hashes) }

func (t *interner) row(id int) []int64 { return t.arena[id*t.d : (id+1)*t.d] }

// lookupOrAdd interns the row counts (copying it into the arena if new) and
// reports whether it was added.
func (t *interner) lookupOrAdd(counts []int64) (int32, bool) {
	h := vec.Hash64(counts)
	i := h & t.mask
	for {
		s := t.slots[i]
		if s == 0 {
			id := int32(len(t.hashes))
			t.slots[i] = id + 1
			t.hashes = append(t.hashes, h)
			t.arena = append(t.arena, counts...)
			if len(t.hashes)*4 >= len(t.slots)*3 {
				t.grow()
			}
			return id, true
		}
		id := s - 1
		if t.hashes[id] == h && slices.Equal(t.row(int(id)), counts) {
			return id, false
		}
		i = (i + 1) & t.mask
	}
}

func (t *interner) grow() {
	slots := make([]int32, 2*len(t.slots))
	mask := uint64(len(slots) - 1)
	for id, h := range t.hashes {
		i := h & mask
		for slots[i] != 0 {
			i = (i + 1) & mask
		}
		slots[i] = int32(id) + 1
	}
	t.slots, t.mask = slots, mask
}

const (
	// Arena chunks target this many int64s (≈256 KB) whatever the row
	// width, so a tiny exploration of a wide-species CRN never pays for a
	// huge mostly-empty first chunk, while narrow CRNs still get thousands
	// of rows per chunk.
	targetChunkInt64s = 1 << 15

	// The intern table is split into 1<<shardBits independently locked
	// shards selected by the top bits of the row hash.
	shardBits = 7
	numShards = 1 << shardBits
)

// chunkedArena stores configuration count rows (d int64 each) in fixed-size
// chunks. Unlike an append-grown flat slice, growth never moves existing
// rows, which is what lets parallel workers read frontier rows while other
// workers claim and fill new ones. The chunk directory itself grows
// copy-on-write behind an atomic pointer, so readers never lock.
type chunkedArena struct {
	d     int
	shift uint  // log2 rows per chunk, sized from d at construction
	mask  int32 // rows per chunk - 1
	dir   atomic.Pointer[[][]int64]
	mu    sync.Mutex // serializes directory growth
}

func newChunkedArena(d int) *chunkedArena {
	shift := uint(6)
	for shift < 13 && (1<<(shift+1))*max(d, 1) <= targetChunkInt64s {
		shift++
	}
	a := &chunkedArena{d: d, shift: shift, mask: int32(1)<<shift - 1}
	dir := make([][]int64, 0, 16)
	a.dir.Store(&dir)
	return a
}

// row returns row id. The row must already be published: either the caller
// observed its intern-table entry under the owning shard's lock, or a level
// barrier separates the write from this read.
func (a *chunkedArena) row(id int32) []int64 {
	dir := *a.dir.Load()
	off := int(id&a.mask) * a.d
	return dir[id>>a.shift][off : off+a.d]
}

// write copies counts into row id, allocating the owning chunk if needed.
// Distinct ids may be written concurrently.
func (a *chunkedArena) write(id int32, counts []int64) {
	ci := int(id >> a.shift)
	dir := *a.dir.Load()
	if ci >= len(dir) {
		dir = a.growTo(ci)
	}
	off := int(id&a.mask) * a.d
	copy(dir[ci][off:off+a.d], counts)
}

func (a *chunkedArena) growTo(ci int) [][]int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	dir := *a.dir.Load()
	if ci < len(dir) {
		return dir
	}
	grown := make([][]int64, len(dir), max(ci+1, 2*max(len(dir), 8)))
	copy(grown, dir)
	for len(grown) <= ci {
		grown = append(grown, make([]int64, (int(a.mask)+1)*a.d))
	}
	a.dir.Store(&grown)
	return grown
}

// shardedInterner deduplicates rows across concurrent workers. The table is
// sharded by the top bits of the row hash (vec.HashShard); each shard is an
// independently locked open-addressing table, so workers interning rows with
// different hash prefixes never contend. Shards are owned by whichever
// goroutine holds their lock at that instant — there is no per-worker state
// and no assumption of a fixed worker set, so pool workers may join or
// leave an exploration mid-level (work stealing) without any handoff. Row
// ids are claimed from one atomic counter: they are dense, but their order
// reflects goroutine scheduling — the parallel explorer renumbers them
// deterministically afterwards.
type shardedInterner struct {
	d      int
	arena  *chunkedArena
	nextID atomic.Int32
	shards [numShards]internShard
}

type internShard struct {
	mu      sync.Mutex
	entries []internEntry
	mask    uint64
	n       int
	_       [24]byte // pad shards apart to avoid false sharing
}

// internEntry is one open-addressing slot: the row hash plus id+1
// (0 marks an empty slot).
type internEntry struct {
	hash uint64
	id   int32
}

func newShardedInterner(d int) *shardedInterner {
	t := &shardedInterner{d: d, arena: newChunkedArena(d)}
	// Shards start tiny: with the steal pool every pooled grid input gets a
	// sharded interner, including inputs whose whole state space is a few
	// dozen rows, so the empty table must be cheap. Per-shard doubling
	// amortizes growth for the big explorations.
	const initialSlots = 16
	for i := range t.shards {
		t.shards[i].entries = make([]internEntry, initialSlots)
		t.shards[i].mask = initialSlots - 1
	}
	return t
}

// n returns the number of interned rows. Only exact between level barriers.
func (t *shardedInterner) n() int { return int(t.nextID.Load()) }

// lookupOrAdd interns the row counts with hash h = vec.Hash64(counts),
// copying it into the arena if new, and reports whether it was added. Safe
// for concurrent use; the row is fully written before its entry is
// published, and probing happens under the same shard lock, so a hit always
// sees a complete row.
func (t *shardedInterner) lookupOrAdd(counts []int64, h uint64) (int32, bool) {
	s := &t.shards[vec.HashShard(h, shardBits)]
	s.mu.Lock()
	i := h & s.mask
	for {
		e := s.entries[i]
		if e.id == 0 {
			id := t.nextID.Add(1) - 1
			if id < 0 {
				panic("reach: intern table overflow (≥ 2^31 configurations)")
			}
			t.arena.write(id, counts)
			s.entries[i] = internEntry{hash: h, id: id + 1}
			s.n++
			if s.n*4 >= len(s.entries)*3 {
				s.grow()
			}
			s.mu.Unlock()
			return id, true
		}
		if e.hash == h && slices.Equal(t.arena.row(e.id-1), counts) {
			s.mu.Unlock()
			return e.id - 1, false
		}
		i = (i + 1) & s.mask
	}
}

func (s *internShard) grow() {
	entries := make([]internEntry, 2*len(s.entries))
	mask := uint64(len(entries) - 1)
	for _, e := range s.entries {
		if e.id == 0 {
			continue
		}
		i := e.hash & mask
		for entries[i].id != 0 {
			i = (i + 1) & mask
		}
		entries[i] = e
	}
	s.entries, s.mask = entries, mask
}
