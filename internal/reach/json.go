package reach

import (
	"encoding/json"
	"errors"
	"fmt"

	"crncompose/internal/crn"
)

// JSON wire form of verification results. This is the single machine-readable
// encoding of GridResult/GridFailure/Verdict: crncheck -json emits it and the
// distributed checker (internal/dist) ships it between workers and the
// coordinator. Marshaling is the plain encoding/json of the structs (Verdict
// implements MarshalJSON because error values and witness configurations have
// no default encoding); unmarshaling goes through UnmarshalGridResult, which
// needs the CRN to rebind witness configurations to their species table.
//
// Round-trip guarantees: counts, inputs, the failure verdict, and the witness
// schedule survive exactly — re-marshaling a decoded result yields the same
// bytes. Verdict.Err survives as its message only (the decoded value is a
// plain error with the original text).

// verdictJSON is the wire form of Verdict.
type verdictJSON struct {
	OK           bool         `json:"ok"`
	Inconclusive bool         `json:"inconclusive,omitempty"`
	Err          string       `json:"err,omitempty"`
	Witness      *witnessJSON `json:"witness,omitempty"`
	Explored     int          `json:"explored"`
}

// witnessJSON is the wire form of a crn.Trace: the dense count row of the
// starting configuration (indexed by the CRN's species table) plus the fired
// reaction indices.
type witnessJSON struct {
	Start     []int64 `json:"start"`
	Reactions []int   `json:"reactions"`
}

// MarshalGridResultIndent renders res in the canonical presentation form of
// the wire encoding: two-space-indented JSON with a trailing newline. This is
// the exact byte sequence crncheck -json writes and the serve layer's
// /v1/check responds with — the cross-process byte-identity contracts (CLI vs
// server vs distributed merge) are pinned on this one encoder, so every
// consumer of "the JSON result" must go through it rather than re-marshal.
func MarshalGridResultIndent(res GridResult) ([]byte, error) {
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// MarshalJSON encodes the verdict in the wire form shared by crncheck -json
// and the distributed checker.
func (v Verdict) MarshalJSON() ([]byte, error) {
	w := verdictJSON{OK: v.OK, Inconclusive: v.Inconclusive, Explored: v.Explored}
	if v.Err != nil {
		w.Err = v.Err.Error()
	}
	if v.Witness != nil {
		w.Witness = &witnessJSON{
			Start:     v.Witness.Start.CountsRef(),
			Reactions: v.Witness.Reactions,
		}
	}
	return json.Marshal(w)
}

// UnmarshalGridResult decodes the JSON wire form of a GridResult produced by
// json.Marshal, rebinding any witness configuration to c (which must be the
// CRN the result was computed for — species count is checked). Verdict.Err
// comes back as a plain error carrying the original message.
func UnmarshalGridResult(data []byte, c *crn.CRN) (GridResult, error) {
	var w struct {
		Checked      int `json:"checked"`
		Inconclusive int `json:"inconclusive"`
		Explored     int `json:"explored"`
		Failure      *struct {
			Input   []int64     `json:"input"`
			Want    int64       `json:"want"`
			Verdict verdictJSON `json:"verdict"`
		} `json:"failure"`
	}
	if err := json.Unmarshal(data, &w); err != nil {
		return GridResult{}, fmt.Errorf("reach: decoding grid result: %w", err)
	}
	res := GridResult{Checked: w.Checked, Inconclusive: w.Inconclusive, Explored: w.Explored}
	if w.Failure != nil {
		v, err := decodeVerdict(w.Failure.Verdict, c)
		if err != nil {
			return GridResult{}, err
		}
		res.Failure = &GridFailure{Input: w.Failure.Input, Want: w.Failure.Want, Verdict: v}
	}
	return res, nil
}

func decodeVerdict(w verdictJSON, c *crn.CRN) (Verdict, error) {
	v := Verdict{OK: w.OK, Inconclusive: w.Inconclusive, Explored: w.Explored}
	if w.Err != "" {
		v.Err = errors.New(w.Err)
	}
	if w.Witness != nil {
		if len(w.Witness.Start) != c.NumSpecies() {
			return Verdict{}, fmt.Errorf("reach: witness start has %d counts, CRN has %d species",
				len(w.Witness.Start), c.NumSpecies())
		}
		v.Witness = &crn.Trace{
			Start:     c.DenseConfig(w.Witness.Start),
			Reactions: w.Witness.Reactions,
		}
	}
	return v, nil
}
