package reach

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"crncompose/internal/crn"
)

// TestGridResultJSONRoundTrip pins the wire contract of the distributed
// checker: marshal → UnmarshalGridResult → marshal must reproduce the exact
// bytes, for all-OK, inconclusive, and refuted-with-witness results.
func TestGridResultJSONRoundTrip(t *testing.T) {
	c := minCRN()
	cases := map[string]GridResult{
		"ok":           {Checked: 16, Explored: 1234},
		"inconclusive": {Checked: 16, Inconclusive: 3, Explored: 99},
	}
	// A real refutation with a witness: a sum CRN claimed to compute min.
	f := func(x []int64) int64 { return min(x[0], x[1]) }
	refuted, err := CheckGrid(sumCRNClaimingMin(), f, []int64{0, 0}, []int64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if refuted.OK() || refuted.Failure.Verdict.Witness == nil {
		t.Fatalf("expected refutation with witness, got %v", refuted)
	}
	cases["refuted"] = refuted

	for name, res := range cases {
		t.Run(name, func(t *testing.T) {
			crnFor := c
			if name == "refuted" {
				crnFor = sumCRNClaimingMin()
			}
			b1, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := UnmarshalGridResult(b1, crnFor)
			if err != nil {
				t.Fatal(err)
			}
			b2, err := json.Marshal(dec)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatalf("round trip changed bytes:\n%s\n%s", b1, b2)
			}
			if dec.Checked != res.Checked || dec.Inconclusive != res.Inconclusive || dec.Explored != res.Explored {
				t.Fatalf("counts changed: %+v vs %+v", dec, res)
			}
			if res.Failure != nil {
				if dec.Failure == nil {
					t.Fatal("failure dropped")
				}
				if dec.Failure.Verdict.Err.Error() != res.Failure.Verdict.Err.Error() {
					t.Fatalf("err changed: %q vs %q", dec.Failure.Verdict.Err, res.Failure.Verdict.Err)
				}
				// The decoded witness must replay on the rebound CRN.
				if _, err := dec.Failure.Verdict.Witness.Replay(); err != nil {
					t.Fatalf("decoded witness does not replay: %v", err)
				}
			}
		})
	}
}

// sumCRNClaimingMin computes x1+x2, so checking it against min refutes with
// an overproduction witness.
func sumCRNClaimingMin() *crn.CRN {
	return crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
}

// TestGridResultJSONFieldNamesMatchString pins the satellite contract: the
// human String() and the JSON form use the same vocabulary.
func TestGridResultJSONFieldNamesMatchString(t *testing.T) {
	res := GridResult{Checked: 4, Inconclusive: 1, Explored: 77,
		Failure: &GridFailure{Input: []int64{2, 0}, Want: 0, Verdict: Verdict{Err: ErrBudget}}}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"checked"`, `"inconclusive"`, `"explored"`, `"failure"`, `"input"`, `"want"`} {
		if !strings.Contains(string(b), field) {
			t.Errorf("JSON %s lacks %s", b, field)
		}
	}
	for _, word := range []string{"checked", "inconclusive", "explored"} {
		if !strings.Contains(GridResult{Checked: 1}.String(), word) {
			t.Errorf("String() %q lacks %q", GridResult{Checked: 1}.String(), word)
		}
	}
	if !strings.Contains(res.String(), "input=") {
		t.Errorf("failure String() %q lacks input=", res.String())
	}
}

// TestUnmarshalGridResultBadWitness rejects a witness whose species count
// does not match the CRN it is being rebound to.
func TestUnmarshalGridResultBadWitness(t *testing.T) {
	data := []byte(`{"checked":1,"explored":2,"failure":{"input":[0],"want":0,` +
		`"verdict":{"ok":false,"err":"x","witness":{"start":[1,2,3,4,5,6,7,8,9],"reactions":[0]},"explored":2}}}`)
	if _, err := UnmarshalGridResult(data, minCRN()); err == nil {
		t.Fatal("mismatched witness width accepted")
	}
	if _, err := UnmarshalGridResult([]byte("{"), minCRN()); err == nil {
		t.Fatal("truncated JSON accepted")
	}
}
