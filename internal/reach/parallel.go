package reach

import (
	"sync"
	"sync/atomic"

	"crncompose/internal/crn"
	"crncompose/internal/vec"
)

// The parallel engine explores one input's state space on many cores while
// producing a Graph byte-identical to the sequential engine's. The sequential
// engine is a FIFO BFS, so its ids are assigned level by level, and within a
// level in (head order, reaction order) of first discovery. The parallel
// engine reproduces that order without serializing the hot work:
//
//  1. Expand the current frontier in parallel: workers claim batches of
//     frontier nodes, compute successors, and intern them in the sharded
//     table, recording per-node edge lists under provisional (interner) ids.
//     Interning order — and hence provisional ids — depends on scheduling.
//  2. Replay the level sequentially (cheap: no hashing, no row copies):
//     walk the frontier in canonical order and its recorded edges in
//     reaction order, assigning canonical ids at first discovery and
//     applying the MaxConfigs cut at the same head boundary the sequential
//     engine would. This renumbering makes every output array — arena rows,
//     CSR edges, BFS parents — independent of scheduling.
//
// Nodes interned during a level that the budget cut then discards are
// dropped by the renumbering (they simply never receive a canonical id), so
// budget-truncated graphs are also byte-identical to the sequential engine's.

// levelEdge is one discovered edge: the provisional id of the successor and
// the reaction producing it.
type levelEdge struct {
	pid int32
	ri  int32
}

// levelResult is the expansion record of one frontier node.
type levelResult struct {
	edges    []levelEdge
	overflow bool // some successor exceeded MaxCount and was skipped
}

func exploreParallel(root crn.Config, o Options) *Graph {
	c := root.CRN()
	d := c.NumSpecies() // also forces the CRN index build before workers start
	g := &Graph{CRN: c, Complete: true, d: d, outIdx: c.OutputIndex()}
	nR := c.NumReactions()

	in := newShardedInterner(d)
	rootRow := root.CountsRef()
	in.lookupOrAdd(rootRow, vec.Hash64(rootRow))

	// canon maps provisional ids to canonical ids (-1 = not yet discovered in
	// canonical order); provOf is the inverse, appended in canonical order.
	canon := make([]int32, 1, 1024)
	provOf := make([]int32, 1, 1024)
	g.parent = append(g.parent, -1)
	g.parentVia = append(g.parentVia, -1)

	frontier := []int32{0} // provisional ids of the current level, canonical order
	frontCanonStart := 0   // canonical id of frontier[0]
	ncanon := 1            // canonical ids assigned so far
	succOff := make([]int32, 1, 1024)
	truncated := false

	for len(frontier) > 0 && !truncated {
		// ncanon here counts every node through the end of this frontier, so
		// if it already exceeds the budget the replay below would truncate at
		// j=0 — the sequential engine stops at the same head. Bail before
		// paying for a full level of expansion that would all be discarded.
		if ncanon > o.MaxConfigs {
			g.Complete = false
			break
		}
		results := expandLevel(c, in, frontier, nR, o)
		for len(canon) < in.n() {
			canon = append(canon, -1)
		}
		var next []int32
		for j := range frontier {
			if ncanon > o.MaxConfigs {
				g.Complete = false
				truncated = true
				break
			}
			u := int32(frontCanonStart + j)
			r := &results[j]
			if r.overflow {
				g.Complete = false
			}
			for _, e := range r.edges {
				cid := canon[e.pid]
				if cid < 0 {
					cid = int32(ncanon)
					ncanon++
					canon[e.pid] = cid
					provOf = append(provOf, e.pid)
					g.parent = append(g.parent, u)
					g.parentVia = append(g.parentVia, e.ri)
					next = append(next, e.pid)
				}
				g.succ = append(g.succ, cid)
				g.via = append(g.via, e.ri)
			}
			succOff = append(succOff, int32(len(g.succ)))
		}
		frontCanonStart += len(frontier)
		frontier = next
	}

	// Close the offset table over discovered-but-unexpanded nodes, then copy
	// the surviving rows into a flat arena in canonical order.
	for len(succOff) < ncanon+1 {
		succOff = append(succOff, int32(len(g.succ)))
	}
	g.succOff = succOff
	g.arena = make([]int64, ncanon*d)
	for cid, pid := range provOf {
		copy(g.arena[cid*d:(cid+1)*d], in.arena.row(pid))
	}
	g.buildPred()
	return g
}

// expandLevel expands every frontier node, in parallel when the level is
// large enough to amortize goroutine startup. results[j] depends only on
// frontier[j]'s row, so the records are identical however the work lands on
// workers; only provisional successor ids differ, and the caller's
// renumbering erases that.
func expandLevel(c *crn.CRN, in *shardedInterner, frontier []int32, nR int, o Options) []levelResult {
	results := make([]levelResult, len(frontier))
	workers := o.Workers
	if len(frontier) < 4*workers {
		workers = 1
	}
	var next atomic.Int64
	if workers <= 1 {
		expandWorker(c, in, frontier, results, &next, len(frontier), nR, o.MaxCount)
		return results
	}
	batch := max(1, min(256, len(frontier)/(8*workers)))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			expandWorker(c, in, frontier, results, &next, batch, nR, o.MaxCount)
		}()
	}
	wg.Wait()
	return results
}

func expandWorker(c *crn.CRN, in *shardedInterner, frontier []int32, results []levelResult, next *atomic.Int64, batch, nR int, maxCount int64) {
	d := in.d
	scratch := make([]int64, d)
	// Edge records append into a worker-local buffer; per-node slices are
	// capped views into it. Capacity is topped up between nodes so one
	// node's edges never straddle a reallocation.
	var buf []levelEdge
	for {
		start := int(next.Add(int64(batch))) - batch
		if start >= len(frontier) {
			return
		}
		for j := start; j < min(start+batch, len(frontier)); j++ {
			row := in.arena.row(frontier[j])
			if cap(buf)-len(buf) < nR {
				buf = make([]levelEdge, 0, max(1024, 4*nR))
			}
			first := len(buf)
			for ri := 0; ri < nR; ri++ {
				if !c.ApplicableAt(row, ri) {
					continue
				}
				c.ApplyInto(scratch, row, ri)
				if vec.V(scratch).MaxComponent() > maxCount {
					results[j].overflow = true
					continue
				}
				pid, _ := in.lookupOrAdd(scratch, vec.Hash64(scratch))
				buf = append(buf, levelEdge{pid: pid, ri: int32(ri)})
			}
			results[j].edges = buf[first:len(buf):len(buf)]
		}
	}
}
