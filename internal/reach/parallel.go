package reach

import (
	"sort"
	"sync"
	"sync/atomic"

	"crncompose/internal/crn"
	"crncompose/internal/progress"
	"crncompose/internal/vec"
)

// The parallel engine explores one input's state space on many cores while
// producing a Graph byte-identical to the sequential engine's. The sequential
// engine is a FIFO BFS, so its ids are assigned level by level, and within a
// level in (head order, reaction order) of first discovery. The parallel
// engine reproduces that order without serializing the hot work:
//
//  1. Expand the current frontier in parallel: workers claim batches of
//     frontier nodes, compute successors, and intern them in the sharded
//     table, recording per-node edge lists under provisional (interner) ids.
//     Interning order — and hence provisional ids — depends on scheduling.
//  2. Replay the level sequentially (cheap: no hashing, no row copies):
//     walk the frontier in canonical order and its recorded edges in
//     reaction order, assigning canonical ids at first discovery and
//     applying the MaxConfigs cut at the same head boundary the sequential
//     engine would. This renumbering makes every output array — arena rows,
//     CSR edges, BFS parents — independent of scheduling.
//
// The set of workers expanding a level is dynamic: each level is published
// to a stealPool as a levelTask, the exploration's owner always works on it,
// and any idle pool worker may join mid-level and leave when the claim
// cursor runs out. Because a node's expansion record depends only on the
// node itself, joining and leaving workers — at any moment, in any
// combination — cannot change the records, only who computed them; the
// replay then erases the one thing scheduling does affect (provisional ids).
//
// Nodes interned during a level that the budget cut then discards are
// dropped by the renumbering (they simply never receive a canonical id), so
// budget-truncated graphs are also byte-identical to the sequential engine's.

// levelEdge is one discovered edge: the provisional id of the successor and
// the reaction producing it.
type levelEdge struct {
	pid int32
	ri  int32
}

// levelResult is the expansion record of one frontier node.
type levelResult struct {
	edges    []levelEdge
	overflow bool // some successor exceeded MaxCount and was skipped
}

const (
	// stealMinFrontier is the smallest frontier published for stealing;
	// below it the owner expands inline without touching the pool.
	stealMinFrontier = 32
	// stealBatchDiv divides the frontier into claim batches so a late
	// joiner still finds work (capped at maxStealBatch nodes).
	stealBatchDiv = 32
	maxStealBatch = 256
)

// levelTask is one level's expansion, shared between its owner and any pool
// workers that steal into it. Claiming is a single atomic cursor over the
// frontier; results[j] is written by exactly one claimant.
type levelTask struct {
	c        *crn.CRN
	in       *shardedInterner
	frontier []int32
	results  []levelResult
	nR       int
	maxCount int64
	batch    int64
	next     atomic.Int64  // claim cursor over frontier
	done     atomic.Int64  // completed frontier nodes
	finished chan struct{} // closed when done == len(frontier); nil if unpublished
}

// unclaimed reports whether frontier nodes remain to claim.
func (t *levelTask) unclaimed() bool { return t.next.Load() < int64(len(t.frontier)) }

// work claims batches of frontier nodes and expands them until the cursor
// is exhausted. Safe for any number of concurrent callers.
func (t *levelTask) work() {
	d := t.in.d
	scratch := make([]int64, d)
	// Edge records append into a worker-local buffer; per-node slices are
	// capped views into it. Capacity is topped up between nodes so one
	// node's edges never straddle a reallocation.
	var buf []levelEdge
	n := int64(len(t.frontier))
	for {
		if testStealJitter != nil {
			testStealJitter()
		}
		start := t.next.Add(t.batch) - t.batch
		if start >= n {
			return
		}
		end := min(start+t.batch, n)
		for j := start; j < end; j++ {
			row := t.in.arena.row(t.frontier[j])
			if cap(buf)-len(buf) < t.nR {
				buf = make([]levelEdge, 0, max(1024, 4*t.nR))
			}
			first := len(buf)
			for ri := 0; ri < t.nR; ri++ {
				if !t.c.ApplicableAt(row, ri) {
					continue
				}
				t.c.ApplyInto(scratch, row, ri)
				if vec.V(scratch).MaxComponent() > t.maxCount {
					t.results[j].overflow = true
					continue
				}
				pid, _ := t.in.lookupOrAdd(scratch, vec.Hash64(scratch))
				buf = append(buf, levelEdge{pid: pid, ri: int32(ri)})
			}
			t.results[j].edges = buf[first:len(buf):len(buf)]
		}
		if t.finished != nil && t.done.Add(end-start) == n {
			close(t.finished)
		}
	}
}

// expandLevel expands every frontier node. With a pool attached and a
// frontier large enough to amortize the coordination, the level is published
// so idle pool workers can claim slices alongside the owner; the owner
// always participates and blocks until every claimed slice is complete.
func expandLevel(c *crn.CRN, in *shardedInterner, frontier []int32, nR int, o Options, pool *stealPool) []levelResult {
	t := &levelTask{
		c: c, in: in, frontier: frontier,
		results:  make([]levelResult, len(frontier)),
		nR:       nR,
		maxCount: o.MaxCount,
	}
	if pool == nil || len(frontier) < stealMinFrontier {
		t.batch = int64(len(frontier))
		t.work()
		return t.results
	}
	t.batch = int64(max(1, min(maxStealBatch, len(frontier)/stealBatchDiv)))
	t.finished = make(chan struct{})
	pool.publish(t)
	t.work()
	<-t.finished
	pool.retract(t)
	return t.results
}

// exploreParallel runs a standalone parallel exploration: a private pool
// whose o.Workers-1 helpers drain level tasks while the calling goroutine
// owns the exploration.
func exploreParallel(root crn.Config, o Options) (*Graph, error) {
	pool := newStealPool()
	pool.addOwner()
	var wg sync.WaitGroup
	for w := 1; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool.drain()
		}()
	}
	g, err := explorePooled(root, o, pool)
	// dropOwner + Wait run on the error path too: a canceled exploration
	// abandons no published tasks (the owner only returns at a level
	// barrier), so the helpers always drain and exit.
	pool.dropOwner()
	wg.Wait()
	return g, err
}

// replayState is the canonical-renumbering state threaded across levels.
type replayState struct {
	// canon maps provisional ids to canonical ids (-1 = not yet discovered in
	// canonical order); provOf is the inverse, in canonical order.
	canon     []int32
	provOf    []int32
	succOff   []int32
	ncanon    int  // canonical ids assigned so far
	truncated bool // MaxConfigs cut hit mid-level
}

// explorePooled is the renumbering engine: it enumerates the reachable
// configurations level-synchronized, expanding each level with the help of
// whatever pool workers are idle, and replays every level into canonical
// ids — sequentially for small frontiers, with prefix-summed first-discovery
// counts on the pool for large ones (replayLevelPar); both produce identical
// output. The caller must hold an owner registration on pool for the
// duration of the call.
//
// Cancellation is polled once per level, at the barrier before expansion —
// the exact point where the sequential engine's head boundary falls — so a
// canceled exploration returns a nil graph and a wrapped ctx.Err() within
// one level of work, and a completed one is byte-identical to an
// uncancellable run.
func explorePooled(root crn.Config, o Options, pool *stealPool) (*Graph, error) {
	c := root.CRN()
	d := c.NumSpecies() // also forces the CRN index build before workers start
	g := &Graph{CRN: c, Complete: true, d: d, outIdx: c.OutputIndex()}
	nR := c.NumReactions()

	in := newShardedInterner(d)
	rootRow := root.CountsRef()
	in.lookupOrAdd(rootRow, vec.Hash64(rootRow))

	st := &replayState{
		canon:   make([]int32, 1, 1024),
		provOf:  make([]int32, 1, 1024),
		succOff: make([]int32, 1, 1024),
		ncanon:  1,
	}
	g.parent = append(g.parent, -1)
	g.parentVia = append(g.parentVia, -1)

	frontier := []int32{0} // provisional ids of the current level, canonical order
	frontCanonStart := 0   // canonical id of frontier[0]

	for len(frontier) > 0 && !st.truncated {
		// Post before polling so a cancellation triggered by the reporter
		// itself is honored at this barrier, not the next.
		progress.Post(o.Progress, "reach.explore", int64(st.ncanon), 0)
		if err := o.ctxErr(); err != nil {
			return nil, err
		}
		// ncanon here counts every node through the end of this frontier, so
		// if it already exceeds the budget the replay below would truncate at
		// j=0 — the sequential engine stops at the same head. Bail before
		// paying for a full level of expansion that would all be discarded.
		if st.ncanon > o.MaxConfigs {
			g.Complete = false
			break
		}
		nStart := in.n()
		results := expandLevel(c, in, frontier, nR, o, pool)
		for len(st.canon) < in.n() {
			st.canon = append(st.canon, -1)
		}
		var next []int32
		if len(frontier) >= replayMinFrontier {
			next = replayLevelPar(g, st, frontier, results, frontCanonStart, o.MaxConfigs, nStart, pool)
		} else {
			next = replayLevelSeq(g, st, frontier, results, frontCanonStart, o.MaxConfigs)
		}
		frontCanonStart += len(frontier)
		frontier = next
	}

	// Close the offset table over discovered-but-unexpanded nodes, then copy
	// the surviving rows into a flat arena in canonical order.
	for len(st.succOff) < st.ncanon+1 {
		st.succOff = append(st.succOff, int32(len(g.succ)))
	}
	g.succOff = st.succOff
	g.arena = make([]int64, st.ncanon*d)
	for cid, pid := range st.provOf[:st.ncanon] {
		copy(g.arena[cid*d:(cid+1)*d], in.arena.row(pid))
	}
	g.buildPred()
	return g, nil
}

// replayLevelSeq is the sequential renumbering replay: walk the frontier in
// canonical order and each node's recorded edges in reaction order, assigning
// canonical ids at first discovery, applying the MaxConfigs cut at the same
// head boundary the sequential engine would. Returns the next frontier
// (provisional ids in canonical order).
func replayLevelSeq(g *Graph, st *replayState, frontier []int32, results []levelResult, frontCanonStart, maxConfigs int) []int32 {
	var next []int32
	for j := range frontier {
		if st.ncanon > maxConfigs {
			g.Complete = false
			st.truncated = true
			break
		}
		u := int32(frontCanonStart + j)
		r := &results[j]
		if r.overflow {
			g.Complete = false
		}
		for _, e := range r.edges {
			cid := st.canon[e.pid]
			if cid < 0 {
				cid = int32(st.ncanon)
				st.ncanon++
				st.canon[e.pid] = cid
				st.provOf = append(st.provOf, e.pid)
				g.parent = append(g.parent, u)
				g.parentVia = append(g.parentVia, e.ri)
				next = append(next, e.pid)
			}
			g.succ = append(g.succ, cid)
			g.via = append(g.via, e.ri)
		}
		st.succOff = append(st.succOff, int32(len(g.succ)))
	}
	return next
}

// replayMinFrontier is the frontier size above which the renumbering replay
// itself runs on the pool (replayLevelPar) instead of sequentially. The
// replay is ~10-15% of explore time on big graphs, but each parallel pass
// costs a publish/claim barrier, so small levels stay sequential. A variable
// so tests can force the parallel replay onto small graphs.
var replayMinFrontier = 1024

// replayParGrain is the claim batch size of the parallel replay passes.
const replayParGrain = 256

// replayLevelPar renumbers one expanded level in parallel, byte-identically
// to replayLevelSeq. The sequential replay assigns canonical ids in (frontier
// order, edge order) of first discovery — a sequential dependency that is
// broken in four data-parallel passes over the frontier:
//
//  1. disc: for every provisional id first interned this level, the minimum
//     frontier index referencing it (atomic min) — its discovering node.
//  2. count: per frontier node, how many ids it discovers (its locally-first
//     references whose disc is that node); a sequential prefix sum over these
//     counts yields each node's canonical-id base, which is exactly the
//     number of ids the sequential replay would have assigned before reaching
//     it — so the MaxConfigs cut lands on the same head boundary, found by
//     binary search on the monotone base array.
//  3. assign: each node writes canonical ids base[j], base[j]+1, ... to its
//     discoveries in local edge order, along with parent/parentVia/provOf —
//     disjoint writes, since an id has exactly one discovering node.
//  4. emit: with every referenced id now canonical, each node fills its
//     pre-sized slice of the CSR edge arrays.
//
// Passes run via parallelFor on the same steal pool as the expansion, so
// idle grid workers accelerate the replay too.
func replayLevelPar(g *Graph, st *replayState, frontier []int32, results []levelResult, frontCanonStart, maxConfigs, nStart int, pool *stealPool) []int32 {
	nf := len(frontier)
	nNew := len(st.canon) - nStart // provisional ids interned this level

	// Pass 1: discovering node of every new provisional id.
	disc := make([]atomic.Int32, nNew)
	for i := range disc {
		disc[i].Store(int32(nf)) // sentinel: larger than any frontier index
	}
	parallelFor(pool, nf, replayParGrain, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			for _, e := range results[j].edges {
				if int(e.pid) >= nStart {
					atomicMin32(&disc[int(e.pid)-nStart], int32(j))
				}
			}
		}
	})

	// Pass 2: per-node first-discovery counts, prefix-summed into the
	// canonical-id base of each node's discoveries.
	base := make([]int32, nf+1)
	parallelFor(pool, nf, replayParGrain, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			n := int32(0)
			edges := results[j].edges
			for k := range edges {
				if isFirstDiscovery(edges, k, nStart, disc, j) {
					n++
				}
			}
			base[j+1] = n
		}
	})
	for j := 0; j < nf; j++ {
		base[j+1] += base[j]
	}

	// The sequential replay checks the budget before expanding node j, when
	// st.ncanon + base[j] ids exist; cut at the first node failing that.
	cut := sort.Search(nf, func(j int) bool { return st.ncanon+int(base[j]) > maxConfigs })
	if cut < nf {
		g.Complete = false
		st.truncated = true
	}
	for j := 0; j < cut; j++ {
		if results[j].overflow {
			g.Complete = false
		}
	}

	totalNew := int(base[cut])
	edgeOff := make([]int32, cut+1)
	for j := 0; j < cut; j++ {
		edgeOff[j+1] = edgeOff[j] + int32(len(results[j].edges))
	}
	prevEdges := len(g.succ)
	g.succ = append(g.succ, make([]int32, edgeOff[cut])...)
	g.via = append(g.via, make([]int32, edgeOff[cut])...)
	g.parent = append(g.parent, make([]int32, totalNew)...)
	g.parentVia = append(g.parentVia, make([]int32, totalNew)...)
	st.provOf = append(st.provOf, make([]int32, totalNew)...)
	ncanon0 := st.ncanon

	// Pass 3: assign canonical ids to this level's discoveries.
	parallelFor(pool, cut, replayParGrain, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			u := int32(frontCanonStart + j)
			local := int32(0)
			edges := results[j].edges
			for k, e := range edges {
				if isFirstDiscovery(edges, k, nStart, disc, j) {
					cid := int32(ncanon0) + base[j] + local
					local++
					st.canon[e.pid] = cid
					st.provOf[cid] = e.pid
					g.parent[cid] = u
					g.parentVia[cid] = e.ri
				}
			}
		}
	})

	// Pass 4: emit CSR edges; every referenced id is canonical now.
	parallelFor(pool, cut, replayParGrain, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			off := prevEdges + int(edgeOff[j])
			for k, e := range results[j].edges {
				g.succ[off+k] = st.canon[e.pid]
				g.via[off+k] = e.ri
			}
		}
	})

	for j := 0; j < cut; j++ {
		st.succOff = append(st.succOff, int32(prevEdges)+edgeOff[j+1])
	}
	st.ncanon = ncanon0 + totalNew
	return st.provOf[ncanon0:st.ncanon]
}

// isFirstDiscovery reports whether edges[k] is node j's discovery of its
// successor: the successor was first interned this level, j is its
// minimum-index referencing node, and no earlier edge of j references it
// (edge lists are at most one entry per reaction, so the scan is short).
func isFirstDiscovery(edges []levelEdge, k, nStart int, disc []atomic.Int32, j int) bool {
	pid := edges[k].pid
	if int(pid) < nStart || disc[int(pid)-nStart].Load() != int32(j) {
		return false
	}
	for i := 0; i < k; i++ {
		if edges[i].pid == pid {
			return false
		}
	}
	return true
}

// atomicMin32 lowers a to v if v is smaller.
func atomicMin32(a *atomic.Int32, v int32) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
