package reach

import (
	"sync"
	"sync/atomic"

	"crncompose/internal/crn"
	"crncompose/internal/vec"
)

// The parallel engine explores one input's state space on many cores while
// producing a Graph byte-identical to the sequential engine's. The sequential
// engine is a FIFO BFS, so its ids are assigned level by level, and within a
// level in (head order, reaction order) of first discovery. The parallel
// engine reproduces that order without serializing the hot work:
//
//  1. Expand the current frontier in parallel: workers claim batches of
//     frontier nodes, compute successors, and intern them in the sharded
//     table, recording per-node edge lists under provisional (interner) ids.
//     Interning order — and hence provisional ids — depends on scheduling.
//  2. Replay the level sequentially (cheap: no hashing, no row copies):
//     walk the frontier in canonical order and its recorded edges in
//     reaction order, assigning canonical ids at first discovery and
//     applying the MaxConfigs cut at the same head boundary the sequential
//     engine would. This renumbering makes every output array — arena rows,
//     CSR edges, BFS parents — independent of scheduling.
//
// The set of workers expanding a level is dynamic: each level is published
// to a stealPool as a levelTask, the exploration's owner always works on it,
// and any idle pool worker may join mid-level and leave when the claim
// cursor runs out. Because a node's expansion record depends only on the
// node itself, joining and leaving workers — at any moment, in any
// combination — cannot change the records, only who computed them; the
// replay then erases the one thing scheduling does affect (provisional ids).
//
// Nodes interned during a level that the budget cut then discards are
// dropped by the renumbering (they simply never receive a canonical id), so
// budget-truncated graphs are also byte-identical to the sequential engine's.

// levelEdge is one discovered edge: the provisional id of the successor and
// the reaction producing it.
type levelEdge struct {
	pid int32
	ri  int32
}

// levelResult is the expansion record of one frontier node.
type levelResult struct {
	edges    []levelEdge
	overflow bool // some successor exceeded MaxCount and was skipped
}

const (
	// stealMinFrontier is the smallest frontier published for stealing;
	// below it the owner expands inline without touching the pool.
	stealMinFrontier = 32
	// stealBatchDiv divides the frontier into claim batches so a late
	// joiner still finds work (capped at maxStealBatch nodes).
	stealBatchDiv = 32
	maxStealBatch = 256
)

// levelTask is one level's expansion, shared between its owner and any pool
// workers that steal into it. Claiming is a single atomic cursor over the
// frontier; results[j] is written by exactly one claimant.
type levelTask struct {
	c        *crn.CRN
	in       *shardedInterner
	frontier []int32
	results  []levelResult
	nR       int
	maxCount int64
	batch    int64
	next     atomic.Int64  // claim cursor over frontier
	done     atomic.Int64  // completed frontier nodes
	finished chan struct{} // closed when done == len(frontier); nil if unpublished
}

// unclaimed reports whether frontier nodes remain to claim.
func (t *levelTask) unclaimed() bool { return t.next.Load() < int64(len(t.frontier)) }

// work claims batches of frontier nodes and expands them until the cursor
// is exhausted. Safe for any number of concurrent callers.
func (t *levelTask) work() {
	d := t.in.d
	scratch := make([]int64, d)
	// Edge records append into a worker-local buffer; per-node slices are
	// capped views into it. Capacity is topped up between nodes so one
	// node's edges never straddle a reallocation.
	var buf []levelEdge
	n := int64(len(t.frontier))
	for {
		if testStealJitter != nil {
			testStealJitter()
		}
		start := t.next.Add(t.batch) - t.batch
		if start >= n {
			return
		}
		end := min(start+t.batch, n)
		for j := start; j < end; j++ {
			row := t.in.arena.row(t.frontier[j])
			if cap(buf)-len(buf) < t.nR {
				buf = make([]levelEdge, 0, max(1024, 4*t.nR))
			}
			first := len(buf)
			for ri := 0; ri < t.nR; ri++ {
				if !t.c.ApplicableAt(row, ri) {
					continue
				}
				t.c.ApplyInto(scratch, row, ri)
				if vec.V(scratch).MaxComponent() > t.maxCount {
					t.results[j].overflow = true
					continue
				}
				pid, _ := t.in.lookupOrAdd(scratch, vec.Hash64(scratch))
				buf = append(buf, levelEdge{pid: pid, ri: int32(ri)})
			}
			t.results[j].edges = buf[first:len(buf):len(buf)]
		}
		if t.finished != nil && t.done.Add(end-start) == n {
			close(t.finished)
		}
	}
}

// expandLevel expands every frontier node. With a pool attached and a
// frontier large enough to amortize the coordination, the level is published
// so idle pool workers can claim slices alongside the owner; the owner
// always participates and blocks until every claimed slice is complete.
func expandLevel(c *crn.CRN, in *shardedInterner, frontier []int32, nR int, o Options, pool *stealPool) []levelResult {
	t := &levelTask{
		c: c, in: in, frontier: frontier,
		results:  make([]levelResult, len(frontier)),
		nR:       nR,
		maxCount: o.MaxCount,
	}
	if pool == nil || len(frontier) < stealMinFrontier {
		t.batch = int64(len(frontier))
		t.work()
		return t.results
	}
	t.batch = int64(max(1, min(maxStealBatch, len(frontier)/stealBatchDiv)))
	t.finished = make(chan struct{})
	pool.publish(t)
	t.work()
	<-t.finished
	pool.retract(t)
	return t.results
}

// exploreParallel runs a standalone parallel exploration: a private pool
// whose o.Workers-1 helpers drain level tasks while the calling goroutine
// owns the exploration.
func exploreParallel(root crn.Config, o Options) *Graph {
	pool := newStealPool()
	pool.addOwner()
	var wg sync.WaitGroup
	for w := 1; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool.drain()
		}()
	}
	g := explorePooled(root, o, pool)
	pool.dropOwner()
	wg.Wait()
	return g
}

// explorePooled is the renumbering engine: it enumerates the reachable
// configurations level-synchronized, expanding each level with the help of
// whatever pool workers are idle, and replays every level sequentially into
// canonical ids. The caller must hold an owner registration on pool for the
// duration of the call.
func explorePooled(root crn.Config, o Options, pool *stealPool) *Graph {
	c := root.CRN()
	d := c.NumSpecies() // also forces the CRN index build before workers start
	g := &Graph{CRN: c, Complete: true, d: d, outIdx: c.OutputIndex()}
	nR := c.NumReactions()

	in := newShardedInterner(d)
	rootRow := root.CountsRef()
	in.lookupOrAdd(rootRow, vec.Hash64(rootRow))

	// canon maps provisional ids to canonical ids (-1 = not yet discovered in
	// canonical order); provOf is the inverse, appended in canonical order.
	canon := make([]int32, 1, 1024)
	provOf := make([]int32, 1, 1024)
	g.parent = append(g.parent, -1)
	g.parentVia = append(g.parentVia, -1)

	frontier := []int32{0} // provisional ids of the current level, canonical order
	frontCanonStart := 0   // canonical id of frontier[0]
	ncanon := 1            // canonical ids assigned so far
	succOff := make([]int32, 1, 1024)
	truncated := false

	for len(frontier) > 0 && !truncated {
		// ncanon here counts every node through the end of this frontier, so
		// if it already exceeds the budget the replay below would truncate at
		// j=0 — the sequential engine stops at the same head. Bail before
		// paying for a full level of expansion that would all be discarded.
		if ncanon > o.MaxConfigs {
			g.Complete = false
			break
		}
		results := expandLevel(c, in, frontier, nR, o, pool)
		for len(canon) < in.n() {
			canon = append(canon, -1)
		}
		var next []int32
		for j := range frontier {
			if ncanon > o.MaxConfigs {
				g.Complete = false
				truncated = true
				break
			}
			u := int32(frontCanonStart + j)
			r := &results[j]
			if r.overflow {
				g.Complete = false
			}
			for _, e := range r.edges {
				cid := canon[e.pid]
				if cid < 0 {
					cid = int32(ncanon)
					ncanon++
					canon[e.pid] = cid
					provOf = append(provOf, e.pid)
					g.parent = append(g.parent, u)
					g.parentVia = append(g.parentVia, e.ri)
					next = append(next, e.pid)
				}
				g.succ = append(g.succ, cid)
				g.via = append(g.via, e.ri)
			}
			succOff = append(succOff, int32(len(g.succ)))
		}
		frontCanonStart += len(frontier)
		frontier = next
	}

	// Close the offset table over discovered-but-unexpanded nodes, then copy
	// the surviving rows into a flat arena in canonical order.
	for len(succOff) < ncanon+1 {
		succOff = append(succOff, int32(len(g.succ)))
	}
	g.succOff = succOff
	g.arena = make([]int64, ncanon*d)
	for cid, pid := range provOf {
		copy(g.arena[cid*d:(cid+1)*d], in.arena.row(pid))
	}
	g.buildPred()
	return g
}
