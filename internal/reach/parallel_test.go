package reach

import (
	"fmt"
	"math/rand/v2"
	"slices"
	"sync"
	"sync/atomic"
	"testing"

	"crncompose/internal/benchcrn"
	"crncompose/internal/crn"
	"crncompose/internal/vec"
)

// requireGraphsIdentical asserts byte-identity of every array the engines
// produce — the contract that makes verdicts and witness replay independent
// of the worker count.
func requireGraphsIdentical(t *testing.T, seq, par *Graph) {
	t.Helper()
	if seq.Complete != par.Complete {
		t.Fatalf("Complete: sequential %v, parallel %v", seq.Complete, par.Complete)
	}
	if seq.d != par.d || seq.outIdx != par.outIdx {
		t.Fatalf("d/outIdx: sequential %d/%d, parallel %d/%d", seq.d, seq.outIdx, par.d, par.outIdx)
	}
	for name, pair := range map[string][2][]int32{
		"succ":      {seq.succ, par.succ},
		"via":       {seq.via, par.via},
		"succOff":   {seq.succOff, par.succOff},
		"pred":      {seq.pred, par.pred},
		"predOff":   {seq.predOff, par.predOff},
		"parent":    {seq.parent, par.parent},
		"parentVia": {seq.parentVia, par.parentVia},
	} {
		if !slices.Equal(pair[0], pair[1]) {
			t.Fatalf("%s differs:\nsequential %v\nparallel   %v", name, pair[0], pair[1])
		}
	}
	if !slices.Equal(seq.arena, par.arena) {
		t.Fatalf("arena differs (%d vs %d rows)", seq.NumConfigs(), par.NumConfigs())
	}
}

// withoutSmallProbe disables the sequential small-state-space probe for the
// duration of the test, forcing the renumbering engine to run even on small
// graphs — which is the whole point of the byte-identity tests below.
func withoutSmallProbe(t *testing.T) {
	t.Helper()
	old := smallProbeBudget
	smallProbeBudget = 0
	t.Cleanup(func() { smallProbeBudget = old })
}

// branchyCRN (benchcrn.Branchy) has interleaving independent reactions, so
// BFS levels get wide enough to exercise multi-worker expansion and
// cross-parent rediscovery; it also stably computes max(x1, x2), which the
// steal-schedule grid tests (pool_test.go) rely on.
func branchyCRN() *crn.CRN { return benchcrn.Branchy() }

func TestExploreParallelByteIdentical(t *testing.T) {
	withoutSmallProbe(t)
	cases := []struct {
		name string
		root crn.Config
		opts []Option
	}{
		{"min", minCRN().MustInitialConfig(vec.New(4, 3)), nil},
		{"max", maxCRN().MustInitialConfig(vec.New(5, 4)), nil},
		{"branchy", branchyCRN().MustInitialConfig(vec.New(5, 5)), nil},
		{"branchy-large", branchyCRN().MustInitialConfig(vec.New(8, 8)), nil},
		// Budget cuts must land on the same head boundary.
		{"budget-1", branchyCRN().MustInitialConfig(vec.New(6, 6)), []Option{WithMaxConfigs(1)}},
		{"budget-17", branchyCRN().MustInitialConfig(vec.New(6, 6)), []Option{WithMaxConfigs(17)}},
		{"budget-100", branchyCRN().MustInitialConfig(vec.New(6, 6)), []Option{WithMaxConfigs(100)}},
		{"budget-0", branchyCRN().MustInitialConfig(vec.New(6, 6)), []Option{WithMaxConfigs(0)}},
		// Count caps skip individual successors mid-level.
		{"countcap", growerCRN().MustInitialConfig(vec.New(3)), []Option{WithMaxCount(40)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := Explore(tc.root, append(slices.Clone(tc.opts), WithWorkers(1))...)
			for _, workers := range []int{2, 3, 8} {
				par := Explore(tc.root, append(slices.Clone(tc.opts), WithWorkers(workers))...)
				requireGraphsIdentical(t, seq, par)
			}
		})
	}
}

func growerCRN() *crn.CRN {
	return crn.MustNew([]crn.Species{"X"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X"}}, Products: []crn.Term{{Coeff: 2, Sp: "X"}}},
		{Reactants: []crn.Term{{Coeff: 2, Sp: "X"}}, Products: []crn.Term{{Coeff: 1, Sp: "X"}, {Coeff: 1, Sp: "Y"}}},
	})
}

func TestCheckInputParallelWitnessIdentical(t *testing.T) {
	withoutSmallProbe(t)
	// A refuted check must report the identical error and witness trace at
	// any worker count (the witness is extracted from graph ids, so this is
	// the end-to-end consequence of byte-identity).
	racy := crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}, {Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}, {Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "K"}}},
	})
	root := racy.MustInitialConfig(vec.New(3, 3))
	seq := CheckInput(root, 3, WithWorkers(1))
	if seq.OK || seq.Witness == nil {
		t.Fatalf("sequential check unexpectedly passed: %+v", seq)
	}
	for _, workers := range []int{2, 4, 8} {
		par := CheckInput(root, 3, WithWorkers(workers))
		if par.OK || par.Witness == nil {
			t.Fatalf("workers=%d: check unexpectedly passed: %+v", workers, par)
		}
		if par.Err.Error() != seq.Err.Error() {
			t.Fatalf("workers=%d: error %q, sequential %q", workers, par.Err, seq.Err)
		}
		if par.Explored != seq.Explored {
			t.Fatalf("workers=%d: explored %d, sequential %d", workers, par.Explored, seq.Explored)
		}
		if !slices.Equal(par.Witness.Reactions, seq.Witness.Reactions) {
			t.Fatalf("workers=%d: witness %v, sequential %v", workers, par.Witness.Reactions, seq.Witness.Reactions)
		}
		if _, err := par.Witness.Replay(); err != nil {
			t.Fatalf("workers=%d: witness does not replay: %v", workers, err)
		}
	}
}

func TestShardedInternerContention(t *testing.T) {
	// Stress one shard: rows picked so their hashes all land in shard 0, so
	// every goroutine fights over a single shard lock while interning both
	// duplicate and fresh rows. Ids must come out consistent and dense.
	const d = 3
	var rows [][]int64
	for x := int64(0); len(rows) < 300; x++ {
		row := []int64{x, x * 7, x % 5}
		if vec.HashShard(vec.Hash64(row), shardBits) == 0 {
			rows = append(rows, row)
		}
	}
	in := newShardedInterner(d)
	const goroutines = 16
	ids := make([][]int32, goroutines)
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each goroutine interns every row in its own order.
			order := rand.New(rand.NewPCG(uint64(gi), 7)).Perm(len(rows))
			ids[gi] = make([]int32, len(rows))
			for _, ri := range order {
				id, _ := in.lookupOrAdd(rows[ri], vec.Hash64(rows[ri]))
				ids[gi][ri] = id
			}
		}()
	}
	wg.Wait()
	if in.n() != len(rows) {
		t.Fatalf("interned %d rows, want %d", in.n(), len(rows))
	}
	seen := make(map[int32]bool)
	for ri := range rows {
		id := ids[0][ri]
		if seen[id] {
			t.Fatalf("row %d shares id %d with another row", ri, id)
		}
		seen[id] = true
		if id < 0 || int(id) >= len(rows) {
			t.Fatalf("row %d: id %d out of dense range", ri, id)
		}
		if !slices.Equal(in.arena.row(id), rows[ri]) {
			t.Fatalf("row %d: arena holds %v, want %v", ri, in.arena.row(id), rows[ri])
		}
		for gi := 1; gi < goroutines; gi++ {
			if ids[gi][ri] != id {
				t.Fatalf("row %d: goroutine %d got id %d, goroutine 0 got %d", ri, gi, ids[gi][ri], id)
			}
		}
	}
}

func TestChunkedArenaRowsStableAcrossGrowth(t *testing.T) {
	// Rows handed out before growth must remain valid and unchanged after
	// the directory grows many times over.
	const d = 2
	a := newChunkedArena(d)
	chunkRows := a.mask + 1
	early := []int64{42, 43}
	a.write(0, early)
	held := a.row(0)
	for id := int32(1); id < 3*chunkRows; id++ {
		a.write(id, []int64{int64(id), -int64(id)})
	}
	if !slices.Equal(held, early) {
		t.Fatalf("early row changed after growth: %v", held)
	}
	for id := int32(1); id < 3*chunkRows; id += chunkRows / 3 {
		if got := a.row(id); got[0] != int64(id) || got[1] != -int64(id) {
			t.Fatalf("row %d = %v", id, got)
		}
	}
	// And a wide-row arena must pick a small chunk so tiny explorations of
	// wide-species CRNs don't allocate megabytes up front.
	wide := newChunkedArena(200)
	if rows := int(wide.mask) + 1; rows*200*8 > 2*targetChunkInt64s*8 {
		t.Fatalf("chunk for d=200 is %d rows (%d bytes)", rows, rows*200*8)
	}
}

func TestExploreWorkerSweepAgainstBaseline(t *testing.T) {
	withoutSmallProbe(t)
	// Cross-check a mid-size graph across a sweep of worker counts and
	// verify invariants hold on the parallel output too (via-edge replay).
	root := branchyCRN().MustInitialConfig(vec.New(4, 6))
	seq := Explore(root, WithWorkers(1))
	for workers := 2; workers <= 12; workers++ {
		par := Explore(root, WithWorkers(workers))
		requireGraphsIdentical(t, seq, par)
	}
	for u := 0; u < seq.NumConfigs(); u++ {
		cu := seq.Config(int32(u))
		succ, via := seq.Succ(int32(u)), seq.Via(int32(u))
		for k, v := range succ {
			if got := cu.Apply(int(via[k])); got.Key() != seq.Config(v).Key() {
				t.Fatalf("edge %d→%d via %d lands on %s", u, v, via[k], got)
			}
		}
	}
}

func TestCheckGridPoolWidthExtremes(t *testing.T) {
	// A one-input grid with a large worker budget must still verify
	// correctly (every pool worker migrates into the single exploration),
	// as must a grid wide enough that workers stay on whole inputs.
	for _, bounds := range [][2]int64{{0, 0}, {0, 3}} {
		res, err := CheckGrid(minCRN(), func(x []int64) int64 { return min(x[0], x[1]) },
			[]int64{bounds[0], bounds[0]}, []int64{bounds[1], bounds[1]}, WithWorkers(8))
		if err != nil || !res.OK() {
			t.Fatalf("bounds %v: %v %v", bounds, err, res)
		}
		want := (bounds[1] - bounds[0] + 1) * (bounds[1] - bounds[0] + 1)
		if int64(res.Checked) != want {
			t.Fatalf("bounds %v: checked %d, want %d", bounds, res.Checked, want)
		}
	}
}

func TestExploreParallelLargeGridEquivalence(t *testing.T) {
	withoutSmallProbe(t)
	if testing.Short() {
		t.Skip("large equivalence sweep skipped in -short")
	}
	// Larger inputs: tens of thousands of configurations with wide levels.
	root := branchyCRN().MustInitialConfig(vec.New(12, 12))
	seq := Explore(root, WithWorkers(1))
	if seq.NumConfigs() < 10_000 {
		t.Fatalf("test CRN too small to be interesting: %d configs", seq.NumConfigs())
	}
	for _, workers := range []int{2, 8} {
		requireGraphsIdentical(t, seq, Explore(root, WithWorkers(workers)))
	}
}

// withForcedParallelReplay forces the prefix-sum renumbering replay
// (replayLevelPar) onto every level, however small, so the byte-identity
// suite pins it against the sequential replay on the same graphs.
func withForcedParallelReplay(t *testing.T) {
	t.Helper()
	old := replayMinFrontier
	replayMinFrontier = 0
	t.Cleanup(func() { replayMinFrontier = old })
}

func TestParallelReplayByteIdentical(t *testing.T) {
	withoutSmallProbe(t)
	withForcedParallelReplay(t)
	cases := []struct {
		name string
		root crn.Config
		opts []Option
	}{
		{"min", minCRN().MustInitialConfig(vec.New(4, 3)), nil},
		{"max", maxCRN().MustInitialConfig(vec.New(5, 4)), nil},
		{"branchy", branchyCRN().MustInitialConfig(vec.New(5, 5)), nil},
		{"branchy-large", branchyCRN().MustInitialConfig(vec.New(8, 8)), nil},
		// Budget cuts must land on the same head boundary — the parallel
		// replay finds it by binary search on the prefix sums.
		{"budget-1", branchyCRN().MustInitialConfig(vec.New(6, 6)), []Option{WithMaxConfigs(1)}},
		{"budget-17", branchyCRN().MustInitialConfig(vec.New(6, 6)), []Option{WithMaxConfigs(17)}},
		{"budget-100", branchyCRN().MustInitialConfig(vec.New(6, 6)), []Option{WithMaxConfigs(100)}},
		{"budget-0", branchyCRN().MustInitialConfig(vec.New(6, 6)), []Option{WithMaxConfigs(0)}},
		// Count caps skip individual successors mid-level.
		{"countcap", growerCRN().MustInitialConfig(vec.New(3)), []Option{WithMaxCount(40)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq, _ := exploreSeq(tc.root, buildOptions(append(slices.Clone(tc.opts), WithWorkers(1))))
			for _, workers := range []int{2, 3, 8} {
				par := Explore(tc.root, append(slices.Clone(tc.opts), WithWorkers(workers))...)
				requireGraphsIdentical(t, seq, par)
			}
		})
	}
}

func TestParallelReplayBudgetSweepByteIdentical(t *testing.T) {
	withoutSmallProbe(t)
	withForcedParallelReplay(t)
	// Every budget from 0 to past the full graph must cut at the same
	// boundary under the parallel replay as under the sequential one.
	root := branchyCRN().MustInitialConfig(vec.New(3, 3))
	full, _ := exploreSeq(root, buildOptions(nil))
	n := full.NumConfigs()
	for budget := 0; budget <= n+1; budget += max(1, n/37) {
		seq, _ := exploreSeq(root, buildOptions([]Option{WithMaxConfigs(budget)}))
		par := Explore(root, WithWorkers(4), WithMaxConfigs(budget))
		t.Run(fmt.Sprintf("budget-%d", budget), func(t *testing.T) {
			requireGraphsIdentical(t, seq, par)
		})
	}
}

func TestParallelForCoversRange(t *testing.T) {
	// parallelFor must hit every index exactly once, with and without a pool.
	for _, pooled := range []bool{false, true} {
		var pool *stealPool
		if pooled {
			pool = newStealPool()
			pool.addOwner()
			defer pool.dropOwner()
		}
		const n = 10_000
		hits := make([]atomic.Int32, n)
		parallelFor(pool, n, 64, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("pooled=%v: index %d hit %d times", pooled, i, got)
			}
		}
	}
}

func TestExploreBudgetSweepByteIdentical(t *testing.T) {
	withoutSmallProbe(t)
	// Every budget value from 0 to the full graph size must cut at the same
	// boundary in both engines — this pins the exact mid-level truncation
	// semantics, not just the easy full-graph case.
	root := branchyCRN().MustInitialConfig(vec.New(3, 3))
	full := Explore(root, WithWorkers(1))
	n := full.NumConfigs()
	for budget := 0; budget <= n+1; budget += max(1, n/37) {
		seq := Explore(root, WithWorkers(1), WithMaxConfigs(budget))
		par := Explore(root, WithWorkers(4), WithMaxConfigs(budget))
		t.Run(fmt.Sprintf("budget-%d", budget), func(t *testing.T) {
			requireGraphsIdentical(t, seq, par)
		})
	}
}
