package reach

import (
	"sync"
	"sync/atomic"
)

// stealPool coordinates one fixed set of goroutines across the two
// parallelism levels of a grid check. Workers prefer whole grid inputs (the
// embarrassingly parallel outer level); once the inputs run dry they migrate
// into still-running explorations by stealing frontier slices of the level
// currently being expanded, instead of idling at the chunk barrier. The same
// pool backs a standalone parallel Explore, with o.Workers-1 dedicated
// helpers draining it.
//
// Determinism: stealing never changes any output. A levelTask's expansion
// record for frontier node j depends only on that node's row (see
// levelTask.work), so the records are identical however the claimed slices
// land on workers, and the owner's sequential renumbering replay
// (parallel.go) erases the scheduling-dependent provisional ids. The pool
// therefore preserves the byte-identical-Graph contract at any worker count
// and any steal schedule.
type stealPool struct {
	mu    sync.Mutex
	cond  *sync.Cond
	tasks []poolTask // in-flight claimable work open for stealing
	// owners counts goroutines that may still publish tasks: grid workers
	// inside a checkInput, or a standalone Explore's calling goroutine.
	// Helpers exit when owners reaches 0 with no stealable work left.
	owners int
}

// poolTask is a unit of claimable work published to the pool: a level
// expansion (levelTask) or a replay pass (rangeTask). Claiming is lock-free
// inside the task; the pool only tracks which tasks still have unclaimed
// slices.
type poolTask interface {
	// unclaimed reports whether work remains to claim.
	unclaimed() bool
	// work claims and runs slices until the task's cursor is exhausted.
	// Safe for any number of concurrent callers.
	work()
}

// testStealJitter, when non-nil, is invoked by pool workers around claim
// points. Tests install randomized sleeps to shuffle steal schedules and
// then assert the results are byte-identical anyway. Always nil outside
// tests; the write happens before any pool goroutine starts.
var testStealJitter func()

func newStealPool() *stealPool {
	p := &stealPool{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// addOwner registers a goroutine that may publish tasks. Grid workers call
// it before claiming a job index so that a racing helper can never observe
// owners == 0 while a just-claimed exploration is about to publish work.
func (p *stealPool) addOwner() {
	p.mu.Lock()
	p.owners++
	p.mu.Unlock()
}

// dropOwner deregisters an owner, waking waiting helpers only when the last
// owner leaves: helpers blocked in steal wait for either new tasks (signaled
// by publish) or pool drain (owners hitting 0), so intermediate drops have
// nothing to tell them.
func (p *stealPool) dropOwner() {
	p.mu.Lock()
	p.owners--
	last := p.owners == 0
	p.mu.Unlock()
	if last {
		p.cond.Broadcast()
	}
}

// publish offers t's unclaimed slices to idle pool workers.
func (p *stealPool) publish(t poolTask) {
	p.mu.Lock()
	p.tasks = append(p.tasks, t)
	p.mu.Unlock()
	p.cond.Broadcast()
}

// retract removes t once it is fully processed. Helpers still holding t see
// an exhausted claim cursor and fall back to steal().
func (p *stealPool) retract(t poolTask) {
	p.mu.Lock()
	for i, x := range p.tasks {
		if x == t {
			p.tasks = append(p.tasks[:i], p.tasks[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
}

// steal blocks until some published task has unclaimed work and returns it.
// It returns nil once no owner remains to publish more — the pool is
// drained.
func (p *stealPool) steal() poolTask {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		for _, t := range p.tasks {
			if t.unclaimed() {
				return t
			}
		}
		if p.owners == 0 {
			return nil
		}
		p.cond.Wait()
	}
}

// drain is the helper loop: steal and expand frontier slices until the pool
// is exhausted.
func (p *stealPool) drain() {
	for {
		if testStealJitter != nil {
			testStealJitter()
		}
		t := p.steal()
		if t == nil {
			return
		}
		t.work()
	}
}

// runGridJobs checks one chunk of grid inputs on the shared work-stealing
// pool and returns per-job verdicts. Entries past the first failing index
// may be zero-valued: the caller aggregates in order and never reads them.
//
// o.Workers goroutines serve both parallelism levels: each claims grid
// inputs while any remain, exploring each claimed input as that
// exploration's owner; workers that run out of inputs migrate into the
// still-running explorations via the pool. A chunk with at least o.Workers
// inputs therefore starts all-outer, and a single large input ends up with
// every worker expanding its frontiers — with every intermediate skew
// rebalancing itself, which is what the old static outer × inner split
// could not do.
func runGridJobs(jobs []gridJob, o Options) ([]Verdict, error) {
	verdicts := make([]Verdict, len(jobs))
	if len(jobs) == 0 {
		return verdicts, nil
	}
	if o.Workers <= 1 {
		for i := range jobs {
			v, err := checkInput(jobs[i].root, jobs[i].want, o, nil)
			if err != nil {
				return nil, err
			}
			verdicts[i] = v
			if !v.OK && !v.Inconclusive {
				break
			}
		}
		return verdicts, nil
	}
	pool := newStealPool()
	// failMin is the smallest job index known to have failed; jobs after it
	// can be skipped since aggregation never reads past the first failure.
	// It only decreases, so every index ≤ its final value is guaranteed to
	// have been fully checked.
	var next, failMin atomic.Int64
	failMin.Store(int64(len(jobs)))
	// ferr records the first cancellation any worker observed. Once the
	// shared context is canceled every in-flight exploration unwinds at its
	// next level barrier and every later claim fails on entry, so the whole
	// chunk drains promptly; wg.Wait below guarantees no goroutine outlives
	// the call even on the error path.
	var ferr firstError
	var wg sync.WaitGroup
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			gridWorker(jobs, verdicts, o, pool, &next, &failMin, &ferr)
		}()
	}
	wg.Wait()
	if err := ferr.get(); err != nil {
		return nil, err
	}
	return verdicts, nil
}

// firstError keeps the first error set; later sets are dropped.
type firstError struct {
	mu  sync.Mutex
	err error
}

func (e *firstError) set(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

func (e *firstError) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// rangeTask is a claimable parallel loop over [0, n): pool workers (and the
// publishing owner) claim batches of `grain` indices and run fn on each
// half-open slice. fn must be safe for concurrent calls on disjoint ranges.
type rangeTask struct {
	n, grain   int64
	fn         func(lo, hi int)
	next, done atomic.Int64
	finished   chan struct{}
}

func (t *rangeTask) unclaimed() bool { return t.next.Load() < t.n }

func (t *rangeTask) work() {
	for {
		if testStealJitter != nil {
			testStealJitter()
		}
		start := t.next.Add(t.grain) - t.grain
		if start >= t.n {
			return
		}
		end := min(start+t.grain, t.n)
		t.fn(int(start), int(end))
		if t.done.Add(end-start) == t.n {
			close(t.finished)
		}
	}
}

// parallelFor runs fn over [0, n) with the help of idle pool workers, split
// into batches of grain indices, and returns when every index has been
// processed. The caller must hold an owner registration on pool (it always
// participates, so progress never depends on idle helpers existing). With a
// nil pool or a range no larger than one batch it degenerates to a plain
// call.
func parallelFor(pool *stealPool, n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if pool == nil || n <= grain {
		fn(0, n)
		return
	}
	t := &rangeTask{n: int64(n), grain: int64(grain), fn: fn, finished: make(chan struct{})}
	pool.publish(t)
	t.work()
	<-t.finished
	pool.retract(t)
}

func gridWorker(jobs []gridJob, verdicts []Verdict, o Options, pool *stealPool, next, failMin *atomic.Int64, ferr *firstError) {
	for {
		if testStealJitter != nil {
			testStealJitter()
		}
		pool.addOwner()
		i := next.Add(1) - 1
		if i >= int64(len(jobs)) {
			pool.dropOwner()
			break
		}
		if i > failMin.Load() {
			pool.dropOwner()
			continue
		}
		v, err := checkInput(jobs[i].root, jobs[i].want, o, pool)
		pool.dropOwner()
		if err != nil {
			// Cancellation: stop claiming. Workers still exploring see the
			// same canceled context at their next level barrier, so leaving
			// the remaining indices unclaimed never strands anyone.
			ferr.set(err)
			break
		}
		verdicts[i] = v
		if !v.OK && !v.Inconclusive {
			for {
				cur := failMin.Load()
				if i >= cur || failMin.CompareAndSwap(cur, i) {
					break
				}
			}
		}
	}
	// No inputs left: migrate into in-flight explorations until the whole
	// chunk is done.
	pool.drain()
}
