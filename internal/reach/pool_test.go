package reach

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"crncompose/internal/crn"
	"crncompose/internal/vec"
)

// withStealJitter installs a jitter hook that sleeps a pseudo-random few
// microseconds at every pool claim point — job claims, steal attempts, and
// frontier batch claims — so repeated runs exercise genuinely different
// steal schedules. The hook is derived from an atomic counter, so it is
// race-free however many pool workers call it.
func withStealJitter(t *testing.T, seed uint64, f func()) {
	t.Helper()
	var ctr atomic.Uint64
	testStealJitter = func() {
		n := ctr.Add(1) + seed
		// SplitMix-style scramble; sleep 0–16µs.
		n = (n ^ (n >> 30)) * 0xBF58476D1CE4E5B9
		time.Sleep(time.Duration((n>>33)%16) * time.Microsecond)
	}
	defer func() { testStealJitter = nil }()
	f()
}

// requireGridResultsIdentical asserts byte-level equality of everything a
// GridResult carries, including the failure verdict and its witness trace.
func requireGridResultsIdentical(t *testing.T, seq, par GridResult) {
	t.Helper()
	if seq.Checked != par.Checked || seq.Inconclusive != par.Inconclusive || seq.Explored != par.Explored {
		t.Fatalf("counts differ: sequential %d/%d/%d, pool %d/%d/%d",
			seq.Checked, seq.Inconclusive, seq.Explored, par.Checked, par.Inconclusive, par.Explored)
	}
	if (seq.Failure == nil) != (par.Failure == nil) {
		t.Fatalf("failure presence differs: sequential %v, pool %v", seq.Failure, par.Failure)
	}
	if seq.Failure == nil {
		return
	}
	sf, pf := seq.Failure, par.Failure
	if fmt.Sprint(sf.Input) != fmt.Sprint(pf.Input) || sf.Want != pf.Want {
		t.Fatalf("failure input differs: sequential %v want %d, pool %v want %d", sf.Input, sf.Want, pf.Input, pf.Want)
	}
	sv, pv := sf.Verdict, pf.Verdict
	if sv.OK != pv.OK || sv.Inconclusive != pv.Inconclusive || sv.Explored != pv.Explored {
		t.Fatalf("failure verdict differs: sequential %+v, pool %+v", sv, pv)
	}
	if (sv.Err == nil) != (pv.Err == nil) || (sv.Err != nil && sv.Err.Error() != pv.Err.Error()) {
		t.Fatalf("failure error differs: %v vs %v", sv.Err, pv.Err)
	}
	if (sv.Witness == nil) != (pv.Witness == nil) {
		t.Fatalf("witness presence differs")
	}
	if sv.Witness != nil {
		if fmt.Sprint(sv.Witness.Reactions) != fmt.Sprint(pv.Witness.Reactions) ||
			sv.Witness.Start.Key() != pv.Witness.Start.Key() {
			t.Fatalf("witness differs:\nsequential %v\npool       %v", sv.Witness, pv.Witness)
		}
	}
}

// gridCase is one CheckGrid scenario replayed across worker counts and
// steal schedules.
type gridCase struct {
	name string
	c    *crn.CRN
	f    Func
	lo   []int64
	hi   []int64
	opts []Option
}

func stealCases() []gridCase {
	minF := func(x []int64) int64 { return min(x[0], x[1]) }
	return []gridCase{
		// All-OK skewed grid: the (8,8) corner's state space dwarfs the
		// axis inputs, small inputs drain first, and finished workers must
		// migrate into the big explorations instead of idling. 81 inputs
		// also spans two enumeration chunks.
		{"skew-ok", maxCRN(), func(x []int64) int64 { return max(x[0], x[1]) },
			[]int64{0, 0}, []int64{8, 8}, nil},
		// Mid-chunk failure: f is wrong at (3,1); every worker count and
		// steal schedule must report exactly that input with the same
		// witness, and identical counts for the prefix.
		{"mid-chunk-failure", minCRN(), func(x []int64) int64 {
			if x[0] == 3 && x[1] == 1 {
				return minF(x) + 1
			}
			return minF(x)
		}, []int64{0, 0}, []int64{5, 5}, nil},
		// Failure in a later chunk (the 10×10 grid spans two 64-input
		// chunks; (7,0) is input index 70).
		{"late-chunk-failure", minCRN(), func(x []int64) int64 {
			if x[0] == 7 && x[1] == 0 {
				return 9
			}
			return minF(x)
		}, []int64{0, 0}, []int64{9, 9}, nil},
		// MaxConfigs truncation: every x ≥ 1 input blows the budget
		// mid-level (the grower's BFS levels get wide) and must be counted
		// inconclusive — with identical Explored totals at any schedule,
		// which pins the exact truncation boundary under stealing.
		{"truncation", growerCRN(), func(x []int64) int64 { return 0 },
			[]int64{0}, []int64{6}, []Option{WithMaxConfigs(2000)}},
	}
}

func TestCheckGridStealScheduleByteIdentical(t *testing.T) {
	for _, tc := range stealCases() {
		t.Run(tc.name, func(t *testing.T) {
			seq, err := CheckGrid(tc.c, tc.f, tc.lo, tc.hi, append([]Option{WithWorkers(1)}, tc.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, 8} {
				for jitterSeed := uint64(0); jitterSeed < 3; jitterSeed++ {
					withStealJitter(t, jitterSeed, func() {
						par, err := CheckGrid(tc.c, tc.f, tc.lo, tc.hi, append([]Option{WithWorkers(workers)}, tc.opts...)...)
						if err != nil {
							t.Fatal(err)
						}
						requireGridResultsIdentical(t, seq, par)
					})
				}
			}
		})
	}
}

// TestExploreStealScheduleByteIdentical pins the byte-identical-Graph
// contract for standalone explorations under randomized helper schedules:
// helpers join and leave levels at jittered moments, yet every array the
// engine produces matches the sequential engine's.
func TestExploreStealScheduleByteIdentical(t *testing.T) {
	withoutSmallProbe(t)
	root := branchyCRN().MustInitialConfig(vec.New(6, 6))
	seq := Explore(root, WithWorkers(1))
	for _, workers := range []int{2, 4, 8} {
		for jitterSeed := uint64(0); jitterSeed < 3; jitterSeed++ {
			withStealJitter(t, jitterSeed, func() {
				requireGraphsIdentical(t, seq, Explore(root, WithWorkers(workers)))
			})
		}
	}
	// And under a budget that truncates mid-level.
	seqCut := Explore(root, WithWorkers(1), WithMaxConfigs(500))
	withStealJitter(t, 7, func() {
		requireGraphsIdentical(t, seqCut, Explore(root, WithWorkers(8), WithMaxConfigs(500)))
	})
}

// TestStealPoolDrainTerminates exercises the pool lifecycle edges: a chunk
// with fewer jobs than workers, a single-job chunk (all remaining workers
// must migrate into it), and an empty chunk.
func TestStealPoolDrainTerminates(t *testing.T) {
	// Single large input, many workers: the owner publishes levels and the
	// other workers must all drain into them and exit cleanly.
	res, err := CheckGrid(branchyCRN(), func(x []int64) int64 { return 0 },
		[]int64{5, 5}, []int64{5, 5}, WithWorkers(8), WithMaxCount(3), WithMaxConfigs(1<<20))
	if err != nil || !res.OK() || res.Checked != 1 {
		t.Fatalf("single-input grid: %v %v", err, res)
	}
	// Empty job list (lo > hi still yields exactly one probe — the odometer
	// semantics — so use runGridJobs directly for the empty case).
	if v, _ := runGridJobs(nil, Options{Workers: 8}); len(v) != 0 {
		t.Fatalf("empty chunk returned %d verdicts", len(v))
	}
}

// TestCheckGridStealMatchesSequentialStringOutput double-checks the
// user-visible rendering (crncheck prints GridResult.String and the witness
// schedule) is schedule-independent end to end.
func TestCheckGridStealMatchesSequentialStringOutput(t *testing.T) {
	// Constantly-zero f is wrong for min as soon as both inputs are
	// positive, and the refutation carries an overproduction witness.
	f := func(x []int64) int64 { return 0 }
	seq, err := CheckGrid(minCRN(), f, []int64{0, 0}, []int64{4, 4}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	withStealJitter(t, 11, func() {
		par, err := CheckGrid(minCRN(), f, []int64{0, 0}, []int64{4, 4}, WithWorkers(6))
		if err != nil {
			t.Fatal(err)
		}
		if seq.String() != par.String() {
			t.Fatalf("String differs:\nsequential %s\npool       %s", seq, par)
		}
		if !strings.Contains(par.String(), "FAIL") {
			t.Fatalf("expected failure, got %s", par)
		}
		if seq.Failure.Verdict.Witness.String() != par.Failure.Verdict.Witness.String() {
			t.Fatal("witness schedule rendering differs")
		}
	})
}
