// Package reach implements bounded exhaustive reachability analysis for
// discrete CRNs and the stable-computation verifier that mechanizes the
// definition in Section 2.2 of the paper:
//
//	A CRN C stably computes f if for each initial configuration I_x and
//	every configuration C reachable from I_x, a stable configuration O
//	with O(Y) = f(x) is reachable from C.
//
// The verifier enumerates the reachable configuration graph, identifies the
// stable configurations (those from which the output count can never
// change), and checks that the backward closure of the correct stable
// configurations covers the whole graph. Exploration is bounded; results
// distinguish "verified", "refuted (with witness)", and "inconclusive
// (budget exhausted)".
//
// # Engine
//
// This is the hottest path in the module: every synthesized CRN is model
// checked through Explore/CheckGrid. The explorer therefore avoids
// per-configuration allocation entirely. All explored configurations live in
// an []int64 arena (d counts per row), deduplicated by a 64-bit hash with an
// open-addressing interning table — no string keys, no Config clones. Edges
// are stored in CSR form (flat successor/reaction arrays plus per-node
// offsets), with predecessor CSR derived in a second pass.
//
// Parallelism exists at both levels under one worker budget (WithWorkers,
// default runtime.NumCPU) served by a single shared work-stealing pool
// (pool.go). CheckGrid's workers claim whole grid inputs while any remain —
// the embarrassingly parallel outer level — and, as inputs run dry, migrate
// into the still-running explorations by stealing frontier slices of the
// level being expanded, so a skewed grid (one huge input among many small
// ones) keeps every core busy through the tail. A single input's exploration
// runs level-synchronized parallel BFS: the intern table is sharded by hash
// prefix so workers dedup without a global lock, the arena grows in
// fixed-size chunks so readers never see a moved backing array, and a
// per-level renumbering pass (see parallel.go) makes the resulting Graph
// byte-identical to the sequential engine's at any worker count and any
// steal schedule. Failure reporting is therefore fully deterministic: the
// reported failure is always the first failing input in grid order, with
// the same witness trace at any worker count.
package reach

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"crncompose/internal/crn"
	"crncompose/internal/progress"
	"crncompose/internal/vec"
)

// Options bound the exploration.
type Options struct {
	// MaxConfigs caps the number of distinct configurations explored.
	MaxConfigs int
	// MaxCount caps any single species count; exceeding it marks the run
	// inconclusive (the CRN may have unbounded reachable counts).
	MaxCount int64
	// Workers is the total goroutine budget, served by one shared
	// work-stealing pool. CheckGrid's workers check independent grid inputs
	// while any remain and then migrate into still-running explorations,
	// stealing frontier slices, so the budget is never oversubscribed and
	// never idles at a chunk barrier. A bare Explore/CheckInput spends the
	// whole budget on one state space. Values < 1 mean runtime.NumCPU();
	// 1 forces the sequential engine. Results are byte-identical at every
	// setting and every steal schedule.
	Workers int
	// Progress, when non-nil, receives progress events from the calling
	// goroutine at the engine's deterministic barrier points: "reach.grid"
	// after every grid chunk, "reach.explore" at level barriers (parallel)
	// or every cancelCheckHeads heads (sequential) of a standalone
	// exploration. Attaching a Reporter never changes any computed result.
	Progress progress.Reporter

	// ctx is the run's cancellation context, attached only by the *Ctx
	// entry points so the context always arrives as an explicit parameter.
	// It is polled at the same deterministic points where Progress reports:
	// a canceled run returns a wrapped ctx.Err() and never a partial
	// verdict, and a run that completes is byte-identical to an
	// uncancellable one.
	ctx context.Context
}

// ctxErr polls the run's context; nil means "keep going". The returned
// error wraps ctx.Err(), so errors.Is(err, context.Canceled) (or
// DeadlineExceeded) holds for callers.
func (o *Options) ctxErr() error {
	if o.ctx == nil {
		return nil
	}
	select {
	case <-o.ctx.Done():
		return fmt.Errorf("reach: run canceled: %w", o.ctx.Err())
	default:
		return nil
	}
}

// cancelCheckHeads is the head-count stride between the sequential engine's
// cancellation polls and progress posts. Coarse enough that the poll is
// free, fine enough that cancellation lands within a bounded slice of
// exploration work.
const cancelCheckHeads = 1024

// Option mutates Options.
type Option func(*Options)

// WithMaxConfigs sets the configuration budget.
func WithMaxConfigs(n int) Option { return func(o *Options) { o.MaxConfigs = n } }

// WithMaxCount sets the per-species count cap.
func WithMaxCount(n int64) Option { return func(o *Options) { o.MaxCount = n } }

// WithWorkers sets the total worker budget of the shared work-stealing pool
// serving grid-level and exploration-level parallelism (see
// Options.Workers). n < 1 selects runtime.NumCPU(); n == 1 forces fully
// sequential checking.
func WithWorkers(n int) Option { return func(o *Options) { o.Workers = n } }

// WithProgress attaches a progress.Reporter to the run (see
// Options.Progress). The Reporter is called only from the goroutine that
// invoked the engine, at deterministic barrier points, and never changes
// the computed result.
func WithProgress(r progress.Reporter) Option { return func(o *Options) { o.Progress = r } }

func buildOptions(opts []Option) Options {
	o := Options{MaxConfigs: 1 << 18, MaxCount: 1 << 40, Workers: 0}
	for _, fn := range opts {
		fn(&o)
	}
	if o.Workers < 1 {
		o.Workers = runtime.NumCPU()
	}
	return o
}

// ErrBudget is reported when exploration exhausts its budget before reaching
// a verdict.
var ErrBudget = errors.New("reach: exploration budget exhausted")

// Graph is the reachable configuration graph from a root configuration.
// Configuration counts are stored row-wise in a flat arena and edges in CSR
// (compressed sparse row) form; use the accessor methods. Config id 0 is the
// root.
type Graph struct {
	CRN *crn.CRN
	// Complete is false if the budget was exhausted (the graph is a prefix).
	Complete bool

	d      int     // species per configuration (arena row width)
	outIdx int     // dense index of the output species
	arena  []int64 // n rows of d counts

	succ    []int32 // successor config ids, grouped by source node
	via     []int32 // via[e] is the reaction producing edge e
	succOff []int32 // len n+1; node u's out-edges are succ[succOff[u]:succOff[u+1]]
	pred    []int32 // predecessor config ids (one entry per in-edge, not deduplicated)
	predOff []int32 // len n+1

	// parent and parentVia give one BFS tree edge per node for trace
	// extraction (-1 for the root).
	parent    []int32
	parentVia []int32
}

// NumConfigs returns the number of explored configurations.
func (g *Graph) NumConfigs() int { return len(g.parent) }

// Counts returns the count row of configuration id, borrowed from the arena.
// Callers must not mutate it.
func (g *Graph) Counts(id int32) vec.V {
	return g.arena[int(id)*g.d : (int(id)+1)*g.d]
}

// Config returns configuration id as a crn.Config backed by the arena
// (no copy; treat as read-only).
func (g *Graph) Config(id int32) crn.Config { return g.CRN.DenseConfig(g.Counts(id)) }

// Root returns the root configuration (id 0).
func (g *Graph) Root() crn.Config { return g.Config(0) }

// Output returns the output count of configuration id.
func (g *Graph) Output(id int32) int64 { return g.arena[int(id)*g.d+g.outIdx] }

// Succ returns the successor config ids of id (borrowed; do not mutate).
func (g *Graph) Succ(id int32) []int32 { return g.succ[g.succOff[id]:g.succOff[id+1]] }

// Via returns, aligned with Succ, the reaction index producing each
// successor of id (borrowed; do not mutate).
func (g *Graph) Via(id int32) []int32 { return g.via[g.succOff[id]:g.succOff[id+1]] }

// Pred returns the predecessor config ids of id, one entry per in-edge
// (borrowed; do not mutate).
func (g *Graph) Pred(id int32) []int32 { return g.pred[g.predOff[id]:g.predOff[id+1]] }

// Parent returns the BFS-tree parent of id (-1 for the root).
func (g *Graph) Parent(id int32) int32 { return g.parent[id] }

// ParentVia returns the reaction index on the BFS tree edge into id (-1 for
// the root).
func (g *Graph) ParentVia(id int32) int32 { return g.parentVia[id] }

// Explore enumerates the configurations reachable from root. With a worker
// budget above 1 (see WithWorkers; the default is runtime.NumCPU) the
// exploration runs on the parallel level-synchronized engine; the resulting
// Graph is byte-identical to the sequential engine's, so verdicts, witness
// traces, and ids never depend on the worker count.
func Explore(root crn.Config, opts ...Option) *Graph {
	g, _ := explore(root, buildOptions(opts), nil) // no ctx attached: cannot fail
	return g
}

// ExploreCtx is Explore under a cancellation context. The context is polled
// only at deterministic points — level barriers on the parallel engine,
// every cancelCheckHeads heads on the sequential one — so a run that
// completes returns exactly Explore's graph; a canceled run returns a nil
// graph and a wrapped ctx.Err(), never a partial graph.
func ExploreCtx(ctx context.Context, root crn.Config, opts ...Option) (*Graph, error) {
	o := buildOptions(opts)
	o.ctx = ctx
	return explore(root, o, nil)
}

// explore dispatches to the right engine: the caller's shared steal pool
// when one is attached (grid checking), a private pool when the budget
// allows (standalone parallel exploration), the sequential engine otherwise.
// A non-nil error is always a cancellation (wrapped ctx.Err()) and comes
// with a nil graph.
func explore(root crn.Config, o Options, pool *stealPool) (*Graph, error) {
	if err := o.ctxErr(); err != nil {
		return nil, err
	}
	if o.Workers > 1 || pool != nil {
		// Trivial state spaces (grid axis points, dead ends, small roots)
		// are probed sequentially first so they skip the parallel engines'
		// fixed setup — sharded interner, arena chunk, helper goroutines.
		// The probe is bounded (smallProbeBudget heads), so it runs without
		// cancellation polls of its own.
		if g := exploreSmallProbe(root, o); g != nil {
			return g, nil
		}
	}
	switch {
	case pool != nil:
		return explorePooled(root, o, pool)
	case o.Workers > 1:
		return exploreParallel(root, o)
	default:
		return exploreSeq(root, o)
	}
}

// smallProbeBudget bounds the sequential probe run before a parallel or
// pooled exploration. Re-exploring this many configurations on a probe miss
// costs microseconds, while a probe hit saves the parallel engines' fixed
// setup (128 shard tables plus the first arena chunk) for every trivial
// input. A variable so the engine byte-identity tests can force the
// renumbering engine onto small graphs; 0 disables the probe.
var smallProbeBudget = 512

// exploreSmallProbe runs the sequential engine under the probe budget and
// returns its graph when that budget was not the binding constraint — the
// sequential head loop stops only when the interned count exceeds the
// budget, so a result with NumConfigs ≤ probe is exactly the graph any
// engine would produce under o (including MaxCount skips, which don't stop
// enumeration). Returns nil when the state space outgrew the probe and a
// parallel engine should take over; byte-identity between the engines makes
// the substitution invisible.
func exploreSmallProbe(root crn.Config, o Options) *Graph {
	if smallProbeBudget <= 0 {
		return nil
	}
	// The probe is bounded work (at most the probe budget plus one head),
	// so it runs without cancellation polls: the caller checked the context
	// on entry, and the probe finishes faster than a poll stride anyway.
	p := o
	p.ctx = nil
	if o.MaxConfigs <= smallProbeBudget {
		g, _ := exploreSeq(root, p) // the probe budget is the real budget
		return g
	}
	p.MaxConfigs = smallProbeBudget
	if g, _ := exploreSeq(root, p); g.NumConfigs() <= smallProbeBudget {
		return g
	}
	return nil
}

// exploreSeq is the single-threaded engine: a FIFO BFS interning rows into
// one flat append-grown arena. It defines the canonical id order the
// parallel engine reproduces. Cancellation is polled every
// cancelCheckHeads heads — a deterministic boundary, so every completed
// run is identical to an uncancellable one.
func exploreSeq(root crn.Config, o Options) (*Graph, error) {
	c := root.CRN()
	d := c.NumSpecies()
	g := &Graph{CRN: c, Complete: true, d: d, outIdx: c.OutputIndex()}
	in := newInterner(d)

	in.lookupOrAdd(root.CountsRef())
	g.parent = append(g.parent, -1)
	g.parentVia = append(g.parentVia, -1)

	numReactions := c.NumReactions()
	cur := make([]int64, d)     // stable copy of the head row (the arena may move)
	scratch := make([]int64, d) // candidate successor row
	succOff := make([]int32, 1, 1024)
	for head := 0; head < in.n(); head++ {
		if head%cancelCheckHeads == 0 && head > 0 {
			// Post before polling so a cancellation triggered by the
			// reporter itself is honored at this barrier, not the next.
			progress.Post(o.Progress, "reach.explore", int64(in.n()), 0)
			if err := o.ctxErr(); err != nil {
				return nil, err
			}
		}
		if in.n() > o.MaxConfigs {
			g.Complete = false
			break
		}
		copy(cur, in.row(head))
		for ri := 0; ri < numReactions; ri++ {
			if !c.ApplicableAt(cur, ri) {
				continue
			}
			c.ApplyInto(scratch, cur, ri)
			if vec.V(scratch).MaxComponent() > o.MaxCount {
				g.Complete = false
				continue
			}
			nid, added := in.lookupOrAdd(scratch)
			if added {
				g.parent = append(g.parent, int32(head))
				g.parentVia = append(g.parentVia, int32(ri))
			}
			g.succ = append(g.succ, nid)
			g.via = append(g.via, int32(ri))
		}
		succOff = append(succOff, int32(len(g.succ)))
	}
	// Close the offset table over nodes that were discovered but never
	// expanded (budget exhaustion leaves a frontier).
	n := in.n()
	for len(succOff) < n+1 {
		succOff = append(succOff, int32(len(g.succ)))
	}
	g.arena = in.arena
	g.succOff = succOff
	g.buildPred()
	return g, nil
}

// buildPred derives the predecessor CSR from the successor CSR: count
// in-degrees, prefix-sum, then fill in source order.
func (g *Graph) buildPred() {
	n := g.NumConfigs()
	g.predOff = make([]int32, n+1)
	for _, v := range g.succ {
		g.predOff[v+1]++
	}
	for i := 0; i < n; i++ {
		g.predOff[i+1] += g.predOff[i]
	}
	g.pred = make([]int32, len(g.succ))
	fill := make([]int32, n)
	copy(fill, g.predOff[:n])
	for u := 0; u < n; u++ {
		for _, v := range g.succ[g.succOff[u]:g.succOff[u+1]] {
			g.pred[fill[v]] = int32(u)
			fill[v]++
		}
	}
}

// TraceTo reconstructs a reaction trace from the root to config id using the
// BFS tree.
func (g *Graph) TraceTo(id int32) crn.Trace {
	var rev []int
	for cur := id; cur != 0; cur = g.parent[cur] {
		rev = append(rev, int(g.parentVia[cur]))
	}
	seq := make([]int, len(rev))
	for i := range rev {
		seq[i] = rev[len(rev)-1-i]
	}
	// Clone the root so the trace stays valid independently of the arena.
	return crn.Trace{Start: g.Root().Clone(), Reactions: seq}
}

// outputBounds computes, for every configuration, the minimum and maximum
// output count over all configurations reachable from it, by fixpoint
// propagation backward along edges.
func (g *Graph) outputBounds() (minY, maxY []int64) {
	n := g.NumConfigs()
	minY = make([]int64, n)
	maxY = make([]int64, n)
	for i := 0; i < n; i++ {
		y := g.Output(int32(i))
		minY[i] = y
		maxY[i] = y
	}
	// Worklist fixpoint: when a node's bounds widen, its predecessors may
	// widen too.
	queue := make([]int32, 0, n)
	inQueue := make([]bool, n)
	for i := 0; i < n; i++ {
		queue = append(queue, int32(i))
		inQueue[i] = true
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		for _, p := range g.Pred(u) {
			changed := false
			if minY[u] < minY[p] {
				minY[p] = minY[u]
				changed = true
			}
			if maxY[u] > maxY[p] {
				maxY[p] = maxY[u]
				changed = true
			}
			if changed && !inQueue[p] {
				queue = append(queue, p)
				inQueue[p] = true
			}
		}
	}
	return minY, maxY
}

// StableIDs returns the ids of the stable configurations in g: those whose
// output count cannot change in any configuration reachable from them.
// Only meaningful when g.Complete (otherwise it is an under-approximation
// computed on the explored prefix).
func (g *Graph) StableIDs() []int32 {
	minY, maxY := g.outputBounds()
	var out []int32
	for i := range minY {
		if minY[i] == maxY[i] {
			out = append(out, int32(i))
		}
	}
	return out
}

// Verdict is the result of a stable-computation check for one input.
type Verdict struct {
	// OK reports that the property was verified.
	OK bool
	// Inconclusive reports the budget ran out before a verdict.
	Inconclusive bool
	// Err describes the refutation when OK is false and Inconclusive is
	// false.
	Err error
	// Witness, when non-nil, is a trace from the initial configuration to a
	// configuration that refutes the property (e.g. one from which no
	// correct stable configuration is reachable, or one that overproduces
	// output for an output-oblivious CRN).
	Witness *crn.Trace
	// Explored is the number of configurations visited.
	Explored int
}

// CheckInput verifies that the CRN stably computes the value want on the
// given initial configuration. It implements the literal Section 2.2
// definition on the bounded reachability graph.
func CheckInput(root crn.Config, want int64, opts ...Option) Verdict {
	v, _ := checkInput(root, want, buildOptions(opts), nil) // no ctx: cannot fail
	return v
}

// CheckInputCtx is CheckInput under a cancellation context: a canceled run
// returns a zero Verdict and a wrapped ctx.Err(), never a partial verdict,
// and a run that completes returns exactly CheckInput's verdict.
func CheckInputCtx(ctx context.Context, root crn.Config, want int64, opts ...Option) (Verdict, error) {
	o := buildOptions(opts)
	o.ctx = ctx
	return checkInput(root, want, o, nil)
}

// checkInput runs the stable-computation check on the given engine options,
// exploring on the caller's shared steal pool when one is attached. A
// non-nil error is always a cancellation and comes with a zero Verdict.
func checkInput(root crn.Config, want int64, o Options, pool *stealPool) (Verdict, error) {
	g, err := explore(root, o, pool)
	if err != nil {
		return Verdict{}, err
	}
	if !g.Complete {
		return Verdict{Inconclusive: true, Explored: g.NumConfigs(), Err: ErrBudget}, nil
	}
	// The verdict passes below are bounded by the explored graph, but on
	// big graphs they are a visible slice of work; poll once before each so
	// cancellation still lands within one pass.
	if err := o.ctxErr(); err != nil {
		return Verdict{}, err
	}
	minY, maxY := g.outputBounds()
	n := g.NumConfigs()

	// Correct stable configurations.
	correct := make([]bool, n)
	anyCorrect := false
	for i := 0; i < n; i++ {
		if minY[i] == maxY[i] && g.Output(int32(i)) == want {
			correct[i] = true
			anyCorrect = true
		}
	}
	if !anyCorrect {
		// Prefer an overproduction witness if one exists: a config whose
		// output already exceeds want and can never come back down (always
		// true for output-oblivious CRNs).
		for i := 0; i < n; i++ {
			if y := g.Output(int32(i)); y > want {
				tr := g.TraceTo(int32(i))
				return Verdict{
					OK:       false,
					Err:      fmt.Errorf("reach: no correct stable configuration; output overshoots to %d (want %d)", y, want),
					Witness:  &tr,
					Explored: n,
				}, nil
			}
		}
		return Verdict{
			OK:       false,
			Err:      fmt.Errorf("reach: no stable configuration with output %d is reachable", want),
			Explored: n,
		}, nil
	}

	// Backward closure of the correct stable configurations.
	canReach := make([]bool, n)
	queue := make([]int32, 0, n)
	for i := range correct {
		if correct[i] {
			canReach[i] = true
			queue = append(queue, int32(i))
		}
	}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, p := range g.Pred(u) {
			if !canReach[p] {
				canReach[p] = true
				queue = append(queue, p)
			}
		}
	}
	for i := 0; i < n; i++ {
		if !canReach[i] {
			tr := g.TraceTo(int32(i))
			return Verdict{
				OK: false,
				Err: fmt.Errorf("reach: configuration %s is reachable but cannot reach a stable configuration with output %d",
					g.Config(int32(i)), want),
				Witness:  &tr,
				Explored: n,
			}, nil
		}
	}
	return Verdict{OK: true, Explored: n}, nil
}

// Func is an integer-valued function f : N^d -> N given as an evaluator.
type Func func(x []int64) int64

// gridJob is one grid input with its root configuration and expected output,
// prepared sequentially so f is never called concurrently.
type gridJob struct {
	x    []int64
	root crn.Config
	want int64
}

// CheckGrid verifies stable computation of f on every input lo ≤ x ≤ hi.
// It returns the first failing verdict (in lexicographic grid order)
// together with the offending input, or an all-OK summary.
//
// Independent inputs are checked concurrently on a shared work-stealing
// pool (see WithWorkers): workers claim whole inputs while any remain, then
// migrate into the still-running explorations instead of idling, so skewed
// grids keep every worker busy through the tail. The grid is enumerated
// lazily in bounded chunks, so memory stays O(workers) regardless of grid
// size and a failure in an early chunk stops the run without evaluating f on
// the rest of the grid. f is only invoked from the calling goroutine, so it
// need not be safe for concurrent use. Results are deterministic:
// concurrency never changes which failure is reported or the counts for
// inputs preceding it.
func CheckGrid(c *crn.CRN, f Func, lo, hi []int64, opts ...Option) (GridResult, error) {
	return checkGrid(c, f, lo, hi, buildOptions(opts))
}

// CheckGridCtx is CheckGrid under a cancellation context. The context is
// polled only at grid-chunk boundaries and at the engines' own barrier
// points, so a run that completes returns exactly CheckGrid's result at any
// worker count; a canceled run returns a zero GridResult and a wrapped
// ctx.Err(), never partial counts.
func CheckGridCtx(ctx context.Context, c *crn.CRN, f Func, lo, hi []int64, opts ...Option) (GridResult, error) {
	o := buildOptions(opts)
	o.ctx = ctx
	return checkGrid(c, f, lo, hi, o)
}

func checkGrid(c *crn.CRN, f Func, lo, hi []int64, o Options) (GridResult, error) {
	if len(lo) != c.Dim() || len(hi) != c.Dim() {
		return GridResult{}, fmt.Errorf("reach: grid arity %d/%d does not match CRN arity %d", len(lo), len(hi), c.Dim())
	}

	// Lazily enumerate the grid in lexicographic order, materializing roots
	// and expected outputs chunk by chunk. An enumeration error (bad initial
	// configuration or negative f) stops enumeration; inputs before it are
	// still checked, matching the sequential semantics.
	x := append([]int64(nil), lo...)
	done := false
	var enumErr error
	nextChunk := func(limit int) []gridJob {
		var jobs []gridJob
		for !done && enumErr == nil && len(jobs) < limit {
			root, err := c.InitialConfig(x)
			if err != nil {
				enumErr = err
				break
			}
			want := f(x)
			if want < 0 {
				enumErr = fmt.Errorf("reach: f%v = %d is negative", x, want)
				break
			}
			jobs = append(jobs, gridJob{x: append([]int64(nil), x...), root: root, want: want})
			// Advance odometer.
			i := len(x) - 1
			for i >= 0 {
				x[i]++
				if x[i] <= hi[i] {
					break
				}
				x[i] = lo[i]
				i--
			}
			if i < 0 {
				done = true
			}
		}
		return jobs
	}

	res := GridResult{}
	total := gridTotal(lo, hi)
	// Per-input options drop the Reporter: grid progress is posted here, at
	// chunk boundaries, from the calling goroutine only — never from the
	// concurrently exploring workers.
	io := o
	io.Progress = nil
	chunkSize := max(64, 8*o.Workers)
	for {
		// The chunk boundary is the grid check's deterministic cancellation
		// point: a canceled run stops here (or inside a worker's own level
		// barrier) and reports no partial counts.
		if err := o.ctxErr(); err != nil {
			return GridResult{}, err
		}
		jobs := nextChunk(chunkSize)
		verdicts, err := runGridJobs(jobs, io)
		if err != nil {
			return GridResult{}, err
		}
		for i := range jobs {
			v := verdicts[i]
			res.Checked++
			res.Explored += v.Explored
			if v.Inconclusive {
				res.Inconclusive++
			} else if !v.OK {
				res.Failure = &GridFailure{Input: jobs[i].x, Want: jobs[i].want, Verdict: v}
				return res, nil
			}
		}
		progress.Post(o.Progress, "reach.grid", int64(res.Checked), total)
		if done || enumErr != nil {
			return res, enumErr
		}
	}
}

// gridTotal returns the number of grid points in [lo, hi], or 0 when the
// product overflows int64 (progress then reports an unknown total).
func gridTotal(lo, hi []int64) int64 {
	total := int64(1)
	for i := range lo {
		ext := hi[i] - lo[i] + 1
		if ext <= 0 {
			return 0
		}
		if total > (1<<62)/ext {
			return 0
		}
		total *= ext
	}
	return total
}

// CheckRect is CheckGrid on one axis-aligned rectangle of a larger grid —
// the shard-shaped entry point used by the distributed checker
// (internal/dist). Rectangles that partition a grid into segments contiguous
// in canonical (lexicographic) grid order merge deterministically: counts
// sum rectangle by rectangle in grid order, and merging stops at the first
// rectangle reporting a failure (or enumeration error), whose partial counts
// are included. The merged GridResult is then byte-identical to a single
// CheckGrid over the whole grid, because within a rectangle CheckRect has
// exactly CheckGrid's first-failure-in-grid-order semantics.
func CheckRect(c *crn.CRN, f Func, lo, hi []int64, opts ...Option) (GridResult, error) {
	return CheckGrid(c, f, lo, hi, opts...)
}

// CheckRectCtx is CheckRect under a cancellation context (see CheckGridCtx
// for the semantics). It is the entry point distributed workers use so a
// revoked lease or local shutdown stops the engine within one chunk/level
// boundary instead of wasting the rectangle's remaining work.
func CheckRectCtx(ctx context.Context, c *crn.CRN, f Func, lo, hi []int64, opts ...Option) (GridResult, error) {
	return CheckGridCtx(ctx, c, f, lo, hi, opts...)
}

// GridResult summarizes a CheckGrid run. The JSON encoding is the wire form
// used by the distributed checker and by crncheck -json; decode with
// UnmarshalGridResult (the witness configurations need the CRN to rebind).
type GridResult struct {
	Checked      int          `json:"checked"`
	Inconclusive int          `json:"inconclusive"`
	Explored     int          `json:"explored"`
	Failure      *GridFailure `json:"failure,omitempty"`
}

// GridFailure records the first refuted input.
type GridFailure struct {
	Input   []int64 `json:"input"`
	Want    int64   `json:"want"`
	Verdict Verdict `json:"verdict"`
}

// OK reports whether every input verified (no failures; inconclusive inputs
// are tolerated and counted separately).
func (r GridResult) OK() bool { return r.Failure == nil }

// String summarizes the result using the same field names as the JSON form.
func (r GridResult) String() string {
	if r.Failure != nil {
		return fmt.Sprintf("FAIL at input=%v (want %d): %v", r.Failure.Input, r.Failure.Want, r.Failure.Verdict.Err)
	}
	return fmt.Sprintf("ok: %d checked (%d inconclusive, %d explored)", r.Checked, r.Inconclusive, r.Explored)
}
