// Package reach implements bounded exhaustive reachability analysis for
// discrete CRNs and the stable-computation verifier that mechanizes the
// definition in Section 2.2 of the paper:
//
//	A CRN C stably computes f if for each initial configuration I_x and
//	every configuration C reachable from I_x, a stable configuration O
//	with O(Y) = f(x) is reachable from C.
//
// The verifier enumerates the reachable configuration graph, identifies the
// stable configurations (those from which the output count can never
// change), and checks that the backward closure of the correct stable
// configurations covers the whole graph. Exploration is bounded; results
// distinguish "verified", "refuted (with witness)", and "inconclusive
// (budget exhausted)".
package reach

import (
	"errors"
	"fmt"

	"crncompose/internal/crn"
)

// Options bound the exploration.
type Options struct {
	// MaxConfigs caps the number of distinct configurations explored.
	MaxConfigs int
	// MaxCount caps any single species count; exceeding it marks the run
	// inconclusive (the CRN may have unbounded reachable counts).
	MaxCount int64
}

// Option mutates Options.
type Option func(*Options)

// WithMaxConfigs sets the configuration budget.
func WithMaxConfigs(n int) Option { return func(o *Options) { o.MaxConfigs = n } }

// WithMaxCount sets the per-species count cap.
func WithMaxCount(n int64) Option { return func(o *Options) { o.MaxCount = n } }

func buildOptions(opts []Option) Options {
	o := Options{MaxConfigs: 1 << 18, MaxCount: 1 << 40}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// ErrBudget is reported when exploration exhausts its budget before reaching
// a verdict.
var ErrBudget = errors.New("reach: exploration budget exhausted")

// Graph is the reachable configuration graph from a root configuration.
type Graph struct {
	CRN     *crn.CRN
	Configs []crn.Config // Configs[0] is the root
	// Succ[i] lists successor config ids of Configs[i]; Via[i][k] is the
	// reaction index that produces Succ[i][k].
	Succ [][]int32
	Via  [][]int32
	// Pred[i] lists predecessor ids (deduplicated).
	Pred [][]int32
	// Parent and ParentVia give one BFS tree edge for trace extraction
	// (-1 for the root).
	Parent    []int32
	ParentVia []int32
	// Complete is false if the budget was exhausted (the graph is a prefix).
	Complete bool
}

// Explore enumerates the configurations reachable from root.
func Explore(root crn.Config, opts ...Option) *Graph {
	o := buildOptions(opts)
	g := &Graph{CRN: root.CRN(), Complete: true}
	ids := make(map[string]int32, 1024)

	add := func(c crn.Config, parent, via int32) int32 {
		key := c.Key()
		if id, ok := ids[key]; ok {
			return id
		}
		id := int32(len(g.Configs))
		ids[key] = id
		g.Configs = append(g.Configs, c)
		g.Succ = append(g.Succ, nil)
		g.Via = append(g.Via, nil)
		g.Pred = append(g.Pred, nil)
		g.Parent = append(g.Parent, parent)
		g.ParentVia = append(g.ParentVia, via)
		return id
	}

	add(root.Clone(), -1, -1)
	numReactions := len(root.CRN().Reactions)
	for head := 0; head < len(g.Configs); head++ {
		if len(g.Configs) > o.MaxConfigs {
			g.Complete = false
			break
		}
		cur := g.Configs[head]
		for ri := 0; ri < numReactions; ri++ {
			if !cur.Applicable(ri) {
				continue
			}
			next := cur.Apply(ri)
			if next.CountsRef().MaxComponent() > o.MaxCount {
				g.Complete = false
				continue
			}
			nid := add(next, int32(head), int32(ri))
			g.Succ[head] = append(g.Succ[head], nid)
			g.Via[head] = append(g.Via[head], int32(ri))
		}
	}
	// Build predecessor lists.
	for u := range g.Succ {
		for _, v := range g.Succ[u] {
			g.Pred[v] = append(g.Pred[v], int32(u))
		}
	}
	return g
}

// TraceTo reconstructs a reaction trace from the root to config id using the
// BFS tree.
func (g *Graph) TraceTo(id int32) crn.Trace {
	var rev []int
	for cur := id; cur != 0; cur = g.Parent[cur] {
		rev = append(rev, int(g.ParentVia[cur]))
	}
	seq := make([]int, len(rev))
	for i := range rev {
		seq[i] = rev[len(rev)-1-i]
	}
	return crn.Trace{Start: g.Configs[0], Reactions: seq}
}

// outputBounds computes, for every configuration, the minimum and maximum
// output count over all configurations reachable from it, by fixpoint
// propagation backward along edges.
func (g *Graph) outputBounds() (minY, maxY []int64) {
	n := len(g.Configs)
	minY = make([]int64, n)
	maxY = make([]int64, n)
	for i, c := range g.Configs {
		y := c.Output()
		minY[i] = y
		maxY[i] = y
	}
	// Worklist fixpoint: when a node's bounds widen, its predecessors may
	// widen too.
	queue := make([]int32, 0, n)
	inQueue := make([]bool, n)
	for i := 0; i < n; i++ {
		queue = append(queue, int32(i))
		inQueue[i] = true
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		for _, p := range g.Pred[u] {
			changed := false
			if minY[u] < minY[p] {
				minY[p] = minY[u]
				changed = true
			}
			if maxY[u] > maxY[p] {
				maxY[p] = maxY[u]
				changed = true
			}
			if changed && !inQueue[p] {
				queue = append(queue, p)
				inQueue[p] = true
			}
		}
	}
	return minY, maxY
}

// StableIDs returns the ids of the stable configurations in g: those whose
// output count cannot change in any configuration reachable from them.
// Only meaningful when g.Complete (otherwise it is an under-approximation
// computed on the explored prefix).
func (g *Graph) StableIDs() []int32 {
	minY, maxY := g.outputBounds()
	var out []int32
	for i := range g.Configs {
		if minY[i] == maxY[i] {
			out = append(out, int32(i))
		}
	}
	return out
}

// Verdict is the result of a stable-computation check for one input.
type Verdict struct {
	// OK reports that the property was verified.
	OK bool
	// Inconclusive reports the budget ran out before a verdict.
	Inconclusive bool
	// Err describes the refutation when OK is false and Inconclusive is
	// false.
	Err error
	// Witness, when non-nil, is a trace from the initial configuration to a
	// configuration that refutes the property (e.g. one from which no
	// correct stable configuration is reachable, or one that overproduces
	// output for an output-oblivious CRN).
	Witness *crn.Trace
	// Explored is the number of configurations visited.
	Explored int
}

// CheckInput verifies that the CRN stably computes the value want on the
// given initial configuration. It implements the literal Section 2.2
// definition on the bounded reachability graph.
func CheckInput(root crn.Config, want int64, opts ...Option) Verdict {
	g := Explore(root, opts...)
	if !g.Complete {
		return Verdict{Inconclusive: true, Explored: len(g.Configs), Err: ErrBudget}
	}
	minY, maxY := g.outputBounds()
	n := len(g.Configs)

	// Correct stable configurations.
	correct := make([]bool, n)
	anyCorrect := false
	for i, c := range g.Configs {
		if minY[i] == maxY[i] && c.Output() == want {
			correct[i] = true
			anyCorrect = true
		}
	}
	if !anyCorrect {
		// Prefer an overproduction witness if one exists: a config whose
		// output already exceeds want and can never come back down (always
		// true for output-oblivious CRNs).
		for i, c := range g.Configs {
			if c.Output() > want {
				tr := g.TraceTo(int32(i))
				return Verdict{
					OK:       false,
					Err:      fmt.Errorf("reach: no correct stable configuration; output overshoots to %d (want %d)", c.Output(), want),
					Witness:  &tr,
					Explored: n,
				}
			}
		}
		return Verdict{
			OK:       false,
			Err:      fmt.Errorf("reach: no stable configuration with output %d is reachable", want),
			Explored: n,
		}
	}

	// Backward closure of the correct stable configurations.
	canReach := make([]bool, n)
	queue := make([]int32, 0, n)
	for i := range correct {
		if correct[i] {
			canReach[i] = true
			queue = append(queue, int32(i))
		}
	}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, p := range g.Pred[u] {
			if !canReach[p] {
				canReach[p] = true
				queue = append(queue, p)
			}
		}
	}
	for i := range g.Configs {
		if !canReach[i] {
			tr := g.TraceTo(int32(i))
			return Verdict{
				OK: false,
				Err: fmt.Errorf("reach: configuration %s is reachable but cannot reach a stable configuration with output %d",
					g.Configs[i], want),
				Witness:  &tr,
				Explored: n,
			}
		}
	}
	return Verdict{OK: true, Explored: n}
}

// Func is an integer-valued function f : N^d -> N given as an evaluator.
type Func func(x []int64) int64

// CheckGrid verifies stable computation of f on every input lo ≤ x ≤ hi.
// It returns the first failing verdict together with the offending input,
// or an all-OK summary.
func CheckGrid(c *crn.CRN, f Func, lo, hi []int64, opts ...Option) (GridResult, error) {
	if len(lo) != c.Dim() || len(hi) != c.Dim() {
		return GridResult{}, fmt.Errorf("reach: grid arity %d/%d does not match CRN arity %d", len(lo), len(hi), c.Dim())
	}
	res := GridResult{}
	x := append([]int64(nil), lo...)
	for {
		root, err := c.InitialConfig(x)
		if err != nil {
			return res, err
		}
		want := f(x)
		if want < 0 {
			return res, fmt.Errorf("reach: f%v = %d is negative", x, want)
		}
		v := CheckInput(root, want, opts...)
		res.Checked++
		res.Explored += v.Explored
		if v.Inconclusive {
			res.Inconclusive++
		} else if !v.OK {
			xc := append([]int64(nil), x...)
			res.Failure = &GridFailure{Input: xc, Want: want, Verdict: v}
			return res, nil
		}
		// Advance odometer.
		i := len(x) - 1
		for i >= 0 {
			x[i]++
			if x[i] <= hi[i] {
				break
			}
			x[i] = lo[i]
			i--
		}
		if i < 0 {
			return res, nil
		}
	}
}

// GridResult summarizes a CheckGrid run.
type GridResult struct {
	Checked      int
	Inconclusive int
	Explored     int
	Failure      *GridFailure
}

// GridFailure records the first refuted input.
type GridFailure struct {
	Input   []int64
	Want    int64
	Verdict Verdict
}

// OK reports whether every input verified (no failures; inconclusive inputs
// are tolerated and counted separately).
func (r GridResult) OK() bool { return r.Failure == nil }

// String summarizes the result.
func (r GridResult) String() string {
	if r.Failure != nil {
		return fmt.Sprintf("FAIL at x=%v (want %d): %v", r.Failure.Input, r.Failure.Want, r.Failure.Verdict.Err)
	}
	return fmt.Sprintf("ok: %d inputs verified (%d inconclusive, %d configs explored)", r.Checked, r.Inconclusive, r.Explored)
}
