package reach

import (
	"strings"
	"testing"

	"crncompose/internal/crn"
	"crncompose/internal/vec"
)

func minCRN() *crn.CRN {
	return crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}, {Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
}

func maxCRN() *crn.CRN {
	return crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}}, Products: []crn.Term{{Coeff: 1, Sp: "Z1"}, {Coeff: 1, Sp: "Y"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Z2"}, {Coeff: 1, Sp: "Y"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "Z1"}, {Coeff: 1, Sp: "Z2"}}, Products: []crn.Term{{Coeff: 1, Sp: "K"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "K"}, {Coeff: 1, Sp: "Y"}}, Products: nil},
	})
}

func TestExploreCounts(t *testing.T) {
	// min from (2,2): configurations are determined by how many reactions
	// fired: 3 configs.
	g := Explore(minCRN().MustInitialConfig(vec.New(2, 2)))
	if !g.Complete {
		t.Fatal("exploration incomplete")
	}
	if len(g.Configs) != 3 {
		t.Errorf("explored %d configs, want 3", len(g.Configs))
	}
}

func TestTraceReconstruction(t *testing.T) {
	g := Explore(maxCRN().MustInitialConfig(vec.New(2, 1)))
	for id := range g.Configs {
		tr := g.TraceTo(int32(id))
		final, err := tr.Replay()
		if err != nil {
			t.Fatalf("trace to %d: %v", id, err)
		}
		if final.Key() != g.Configs[id].Key() {
			t.Fatalf("trace to %d lands on %s, want %s", id, final, g.Configs[id])
		}
	}
}

func TestStableIDs(t *testing.T) {
	// For min from (1,2): firing gives {Y, X2}: terminal, stable with y=1.
	// The initial config can still fire, so it is not stable.
	g := Explore(minCRN().MustInitialConfig(vec.New(1, 2)))
	stable := g.StableIDs()
	if len(stable) != 1 {
		t.Fatalf("stable ids = %v", stable)
	}
	if g.Configs[stable[0]].Output() != 1 {
		t.Errorf("stable output = %d", g.Configs[stable[0]].Output())
	}
}

func TestCheckInputVerifiesMax(t *testing.T) {
	// The max CRN stably computes max despite transient overshoot.
	v := CheckInput(maxCRN().MustInitialConfig(vec.New(2, 3)), 3)
	if !v.OK {
		t.Fatalf("max CRN refuted: %v", v.Err)
	}
}

func TestCheckInputCatchesWrongValue(t *testing.T) {
	v := CheckInput(maxCRN().MustInitialConfig(vec.New(2, 3)), 4)
	if v.OK {
		t.Fatal("wrong expected value accepted")
	}
}

func TestCheckInputCatchesOverproduction(t *testing.T) {
	// A broken "min" that fires per-input: X1 → Y (wrong).
	broken := crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
	v := CheckInput(broken.MustInitialConfig(vec.New(3, 0)), 0)
	if v.OK {
		t.Fatal("overproducing CRN accepted")
	}
	if v.Witness == nil {
		t.Fatal("no witness trace")
	}
	final, err := v.Witness.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if final.Output() <= 0 {
		t.Error("witness does not overshoot")
	}
}

func TestCheckInputCatchesDeadlock(t *testing.T) {
	// A CRN that can consume its inputs without producing output:
	// X1 + X2 → Y competes with X1 + X2 → K (dead end).
	racy := crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}, {Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}, {Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "K"}}},
	})
	v := CheckInput(racy.MustInitialConfig(vec.New(1, 1)), 1)
	if v.OK {
		t.Fatal("racy CRN accepted")
	}
	if v.Witness == nil || !strings.Contains(v.Err.Error(), "cannot reach") {
		t.Fatalf("unexpected refutation: %v", v.Err)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	// X → 2X grows without bound: exploration must stop and report
	// inconclusive rather than hanging.
	grower := crn.MustNew([]crn.Species{"X"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X"}}, Products: []crn.Term{{Coeff: 2, Sp: "X"}}},
	})
	v := CheckInput(grower.MustInitialConfig(vec.New(1)), 0, WithMaxConfigs(100))
	if !v.Inconclusive {
		t.Fatalf("expected inconclusive, got %+v", v)
	}
	// With a count cap instead.
	v = CheckInput(grower.MustInitialConfig(vec.New(1)), 0, WithMaxCount(50))
	if !v.Inconclusive {
		t.Fatalf("expected inconclusive under count cap, got %+v", v)
	}
}

func TestCheckGrid(t *testing.T) {
	res, err := CheckGrid(minCRN(), func(x []int64) int64 { return min(x[0], x[1]) },
		[]int64{0, 0}, []int64{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Checked != 25 {
		t.Fatalf("grid: %v", res)
	}
	// Wrong function: failure recorded with input.
	res, err = CheckGrid(minCRN(), func(x []int64) int64 { return x[0] },
		[]int64{0, 0}, []int64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("wrong function accepted")
	}
	if res.Failure.Input[0] == res.Failure.Input[1] {
		t.Errorf("failure should be off-diagonal, got %v", res.Failure.Input)
	}
}

func TestCheckGridArityMismatch(t *testing.T) {
	if _, err := CheckGrid(minCRN(), func(x []int64) int64 { return 0 }, []int64{0}, []int64{1}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestVerdictOnLeaderedCRN(t *testing.T) {
	// L + X → Y computes min(1, x).
	c := crn.MustNew([]crn.Species{"X"}, "Y", "L", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "L"}, {Coeff: 1, Sp: "X"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
	res, err := CheckGrid(c, func(x []int64) int64 { return min(1, x[0]) }, []int64{0}, []int64{10})
	if err != nil || !res.OK() {
		t.Fatalf("%v %v", err, res)
	}
}

func TestGraphPredecessorsConsistent(t *testing.T) {
	g := Explore(maxCRN().MustInitialConfig(vec.New(1, 2)))
	// Every successor edge must appear as a predecessor edge.
	for u := range g.Succ {
		for _, v := range g.Succ[u] {
			found := false
			for _, p := range g.Pred[v] {
				if int(p) == u {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d→%d missing from Pred", u, v)
			}
		}
	}
}
