package reach

import (
	"slices"
	"strings"
	"testing"

	"crncompose/internal/crn"
	"crncompose/internal/vec"
)

func minCRN() *crn.CRN {
	return crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}, {Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
}

func maxCRN() *crn.CRN {
	return crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}}, Products: []crn.Term{{Coeff: 1, Sp: "Z1"}, {Coeff: 1, Sp: "Y"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Z2"}, {Coeff: 1, Sp: "Y"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "Z1"}, {Coeff: 1, Sp: "Z2"}}, Products: []crn.Term{{Coeff: 1, Sp: "K"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "K"}, {Coeff: 1, Sp: "Y"}}, Products: nil},
	})
}

func TestExploreCounts(t *testing.T) {
	// min from (2,2): configurations are determined by how many reactions
	// fired: 3 configs.
	g := Explore(minCRN().MustInitialConfig(vec.New(2, 2)))
	if !g.Complete {
		t.Fatal("exploration incomplete")
	}
	if g.NumConfigs() != 3 {
		t.Errorf("explored %d configs, want 3", g.NumConfigs())
	}
}

func TestTraceReconstruction(t *testing.T) {
	g := Explore(maxCRN().MustInitialConfig(vec.New(2, 1)))
	for id := 0; id < g.NumConfigs(); id++ {
		tr := g.TraceTo(int32(id))
		final, err := tr.Replay()
		if err != nil {
			t.Fatalf("trace to %d: %v", id, err)
		}
		if final.Key() != g.Config(int32(id)).Key() {
			t.Fatalf("trace to %d lands on %s, want %s", id, final, g.Config(int32(id)))
		}
	}
}

func TestStableIDs(t *testing.T) {
	// For min from (1,2): firing gives {Y, X2}: terminal, stable with y=1.
	// The initial config can still fire, so it is not stable.
	g := Explore(minCRN().MustInitialConfig(vec.New(1, 2)))
	stable := g.StableIDs()
	if len(stable) != 1 {
		t.Fatalf("stable ids = %v", stable)
	}
	if g.Output(stable[0]) != 1 {
		t.Errorf("stable output = %d", g.Output(stable[0]))
	}
}

func TestCheckInputVerifiesMax(t *testing.T) {
	// The max CRN stably computes max despite transient overshoot.
	v := CheckInput(maxCRN().MustInitialConfig(vec.New(2, 3)), 3)
	if !v.OK {
		t.Fatalf("max CRN refuted: %v", v.Err)
	}
}

func TestCheckInputCatchesWrongValue(t *testing.T) {
	v := CheckInput(maxCRN().MustInitialConfig(vec.New(2, 3)), 4)
	if v.OK {
		t.Fatal("wrong expected value accepted")
	}
}

func TestCheckInputCatchesOverproduction(t *testing.T) {
	// A broken "min" that fires per-input: X1 → Y (wrong).
	broken := crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
	v := CheckInput(broken.MustInitialConfig(vec.New(3, 0)), 0)
	if v.OK {
		t.Fatal("overproducing CRN accepted")
	}
	if v.Witness == nil {
		t.Fatal("no witness trace")
	}
	final, err := v.Witness.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if final.Output() <= 0 {
		t.Error("witness does not overshoot")
	}
}

func TestCheckInputCatchesDeadlock(t *testing.T) {
	// A CRN that can consume its inputs without producing output:
	// X1 + X2 → Y competes with X1 + X2 → K (dead end).
	racy := crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}, {Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}, {Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "K"}}},
	})
	v := CheckInput(racy.MustInitialConfig(vec.New(1, 1)), 1)
	if v.OK {
		t.Fatal("racy CRN accepted")
	}
	if v.Witness == nil || !strings.Contains(v.Err.Error(), "cannot reach") {
		t.Fatalf("unexpected refutation: %v", v.Err)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	// X → 2X grows without bound: exploration must stop and report
	// inconclusive rather than hanging.
	grower := crn.MustNew([]crn.Species{"X"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X"}}, Products: []crn.Term{{Coeff: 2, Sp: "X"}}},
	})
	v := CheckInput(grower.MustInitialConfig(vec.New(1)), 0, WithMaxConfigs(100))
	if !v.Inconclusive {
		t.Fatalf("expected inconclusive, got %+v", v)
	}
	// With a count cap instead.
	v = CheckInput(grower.MustInitialConfig(vec.New(1)), 0, WithMaxCount(50))
	if !v.Inconclusive {
		t.Fatalf("expected inconclusive under count cap, got %+v", v)
	}
}

func TestCheckGrid(t *testing.T) {
	res, err := CheckGrid(minCRN(), func(x []int64) int64 { return min(x[0], x[1]) },
		[]int64{0, 0}, []int64{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Checked != 25 {
		t.Fatalf("grid: %v", res)
	}
	// Wrong function: failure recorded with input.
	res, err = CheckGrid(minCRN(), func(x []int64) int64 { return x[0] },
		[]int64{0, 0}, []int64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("wrong function accepted")
	}
	if res.Failure.Input[0] == res.Failure.Input[1] {
		t.Errorf("failure should be off-diagonal, got %v", res.Failure.Input)
	}
}

func TestCheckGridArityMismatch(t *testing.T) {
	if _, err := CheckGrid(minCRN(), func(x []int64) int64 { return 0 }, []int64{0}, []int64{1}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestVerdictOnLeaderedCRN(t *testing.T) {
	// L + X → Y computes min(1, x).
	c := crn.MustNew([]crn.Species{"X"}, "Y", "L", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "L"}, {Coeff: 1, Sp: "X"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
	res, err := CheckGrid(c, func(x []int64) int64 { return min(1, x[0]) }, []int64{0}, []int64{10})
	if err != nil || !res.OK() {
		t.Fatalf("%v %v", err, res)
	}
}

func TestGraphPredecessorsConsistent(t *testing.T) {
	g := Explore(maxCRN().MustInitialConfig(vec.New(1, 2)))
	// Every successor edge must appear as a predecessor edge.
	for u := 0; u < g.NumConfigs(); u++ {
		for _, v := range g.Succ(int32(u)) {
			found := false
			for _, p := range g.Pred(v) {
				if int(p) == u {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d→%d missing from Pred", u, v)
			}
		}
	}
}

func TestGraphViaEdgesReplay(t *testing.T) {
	// Each CSR edge (u, v, via) must satisfy v = Apply(u, via): the edge
	// arrays and the arena have to agree.
	g := Explore(maxCRN().MustInitialConfig(vec.New(2, 2)))
	edges := 0
	for u := 0; u < g.NumConfigs(); u++ {
		succ, via := g.Succ(int32(u)), g.Via(int32(u))
		if len(succ) != len(via) {
			t.Fatalf("node %d: %d successors but %d via entries", u, len(succ), len(via))
		}
		cu := g.Config(int32(u))
		for k, v := range succ {
			ri := int(via[k])
			if !cu.Applicable(ri) {
				t.Fatalf("edge %d→%d: reaction %d not applicable at source", u, v, ri)
			}
			got := cu.Apply(ri)
			if got.Key() != g.Config(v).Key() {
				t.Fatalf("edge %d→%d via %d lands on %s, want %s", u, v, ri, got, g.Config(v))
			}
			edges++
		}
	}
	if edges == 0 {
		t.Fatal("graph has no edges")
	}
}

func TestGridInconclusiveCounting(t *testing.T) {
	// X → 2X is unbounded for every x ≥ 1; x = 0 is trivially stable. The
	// grid must count the inconclusive inputs without failing.
	grower := crn.MustNew([]crn.Species{"X"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X"}}, Products: []crn.Term{{Coeff: 2, Sp: "X"}}},
	})
	res, err := CheckGrid(grower, func(x []int64) int64 { return 0 },
		[]int64{0}, []int64{3}, WithMaxConfigs(50))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("inconclusive inputs must not refute: %v", res)
	}
	if res.Checked != 4 || res.Inconclusive != 3 {
		t.Fatalf("checked=%d inconclusive=%d, want 4/3", res.Checked, res.Inconclusive)
	}
	if !strings.Contains(res.String(), "3 inconclusive") {
		t.Errorf("String() = %q", res.String())
	}
}

func TestGridResultString(t *testing.T) {
	ok := GridResult{Checked: 9, Inconclusive: 1, Explored: 1234}
	if s := ok.String(); !strings.Contains(s, "9 checked") || !strings.Contains(s, "1234 explored") {
		t.Errorf("ok String() = %q", s)
	}
	fail := GridResult{
		Checked: 2,
		Failure: &GridFailure{Input: []int64{1, 2}, Want: 3, Verdict: Verdict{Err: ErrBudget}},
	}
	if s := fail.String(); !strings.Contains(s, "FAIL at input=[1 2]") || !strings.Contains(s, "want 3") {
		t.Errorf("fail String() = %q", s)
	}
}

func TestCheckGridParallelMatchesSequential(t *testing.T) {
	// The parallel scheduler must report the identical first failure (in
	// grid order) and identical counts for the prefix before it.
	f := func(x []int64) int64 { return x[0] } // wrong for min: fails off-diagonal
	seq, err := CheckGrid(minCRN(), f, []int64{0, 0}, []int64{5, 5}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := CheckGrid(minCRN(), f, []int64{0, 0}, []int64{5, 5}, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if par.OK() || seq.OK() {
			t.Fatal("wrong function accepted")
		}
		if !slices.Equal(par.Failure.Input, seq.Failure.Input) {
			t.Fatalf("workers=%d: failure at %v, sequential failed at %v", workers, par.Failure.Input, seq.Failure.Input)
		}
		if par.Checked != seq.Checked || par.Explored != seq.Explored {
			t.Fatalf("workers=%d: checked/explored %d/%d, sequential %d/%d",
				workers, par.Checked, par.Explored, seq.Checked, seq.Explored)
		}
	}
	// And on an all-OK grid the totals must be independent of the pool size.
	want := func(x []int64) int64 { return min(x[0], x[1]) }
	seqOK, err := CheckGrid(minCRN(), want, []int64{0, 0}, []int64{5, 5}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	parOK, err := CheckGrid(minCRN(), want, []int64{0, 0}, []int64{5, 5}, WithWorkers(4))
	if err != nil || !parOK.OK() {
		t.Fatalf("%v %v", err, parOK)
	}
	if parOK != seqOK {
		t.Fatalf("parallel %+v != sequential %+v", parOK, seqOK)
	}
}

func TestCheckGridNegativeFunction(t *testing.T) {
	// A negative f stops the grid with an error; earlier inputs are still
	// counted.
	calls := 0
	f := func(x []int64) int64 {
		calls++
		if x[0] == 1 && x[1] == 0 {
			return -1
		}
		return min(x[0], x[1])
	}
	res, err := CheckGrid(minCRN(), f, []int64{0, 0}, []int64{2, 2})
	if err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("err = %v", err)
	}
	if res.Checked != 3 { // (0,0) (0,1) (0,2) precede (1,0) lexicographically
		t.Fatalf("checked = %d, want 3", res.Checked)
	}
}
