// Package scaling implements the Section 8 bridge to the continuous CRN
// model of Chalk, Kornerup, Reeves and Soloveichik: the ∞-scaling
//
//	f̂(z) = lim_{c→∞} f(⌊cz⌋)/c
//
// of an obliviously-computable f : N^d → N (Definition 8.1). Theorem 8.2
// shows f̂ is exactly the class computable by output-oblivious continuous
// CRNs: superadditive, positive-continuous, piecewise rational-linear —
// and on the positive orthant f̂(z) = min_k ∇g_k·z, the min of the
// gradients of f's eventually-min normal form.
package scaling

import (
	"fmt"

	"crncompose/internal/quilt"
	"crncompose/internal/rat"
	"crncompose/internal/vec"
)

// Func is an integer function evaluator on N^d.
type Func func(x vec.V) int64

// Estimate numerically estimates f̂(z) by evaluating f(⌊cz⌋)/c at the given
// scale c. z is given as a rational vector.
func Estimate(f Func, z rat.Vec, c int64) float64 {
	x := make(vec.V, len(z))
	for i, r := range z {
		x[i] = r.MulInt(c).Floor()
	}
	return float64(f(x)) / float64(c)
}

// Limit estimates f̂(z) with increasing scales and returns the final
// estimate together with the last increment (a convergence indicator).
func Limit(f Func, z rat.Vec, scales []int64) (value, lastDelta float64) {
	if len(scales) == 0 {
		scales = []int64{64, 256, 1024, 4096}
	}
	var prev float64
	for i, c := range scales {
		v := Estimate(f, z, c)
		if i > 0 {
			lastDelta = v - prev
		}
		prev = v
	}
	return prev, lastDelta
}

// ExactOnPositive computes f̂(z) exactly for strictly positive rational z
// from the eventually-min normal form of f: f̂(z) = min_k ∇g_k·z
// (equation (4) in the paper — the periodic offsets vanish in the limit).
func ExactOnPositive(m *quilt.Min, z rat.Vec) (rat.R, error) {
	if len(z) != m.Dim() {
		return rat.R{}, fmt.Errorf("scaling: arity mismatch")
	}
	for _, r := range z {
		if r.Sign() <= 0 {
			return rat.R{}, fmt.Errorf("scaling: ExactOnPositive needs z > 0 componentwise")
		}
	}
	best := m.Terms[0].ScalingGradient().Dot(z)
	for _, g := range m.Terms[1:] {
		if v := g.ScalingGradient().Dot(z); v.Cmp(best) < 0 {
			best = v
		}
	}
	return best, nil
}

// CheckSuperadditive verifies f̂(a) + f̂(b) ≤ f̂(a+b) for the exact scaling
// over a rational grid of strictly positive points, as Theorem 8.2 requires
// of the continuous class. Returns the first violating pair, or nil.
func CheckSuperadditive(m *quilt.Min, gridMax int64) (violation []rat.Vec, err error) {
	d := m.Dim()
	var pts []rat.Vec
	vec.Grid(vec.Const(d, 1), vec.Const(d, gridMax), func(x vec.V) bool {
		pts = append(pts, rat.VecFromInts(x))
		return true
	})
	for _, a := range pts {
		for _, b := range pts {
			fa, err := ExactOnPositive(m, a)
			if err != nil {
				return nil, err
			}
			fb, err := ExactOnPositive(m, b)
			if err != nil {
				return nil, err
			}
			fab, err := ExactOnPositive(m, a.Add(b))
			if err != nil {
				return nil, err
			}
			if fa.Add(fb).Cmp(fab) > 0 {
				return []rat.Vec{a, b}, nil
			}
		}
	}
	return nil, nil
}

// ConvergenceReport compares the numeric ∞-scaling estimate against the
// exact min-of-gradients value at a point, returning both and the absolute
// error. Used by the Fig 4b / Theorem 8.2 experiments.
type ConvergenceReport struct {
	Z        rat.Vec
	Exact    float64
	Estimate float64
	AbsErr   float64
}

// Compare builds a ConvergenceReport at z with the given scale.
func Compare(f Func, m *quilt.Min, z rat.Vec, scale int64) (ConvergenceReport, error) {
	exact, err := ExactOnPositive(m, z)
	if err != nil {
		return ConvergenceReport{}, err
	}
	est := Estimate(f, z, scale)
	e := exact.Float()
	diff := est - e
	if diff < 0 {
		diff = -diff
	}
	return ConvergenceReport{Z: z, Exact: e, Estimate: est, AbsErr: diff}, nil
}
