package scaling

import (
	"math"
	"testing"

	"crncompose/internal/classify"
	"crncompose/internal/quilt"
	"crncompose/internal/rat"
	"crncompose/internal/semilinear"
	"crncompose/internal/vec"
)

func fig4aMin(t *testing.T) (*quilt.Min, Func) {
	t.Helper()
	f := semilinear.Fig4a()
	res, err := classify.Analyze(f, classify.Options{})
	if err != nil || !res.Computable {
		t.Fatalf("fig4a: %v", err)
	}
	return res.EventualMin, func(x vec.V) int64 { return f.Eval(x) }
}

func TestExactOnPositive(t *testing.T) {
	m, _ := fig4aMin(t)
	// f̂(z) = min(z1+z2, 2z1, 2z2) (offsets vanish).
	tests := []struct {
		z    rat.Vec
		want rat.R
	}{
		{rat.NewVec(rat.One(), rat.One()), rat.FromInt(2)},
		{rat.NewVec(rat.One(), rat.FromInt(5)), rat.FromInt(2)},
		{rat.NewVec(rat.New(1, 2), rat.FromInt(3)), rat.One()},
	}
	for _, tc := range tests {
		got, err := ExactOnPositive(m, tc.z)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Eq(tc.want) {
			t.Errorf("f̂(%s) = %s, want %s", tc.z, got, tc.want)
		}
	}
	// Nonpositive input rejected.
	if _, err := ExactOnPositive(m, rat.NewVec(rat.Zero(), rat.One())); err == nil {
		t.Error("z with zero component accepted")
	}
}

func TestNumericLimitConvergesToExact(t *testing.T) {
	m, f := fig4aMin(t)
	zs := []rat.Vec{
		rat.NewVec(rat.One(), rat.One()),
		rat.NewVec(rat.New(3, 2), rat.New(1, 2)),
		rat.NewVec(rat.FromInt(2), rat.New(5, 3)),
	}
	for _, z := range zs {
		rep, err := Compare(f, m, z, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if rep.AbsErr > 0.01 {
			t.Errorf("f̂(%s): estimate %.5f vs exact %.5f (err %.5f)", z, rep.Estimate, rep.Exact, rep.AbsErr)
		}
	}
}

func TestLimitConvergence(t *testing.T) {
	_, f := fig4aMin(t)
	v, delta := Limit(f, rat.NewVec(rat.One(), rat.One()), nil)
	if math.Abs(v-2.0) > 0.01 {
		t.Errorf("limit = %f, want ≈ 2", v)
	}
	if math.Abs(delta) > 0.01 {
		t.Errorf("limit not converged: last delta %f", delta)
	}
}

func TestPeriodicOffsetVanishes(t *testing.T) {
	// ⌊3x/2⌋ scales to (3/2)z despite the period-2 offset.
	f := semilinear.FloorThreeHalves()
	res, err := classify.Analyze(f, classify.Options{})
	if err != nil || !res.Computable {
		t.Fatal(err)
	}
	eval := func(x vec.V) int64 { return f.Eval(x) }
	got, err := ExactOnPositive(res.EventualMin, rat.NewVec(rat.FromInt(2)))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Eq(rat.FromInt(3)) {
		t.Errorf("f̂(2) = %s, want 3", got)
	}
	est := Estimate(eval, rat.NewVec(rat.FromInt(2)), 1000)
	if math.Abs(est-3.0) > 0.01 {
		t.Errorf("estimate = %f", est)
	}
}

func TestSuperadditivity(t *testing.T) {
	// Theorem 8.2: scalings of obliviously-computable functions are
	// superadditive.
	for _, f := range []*semilinear.Func{semilinear.Fig4a(), semilinear.Min2(), semilinear.Fig7()} {
		res, err := classify.Analyze(f, classify.Options{})
		if err != nil || !res.Computable {
			t.Fatalf("%s: %v", f.Name, err)
		}
		bad, err := CheckSuperadditive(res.EventualMin, 4)
		if err != nil {
			t.Fatal(err)
		}
		if bad != nil {
			t.Errorf("%s scaling not superadditive at %v", f.Name, bad)
		}
	}
}

func TestEstimateAtZeroScalePoints(t *testing.T) {
	_, f := fig4aMin(t)
	// Estimate is exact for integer points at scale 1 times value.
	got := Estimate(f, rat.NewVec(rat.FromInt(3), rat.FromInt(4)), 1)
	if got != float64(f(vec.New(3, 4))) {
		t.Errorf("estimate at c=1 = %f", got)
	}
}
