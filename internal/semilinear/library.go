package semilinear

import (
	"crncompose/internal/rat"
	"crncompose/internal/vec"
)

// This file holds the worked examples from the paper as explicit semilinear
// functions, used by tests, the classifier, and the figure harness.

// Identity returns f(x) = x on N.
func Identity() *Func {
	return MustNew(1, "id", Piece{
		Domain: True{D: 1},
		Grad:   rat.NewVec(rat.One()),
		Off:    rat.Zero(),
	})
}

// Double returns f(x) = 2x (Fig 1, computed by X → 2Y).
func Double() *Func {
	return MustNew(1, "double", Piece{
		Domain: True{D: 1},
		Grad:   rat.NewVec(rat.FromInt(2)),
		Off:    rat.Zero(),
	})
}

// Min2 returns f(x1,x2) = min(x1,x2) (Fig 1, computed by X1+X2 → Y).
func Min2() *Func {
	le := Threshold{A: vec.New(-1, 1), B: 0} // x2 - x1 ≥ 0 ⇔ x1 ≤ x2
	return MustNew(2, "min",
		Piece{Domain: le, Grad: rat.NewVec(rat.One(), rat.Zero()), Off: rat.Zero()},
		Piece{Domain: Not{Op: le}, Grad: rat.NewVec(rat.Zero(), rat.One()), Off: rat.Zero()},
	)
}

// Max2 returns f(x1,x2) = max(x1,x2) (Fig 1; semilinear and nondecreasing
// but NOT obliviously-computable, Section 4).
func Max2() *Func {
	le := Threshold{A: vec.New(-1, 1), B: 0} // x1 ≤ x2
	return MustNew(2, "max",
		Piece{Domain: le, Grad: rat.NewVec(rat.Zero(), rat.One()), Off: rat.Zero()},
		Piece{Domain: Not{Op: le}, Grad: rat.NewVec(rat.One(), rat.Zero()), Off: rat.Zero()},
	)
}

// MinConst1 returns f(x) = min(1, x) (Fig 2).
func MinConst1() *Func {
	ge1 := Threshold{A: vec.New(1), B: 1} // x ≥ 1
	return MustNew(1, "min(1,x)",
		Piece{Domain: ge1, Grad: rat.ZeroVec(1), Off: rat.One()},
		Piece{Domain: Not{Op: ge1}, Grad: rat.ZeroVec(1), Off: rat.Zero()},
	)
}

// FloorThreeHalves returns f(x) = ⌊3x/2⌋ (Fig 3a), quilt-affine with
// period 2: (3/2)x + B(x mod 2), B(0)=0, B(1)=-1/2.
func FloorThreeHalves() *Func {
	even := Mod{A: vec.New(1), B: 0, C: 2}
	return MustNew(1, "floor(3x/2)",
		Piece{Domain: even, Grad: rat.NewVec(rat.New(3, 2)), Off: rat.Zero()},
		Piece{Domain: Not{Op: even}, Grad: rat.NewVec(rat.New(3, 2)), Off: rat.New(-1, 2)},
	)
}

// FloorDiv returns f(x) = ⌊a·x/b⌋ for positive a, b: quilt-affine with
// period b.
func FloorDiv(a, b int64) *Func {
	pieces := make([]Piece, 0, b)
	for r := int64(0); r < b; r++ {
		// On x ≡ r (mod b): ⌊a x / b⌋ = (a x - (a r mod b)) / b.
		rem := (a * r) % b
		pieces = append(pieces, Piece{
			Domain: Mod{A: vec.New(1), B: r, C: b},
			Grad:   rat.NewVec(rat.New(a, b)),
			Off:    rat.New(-rem, b),
		})
	}
	return MustNew(1, "floordiv", pieces...)
}

// Fig3b returns the 2D quilt-affine function of Fig 3b:
// g(x) = (1,2)·x + B(x mod 3) with B(x) = 0 except
// B(1,2) = B(2,2) = B(2,1) = -1 (any constant bump preserving
// nondecreasingness; the paper leaves the bump values unspecified, we pick
// -1 which keeps all finite differences nonnegative).
func Fig3b() *Func {
	bump := Or{Ops: []Formula{
		And{Ops: []Formula{Mod{A: vec.New(1, 0), B: 1, C: 3}, Mod{A: vec.New(0, 1), B: 2, C: 3}}},
		And{Ops: []Formula{Mod{A: vec.New(1, 0), B: 2, C: 3}, Mod{A: vec.New(0, 1), B: 2, C: 3}}},
		And{Ops: []Formula{Mod{A: vec.New(1, 0), B: 2, C: 3}, Mod{A: vec.New(0, 1), B: 1, C: 3}}},
	}}
	grad := rat.NewVec(rat.One(), rat.FromInt(2))
	return MustNew(2, "fig3b",
		Piece{Domain: bump, Grad: grad, Off: rat.FromInt(-1)},
		Piece{Domain: Not{Op: bump}, Grad: grad, Off: rat.Zero()},
	)
}

// Fig7 returns the motivating example of Section 7.1:
//
//	f(x1,x2) = x1+1 if x1 < x2   (region D1)
//	           x2+1 if x1 > x2   (region D2)
//	           x1   if x1 = x2   (region U)
//
// It is obliviously-computable with eventually-min representation
// f = min(x1+1, x2+1, ⌈(x1+x2)/2⌉).
func Fig7() *Func {
	lt := Threshold{A: vec.New(-1, 1), B: 1} // x2 - x1 ≥ 1 ⇔ x1 < x2
	gt := Threshold{A: vec.New(1, -1), B: 1} // x1 > x2
	eq := And{Ops: []Formula{Not{Op: lt}, Not{Op: gt}}}
	return MustNew(2, "fig7",
		Piece{Domain: lt, Grad: rat.NewVec(rat.One(), rat.Zero()), Off: rat.One()},
		Piece{Domain: gt, Grad: rat.NewVec(rat.Zero(), rat.One()), Off: rat.One()},
		Piece{Domain: eq, Grad: rat.NewVec(rat.One(), rat.Zero()), Off: rat.Zero()},
	)
}

// Equation2 returns the counterexample (2) of Section 7.4:
//
//	f(x1,x2) = x1+x2+1 if x1 ≠ x2
//	           x1+x2   if x1 = x2
//
// Semilinear and nondecreasing but NOT obliviously-computable: the single
// affine function is depressed along the diagonal and no quilt-affine
// extension from the strip eventually dominates f.
func Equation2() *Func {
	lt := Threshold{A: vec.New(-1, 1), B: 1}
	gt := Threshold{A: vec.New(1, -1), B: 1}
	neq := Or{Ops: []Formula{lt, gt}}
	grad := rat.NewVec(rat.One(), rat.One())
	return MustNew(2, "eq2",
		Piece{Domain: neq, Grad: grad, Off: rat.One()},
		Piece{Domain: Not{Op: neq}, Grad: grad, Off: rat.Zero()},
	)
}

// SumPlusMin returns f(x1,x2) = x1 + x2 + min(x1,x2): obliviously-computable,
// used as a nontrivial 2D test beyond the paper's figures.
func SumPlusMin() *Func {
	le := Threshold{A: vec.New(-1, 1), B: 0}
	return MustNew(2, "sum+min",
		Piece{Domain: le, Grad: rat.NewVec(rat.FromInt(2), rat.One()), Off: rat.Zero()},
		Piece{Domain: Not{Op: le}, Grad: rat.NewVec(rat.One(), rat.FromInt(2)), Off: rat.Zero()},
	)
}

// Fig4a returns a function in the spirit of Fig 4a: arbitrary nondecreasing
// values in the finite region x < (2,2), eventual min of quilt-affine
// functions for x ≥ (2,2), and 1D quilt-affine behavior on the fixed-input
// borders. Concretely:
//
//	f(x) = min(x1 + x2, 2·x1 + 1, 2·x2 + 1)   for x ≥ (2,2)
//	f(x) = table values in the finite/border regions, nondecreasing.
//
// The whole thing is expressible as min(x1+x2, 2x1+1, 2x2+1) clipped below
// by nothing — in fact that min is itself semilinear, nondecreasing and
// satisfies Theorem 5.2, so we use it everywhere (its restrictions
// f[x(i)→j] = min(j+x, 2j+1, 2x+1) are 1D and eventually affine).
func Fig4a() *Func {
	// Domains: which of the three affine terms is the minimum.
	// t1 = x1+x2, t2 = 2x1+1, t3 = 2x2+1.
	// t1 ≤ t2 ⇔ x2 ≤ x1+1 ⇔ x1 - x2 ≥ -1.
	t1le2 := Threshold{A: vec.New(1, -1), B: -1}
	// t1 ≤ t3 ⇔ x1 ≤ x2+1 ⇔ x2 - x1 ≥ -1.
	t1le3 := Threshold{A: vec.New(-1, 1), B: -1}
	// t2 ≤ t3 ⇔ x1 ≤ x2.
	t2le3 := Threshold{A: vec.New(-1, 1), B: 0}

	d1 := And{Ops: []Formula{t1le2, t1le3}}                // t1 wins
	d2 := And{Ops: []Formula{Not{Op: d1}, t2le3}}          // t2 wins
	d3 := And{Ops: []Formula{Not{Op: d1}, Not{Op: t2le3}}} // t3 wins
	return MustNew(2, "fig4a",
		Piece{Domain: d1, Grad: rat.NewVec(rat.One(), rat.One()), Off: rat.Zero()},
		Piece{Domain: d2, Grad: rat.NewVec(rat.FromInt(2), rat.Zero()), Off: rat.One()},
		Piece{Domain: d3, Grad: rat.NewVec(rat.Zero(), rat.FromInt(2)), Off: rat.One()},
	)
}

// Threshold1D returns the step function f(x) = c·1{x ≥ t}: semilinear,
// nondecreasing; obliviously-computable with a leader.
func Threshold1D(t, c int64) *Func {
	ge := Threshold{A: vec.New(1), B: t}
	return MustNew(1, "step",
		Piece{Domain: ge, Grad: rat.ZeroVec(1), Off: rat.FromInt(c)},
		Piece{Domain: Not{Op: ge}, Grad: rat.ZeroVec(1), Off: rat.Zero()},
	)
}
