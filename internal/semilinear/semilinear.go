// Package semilinear implements semilinear sets and semilinear functions as
// defined in Section 2.4 of the paper (Definitions 2.5 and 2.6):
//
//   - a semilinear set is a finite Boolean combination of threshold sets
//     {x ∈ N^d : a·x ≥ b} and mod sets {x ∈ N^d : a·x ≡ b (mod c)};
//   - a semilinear function is a finite union of affine partial functions
//     whose domains are disjoint semilinear sets.
//
// This explicit representation is the input to the classifier
// (internal/classify), which decides oblivious computability per
// Theorem 5.2, and it supports the fixed-input restriction f[x(i)→j] needed
// by the recursive condition (iii).
package semilinear

import (
	"fmt"
	"strings"

	"crncompose/internal/rat"
	"crncompose/internal/vec"
)

// Formula is a Boolean combination of threshold and mod predicates over N^d.
type Formula interface {
	// Contains reports x ∈ S.
	Contains(x vec.V) bool
	// Dim returns the arity d.
	Dim() int
	// String renders the predicate.
	String() string
}

// Threshold is the set {x : A·x ≥ B} with A ∈ Z^d, B ∈ Z.
type Threshold struct {
	A vec.V
	B int64
}

// Contains implements Formula.
func (t Threshold) Contains(x vec.V) bool { return t.A.Dot(x) >= t.B }

// Dim implements Formula.
func (t Threshold) Dim() int { return len(t.A) }

func (t Threshold) String() string { return fmt.Sprintf("%v·x ≥ %d", t.A, t.B) }

// Mod is the set {x : A·x ≡ B (mod C)} with C ≥ 1.
type Mod struct {
	A vec.V
	B int64
	C int64
}

// Contains implements Formula.
func (m Mod) Contains(x vec.V) bool {
	r := (m.A.Dot(x) - m.B) % m.C
	return r == 0 || r == m.C || r == -m.C || ((r%m.C)+m.C)%m.C == 0
}

// Dim implements Formula.
func (m Mod) Dim() int { return len(m.A) }

func (m Mod) String() string { return fmt.Sprintf("%v·x ≡ %d (mod %d)", m.A, m.B, m.C) }

// And is the intersection of its operands.
type And struct{ Ops []Formula }

// Contains implements Formula.
func (a And) Contains(x vec.V) bool {
	for _, op := range a.Ops {
		if !op.Contains(x) {
			return false
		}
	}
	return true
}

// Dim implements Formula.
func (a And) Dim() int {
	if len(a.Ops) == 0 {
		return 0
	}
	return a.Ops[0].Dim()
}

func (a And) String() string { return joinOps(a.Ops, " ∧ ") }

// Or is the union of its operands.
type Or struct{ Ops []Formula }

// Contains implements Formula.
func (o Or) Contains(x vec.V) bool {
	for _, op := range o.Ops {
		if op.Contains(x) {
			return true
		}
	}
	return false
}

// Dim implements Formula.
func (o Or) Dim() int {
	if len(o.Ops) == 0 {
		return 0
	}
	return o.Ops[0].Dim()
}

func (o Or) String() string { return joinOps(o.Ops, " ∨ ") }

// Not is the complement of its operand.
type Not struct{ Op Formula }

// Contains implements Formula.
func (n Not) Contains(x vec.V) bool { return !n.Op.Contains(x) }

// Dim implements Formula.
func (n Not) Dim() int { return n.Op.Dim() }

func (n Not) String() string { return "¬(" + n.Op.String() + ")" }

// True is all of N^d.
type True struct{ D int }

// Contains implements Formula.
func (t True) Contains(vec.V) bool { return true }

// Dim implements Formula.
func (t True) Dim() int { return t.D }

func (t True) String() string { return "⊤" }

func joinOps(ops []Formula, sep string) string {
	parts := make([]string, len(ops))
	for i, op := range ops {
		parts[i] = "(" + op.String() + ")"
	}
	return strings.Join(parts, sep)
}

// CollectAtoms walks the formula and appends every threshold and mod atom.
func CollectAtoms(f Formula, ts *[]Threshold, ms *[]Mod) {
	switch v := f.(type) {
	case Threshold:
		*ts = append(*ts, v)
	case Mod:
		*ms = append(*ms, v)
	case And:
		for _, op := range v.Ops {
			CollectAtoms(op, ts, ms)
		}
	case Or:
		for _, op := range v.Ops {
			CollectAtoms(op, ts, ms)
		}
	case Not:
		CollectAtoms(v.Op, ts, ms)
	case True:
	default:
		panic(fmt.Sprintf("semilinear: unknown formula node %T", f))
	}
}

// Substitute fixes component i of the input to the constant j, returning the
// induced formula over N^(d-1). Threshold a·x ≥ b becomes a'·x' ≥ b − a_i·j
// and similarly for mod atoms.
func Substitute(f Formula, i int, j int64) Formula {
	switch v := f.(type) {
	case Threshold:
		return Threshold{A: v.A.Drop(i), B: v.B - v.A[i]*j}
	case Mod:
		return Mod{A: v.A.Drop(i), B: ((v.B-v.A[i]*j)%v.C + v.C) % v.C, C: v.C}
	case And:
		ops := make([]Formula, len(v.Ops))
		for k, op := range v.Ops {
			ops[k] = Substitute(op, i, j)
		}
		return And{Ops: ops}
	case Or:
		ops := make([]Formula, len(v.Ops))
		for k, op := range v.Ops {
			ops[k] = Substitute(op, i, j)
		}
		return Or{Ops: ops}
	case Not:
		return Not{Op: Substitute(v.Op, i, j)}
	case True:
		return True{D: v.D - 1}
	default:
		panic(fmt.Sprintf("semilinear: unknown formula node %T", f))
	}
}

// Piece is an affine partial function grad·x + off on the semilinear Domain.
type Piece struct {
	Domain Formula
	Grad   rat.Vec
	Off    rat.R
}

// EvalPiece returns the affine value at x (whether or not x ∈ Domain).
func (p Piece) EvalPiece(x vec.V) rat.R { return p.Grad.DotInt(x).Add(p.Off) }

// Func is a semilinear function in the Definition 2.6 normal form: affine
// partial functions on pairwise-disjoint semilinear domains covering N^d.
type Func struct {
	D      int
	Pieces []Piece
	// Name is an optional human-readable label.
	Name string
}

// New validates arities and returns the function. Disjointness and totality
// of the domains are the caller's responsibility in general (they are
// verified on bounded grids by ValidateOn).
func New(d int, name string, pieces ...Piece) (*Func, error) {
	if len(pieces) == 0 {
		return nil, fmt.Errorf("semilinear: no pieces")
	}
	for k, p := range pieces {
		if p.Domain.Dim() != d && p.Domain.Dim() != 0 {
			return nil, fmt.Errorf("semilinear: piece %d domain arity %d ≠ %d", k, p.Domain.Dim(), d)
		}
		if len(p.Grad) != d {
			return nil, fmt.Errorf("semilinear: piece %d gradient arity %d ≠ %d", k, len(p.Grad), d)
		}
	}
	return &Func{D: d, Pieces: append([]Piece(nil), pieces...), Name: name}, nil
}

// MustNew is New that panics on error.
func MustNew(d int, name string, pieces ...Piece) *Func {
	f, err := New(d, name, pieces...)
	if err != nil {
		panic(err)
	}
	return f
}

// Dim returns the arity.
func (f *Func) Dim() int { return f.D }

// Eval evaluates f at x. It panics if no piece's domain contains x or the
// value is not a nonnegative integer (the representation is for
// f : N^d → N).
func (f *Func) Eval(x vec.V) int64 {
	for _, p := range f.Pieces {
		if p.Domain.Contains(x) {
			v := p.EvalPiece(x)
			if !v.IsInt() {
				panic(fmt.Sprintf("semilinear: %s(%v) = %s is not an integer", f.Name, x, v))
			}
			return v.Int()
		}
	}
	panic(fmt.Sprintf("semilinear: %s has no piece containing %v", f.Name, x))
}

// PieceAt returns the index of the first piece whose domain contains x,
// or -1.
func (f *Func) PieceAt(x vec.V) int {
	for k, p := range f.Pieces {
		if p.Domain.Contains(x) {
			return k
		}
	}
	return -1
}

// ValidateOn checks, over the grid lo ≤ x ≤ hi, that exactly one piece
// domain contains every point and that all values are nonnegative integers.
func (f *Func) ValidateOn(lo, hi vec.V) error {
	var fail error
	vec.Grid(lo, hi, func(x vec.V) bool {
		count := 0
		for _, p := range f.Pieces {
			if p.Domain.Contains(x) {
				count++
			}
		}
		if count != 1 {
			fail = fmt.Errorf("semilinear: %s has %d pieces containing %v (want exactly 1)", f.Name, count, x)
			return false
		}
		v := f.Pieces[f.PieceAt(x)].EvalPiece(x)
		if !v.IsInt() || v.Sign() < 0 {
			fail = fmt.Errorf("semilinear: %s(%v) = %s is not in N", f.Name, x, v)
			return false
		}
		return true
	})
	return fail
}

// IsNondecreasingOn checks monotonicity over the grid by comparing each
// point against its successors along every axis (sufficient on a grid).
func (f *Func) IsNondecreasingOn(lo, hi vec.V) (bool, vec.V, vec.V) {
	var badA, badB vec.V
	ok := true
	vec.Grid(lo, hi, func(x vec.V) bool {
		fx := f.Eval(x)
		for i := 0; i < f.D; i++ {
			if x[i]+1 > hi[i] {
				continue
			}
			y := x.Add(vec.Unit(f.D, i))
			if f.Eval(y) < fx {
				ok = false
				badA, badB = x.Clone(), y
				return false
			}
		}
		return true
	})
	return ok, badA, badB
}

// Restrict returns the fixed-input restriction f[x(i)→j] as a semilinear
// function over N^(d-1) (the paper keeps the arity at d for notational
// convenience; dropping the dead input is the natural implementation and
// corresponds to its footnote 11).
func (f *Func) Restrict(i int, j int64) *Func {
	pieces := make([]Piece, len(f.Pieces))
	for k, p := range f.Pieces {
		pieces[k] = Piece{
			Domain: Substitute(p.Domain, i, j),
			Grad:   dropRat(p.Grad, i),
			Off:    p.Off.Add(p.Grad[i].MulInt(j)),
		}
	}
	return MustNew(f.D-1, fmt.Sprintf("%s[x(%d)→%d]", f.Name, i+1, j), pieces...)
}

func dropRat(v rat.Vec, i int) rat.Vec {
	out := make(rat.Vec, 0, len(v)-1)
	out = append(out, v[:i]...)
	out = append(out, v[i+1:]...)
	return out
}

// Atoms returns all threshold and mod atoms appearing in any piece domain.
func (f *Func) Atoms() ([]Threshold, []Mod) {
	var ts []Threshold
	var ms []Mod
	for _, p := range f.Pieces {
		CollectAtoms(p.Domain, &ts, &ms)
	}
	return ts, ms
}

// GlobalPeriod returns the lcm of all mod-set moduli (1 if there are none),
// the global period p of Lemma 7.3.
func (f *Func) GlobalPeriod() int64 {
	_, ms := f.Atoms()
	p := int64(1)
	for _, m := range ms {
		p = rat.LCM(p, m.C)
	}
	return p
}

// String renders the function as its list of pieces.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s : N^%d → N\n", f.Name, f.D)
	for _, p := range f.Pieces {
		fmt.Fprintf(&sb, "  %s·x + %s  on  %s\n", p.Grad, p.Off, p.Domain)
	}
	return sb.String()
}
