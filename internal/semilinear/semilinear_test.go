package semilinear

import (
	"testing"
	"testing/quick"

	"crncompose/internal/vec"
)

func TestLibraryValues(t *testing.T) {
	tests := []struct {
		name string
		f    *Func
		eval func(x vec.V) int64
		hi   int64
	}{
		{"min", Min2(), func(x vec.V) int64 { return min(x[0], x[1]) }, 9},
		{"max", Max2(), func(x vec.V) int64 { return max(x[0], x[1]) }, 9},
		{"fig7", Fig7(), func(x vec.V) int64 {
			switch {
			case x[0] < x[1]:
				return x[0] + 1
			case x[0] > x[1]:
				return x[1] + 1
			default:
				return x[0]
			}
		}, 9},
		{"eq2", Equation2(), func(x vec.V) int64 {
			if x[0] == x[1] {
				return x[0] + x[1]
			}
			return x[0] + x[1] + 1
		}, 9},
		{"fig4a", Fig4a(), func(x vec.V) int64 {
			return min(x[0]+x[1], min(2*x[0]+1, 2*x[1]+1))
		}, 9},
		{"sum+min", SumPlusMin(), func(x vec.V) int64 { return x[0] + x[1] + min(x[0], x[1]) }, 9},
		{"fig3b", Fig3b(), func(x vec.V) int64 {
			v := x[0] + 2*x[1]
			m := vec.New(x[0]%3, x[1]%3)
			if (m[0] == 1 && m[1] == 2) || (m[0] == 2 && m[1] == 2) || (m[0] == 2 && m[1] == 1) {
				v--
			}
			return v
		}, 9},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.f.Dim()
			vec.Grid(vec.Zero(d), vec.Const(d, tc.hi), func(x vec.V) bool {
				if got, want := tc.f.Eval(x), tc.eval(x); got != want {
					t.Fatalf("%s(%v) = %d, want %d", tc.name, x, got, want)
					return false
				}
				return true
			})
		})
	}
}

func TestOneDimLibrary(t *testing.T) {
	tests := []struct {
		name string
		f    *Func
		eval func(x int64) int64
	}{
		{"id", Identity(), func(x int64) int64 { return x }},
		{"double", Double(), func(x int64) int64 { return 2 * x }},
		{"min1", MinConst1(), func(x int64) int64 { return min(1, x) }},
		{"floor3x2", FloorThreeHalves(), func(x int64) int64 { return 3 * x / 2 }},
		{"floor5x3", FloorDiv(5, 3), func(x int64) int64 { return 5 * x / 3 }},
		{"step", Threshold1D(4, 7), func(x int64) int64 {
			if x >= 4 {
				return 7
			}
			return 0
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			for x := int64(0); x <= 40; x++ {
				if got, want := tc.f.Eval(vec.New(x)), tc.eval(x); got != want {
					t.Fatalf("%s(%d) = %d, want %d", tc.name, x, got, want)
				}
			}
		})
	}
}

func TestValidateOn(t *testing.T) {
	for _, f := range []*Func{Min2(), Max2(), Fig7(), Equation2(), Fig4a(), Fig3b(), SumPlusMin()} {
		if err := f.ValidateOn(vec.Zero(2), vec.Const(2, 10)); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
	}
	// Overlapping domains detected.
	bad := MustNew(1, "overlap",
		Piece{Domain: True{D: 1}, Grad: Min2().Pieces[0].Grad[:1], Off: Min2().Pieces[0].Off},
		Piece{Domain: True{D: 1}, Grad: Min2().Pieces[0].Grad[:1], Off: Min2().Pieces[0].Off},
	)
	if err := bad.ValidateOn(vec.Zero(1), vec.New(3)); err == nil {
		t.Error("overlapping pieces accepted")
	}
}

func TestIsNondecreasing(t *testing.T) {
	ok, _, _ := Min2().IsNondecreasingOn(vec.Zero(2), vec.Const(2, 8))
	if !ok {
		t.Error("min should be nondecreasing")
	}
	// A decreasing function.
	ge2 := Threshold{A: vec.New(1), B: 2}
	dec := MustNew(1, "dec",
		Piece{Domain: ge2, Grad: Identity().Pieces[0].Grad, Off: Identity().Pieces[0].Off},
		Piece{Domain: Not{Op: ge2}, Grad: FloorDiv(0, 1).Pieces[0].Grad, Off: MinConst1().Pieces[0].Off.Add(MinConst1().Pieces[0].Off).Add(MinConst1().Pieces[0].Off)},
	)
	ok, a, b := dec.IsNondecreasingOn(vec.Zero(1), vec.New(6))
	if ok {
		t.Error("decreasing function not detected")
	}
	if !a.Less(b) {
		t.Errorf("witness pair (%v, %v) not ordered", a, b)
	}
}

func TestRestrict(t *testing.T) {
	f := Min2()
	// min[x1→3](x2) = min(3, x2).
	r := f.Restrict(0, 3)
	if r.Dim() != 1 {
		t.Fatalf("restricted dim = %d", r.Dim())
	}
	for x := int64(0); x < 10; x++ {
		if got, want := r.Eval(vec.New(x)), min(int64(3), x); got != want {
			t.Errorf("min[x1→3](%d) = %d, want %d", x, got, want)
		}
	}
	// Restriction of the second input.
	r2 := f.Restrict(1, 2)
	for x := int64(0); x < 10; x++ {
		if got, want := r2.Eval(vec.New(x)), min(x, int64(2)); got != want {
			t.Errorf("min[x2→2](%d) = %d, want %d", x, got, want)
		}
	}
}

func TestRestrictMod(t *testing.T) {
	// fig3b[x2→1](x1) keeps the period-3 structure in x1.
	f := Fig3b()
	r := f.Restrict(1, 1)
	for x := int64(0); x < 12; x++ {
		want := f.Eval(vec.New(x, 1))
		if got := r.Eval(vec.New(x)); got != want {
			t.Errorf("restricted fig3b(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestRestrictProperty(t *testing.T) {
	// Property: f.Restrict(i, j).Eval(x') == f.Eval(insert(x', i, j)).
	f := Fig4a()
	err := quick.Check(func(i0 bool, j, x uint8) bool {
		i := 0
		if i0 {
			i = 1
		}
		jj, xx := int64(j%5), int64(x%12)
		return f.Restrict(i, jj).Eval(vec.New(xx)) == f.Eval(vec.New(xx).Insert(i, jj))
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestAtomsAndPeriod(t *testing.T) {
	ts, ms := Fig3b().Atoms()
	if len(ts) != 0 || len(ms) == 0 {
		t.Errorf("fig3b atoms: %d thresholds, %d mods", len(ts), len(ms))
	}
	if p := Fig3b().GlobalPeriod(); p != 3 {
		t.Errorf("fig3b period = %d", p)
	}
	if p := Min2().GlobalPeriod(); p != 1 {
		t.Errorf("min period = %d", p)
	}
	ts, _ = Fig4a().Atoms()
	if len(ts) == 0 {
		t.Error("fig4a should have threshold atoms")
	}
}

func TestFormulaContains(t *testing.T) {
	th := Threshold{A: vec.New(2, -1), B: 3} // 2x1 − x2 ≥ 3
	if !th.Contains(vec.New(2, 1)) || th.Contains(vec.New(1, 0)) {
		t.Error("threshold membership wrong")
	}
	m := Mod{A: vec.New(1, 1), B: 2, C: 3} // x1+x2 ≡ 2 (mod 3)
	if !m.Contains(vec.New(1, 1)) || m.Contains(vec.New(1, 2)) {
		t.Error("mod membership wrong")
	}
	if !(And{Ops: []Formula{th, m}}).Contains(vec.New(5, 6)) {
		// 2·5−6 = 4 ≥ 3 and 11 ≡ 2 mod 3.
		t.Error("and membership wrong")
	}
	if (Or{Ops: []Formula{}}).Contains(vec.New(0, 0)) {
		t.Error("empty or should be false")
	}
	if !(And{Ops: []Formula{}}).Contains(vec.New(0, 0)) {
		t.Error("empty and should be true")
	}
	if !(Not{Op: th}).Contains(vec.New(0, 0)) {
		t.Error("not membership wrong")
	}
}

func TestSubstituteProperty(t *testing.T) {
	// Substitution commutes with membership: x' ∈ Sub(F, i, j) ⇔
	// insert(x', i, j) ∈ F.
	th := Threshold{A: vec.New(2, -3, 1), B: 4}
	m := Mod{A: vec.New(1, 2, 0), B: 1, C: 5}
	formula := And{Ops: []Formula{Or{Ops: []Formula{th, Not{Op: m}}}, m}}
	err := quick.Check(func(a, b uint8, i0 bool, j uint8) bool {
		x := vec.New(int64(a%9), int64(b%9))
		i := 0
		if i0 {
			i = 2
		}
		jj := int64(j % 6)
		sub := Substitute(formula, i, jj)
		return sub.Contains(x) == formula.Contains(x.Insert(i, jj))
	}, &quick.Config{MaxCount: 400})
	if err != nil {
		t.Error(err)
	}
}

func TestEvalPanicsOutsideDomains(t *testing.T) {
	f := MustNew(1, "partial", Piece{
		Domain: Threshold{A: vec.New(1), B: 5},
		Grad:   Identity().Pieces[0].Grad,
		Off:    Identity().Pieces[0].Off,
	})
	defer func() {
		if recover() == nil {
			t.Error("Eval outside all domains should panic")
		}
	}()
	f.Eval(vec.New(0))
}

func TestStringRendering(t *testing.T) {
	s := Fig7().String()
	if s == "" {
		t.Error("empty rendering")
	}
}
