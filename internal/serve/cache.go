package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sync"

	"crncompose/internal/metrics"
)

// requestKey derives the content address of a canonical request: the SHA-256
// of its JSON encoding — the same discipline the distributed checkpoint uses
// to pin a JobSpec (internal/dist/checkpoint.go). Canonical requests embed
// every input the computation depends on (the parse→String-normalized CRN
// text, function name, grid bounds, budgets, seeds) with all defaults filled
// in, so textually different requests for the same computation collapse to
// one key, and the engines' determinism turns a cache hit into a correctness
// guarantee: the cached bytes are the bytes a fresh run would produce.
func requestKey(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		// Canonical requests are plain data; marshal cannot fail.
		panic("serve: canonical request not marshalable: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// cached is one stored response: the exact bytes (and status) to replay.
type cached struct {
	status      int
	contentType string
	body        []byte
}

// Cache sources, surfaced as the X-Cache response header.
const (
	cacheMiss  = "miss"  // this request ran the computation
	cacheHit   = "hit"   // replayed from the store
	cacheDedup = "dedup" // joined an identical in-flight computation
)

// resultCache is a bounded content-addressed response cache with in-flight
// deduplication: concurrent do calls for the same key share one computation
// (singleflight — N identical concurrent requests cost one engine run), and
// completed values are kept under LRU eviction bounded by max entries.
// Errors are never stored; every waiter of a failed flight receives the
// error and the next request retries.
type resultCache struct {
	mu       sync.Mutex
	max      int        // ≤ 0 disables storage (dedup still applies)
	ll       *list.List // LRU order, front = most recent
	items    map[string]*list.Element
	inflight map[string]*flight

	// The counters are metrics values so the cache's accounting and the
	// /metrics scrape are the same numbers. newResultCache starts them
	// standalone (unregistered — fine for table-level tests that build
	// caches directly); register re-homes them onto a shared registry
	// before the cache sees traffic.
	hits, misses, dedups, evictions *metrics.Counter
	entries                         *metrics.Gauge
}

type cacheItem struct {
	key string
	val cached
}

type flight struct {
	done    chan struct{}
	waiters int // requests parked on this flight (observability + tests)
	val     cached
	err     error
}

func newResultCache(max int) *resultCache {
	return &resultCache{
		max:       max,
		ll:        list.New(),
		items:     make(map[string]*list.Element),
		inflight:  make(map[string]*flight),
		hits:      &metrics.Counter{},
		misses:    &metrics.Counter{},
		dedups:    &metrics.Counter{},
		evictions: &metrics.Counter{},
		entries:   &metrics.Gauge{},
	}
}

// register re-homes the cache counters onto reg, making them visible
// on /metrics. Must run before the cache serves requests (Server.New
// calls it right after construction); counts recorded before the swap
// would be lost with it.
func (rc *resultCache) register(reg *metrics.Registry) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.hits = reg.Counter("crn_cache_hits_total",
		"Result-cache hits: responses replayed from the store.")
	rc.misses = reg.Counter("crn_cache_misses_total",
		"Result-cache misses: requests that ran the computation.")
	rc.dedups = reg.Counter("crn_cache_dedups_total",
		"Requests that joined an identical in-flight computation (singleflight).")
	rc.evictions = reg.Counter("crn_cache_evictions_total",
		"Entries evicted by the LRU bound.")
	rc.entries = reg.Gauge("crn_cache_entries",
		"Entries currently stored in the result cache.")
}

// get returns the stored value for key, marking it most recently used.
func (rc *resultCache) get(key string) (cached, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if el, ok := rc.items[key]; ok {
		rc.ll.MoveToFront(el)
		rc.hits.Inc()
		return el.Value.(*cacheItem).val, true
	}
	return cached{}, false
}

// do returns the value for key, computing it at most once across concurrent
// callers: a stored value is replayed, an in-flight computation is joined,
// and otherwise this caller computes (without holding the lock) and stores
// the result. The source return is one of cacheHit, cacheDedup, cacheMiss.
func (rc *resultCache) do(key string, compute func() (cached, error)) (cached, string, error) {
	rc.mu.Lock()
	if el, ok := rc.items[key]; ok {
		rc.ll.MoveToFront(el)
		rc.hits.Inc()
		rc.mu.Unlock()
		return el.Value.(*cacheItem).val, cacheHit, nil
	}
	if fl, ok := rc.inflight[key]; ok {
		fl.waiters++
		rc.dedups.Inc()
		rc.mu.Unlock()
		<-fl.done
		return fl.val, cacheDedup, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	rc.inflight[key] = fl
	rc.misses.Inc()
	rc.mu.Unlock()

	fl.val, fl.err = compute()

	rc.mu.Lock()
	delete(rc.inflight, key)
	if fl.err == nil {
		rc.storeLocked(key, fl.val)
	}
	rc.mu.Unlock()
	close(fl.done)
	return fl.val, cacheMiss, fl.err
}

// storeLocked inserts (or refreshes) key at the front of the LRU and evicts
// past max. Caller holds rc.mu. No-op when storage is disabled.
func (rc *resultCache) storeLocked(key string, val cached) {
	if rc.max <= 0 {
		return
	}
	if el, ok := rc.items[key]; ok {
		el.Value.(*cacheItem).val = val
		rc.ll.MoveToFront(el)
		return
	}
	rc.items[key] = rc.ll.PushFront(&cacheItem{key: key, val: val})
	for rc.ll.Len() > rc.max {
		last := rc.ll.Back()
		rc.ll.Remove(last)
		delete(rc.items, last.Value.(*cacheItem).key)
		rc.evictions.Inc()
	}
	rc.entries.Set(int64(rc.ll.Len()))
}

// put stores a computed value directly (used by the async job runner so a
// finished job's body serves later /v1/check requests as plain cache hits).
func (rc *resultCache) put(key string, val cached) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.storeLocked(key, val)
}

// flush drops every stored entry (in-flight computations are unaffected).
func (rc *resultCache) flush() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.ll.Init()
	rc.items = make(map[string]*list.Element)
	rc.entries.Set(0)
}

// cacheStats is the /v1/stats snapshot of the cache. Field names are
// a stable API (pinned by TestStatsJSONKeys); Inflight is the number
// of computations currently running under singleflight.
type cacheStats struct {
	Entries   int    `json:"entries"`
	Max       int    `json:"max"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Dedups    uint64 `json:"dedups"`
	Evictions uint64 `json:"evictions"`
	Inflight  int    `json:"inflight"`
}

func (rc *resultCache) stats() cacheStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return cacheStats{
		Entries:   rc.ll.Len(),
		Max:       rc.max,
		Hits:      rc.hits.Value(),
		Misses:    rc.misses.Value(),
		Dedups:    rc.dedups.Value(),
		Evictions: rc.evictions.Value(),
		Inflight:  len(rc.inflight),
	}
}

// waitersOn reports how many requests are parked on key's in-flight
// computation (test observability for the singleflight contract).
func (rc *resultCache) waitersOn(key string) int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if fl, ok := rc.inflight[key]; ok {
		return fl.waiters
	}
	return 0
}
