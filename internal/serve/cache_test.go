package serve

import (
	"bytes"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSingleflightDedup pins the satellite contract: N concurrent identical
// /v1/check requests produce exactly one engine invocation and byte-identical
// bodies. The test hook blocks the one real computation until every other
// request is provably parked on the in-flight entry, so the schedule that
// would defeat a cache without singleflight is forced, not hoped for.
func TestSingleflightDedup(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const n = 8
	var runs atomic.Int32
	release := make(chan struct{})
	s.testComputed = func(op string) {
		runs.Add(1)
		<-release
	}
	req := CheckRequest{CRN: minCRNText, Func: "min"}
	j, err := resolveCheck(req)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	sources := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, source, body := post(t, ts.URL+"/v1/check", req)
			if status != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, status, body)
			}
			bodies[i], sources[i] = body, source
		}()
	}
	// Wait until the other n-1 requests are parked on the flight, then let
	// the single computation finish.
	for deadline := time.Now().Add(10 * time.Second); s.cache.waitersOn(j.key) < n-1; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d waiters parked on the flight", s.cache.waitersOn(j.key))
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("%d engine invocations for %d identical concurrent requests, want 1", got, n)
	}
	var miss, dedup int
	for i := range bodies {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
		switch sources[i] {
		case cacheMiss:
			miss++
		case cacheDedup:
			dedup++
		default:
			t.Fatalf("request %d X-Cache = %q", i, sources[i])
		}
	}
	if miss != 1 || dedup != n-1 {
		t.Fatalf("sources: %d miss, %d dedup; want 1 and %d", miss, dedup, n-1)
	}
	if st := s.cache.stats(); st.Entries != 1 || st.Dedups != n-1 {
		t.Fatalf("cache stats: %+v", st)
	}
}

// TestCacheEvictionRespectsMax pins the -cache-max bound: with capacity 2,
// a third distinct request evicts the least recently used entry, and
// re-requesting the evicted one recomputes.
func TestCacheEvictionRespectsMax(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheMax: 2})
	var runs atomic.Int32
	s.testComputed = func(string) { runs.Add(1) }
	his := []int64{0, 1, 2}
	check := func(i int) string {
		status, source, body := post(t, ts.URL+"/v1/check", CheckRequest{CRN: minCRNText, Func: "min", Hi: &his[i]})
		if status != http.StatusOK {
			t.Fatalf("check hi=%d: %d %s", his[i], status, body)
		}
		return source
	}
	for i := 0; i < 3; i++ {
		if source := check(i); source != cacheMiss {
			t.Fatalf("first request %d: X-Cache %q", i, source)
		}
	}
	st := s.cache.stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("after 3 inserts at max 2: %+v", st)
	}
	// hi=0 was evicted (LRU); hi=1 and hi=2 are resident.
	if source := check(1); source != cacheHit {
		t.Fatalf("hi=1 evicted early (X-Cache %q)", source)
	}
	if source := check(0); source != cacheMiss {
		t.Fatalf("evicted entry served from cache (X-Cache %q)", source)
	}
	if got := runs.Load(); got != 4 {
		t.Fatalf("%d engine runs, want 4 (3 cold + 1 recompute after eviction)", got)
	}
}

// TestResultCacheUnit exercises the cache directly: errors are never stored
// and are delivered to every concurrent waiter; put/get/flush behave; LRU
// touch order decides eviction.
func TestResultCacheUnit(t *testing.T) {
	rc := newResultCache(2)
	boom := errors.New("boom")
	if _, _, err := rc.do("k", func() (cached, error) { return cached{}, boom }); err != boom {
		t.Fatalf("err = %v", err)
	}
	if _, ok := rc.get("k"); ok {
		t.Fatal("error was cached")
	}
	val := cached{status: 200, contentType: contentTypeJSON, body: []byte("v")}
	if got, source, err := rc.do("k", func() (cached, error) { return val, nil }); err != nil || source != cacheMiss || !bytes.Equal(got.body, val.body) {
		t.Fatalf("%+v %q %v", got, source, err)
	}
	if _, source, _ := rc.do("k", func() (cached, error) { t.Fatal("recomputed"); return cached{}, nil }); source != cacheHit {
		t.Fatalf("source %q", source)
	}
	// Touch order: a, b, touch a, insert c → b evicted.
	rc.flush()
	rc.put("a", val)
	rc.put("b", val)
	rc.get("a")
	rc.put("c", val)
	if _, ok := rc.get("b"); ok {
		t.Fatal("LRU kept b over a")
	}
	if _, ok := rc.get("a"); !ok {
		t.Fatal("recently used a evicted")
	}
	// Disabled storage still deduplicates but never stores.
	rc0 := newResultCache(0)
	rc0.put("x", val)
	if _, ok := rc0.get("x"); ok {
		t.Fatal("disabled cache stored an entry")
	}
	var n int
	for i := 0; i < 2; i++ {
		if _, _, err := rc0.do("x", func() (cached, error) { n++; return val, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if n != 2 {
		t.Fatalf("disabled cache computed %d times, want 2 (no storage)", n)
	}
}

// TestRequestKeyStable pins that the canonical key is insensitive to
// formatting and default-filling but sensitive to every input the verdict
// depends on.
func TestRequestKeyStable(t *testing.T) {
	hi := int64(3)
	base, err := resolveCheck(CheckRequest{CRN: minCRNText, Func: "min"})
	if err != nil {
		t.Fatal(err)
	}
	same, err := resolveCheck(CheckRequest{CRN: "#input X1 X2\n#output Y\nX1+X2->Y\n", Func: "min", Hi: &hi, MaxConfigs: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if base.key != same.key {
		t.Fatal("equivalent requests got different keys")
	}
	for name, req := range map[string]CheckRequest{
		"different_budget": {CRN: minCRNText, Func: "min", MaxConfigs: 1 << 10},
		"different_grid":   {CRN: minCRNText, Func: "min", Lo: 1},
		"different_func":   {CRN: minCRNText, Func: "max"},
		"different_crn":    {CRN: sumCRNText, Func: "min"},
	} {
		other, err := resolveCheck(req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if other.key == base.key {
			t.Fatalf("%s collided with the base key", name)
		}
	}
}
