package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// blockJobs installs a testComputed hook that parks every job runner until
// release is closed, reporting each start on started.
func blockJobs(s *Server) (started chan string, release chan struct{}) {
	started = make(chan string, 16)
	release = make(chan struct{})
	s.testComputed = func(op string) {
		started <- op
		<-release
	}
	return started, release
}

func awaitStart(t *testing.T, started chan string) {
	t.Helper()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job runner never started")
	}
}

func submitJob(t *testing.T, base string, hi int64) JobStatus {
	t.Helper()
	status, _, body := post(t, base+"/v1/jobs", CheckRequest{CRN: minCRNText, Func: "min", Hi: &hi})
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d %s", status, body)
	}
	var js JobStatus
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatal(err)
	}
	return js
}

func del(t *testing.T, url string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	return resp.StatusCode, buf[:n]
}

// TestJobDelete: DELETE on a running job cancels its context — the engine
// unwinds at its next chunk boundary and the job lands in "canceled" with
// no partial result — and DELETE on the now-terminal job removes it from
// the table.
func TestJobDelete(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 4})
	started, release := blockJobs(s)
	js := submitJob(t, ts.URL, 3)
	awaitStart(t, started)

	// Cancel while the runner is held before the engine: the runner's next
	// CheckRectCtx observes the canceled context immediately.
	if status, body := del(t, ts.URL+"/v1/jobs/"+js.ID); status != http.StatusOK {
		t.Fatalf("delete running: %d %s", status, body)
	}
	close(release)
	final := awaitJob(t, ts.URL, js.ID)
	if final.State != jobCanceled {
		t.Fatalf("deleted job state = %q, want %q", final.State, jobCanceled)
	}
	if status, body := get(t, ts.URL+"/v1/jobs/"+js.ID+"/result"); status != http.StatusUnprocessableEntity {
		t.Fatalf("canceled job result: %d %s", status, body)
	}

	// Deleting the terminal job drops the table entry.
	if status, _ := del(t, ts.URL+"/v1/jobs/"+js.ID); status != http.StatusOK {
		t.Fatalf("delete terminal: %d", status)
	}
	if status, _ := get(t, ts.URL+"/v1/jobs/"+js.ID); status != http.StatusNotFound {
		t.Fatalf("status after table delete: %d", status)
	}
	if status, _ := del(t, ts.URL+"/v1/jobs/"+js.ID); status != http.StatusNotFound {
		t.Fatalf("delete unknown: %d", status)
	}

	// The canceled address is not poisoned: a fresh submission runs anew.
	js2 := submitJob(t, ts.URL, 3)
	if final := awaitJob(t, ts.URL, js2.ID); final.State != jobDone {
		t.Fatalf("resubmitted job: %+v", final)
	}
}

// TestJobsConcurrent: under -max-jobs 2 two distinct jobs run at the same
// time while a third queues behind the admission budget.
func TestJobsConcurrent(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxJobs: 2, Shards: 2})
	started, release := blockJobs(s)
	submitJob(t, ts.URL, 3)
	js2 := submitJob(t, ts.URL, 4)
	awaitStart(t, started)
	awaitStart(t, started) // both runners in flight concurrently

	js3 := submitJob(t, ts.URL, 5)
	select {
	case op := <-started:
		t.Fatalf("third job (%s) started past the MaxJobs budget: %q", js3.ID, op)
	case <-time.After(200 * time.Millisecond):
	}
	close(release)
	for _, id := range []string{js2.ID, js3.ID} {
		if final := awaitJob(t, ts.URL, id); final.State != jobDone {
			t.Fatalf("job %s: %+v", id, final)
		}
	}
}

// TestDrain: draining closes admission (readyz 503, submissions 503); a
// job still running at the drain deadline is canceled and Drain returns
// nil — the SIGTERM-to-exit-0 path.
func TestDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 2})
	if status, _ := get(t, ts.URL+"/readyz"); status != http.StatusOK {
		t.Fatalf("readyz before drain: %d", status)
	}
	started, release := blockJobs(s)
	js := submitJob(t, ts.URL, 3)
	awaitStart(t, started)

	drained := make(chan error, 1)
	go func() {
		dctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
		defer cancel()
		drained <- s.Drain(dctx)
	}()

	// Admission must close as soon as draining starts.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if status, _ := get(t, ts.URL+"/readyz"); status == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped to 503")
		}
		time.Sleep(5 * time.Millisecond)
	}
	hi := int64(9)
	if status, _, _ := post(t, ts.URL+"/v1/jobs", CheckRequest{CRN: minCRNText, Func: "min", Hi: &hi}); status != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain: %d", status)
	}

	// Let the drain deadline pass (the job's context gets canceled), then
	// release the runner: it observes the cancellation and unwinds.
	time.Sleep(300 * time.Millisecond)
	close(release)
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not return")
	}
	if final := s.jobs.status(s.jobs.get(js.ID)); final.State != jobCanceled {
		t.Fatalf("job after drain deadline: %+v", final)
	}
}

// TestDrainAwaitsJobs: with no deadline pressure, drain waits for the
// running job to finish normally — nothing is canceled.
func TestDrainAwaitsJobs(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 2})
	started, release := blockJobs(s)
	js := submitJob(t, ts.URL, 3)
	awaitStart(t, started)

	drained := make(chan error, 1)
	go func() {
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(dctx)
	}()
	// Give drain a moment to begin awaiting, then let the job finish.
	time.Sleep(50 * time.Millisecond)
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if final := s.jobs.status(s.jobs.get(js.ID)); final.State != jobDone {
		t.Fatalf("job after graceful drain: %+v", final)
	}
}

// TestJobTTLGC: terminal jobs expire from the table after JobTTL — their
// result bodies stay reachable through the response cache — while
// non-terminal jobs are immune.
func TestJobTTLGC(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 1})
	js := submitJob(t, ts.URL, 3)
	if final := awaitJob(t, ts.URL, js.ID); final.State != jobDone {
		t.Fatalf("job: %+v", final)
	}

	// A second job held mid-run: running jobs must survive any sweep.
	started, release := blockJobs(s)
	defer close(release)
	js2 := submitJob(t, ts.URL, 4)
	awaitStart(t, started)

	ttl := DefaultJobTTL
	if n := s.jobs.gc(time.Now(), ttl); n != 0 {
		t.Fatalf("fresh jobs swept: %d", n)
	}
	if n := s.jobs.gc(time.Now().Add(ttl+time.Second), ttl); n != 1 {
		t.Fatalf("expired sweep removed %d jobs, want 1 (the done one)", n)
	}
	if s.jobs.get(js.ID) != nil {
		t.Fatal("done job still in table after TTL sweep")
	}
	if s.jobs.get(js2.ID) == nil {
		t.Fatal("running job swept")
	}

	// The expired job's result is still served: re-submission attaches to
	// the cached body as a pre-completed job.
	status, _, body := post(t, ts.URL+"/v1/jobs", CheckRequest{CRN: minCRNText, Func: "min", Hi: ptrInt64(3)})
	var js3 JobStatus
	if err := json.Unmarshal(body, &js3); err != nil {
		t.Fatal(err)
	}
	if status != http.StatusAccepted || js3.State != jobDone || js3.ID != js.ID {
		t.Fatalf("post-expiry submit: %d %+v", status, js3)
	}
}

func ptrInt64(v int64) *int64 { return &v }
