package serve

import (
	"fmt"
	"net/http"
	"time"

	"crncompose/internal/core"
	"crncompose/internal/crn"
	"crncompose/internal/parse"
	"crncompose/internal/progress"
	"crncompose/internal/reach"
	"crncompose/internal/trace"
	"crncompose/internal/vec"
)

// CheckRequest is the JSON body of POST /v1/check and POST /v1/jobs: verify
// that CRN stably computes the named library function on the grid
// [Lo,Hi]^d. Defaults mirror crncheck's flags (lo 0, hi 3, maxconfigs 2^20),
// so a request and the CLI invocation it quotes verify under identical
// budgets — the precondition for the byte-identity contract below.
type CheckRequest struct {
	CRN        string `json:"crn"`
	Func       string `json:"func"`
	Lo         int64  `json:"lo"`
	Hi         *int64 `json:"hi,omitempty"`
	MaxConfigs int    `json:"maxconfigs,omitempty"`
}

// canonicalCheck is the content-addressed form of a CheckRequest: the CRN
// re-rendered through parse→String (so formatting differences collapse),
// per-axis bounds, and every budget filled in — exactly the inputs the
// verdict depends on, in the spirit of dist.JobSpec. Its requestKey is the
// cache key and the async job id.
type canonicalCheck struct {
	V          int     `json:"v"`  // key-schema version
	Op         string  `json:"op"` // "check"
	CRN        string  `json:"crn"`
	Func       string  `json:"func"`
	Lo         []int64 `json:"lo"`
	Hi         []int64 `json:"hi"`
	MaxConfigs int     `json:"maxconfigs"`
	MaxCount   int64   `json:"maxcount"`
}

// checkJob is a fully resolved check: the canonical request plus the live
// CRN and evaluator it resolves to.
type checkJob struct {
	cc  canonicalCheck
	key string
	c   *crn.CRN
	f   reach.Func
}

// maxGridPoints is the admission bound on a check's total grid size. Far
// beyond anything the engine can enumerate, but small enough that the
// overflow-checked product below stays meaningful and a single absurd
// request cannot wedge the request path or the job queue.
const maxGridPoints = int64(1) << 32

// gridPoints returns the number of inputs in the job's grid (guaranteed
// ≤ maxGridPoints by resolveCheck).
func (j *checkJob) gridPoints() int64 {
	n, _ := gridPointsOf(j.cc.Lo, j.cc.Hi)
	return n
}

// gridPointsOf multiplies the axis extents with an overflow guard, reporting
// false when the product exceeds maxGridPoints.
func gridPointsOf(lo, hi []int64) (int64, bool) {
	n := int64(1)
	for i := range lo {
		ext := hi[i] - lo[i] + 1
		if ext > maxGridPoints/n {
			return 0, false
		}
		n *= ext
	}
	return n, true
}

// resolveCheck canonicalizes a CheckRequest: parse the CRN, resolve the
// function in the library, validate arities and bounds, fill defaults.
// Errors are client errors (http.StatusBadRequest unless noted).
func resolveCheck(req CheckRequest) (*checkJob, error) {
	if req.CRN == "" || req.Func == "" {
		return nil, fmt.Errorf("need both crn and func")
	}
	c, err := parse.Parse(req.CRN)
	if err != nil {
		return nil, err
	}
	f, ok := core.Library()[req.Func]
	if !ok {
		return nil, fmt.Errorf("unknown function %q", req.Func)
	}
	if c.Dim() != f.Dim() {
		return nil, fmt.Errorf("CRN takes %d inputs but %s takes %d", c.Dim(), f.Name, f.Dim())
	}
	hi := int64(3)
	if req.Hi != nil {
		hi = *req.Hi
	}
	if req.Lo < 0 || hi < req.Lo {
		return nil, fmt.Errorf("bad grid bounds lo=%d hi=%d", req.Lo, hi)
	}
	maxConfigs := req.MaxConfigs
	if maxConfigs == 0 {
		maxConfigs = 1 << 20 // crncheck's -maxconfigs default
	}
	if maxConfigs < 1 {
		return nil, fmt.Errorf("maxconfigs must be >= 1")
	}
	d := f.Dim()
	los, his := make([]int64, d), make([]int64, d)
	for i := range los {
		los[i], his[i] = req.Lo, hi
	}
	if _, ok := gridPointsOf(los, his); !ok {
		return nil, fmt.Errorf("grid [%d,%d]^%d exceeds %d points", req.Lo, hi, d, maxGridPoints)
	}
	cc := canonicalCheck{
		V:          1,
		Op:         "check",
		CRN:        c.String(),
		Func:       req.Func,
		Lo:         los,
		Hi:         his,
		MaxConfigs: maxConfigs,
		MaxCount:   1 << 40, // reach's default; part of the key because verdicts depend on it
	}
	return &checkJob{
		cc:  cc,
		key: requestKey(cc),
		c:   c,
		f:   func(x []int64) int64 { return f.Eval(vec.New(x...)) },
	}, nil
}

// runCheckGrid runs the job's whole grid on the in-process engine and
// encodes the result in the canonical crncheck -json form. Engine stage
// events trace as children of parent via the progress adapter.
func (s *Server) runCheckGrid(j *checkJob, rep progress.Reporter) (cached, error) {
	s.computed("check")
	res, err := reach.CheckGrid(j.c, j.f, j.cc.Lo, j.cc.Hi,
		reach.WithMaxConfigs(j.cc.MaxConfigs),
		reach.WithMaxCount(j.cc.MaxCount),
		reach.WithWorkers(s.cfg.Workers),
		reach.WithProgress(rep))
	if err != nil {
		// A deterministic enumeration error (the CLI exits without JSON):
		// reported, never cached.
		return cached{}, err
	}
	body, err := reach.MarshalGridResultIndent(res)
	if err != nil {
		return cached{}, err
	}
	return cached{status: http.StatusOK, contentType: contentTypeJSON, body: body}, nil
}

// handleCheck serves POST /v1/check.
//
// The response body for a completed check is byte-identical to what
// `crncheck -json` prints for the same CRN, function, bounds, and budgets:
// both sides run the same deterministic engine and both encode through
// reach.MarshalGridResultIndent. That identity is what makes the cache safe
// — a replayed body is indistinguishable from a fresh run.
//
// Small grids (at most Config.SyncGridLimit points) are checked
// synchronously on the server's worker budget, deduplicated and cached by
// content address. Larger grids are accepted as asynchronous jobs: the
// response is 202 with the job's status document; poll GET /v1/jobs/{id}
// and fetch the identical body from GET /v1/jobs/{id}/result. A large
// request whose result is already cached is served synchronously from the
// cache.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req CheckRequest
	if !readJSON(w, r, &req) {
		return
	}
	j, err := resolveCheck(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sc := trace.FromContext(r.Context())
	lookupStart := time.Now()
	val, ok := s.cache.get(j.key)
	if s.tr != nil {
		outcome := "miss"
		if ok {
			outcome = "hit"
		}
		s.tr.StartSpan(lookupStart, "serve.cache.lookup", sc).End(time.Now(),
			trace.String("outcome", outcome))
	}
	if ok {
		writeCached(w, val, cacheHit)
		return
	}
	if j.gridPoints() > s.cfg.SyncGridLimit {
		jb := s.jobs.getOrCreate(j, s, sc)
		w.Header().Set("Location", "/v1/jobs/"+jb.id)
		writeJSON(w, http.StatusAccepted, s.jobs.status(jb))
		return
	}
	val, source, err := s.cacheDo(r.Context(), "check", j.key, func() (cached, error) {
		rep, finish := s.reporterFor(sc)
		defer finish()
		return s.runCheckGrid(j, rep)
	})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeCached(w, val, source)
}
