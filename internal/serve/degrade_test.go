package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"crncompose/internal/core"
	"crncompose/internal/dist"
	"crncompose/internal/reach"
	"crncompose/internal/vec"
)

// Graceful-degradation coverage: a dist handoff that cannot start or makes
// no progress falls back to local execution with a degraded status marker,
// and the finished body stays byte-identical to the synchronous path either
// way — degradation is an availability feature, never a correctness one.

// TestJobDegradeAtSubmit: the coordinator address is already taken, so the
// handoff cannot even start — the job must complete locally, marked
// degraded, with the exact crncheck -json bytes.
func TestJobDegradeAtSubmit(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	_, ts := newTestServer(t, Config{
		Shards:          4,
		DistCoordinator: ln.Addr().String(), // occupied: Start must fail
	})
	hi := int64(3)
	js := submitJob(t, ts.URL, hi)
	final := awaitJob(t, ts.URL, js.ID)
	if final.State != jobDone || !final.Degraded || final.DegradedReason == "" {
		t.Fatalf("degraded-at-submit job: %+v", final)
	}
	if final.Rects != 4 || final.RectsDone != 4 {
		t.Fatalf("local fallback progress: %+v", final)
	}
	_, result := get(t, ts.URL+"/v1/jobs/"+js.ID+"/result")
	if want := wantCheckBody(t, minCRNText, minEval, hi); !bytes.Equal(result, want) {
		t.Fatalf("degraded result differs from crncheck -json:\n%s\nwant:\n%s", result, want)
	}
}

// TestJobDegradeMidJob: the coordinator starts but no worker ever joins, so
// no rectangle completes within CoordinatorGrace — the watchdog abandons the
// handoff and the job completes locally, degraded, byte-identical.
func TestJobDegradeMidJob(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Shards:           3,
		DistCoordinator:  freeAddr(t),
		CoordinatorGrace: 500 * time.Millisecond,
	})
	hi := int64(3)
	js := submitJob(t, ts.URL, hi)
	final := awaitJob(t, ts.URL, js.ID)
	if final.State != jobDone || !final.Degraded {
		t.Fatalf("degraded-mid-job job: %+v", final)
	}
	_, result := get(t, ts.URL+"/v1/jobs/"+js.ID+"/result")
	if want := wantCheckBody(t, minCRNText, minEval, hi); !bytes.Equal(result, want) {
		t.Fatalf("degraded result differs from crncheck -json:\n%s\nwant:\n%s", result, want)
	}
}

// TestJobDistWorkerKilledMidRect: during a real dist handoff one of two
// workers dies right after its first lease (without reporting). The lease
// expires, the rectangle is reassigned to the surviving worker, and the job
// completes through the coordinator — NOT degraded — with the exact
// synchronous bytes. This is internal/dist's kill schedule driven through
// serve's /v1/jobs path.
func TestJobDistWorkerKilledMidRect(t *testing.T) {
	addr := freeAddr(t)
	_, ts := newTestServer(t, Config{
		Shards:          4,
		DistCoordinator: addr,
		LeaseTTL:        300 * time.Millisecond, // killed worker's rect reassigns quickly
		// Default CoordinatorGrace (10s) stays ahead of the ~300ms
		// reassignment stall, so the watchdog must not fire.
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	resolver := func(name string) (reach.Func, error) {
		f, ok := core.Library()[name]
		if !ok {
			return nil, fmt.Errorf("unknown function %q", name)
		}
		return func(x []int64) int64 { return f.Eval(vec.New(x...)) }, nil
	}
	killed := errors.New("worker killed mid-rectangle")
	workerErrs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		w := &dist.Worker{
			Coordinator: addr,
			Name:        fmt.Sprintf("worker-%d", i),
			Workers:     1,
			Resolve:     resolver,
			Poll:        10 * time.Millisecond,
			LongPoll:    200 * time.Millisecond,
			JoinTimeout: 30 * time.Second,
			Logf:        t.Logf,
		}
		if i == 0 {
			w.LeaseHook = func(dist.Rect) error { return killed }
		}
		go func() { workerErrs <- w.Run(ctx) }()
	}

	hi := int64(3)
	js := submitJob(t, ts.URL, hi)
	final := awaitJob(t, ts.URL, js.ID)
	if final.State != jobDone || final.Rects != 4 || final.RectsDone != 4 {
		t.Fatalf("dist job under worker kill: %+v", final)
	}
	if final.Degraded {
		t.Fatalf("job degraded despite a surviving worker: %+v", final)
	}
	_, result := get(t, ts.URL+"/v1/jobs/"+js.ID+"/result")
	if want := wantCheckBody(t, minCRNText, minEval, hi); !bytes.Equal(result, want) {
		t.Fatalf("kill-schedule result differs from crncheck -json:\n%s\nwant:\n%s", result, want)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-workerErrs:
			if err != nil && !errors.Is(err, killed) && ctx.Err() == nil {
				t.Fatalf("worker: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("worker did not finish")
		}
	}
}
