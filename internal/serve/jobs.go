package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"crncompose/internal/dist"
	"crncompose/internal/reach"
	"crncompose/internal/trace"
)

// Async grid jobs. A job is a whole /v1/check computation too large for a
// synchronous response: it is content-addressed by the same canonical
// request key as the cache (so the job id doubles as the cache key, and
// re-submitting an identical job attaches to the running one instead of
// recomputing), executed off the request path, and its finished body —
// byte-identical to the synchronous /v1/check response — is inserted into
// the response cache so later checks of the same request are plain hits.
//
// Up to Config.MaxJobs jobs execute concurrently — distinct content
// addresses are independent computations, and a server with spare worker
// budget can overlap them — with further submissions queuing in order.
// Every job runs under its own context (derived from the server's):
// DELETE /v1/jobs/{id} cancels it, and the engine unwinds at its next
// rectangle/chunk boundary, leaving the job in the terminal "canceled"
// state with no partial result. Progress is reported in completed
// rectangles — the same unit the distributed checker leases — with the
// grid split exactly as a coordinator would split it.
//
// Terminal jobs (done, failed, canceled) are garbage-collected from the
// table after Config.JobTTL. A done job's body survives in the response
// cache under the same key, so its result remains reachable: re-submitting
// yields a fresh pre-completed job instantly.

// Job states.
const (
	jobQueued   = "queued"
	jobRunning  = "running"
	jobDone     = "done"
	jobFailed   = "failed"
	jobCanceled = "canceled"
)

// terminalState reports whether a job state is final.
func terminalState(state string) bool {
	switch state {
	case jobDone, jobFailed, jobCanceled:
		return true
	}
	return false
}

// JobStatus is the status document of GET /v1/jobs/{id} (and the 202 body
// of submissions). Progress is counted in completed grid rectangles.
// Degraded is set when a dist handoff fell back to local execution
// (DegradedReason says why); the result body is byte-identical either way,
// so degradation is an operational signal, not a correctness one.
type JobStatus struct {
	ID             string `json:"id"`
	State          string `json:"state"`
	Rects          int    `json:"rects"`
	RectsDone      int    `json:"rects_done"`
	Error          string `json:"error,omitempty"`
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
}

// asyncJob is one grid job. Mutable fields are guarded by the owning
// jobTable's mutex; done closes when the job reaches a terminal state.
type asyncJob struct {
	id    string
	check *checkJob

	// ctx governs the job's computation; cancel is what DELETE calls. Both
	// are immutable after getOrCreate (cancel is safe to call repeatedly).
	ctx    context.Context
	cancel context.CancelFunc

	// parent is the span context of the submitting request (zero when that
	// request was untraced) and submittedAt the admission instant — together
	// they let the runner open a serve.job span that covers queue wait plus
	// execution, in the submitter's trace. span is that open span; it is set
	// by runJob before execution and read only on the runner goroutine.
	parent      trace.SpanContext
	submittedAt time.Time
	span        *trace.Span

	state          string
	rects          int
	rectsDone      int
	body           []byte    // finished /v1/check body (state == jobDone)
	errMsg         string    // state == jobFailed or jobCanceled
	degraded       bool      // dist handoff fell back to local execution
	degradedReason string    // why (degraded only)
	finishedAt     time.Time // when the job reached a terminal state (for GC)

	done chan struct{}
}

// jobTable owns every submitted job and the execution queue.
type jobTable struct {
	mu    sync.Mutex
	jobs  map[string]*asyncJob
	queue chan *asyncJob
	now   func() time.Time // injectable for TTL tests
}

func newJobTable() *jobTable {
	return &jobTable{
		jobs:  make(map[string]*asyncJob),
		queue: make(chan *asyncJob, 256),
		now:   time.Now,
	}
}

// getOrCreate returns the job for j's content address, creating and
// enqueueing it if new. A request whose result is already cached gets a
// pre-completed job, so submitting a job for a finished computation is
// instantaneous at any later time. A previously failed or canceled job is
// replaced by a fresh submission — failures (a full queue, a coordinator
// that could not bind, an enumeration error) and cancellations must not
// poison the content address for the server's lifetime.
func (jt *jobTable) getOrCreate(j *checkJob, s *Server, parent trace.SpanContext) *asyncJob {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	if jb, ok := jt.jobs[j.key]; ok && jb.state != jobFailed && jb.state != jobCanceled {
		// Identical re-submissions attach to the existing job; the first
		// submitter's trace keeps it.
		return jb
	}
	jb := &asyncJob{
		id: j.key, check: j, state: jobQueued, done: make(chan struct{}),
		parent: parent, submittedAt: jt.now(),
	}
	base := s.baseCtx
	if base == nil { // bare Server in table-level tests
		base = context.Background()
	}
	jb.ctx, jb.cancel = context.WithCancel(base)
	s.met.submitted()
	if val, ok := s.cache.get(j.key); ok {
		jb.state = jobDone
		jb.body = val.body
		jb.finishedAt = jt.now()
		jb.cancel()
		close(jb.done)
		jt.jobs[j.key] = jb
		s.met.jobTransition("", jobDone)
		return jb
	}
	select {
	case jt.queue <- jb:
		s.met.jobTransition("", jobQueued)
	default:
		jb.state = jobFailed
		jb.errMsg = "job queue full"
		jb.finishedAt = jt.now()
		jb.cancel()
		close(jb.done)
		s.met.jobTransition("", jobFailed)
	}
	jt.jobs[j.key] = jb
	return jb
}

func (jt *jobTable) get(id string) *asyncJob {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	return jt.jobs[id]
}

// allTerminal reports whether every job in the table is in a terminal
// state — the drain loop's exit condition.
func (jt *jobTable) allTerminal() bool {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	for _, jb := range jt.jobs {
		if !terminalState(jb.state) {
			return false
		}
	}
	return true
}

// gc removes terminal jobs whose finishedAt is at least ttl old and
// returns how many were dropped. Done jobs' bodies stay in the response
// cache; only the table entry expires.
func (jt *jobTable) gc(now time.Time, ttl time.Duration) int {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	n := 0
	for id, jb := range jt.jobs {
		if terminalState(jb.state) && !jb.finishedAt.IsZero() && now.Sub(jb.finishedAt) >= ttl {
			delete(jt.jobs, id)
			n++
		}
	}
	return n
}

// statusDoc snapshots the job for clients.
func (jb *asyncJob) statusDoc() JobStatus {
	// jb.id and check are immutable; the rest is read under the table lock
	// by the accessors below.
	return JobStatus{
		ID:             jb.id,
		State:          jb.state,
		Rects:          jb.rects,
		RectsDone:      jb.rectsDone,
		Error:          jb.errMsg,
		Degraded:       jb.degraded,
		DegradedReason: jb.degradedReason,
	}
}

// status returns a consistent snapshot under the table lock.
func (jt *jobTable) status(jb *asyncJob) JobStatus {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	return jb.statusDoc()
}

// gcJobs is the job-table janitor goroutine: it expires terminal jobs
// older than Config.JobTTL until the server shuts down.
func (s *Server) gcJobs() {
	interval := s.cfg.JobTTL / 4
	if interval < time.Second {
		interval = time.Second
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if n := s.jobs.gc(s.jobs.now(), s.cfg.JobTTL); n > 0 {
				s.logf("job gc: expired %d terminal job(s)", n)
			}
		case <-s.baseCtx.Done():
			return
		}
	}
}

// runJobs is the server's job dispatcher goroutine: it admits queued jobs
// into runner goroutines under the MaxJobs budget until the server shuts
// down. Each runner is tracked on jobWG so Drain can await them.
func (s *Server) runJobs() {
	sem := make(chan struct{}, s.cfg.MaxJobs)
	for {
		select {
		case jb := <-s.jobs.queue:
			select {
			case sem <- struct{}{}:
			case <-s.baseCtx.Done():
				return
			}
			s.jobWG.Add(1)
			go func() {
				defer s.jobWG.Done()
				defer func() { <-sem }()
				s.runJob(jb)
			}()
		case <-s.baseCtx.Done():
			return
		}
	}
}

// runJob executes one job to a terminal state and publishes its body to the
// response cache. A job canceled before or during execution lands in
// "canceled" with no partial result.
func (s *Server) runJob(jb *asyncJob) {
	// The serve.job span opens at the admission instant, so it covers queue
	// wait plus execution; the admission child makes the wait visible on its
	// own. Both live in the submitting request's trace (jb.parent).
	runStart := time.Now()
	jb.span = s.tr.StartSpan(jb.submittedAt, "serve.job", jb.parent,
		trace.String("job", jb.id[:min(12, len(jb.id))]))
	s.tr.StartSpan(jb.submittedAt, "serve.job.admission", jb.span.Context()).End(runStart)
	var body []byte
	var err error
	if err = jb.ctx.Err(); err == nil {
		s.computed("job")
		if s.cfg.DistCoordinator != "" {
			body, err = s.runJobDist(jb)
		} else {
			body, err = s.runJobLocal(jb)
		}
	}
	s.jobs.mu.Lock()
	from := jb.state
	switch {
	case err != nil && jb.ctx.Err() != nil:
		jb.state = jobCanceled
		jb.errMsg = err.Error()
	case err != nil:
		jb.state = jobFailed
		jb.errMsg = err.Error()
	default:
		jb.state = jobDone
		jb.body = body
		s.cache.put(jb.id, cached{status: http.StatusOK, contentType: contentTypeJSON, body: body})
	}
	s.met.jobTransition(from, jb.state)
	jb.finishedAt = s.jobs.now()
	terminal := jb.state
	degraded := jb.degraded
	s.jobs.mu.Unlock()
	jb.span.End(time.Now(),
		trace.String("state", terminal),
		trace.Bool("degraded", degraded))
	jb.cancel()
	close(jb.done)
	trace.Logf(s.logf, jb.span.Context())("job %.12s…: %s", jb.id, terminal)
}

// runJobLocal checks the grid rectangle by rectangle on the in-process
// engine, splitting exactly as a distributed coordinator would
// (dist.SplitGrid) and merging with the same deterministic rule — counts
// sum in grid order, the first rectangle with a failure contributes its
// partial counts and stops the run — so the finished body is byte-identical
// to the synchronous CheckGrid body (the dist subsystem's pinned
// invariant), while progress advances a rectangle at a time. Each rectangle
// runs under the job's context, so a DELETE lands within one chunk of work.
func (s *Server) runJobLocal(jb *asyncJob) ([]byte, error) {
	cc := jb.check.cc
	shards := s.cfg.Shards
	if shards < 1 {
		shards = dist.DefaultShards
	}
	if n := jb.check.gridPoints(); int64(shards) > n {
		shards = int(n)
	}
	rects := dist.SplitGrid(cc.Lo, cc.Hi, shards)
	s.jobs.mu.Lock()
	if jb.state != jobRunning { // a degraded job is already running
		s.met.jobTransition(jb.state, jobRunning)
		jb.state = jobRunning
	}
	jb.rects = len(rects)
	s.jobs.mu.Unlock()

	var out reach.GridResult
	for _, r := range rects {
		rectSpan := s.tr.StartSpan(time.Now(), "serve.rect", jb.span.Context(),
			trace.Int("rect", int64(r.ID)))
		rep, finish := s.reporterFor(rectSpan.Context())
		res, err := reach.CheckRectCtx(jb.ctx, jb.check.c, jb.check.f, r.Lo, r.Hi,
			reach.WithMaxConfigs(cc.MaxConfigs),
			reach.WithMaxCount(cc.MaxCount),
			reach.WithWorkers(s.cfg.Workers),
			reach.WithProgress(rep))
		finish()
		if err != nil {
			rectSpan.End(time.Now(), trace.String("outcome", "error"))
			return nil, err
		}
		rectOutcome := "ok"
		if res.Failure != nil {
			rectOutcome = "failure"
		}
		rectSpan.End(time.Now(), trace.String("outcome", rectOutcome))
		out.Checked += res.Checked
		out.Inconclusive += res.Inconclusive
		out.Explored += res.Explored
		s.jobs.mu.Lock()
		jb.rectsDone++
		s.jobs.mu.Unlock()
		if res.Failure != nil {
			out.Failure = res.Failure
			break
		}
	}
	return reach.MarshalGridResultIndent(out)
}

// runJobDist hands the job to a dist coordinator listening on the
// configured address; external workers (`crncheck -join addr`) do the
// computation. The merged result is byte-identical to a local run by the
// dist subsystem's determinism contract, so the finished body is the same
// bytes either way. Waiting is bounded by the job's context: a DELETE
// cancels the wait and shuts the coordinator down, letting workers see the
// job disappear and exit.
//
// Two failure modes degrade to local execution instead of failing the job
// (unless CoordinatorGrace is negative): the coordinator cannot start on
// the configured address, or no rectangle completes for CoordinatorGrace —
// the coordinator is up but its workers are dead, wedged, or never joined.
// Either way the caller still gets the exact bytes a healthy handoff would
// have produced, plus a degraded marker in the job status.
func (s *Server) runJobDist(jb *asyncJob) ([]byte, error) {
	cc := jb.check.cc
	grace := s.cfg.CoordinatorGrace
	co, err := dist.NewCoordinator(dist.CoordinatorConfig{
		CRN:        jb.check.c,
		Func:       cc.Func,
		Lo:         cc.Lo,
		Hi:         cc.Hi,
		MaxConfigs: cc.MaxConfigs,
		MaxCount:   cc.MaxCount,
		Shards:     s.cfg.Shards,
		LeaseTTL:   s.cfg.LeaseTTL,
		Logf:       s.cfg.Logf,
		Metrics:    s.cfg.Metrics,
		// The coordinator shares this server's tracer and parents its
		// dist.job span under the serve.job span, so /debug/traces here
		// shows one trace from the submitting request through the workers'
		// rectangle spans (shipped back with their results).
		Tracer:       s.tr,
		TraceContext: jb.span.Context(),
	})
	if err != nil {
		// A coordinator the job spec itself cannot configure would fail the
		// same way locally; nothing to degrade to.
		return nil, err
	}
	if err := co.Start(s.cfg.DistCoordinator); err != nil {
		if grace < 0 {
			return nil, fmt.Errorf("starting coordinator on %s: %w", s.cfg.DistCoordinator, err)
		}
		return s.degradeJob(jb, fmt.Sprintf("coordinator could not start on %s: %v", s.cfg.DistCoordinator, err))
	}
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = co.Shutdown(sctx)
	}()
	_, total := co.Progress()
	s.jobs.mu.Lock()
	s.met.jobTransition(jb.state, jobRunning)
	jb.state = jobRunning
	jb.rects = total
	s.jobs.mu.Unlock()

	// The wait runs under its own cancel so the stall watchdog below can
	// abandon the handoff without canceling the job itself.
	wctx, wcancel := context.WithCancel(jb.ctx)
	defer wcancel()
	waitDone := make(chan struct{})
	var res reach.GridResult
	var werr error
	go func() {
		res, werr = co.Wait(wctx)
		close(waitDone)
	}()
	t := time.NewTicker(200 * time.Millisecond)
	defer t.Stop()
	lastDone := 0
	lastChange := time.Now()
	for {
		select {
		case <-waitDone:
			if werr != nil {
				return nil, werr
			}
			s.jobs.mu.Lock()
			jb.rectsDone = total
			s.jobs.mu.Unlock()
			// Linger one poll cycle so workers observe Done (as dist.Run does).
			time.Sleep(200 * time.Millisecond)
			return reach.MarshalGridResultIndent(res)
		case <-t.C:
			done, _ := co.Progress()
			if done != lastDone {
				lastDone = done
				lastChange = time.Now()
			}
			s.jobs.mu.Lock()
			jb.rectsDone = done
			s.jobs.mu.Unlock()
			if grace > 0 && time.Since(lastChange) >= grace && jb.ctx.Err() == nil {
				wcancel()
				sctx, cancel := context.WithTimeout(context.Background(), time.Second)
				_ = co.Shutdown(sctx)
				cancel()
				return s.degradeJob(jb, fmt.Sprintf("no rectangle completed for %s (%d/%d done); workers presumed lost", grace, done, total))
			}
		}
	}
}

// degradeJob falls back to local execution after a failed or stalled dist
// handoff: progress restarts from zero (the split is recomputed, though it
// is the same split), the job's status carries the degraded marker, and the
// body comes out byte-identical by the determinism contract shared between
// runJobLocal and the coordinator's merge.
func (s *Server) degradeJob(jb *asyncJob, reason string) ([]byte, error) {
	trace.Logf(s.logf, jb.span.Context())("job %.12s…: degrading to local execution: %s", jb.id, reason)
	s.met.degraded()
	s.jobs.mu.Lock()
	jb.degraded = true
	jb.degradedReason = reason
	jb.rectsDone = 0
	s.jobs.mu.Unlock()
	sp := s.tr.StartSpan(time.Now(), "serve.degrade", jb.span.Context(),
		trace.String("reason", reason))
	body, err := s.runJobLocal(jb)
	sp.End(time.Now())
	return body, err
}

// handleJobSubmit serves POST /v1/jobs: the body is a CheckRequest; the
// response is 202 with the job's status document (Location points at the
// status URL). Identical submissions — concurrent or later — share one job.
// A draining server admits nothing and answers 503.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errors.New("server is draining"))
		return
	}
	var req CheckRequest
	if !readJSON(w, r, &req) {
		return
	}
	j, err := resolveCheck(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	jb := s.jobs.getOrCreate(j, s, trace.FromContext(r.Context()))
	w.Header().Set("Location", "/v1/jobs/"+jb.id)
	writeJSON(w, http.StatusAccepted, s.jobs.status(jb))
}

// handleJobStatus serves GET /v1/jobs/{id}.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	jb := s.jobs.get(r.PathValue("id"))
	if jb == nil {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	writeJSON(w, http.StatusOK, s.jobs.status(jb))
}

// handleJobDelete serves DELETE /v1/jobs/{id}. Deleting a queued or
// running job cancels its context — the engine unwinds at its next
// rectangle/chunk boundary and the job transitions to "canceled" — and
// answers 200 with the (possibly not yet terminal) status document.
// Deleting a terminal job removes it from the table and answers 200; a
// done job's result body remains reachable through the response cache.
func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	jb := s.jobs.get(id)
	if jb == nil {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	s.jobs.mu.Lock()
	if terminalState(jb.state) {
		delete(s.jobs.jobs, id)
		st := jb.statusDoc()
		s.jobs.mu.Unlock()
		writeJSON(w, http.StatusOK, st)
		return
	}
	s.jobs.mu.Unlock()
	jb.cancel()
	writeJSON(w, http.StatusOK, s.jobs.status(jb))
}

// handleJobResult serves GET /v1/jobs/{id}/result: the finished body, byte
// -identical to the synchronous /v1/check response (and to crncheck -json).
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	jb := s.jobs.get(r.PathValue("id"))
	if jb == nil {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	st := s.jobs.status(jb)
	switch st.State {
	case jobDone:
		s.jobs.mu.Lock()
		body := jb.body
		s.jobs.mu.Unlock()
		writeCached(w, cached{status: http.StatusOK, contentType: contentTypeJSON, body: body}, cacheHit)
	case jobFailed, jobCanceled:
		writeError(w, http.StatusUnprocessableEntity, errors.New(st.Error))
	default:
		writeError(w, http.StatusConflict, fmt.Errorf("job is %s; poll /v1/jobs/%s", st.State, st.ID))
	}
}
