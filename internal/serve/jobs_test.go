package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"crncompose/internal/core"
	"crncompose/internal/dist"
	"crncompose/internal/reach"
	"crncompose/internal/trace"
	"crncompose/internal/vec"
)

// TestJobSubmitDedupAndProgress: POST /v1/jobs always runs asynchronously,
// identical submissions share one job (the id is the content address), and
// progress is reported in completed rectangles.
func TestJobSubmitDedupAndProgress(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 4})
	hi := int64(3)
	req := CheckRequest{CRN: minCRNText, Func: "min", Hi: &hi}
	status, _, body := post(t, ts.URL+"/v1/jobs", req)
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d %s", status, body)
	}
	var js JobStatus
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatal(err)
	}
	status, _, body2 := post(t, ts.URL+"/v1/jobs", req)
	if status != http.StatusAccepted {
		t.Fatalf("resubmit: %d %s", status, body2)
	}
	var js2 JobStatus
	if err := json.Unmarshal(body2, &js2); err != nil {
		t.Fatal(err)
	}
	if js2.ID != js.ID {
		t.Fatalf("identical submissions got different jobs: %s vs %s", js2.ID, js.ID)
	}
	final := awaitJob(t, ts.URL, js.ID)
	if final.State != jobDone || final.Rects != 4 || final.RectsDone != 4 {
		t.Fatalf("final status: %+v", final)
	}
	_, result := get(t, ts.URL+"/v1/jobs/"+js.ID+"/result")
	if want := wantCheckBody(t, minCRNText, minEval, hi); !bytes.Equal(result, want) {
		t.Fatalf("job result differs from crncheck -json:\n%s\nwant:\n%s", result, want)
	}
	// Submitting once more after completion: a pre-completed job from cache.
	status, _, body3 := post(t, ts.URL+"/v1/jobs", req)
	var js3 JobStatus
	if err := json.Unmarshal(body3, &js3); err != nil {
		t.Fatal(err)
	}
	if status != http.StatusAccepted || js3.State != jobDone {
		t.Fatalf("post-completion submit: %d %+v", status, js3)
	}
}

// TestJobRefutedGrid: an async job over a refuted grid completes with the
// failing body (verification failure is a result, not a job error).
func TestJobRefutedGrid(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 5})
	hi := int64(2)
	status, _, body := post(t, ts.URL+"/v1/jobs", CheckRequest{CRN: sumCRNText, Func: "min", Hi: &hi})
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d %s", status, body)
	}
	var js JobStatus
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatal(err)
	}
	if final := awaitJob(t, ts.URL, js.ID); final.State != jobDone {
		t.Fatalf("refuted-grid job: %+v", final)
	}
	_, result := get(t, ts.URL+"/v1/jobs/"+js.ID+"/result")
	want := wantCheckBody(t, sumCRNText, minEval, hi)
	if !bytes.Equal(result, want) {
		t.Fatalf("refuted job result differs from crncheck -json:\n%s\nwant:\n%s", result, want)
	}
}

// TestJobUnknownAndUnfinished covers the status/result error paths.
func TestJobUnknownAndUnfinished(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if status, _ := get(t, ts.URL+"/v1/jobs/deadbeef"); status != http.StatusNotFound {
		t.Fatalf("unknown job status: %d", status)
	}
	if status, _ := get(t, ts.URL+"/v1/jobs/deadbeef/result"); status != http.StatusNotFound {
		t.Fatalf("unknown job result: %d", status)
	}
	// Hold the runner inside the engine so the job is observably unfinished.
	release := make(chan struct{})
	s.testComputed = func(string) { <-release }
	defer close(release)
	hi := int64(3)
	_, _, body := post(t, ts.URL+"/v1/jobs", CheckRequest{CRN: minCRNText, Func: "min", Hi: &hi})
	var js JobStatus
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatal(err)
	}
	if status, body := get(t, ts.URL+"/v1/jobs/"+js.ID+"/result"); status != http.StatusConflict {
		t.Fatalf("unfinished result: %d %s", status, body)
	}
}

// TestJobDistBackend runs an async job through a real internal/dist
// coordinator started by the server, with an in-process dist.Worker doing
// the computation — PR 4's subsystem reachable from the single user-facing
// API — and requires the finished body to be byte-identical to the
// synchronous path.
func TestJobDistBackend(t *testing.T) {
	addr := freeAddr(t)
	_, ts := newTestServer(t, Config{
		Shards:          3,
		DistCoordinator: addr,
		LeaseTTL:        5 * time.Second,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	workerDone := make(chan error, 1)
	go func() {
		w := &dist.Worker{
			Coordinator: addr,
			Name:        "test-worker",
			Workers:     1,
			Resolve: func(name string) (reach.Func, error) {
				f, ok := core.Library()[name]
				if !ok {
					return nil, fmt.Errorf("unknown function %q", name)
				}
				return func(x []int64) int64 { return f.Eval(vec.New(x...)) }, nil
			},
			JoinTimeout: 30 * time.Second,
			LongPoll:    200 * time.Millisecond,
		}
		workerDone <- w.Run(ctx)
	}()

	hi := int64(3)
	status, _, body := post(t, ts.URL+"/v1/jobs", CheckRequest{CRN: minCRNText, Func: "min", Hi: &hi})
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d %s", status, body)
	}
	var js JobStatus
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatal(err)
	}
	final := awaitJob(t, ts.URL, js.ID)
	if final.State != jobDone || final.Rects != 3 || final.RectsDone != 3 {
		t.Fatalf("dist job: %+v", final)
	}
	_, result := get(t, ts.URL+"/v1/jobs/"+js.ID+"/result")
	if want := wantCheckBody(t, minCRNText, minEval, hi); !bytes.Equal(result, want) {
		t.Fatalf("dist job result differs from crncheck -json:\n%s\nwant:\n%s", result, want)
	}
	select {
	case err := <-workerDone:
		if err != nil && ctx.Err() == nil {
			t.Fatalf("worker: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker did not observe job completion")
	}
}

// TestFailedJobRetried: a failed job must not poison its content address —
// the next identical submission gets a fresh job, while done jobs are
// reused. Exercised at the table level (no runner) so states can be forced.
func TestFailedJobRetried(t *testing.T) {
	s := &Server{cfg: Config{CacheMax: 4}, cache: newResultCache(4), jobs: newJobTable()}
	j, err := resolveCheck(CheckRequest{CRN: minCRNText, Func: "min"})
	if err != nil {
		t.Fatal(err)
	}
	jb := s.jobs.getOrCreate(j, s, trace.SpanContext{})
	s.jobs.mu.Lock()
	jb.state = jobFailed
	jb.errMsg = "boom"
	s.jobs.mu.Unlock()
	jb2 := s.jobs.getOrCreate(j, s, trace.SpanContext{})
	if jb2 == jb {
		t.Fatal("failed job was reused instead of retried")
	}
	if st := s.jobs.status(jb2); st.State != jobQueued || st.Error != "" {
		t.Fatalf("replacement job: %+v", st)
	}
	s.jobs.mu.Lock()
	jb2.state = jobDone
	s.jobs.mu.Unlock()
	if s.jobs.getOrCreate(j, s, trace.SpanContext{}) != jb2 {
		t.Fatal("done job was not reused")
	}
}

// TestAdmissionBounds: absurd grids and oversized simulations are rejected
// up front instead of wedging the request path (overflow-checked grid size,
// per-request simulation caps).
func TestAdmissionBounds(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	hugeHi := int64(3_037_000_500) // (hi+1)^2 overflows int64
	for name, tc := range map[string]struct {
		path string
		body any
	}{
		"check_overflow_grid":   {"/v1/check", CheckRequest{CRN: minCRNText, Func: "min", Hi: &hugeHi}},
		"jobs_overflow_grid":    {"/v1/jobs", CheckRequest{CRN: minCRNText, Func: "min", Hi: &hugeHi}},
		"simulate_trials_bound": {"/v1/simulate", SimulateRequest{CRN: minCRNText, X: []int64{1, 1}, Trials: MaxSimTrials + 1}},
		"simulate_steps_bound":  {"/v1/simulate", SimulateRequest{CRN: minCRNText, X: []int64{1, 1}, MaxSteps: MaxSimMaxSteps + 1}},
		"simulate_silent_bound": {"/v1/simulate", SimulateRequest{CRN: minCRNText, X: []int64{1, 1}, SilentSteps: -1}},
	} {
		t.Run(name, func(t *testing.T) {
			status, _, body := post(t, ts.URL+tc.path, tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("admitted with %d: %s", status, body)
			}
		})
	}
	// A grid just inside the bound still resolves.
	if _, err := resolveCheck(CheckRequest{CRN: minCRNText, Func: "min", Hi: &[]int64{65_535}[0]}); err != nil {
		t.Fatalf("in-bound grid rejected: %v", err)
	}
}

// freeAddr reserves a localhost port and releases it for the coordinator.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}
