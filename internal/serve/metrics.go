package serve

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"crncompose/internal/httpx"
	"crncompose/internal/metrics"
	"crncompose/internal/progress"
	"crncompose/internal/trace"
)

// serveMetrics bundles every family the server registers on its
// registry (Config.Metrics, or a private one). All methods are
// nil-receiver safe so table-level tests can build bare Servers
// without a registry. Families:
//
//	crn_http_request_duration_seconds{endpoint}  histogram — per-route latency
//	crn_http_requests_total{endpoint,code}       counter
//	crn_jobs{state}                              gauge     — queued | running
//	crn_jobs_total{state}                        counter   — terminal transitions
//	crn_jobs_submitted_total                     counter
//	crn_jobs_degraded_total                      counter   — dist→local fallbacks
//	crn_progress_*{stage}                        the engine-progress adapter
//	crn_cache_*                                  registered by newResultCache
//	crn_httpx_*                                  the retry-client seam
//
// The endpoint label is the mux route pattern ("/v1/jobs/{id}"), not
// the raw path, so label cardinality stays bounded.
type serveMetrics struct {
	reg *metrics.Registry

	reqDur   *metrics.HistogramVec
	reqTotal *metrics.CounterVec

	jobsQueued    *metrics.Gauge
	jobsRunning   *metrics.Gauge
	jobsSubmitted *metrics.Counter
	jobsDone      *metrics.Counter
	jobsFailed    *metrics.Counter
	jobsCanceled  *metrics.Counter
	jobsDegraded  *metrics.Counter

	// progress feeds every engine run (sync checks, local job
	// rectangles, classify/synthesize/simulate) into the per-stage
	// families without touching engine code.
	progress *metrics.ProgressReporter

	// httpx is the retry-client seam registered on the same registry,
	// so one scrape covers any in-process httpx client this server
	// grows (and the families are advertised even while unused).
	httpx *httpx.Metrics
}

func newServeMetrics(reg *metrics.Registry) *serveMetrics {
	m := &serveMetrics{reg: reg}
	m.reqDur = reg.HistogramVec("crn_http_request_duration_seconds",
		"API request latency by route pattern.", metrics.DefBuckets, "endpoint")
	m.reqTotal = reg.CounterVec("crn_http_requests_total",
		"API requests by route pattern and status code.", "endpoint", "code")
	states := reg.GaugeVec("crn_jobs",
		"Async grid jobs currently in a non-terminal state.", "state")
	m.jobsQueued = states.With(jobQueued)
	m.jobsRunning = states.With(jobRunning)
	totals := reg.CounterVec("crn_jobs_total",
		"Async grid jobs that reached a terminal state, by state.", "state")
	m.jobsDone = totals.With(jobDone)
	m.jobsFailed = totals.With(jobFailed)
	m.jobsCanceled = totals.With(jobCanceled)
	m.jobsSubmitted = reg.Counter("crn_jobs_submitted_total",
		"Async grid jobs created (identical re-submissions attach to the existing job and are not counted).")
	m.jobsDegraded = reg.Counter("crn_jobs_degraded_total",
		"Dist handoffs that fell back to local execution (byte-identical result, degraded marker).")
	m.progress = metrics.NewProgressReporter(reg)
	m.httpx = httpx.NewMetrics(reg)
	return m
}

// jobTransition records a job state change; "" means the job is being
// created. Gauges track the non-terminal states, counters the
// terminal ones. Callers hold jobs.mu, matching the state writes.
func (m *serveMetrics) jobTransition(from, to string) {
	if m == nil {
		return
	}
	switch from {
	case jobQueued:
		m.jobsQueued.Dec()
	case jobRunning:
		m.jobsRunning.Dec()
	}
	switch to {
	case jobQueued:
		m.jobsQueued.Inc()
	case jobRunning:
		m.jobsRunning.Inc()
	case jobDone:
		m.jobsDone.Inc()
	case jobFailed:
		m.jobsFailed.Inc()
	case jobCanceled:
		m.jobsCanceled.Inc()
	}
}

func (m *serveMetrics) submitted() {
	if m == nil {
		return
	}
	m.jobsSubmitted.Inc()
}

func (m *serveMetrics) degraded() {
	if m == nil {
		return
	}
	m.jobsDegraded.Inc()
}

// jobTotals snapshots the cumulative terminal-transition counters for
// /v1/stats (nil when the server has no metrics).
func (m *serveMetrics) jobTotals() map[string]uint64 {
	if m == nil {
		return nil
	}
	return map[string]uint64{
		"submitted": m.jobsSubmitted.Value(),
		jobDone:     m.jobsDone.Value(),
		jobFailed:   m.jobsFailed.Value(),
		jobCanceled: m.jobsCanceled.Value(),
		"degraded":  m.jobsDegraded.Value(),
	}
}

// progressReporter is the reporter handed to every engine invocation;
// a typed nil never escapes (progress.Post would treat a non-nil
// interface holding a nil pointer as live).
func (s *Server) progressReporter() progress.Reporter {
	if s.met == nil {
		return nil
	}
	return s.met.progress
}

// reporterFor tees the metrics progress adapter with a tracing one that
// turns engine stage events into child spans of parent. finish must be
// called once the engine run completes — it ends the open stage spans; it
// is safe to call when tracing is off. The engines themselves never see a
// clock or a span: stage timestamps come from this layer's clock via the
// adapter (the caller-owned-clock contract).
func (s *Server) reporterFor(parent trace.SpanContext) (rep progress.Reporter, finish func()) {
	base := s.progressReporter()
	tp := trace.NewProgressReporter(s.tr, time.Now, parent)
	if tp == nil {
		return base, func() {}
	}
	return progress.Multi(base, tp), func() { tp.Finish(time.Now()) }
}

// hookSpanCounters surfaces the tracer's recording activity on the scrape:
// crn_trace_spans_total counts spans recorded into the ring,
// crn_trace_spans_dropped_total the recordings that evicted an older span.
// Same families and same replace-not-append SetOnSpan semantics as the dist
// coordinator's hook, so sharing one tracer and registry between serve and
// an in-process coordinator counts each span exactly once. Nil-safe.
func hookSpanCounters(reg *metrics.Registry, tr *trace.Tracer) {
	if reg == nil || tr == nil {
		return
	}
	spans := reg.Counter("crn_trace_spans_total",
		"Spans recorded into the trace ring buffer.")
	droppedC := reg.Counter("crn_trace_spans_dropped_total",
		"Span recordings that evicted an older span (ring overflow).")
	tr.SetOnSpan(func(dropped bool) {
		spans.Inc()
		if dropped {
			droppedC.Inc()
		}
	})
}

// statusRecorder captures the status code written by a handler for
// the request counter.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the per-endpoint duration histogram
// and request counter, and — for the /v1/* API routes of a tracing
// server — a serve.request root span. An incoming W3C traceparent header
// continues the caller's trace (that is how an httpx client's attempt
// span becomes this request's parent across processes); otherwise the
// request starts a fresh one. The span context rides the request context
// so everything downstream (cache layer, engines via the progress
// adapter, the dist handoff) parents under it. The wall-clock read lives
// here, in the serve layer — never in engine code (the crnlint
// determinism contract).
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	traced := s.tr != nil && strings.HasPrefix(endpoint, "/v1/")
	if s.met == nil && !traced {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		var sp *trace.Span
		if traced {
			// A missing or malformed header just starts a new trace.
			parent, _ := trace.ParseTraceparent(r.Header.Get("traceparent"))
			sp = s.tr.StartSpan(start, "serve.request", parent,
				trace.String("endpoint", endpoint),
				trace.String("method", r.Method))
			r = r.WithContext(trace.ContextSpan(r.Context(), sp))
		}
		h(rec, r)
		sp.End(time.Now(), trace.Int("code", int64(rec.code)))
		if s.met != nil {
			s.met.reqDur.With(endpoint).Observe(time.Since(start).Seconds())
			s.met.reqTotal.With(endpoint, strconv.Itoa(rec.code)).Inc()
		}
	}
}
