package serve

import (
	"net/http"
	"strconv"
	"time"

	"crncompose/internal/httpx"
	"crncompose/internal/metrics"
	"crncompose/internal/progress"
)

// serveMetrics bundles every family the server registers on its
// registry (Config.Metrics, or a private one). All methods are
// nil-receiver safe so table-level tests can build bare Servers
// without a registry. Families:
//
//	crn_http_request_duration_seconds{endpoint}  histogram — per-route latency
//	crn_http_requests_total{endpoint,code}       counter
//	crn_jobs{state}                              gauge     — queued | running
//	crn_jobs_total{state}                        counter   — terminal transitions
//	crn_jobs_submitted_total                     counter
//	crn_jobs_degraded_total                      counter   — dist→local fallbacks
//	crn_progress_*{stage}                        the engine-progress adapter
//	crn_cache_*                                  registered by newResultCache
//	crn_httpx_*                                  the retry-client seam
//
// The endpoint label is the mux route pattern ("/v1/jobs/{id}"), not
// the raw path, so label cardinality stays bounded.
type serveMetrics struct {
	reg *metrics.Registry

	reqDur   *metrics.HistogramVec
	reqTotal *metrics.CounterVec

	jobsQueued    *metrics.Gauge
	jobsRunning   *metrics.Gauge
	jobsSubmitted *metrics.Counter
	jobsDone      *metrics.Counter
	jobsFailed    *metrics.Counter
	jobsCanceled  *metrics.Counter
	jobsDegraded  *metrics.Counter

	// progress feeds every engine run (sync checks, local job
	// rectangles, classify/synthesize/simulate) into the per-stage
	// families without touching engine code.
	progress *metrics.ProgressReporter

	// httpx is the retry-client seam registered on the same registry,
	// so one scrape covers any in-process httpx client this server
	// grows (and the families are advertised even while unused).
	httpx *httpx.Metrics
}

func newServeMetrics(reg *metrics.Registry) *serveMetrics {
	m := &serveMetrics{reg: reg}
	m.reqDur = reg.HistogramVec("crn_http_request_duration_seconds",
		"API request latency by route pattern.", metrics.DefBuckets, "endpoint")
	m.reqTotal = reg.CounterVec("crn_http_requests_total",
		"API requests by route pattern and status code.", "endpoint", "code")
	states := reg.GaugeVec("crn_jobs",
		"Async grid jobs currently in a non-terminal state.", "state")
	m.jobsQueued = states.With(jobQueued)
	m.jobsRunning = states.With(jobRunning)
	totals := reg.CounterVec("crn_jobs_total",
		"Async grid jobs that reached a terminal state, by state.", "state")
	m.jobsDone = totals.With(jobDone)
	m.jobsFailed = totals.With(jobFailed)
	m.jobsCanceled = totals.With(jobCanceled)
	m.jobsSubmitted = reg.Counter("crn_jobs_submitted_total",
		"Async grid jobs created (identical re-submissions attach to the existing job and are not counted).")
	m.jobsDegraded = reg.Counter("crn_jobs_degraded_total",
		"Dist handoffs that fell back to local execution (byte-identical result, degraded marker).")
	m.progress = metrics.NewProgressReporter(reg)
	m.httpx = httpx.NewMetrics(reg)
	return m
}

// jobTransition records a job state change; "" means the job is being
// created. Gauges track the non-terminal states, counters the
// terminal ones. Callers hold jobs.mu, matching the state writes.
func (m *serveMetrics) jobTransition(from, to string) {
	if m == nil {
		return
	}
	switch from {
	case jobQueued:
		m.jobsQueued.Dec()
	case jobRunning:
		m.jobsRunning.Dec()
	}
	switch to {
	case jobQueued:
		m.jobsQueued.Inc()
	case jobRunning:
		m.jobsRunning.Inc()
	case jobDone:
		m.jobsDone.Inc()
	case jobFailed:
		m.jobsFailed.Inc()
	case jobCanceled:
		m.jobsCanceled.Inc()
	}
}

func (m *serveMetrics) submitted() {
	if m == nil {
		return
	}
	m.jobsSubmitted.Inc()
}

func (m *serveMetrics) degraded() {
	if m == nil {
		return
	}
	m.jobsDegraded.Inc()
}

// jobTotals snapshots the cumulative terminal-transition counters for
// /v1/stats (nil when the server has no metrics).
func (m *serveMetrics) jobTotals() map[string]uint64 {
	if m == nil {
		return nil
	}
	return map[string]uint64{
		"submitted": m.jobsSubmitted.Value(),
		jobDone:     m.jobsDone.Value(),
		jobFailed:   m.jobsFailed.Value(),
		jobCanceled: m.jobsCanceled.Value(),
		"degraded":  m.jobsDegraded.Value(),
	}
}

// progressReporter is the reporter handed to every engine invocation;
// a typed nil never escapes (progress.Post would treat a non-nil
// interface holding a nil pointer as live).
func (s *Server) progressReporter() progress.Reporter {
	if s.met == nil {
		return nil
	}
	return s.met.progress
}

// statusRecorder captures the status code written by a handler for
// the request counter.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the per-endpoint duration histogram
// and request counter. The wall-clock read lives here, in the serve
// layer — never in engine code (the crnlint determinism contract).
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	if s.met == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.met.reqDur.With(endpoint).Observe(time.Since(start).Seconds())
		s.met.reqTotal.With(endpoint, strconv.Itoa(rec.code)).Inc()
	}
}
