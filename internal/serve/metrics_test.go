package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"crncompose/internal/metrics"
)

// expositionLine is the text-format shape every sample line must have:
// name, optional {labels}, one float/int value.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?[0-9][0-9eE.+-]*|[+-]Inf|NaN)$`)

// scrape fetches /metrics, validates every sample line against the text
// exposition grammar, and returns series → value.
func scrape(t *testing.T, url string) map[string]string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text exposition 0.0.4", ct)
	}
	series := make(map[string]string)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		series[line[:sp]] = line[sp+1:]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return series
}

// atLeast asserts the named series exists with value >= min.
func atLeast(t *testing.T, series map[string]string, name string, min float64) {
	t.Helper()
	v, ok := series[name]
	if !ok {
		t.Fatalf("scrape missing series %q", name)
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		t.Fatalf("series %q value %q: %v", name, v, err)
	}
	if f < min {
		t.Fatalf("series %q = %v, want >= %v", name, f, min)
	}
}

// TestMetricsEndpoint drives one cache miss and one hit through /v1/check
// and asserts the scrape: valid exposition, cache counters, the
// per-endpoint latency histogram, engine progress, and the advertised
// httpx/jobs families. The /metrics route itself must not appear as an
// endpoint label — a scrape should not grow the families it reads.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	hi := int64(1)
	req := CheckRequest{CRN: minCRNText, Func: "min", Hi: &hi}
	if status, src, body := post(t, ts.URL+"/v1/check", req); status != http.StatusOK || src != cacheMiss {
		t.Fatalf("first check: %d %q %s", status, src, body)
	}
	if status, src, _ := post(t, ts.URL+"/v1/check", req); status != http.StatusOK || src != cacheHit {
		t.Fatalf("second check: %d %q", status, src)
	}

	series := scrape(t, ts.URL)
	atLeast(t, series, "crn_cache_hits_total", 1)
	atLeast(t, series, "crn_cache_misses_total", 1)
	atLeast(t, series, "crn_cache_entries", 1)
	atLeast(t, series, `crn_http_request_duration_seconds_count{endpoint="/v1/check"}`, 2)
	atLeast(t, series, `crn_http_requests_total{endpoint="/v1/check",code="200"}`, 2)
	atLeast(t, series, `crn_progress_events_total{stage="reach.grid"}`, 1)
	atLeast(t, series, "crn_jobs_submitted_total", 0)
	atLeast(t, series, `crn_jobs{state="queued"}`, 0)
	for name := range series {
		if strings.Contains(name, `endpoint="/metrics"`) {
			t.Fatalf("the /metrics route instrumented itself: %s", name)
		}
	}
}

// TestMetricsSharedRegistry: a caller-supplied registry receives the
// server's families (the embedding pattern: one registry, one scrape for
// the whole process), including the advertised-but-unused httpx seam.
func TestMetricsSharedRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	_, ts := newTestServer(t, Config{Metrics: reg})
	hi := int64(1)
	post(t, ts.URL+"/v1/check", CheckRequest{CRN: minCRNText, Func: "min", Hi: &hi})

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE crn_cache_hits_total counter",
		"# TYPE crn_http_request_duration_seconds histogram",
		"# TYPE crn_jobs gauge",
		"# TYPE crn_httpx_attempts_total counter",
		"# TYPE crn_progress_events_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("shared registry missing %q", want)
		}
	}
}

// TestStatsJSONKeys pins the /v1/stats wire format: every pre-metrics
// key must survive the re-homing of the cache counters onto the shared
// registry, byte-for-byte in name. Monitoring that parses these keys
// must not break when the backing store changes.
func TestStatsJSONKeys(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	hi := int64(1)
	post(t, ts.URL+"/v1/check", CheckRequest{CRN: minCRNText, Func: "min", Hi: &hi})

	status, body := get(t, ts.URL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: %d %s", status, body)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(body, &top); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"cache", "jobs"} {
		if _, ok := top[key]; !ok {
			t.Errorf("stats missing top-level key %q: %s", key, body)
		}
	}
	var cache map[string]json.Number
	if err := json.Unmarshal(top["cache"], &cache); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"entries", "max", "hits", "misses", "dedups", "evictions"} {
		if _, ok := cache[key]; !ok {
			t.Errorf("stats.cache missing key %q: %s", key, top["cache"])
		}
	}
	if n, _ := cache["hits"].Int64(); n != 0 {
		t.Errorf("hits after one miss = %d, want 0", n)
	}
	if n, _ := cache["misses"].Int64(); n != 1 {
		t.Errorf("misses after one check = %d, want 1", n)
	}
}
