// Package serve implements verification-as-a-service: a long-running
// HTTP+JSON server over the classify → synthesize → verify → simulate
// pipeline, replacing one-shot CLI invocations that recompile and re-verify
// from scratch per run.
//
// # Endpoints
//
//	GET    /healthz               liveness
//	GET    /readyz                readiness (503 while draining)
//	GET    /v1/stats              cache and job counters
//	POST   /v1/classify           Theorem 5.2 classification of a library function
//	POST   /v1/synthesize         output-oblivious CRN synthesis (Lemma 6.2 / Thm 9.2)
//	POST   /v1/check              stable-computation model checking on a grid
//	POST   /v1/simulate           seeded Gillespie / fair-random ensembles
//	POST   /v1/jobs               submit a grid check as an asynchronous job
//	GET    /v1/jobs/{id}          job status (progress in completed rectangles)
//	DELETE /v1/jobs/{id}          cancel a queued/running job; drop a terminal one
//	GET    /v1/jobs/{id}/result   finished job body (the exact /v1/check bytes)
//
// # Caching
//
// Every computation is content-addressed: the canonical request — CRN text
// normalized through parse→String, function name, grid bounds, budgets,
// seeds, with all defaults filled in — is hashed (SHA-256, the JobSpec-hash
// discipline of internal/dist/checkpoint.go) and the response bytes are
// cached under that key with LRU eviction (Config.CacheMax). Concurrent
// identical requests are deduplicated in flight: N simultaneous submissions
// of the same check cost exactly one engine run. Because every engine in
// this module is deterministic — byte-identical GridResults at any worker
// count, steal schedule, or process count (PR 2–4), seeded simulation —
// replaying cached bytes is indistinguishable from recomputing them; the
// cache is a correctness-preserving optimization, not an approximation.
//
// # Byte identity
//
// A /v1/check response body is byte-identical to `crncheck -json` for the
// same CRN, function, bounds, and budgets: both encode through
// reach.MarshalGridResultIndent. CI pins this across real processes, and
// the cache/singleflight tests pin that replayed bodies are those bytes.
//
// # Synchronous vs asynchronous
//
// Grids of at most Config.SyncGridLimit points are checked on the request
// path under the server-owned worker budget. Larger grids become jobs
// (202 + job id): executed off the request path — up to Config.MaxJobs
// concurrently, each under its own cancellable context — either
// rectangle-by-rectangle on the local steal-pool engine or — when
// Config.DistCoordinator is set — by starting an internal/dist coordinator
// on that address and letting external `crncheck -join` workers compute the
// rectangles, which makes the distributed subsystem reachable from a single
// user-facing API. A dist handoff that cannot start, or stalls past
// Config.CoordinatorGrace with workers dead or absent, degrades gracefully:
// the job falls back to local execution (same split, same deterministic
// merge, byte-identical body) with a "degraded" marker in its status
// instead of failing. DELETE /v1/jobs/{id} cancels a job; on SIGTERM the
// server drains (Drain): admission closes, in-flight jobs finish (or are
// canceled at the drain deadline), and the process exits cleanly.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"crncompose/internal/classify"
	"crncompose/internal/core"
	"crncompose/internal/metrics"
	"crncompose/internal/parse"
	"crncompose/internal/progress"
	"crncompose/internal/semilinear"
	"crncompose/internal/sim"
	"crncompose/internal/synth"
	"crncompose/internal/trace"
	"crncompose/internal/vec"
)

// Defaults for Config zero values.
const (
	DefaultCacheMax         = 1024
	DefaultSyncGridLimit    = 512
	DefaultMaxJobs          = 2
	DefaultJobTTL           = 15 * time.Minute
	DefaultCoordinatorGrace = 10 * time.Second
)

const contentTypeJSON = "application/json"

// Config tunes the server. The zero value serves with all defaults.
type Config struct {
	// Workers is the reach worker budget for synchronous checks and local
	// jobs (reach.WithWorkers semantics: 0 = all CPUs).
	Workers int
	// CacheMax bounds the result cache in entries (LRU eviction beyond it).
	// 0 means DefaultCacheMax; negative disables storage entirely (in-flight
	// deduplication still applies).
	CacheMax int
	// SyncGridLimit is the largest grid (in input points) checked
	// synchronously on the request path; larger /v1/check grids are answered
	// 202 with an async job. 0 means DefaultSyncGridLimit.
	SyncGridLimit int64
	// MaxJobs is the admission budget for concurrently executing async jobs
	// (0 = DefaultMaxJobs). Submissions beyond it queue; each running job
	// still gets the full Workers budget, so MaxJobs > 1 trades per-job
	// latency for throughput across distinct content addresses.
	MaxJobs int
	// JobTTL bounds how long a terminal (done/failed/canceled) job stays in
	// the job table before the janitor removes it (0 = DefaultJobTTL,
	// negative disables expiry). A done job's result body remains reachable
	// through the response cache after the table entry expires: re-submitting
	// the same request yields a fresh pre-completed job instantly.
	JobTTL time.Duration
	// DistCoordinator, when nonempty, runs async jobs through an
	// internal/dist coordinator listening on this host:port; external
	// workers (`crncheck -join`) compute the rectangles. Empty runs jobs on
	// the local engine.
	DistCoordinator string
	// Shards is the rectangle count jobs are split into — the progress
	// granularity, and in dist mode the lease granularity (0 = 16).
	Shards int
	// LeaseTTL is the dist coordinator's lease TTL (dist mode only).
	LeaseTTL time.Duration
	// CoordinatorGrace governs graceful degradation of the dist handoff: if
	// the coordinator cannot start on DistCoordinator, or no rectangle
	// completes for this long mid-job (workers dead or never joined), the
	// job falls back to local rectangle-by-rectangle execution — same split,
	// same deterministic merge, byte-identical body — and its status carries
	// a degraded marker instead of failing. Must exceed the worst-case time
	// a single rectangle takes under the configured shard count. 0 means
	// DefaultCoordinatorGrace; negative disables degradation (a failed
	// handoff fails the job).
	CoordinatorGrace time.Duration
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
	// Metrics is the registry GET /metrics renders and every server
	// counter registers on (cache, jobs, per-endpoint latency, engine
	// progress, the httpx seam). Nil gets a private registry, so the
	// endpoint always works; inject one to aggregate several components
	// onto a single scrape.
	Metrics *metrics.Registry
	// Tracer, when non-nil, records spans: a serve.request root per /v1/*
	// request (continuing an incoming W3C traceparent header when one is
	// present), cache-lookup/singleflight/compute child spans, engine stage
	// spans via the progress adapter, and per-job spans for async jobs —
	// handed onward to the dist coordinator in dist mode so one trace id
	// spans submitter, coordinator, and workers. Nil disables tracing; the
	// request path then pays only a pointer check.
	Tracer *trace.Tracer
}

// Server is the verification service. Create with New; serve via Handler
// (any http mux/server) or Start/Addr/Shutdown.
type Server struct {
	cfg   Config
	cache *resultCache
	jobs  *jobTable
	met   *serveMetrics
	tr    *trace.Tracer

	baseCtx context.Context
	cancel  context.CancelFunc

	// draining is set by Drain: /readyz answers 503 and new job submissions
	// are rejected while in-flight jobs run to completion.
	draining atomic.Bool
	// jobWG tracks every job-runner goroutine, so drain/shutdown can await
	// them after the dispatcher exits.
	jobWG sync.WaitGroup

	// testComputed, when non-nil, observes every real engine computation
	// (cache misses only) with the operation name — how tests count that N
	// deduplicated requests cost one run.
	testComputed func(op string)

	srv *http.Server
	ln  net.Listener
}

// New builds a Server and starts its job runner.
func New(cfg Config) *Server {
	switch {
	case cfg.CacheMax == 0:
		cfg.CacheMax = DefaultCacheMax
	case cfg.CacheMax < 0:
		cfg.CacheMax = 0
	}
	if cfg.SyncGridLimit == 0 {
		cfg.SyncGridLimit = DefaultSyncGridLimit
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = DefaultMaxJobs
	}
	if cfg.JobTTL == 0 {
		cfg.JobTTL = DefaultJobTTL
	}
	if cfg.CoordinatorGrace == 0 {
		cfg.CoordinatorGrace = DefaultCoordinatorGrace
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	s := &Server{
		cfg:   cfg,
		cache: newResultCache(cfg.CacheMax),
		jobs:  newJobTable(),
		met:   newServeMetrics(cfg.Metrics),
		tr:    cfg.Tracer,
	}
	s.cache.register(cfg.Metrics)
	hookSpanCounters(cfg.Metrics, s.tr)
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	go s.runJobs()
	if cfg.JobTTL > 0 {
		go s.gcJobs()
	}
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) computed(op string) {
	if s.testComputed != nil {
		s.testComputed(op)
	}
}

// FlushCache drops every cached response (jobs and in-flight computations
// are unaffected). Operational escape hatch, and how the bench suite
// measures cold-path throughput.
func (s *Server) FlushCache() { s.cache.flush() }

// Handler returns the server's HTTP API. Every route is wrapped with
// the per-endpoint duration histogram and request counter; the
// endpoint label is the route pattern, so label cardinality is the
// route count, not the path space. GET /metrics itself is not
// instrumented — a scrape should not grow the families it reads.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, endpoint string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(endpoint, h))
	}
	handle("GET /healthz", "/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	handle("GET /readyz", "/readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]bool{"ready": false, "draining": true})
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ready": true})
	})
	handle("GET /v1/stats", "/v1/stats", s.handleStats)
	handle("POST /v1/classify", "/v1/classify", s.handleClassify)
	handle("POST /v1/synthesize", "/v1/synthesize", s.handleSynthesize)
	handle("POST /v1/check", "/v1/check", s.handleCheck)
	handle("POST /v1/simulate", "/v1/simulate", s.handleSimulate)
	handle("POST /v1/jobs", "/v1/jobs", s.handleJobSubmit)
	handle("GET /v1/jobs/{id}", "/v1/jobs/{id}", s.handleJobStatus)
	handle("DELETE /v1/jobs/{id}", "/v1/jobs/{id}", s.handleJobDelete)
	handle("GET /v1/jobs/{id}/result", "/v1/jobs/{id}/result", s.handleJobResult)
	if s.met != nil {
		mux.Handle("GET /metrics", s.met.reg.Handler())
	}
	return mux
}

// cacheDo wraps resultCache.do with a span naming how the response was
// produced — serve.cache.hit (replayed), serve.singleflight.park (joined an
// identical in-flight computation), serve.compute (this request ran the
// engine). The span is recorded retroactively, after do returns, because
// which of the three happened is only known then; its start is the instant
// the request entered the cache layer, so durations are still honest.
func (s *Server) cacheDo(ctx context.Context, op, key string, compute func() (cached, error)) (cached, string, error) {
	if s.tr == nil {
		val, source, err := s.cache.do(key, compute)
		return val, source, err
	}
	start := time.Now()
	val, source, err := s.cache.do(key, compute)
	parent := trace.FromContext(ctx)
	name := "serve.compute"
	switch source {
	case cacheHit:
		name = "serve.cache.hit"
	case cacheDedup:
		name = "serve.singleflight.park"
	}
	sp := s.tr.StartSpan(start, name, parent, trace.String("op", op))
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End(time.Now())
	return val, source, err
}

// Stats is the GET /v1/stats document. Cache and JobsTotal read from
// the same counters GET /metrics renders (the registry is the single
// source of truth); Jobs counts the jobs currently in the table by
// state, which is a table snapshot, not a cumulative counter — expired
// entries leave it, which is why JobsTotal exists.
type Stats struct {
	Cache cacheStats     `json:"cache"`
	Jobs  map[string]int `json:"jobs"`
	// JobsTotal is cumulative since process start: jobs submitted, jobs
	// reaching each terminal state, and degraded dist handoffs.
	JobsTotal map[string]uint64 `json:"jobs_total,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := Stats{Cache: s.cache.stats(), Jobs: map[string]int{}, JobsTotal: s.met.jobTotals()}
	s.jobs.mu.Lock()
	for _, jb := range s.jobs.jobs {
		st.Jobs[jb.state]++
	}
	s.jobs.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// ClassifyRequest is the JSON body of POST /v1/classify: decide Theorem 5.2
// oblivious computability of a library function.
type ClassifyRequest struct {
	Func string `json:"func"`
	// Bound is the classifier census bound (0 = classifier default).
	Bound int64 `json:"bound,omitempty"`
}

// ClassifyResponse reports the verdict: the normal form's shape for a
// computable function, the reason plus the Lemma 4.1 contradiction
// certificate for a non-computable one.
type ClassifyResponse struct {
	Func          string  `json:"func"`
	Computable    bool    `json:"computable"`
	Reason        string  `json:"reason,omitempty"`
	Contradiction string  `json:"contradiction,omitempty"`
	Period        int64   `json:"period,omitempty"`
	N             []int64 `json:"n,omitempty"`
	Terms         int     `json:"terms,omitempty"`
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req ClassifyRequest
	if !readJSON(w, r, &req) {
		return
	}
	f, ok := core.Library()[req.Func]
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown function %q", req.Func))
		return
	}
	key := requestKey(struct {
		V     int    `json:"v"`
		Op    string `json:"op"`
		Func  string `json:"func"`
		Bound int64  `json:"bound"`
	}{1, "classify", req.Func, req.Bound})
	val, source, err := s.cacheDo(r.Context(), "classify", key, func() (cached, error) {
		s.computed("classify")
		rep, finish := s.reporterFor(trace.FromContext(r.Context()))
		defer finish()
		res, err := classify.Analyze(f, classify.Options{Bound: req.Bound, WitnessSearch: true, Progress: rep})
		if err != nil {
			return cached{}, err
		}
		resp := ClassifyResponse{Func: req.Func, Computable: res.Computable, Period: res.Period}
		if res.Computable {
			resp.N = res.N
			resp.Terms = len(res.EventualMin.Terms)
		} else {
			resp.Reason = res.Reason
			if res.Contradiction != nil {
				resp.Contradiction = res.Contradiction.String()
			}
		}
		return encodeJSON(resp)
	})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeCached(w, val, source)
}

// SynthesizeRequest is the JSON body of POST /v1/synthesize: build an
// output-oblivious CRN for a library function (the crnsynth pipeline).
type SynthesizeRequest struct {
	Func string `json:"func"`
	// Bound is the classifier census bound (0 = default); N overrides the
	// eventual threshold (0 = classifier's; smaller N ⇒ smaller CRN).
	Bound int64 `json:"bound,omitempty"`
	N     int64 `json:"n,omitempty"`
	// Leaderless selects the Theorem 9.2 construction (1D superadditive).
	Leaderless bool `json:"leaderless,omitempty"`
}

// SynthesizeResponse carries the CRN in the text format accepted by
// /v1/check, /v1/simulate, crncheck, and crnsim.
type SynthesizeResponse struct {
	Func            string `json:"func"`
	CRN             string `json:"crn"`
	Species         int    `json:"species"`
	Reactions       int    `json:"reactions"`
	OutputOblivious bool   `json:"output_oblivious"`
	Leaderless      bool   `json:"leaderless,omitempty"`
}

func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	var req SynthesizeRequest
	if !readJSON(w, r, &req) {
		return
	}
	f, ok := core.Library()[req.Func]
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown function %q", req.Func))
		return
	}
	key := requestKey(struct {
		V          int    `json:"v"`
		Op         string `json:"op"`
		Func       string `json:"func"`
		Bound      int64  `json:"bound"`
		N          int64  `json:"n"`
		Leaderless bool   `json:"leaderless"`
	}{1, "synthesize", req.Func, req.Bound, req.N, req.Leaderless})
	val, source, err := s.cacheDo(r.Context(), "synthesize", key, func() (cached, error) {
		s.computed("synthesize")
		rep, finish := s.reporterFor(trace.FromContext(r.Context()))
		defer finish()
		resp, err := synthesize(f, req, rep)
		if err != nil {
			return cached{}, err
		}
		return encodeJSON(resp)
	})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeCached(w, val, source)
}

func synthesize(f *semilinear.Func, req SynthesizeRequest, rep progress.Reporter) (SynthesizeResponse, error) {
	if req.Leaderless {
		if f.Dim() != 1 {
			return SynthesizeResponse{}, fmt.Errorf("leaderless construction is 1D only (Theorem 9.2); %s takes %d inputs", f.Name, f.Dim())
		}
		spec, err := synth.FitOneDim(func(x int64) int64 { return f.Eval(vec.New(x)) }, 0, 0)
		if err != nil {
			return SynthesizeResponse{}, err
		}
		c, err := synth.LeaderlessOneDim(spec)
		if err != nil {
			return SynthesizeResponse{}, err
		}
		return SynthesizeResponse{
			Func: f.Name, CRN: c.String(),
			Species: c.NumSpecies(), Reactions: len(c.Reactions),
			OutputOblivious: c.IsOutputOblivious(), Leaderless: true,
		}, nil
	}
	net, _, err := synth.General(f, synth.GeneralOptions{
		Classify: classify.Options{Bound: req.Bound, WitnessSearch: true, Progress: rep},
		N:        req.N,
		Progress: rep,
	})
	if err != nil {
		var nce *synth.NotComputableError
		if errors.As(err, &nce) && nce.Result.Contradiction != nil {
			return SynthesizeResponse{}, fmt.Errorf("%w\n%s", err, nce.Result.Contradiction)
		}
		return SynthesizeResponse{}, err
	}
	return SynthesizeResponse{
		Func: f.Name, CRN: net.String(),
		Species: net.NumSpecies(), Reactions: len(net.Reactions),
		OutputOblivious: net.IsOutputOblivious(),
	}, nil
}

// Admission bounds on /v1/simulate: simulation runs on the request path, so
// a single request may not ask for more work than a synchronous response
// can reasonably carry (the CLI, answering only its own invoker, has no
// such cap).
const (
	MaxSimTrials   = 10_000
	MaxSimMaxSteps = int64(1) << 30
)

// SimulateRequest is the JSON body of POST /v1/simulate: run a seeded
// ensemble of stochastic simulations. Defaults mirror crnsim's flags
// (method fair, 1 trial, seed 1; the step budget defaults to 50M and is
// admission-capped at MaxSimMaxSteps, trials at MaxSimTrials).
type SimulateRequest struct {
	CRN    string  `json:"crn"`
	X      []int64 `json:"x"`
	Method string  `json:"method,omitempty"` // "fair" (default) or "gillespie"
	Trials int     `json:"trials,omitempty"`
	Seed   uint64  `json:"seed,omitempty"`
	// MaxSteps bounds each trial; SilentSteps enables the sound silence
	// convergence criterion (0 = terminal only).
	MaxSteps    int64 `json:"maxsteps,omitempty"`
	SilentSteps int64 `json:"silent,omitempty"`
}

// SimTrial is one trial's outcome.
type SimTrial struct {
	Output    int64   `json:"output"`
	Steps     int64   `json:"steps"`
	Time      float64 `json:"time,omitempty"` // simulated time; Gillespie only
	Converged bool    `json:"converged"`
}

// SimSummary mirrors sim.Stats.
type SimSummary struct {
	Trials      int     `json:"trials"`
	Converged   int     `json:"converged"`
	MinOutput   int64   `json:"min_output"`
	MaxOutput   int64   `json:"max_output"`
	MeanOutput  float64 `json:"mean_output"`
	AllEqual    bool    `json:"all_equal"`
	MedianSteps int64   `json:"median_steps"`
}

// SimulateResponse is the ensemble report. Trial i is seeded with seed+i,
// so the whole document is deterministic and cacheable by content address.
type SimulateResponse struct {
	Trials  []SimTrial `json:"trials"`
	Summary SimSummary `json:"summary"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Method == "" {
		req.Method = "fair"
	}
	if req.Trials <= 0 {
		req.Trials = 1
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	if req.MaxSteps <= 0 {
		req.MaxSteps = 50_000_000
	}
	if req.Trials > MaxSimTrials {
		writeError(w, http.StatusBadRequest, fmt.Errorf("trials %d exceeds the per-request bound %d", req.Trials, MaxSimTrials))
		return
	}
	if req.MaxSteps > MaxSimMaxSteps {
		writeError(w, http.StatusBadRequest, fmt.Errorf("maxsteps %d exceeds the per-request bound %d", req.MaxSteps, MaxSimMaxSteps))
		return
	}
	if req.SilentSteps < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("negative silent steps"))
		return
	}
	var runner sim.Runner
	switch req.Method {
	case "fair":
		runner = sim.FairRandom
	case "gillespie":
		runner = sim.Gillespie
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown method %q", req.Method))
		return
	}
	c, err := parse.Parse(req.CRN)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.X) != c.Dim() {
		writeError(w, http.StatusBadRequest, fmt.Errorf("x has %d values, CRN takes %d inputs", len(req.X), c.Dim()))
		return
	}
	start, err := c.InitialConfig(req.X)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := requestKey(struct {
		V  int    `json:"v"`
		Op string `json:"op"`
		SimulateRequest
	}{1, "simulate", SimulateRequest{
		CRN: c.String(), X: req.X, Method: req.Method, Trials: req.Trials,
		Seed: req.Seed, MaxSteps: req.MaxSteps, SilentSteps: req.SilentSteps,
	}})
	val, source, err := s.cacheDo(r.Context(), "simulate", key, func() (cached, error) {
		s.computed("simulate")
		rep, finish := s.reporterFor(trace.FromContext(r.Context()))
		defer finish()
		opts := []sim.Option{sim.WithMaxSteps(req.MaxSteps), sim.WithProgress(rep)}
		if req.SilentSteps > 0 {
			opts = append(opts, sim.WithSilentSteps(req.SilentSteps))
		}
		results := sim.Ensemble(runner, start, req.Trials, req.Seed, opts...)
		resp := SimulateResponse{Trials: make([]SimTrial, len(results))}
		for i, res := range results {
			resp.Trials[i] = SimTrial{
				Output:    res.Final.Output(),
				Steps:     res.Steps,
				Time:      res.Time,
				Converged: res.Converged,
			}
		}
		st := sim.Summarize(results)
		resp.Summary = SimSummary{
			Trials:      st.Trials,
			Converged:   st.Converged,
			MinOutput:   st.MinOutput,
			MaxOutput:   st.MaxOutput,
			MeanOutput:  st.MeanOutput,
			AllEqual:    st.AllEqual,
			MedianSteps: st.MedianSteps,
		}
		return encodeJSON(resp)
	})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeCached(w, val, source)
}

// Start listens on addr (host:port; port 0 picks a free one — see Addr) and
// serves the API in the background.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go func() { _ = s.srv.Serve(ln) }()
	s.logf("serving on %s (workers=%d cache-max=%d sync-grid=%d dist=%q)",
		ln.Addr(), s.cfg.Workers, s.cfg.CacheMax, s.cfg.SyncGridLimit, s.cfg.DistCoordinator)
	return nil
}

// Addr returns the listening address (nil before Start).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown stops the HTTP server and the job runner immediately: running
// jobs are canceled (they unwind at their next chunk boundary) rather than
// awaited. For a clean exit that lets in-flight jobs finish, use Drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.cancel()
	if s.srv == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}

// Drain is graceful shutdown: stop admitting jobs (/readyz flips to 503 and
// POST /v1/jobs answers 503), let queued and running jobs finish, then stop
// the HTTP server. If ctx expires first, the remaining jobs are canceled —
// they transition to "canceled" at their next cancellation point — and the
// runners are given a short bounded grace to unwind. Drain always returns
// nil after a best-effort stop so callers can exit 0 on SIGTERM.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.logf("drain: admission closed; awaiting jobs")
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
wait:
	for !s.jobs.allTerminal() {
		select {
		case <-ctx.Done():
			s.logf("drain: deadline reached; canceling remaining jobs")
			s.cancel()
			break wait
		case <-tick.C:
		}
	}
	// Await the runner goroutines (bounded: a canceled engine returns within
	// one chunk/level of work, but never hold the process hostage).
	runnersDone := make(chan struct{})
	go func() { s.jobWG.Wait(); close(runnersDone) }()
	select {
	case <-runnersDone:
	case <-time.After(5 * time.Second):
		s.logf("drain: job runners still unwinding at exit")
	}
	s.cancel()
	if s.srv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = s.srv.Shutdown(sctx)
	}
	s.logf("drain: complete")
	return nil
}

// encodeJSON renders a response document in the server's JSON presentation
// form (indented, trailing newline — stable bytes for the cache).
func encodeJSON(v any) (cached, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return cached{}, err
	}
	return cached{status: http.StatusOK, contentType: contentTypeJSON, body: append(b, '\n')}, nil
}

// writeJSON writes v as an uncached JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	val, err := encodeJSON(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	val.status = status
	writeCached(w, val, "")
}

// writeCached replays a cached (or just-computed) response, tagging its
// source in the X-Cache header.
func writeCached(w http.ResponseWriter, val cached, source string) {
	w.Header().Set("Content-Type", val.contentType)
	if source != "" {
		w.Header().Set("X-Cache", source)
	}
	w.WriteHeader(val.status)
	_, _ = w.Write(val.body)
}

// writeError reports an error as {"error": "..."} with the given status.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", contentTypeJSON)
	w.WriteHeader(status)
	b, _ := json.Marshal(map[string]string{"error": err.Error()})
	_, _ = w.Write(append(b, '\n'))
}

// readJSON decodes the request body into v, answering 400 on failure.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request: %w", err))
		return false
	}
	return true
}
