package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"crncompose/internal/parse"
	"crncompose/internal/reach"
	"crncompose/internal/vec"
)

const (
	minCRNText = "#input X1 X2\n#output Y\nX1 + X2 -> Y\n"
	// sumCRNText claims min but computes sum: refuted with a witness.
	sumCRNText = "#input X1 X2\n#output Y\nX1 -> Y\nX2 -> Y\n"
)

// newTestServer returns a serve.Server (shut down at test end) and an
// httptest front end for it.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

// post sends a JSON body and returns status, X-Cache header, and body.
func post(t *testing.T, url string, body any) (int, string, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, contentTypeJSON, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("X-Cache"), buf.Bytes()
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// wantCheckBody computes the exact bytes crncheck -json prints for the
// request: the engine result through the one shared encoder.
func wantCheckBody(t *testing.T, crnText string, f reach.Func, hi int64) []byte {
	t.Helper()
	c, err := parse.Parse(crnText)
	if err != nil {
		t.Fatal(err)
	}
	d := c.Dim()
	los, his := make([]int64, d), make([]int64, d)
	for i := range his {
		his[i] = hi
	}
	res, err := reach.CheckGrid(c, f, los, his, reach.WithMaxConfigs(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	body, err := reach.MarshalGridResultIndent(res)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

var minEval = func(x []int64) int64 { return min(x[0], x[1]) }

// TestCheckByteIdentity pins the tentpole contract: the /v1/check body is
// byte-identical to crncheck -json for the same CRN/function/bounds — for a
// verified grid and for a refuted one whose body carries a witness schedule.
func TestCheckByteIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, crn string
		hi        int64
	}{
		{"verified_min", minCRNText, 3},
		{"refuted_sum_as_min", sumCRNText, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			status, source, body := post(t, ts.URL+"/v1/check", CheckRequest{CRN: tc.crn, Func: "min", Hi: &tc.hi})
			if status != http.StatusOK {
				t.Fatalf("status %d: %s", status, body)
			}
			if source != cacheMiss {
				t.Fatalf("first request X-Cache = %q, want %q", source, cacheMiss)
			}
			want := wantCheckBody(t, tc.crn, minEval, tc.hi)
			if !bytes.Equal(body, want) {
				t.Fatalf("served body differs from crncheck -json:\nserved:\n%s\nwant:\n%s", body, want)
			}
			if tc.name == "refuted_sum_as_min" && !bytes.Contains(body, []byte(`"witness"`)) {
				t.Fatalf("refuted body carries no witness:\n%s", body)
			}
		})
	}
}

// TestCheckDefaultsMatchCLI: a minimal request (defaults filled server-side)
// verifies under crncheck's default budgets, and a differently formatted CRN
// text canonicalizes to the same cache entry.
func TestCheckDefaultsMatchCLI(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var runs int
	s.testComputed = func(string) { runs++ }
	status, _, body := post(t, ts.URL+"/v1/check", map[string]any{"crn": minCRNText, "func": "min"})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if want := wantCheckBody(t, minCRNText, minEval, 3); !bytes.Equal(body, want) {
		t.Fatalf("default-budget body differs from crncheck -json default")
	}
	// Same CRN with extra whitespace and explicit defaults: canonicalizes to
	// the same content address — a cache hit, not a second run.
	messy := "#input X1 X2\n#output Y\n  X1   +  X2 ->   Y \n"
	status, source, body2 := post(t, ts.URL+"/v1/check", map[string]any{
		"crn": messy, "func": "min", "lo": 0, "hi": 3, "maxconfigs": 1 << 20,
	})
	if status != http.StatusOK || source != cacheHit {
		t.Fatalf("canonicalized re-request: status %d X-Cache %q, want 200 %q", status, source, cacheHit)
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("cache replayed different bytes")
	}
	if runs != 1 {
		t.Fatalf("%d engine runs, want 1", runs)
	}
}

func TestClassify(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, _, body := post(t, ts.URL+"/v1/classify", ClassifyRequest{Func: "min"})
	if status != http.StatusOK {
		t.Fatalf("classify min: %d %s", status, body)
	}
	var resp ClassifyResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Computable || resp.Terms == 0 {
		t.Fatalf("min: %+v", resp)
	}
	status, _, body = post(t, ts.URL+"/v1/classify", ClassifyRequest{Func: "max"})
	if status != http.StatusOK {
		t.Fatalf("classify max: %d %s", status, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Computable || resp.Contradiction == "" {
		t.Fatalf("max must be non-computable with a Lemma 4.1 certificate: %+v", resp)
	}
}

func TestSynthesizeThenCheckRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// N=1 keeps the general construction small enough that the follow-up
	// model check stays test-sized.
	status, _, body := post(t, ts.URL+"/v1/synthesize", SynthesizeRequest{Func: "min", N: 1})
	if status != http.StatusOK {
		t.Fatalf("synthesize min: %d %s", status, body)
	}
	var resp SynthesizeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OutputOblivious || resp.CRN == "" {
		t.Fatalf("min synthesis: %+v", resp)
	}
	// The emitted CRN text feeds straight back into /v1/check and verifies.
	hi := int64(1)
	status, _, body = post(t, ts.URL+"/v1/check", CheckRequest{CRN: resp.CRN, Func: "min", Hi: &hi})
	if status != http.StatusOK {
		t.Fatalf("check of synthesized CRN: %d %s", status, body)
	}
	if !bytes.Contains(body, []byte(`"checked": 4`)) || bytes.Contains(body, []byte(`"failure"`)) {
		t.Fatalf("synthesized CRN did not verify:\n%s", body)
	}
	// max is not obliviously-computable: synthesis must fail with the
	// contradiction certificate.
	status, _, body = post(t, ts.URL+"/v1/synthesize", SynthesizeRequest{Func: "max"})
	if status != http.StatusUnprocessableEntity || !strings.Contains(string(body), "not obliviously-computable") {
		t.Fatalf("synthesize max: %d %s", status, body)
	}
}

func TestSimulateDeterministicAndCached(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var runs int
	s.testComputed = func(string) { runs++ }
	req := SimulateRequest{CRN: minCRNText, X: []int64{5, 3}, Method: "fair", Trials: 4, Seed: 7}
	status, source, body := post(t, ts.URL+"/v1/simulate", req)
	if status != http.StatusOK || source != cacheMiss {
		t.Fatalf("simulate: %d %q %s", status, source, body)
	}
	var resp SimulateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Summary.Converged != 4 || !resp.Summary.AllEqual || resp.Summary.MinOutput != 3 {
		t.Fatalf("min(5,3) ensemble: %+v", resp.Summary)
	}
	status, source, body2 := post(t, ts.URL+"/v1/simulate", req)
	if status != http.StatusOK || source != cacheHit || !bytes.Equal(body, body2) {
		t.Fatalf("repeat simulate not a byte-identical cache hit: %d %q", status, source)
	}
	if runs != 1 {
		t.Fatalf("%d engine runs, want 1", runs)
	}
	// A different seed is a different content address.
	req.Seed = 8
	if _, source, _ = post(t, ts.URL+"/v1/simulate", req); source != cacheMiss {
		t.Fatalf("different seed served from cache (%q)", source)
	}
}

func TestSimulateGillespieReportsTime(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, _, body := post(t, ts.URL+"/v1/simulate", SimulateRequest{
		CRN: minCRNText, X: []int64{10, 10}, Method: "gillespie", Trials: 1,
	})
	if status != http.StatusOK {
		t.Fatalf("%d %s", status, body)
	}
	var resp SimulateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Trials) != 1 || resp.Trials[0].Time <= 0 || !resp.Trials[0].Converged {
		t.Fatalf("gillespie trial: %+v", resp.Trials)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	hi3 := int64(3)
	for name, tc := range map[string]struct {
		path string
		body any
	}{
		"check_bad_crn":        {"/v1/check", CheckRequest{CRN: "not a crn", Func: "min"}},
		"check_unknown_func":   {"/v1/check", CheckRequest{CRN: minCRNText, Func: "bogus"}},
		"check_arity":          {"/v1/check", CheckRequest{CRN: "#input X\n#output Y\nX -> Y\n", Func: "min"}},
		"check_empty":          {"/v1/check", CheckRequest{}},
		"check_bad_bounds":     {"/v1/check", CheckRequest{CRN: minCRNText, Func: "min", Lo: 5, Hi: &hi3}},
		"classify_unknown":     {"/v1/classify", ClassifyRequest{Func: "bogus"}},
		"simulate_bad_method":  {"/v1/simulate", SimulateRequest{CRN: minCRNText, X: []int64{1, 1}, Method: "quantum"}},
		"simulate_arity":       {"/v1/simulate", SimulateRequest{CRN: minCRNText, X: []int64{1}}},
		"jobs_unknown_func":    {"/v1/jobs", CheckRequest{CRN: minCRNText, Func: "bogus"}},
		"synthesize_unknown":   {"/v1/synthesize", SynthesizeRequest{Func: "bogus"}},
		"synthesize_ll_not_1d": {"/v1/synthesize", SynthesizeRequest{Func: "min", Leaderless: true}},
	} {
		t.Run(name, func(t *testing.T) {
			status, _, body := post(t, ts.URL+tc.path, tc.body)
			if status != http.StatusBadRequest && status != http.StatusUnprocessableEntity {
				t.Fatalf("accepted with %d: %s", status, body)
			}
			var e map[string]string
			if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
				t.Fatalf("error body not {\"error\": ...}: %s", body)
			}
		})
	}
}

func TestHealthzAndStats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if status, body := get(t, ts.URL+"/healthz"); status != http.StatusOK || !bytes.Contains(body, []byte("true")) {
		t.Fatalf("healthz: %d %s", status, body)
	}
	hi := int64(1)
	post(t, ts.URL+"/v1/check", CheckRequest{CRN: minCRNText, Func: "min", Hi: &hi})
	status, body := get(t, ts.URL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: %d %s", status, body)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Cache.Entries != 1 || st.Cache.Misses != 1 {
		t.Fatalf("stats after one check: %+v", st.Cache)
	}
}

// TestCheckLargeGridGoesAsync: a grid beyond SyncGridLimit answers 202 with
// a job that completes to the exact synchronous body, after which /v1/check
// serves it as a plain cache hit.
func TestCheckLargeGridGoesAsync(t *testing.T) {
	_, ts := newTestServer(t, Config{SyncGridLimit: 4, Shards: 3})
	hi := int64(2) // 9 points > 4
	status, _, body := post(t, ts.URL+"/v1/check", CheckRequest{CRN: minCRNText, Func: "min", Hi: &hi})
	if status != http.StatusAccepted {
		t.Fatalf("large grid answered %d, want 202: %s", status, body)
	}
	var js JobStatus
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatal(err)
	}
	final := awaitJob(t, ts.URL, js.ID)
	if final.State != jobDone || final.Rects != 3 || final.RectsDone != 3 {
		t.Fatalf("job did not complete all rectangles: %+v", final)
	}
	_, result := get(t, ts.URL+"/v1/jobs/"+js.ID+"/result")
	want := wantCheckBody(t, minCRNText, minEval, hi)
	if !bytes.Equal(result, want) {
		t.Fatalf("job result differs from crncheck -json:\n%s\nwant:\n%s", result, want)
	}
	status, source, body := post(t, ts.URL+"/v1/check", CheckRequest{CRN: minCRNText, Func: "min", Hi: &hi})
	if status != http.StatusOK || source != cacheHit || !bytes.Equal(body, want) {
		t.Fatalf("finished job not served as cache hit: %d %q", status, source)
	}
}

// awaitJob polls a job to a terminal state.
func awaitJob(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, body := get(t, base+"/v1/jobs/"+id)
		if status != http.StatusOK {
			t.Fatalf("job status: %d %s", status, body)
		}
		var js JobStatus
		if err := json.Unmarshal(body, &js); err != nil {
			t.Fatal(err)
		}
		if terminalState(js.State) {
			return js
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", js)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestVecRoundTrip guards the assumption that vec.New and a plain []int64
// produce the same initial configuration (the serve layer passes request
// slices straight through).
func TestVecRoundTrip(t *testing.T) {
	c, err := parse.Parse(minCRNText)
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.InitialConfig([]int64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	b := c.MustInitialConfig(vec.New(2, 3))
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("%v vs %v", a, b)
	}
}
