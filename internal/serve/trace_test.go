package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"crncompose/internal/core"
	"crncompose/internal/dist"
	"crncompose/internal/reach"
	"crncompose/internal/trace"
	"crncompose/internal/vec"
)

// clientTraceparent is a fixed incoming W3C trace context, as an external
// caller (or an httpx attempt span) would send it.
const (
	clientTraceID     = "0af7651916cd43dd8448eb211c80319c"
	clientSpanID      = "b7ad6b7169203331"
	clientTraceparent = "00-" + clientTraceID + "-" + clientSpanID + "-01"
)

// postTraced is post with a traceparent request header.
func postTraced(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentTypeJSON)
	req.Header.Set("traceparent", clientTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func spansByName(spans []trace.SpanData) map[string][]trace.SpanData {
	m := make(map[string][]trace.SpanData)
	for _, d := range spans {
		m[d.Name] = append(m[d.Name], d)
	}
	return m
}

// TestTraceSyncCheck: a traced synchronous /v1/check continues the caller's
// trace — the serve.request root parents under the incoming traceparent, the
// cache lookup and compute spans parent under the root, and engine stage
// events surface as spans via the progress adapter.
func TestTraceSyncCheck(t *testing.T) {
	tr := trace.New(trace.Options{Proc: "serve-test"})
	_, ts := newTestServer(t, Config{Tracer: tr})
	hi := int64(1)
	status, body := postTraced(t, ts.URL+"/v1/check", CheckRequest{CRN: minCRNText, Func: "min", Hi: &hi})
	if status != http.StatusOK {
		t.Fatalf("check: %d %s", status, body)
	}
	spans := tr.TraceSpans(clientTraceID)
	if len(spans) == 0 {
		t.Fatalf("no spans recorded for the incoming trace; ring: %+v", tr.Snapshot())
	}
	byName := spansByName(spans)
	roots := byName["serve.request"]
	if len(roots) != 1 {
		t.Fatalf("want 1 serve.request span, got %+v", byName)
	}
	root := roots[0]
	if root.Parent != clientSpanID {
		t.Errorf("serve.request parent = %q, want incoming span %q", root.Parent, clientSpanID)
	}
	if root.Attrs["endpoint"] != "/v1/check" || root.Attrs["code"] != "200" {
		t.Errorf("serve.request attrs = %v", root.Attrs)
	}
	lookups := byName["serve.cache.lookup"]
	if len(lookups) != 1 || lookups[0].Attrs["outcome"] != "miss" || lookups[0].Parent != root.SpanID {
		t.Errorf("cache lookup spans = %+v", lookups)
	}
	computes := byName["serve.compute"]
	if len(computes) != 1 || computes[0].Parent != root.SpanID || computes[0].Attrs["op"] != "check" {
		t.Errorf("compute spans = %+v", computes)
	}
	// The reach engine posts reach.* stage events; the adapter must have
	// turned at least one into a span under the root.
	stages := 0
	for name, ds := range byName {
		if len(name) > 6 && name[:6] == "reach." {
			stages += len(ds)
			for _, d := range ds {
				if d.Parent != root.SpanID {
					t.Errorf("stage span %s parent = %q, want root %q", name, d.Parent, root.SpanID)
				}
			}
		}
	}
	if stages == 0 {
		t.Errorf("no engine stage spans recorded; got %+v", byName)
	}

	// A repeat of the same request is a cache hit — same trace, new root,
	// and the lookup span says so.
	if status, body := postTraced(t, ts.URL+"/v1/check", CheckRequest{CRN: minCRNText, Func: "min", Hi: &hi}); status != http.StatusOK {
		t.Fatalf("cached check: %d %s", status, body)
	}
	var hit bool
	for _, d := range tr.TraceSpans(clientTraceID) {
		if d.Name == "serve.cache.lookup" && d.Attrs["outcome"] == "hit" {
			hit = true
		}
	}
	if !hit {
		t.Error("second request recorded no hit-outcome cache lookup span")
	}
}

// TestTraceDistE2E is the acceptance scenario: one grid job submitted via
// /v1/jobs on a server in dist mode, computed by a real dist.Worker in a
// separate tracer (a stand-in for a separate process), produces ONE trace id
// whose spans — on the server's tracer, which the coordinator shares —
// include the serve root, the job span, the coordinator's dist.job/lease/
// merge spans, and the worker's shipped dist.rect spans, all correctly
// parent-linked. The worker's own ring holds httpx.attempt client spans in
// the same trace.
func TestTraceDistE2E(t *testing.T) {
	serverTr := trace.New(trace.Options{Proc: "crnserve"})
	workerTr := trace.New(trace.Options{Proc: "crncheck-worker"})
	addr := freeAddr(t)
	_, ts := newTestServer(t, Config{
		Shards:          2,
		DistCoordinator: addr,
		LeaseTTL:        5 * time.Second,
		Tracer:          serverTr,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	workerDone := make(chan error, 1)
	go func() {
		w := &dist.Worker{
			Coordinator: addr,
			Name:        "trace-worker",
			Workers:     1,
			Resolve: func(name string) (reach.Func, error) {
				f, ok := core.Library()[name]
				if !ok {
					return nil, fmt.Errorf("unknown function %q", name)
				}
				return func(x []int64) int64 { return f.Eval(vec.New(x...)) }, nil
			},
			JoinTimeout: 30 * time.Second,
			LongPoll:    200 * time.Millisecond,
			Tracer:      workerTr,
		}
		workerDone <- w.Run(ctx)
	}()

	hi := int64(2)
	status, body := postTraced(t, ts.URL+"/v1/jobs", CheckRequest{CRN: minCRNText, Func: "min", Hi: &hi})
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d %s", status, body)
	}
	var js JobStatus
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatal(err)
	}
	if final := awaitJob(t, ts.URL, js.ID); final.State != jobDone {
		t.Fatalf("dist job: %+v", final)
	}
	select {
	case err := <-workerDone:
		if err != nil && ctx.Err() == nil {
			t.Fatalf("worker: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker did not observe job completion")
	}

	spans := serverTr.TraceSpans(clientTraceID)
	byName := spansByName(spans)
	for _, want := range []string{"serve.request", "serve.job", "serve.job.admission", "dist.job", "dist.lease", "dist.rect", "dist.merge"} {
		if len(byName[want]) == 0 {
			names := make(map[string]int)
			for n, ds := range byName {
				names[n] = len(ds)
			}
			t.Fatalf("trace %s has no %q span; spans by name: %v", clientTraceID, want, names)
		}
	}
	root := byName["serve.request"][0]
	job := byName["serve.job"][0]
	distJob := byName["dist.job"][0]
	if job.Parent != root.SpanID {
		t.Errorf("serve.job parent = %q, want serve.request %q", job.Parent, root.SpanID)
	}
	if distJob.Parent != job.SpanID {
		t.Errorf("dist.job parent = %q, want serve.job %q", distJob.Parent, job.SpanID)
	}
	leaseIDs := make(map[string]bool)
	for _, d := range byName["dist.lease"] {
		if d.Parent != distJob.SpanID {
			t.Errorf("dist.lease parent = %q, want dist.job %q", d.Parent, distJob.SpanID)
		}
		leaseIDs[d.SpanID] = true
	}
	if got := len(byName["dist.rect"]); got != 2 {
		t.Errorf("want 2 shipped dist.rect spans (one per rectangle), got %d", got)
	}
	for _, d := range byName["dist.rect"] {
		if !leaseIDs[d.Parent] {
			t.Errorf("dist.rect parent %q is not a dist.lease span (%v)", d.Parent, leaseIDs)
		}
		if d.Proc != "crncheck-worker" {
			t.Errorf("shipped dist.rect proc = %q, want the worker's", d.Proc)
		}
	}
	if d := byName["dist.merge"][0]; d.Parent != distJob.SpanID {
		t.Errorf("dist.merge parent = %q, want dist.job %q", d.Parent, distJob.SpanID)
	}

	// The worker's own ring: its rectangle spans and the httpx client
	// attempt spans for renew/result calls, all in the same trace.
	workerSpans := workerTr.TraceSpans(clientTraceID)
	wByName := spansByName(workerSpans)
	if len(wByName["dist.rect"]) == 0 {
		t.Fatalf("worker ring has no dist.rect span: %+v", wByName)
	}
	if len(wByName["httpx.attempt"]) == 0 {
		t.Errorf("worker ring has no httpx.attempt spans in the job trace: %+v", wByName)
	}

	// The whole cross-process span set exports deterministically.
	if _, err := trace.ExportJSON(spans); err != nil {
		t.Fatalf("ExportJSON: %v", err)
	}
}
