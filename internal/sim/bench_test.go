package sim

import (
	"fmt"
	"testing"

	"crncompose/internal/benchcrn"
	"crncompose/internal/vec"
)

// Simulator throughput: reactions fired per second for the two schedulers
// on the Fig 1 max CRN (4 reactions, transient overshoot).

func BenchmarkGillespieThroughput(b *testing.B) {
	for _, n := range []int64{1_000, 10_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			start := maxCRN().MustInitialConfig(vec.New(n, n))
			b.ResetTimer()
			var steps int64
			for i := 0; i < b.N; i++ {
				r := Gillespie(start, WithSeed(uint64(i)))
				steps += r.Steps
			}
			b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "reactions/s")
		})
	}
}

func BenchmarkFairRandomThroughput(b *testing.B) {
	for _, n := range []int64{1_000, 10_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			start := maxCRN().MustInitialConfig(vec.New(n, n))
			b.ResetTimer()
			var steps int64
			for i := 0; i < b.N; i++ {
				r := FairRandom(start, WithSeed(uint64(i)))
				steps += r.Steps
			}
			b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "reactions/s")
		})
	}
}

func BenchmarkEnsembleParallelScaling(b *testing.B) {
	start := maxCRN().MustInitialConfig(vec.New(2_000, 2_000))
	for _, trials := range []int{1, 8} {
		b.Run(fmt.Sprintf("trials=%d", trials), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Ensemble(FairRandom, start, trials, uint64(i))
			}
		})
	}
}

// BenchmarkGillespie measures ns per simulated reaction on a 128-reaction
// synthesized ring CRN — the workload where incremental propensity
// maintenance (O(dependents) per step) beats the old full recompute
// (O(reactions) per step).
func BenchmarkGillespie(b *testing.B) {
	const m, tokens, steps = 128, 64, 100_000
	c := benchcrn.Ring(m)
	start := c.MustInitialConfig(vec.New(tokens))
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		var fired int64
		for i := 0; i < b.N; i++ {
			r := Gillespie(start, WithSeed(uint64(i)+1), WithMaxSteps(steps))
			fired += r.Steps
		}
		if fired == 0 {
			b.Fatal("no reactions fired")
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(fired), "ns/step")
	})
	b.Run("full-recompute", func(b *testing.B) {
		b.ReportAllocs()
		var fired int64
		for i := 0; i < b.N; i++ {
			fired += benchcrn.GillespieFullRecompute(start, steps, uint64(i)+1)
		}
		if fired == 0 {
			b.Fatal("no reactions fired")
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(fired), "ns/step")
	})
}

// BenchmarkFairRandom mirrors the Gillespie ring benchmark for the fair
// scheduler: the incremental applicable-set maintenance (O(dependents) per
// step) against the old full ApplicableReactions walk (O(reactions)).
func BenchmarkFairRandom(b *testing.B) {
	const m, tokens, steps = 128, 64, 100_000
	start := benchcrn.Ring(m).MustInitialConfig(vec.New(tokens))
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		var fired int64
		for i := 0; i < b.N; i++ {
			r := FairRandom(start, WithSeed(uint64(i)+1), WithMaxSteps(steps))
			fired += r.Steps
		}
		if fired == 0 {
			b.Fatal("no reactions fired")
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(fired), "ns/step")
	})
	b.Run("full-walk", func(b *testing.B) {
		b.ReportAllocs()
		var fired int64
		for i := 0; i < b.N; i++ {
			fired += benchcrn.FairRandomFullWalk(start, steps, uint64(i)+1)
		}
		if fired == 0 {
			b.Fatal("no reactions fired")
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(fired), "ns/step")
	})
}
