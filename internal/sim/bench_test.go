package sim

import (
	"fmt"
	"testing"

	"crncompose/internal/vec"
)

// Simulator throughput: reactions fired per second for the two schedulers
// on the Fig 1 max CRN (4 reactions, transient overshoot).

func BenchmarkGillespieThroughput(b *testing.B) {
	for _, n := range []int64{1_000, 10_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			start := maxCRN().MustInitialConfig(vec.New(n, n))
			b.ResetTimer()
			var steps int64
			for i := 0; i < b.N; i++ {
				r := Gillespie(start, WithSeed(uint64(i)))
				steps += r.Steps
			}
			b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "reactions/s")
		})
	}
}

func BenchmarkFairRandomThroughput(b *testing.B) {
	for _, n := range []int64{1_000, 10_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			start := maxCRN().MustInitialConfig(vec.New(n, n))
			b.ResetTimer()
			var steps int64
			for i := 0; i < b.N; i++ {
				r := FairRandom(start, WithSeed(uint64(i)))
				steps += r.Steps
			}
			b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "reactions/s")
		})
	}
}

func BenchmarkEnsembleParallelScaling(b *testing.B) {
	start := maxCRN().MustInitialConfig(vec.New(2_000, 2_000))
	for _, trials := range []int{1, 8} {
		b.Run(fmt.Sprintf("trials=%d", trials), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Ensemble(FairRandom, start, trials, uint64(i))
			}
		})
	}
}
