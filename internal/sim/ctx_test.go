package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"crncompose/internal/benchcrn"
	"crncompose/internal/crn"
	"crncompose/internal/progress"
	"crncompose/internal/vec"
)

// loopedStart returns a configuration that never goes terminal (the ring
// keeps cycling), so a run only stops at MaxSteps — or at a cancellation.
func loopedStart(t *testing.T) crn.Config {
	t.Helper()
	c := benchcrn.Ring(64)
	start, err := c.InitialConfig(vec.New(50))
	if err != nil {
		t.Fatal(err)
	}
	return start
}

func TestSimCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := loopedStart(t)
	if _, err := GillespieCtx(ctx, start); !errors.Is(err, context.Canceled) {
		t.Fatalf("GillespieCtx err = %v, want wrapped context.Canceled", err)
	}
	if _, err := FairRandomCtx(ctx, start); !errors.Is(err, context.Canceled) {
		t.Fatalf("FairRandomCtx err = %v, want wrapped context.Canceled", err)
	}
	sched := func(_ crn.Config, applicable []int, _ int64) int { return applicable[0] }
	if _, err := RunScheduledCtx(ctx, start, sched); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunScheduledCtx err = %v, want wrapped context.Canceled", err)
	}
}

func TestSimCtxCancelMidRun(t *testing.T) {
	// The reporter fires every cancelWindow steps on the simulating
	// goroutine; canceling from it stops the run at the next window
	// boundary, deterministically.
	ctx, cancel := context.WithCancel(context.Background())
	var events int
	rep := progress.Func(func(e progress.Event) {
		events++
		cancel()
	})
	r, err := FairRandomCtx(ctx, loopedStart(t), WithMaxSteps(1<<30), WithProgress(rep))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if !reflect.DeepEqual(r, Result{}) {
		t.Fatalf("canceled run returned partial result: %+v", r)
	}
	if events == 0 {
		t.Fatal("no progress events before cancellation")
	}
}

func TestSimCtxCompletedRunBitIdentical(t *testing.T) {
	start := loopedStart(t)
	for name, pair := range map[string]struct {
		plain Runner
		ctxed RunnerCtx
	}{
		"gillespie":  {Gillespie, GillespieCtx},
		"fairrandom": {FairRandom, FairRandomCtx},
	} {
		want := pair.plain(start, WithMaxSteps(20_000), WithSeed(7))
		got, err := pair.ctxed(context.Background(), start, WithMaxSteps(20_000), WithSeed(7))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Steps != want.Steps || got.Time != want.Time || got.Converged != want.Converged ||
			got.Final.String() != want.Final.String() {
			t.Fatalf("%s: ctx path diverged:\n got %+v\nwant %+v", name, got, want)
		}
	}
}

func TestEnsembleCtxCancelAndComplete(t *testing.T) {
	start := loopedStart(t)

	// Canceled mid-ensemble: nil results, wrapped error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res, err := EnsembleCtx(ctx, FairRandomCtx, start, 8, 1, WithMaxSteps(1<<20)); err == nil || res != nil {
		t.Fatalf("canceled ensemble: res=%v err=%v", res, err)
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}

	// Completed: trial-for-trial identical to the plain Ensemble.
	want := Ensemble(FairRandom, start, 6, 42, WithMaxSteps(5_000))
	got, err := EnsembleCtx(context.Background(), FairRandomCtx, start, 6, 42, WithMaxSteps(5_000))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Steps != want[i].Steps || got[i].Final.String() != want[i].Final.String() {
			t.Fatalf("trial %d diverged: got %+v want %+v", i, got[i], want[i])
		}
	}
}
