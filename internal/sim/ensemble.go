package sim

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"crncompose/internal/crn"
)

// Runner is any single-trial simulation function (Gillespie, FairRandom, or
// a RunScheduled closure).
type Runner func(start crn.Config, opts ...Option) Result

// RunnerCtx is a cancellation-aware single-trial simulation function
// (GillespieCtx, FairRandomCtx, or a RunScheduledCtx closure).
type RunnerCtx func(ctx context.Context, start crn.Config, opts ...Option) (Result, error)

// Ensemble runs trials independent simulations of start in parallel,
// seeding trial i with baseSeed+i, and returns all results in trial order.
func Ensemble(run Runner, start crn.Config, trials int, baseSeed uint64, opts ...Option) []Result {
	results := make([]Result, trials)
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int, trials)
	for i := 0; i < trials; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				trialOpts := append(append([]Option(nil), opts...), WithSeed(baseSeed+uint64(i)))
				results[i] = run(start, trialOpts...)
			}
		}()
	}
	wg.Wait()
	return results
}

// EnsembleCtx is Ensemble under a cancellation context: each trial runs on
// the ctx-aware runner, and workers stop claiming trials once the context
// is canceled. A canceled ensemble returns nil results and the first
// wrapped ctx.Err() a trial observed — never a partially filled slice — and
// a completed ensemble is trial-for-trial identical to Ensemble's (same
// per-trial seeding, same trial order).
func EnsembleCtx(ctx context.Context, run RunnerCtx, start crn.Config, trials int, baseSeed uint64, opts ...Option) ([]Result, error) {
	results := make([]Result, trials)
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	next := make(chan int, trials)
	for i := 0; i < trials; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				trialOpts := append(append([]Option(nil), opts...), WithSeed(baseSeed+uint64(i)))
				r, err := run(ctx, start, trialOpts...)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					// Keep draining the channel: each remaining trial fails
					// on its first poll, so the ensemble unwinds promptly
					// without leaving goroutines parked on unclaimed trials.
					continue
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// Stats summarizes an ensemble's final output counts.
type Stats struct {
	Trials      int
	Converged   int
	MeanOutput  float64
	MinOutput   int64
	MaxOutput   int64
	MeanSteps   float64
	MedianSteps int64
	// AllEqual is true when every converged trial produced the same output.
	AllEqual bool
}

// Summarize computes ensemble statistics over results.
func Summarize(results []Result) Stats {
	s := Stats{Trials: len(results), AllEqual: true}
	if len(results) == 0 {
		return s
	}
	var sumY, sumSteps float64
	steps := make([]int64, 0, len(results))
	first := true
	var firstY int64
	for _, r := range results {
		y := r.Final.Output()
		if first {
			s.MinOutput, s.MaxOutput, firstY = y, y, y
			first = false
		}
		if y < s.MinOutput {
			s.MinOutput = y
		}
		if y > s.MaxOutput {
			s.MaxOutput = y
		}
		if y != firstY {
			s.AllEqual = false
		}
		if r.Converged {
			s.Converged++
		}
		sumY += float64(y)
		sumSteps += float64(r.Steps)
		steps = append(steps, r.Steps)
	}
	s.MeanOutput = sumY / float64(len(results))
	s.MeanSteps = sumSteps / float64(len(results))
	sort.Slice(steps, func(i, j int) bool { return steps[i] < steps[j] })
	s.MedianSteps = steps[len(steps)/2]
	return s
}
