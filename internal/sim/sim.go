// Package sim provides stochastic simulation of discrete CRNs:
//
//   - an exact Gillespie stochastic simulation algorithm (direct method)
//     with combinatorial propensities for reactions of arbitrary order,
//   - a fair uniform-random scheduler that realizes the probability-1
//     convergence semantics of stable computation (footnote 2 of the paper),
//   - adversarial schedulers used to demonstrate output overshoot in
//     non-output-oblivious compositions (Section 1.2),
//   - a parallel ensemble runner with per-trial deterministic seeding.
//
// All randomness flows through seeded PCG generators so every run is
// reproducible.
package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"slices"

	"crncompose/internal/crn"
	"crncompose/internal/progress"
)

// Result is the outcome of one simulated trial.
type Result struct {
	// Final is the configuration when simulation stopped.
	Final crn.Config
	// Steps is the number of reactions fired.
	Steps int64
	// Time is the simulated (Gillespie) time; zero for discrete schedulers.
	Time float64
	// Converged reports that no reaction was applicable (terminal), or that
	// the silence criterion was met.
	Converged bool
}

// Options configure a simulation run.
type Options struct {
	// MaxSteps bounds the number of reactions fired (default 50M).
	MaxSteps int64
	// Seed seeds the PCG generator.
	Seed uint64
	// SilentSteps: for CRNs that never become terminal (e.g. catalytic
	// loops), stop once the output count has been unchanged for this many
	// consecutive steps AND every applicable reaction is output-neutral.
	// The second conjunct is what keeps the criterion sound for stable
	// computation: a run is only declared converged while no applicable
	// reaction could still change the output. Zero disables the criterion.
	SilentSteps int64
	// Progress, when non-nil, receives a "sim" event every cancelWindow
	// steps from the simulating goroutine (Done = steps fired, Total =
	// MaxSteps). Attaching a Reporter never changes the step sequence.
	Progress progress.Reporter

	// ctx is the run's cancellation context, attached only by the *Ctx
	// entry points. It is polled every cancelWindow steps — a deterministic
	// boundary, so same-seed runs that complete are bit-identical whether
	// or not a context is attached; a canceled run returns a zero Result
	// and a wrapped ctx.Err(), never a partial trajectory.
	ctx context.Context
}

// cancelWindow is the step stride between cancellation polls and progress
// posts of every simulator loop: coarse enough to be free next to the
// per-step propensity work, fine enough that cancellation lands in
// microseconds.
const cancelWindow = 4096

// ctxErr polls the run's context; nil means "keep going". The returned
// error wraps ctx.Err(), so errors.Is(err, context.Canceled) holds.
func (o *Options) ctxErr() error {
	if o.ctx == nil {
		return nil
	}
	select {
	case <-o.ctx.Done():
		return fmt.Errorf("sim: run canceled: %w", o.ctx.Err())
	default:
		return nil
	}
}

// Option mutates Options.
type Option func(*Options)

// WithMaxSteps bounds the number of reaction firings.
func WithMaxSteps(n int64) Option { return func(o *Options) { o.MaxSteps = n } }

// WithSeed sets the RNG seed.
func WithSeed(s uint64) Option { return func(o *Options) { o.Seed = s } }

// WithSilentSteps sets the silence-based convergence criterion.
func WithSilentSteps(n int64) Option { return func(o *Options) { o.SilentSteps = n } }

// WithProgress attaches a progress.Reporter to the run (see
// Options.Progress).
func WithProgress(r progress.Reporter) Option { return func(o *Options) { o.Progress = r } }

func buildOptions(opts []Option) Options {
	o := Options{MaxSteps: 50_000_000, Seed: 1}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// compiledSim holds the dense tables the simulators need. Every table is a
// view of state memoized on the CRN itself behind sync.Once guards — the
// merged reactant rows (crn.ReactantsAt, the single source of
// merged-reactant semantics, so applicability and propensity always agree)
// and the reaction→reaction dependency lists (crn.DependentsAt) that make
// per-step propensity and applicable-set maintenance O(dependents of the
// fired reaction) instead of O(reactions). The per-reaction output deltas
// (backing the silence criterion's "every applicable reaction is
// output-neutral" check) are computed in newCompiledSim — and the whole
// compiledSim is itself memoized on the CRN (see compileSim), so a run pays
// the O(reactions) assembly at most once per CRN, not once per call.
type compiledSim struct {
	reactants   [][]crn.IdxCoeff
	deps        [][]int32
	outIdx      int
	outDelta    []int64 // net output change of each reaction
	outChanging []int32 // reactions with outDelta != 0
}

// compileSim returns the per-CRN compiled view, memoized on the CRN itself
// behind its sync.Once-guarded sim slot: the first simulation run on a CRN
// builds the view, every later Gillespie/FairRandom call (ensembles of short
// replicates included) reuses it at zero cost. The view is immutable after
// build, so sharing it across concurrent ensemble trials is safe.
func compileSim(c *crn.CRN) *compiledSim {
	return c.SimSlot(func() any { return newCompiledSim(c) }).(*compiledSim)
}

func newCompiledSim(c *crn.CRN) *compiledSim {
	nR := c.NumReactions()
	cs := &compiledSim{
		reactants: make([][]crn.IdxCoeff, nR),
		deps:      make([][]int32, nR),
		outIdx:    c.OutputIndex(),
		outDelta:  make([]int64, nR),
	}
	for ri := 0; ri < nR; ri++ {
		cs.reactants[ri] = c.ReactantsAt(ri)
		cs.deps[ri] = c.DependentsAt(ri)
		for _, d := range c.DeltaAt(ri) {
			if d.Idx == cs.outIdx {
				cs.outDelta[ri] = d.Coeff
			}
		}
		if cs.outDelta[ri] != 0 {
			cs.outChanging = append(cs.outChanging, int32(ri))
		}
	}
	return cs
}

// outputSilent reports the second half of the SilentSteps contract: no
// currently-applicable reaction can change the output count. Only the
// precompiled output-changing reactions are probed.
func (cs *compiledSim) outputSilent(c *crn.CRN, counts []int64) bool {
	for _, ri := range cs.outChanging {
		if c.ApplicableAt(counts, int(ri)) {
			return false
		}
	}
	return true
}

// propensityOn returns the mass-action combinatorial count for the merged
// reactant row terms in the dense count row: the number of distinct reactant
// multisets, Π_species (n choose k) (falling factorials over factorials).
func propensityOn(terms []crn.IdxCoeff, counts []int64) float64 {
	p := 1.0
	for _, t := range terms {
		n := counts[t.Idx]
		if n < t.Coeff {
			return 0
		}
		for j := int64(0); j < t.Coeff; j++ {
			p *= float64(n - j)
		}
		for j := int64(2); j <= t.Coeff; j++ {
			p /= float64(j)
		}
	}
	if math.IsInf(p, 0) || math.IsNaN(p) {
		return math.MaxFloat64 / 2
	}
	return p
}

// propensityAt returns the mass-action combinatorial count for reaction ri
// in the dense count row.
func (cs *compiledSim) propensityAt(counts []int64, ri int) float64 {
	return propensityOn(cs.reactants[ri], counts)
}

// propensity returns the mass-action combinatorial count for reaction ri in
// cur. Duplicate reactant terms naming the same species are merged, so the
// count is always the true multiset count. It reads the reactant tables
// memoized on the CRN — nothing is recompiled per call.
func propensity(cur crn.Config, ri int) float64 {
	return propensityOn(cur.CRN().ReactantsAt(ri), cur.CountsRef())
}

// Gillespie runs the exact stochastic simulation algorithm (direct method)
// from the given configuration until no reaction is applicable, the silence
// criterion fires, or the step budget is exhausted. All rate constants are
// taken as 1; propensities are the combinatorial counts
// Π_species C(S) choose coeff × coeff!  (i.e. falling factorials), the
// standard mass-action form for discrete CRNs.
//
// Propensities are maintained incrementally: firing a reaction only
// recomputes the propensities of reactions sharing a species with its net
// change (the compiled dependency graph), with a periodic full refresh
// bounding floating-point drift in the running total. All randomness —
// including the exponential waiting times — is drawn from the seeded
// generator, so same-seed runs reproduce steps, simulated time, and final
// configuration exactly.
func Gillespie(start crn.Config, opts ...Option) Result {
	r, _ := gillespie(start, buildOptions(opts)) // no ctx attached: cannot fail
	return r
}

// GillespieCtx is Gillespie under a cancellation context, polled every
// cancelWindow steps: a canceled run returns a zero Result and a wrapped
// ctx.Err(), and a completed same-seed run is bit-identical to Gillespie's.
func GillespieCtx(ctx context.Context, start crn.Config, opts ...Option) (Result, error) {
	o := buildOptions(opts)
	o.ctx = ctx
	return gillespie(start, o)
}

func gillespie(start crn.Config, o Options) (Result, error) {
	rng := rand.New(rand.NewPCG(o.Seed, 0x9E3779B97F4A7C15))
	c := start.CRN()
	cs := compileSim(c)
	counts := slices.Clone([]int64(start.CountsRef()))
	nR := c.NumReactions()
	props := make([]float64, nR)

	total := 0.0
	refresh := func() {
		total = 0
		for ri := 0; ri < nR; ri++ {
			props[ri] = cs.propensityAt(counts, ri)
			total += props[ri]
		}
	}
	refresh()

	var steps int64
	var t float64
	var silent int64
	lastY := counts[cs.outIdx]
	// Propensities are integers, so the running total is exact while it
	// stays below 2^53; the periodic refresh covers the regime beyond that.
	const refreshEvery = 1 << 16

	for steps < o.MaxSteps {
		if steps%cancelWindow == 0 {
			if steps > 0 {
				progress.Post(o.Progress, "sim", steps, o.MaxSteps)
			}
			if err := o.ctxErr(); err != nil {
				return Result{}, err
			}
		}
		if total <= 0 {
			refresh()
			if total <= 0 {
				return Result{Final: c.DenseConfig(counts), Steps: steps, Time: t, Converged: true}, nil
			}
		}
		// Exponential waiting time with rate = total propensity.
		t += rng.ExpFloat64() / total
		ri := pick(props, rng.Float64()*total)
		if ri < 0 {
			// Drift left a positive total over all-zero propensities;
			// resynchronize and retry (the convergence check above fires if
			// the system is truly dead).
			refresh()
			continue
		}
		c.ApplyInto(counts, counts, ri)
		steps++
		if steps%refreshEvery == 0 {
			refresh()
		} else {
			for _, rj := range cs.deps[ri] {
				np := cs.propensityAt(counts, int(rj))
				total += np - props[rj]
				props[rj] = np
			}
		}
		if y := counts[cs.outIdx]; y != lastY {
			lastY = y
			silent = 0
		} else {
			silent++
		}
		// Both halves of the SilentSteps contract: the output has been
		// unchanged long enough AND no applicable reaction could still change
		// it. Applicability is probed exactly (not via the drift-prone
		// incremental propensities).
		if o.SilentSteps > 0 && silent >= o.SilentSteps && cs.outputSilent(c, counts) {
			return Result{Final: c.DenseConfig(counts), Steps: steps, Time: t, Converged: true}, nil
		}
	}
	return Result{Final: c.DenseConfig(counts), Steps: steps, Time: t, Converged: false}, nil
}

// pick selects the reaction whose propensity interval contains u, scanning
// only positive entries so drift in the running total can never select an
// inapplicable reaction. Returns -1 if every propensity is zero.
func pick(props []float64, u float64) int {
	last := -1
	for ri, p := range props {
		if p <= 0 {
			continue
		}
		last = ri
		u -= p
		if u < 0 {
			return ri
		}
	}
	return last
}

// FairRandom runs a uniform-random applicable-reaction scheduler: at each
// step one applicable reaction is chosen uniformly at random. Under this
// scheduler every infinitely-often-reachable configuration is reached with
// probability 1, so for stably-computing CRNs the final output is f(x) with
// probability 1. This is cheaper than Gillespie and preserves the
// reachability semantics (which are rate-independent).
//
// The applicable set is maintained incrementally: firing a reaction only
// re-probes the applicability of reactions sharing a species with its net
// change (the compiled dependency graph), O(dependents) per step instead of
// a full O(reactions) walk. The set is kept sorted ascending — exactly the
// order the full walk produced — so same-seed runs reproduce the
// pre-incremental step sequences bit for bit.
func FairRandom(start crn.Config, opts ...Option) Result {
	r, _ := fairRandom(start, buildOptions(opts)) // no ctx attached: cannot fail
	return r
}

// FairRandomCtx is FairRandom under a cancellation context, polled every
// cancelWindow steps: a canceled run returns a zero Result and a wrapped
// ctx.Err(), and a completed same-seed run is bit-identical to FairRandom's.
func FairRandomCtx(ctx context.Context, start crn.Config, opts ...Option) (Result, error) {
	o := buildOptions(opts)
	o.ctx = ctx
	return fairRandom(start, o)
}

func fairRandom(start crn.Config, o Options) (Result, error) {
	rng := rand.New(rand.NewPCG(o.Seed, 0xDA942042E4DD58B5))
	c := start.CRN()
	cs := compileSim(c)
	counts := slices.Clone([]int64(start.CountsRef()))
	nR := c.NumReactions()

	isApp := make([]bool, nR)
	applicable := make([]int32, 0, nR)
	for ri := 0; ri < nR; ri++ {
		if c.ApplicableAt(counts, ri) {
			isApp[ri] = true
			applicable = append(applicable, int32(ri))
		}
	}

	var steps int64
	var silent int64
	lastY := counts[cs.outIdx]

	for steps < o.MaxSteps {
		if steps%cancelWindow == 0 {
			if steps > 0 {
				progress.Post(o.Progress, "sim", steps, o.MaxSteps)
			}
			if err := o.ctxErr(); err != nil {
				return Result{}, err
			}
		}
		if len(applicable) == 0 {
			return Result{Final: c.DenseConfig(counts), Steps: steps, Converged: true}, nil
		}
		ri := int(applicable[rng.IntN(len(applicable))])
		c.ApplyInto(counts, counts, ri)
		steps++
		for _, rj := range cs.deps[ri] {
			now := c.ApplicableAt(counts, int(rj))
			if now == isApp[rj] {
				continue
			}
			isApp[rj] = now
			k, _ := slices.BinarySearch(applicable, rj)
			if now {
				applicable = slices.Insert(applicable, k, rj)
			} else {
				applicable = slices.Delete(applicable, k, k+1)
			}
		}
		if y := counts[cs.outIdx]; y != lastY {
			lastY = y
			silent = 0
		} else {
			silent++
		}
		if o.SilentSteps > 0 && silent >= o.SilentSteps && cs.outputSilent(c, counts) {
			return Result{Final: c.DenseConfig(counts), Steps: steps, Converged: true}, nil
		}
	}
	return Result{Final: c.DenseConfig(counts), Steps: steps, Converged: false}, nil
}

// Scheduler selects the next reaction to fire among the applicable ones.
// Returning -1 stops the run. Used to build adversarial schedules.
type Scheduler func(cur crn.Config, applicable []int, step int64) int

// RunScheduled drives a simulation with a custom scheduler.
func RunScheduled(start crn.Config, sched Scheduler, opts ...Option) Result {
	r, _ := runScheduled(start, sched, buildOptions(opts)) // no ctx attached: cannot fail
	return r
}

// RunScheduledCtx is RunScheduled under a cancellation context, polled
// every cancelWindow steps (see GillespieCtx for the semantics).
func RunScheduledCtx(ctx context.Context, start crn.Config, sched Scheduler, opts ...Option) (Result, error) {
	o := buildOptions(opts)
	o.ctx = ctx
	return runScheduled(start, sched, o)
}

func runScheduled(start crn.Config, sched Scheduler, o Options) (Result, error) {
	cur := start.Clone()
	var applicable []int
	var steps int64
	for steps < o.MaxSteps {
		if steps%cancelWindow == 0 {
			if steps > 0 {
				progress.Post(o.Progress, "sim", steps, o.MaxSteps)
			}
			if err := o.ctxErr(); err != nil {
				return Result{}, err
			}
		}
		applicable = cur.ApplicableReactions(applicable)
		if len(applicable) == 0 {
			return Result{Final: cur, Steps: steps, Converged: true}, nil
		}
		ri := sched(cur, applicable, steps)
		if ri < 0 {
			return Result{Final: cur, Steps: steps, Converged: false}, nil
		}
		found := false
		for _, a := range applicable {
			if a == ri {
				found = true
				break
			}
		}
		if !found {
			panic(fmt.Sprintf("sim: scheduler chose inapplicable reaction %d", ri))
		}
		cur.ApplyInPlace(ri)
		steps++
	}
	return Result{Final: cur, Steps: steps, Converged: false}, nil
}

// PreferScheduler returns a Scheduler that always fires the applicable
// reaction whose index appears earliest in priority; reactions not listed
// are considered last in index order. Used to realize adversarial reaction
// orders such as the max-CRN overshoot of Section 1.2.
func PreferScheduler(priority []int) Scheduler {
	rank := make(map[int]int, len(priority))
	for i, ri := range priority {
		rank[ri] = i
	}
	return func(_ crn.Config, applicable []int, _ int64) int {
		best := applicable[0]
		bestRank := rankOf(rank, best)
		for _, ri := range applicable[1:] {
			if r := rankOf(rank, ri); r < bestRank {
				best, bestRank = ri, r
			}
		}
		return best
	}
}

func rankOf(rank map[int]int, ri int) int {
	if r, ok := rank[ri]; ok {
		return r
	}
	return 1 << 30 // after all prioritized reactions
}
