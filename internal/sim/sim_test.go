package sim

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"crncompose/internal/benchcrn"
	"crncompose/internal/crn"
	"crncompose/internal/vec"
)

func minCRN() *crn.CRN {
	return crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}, {Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
}

func maxCRN() *crn.CRN {
	return crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}}, Products: []crn.Term{{Coeff: 1, Sp: "Z1"}, {Coeff: 1, Sp: "Y"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Z2"}, {Coeff: 1, Sp: "Y"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "Z1"}, {Coeff: 1, Sp: "Z2"}}, Products: []crn.Term{{Coeff: 1, Sp: "K"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "K"}, {Coeff: 1, Sp: "Y"}}, Products: nil},
	})
}

func TestGillespieMin(t *testing.T) {
	start := minCRN().MustInitialConfig(vec.New(500, 300))
	r := Gillespie(start, WithSeed(7))
	if !r.Converged {
		t.Fatal("did not converge")
	}
	if got := r.Final.Output(); got != 300 {
		t.Errorf("min(500,300) = %d", got)
	}
	if r.Time <= 0 {
		t.Error("Gillespie time not advanced")
	}
}

func TestGillespieMaxConverges(t *testing.T) {
	start := maxCRN().MustInitialConfig(vec.New(40, 25))
	r := Gillespie(start, WithSeed(3))
	if !r.Converged {
		t.Fatal("did not converge")
	}
	if got := r.Final.Output(); got != 40 {
		t.Errorf("max(40,25) = %d", got)
	}
}

func TestFairRandomMatchesGillespieSemantics(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		r := FairRandom(maxCRN().MustInitialConfig(vec.New(12, 30)), WithSeed(seed))
		if !r.Converged || r.Final.Output() != 30 {
			t.Fatalf("seed %d: converged=%v output=%d", seed, r.Converged, r.Final.Output())
		}
	}
}

func TestDeterministicSeeding(t *testing.T) {
	start := maxCRN().MustInitialConfig(vec.New(20, 20))
	a := FairRandom(start, WithSeed(42))
	b := FairRandom(start, WithSeed(42))
	if a.Steps != b.Steps || a.Final.Key() != b.Final.Key() {
		t.Error("same seed produced different runs")
	}
}

func TestMaxStepsBudget(t *testing.T) {
	// X → X + Y never terminates; the budget must stop it.
	c := crn.MustNew([]crn.Species{"X"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X"}}, Products: []crn.Term{{Coeff: 1, Sp: "X"}, {Coeff: 1, Sp: "Y"}}},
	})
	r := FairRandom(c.MustInitialConfig(vec.New(1)), WithMaxSteps(100))
	if r.Converged || r.Steps != 100 {
		t.Fatalf("budget not honored: %+v", r)
	}
}

func TestSilentStepsCriterion(t *testing.T) {
	// X → X (output-neutral loop): with SilentSteps the run converges.
	c := crn.MustNew([]crn.Species{"X"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X"}}, Products: []crn.Term{{Coeff: 1, Sp: "X"}}},
		{Reactants: []crn.Term{{Coeff: 2, Sp: "X"}}, Products: []crn.Term{{Coeff: 2, Sp: "X"}, {Coeff: 1, Sp: "Y"}}},
	})
	r := FairRandom(c.MustInitialConfig(vec.New(1)), WithSilentSteps(50), WithMaxSteps(10000))
	if !r.Converged {
		t.Fatal("silence criterion did not trigger")
	}
}

// silentTrapGillespie is the regression CRN for the false-convergence bug:
// an output-neutral loop whose propensity (200) drowns out an
// always-applicable output-changing reaction 2W → 2W + Y (propensity 1), so
// the output routinely sits unchanged for SilentSteps steps while a reaction
// that can change it stays applicable. The pre-fix criterion — which checked
// only the first half of the SilentSteps contract — declared Converged here.
func silentTrapGillespie(t *testing.T) crn.Config {
	t.Helper()
	c := crn.MustNew([]crn.Species{"X", "W"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X"}}, Products: []crn.Term{{Coeff: 1, Sp: "X"}}},
		{Reactants: []crn.Term{{Coeff: 2, Sp: "W"}}, Products: []crn.Term{{Coeff: 2, Sp: "W"}, {Coeff: 1, Sp: "Y"}}},
	})
	cfg, err := c.ConfigFromCounts(map[crn.Species]int64{"X": 200, "W": 2})
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// silentTrapFair is the FairRandom variant: twelve neutral loops dilute the
// uniform choice so the output-changing reaction fires rarely enough for
// 50-step silent streaks to occur while it remains applicable.
func silentTrapFair(t *testing.T) crn.Config {
	t.Helper()
	var rs []crn.Reaction
	counts := map[crn.Species]int64{"W": 2}
	for i := 0; i < 12; i++ {
		sp := crn.Species(fmt.Sprintf("N%02d", i))
		rs = append(rs, crn.Reaction{Reactants: []crn.Term{{Coeff: 1, Sp: sp}}, Products: []crn.Term{{Coeff: 1, Sp: sp}}})
		counts[sp] = 1
	}
	rs = append(rs, crn.Reaction{Reactants: []crn.Term{{Coeff: 2, Sp: "W"}}, Products: []crn.Term{{Coeff: 2, Sp: "W"}, {Coeff: 1, Sp: "Y"}}})
	c := crn.MustNew([]crn.Species{"W"}, "Y", "", rs)
	cfg, err := c.ConfigFromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestSilenceCriterionRequiresOutputNeutralApplicable(t *testing.T) {
	// The output-changing reaction is catalytic, hence applicable forever:
	// the silence criterion must never declare convergence, so every run
	// exhausts its step budget. On the pre-fix code each of these seeds
	// falsely returned Converged within a few hundred steps.
	gcfg := silentTrapGillespie(t)
	fcfg := silentTrapFair(t)
	for seed := uint64(1); seed <= 5; seed++ {
		r := Gillespie(gcfg, WithSeed(seed), WithSilentSteps(50), WithMaxSteps(10_000))
		if r.Converged {
			t.Errorf("gillespie seed %d: false convergence at step %d (output-changing reaction still applicable)", seed, r.Steps)
		}
		if r.Steps != 10_000 {
			t.Errorf("gillespie seed %d: stopped at %d steps without converging", seed, r.Steps)
		}
		if !r.Final.Applicable(1) {
			t.Fatalf("gillespie seed %d: trap reaction became inapplicable — CRN does not exercise the bug", seed)
		}
		fr := FairRandom(fcfg, WithSeed(seed), WithSilentSteps(50), WithMaxSteps(10_000))
		if fr.Converged {
			t.Errorf("fairrandom seed %d: false convergence at step %d", seed, fr.Steps)
		}
		if !fr.Final.Applicable(12) {
			t.Fatalf("fairrandom seed %d: trap reaction became inapplicable", seed)
		}
	}
	// The criterion must still fire when the output-changing reaction is
	// genuinely inapplicable (the sound half of the old behavior).
	c := crn.MustNew([]crn.Species{"X"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X"}}, Products: []crn.Term{{Coeff: 1, Sp: "X"}}},
		{Reactants: []crn.Term{{Coeff: 2, Sp: "X"}}, Products: []crn.Term{{Coeff: 2, Sp: "X"}, {Coeff: 1, Sp: "Y"}}},
	})
	start := c.MustInitialConfig(vec.New(1))
	if r := FairRandom(start, WithSilentSteps(50), WithMaxSteps(10_000)); !r.Converged {
		t.Error("fairrandom: silence criterion did not fire with only neutral reactions applicable")
	}
	if r := Gillespie(start, WithSilentSteps(50), WithMaxSteps(10_000)); !r.Converged {
		t.Error("gillespie: silence criterion did not fire with only neutral reactions applicable")
	}
}

func TestPropensityDoesNotRecompile(t *testing.T) {
	// propensity() reads the reactant tables memoized on the CRN; after a
	// warm-up call it must not allocate (the old implementation recompiled
	// every reaction row and the dependency graph per invocation).
	cfg := maxCRN().MustInitialConfig(vec.New(5, 3))
	propensity(cfg, 0)
	if n := testing.AllocsPerRun(100, func() { propensity(cfg, 2) }); n != 0 {
		t.Errorf("propensity allocates %v times per call, want 0", n)
	}
}

// fairRandomReference is the pre-incremental FairRandom step loop — a full
// ApplicableReactions walk per step — kept as the oracle that the
// incremental applicable-set maintenance reproduces its step sequences bit
// for bit (same seed ⇒ same choices ⇒ same trajectory).
func fairRandomReference(start crn.Config, o Options) Result {
	rng := rand.New(rand.NewPCG(o.Seed, 0xDA942042E4DD58B5))
	cur := start.Clone()
	var applicable []int
	var steps, silent int64
	lastY := cur.Output()
	for steps < o.MaxSteps {
		applicable = cur.ApplicableReactions(applicable)
		if len(applicable) == 0 {
			return Result{Final: cur, Steps: steps, Converged: true}
		}
		cur.ApplyInPlace(applicable[rng.IntN(len(applicable))])
		steps++
		if y := cur.Output(); y != lastY {
			lastY = y
			silent = 0
		} else {
			silent++
		}
		if o.SilentSteps > 0 && silent >= o.SilentSteps && outputNeutralApplicableOnly(cur) {
			return Result{Final: cur, Steps: steps, Converged: true}
		}
	}
	return Result{Final: cur, Steps: steps, Converged: false}
}

func outputNeutralApplicableOnly(cur crn.Config) bool {
	c := cur.CRN()
	for _, ri := range cur.ApplicableReactions(nil) {
		if c.Reactions[ri].Net(c.Output) != 0 {
			return false
		}
	}
	return true
}

func TestFairRandomIncrementalMatchesReference(t *testing.T) {
	cases := map[string]crn.Config{
		"min":       minCRN().MustInitialConfig(vec.New(40, 25)),
		"max":       maxCRN().MustInitialConfig(vec.New(30, 27)),
		"ring":      benchcrn.Ring(32).MustInitialConfig(vec.New(16)),
		"trap-fair": silentTrapFair(t),
	}
	for name, start := range cases {
		for seed := uint64(1); seed <= 8; seed++ {
			o := Options{MaxSteps: 5_000, Seed: seed, SilentSteps: 64}
			want := fairRandomReference(start, o)
			got := FairRandom(start, WithSeed(seed), WithMaxSteps(o.MaxSteps), WithSilentSteps(o.SilentSteps))
			if got.Steps != want.Steps || got.Converged != want.Converged || got.Final.Key() != want.Final.Key() {
				t.Fatalf("%s seed %d: incremental (steps=%d conv=%v %s) != reference (steps=%d conv=%v %s)",
					name, seed, got.Steps, got.Converged, got.Final, want.Steps, want.Converged, want.Final)
			}
		}
	}
}

func TestPropensityCombinatorics(t *testing.T) {
	// 2X → Y has propensity C(n,2); verify indirectly: with n=1 the
	// reaction cannot fire, with n=2 it can.
	c := crn.MustNew([]crn.Species{"X"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 2, Sp: "X"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
	if p := propensity(c.MustInitialConfig(vec.New(1)), 0); p != 0 {
		t.Errorf("propensity with 1 copy = %v", p)
	}
	if p := propensity(c.MustInitialConfig(vec.New(4)), 0); p != 6 {
		t.Errorf("propensity with 4 copies = %v, want C(4,2)=6", p)
	}
	if p := propensity(c.MustInitialConfig(vec.New(3)), 0); p != 3 {
		t.Errorf("propensity with 3 copies = %v, want 3", p)
	}
}

func TestRunScheduledAdversarial(t *testing.T) {
	// Adversarial schedule for max: exhaust inputs through reactions 0,1
	// first; the overshoot is then corrected by reactions 2,3 — max still
	// stably computes. The scheduler witnesses the transient overshoot.
	c := maxCRN()
	var peak int64
	sched := PreferScheduler([]int{0, 1, 2, 3})
	r := RunScheduled(c.MustInitialConfig(vec.New(5, 5)), func(cur crn.Config, app []int, step int64) int {
		if y := cur.Output(); y > peak {
			peak = y
		}
		return sched(cur, app, step)
	})
	if !r.Converged {
		t.Fatal("did not converge")
	}
	if peak != 10 {
		t.Errorf("peak output %d, want 10 (full overshoot x1+x2)", peak)
	}
	if r.Final.Output() != 5 {
		t.Errorf("final output %d, want 5", r.Final.Output())
	}
}

func TestEnsembleParallel(t *testing.T) {
	start := maxCRN().MustInitialConfig(vec.New(15, 9))
	results := Ensemble(FairRandom, start, 32, 100)
	if len(results) != 32 {
		t.Fatalf("got %d results", len(results))
	}
	st := Summarize(results)
	if st.Converged != 32 || !st.AllEqual || st.MinOutput != 15 || st.MaxOutput != 15 {
		t.Fatalf("stats: %+v", st)
	}
	if st.MeanSteps <= 0 || st.MedianSteps <= 0 {
		t.Error("step statistics missing")
	}
}

func TestEnsembleDeterministicAcrossRuns(t *testing.T) {
	start := maxCRN().MustInitialConfig(vec.New(8, 8))
	a := Summarize(Ensemble(FairRandom, start, 8, 999))
	b := Summarize(Ensemble(FairRandom, start, 8, 999))
	if a.MeanSteps != b.MeanSteps {
		t.Error("ensemble not reproducible with same base seed")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	st := Summarize(nil)
	if st.Trials != 0 {
		t.Error("empty summary wrong")
	}
}

func TestGillespieSameSeedFullyReproducible(t *testing.T) {
	// Waiting times must come from the seeded generator too: same seed ⇒
	// identical steps, identical simulated time (bit-for-bit), identical
	// final configuration.
	start := maxCRN().MustInitialConfig(vec.New(30, 27))
	a := Gillespie(start, WithSeed(99))
	b := Gillespie(start, WithSeed(99))
	if a.Steps != b.Steps {
		t.Fatalf("steps %d != %d", a.Steps, b.Steps)
	}
	if a.Time != b.Time {
		t.Fatalf("time %v != %v", a.Time, b.Time)
	}
	if a.Final.Key() != b.Final.Key() {
		t.Fatalf("final %s != %s", a.Final, b.Final)
	}
	if a.Time <= 0 {
		t.Fatal("time did not advance")
	}
	// And a different seed takes a different trajectory (overwhelmingly).
	c := Gillespie(start, WithSeed(100))
	if a.Steps == c.Steps && a.Time == c.Time {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestPropensityDependencyGraphSound(t *testing.T) {
	// For every reaction ri and every reaction rj NOT in deps[ri], firing ri
	// must leave rj's propensity unchanged — the property that makes the
	// incremental maintenance in Gillespie exact.
	for name, c := range map[string]*crn.CRN{"min": minCRN(), "max": maxCRN()} {
		cs := compileSim(c)
		nR := c.NumReactions()
		cfgs := []vec.V{vec.New(5, 3), vec.New(1, 1), vec.New(0, 4)}
		for _, x := range cfgs {
			cfg := c.MustInitialConfig(x)
			// Walk a few steps to hit non-initial configurations too.
			for step := 0; step < 8; step++ {
				counts := cfg.CountsRef()
				for ri := 0; ri < nR; ri++ {
					if !c.ApplicableAt(counts, ri) {
						continue
					}
					after := make([]int64, len(counts))
					c.ApplyInto(after, counts, ri)
					for rj := 0; rj < nR; rj++ {
						inDeps := false
						for _, d := range cs.deps[ri] {
							if int(d) == rj {
								inDeps = true
								break
							}
						}
						if inDeps {
							continue
						}
						before := cs.propensityAt(counts, rj)
						got := cs.propensityAt(after, rj)
						if before != got {
							t.Fatalf("%s x=%v: firing %d changed propensity of %d (%v→%v) but %d ∉ deps[%d]=%v",
								name, x, ri, rj, before, got, rj, ri, cs.deps[ri])
						}
					}
				}
				app := cfg.ApplicableReactions(nil)
				if len(app) == 0 {
					break
				}
				cfg.ApplyInPlace(app[step%len(app)])
			}
		}
	}
}

func TestGillespieMergedDuplicateReactantTerms(t *testing.T) {
	// A species listed twice among the reactants must behave like one term
	// with the summed coefficient: 2 distinct X needed, propensity C(n,2).
	c := crn.MustNew([]crn.Species{"X"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X"}, {Coeff: 1, Sp: "X"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
	if p := propensity(c.MustInitialConfig(vec.New(1)), 0); p != 0 {
		t.Errorf("propensity with 1 copy = %v, want 0", p)
	}
	if p := propensity(c.MustInitialConfig(vec.New(4)), 0); p != 6 {
		t.Errorf("propensity with 4 copies = %v, want C(4,2) = 6", p)
	}
	r := Gillespie(c.MustInitialConfig(vec.New(5)), WithSeed(1))
	if !r.Converged || r.Final.Output() != 2 {
		t.Fatalf("2X→Y from 5 X: %+v", r)
	}
}

// TestCompileSimMemoizedPerCRN: the compiled per-run view is built once per
// CRN and shared by every later call (the ROADMAP "cache compiledSim per
// CRN" item), including under concurrent first compile — so ensembles of
// short replicates stop paying O(reactions) assembly per trial. Trajectory
// identity under the shared view is covered by the same-seed reproducibility
// tests above.
func TestCompileSimMemoizedPerCRN(t *testing.T) {
	c := maxCRN()
	var wg sync.WaitGroup
	got := make([]*compiledSim, 8)
	for i := range got {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i] = compileSim(c)
		}()
	}
	wg.Wait()
	for i, cs := range got {
		if cs == nil || cs != got[0] {
			t.Fatalf("compileSim call %d returned %p, want the memoized %p", i, cs, got[0])
		}
	}
	if c2 := minCRN(); compileSim(c2) == compileSim(c) {
		t.Fatal("distinct CRNs share a compiled view")
	}
}
