// Package synth synthesizes output-oblivious CRNs from function
// descriptions, implementing every construction in the paper:
//
//   - Lemma 6.1: a CRN for any quilt-affine g : N^d → N (leader walks the
//     congruence classes and emits the periodic finite differences);
//   - Theorem 3.1: the 1D construction for semilinear nondecreasing f;
//   - Theorem 9.2: the leaderless 1D construction for semilinear
//     superadditive f (pairwise "corrective difference" reactions);
//   - Observation 2.4: the output-monotonic → output-oblivious transform;
//   - Lemma 6.2: the general construction, composing min, fan-out, clamp
//     (x−n)+, indicator a + 1{x(i)>j}·b, translated quilt-affine modules and
//     recursively constructed fixed-input restrictions via equation (1).
package synth

import (
	"fmt"

	"crncompose/internal/crn"
)

// MinCRN returns the CRN computing min(x_1, ..., x_k) with the single
// reaction X1 + ... + Xk → Y (Fig 1 generalized). Output-oblivious and
// leaderless.
func MinCRN(k int) *crn.CRN {
	if k < 1 {
		panic("synth: min arity must be ≥ 1")
	}
	inputs := make([]crn.Species, k)
	reactants := make([]crn.Term, k)
	for i := 0; i < k; i++ {
		inputs[i] = crn.Species(fmt.Sprintf("X%d", i+1))
		reactants[i] = crn.Term{Coeff: 1, Sp: inputs[i]}
	}
	return crn.MustNew(inputs, "Y", "", []crn.Reaction{{
		Reactants: reactants,
		Products:  []crn.Term{{Coeff: 1, Sp: "Y"}},
		Name:      "min",
	}})
}

// MaxCRN returns the four-reaction CRN for max(x1, x2) from Fig 1. It is
// NOT output-oblivious (the reaction K + Y → ∅ consumes Y); it exists as
// the running counterexample for composition and for the Fig 6 experiment.
func MaxCRN() *crn.CRN {
	return crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}}, Products: []crn.Term{{Coeff: 1, Sp: "Z1"}, {Coeff: 1, Sp: "Y"}}, Name: "x1 to y"},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Z2"}, {Coeff: 1, Sp: "Y"}}, Name: "x2 to y"},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "Z1"}, {Coeff: 1, Sp: "Z2"}}, Products: []crn.Term{{Coeff: 1, Sp: "K"}}, Name: "pair"},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "K"}, {Coeff: 1, Sp: "Y"}}, Products: nil, Name: "consume excess"},
	})
}

// DoubleCRN returns the CRN for f(x) = 2x (Fig 1): X → 2Y.
func DoubleCRN() *crn.CRN {
	return crn.MustNew([]crn.Species{"X"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X"}}, Products: []crn.Term{{Coeff: 2, Sp: "Y"}}, Name: "double"},
	})
}

// MinConst1Leadered returns the output-oblivious CRN for min(1, x) with a
// leader (Fig 2, right): L + X → Y.
func MinConst1Leadered() *crn.CRN {
	return crn.MustNew([]crn.Species{"X"}, "Y", "L", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "L"}, {Coeff: 1, Sp: "X"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}, Name: "fire once"},
	})
}

// MinConst1Leaderless returns the leaderless CRN for min(1, x) from Fig 2
// (left): X → Y; 2Y → Y. It stably computes min(1,x) but is NOT
// output-oblivious.
func MinConst1Leaderless() *crn.CRN {
	return crn.MustNew([]crn.Species{"X"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}, Name: "convert"},
		{Reactants: []crn.Term{{Coeff: 2, Sp: "Y"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}, Name: "collapse"},
	})
}

// ClampCRN returns the CRN computing (x − n)+ componentwise for a single
// input: (n+1)X → nX + Y (Lemma 6.2). Output-oblivious and leaderless.
func ClampCRN(n int64) *crn.CRN {
	if n < 0 {
		panic("synth: negative clamp")
	}
	if n == 0 {
		return crn.MustNew([]crn.Species{"X"}, "Y", "", []crn.Reaction{
			{Reactants: []crn.Term{{Coeff: 1, Sp: "X"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}, Name: "clamp0"},
		})
	}
	return crn.MustNew([]crn.Species{"X"}, "Y", "", []crn.Reaction{
		{
			Reactants: []crn.Term{{Coeff: n + 1, Sp: "X"}},
			Products:  []crn.Term{{Coeff: n, Sp: "X"}, {Coeff: 1, Sp: "Y"}},
			Name:      fmt.Sprintf("clamp%d", n),
		},
	})
}

// IndicatorCRN returns the CRN computing c(a, b, x) = a + 1{x > j}·b on
// inputs (A, B, X) (Lemma 6.2): A → Y and (j+1)X + B → (j+1)X + Y.
// Output-oblivious and leaderless; X acts catalytically.
func IndicatorCRN(j int64) *crn.CRN {
	return crn.MustNew([]crn.Species{"A", "B", "X"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "A"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}, Name: "pass a"},
		{
			Reactants: []crn.Term{{Coeff: j + 1, Sp: "X"}, {Coeff: 1, Sp: "B"}},
			Products:  []crn.Term{{Coeff: j + 1, Sp: "X"}, {Coeff: 1, Sp: "Y"}},
			Name:      fmt.Sprintf("gate b by x>%d", j),
		},
	})
}

// MonotonicToOblivious implements Observation 2.4: given an
// output-monotonic CRN (no reaction decreases the output count), produce an
// equivalent output-oblivious CRN by replacing every catalytic use of the
// output Y with a shadow catalyst Z that is produced alongside every Y.
func MonotonicToOblivious(c *crn.CRN) (*crn.CRN, error) {
	if !c.IsOutputMonotonic() {
		return nil, fmt.Errorf("synth: CRN is not output-monotonic")
	}
	if c.IsOutputOblivious() {
		return c, nil
	}
	y := c.Output
	z := crn.Species(string(y) + "_shadow")
	for _, sp := range c.SpeciesList() {
		if sp == z {
			return nil, fmt.Errorf("synth: shadow species %q already exists", z)
		}
	}
	reactions := make([]crn.Reaction, len(c.Reactions))
	for i, r := range c.Reactions {
		consumed := r.R(y)
		net := r.Net(y) // ≥ 0 by monotonicity
		var reactants, products []crn.Term
		for _, t := range r.Reactants {
			if t.Sp != y {
				reactants = append(reactants, t)
			}
		}
		if consumed > 0 {
			reactants = append(reactants, crn.Term{Coeff: consumed, Sp: z})
		}
		for _, t := range r.Products {
			if t.Sp != y {
				products = append(products, t)
			}
		}
		if net > 0 {
			products = append(products, crn.Term{Coeff: net, Sp: y})
		}
		// Return the borrowed catalysts and mint one shadow per new output.
		if consumed+net > 0 {
			products = append(products, crn.Term{Coeff: consumed + net, Sp: z})
		}
		reactions[i] = crn.Reaction{Reactants: reactants, Products: products, Name: r.Name}
	}
	return crn.New(c.Inputs, y, c.Leader, reactions)
}
