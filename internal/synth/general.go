package synth

import (
	"fmt"

	"crncompose/internal/classify"
	"crncompose/internal/compose"
	"crncompose/internal/crn"
	"crncompose/internal/progress"
	"crncompose/internal/quilt"
	"crncompose/internal/semilinear"
	"crncompose/internal/vec"
)

// GeneralOptions tune the Lemma 6.2 construction.
type GeneralOptions struct {
	// Classify passes through to the classifier; a smaller Bound yields a
	// smaller eventual threshold n and therefore a much smaller CRN.
	// Classify.Ctx, when set, also cancels the synthesis itself: the
	// construction polls it before every restriction module it builds (the
	// recursion of equation (1)), so a canceled General returns a wrapped
	// ctx.Err() within one module's work.
	Classify classify.Options
	// N overrides the eventual threshold (uniform across coordinates).
	// Must satisfy f(x) = min_k g_k(x) for all x ≥ (N,...,N); the value
	// from classification always does. 0 means "use the classifier's".
	N int64
	// Progress, when non-nil, receives a "synth.modules" event per
	// restriction module built at the top recursion level (Done = modules
	// built, Total = d·n modules). Never changes the construction.
	Progress progress.Reporter
}

// ctxErr polls the construction's context (carried on Classify.Ctx).
func (o *GeneralOptions) ctxErr() error {
	if o.Classify.Ctx == nil {
		return nil
	}
	select {
	case <-o.Classify.Ctx.Done():
		return fmt.Errorf("synth: construction canceled: %w", o.Classify.Ctx.Err())
	default:
		return nil
	}
}

// NotComputableError reports that f fails Theorem 5.2 and carries the
// classifier's verdict (including a Lemma 4.1 contradiction when found).
type NotComputableError struct {
	Name   string
	Result *classify.Result
}

func (e *NotComputableError) Error() string {
	return fmt.Sprintf("synth: %s is not obliviously-computable: %s", e.Name, e.Result.Reason)
}

// General implements Lemma 6.2: given a semilinear f satisfying
// Theorem 5.2, it builds an output-oblivious CRN (with one leader) stably
// computing f via equation (1):
//
//	f(x) = min[ f(x∨n),
//	            f[x(i)→j](x) + 1{x(i)>j}(x)·f(x∨n) ]  for i ≤ d, j < n
//
// The recursion bottoms out at d = 1 with the Theorem 3.1 construction.
// It returns the CRN together with the classification used.
func General(f *semilinear.Func, opts GeneralOptions) (*crn.CRN, *classify.Result, error) {
	res, err := classify.Analyze(f, opts.Classify)
	if err != nil {
		return nil, nil, err
	}
	if !res.Computable {
		return nil, res, &NotComputableError{Name: f.Name, Result: res}
	}
	c, err := build(f, res, opts)
	if err != nil {
		return nil, res, err
	}
	return c, res, nil
}

func build(f *semilinear.Func, res *classify.Result, opts GeneralOptions) (*crn.CRN, error) {
	d := f.Dim()
	if d == 1 {
		// Theorem 3.1 is both simpler and smaller in 1D.
		spec, err := FitOneDim(func(x int64) int64 { return f.Eval(vec.New(x)) }, 0, 0)
		if err != nil {
			return nil, fmt.Errorf("synth: 1D fit of %s: %w", f.Name, err)
		}
		return OneDim(spec)
	}

	n := opts.N
	if n == 0 {
		n = res.N.MaxComponent()
	}
	nv := vec.Const(d, n)

	b := compose.NewBuilder()
	inputs := make([]crn.Species, d)
	for i := range inputs {
		inputs[i] = crn.Species(fmt.Sprintf("X%d", i+1))
		b.Claim(inputs[i])
	}
	out := crn.Species("Y")
	b.Claim(out)
	var leaders []crn.Species

	// ---- Module B: V = f(x ∨ n) = min_k g_k((x−n)+ + n). ----
	quilts := res.EventualMin.Terms
	m := len(quilts)
	// Clamp each input copy: Z_i = (x_i − n)+, then fan each Z_i out to the
	// m quilt modules.
	clampIn := make([]crn.Species, d)   // dedicated input copies for clamps
	quiltIn := make([][]crn.Species, m) // quiltIn[k][i]
	for k := range quiltIn {
		quiltIn[k] = make([]crn.Species, d)
	}
	for i := 0; i < d; i++ {
		clampIn[i] = b.Fresh(fmt.Sprintf("XC%d", i+1))
		z := b.Fresh(fmt.Sprintf("Z%d", i+1))
		l, err := b.Instantiate(ClampCRN(n), fmt.Sprintf("clamp%d.", i+1), []crn.Species{clampIn[i]}, z)
		if err != nil {
			return nil, err
		}
		leaders = appendLeader(leaders, l)
		dsts := make([]crn.Species, m)
		for k := 0; k < m; k++ {
			quiltIn[k][i] = b.Fresh(fmt.Sprintf("ZQ%d_%d", k, i+1))
			dsts[k] = quiltIn[k][i]
		}
		b.AddFanOut(z, dsts...)
	}
	// Translated quilt modules W_k = g_k(z + n) (nonnegative since
	// z + n ≥ n; Lemma 6.1 applies).
	wk := make([]crn.Species, m)
	for k, g := range quilts {
		tg := g.Translate(nv)
		qc, err := FromQuilt(tg)
		if err != nil {
			return nil, fmt.Errorf("synth: quilt module %d: %w", k, err)
		}
		wk[k] = b.Fresh(fmt.Sprintf("W%d", k))
		l, err := b.Instantiate(qc, fmt.Sprintf("g%d.", k), quiltIn[k], wk[k])
		if err != nil {
			return nil, err
		}
		leaders = appendLeader(leaders, l)
	}
	// V = min_k W_k.
	v := b.Fresh("V")
	l, err := b.Instantiate(MinCRN(m), "minV.", wk, v)
	if err != nil {
		return nil, err
	}
	leaders = appendLeader(leaders, l)

	// ---- Modules C/D: one min-term per (i, j): T_{i,j} =
	// f[x(i)→j](x) + 1{x(i)>j}·V. ----
	type termRef struct{ sp crn.Species }
	var minTerms []termRef
	// V fans out to the final min plus one copy per indicator.
	numTerms := d * int(n)
	vCopies := make([]crn.Species, 0, numTerms+1)
	vFinal := b.Fresh("Vmin")
	vCopies = append(vCopies, vFinal)
	minTerms = append(minTerms, termRef{sp: vFinal})

	// Dedicated input copies per restriction module and per indicator.
	type consumer struct{ sp crn.Species }
	inputConsumers := make([][]consumer, d) // per original input

	modTotal := int64(d) * n
	var modDone int64
	for i := 0; i < d; i++ {
		for j := int64(0); j < n; j++ {
			// Each restriction module is one bounded unit of recursive
			// work — the construction's deterministic cancellation point.
			if err := opts.ctxErr(); err != nil {
				return nil, err
			}
			label := fmt.Sprintf("r%d_%d", i+1, j)
			// Recursive module for the restriction (arity d−1).
			rf := f.Restrict(i, j)
			// Progress is reported only at this recursion level; the
			// recursive calls run with the bare options.
			subOpts := opts
			subOpts.Progress = nil
			sub, _, err := General(rf, subOpts)
			if err != nil {
				return nil, fmt.Errorf("synth: restriction x(%d)→%d of %s: %w", i+1, j, f.Name, err)
			}
			modDone++
			progress.Post(opts.Progress, "synth.modules", modDone, modTotal)
			// Its inputs: copies of every original input except i.
			rIns := make([]crn.Species, 0, d-1)
			for k := 0; k < d; k++ {
				if k == i {
					continue
				}
				cp := b.Fresh(fmt.Sprintf("X%d_%s", k+1, label))
				inputConsumers[k] = append(inputConsumers[k], consumer{sp: cp})
				rIns = append(rIns, cp)
			}
			a := b.Fresh("A_" + label)
			l, err := b.Instantiate(sub, label+".", rIns, a)
			if err != nil {
				return nil, err
			}
			leaders = appendLeader(leaders, l)

			// Indicator: T = A + 1{x(i) > j}·B with B a copy of V and the
			// gate watching a dedicated copy of X_i.
			gate := b.Fresh(fmt.Sprintf("X%d_gate_%s", i+1, label))
			inputConsumers[i] = append(inputConsumers[i], consumer{sp: gate})
			bIn := b.Fresh("B_" + label)
			vCopies = append(vCopies, bIn)
			tOut := b.Fresh("T_" + label)
			l, err = b.Instantiate(IndicatorCRN(j), "ind_"+label+".", []crn.Species{a, bIn, gate}, tOut)
			if err != nil {
				return nil, err
			}
			leaders = appendLeader(leaders, l)
			minTerms = append(minTerms, termRef{sp: tOut})
		}
	}
	b.AddFanOut(v, vCopies...)

	// ---- Input fan-out: X_i → clamp copy + all module copies. ----
	for i := 0; i < d; i++ {
		dsts := []crn.Species{clampIn[i]}
		for _, c := range inputConsumers[i] {
			dsts = append(dsts, c.sp)
		}
		b.AddFanOut(inputs[i], dsts...)
	}

	// ---- Final min over all terms. ----
	termSpecies := make([]crn.Species, len(minTerms))
	for i, t := range minTerms {
		termSpecies[i] = t.sp
	}
	l, err = b.Instantiate(MinCRN(len(termSpecies)), "minY.", termSpecies, out)
	if err != nil {
		return nil, err
	}
	leaders = appendLeader(leaders, l)

	return b.Finish(inputs, out, leaders...)
}

func appendLeader(ls []crn.Species, l crn.Species) []crn.Species {
	if l != "" {
		return append(ls, l)
	}
	return ls
}

// QuiltDirect builds the Lemma 6.1 CRN for a quilt-affine function given as
// a classify normal form with a single term and verifies nonnegativity.
// Convenience used by tools and examples.
func QuiltDirect(g *quilt.Func) (*crn.CRN, error) { return FromQuilt(g) }
