package synth

import (
	"fmt"

	"crncompose/internal/crn"
	"crncompose/internal/quilt"
)

// OneDimSpec is the eventually-quilt-affine structure of a 1D semilinear
// nondecreasing function (Fig 5): values f(0..n), then periodic finite
// differences δ_0..δ_{p−1}, so that f(x+1) − f(x) = δ_{x mod p} for x ≥ n.
type OneDimSpec struct {
	F      quilt.Eval1D
	N      int64
	P      int64
	Deltas []int64
}

// FitOneDim discovers the OneDimSpec of f by sampling (see
// quilt.FitEventually1D). maxN/maxP bound the search; generous defaults are
// applied when zero.
func FitOneDim(f quilt.Eval1D, maxN, maxP int64) (*OneDimSpec, error) {
	if maxN == 0 {
		maxN = 64
	}
	if maxP == 0 {
		maxP = 12
	}
	n, p, deltas, err := quilt.FitEventually1D(f, maxN, maxP, 0)
	if err != nil {
		return nil, err
	}
	return &OneDimSpec{F: f, N: n, P: p, Deltas: deltas}, nil
}

// OneDim implements the Theorem 3.1 construction: an output-oblivious CRN
// with a leader stably computing any semilinear nondecreasing f : N → N.
// The leader tracks how many inputs it has consumed (exactly below n,
// mod p above), emitting the finite differences:
//
//	L → f(0)·Y + L_0
//	L_i + X → [f(i+1)−f(i)]·Y + L_{i+1}          i = 0..n−2
//	L_{n−1} + X → [f(n)−f(n−1)]·Y + P_{n mod p}
//	P_a + X → δ_a·Y + P_{a+1 mod p}
func OneDim(spec *OneDimSpec) (*crn.CRN, error) {
	f, n, p := spec.F, spec.N, spec.P
	if int64(len(spec.Deltas)) != p {
		return nil, fmt.Errorf("synth: %d deltas for period %d", len(spec.Deltas), p)
	}
	for x := int64(0); x < n; x++ {
		if f(x+1) < f(x) {
			return nil, fmt.Errorf("synth: f decreasing at %d", x)
		}
	}
	for _, d := range spec.Deltas {
		if d < 0 {
			return nil, fmt.Errorf("synth: negative periodic difference")
		}
	}
	li := func(i int64) crn.Species { return crn.Species(fmt.Sprintf("S%d", i)) }
	pa := func(a int64) crn.Species { return crn.Species(fmt.Sprintf("P%d", ((a%p)+p)%p)) }

	emit := func(reactants []crn.Term, count int64, next crn.Species, name string) crn.Reaction {
		products := []crn.Term{{Coeff: 1, Sp: next}}
		if count > 0 {
			products = append(products, crn.Term{Coeff: count, Sp: "Y"})
		}
		return crn.Reaction{Reactants: reactants, Products: products, Name: name}
	}

	var reactions []crn.Reaction
	first := li(0)
	if n == 0 {
		first = pa(0)
	}
	reactions = append(reactions, emit(
		[]crn.Term{{Coeff: 1, Sp: "L"}}, f(0), first, "emit f(0)"))
	for i := int64(0); i < n; i++ {
		next := li(i + 1)
		if i == n-1 {
			next = pa(n)
		}
		reactions = append(reactions, emit(
			[]crn.Term{{Coeff: 1, Sp: li(i)}, {Coeff: 1, Sp: "X"}},
			f(i+1)-f(i), next, fmt.Sprintf("step %d", i)))
	}
	for a := int64(0); a < p; a++ {
		reactions = append(reactions, emit(
			[]crn.Term{{Coeff: 1, Sp: pa(a)}, {Coeff: 1, Sp: "X"}},
			spec.Deltas[a], pa(a+1), fmt.Sprintf("periodic %d", a)))
	}
	return crn.New([]crn.Species{"X"}, "Y", "L", reactions)
}

// LeaderlessOneDim implements the Theorem 9.2 construction: a leaderless
// output-oblivious CRN stably computing any semilinear superadditive
// f : N → N. Every input bootstraps an auxiliary-leader state, and pairwise
// merge reactions between states release the corrective differences
// D = f(v+w) − f(v) − f(w) ≥ 0.
func LeaderlessOneDim(spec *OneDimSpec) (*crn.CRN, error) {
	f, p := spec.F, spec.P
	if f(0) != 0 {
		return nil, fmt.Errorf("synth: superadditive f must have f(0) = 0, got %d", f(0))
	}
	// Round n up to a positive multiple of p (the paper assumes p | n).
	n := spec.N
	if n == 0 {
		n = p
	}
	if n%p != 0 {
		n += p - n%p
	}
	// Verify superadditivity on the range the construction exercises.
	limit := 2*n + 2*p + 4
	for a := int64(0); a <= limit; a++ {
		for b := int64(0); a+b <= limit; b++ {
			if f(a)+f(b) > f(a+b) {
				return nil, fmt.Errorf("synth: f is not superadditive: f(%d)+f(%d) > f(%d)", a, b, a+b)
			}
		}
	}

	// State species: value v ∈ [1, n) is S_v; value ≥ n collapses to
	// P_{(v−n) mod p}.
	state := func(v int64) crn.Species {
		if v < n {
			return crn.Species(fmt.Sprintf("S%d", v))
		}
		return crn.Species(fmt.Sprintf("P%d", (v-n)%p))
	}
	// fOf(state value class): representative value for output accounting.
	emit := func(reactants []crn.Term, count int64, next crn.Species, name string) crn.Reaction {
		products := []crn.Term{{Coeff: 1, Sp: next}}
		if count > 0 {
			products = append(products, crn.Term{Coeff: count, Sp: "Y"})
		}
		return crn.Reaction{Reactants: reactants, Products: products, Name: name}
	}

	var reactions []crn.Reaction
	// X → f(1)·Y + state(1).
	reactions = append(reactions, emit(
		[]crn.Term{{Coeff: 1, Sp: "X"}}, f(1), state(1), "bootstrap"))

	add := func(vi, vj int64, si, sj crn.Species) {
		d := f(vi+vj) - f(vi) - f(vj)
		var reactants []crn.Term
		if si == sj {
			reactants = []crn.Term{{Coeff: 2, Sp: si}}
		} else {
			reactants = []crn.Term{{Coeff: 1, Sp: si}, {Coeff: 1, Sp: sj}}
		}
		reactions = append(reactions, emit(reactants, d, state(vi+vj),
			fmt.Sprintf("merge %s+%s", si, sj)))
	}
	// S_i + S_j for 1 ≤ i ≤ j < n.
	for i := int64(1); i < n; i++ {
		for j := i; j < n; j++ {
			add(i, j, state(i), state(j))
		}
	}
	// S_i + P_a: representative value n + a for P_a; the corrective
	// difference is period-independent because the periodic differences
	// cancel (see the paper's argument).
	for i := int64(1); i < n; i++ {
		for a := int64(0); a < p; a++ {
			add(i, n+a, state(i), state(n+a))
		}
	}
	// P_a + P_b with representatives n+a, n+b.
	for a := int64(0); a < p; a++ {
		for b := a; b < p; b++ {
			add(n+a, n+b, state(n+a), state(n+b))
		}
	}
	return crn.New([]crn.Species{"X"}, "Y", "", reactions)
}
