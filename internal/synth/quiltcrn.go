package synth

import (
	"fmt"

	"crncompose/internal/crn"
	"crncompose/internal/quilt"
	"crncompose/internal/vec"
)

// FromQuilt implements Lemma 6.1: an output-oblivious CRN stably computing
// a quilt-affine g : N^d → N (the range must be nonnegative). A single
// leader walks the congruence classes of Z^d/pZ^d, consuming one input
// molecule per step and emitting the finite difference δ_{i,a} outputs.
//
// Species: inputs X1..Xd, output Y, leader L, and p^d class species C_a.
// Reactions:
//
//	L → g(0)·Y + C_0
//	C_a + X_i → δ_{i,a}·Y + C_{a+e_i}    for every a, i.
func FromQuilt(g *quilt.Func) (*crn.CRN, error) {
	d := g.Dim()
	p := g.Period()
	if !g.NonnegativeOn(vec.Zero(d)) {
		return nil, fmt.Errorf("synth: quilt-affine function has negative outputs on N^%d; translate first", d)
	}
	classes := vec.NumClasses(p, d)
	inputs := make([]crn.Species, d)
	for i := range inputs {
		inputs[i] = crn.Species(fmt.Sprintf("X%d", i+1))
	}
	classSp := func(idx int64) crn.Species {
		return crn.Species(fmt.Sprintf("C%d", idx))
	}
	var reactions []crn.Reaction

	g0 := g.Eval(vec.Zero(d))
	initProducts := []crn.Term{{Coeff: 1, Sp: classSp(vec.CongruenceIndex(vec.Zero(d), p))}}
	if g0 > 0 {
		initProducts = append(initProducts, crn.Term{Coeff: g0, Sp: "Y"})
	}
	reactions = append(reactions, crn.Reaction{
		Reactants: []crn.Term{{Coeff: 1, Sp: "L"}},
		Products:  initProducts,
		Name:      "emit g(0)",
	})

	for idx := int64(0); idx < classes; idx++ {
		a := vec.CongruenceClass(idx, p, d)
		for i := 0; i < d; i++ {
			delta, err := g.FiniteDifference(i, a)
			if err != nil {
				return nil, err
			}
			next := vec.CongruenceIndex(a.Add(vec.Unit(d, i)), p)
			products := []crn.Term{{Coeff: 1, Sp: classSp(next)}}
			if delta > 0 {
				products = append(products, crn.Term{Coeff: delta, Sp: "Y"})
			}
			reactions = append(reactions, crn.Reaction{
				Reactants: []crn.Term{{Coeff: 1, Sp: classSp(idx)}, {Coeff: 1, Sp: inputs[i]}},
				Products:  products,
				Name:      fmt.Sprintf("step i=%d a=%v", i+1, a),
			})
		}
	}
	return crn.New(inputs, "Y", "L", reactions)
}
