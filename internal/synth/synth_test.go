package synth

import (
	"errors"
	"testing"

	"crncompose/internal/crn"

	"crncompose/internal/classify"
	"crncompose/internal/quilt"
	"crncompose/internal/rat"
	"crncompose/internal/reach"
	"crncompose/internal/semilinear"
	"crncompose/internal/sim"
	"crncompose/internal/vec"
)

func TestMinCRNStablyComputesMin(t *testing.T) {
	c := MinCRN(2)
	if !c.IsOutputOblivious() {
		t.Fatal("min CRN must be output-oblivious")
	}
	res, err := reach.CheckGrid(c, func(x []int64) int64 { return min(x[0], x[1]) },
		[]int64{0, 0}, []int64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatal(res)
	}
}

func TestMinCRN3Way(t *testing.T) {
	c := MinCRN(3)
	res, err := reach.CheckGrid(c, func(x []int64) int64 { return min(x[0], min(x[1], x[2])) },
		[]int64{0, 0, 0}, []int64{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatal(res)
	}
}

func TestMaxCRNStablyComputesMaxButNotOblivious(t *testing.T) {
	c := MaxCRN()
	if c.IsOutputOblivious() {
		t.Fatal("the Fig 1 max CRN consumes Y; it must not be output-oblivious")
	}
	if c.IsOutputMonotonic() {
		t.Fatal("the Fig 1 max CRN is not output-monotonic either")
	}
	res, err := reach.CheckGrid(c, func(x []int64) int64 { return max(x[0], x[1]) },
		[]int64{0, 0}, []int64{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatal(res)
	}
}

func TestDoubleCRN(t *testing.T) {
	res, err := reach.CheckGrid(DoubleCRN(), func(x []int64) int64 { return 2 * x[0] },
		[]int64{0}, []int64{30})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatal(res)
	}
}

func TestMinConst1Variants(t *testing.T) {
	f := func(x []int64) int64 { return min(1, x[0]) }
	leadered := MinConst1Leadered()
	if !leadered.IsOutputOblivious() {
		t.Error("leadered min(1,x) must be output-oblivious (Fig 2)")
	}
	leaderless := MinConst1Leaderless()
	if leaderless.IsOutputOblivious() {
		t.Error("leaderless min(1,x) from Fig 2 consumes Y; not output-oblivious")
	}
	res, err := reach.CheckGrid(leadered, f, []int64{0}, []int64{20})
	if err != nil || !res.OK() {
		t.Fatalf("leadered: %v %v", err, res)
	}
	res, err = reach.CheckGrid(leaderless, f, []int64{0}, []int64{20})
	if err != nil || !res.OK() {
		t.Fatalf("leaderless: %v %v", err, res)
	}
}

func TestClampCRN(t *testing.T) {
	for _, n := range []int64{0, 1, 3} {
		c := ClampCRN(n)
		if !c.IsOutputOblivious() {
			t.Fatalf("clamp(%d) not output-oblivious", n)
		}
		res, err := reach.CheckGrid(c, func(x []int64) int64 { return max(x[0]-n, 0) },
			[]int64{0}, []int64{3*n + 6})
		if err != nil || !res.OK() {
			t.Fatalf("clamp(%d): %v %v", n, err, res)
		}
	}
}

func TestIndicatorCRN(t *testing.T) {
	for _, j := range []int64{0, 1, 2} {
		c := IndicatorCRN(j)
		if !c.IsOutputOblivious() {
			t.Fatalf("indicator(%d) not output-oblivious", j)
		}
		f := func(x []int64) int64 {
			a, b, xi := x[0], x[1], x[2]
			if xi > j {
				return a + b
			}
			return a
		}
		res, err := reach.CheckGrid(c, f, []int64{0, 0, 0}, []int64{3, 3, j + 2})
		if err != nil || !res.OK() {
			t.Fatalf("indicator(%d): %v %v", j, err, res)
		}
	}
}

func TestFromQuiltFloorThreeHalves(t *testing.T) {
	// Fig 3a: ⌊3x/2⌋ = (3/2)x + B(x mod 2), B(0)=0, B(1)=−1/2.
	g := quilt.MustNew(rat.NewVec(rat.New(3, 2)), 2, []rat.R{rat.Zero(), rat.New(-1, 2)})
	c, err := FromQuilt(g)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsOutputOblivious() {
		t.Fatal("quilt CRN must be output-oblivious")
	}
	res, err := reach.CheckGrid(c, func(x []int64) int64 { return 3 * x[0] / 2 },
		[]int64{0}, []int64{25})
	if err != nil || !res.OK() {
		t.Fatalf("%v %v", err, res)
	}
}

func TestFromQuilt2D(t *testing.T) {
	// Fig 3b-style: g(x) = (1,2)·x + B(x mod 3).
	f := semilinear.Fig3b()
	res, err := classify.Analyze(f, classify.Options{})
	if err != nil || !res.Computable {
		t.Fatalf("fig3b classification: %v / %+v", err, res)
	}
	if len(res.EventualMin.Terms) != 1 {
		t.Fatalf("fig3b should be a single quilt term")
	}
	c, err := FromQuilt(res.EventualMin.Terms[0])
	if err != nil {
		t.Fatal(err)
	}
	gr, err := reach.CheckGrid(c, func(x []int64) int64 { return f.Eval(vec.New(x...)) },
		[]int64{0, 0}, []int64{6, 6})
	if err != nil || !gr.OK() {
		t.Fatalf("%v %v", err, gr)
	}
}

func TestFromQuiltRejectsNegative(t *testing.T) {
	// g(x) = x − 1 is quilt-affine into Z but negative at 0.
	g := quilt.MustNew(rat.NewVec(rat.One()), 1, []rat.R{rat.FromInt(-1)})
	if _, err := FromQuilt(g); err == nil {
		t.Fatal("negative-range quilt accepted")
	}
}

func TestOneDimConstruction(t *testing.T) {
	tests := []struct {
		name string
		f    quilt.Eval1D
		hi   int64
	}{
		{"identity", func(x int64) int64 { return x }, 20},
		{"double", func(x int64) int64 { return 2 * x }, 15},
		{"floor3x2", func(x int64) int64 { return 3 * x / 2 }, 20},
		{"step", func(x int64) int64 {
			if x >= 3 {
				return 2
			}
			return 0
		}, 20},
		{"min(1,x)", func(x int64) int64 { return min(1, x) }, 20},
		{"affine+finite", func(x int64) int64 {
			// Arbitrary finite irregularity then affine (Fig 5 shape).
			table := []int64{0, 0, 1, 5}
			if x < int64(len(table)) {
				return table[x]
			}
			return 5 + 2*(x-3)
		}, 20},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := FitOneDim(tc.f, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			c, err := OneDim(spec)
			if err != nil {
				t.Fatal(err)
			}
			if !c.IsOutputOblivious() {
				t.Fatal("Theorem 3.1 CRN must be output-oblivious")
			}
			res, err := reach.CheckGrid(c, func(x []int64) int64 { return tc.f(x[0]) },
				[]int64{0}, []int64{tc.hi})
			if err != nil || !res.OK() {
				t.Fatalf("%v %v", err, res)
			}
		})
	}
}

func TestLeaderlessOneDim(t *testing.T) {
	tests := []struct {
		name string
		f    quilt.Eval1D
		hi   int64
	}{
		{"identity", func(x int64) int64 { return x }, 12},
		{"double", func(x int64) int64 { return 2 * x }, 10},
		{"floor3x2", func(x int64) int64 { return 3 * x / 2 }, 12},
		{"floorx2", func(x int64) int64 { return x / 2 }, 14},
		{"x minus min(1,x)", func(x int64) int64 { return x - min(1, x) }, 12},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := FitOneDim(tc.f, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			c, err := LeaderlessOneDim(spec)
			if err != nil {
				t.Fatal(err)
			}
			if c.Leader != "" {
				t.Fatal("Theorem 9.2 CRN must be leaderless")
			}
			if !c.IsOutputOblivious() {
				t.Fatal("Theorem 9.2 CRN must be output-oblivious")
			}
			res, err := reach.CheckGrid(c, func(x []int64) int64 { return tc.f(x[0]) },
				[]int64{0}, []int64{tc.hi})
			if err != nil || !res.OK() {
				t.Fatalf("%v %v", err, res)
			}
		})
	}
}

func TestLeaderlessRejectsNonSuperadditive(t *testing.T) {
	// min(1, x) is nondecreasing but NOT superadditive
	// (f(1)+f(1) = 2 > f(2) = 1): Observation 9.1 says no leaderless
	// output-oblivious CRN computes it.
	spec, err := FitOneDim(func(x int64) int64 { return min(1, x) }, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LeaderlessOneDim(spec); err == nil {
		t.Fatal("non-superadditive function accepted by Theorem 9.2 construction")
	}
	// f(0) ≠ 0 is also rejected.
	spec2, err := FitOneDim(func(x int64) int64 { return x + 1 }, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LeaderlessOneDim(spec2); err == nil {
		t.Fatal("f(0)=1 accepted by leaderless construction")
	}
}

func TestMonotonicToOblivious(t *testing.T) {
	// A CRN using Y catalytically: X → Y ; Y + A → Y + B ; B → Y.
	// With x = 0 no Y ever appears, so f(0, a) = 0; once one Y exists every
	// A converts, so f(x, a) = x + a for x ≥ 1. Output-monotonic but not
	// output-oblivious (Y catalyzes the second reaction).
	c := catalyticCRN()
	if c.IsOutputOblivious() {
		t.Fatal("test CRN should use Y as a catalyst")
	}
	if !c.IsOutputMonotonic() {
		t.Fatal("test CRN should be output-monotonic")
	}
	f := func(x []int64) int64 {
		if x[0] == 0 {
			return 0
		}
		return x[0] + x[1]
	}
	res, err := reach.CheckGrid(c, f, []int64{0, 0}, []int64{4, 4})
	if err != nil || !res.OK() {
		t.Fatalf("catalytic CRN wrong: %v %v", err, res)
	}
	obl, err := MonotonicToOblivious(c)
	if err != nil {
		t.Fatal(err)
	}
	if !obl.IsOutputOblivious() {
		t.Fatal("transform did not produce an output-oblivious CRN")
	}
	res, err = reach.CheckGrid(obl, f, []int64{0, 0}, []int64{4, 4})
	if err != nil || !res.OK() {
		t.Fatalf("transformed CRN wrong: %v %v", err, res)
	}
}

func TestMonotonicToObliviousRejectsConsumer(t *testing.T) {
	if _, err := MonotonicToOblivious(MaxCRN()); err == nil {
		t.Fatal("max CRN (which decreases Y) accepted by Observation 2.4 transform")
	}
}

func TestGeneralConstructionFig4a(t *testing.T) {
	f := semilinear.Fig4a()
	c, res, err := General(f, GeneralOptions{
		Classify: classify.Options{Bound: 8},
		N:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Computable {
		t.Fatal("fig4a must be computable")
	}
	if !c.IsOutputOblivious() {
		t.Fatal("general construction must be output-oblivious")
	}
	// Model-check small inputs exhaustively. The full 3×3 grid explores
	// ~10.4M configurations (~2 minutes with the arena-based parallel
	// engine; the old string-keyed explorer exceeded the 10-minute test
	// timeout on it), so -short verifies the 2×2 grid, which stays well
	// inside CI budgets even single-core.
	hi := []int64{1, 1}
	if !testing.Short() {
		hi = []int64{2, 2}
	}
	gr, err := reach.CheckGrid(c, func(x []int64) int64 { return f.Eval(vec.New(x...)) },
		[]int64{0, 0}, hi,
		reach.WithMaxConfigs(1<<23))
	if err != nil {
		t.Fatal(err)
	}
	if !gr.OK() {
		t.Fatal(gr)
	}
	t.Logf("fig4a CRN: %d species, %d reactions; %d configs explored over %d inputs",
		c.NumSpecies(), len(c.Reactions), gr.Explored, gr.Checked)
	// Larger inputs via fair random simulation (probability-1 semantics).
	for _, x := range []vec.V{vec.New(3, 2), vec.New(2, 5), vec.New(6, 6), vec.New(0, 7)} {
		want := f.Eval(x)
		results := sim.Ensemble(sim.FairRandom, c.MustInitialConfig(x), 8, 1000)
		for i, r := range results {
			if !r.Converged {
				t.Fatalf("x=%v trial %d did not converge", x, i)
			}
			if got := r.Final.Output(); got != want {
				t.Fatalf("x=%v trial %d: output %d, want %d", x, i, got, want)
			}
		}
	}
}

func TestGeneralConstructionMin(t *testing.T) {
	f := semilinear.Min2()
	c, _, err := General(f, GeneralOptions{
		Classify: classify.Options{Bound: 8},
		N:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := reach.CheckGrid(c, func(x []int64) int64 { return min(x[0], x[1]) },
		[]int64{0, 0}, []int64{2, 2},
		reach.WithMaxConfigs(1<<21))
	if err != nil {
		t.Fatal(err)
	}
	if !gr.OK() {
		t.Fatal(gr)
	}
}

func TestGeneralRejectsMax(t *testing.T) {
	_, res, err := General(semilinear.Max2(), GeneralOptions{})
	if err == nil {
		t.Fatal("max accepted by the general construction")
	}
	var nce *NotComputableError
	if !errors.As(err, &nce) {
		t.Fatalf("unexpected error type: %v", err)
	}
	if res == nil || res.Computable {
		t.Fatal("missing negative classification")
	}
}

func catalyticCRN() *crn.CRN {
	return crn.MustNew([]crn.Species{"X", "A"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "Y"}, {Coeff: 1, Sp: "A"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}, {Coeff: 1, Sp: "B"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "B"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
}
