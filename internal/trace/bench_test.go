package trace

import (
	"testing"
	"time"
)

// BenchmarkRequestSpanPair is the serve cached-hit path's tracing work: a
// request root span plus a cache-lookup child, created and ended.
func BenchmarkRequestSpanPair(b *testing.B) {
	tr := New(Options{Proc: "bench"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now := time.Now()
		root := tr.StartSpan(now, "serve.request", SpanContext{},
			String("endpoint", "/v1/check"), String("method", "POST"))
		child := tr.StartSpan(now, "serve.cache.lookup", root.Context())
		child.End(time.Now(), String("outcome", "hit"))
		root.End(time.Now(), Int("code", 200))
	}
}
