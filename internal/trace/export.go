package trace

import (
	"encoding/json"
	"fmt"
	"sort"
)

// sortedSpans returns spans in the canonical export order: by trace id,
// then start instant, then span id, then name. The order depends only on
// the span set, never on insertion order, which is what makes exports of
// identical sets byte-identical.
func sortedSpans(spans []SpanData) []SpanData {
	out := make([]SpanData, len(spans))
	copy(out, spans)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.TraceID != b.TraceID {
			return a.TraceID < b.TraceID
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.SpanID != b.SpanID {
			return a.SpanID < b.SpanID
		}
		return a.Name < b.Name
	})
	return out
}

// ExportJSON renders spans as a deterministic JSON array: canonical span
// order, sorted attribute keys (encoding/json's map rule), indented, with
// a trailing newline. Identical span sets yield identical bytes regardless
// of recording order — the same byte-identity discipline as the metrics
// exposition.
func ExportJSON(spans []SpanData) ([]byte, error) {
	b, err := json.MarshalIndent(sortedSpans(spans), "", "  ")
	if err != nil {
		return nil, fmt.Errorf("trace: encoding span export: %w", err)
	}
	return append(b, '\n'), nil
}

// chromeEvent is one Chrome trace-event ("X" = complete event with a
// duration, "M" = metadata). Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeDoc is the JSON-object form of the Chrome trace-event format.
type chromeDoc struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// ExportChromeTrace renders spans in the Chrome trace-event JSON format —
// load the bytes in Perfetto (ui.perfetto.dev) or chrome://tracing to see
// the request timeline. Each recording process becomes a "process" row
// (named by a metadata event) and each trace id a "thread" row within it,
// so one distributed job reads as aligned tracks across crnserve, the
// coordinator, and its workers. Deterministic for identical span sets,
// like ExportJSON.
func ExportChromeTrace(spans []SpanData) ([]byte, error) {
	ordered := sortedSpans(spans)
	// Assign pids to procs and tids to traces in order of first appearance
	// in the canonical span order (so the assignment is a function of the
	// span set, not of recording order).
	pidOf := make(map[string]int)
	var procs []string
	tidOf := make(map[string]int)
	for _, d := range ordered {
		if _, ok := pidOf[d.Proc]; !ok {
			pidOf[d.Proc] = len(procs) + 1
			procs = append(procs, d.Proc)
		}
		if _, ok := tidOf[d.TraceID]; !ok {
			tidOf[d.TraceID] = len(tidOf) + 1
		}
	}
	doc := chromeDoc{TraceEvents: []chromeEvent{}}
	for i, proc := range procs {
		name := proc
		if name == "" {
			name = "unknown"
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  i + 1,
			Args: map[string]string{"name": name},
		})
	}
	for _, d := range ordered {
		dur := float64(d.End-d.Start) / 1e3
		if dur < 0 {
			dur = 0
		}
		args := map[string]string{
			"trace_id": d.TraceID,
			"span_id":  d.SpanID,
		}
		if d.Parent != "" {
			args["parent_span_id"] = d.Parent
		}
		for _, k := range sortedKeys(d.Attrs) {
			args[k] = d.Attrs[k]
		}
		ev := chromeEvent{
			Name: d.Name,
			Cat:  "span",
			Ph:   "X",
			Ts:   float64(d.Start) / 1e3,
			Dur:  &dur,
			Pid:  pidOf[d.Proc],
			Tid:  tidOf[d.TraceID],
			Args: args,
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("trace: encoding chrome trace: %w", err)
	}
	return append(b, '\n'), nil
}

// sortedKeys returns m's keys sorted — the sort-after-collect idiom, so no
// map-iteration order reaches the output.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
