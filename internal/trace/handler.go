package trace

import (
	"encoding/json"
	"net/http"
)

// traceGroup is one trace's spans in the GET /debug/traces document.
type traceGroup struct {
	TraceID string     `json:"trace_id"`
	Spans   []SpanData `json:"spans"`
}

// tracesDoc is the GET /debug/traces response body.
type tracesDoc struct {
	// Recorded and Dropped mirror Tracer.Stats: spans ever recorded, and
	// how many of those were evicted by ring overflow (a nonzero Dropped
	// means old traces may be incomplete).
	Recorded uint64       `json:"recorded"`
	Dropped  uint64       `json:"dropped"`
	Traces   []traceGroup `json:"traces"`
}

// Handler serves GET /debug/traces: the ring's finished spans grouped by
// trace, in the deterministic export order. Query parameters:
//
//	?trace=<32-hex-digit id>  only that trace
//	?format=chrome            Chrome trace-event JSON instead (load the
//	                          body in Perfetto / chrome://tracing)
//
// Mount it on an operator-only listener (the CLIs put it next to
// /debug/pprof on -debug-addr), not the public API.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		spans := t.Snapshot()
		if id := r.URL.Query().Get("trace"); id != "" {
			filtered := spans[:0]
			for _, d := range spans {
				if d.TraceID == id {
					filtered = append(filtered, d)
				}
			}
			spans = filtered
		}
		if r.URL.Query().Get("format") == "chrome" {
			b, err := ExportChromeTrace(spans)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(b)
			return
		}
		recorded, dropped := t.Stats()
		doc := tracesDoc{Recorded: recorded, Dropped: dropped, Traces: []traceGroup{}}
		// sortedSpans orders by trace id first, so each trace's spans are
		// consecutive and grouping is a single pass.
		for _, d := range sortedSpans(spans) {
			if n := len(doc.Traces); n == 0 || doc.Traces[n-1].TraceID != d.TraceID {
				doc.Traces = append(doc.Traces, traceGroup{TraceID: d.TraceID})
			}
			g := &doc.Traces[len(doc.Traces)-1]
			g.Spans = append(g.Spans, d)
		}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(append(b, '\n'))
	})
}
