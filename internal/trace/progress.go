package trace

import (
	"sort"
	"sync"
	"time"

	"crncompose/internal/progress"
)

// ProgressReporter adapts engine progress events into child spans: the
// first event for a stage ("reach.grid", "reach.explore", "sim",
// "classify.regions", "synth.modules") opens a span under the configured
// parent, and Finish ends every open stage span with the last-seen
// done/total counts as attributes. The clock is injected by the owning
// layer (serve, the CLIs) — engines only post events; they never see a
// clock or a span (the caller-owned-clock contract).
//
// Safe for concurrent use: a shared reporter may receive events from every
// worker goroutine of a steal-pool engine run.
type ProgressReporter struct {
	t      *Tracer
	clock  func() time.Time
	parent SpanContext

	mu   sync.Mutex
	open map[string]*Span
	last map[string]progress.Event
	done bool
}

// NewProgressReporter builds the adapter. A nil tracer or clock returns
// nil — callers must then not wrap the nil *ProgressReporter in a
// progress.Reporter interface (the typed-nil trap progress.Post documents).
func NewProgressReporter(t *Tracer, clock func() time.Time, parent SpanContext) *ProgressReporter {
	if t == nil || clock == nil {
		return nil
	}
	return &ProgressReporter{
		t:      t,
		clock:  clock,
		parent: parent,
		open:   make(map[string]*Span),
		last:   make(map[string]progress.Event),
	}
}

// Report implements progress.Reporter.
func (p *ProgressReporter) Report(e progress.Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done {
		return
	}
	if _, ok := p.open[e.Stage]; !ok {
		p.open[e.Stage] = p.t.StartSpan(p.clock(), e.Stage, p.parent)
	}
	p.last[e.Stage] = e
}

// Finish ends every open stage span at now (stages in sorted order, so the
// recording order is deterministic for a given stage set). Idempotent;
// events after Finish are dropped.
func (p *ProgressReporter) Finish(now time.Time) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.done {
		p.mu.Unlock()
		return
	}
	p.done = true
	stages := make([]string, 0, len(p.open))
	for stage := range p.open {
		stages = append(stages, stage)
	}
	sort.Strings(stages)
	type ending struct {
		sp *Span
		e  progress.Event
	}
	ends := make([]ending, 0, len(stages))
	for _, stage := range stages {
		ends = append(ends, ending{p.open[stage], p.last[stage]})
	}
	p.mu.Unlock()
	for _, en := range ends {
		en.sp.End(now, Int("done", en.e.Done), Int("total", en.e.Total))
	}
}
