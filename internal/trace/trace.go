// Package trace is the in-process distributed-tracing spine: a span
// recorder with W3C-style trace-context propagation, a bounded ring buffer
// of finished spans, and deterministic export (sorted JSON, Chrome
// trace-event JSON loadable in Perfetto).
//
// # Caller-owned clocks
//
// Like internal/metrics, this package never reads a clock: every instant —
// StartSpan's start, End's end — is passed in by the caller. That keeps the
// crnlint determinism analyzer meaningful for the engine packages (this
// package is itself in the engine set): an engine cannot launder time.Now
// through a span without the reference appearing at its own call site,
// where the analyzer flags it. Engines never trace themselves; the serving
// layers (httpx, serve, dist, the CLIs) own both the spans and the clocks,
// and engine work shows up as spans via the progress adapter
// (ProgressReporter), whose clock is injected by those layers too.
//
// # Propagation
//
// A SpanContext travels as a W3C traceparent header value
// ("00-<trace-id>-<span-id>-01"): httpx injects it per attempt, serve
// parses it off incoming /v1/* requests, and the dist protocol carries it
// in lease responses so a worker's rectangle span joins the trace that
// submitted the job. Within a process it travels on context.Context
// (ContextWith / FromContext).
//
// # Nil safety
//
// A nil *Tracer is "tracing disabled": StartSpan returns a nil *Span, and
// every *Span method is a no-op on nil, so call sites never guard. This is
// the same contract the metrics layer uses for nil registries.
package trace

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"fmt"
	"math/rand/v2"
	"strconv"
	"sync"
	"time"
)

// DefaultCap is the span ring-buffer capacity when Options.Cap is zero.
const DefaultCap = 4096

// TraceID is the 16-byte W3C trace identifier. The zero value is invalid.
type TraceID [16]byte

// String renders the id as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID is the 8-byte W3C span identifier. The zero value is invalid.
type SpanID [8]byte

// String renders the id as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext identifies one span within one trace — the unit of
// propagation. The zero value is invalid (no active trace).
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether both ids are nonzero.
func (sc SpanContext) Valid() bool {
	return sc.TraceID != (TraceID{}) && sc.SpanID != (SpanID{})
}

// Traceparent renders the context as a W3C traceparent header value
// (version 00, sampled), or "" for an invalid context.
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-01"
}

// ParseTraceparent parses a W3C traceparent header value. Unknown versions
// are rejected; so are all-zero ids, per the spec.
func ParseTraceparent(s string) (SpanContext, error) {
	var sc SpanContext
	if len(s) < 55 {
		return sc, fmt.Errorf("trace: traceparent %q: too short", s)
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return sc, fmt.Errorf("trace: traceparent %q: bad field layout", s)
	}
	if s[:2] != "00" {
		return sc, fmt.Errorf("trace: traceparent %q: unsupported version %q", s, s[:2])
	}
	if len(s) != 55 {
		return sc, fmt.Errorf("trace: traceparent %q: bad length %d", s, len(s))
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(s[3:35])); err != nil {
		return SpanContext{}, fmt.Errorf("trace: traceparent %q: bad trace id: %w", s, err)
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(s[36:52])); err != nil {
		return SpanContext{}, fmt.Errorf("trace: traceparent %q: bad span id: %w", s, err)
	}
	if !sc.Valid() {
		return SpanContext{}, fmt.Errorf("trace: traceparent %q: all-zero id", s)
	}
	return sc, nil
}

// ctxKey keys the active SpanContext on a context.Context.
type ctxKey struct{}

// ContextWith returns ctx carrying sc as the active span context.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext returns the active span context, or the zero (invalid)
// SpanContext when none is set.
func FromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}

// ContextSpan returns ctx carrying sp's context, or ctx unchanged when sp
// is nil (tracing disabled) — the one-liner for threading a new span into
// downstream calls without a nil guard.
func ContextSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return ContextWith(ctx, sp.Context())
}

// Attr is one key=value span attribute. Values are strings on the wire;
// use the String/Int/Bool constructors.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: strconv.FormatInt(v, 10)} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: strconv.FormatBool(v)} }

// SpanData is one finished span — the ring buffer's element and the wire
// form shipped between processes (dist workers attach theirs to result
// reports). Attrs serializes with sorted keys (encoding/json's map rule),
// so identical span sets encode to identical bytes.
type SpanData struct {
	TraceID string            `json:"trace_id"`
	SpanID  string            `json:"span_id"`
	Parent  string            `json:"parent_span_id,omitempty"`
	Name    string            `json:"name"`
	Proc    string            `json:"proc,omitempty"`
	Start   int64             `json:"start_unix_nano"`
	End     int64             `json:"end_unix_nano"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Options configures a Tracer.
type Options struct {
	// Proc labels every span with the recording process/component
	// ("crnserve", "crncheck-worker"); exports group by it.
	Proc string
	// Cap bounds the finished-span ring buffer (0 = DefaultCap). When full,
	// the oldest span is overwritten and the dropped counter advances.
	Cap int
	// Rand draws id entropy. Nil seeds a ChaCha8 generator from the OS
	// entropy pool once at construction; injectable so tests can pin ids.
	Rand func() uint64
}

// Tracer records finished spans into a bounded ring buffer. Safe for
// concurrent use; a nil *Tracer is valid and records nothing.
type Tracer struct {
	proc string

	mu       sync.Mutex
	rnd      func() uint64
	buf      []SpanData
	start    int // index of the oldest element
	n        int // elements in the ring
	recorded uint64
	dropped  uint64
	onSpan   func(dropped bool)
}

// New builds a Tracer.
func New(o Options) *Tracer {
	capacity := o.Cap
	if capacity <= 0 {
		capacity = DefaultCap
	}
	rnd := o.Rand
	if rnd == nil {
		var seed [32]byte
		_, _ = crand.Read(seed[:])
		rnd = rand.NewChaCha8(seed).Uint64
	}
	return &Tracer{
		proc: o.Proc,
		rnd:  rnd,
		buf:  make([]SpanData, capacity),
	}
}

// SetOnSpan installs the hook called (under the tracer's lock — keep it
// cheap) once per recorded span, with dropped reporting whether recording
// it evicted an older span. It replaces any previous hook, so a component
// re-homing a shared tracer onto the same metrics counters does not double
// count. Nil clears the hook.
func (t *Tracer) SetOnSpan(hook func(dropped bool)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.onSpan = hook
	t.mu.Unlock()
}

// Stats returns how many spans were ever recorded and how many of those
// were evicted by ring overflow.
func (t *Tracer) Stats() (recorded, dropped uint64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recorded, t.dropped
}

// newSpanID draws a nonzero span id. Caller holds t.mu.
func (t *Tracer) newSpanIDLocked() SpanID {
	var id SpanID
	putUint64(id[:], t.rnd())
	if id == (SpanID{}) {
		id[7] = 1
	}
	return id
}

// putUint64 writes v big-endian into b[:8].
func putUint64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

// StartSpan opens a span named name starting at now. An invalid parent
// starts a new trace (fresh trace id); a valid one continues it. The span
// is not recorded until End. Nil-safe: a nil tracer returns a nil span.
func (t *Tracer) StartSpan(now time.Time, name string, parent SpanContext, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{t: t, name: name, start: now}
	t.mu.Lock()
	if parent.Valid() {
		sp.sc.TraceID = parent.TraceID
		sp.parent = parent.SpanID
	} else {
		putUint64(sp.sc.TraceID[:8], t.rnd())
		putUint64(sp.sc.TraceID[8:], t.rnd())
		if sp.sc.TraceID == (TraceID{}) {
			sp.sc.TraceID[15] = 1
		}
	}
	sp.sc.SpanID = t.newSpanIDLocked()
	t.mu.Unlock()
	for _, a := range attrs {
		sp.SetAttr(a.Key, a.Value)
	}
	return sp
}

// Record inserts an externally produced finished span (e.g. one shipped
// from a dist worker) into the ring. Nil-safe.
func (t *Tracer) Record(d SpanData) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	dropped := false
	if t.n == len(t.buf) {
		t.buf[t.start] = d
		t.start = (t.start + 1) % len(t.buf)
		t.dropped++
		dropped = true
	} else {
		t.buf[(t.start+t.n)%len(t.buf)] = d
		t.n++
	}
	t.recorded++
	if t.onSpan != nil {
		t.onSpan(dropped)
	}
}

// Snapshot copies the ring's spans, oldest first.
func (t *Tracer) Snapshot() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(t.start+i)%len(t.buf)])
	}
	return out
}

// TraceSpans returns the ring's spans belonging to the hex trace id,
// oldest first — how a dist worker collects the spans it ships with a
// result report.
func (t *Tracer) TraceSpans(traceID string) []SpanData {
	var out []SpanData
	for _, d := range t.Snapshot() {
		if d.TraceID == traceID {
			out = append(out, d)
		}
	}
	return out
}

// Span is one in-flight operation. Methods are safe for concurrent use
// and no-ops on a nil receiver (tracing disabled).
type Span struct {
	t      *Tracer
	sc     SpanContext
	parent SpanID
	name   string
	start  time.Time

	mu    sync.Mutex
	ended bool
	attrs map[string]string
}

// Context returns the span's propagation context (zero when sp is nil).
func (sp *Span) Context() SpanContext {
	if sp == nil {
		return SpanContext{}
	}
	return sp.sc
}

// SetAttr sets one attribute; calls after End are ignored.
func (sp *Span) SetAttr(key, value string) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.ended {
		return
	}
	if sp.attrs == nil {
		sp.attrs = make(map[string]string)
	}
	sp.attrs[key] = value
}

// End finishes the span at now, attaches any final attrs, and records it
// in the tracer's ring. Only the first End takes effect.
func (sp *Span) End(now time.Time, attrs ...Attr) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.ended {
		sp.mu.Unlock()
		return
	}
	for _, a := range attrs {
		if sp.attrs == nil {
			sp.attrs = make(map[string]string)
		}
		sp.attrs[a.Key] = a.Value
	}
	sp.ended = true
	d := SpanData{
		TraceID: sp.sc.TraceID.String(),
		SpanID:  sp.sc.SpanID.String(),
		Name:    sp.name,
		Proc:    sp.t.proc,
		Start:   sp.start.UnixNano(),
		End:     now.UnixNano(),
		Attrs:   sp.attrs,
	}
	if sp.parent != (SpanID{}) {
		d.Parent = sp.parent.String()
	}
	sp.mu.Unlock()
	sp.t.Record(d)
}

// Logf wraps base so every line it emits carries the active trace and span
// id as trailing key=value fields — the cross-reference between the log
// stream and /debug/traces. An invalid sc returns base unchanged; a nil
// base returns nil (callers keep their own nil-Logf guards).
func Logf(base func(format string, args ...any), sc SpanContext) func(format string, args ...any) {
	if base == nil || !sc.Valid() {
		return base
	}
	suffix := " trace=" + sc.TraceID.String() + " span=" + sc.SpanID.String()
	return func(format string, args ...any) {
		base(format+"%s", append(args, suffix)...)
	}
}
