package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"crncompose/internal/progress"
)

// testTracer returns a tracer with a deterministic id stream.
func testTracer(capacity int) *Tracer {
	var n uint64
	return New(Options{Proc: "test", Cap: capacity, Rand: func() uint64 {
		n++
		return n
	}})
}

func at(ms int64) time.Time { return time.Unix(0, ms*int64(time.Millisecond)) }

func TestTraceparentRoundTrip(t *testing.T) {
	tr := testTracer(16)
	sp := tr.StartSpan(at(1), "root", SpanContext{})
	hdr := sp.Context().Traceparent()
	if len(hdr) != 55 || !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("bad traceparent %q", hdr)
	}
	sc, err := ParseTraceparent(hdr)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", hdr, err)
	}
	if sc != sp.Context() {
		t.Fatalf("round trip: got %+v want %+v", sc, sp.Context())
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-abc",
		"01-0123456789abcdef0123456789abcdef-0123456789abcdef-01", // unknown version
		"00-00000000000000000000000000000000-0123456789abcdef-01", // zero trace id
		"00-0123456789abcdef0123456789abcdef-0000000000000000-01", // zero span id
		"00-0123456789abcdef0123456789abcdeX-0123456789abcdef-01", // non-hex
		"00-0123456789abcdef0123456789abcdef-0123456789abcdef-01x",
	}
	for _, s := range bad {
		if _, err := ParseTraceparent(s); err == nil {
			t.Errorf("ParseTraceparent(%q): want error", s)
		} else if !strings.HasPrefix(err.Error(), "trace: ") {
			t.Errorf("ParseTraceparent(%q): error %q lacks package prefix", s, err)
		}
	}
}

func TestSpanLifecycleAndLinkage(t *testing.T) {
	tr := testTracer(16)
	root := tr.StartSpan(at(10), "root", SpanContext{}, String("kind", "server"))
	child := tr.StartSpan(at(20), "child", root.Context())
	child.End(at(30), Int("items", 3))
	root.End(at(40))
	root.End(at(99)) // second End is a no-op
	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	c, r := spans[0], spans[1]
	if c.Name != "child" || r.Name != "root" {
		t.Fatalf("unexpected recording order: %q, %q", c.Name, r.Name)
	}
	if c.TraceID != r.TraceID {
		t.Fatalf("child trace %s != root trace %s", c.TraceID, r.TraceID)
	}
	if c.Parent != r.SpanID {
		t.Fatalf("child parent %s != root span %s", c.Parent, r.SpanID)
	}
	if r.Parent != "" {
		t.Fatalf("root has parent %s", r.Parent)
	}
	if c.Start != at(20).UnixNano() || c.End != at(30).UnixNano() {
		t.Fatalf("child instants %d..%d", c.Start, c.End)
	}
	if r.End != at(40).UnixNano() {
		t.Fatalf("second End overwrote the first: end=%d", r.End)
	}
	if c.Attrs["items"] != "3" || r.Attrs["kind"] != "server" || r.Proc != "test" {
		t.Fatalf("attrs/proc not recorded: %+v / %+v", c, r)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan(at(1), "x", SpanContext{})
	if sp != nil {
		t.Fatal("nil tracer must return nil span")
	}
	sp.SetAttr("k", "v")
	sp.End(at(2))
	if sp.Context().Valid() {
		t.Fatal("nil span context must be invalid")
	}
	tr.Record(SpanData{})
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer snapshot = %v", got)
	}
	if rec, drop := tr.Stats(); rec != 0 || drop != 0 {
		t.Fatal("nil tracer stats must be zero")
	}
	tr.SetOnSpan(func(bool) {})
}

func TestRingEviction(t *testing.T) {
	tr := testTracer(4)
	var hookTotal, hookDropped int
	tr.SetOnSpan(func(dropped bool) {
		hookTotal++
		if dropped {
			hookDropped++
		}
	})
	for i := 0; i < 10; i++ {
		sp := tr.StartSpan(at(int64(i)), "s", SpanContext{}, Int("i", int64(i)))
		sp.End(at(int64(i) + 1))
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	for i, d := range spans {
		if want := int64(6 + i); d.Attrs["i"] != Int("i", want).Value {
			t.Fatalf("span %d is i=%s, want %d (oldest-first order)", i, d.Attrs["i"], want)
		}
	}
	rec, drop := tr.Stats()
	if rec != 10 || drop != 6 {
		t.Fatalf("stats = (%d, %d), want (10, 6)", rec, drop)
	}
	if hookTotal != 10 || hookDropped != 6 {
		t.Fatalf("hook saw (%d, %d), want (10, 6)", hookTotal, hookDropped)
	}
}

// fixedSpanSet is a span set with unsorted insertion order, two traces,
// and attrs, for the export determinism tests.
func fixedSpanSet() []SpanData {
	return []SpanData{
		{TraceID: "bb", SpanID: "02", Name: "late", Proc: "p2", Start: 500, End: 900},
		{TraceID: "aa", SpanID: "03", Parent: "01", Name: "child", Proc: "p1", Start: 200, End: 300,
			Attrs: map[string]string{"b": "2", "a": "1"}},
		{TraceID: "aa", SpanID: "01", Name: "root", Proc: "p1", Start: 100, End: 400},
	}
}

func TestExportJSONByteIdentical(t *testing.T) {
	set := fixedSpanSet()
	a, err := ExportJSON(set)
	if err != nil {
		t.Fatal(err)
	}
	// Reverse insertion order: identical set, different order.
	rev := []SpanData{set[2], set[1], set[0]}
	b, err := ExportJSON(rev)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("export depends on insertion order:\n%s\nvs\n%s", a, b)
	}
	// And across repeated runs of the same call (map attrs must not leak
	// iteration order).
	for i := 0; i < 10; i++ {
		c, err := ExportJSON(set)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, c) {
			t.Fatalf("export not byte-stable across runs")
		}
	}
	var decoded []SpanData
	if err := json.Unmarshal(a, &decoded); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(decoded) != 3 || decoded[0].TraceID != "aa" || decoded[0].Name != "root" {
		t.Fatalf("unexpected canonical order: %+v", decoded)
	}
}

func TestExportChromeTrace(t *testing.T) {
	a, err := ExportChromeTrace(fixedSpanSet())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExportChromeTrace([]SpanData{fixedSpanSet()[2], fixedSpanSet()[0], fixedSpanSet()[1]})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("chrome export depends on insertion order")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	// 2 process_name metadata events + 3 spans.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5: %s", len(doc.TraceEvents), a)
	}
	var xs, ms int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			xs++
		case "M":
			ms++
		}
	}
	if xs != 3 || ms != 2 {
		t.Fatalf("got %d X and %d M events, want 3 and 2", xs, ms)
	}
}

func TestHandler(t *testing.T) {
	tr := testTracer(16)
	r1 := tr.StartSpan(at(1), "one", SpanContext{})
	r1.End(at(2))
	r2 := tr.StartSpan(at(3), "two", SpanContext{})
	r2.End(at(4))

	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		return rec
	}

	rec := get("/debug/traces")
	var doc tracesDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad body: %v\n%s", err, rec.Body)
	}
	if doc.Recorded != 2 || doc.Dropped != 0 || len(doc.Traces) != 2 {
		t.Fatalf("doc = %+v", doc)
	}

	id := r1.Context().TraceID.String()
	rec = get("/debug/traces?trace=" + id)
	doc = tracesDoc{}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Traces) != 1 || doc.Traces[0].TraceID != id || doc.Traces[0].Spans[0].Name != "one" {
		t.Fatalf("filtered doc = %+v", doc)
	}

	rec = get("/debug/traces?format=chrome")
	if !bytes.Contains(rec.Body.Bytes(), []byte("traceEvents")) {
		t.Fatalf("chrome format body: %s", rec.Body)
	}
}

func TestTraceSpans(t *testing.T) {
	tr := testTracer(16)
	a := tr.StartSpan(at(1), "a", SpanContext{})
	a.End(at(2))
	b := tr.StartSpan(at(3), "b", SpanContext{})
	b.End(at(4))
	got := tr.TraceSpans(a.Context().TraceID.String())
	if len(got) != 1 || got[0].Name != "a" {
		t.Fatalf("TraceSpans = %+v", got)
	}
}

func TestLogfStamping(t *testing.T) {
	var lines []string
	base := func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	tr := testTracer(16)
	sp := tr.StartSpan(at(1), "op", SpanContext{})
	logf := Logf(base, sp.Context())
	logf("leased rect %d", 7)
	want := "leased rect 7 trace=" + sp.Context().TraceID.String() + " span=" + sp.Context().SpanID.String()
	if len(lines) != 1 || lines[0] != want {
		t.Fatalf("got %q, want %q", lines, want)
	}
	if got := Logf(base, SpanContext{}); got == nil {
		// invalid context returns base unchanged
		t.Fatal("Logf with invalid context must return base")
	}
	if Logf(nil, sp.Context()) != nil {
		t.Fatal("Logf with nil base must return nil")
	}
}

func TestContextPlumbing(t *testing.T) {
	tr := testTracer(16)
	sp := tr.StartSpan(at(1), "op", SpanContext{})
	ctx := ContextSpan(t.Context(), sp)
	if got := FromContext(ctx); got != sp.Context() {
		t.Fatalf("FromContext = %+v, want %+v", got, sp.Context())
	}
	if FromContext(t.Context()).Valid() {
		t.Fatal("empty context must yield invalid span context")
	}
	if ContextSpan(t.Context(), nil) != t.Context() {
		t.Fatal("nil span must leave ctx unchanged")
	}
}

func TestProgressReporter(t *testing.T) {
	tr := testTracer(16)
	parent := tr.StartSpan(at(1), "job", SpanContext{})
	clockNow := at(5)
	pr := NewProgressReporter(tr, func() time.Time { return clockNow }, parent.Context())
	pr.Report(progress.Event{Stage: "reach.grid", Done: 1, Total: 10})
	clockNow = at(6)
	pr.Report(progress.Event{Stage: "reach.explore", Done: 100, Total: 0})
	pr.Report(progress.Event{Stage: "reach.grid", Done: 9, Total: 10})
	pr.Finish(at(9))
	pr.Finish(at(99)) // idempotent
	pr.Report(progress.Event{Stage: "late", Done: 1, Total: 1})
	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2: %+v", len(spans), spans)
	}
	// Finish ends stages in sorted order: reach.explore then reach.grid.
	explore, grid := spans[0], spans[1]
	if explore.Name != "reach.explore" || grid.Name != "reach.grid" {
		t.Fatalf("stage order: %q, %q", explore.Name, grid.Name)
	}
	if grid.Parent != parent.Context().SpanID.String() {
		t.Fatalf("stage span parent %s, want %s", grid.Parent, parent.Context().SpanID)
	}
	if grid.Start != at(5).UnixNano() || grid.End != at(9).UnixNano() {
		t.Fatalf("grid instants %d..%d", grid.Start, grid.End)
	}
	if grid.Attrs["done"] != "9" || grid.Attrs["total"] != "10" {
		t.Fatalf("grid attrs %+v", grid.Attrs)
	}
	if NewProgressReporter(nil, func() time.Time { return at(0) }, SpanContext{}) != nil {
		t.Fatal("nil tracer must yield nil reporter")
	}
}
